package quicksand

// Library gate for scenarios/: every committed scenario file must (a)
// parse, (b) pass its own assertions at its committed seed, and (c)
// print a byte-identical report at 1, 4, and 8 host workers. This is
// the in-repo mirror of the CI scenario-matrix job, so a scenario that
// regresses fails `go test ./...` before it ever reaches CI.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

const scenarioDir = "scenarios"

func TestScenarioLibrary(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(scenarioDir, "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("scenario library has %d files, want >= 10", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := scenario.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var first bytes.Buffer
			for _, par := range []int{1, 4, 8} {
				out, err := scenario.Run(sp, scenario.Options{Par: par})
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				if !out.Pass {
					for _, a := range out.Asserts {
						if !a.Pass {
							t.Errorf("par=%d: assert FAIL: %s %s %g (got %g)",
								par, a.Metric, a.Op, a.Bound, a.Got)
						}
					}
					t.Fatalf("par=%d: committed-seed assertions failed", par)
				}
				var rep bytes.Buffer
				out.WriteReport(&rep)
				if par == 1 {
					first = rep
					continue
				}
				if !bytes.Equal(first.Bytes(), rep.Bytes()) {
					t.Fatalf("par=%d report differs from par=1; worker count leaked into the run", par)
				}
			}
		})
	}
}
