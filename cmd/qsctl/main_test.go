package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestScenarioList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	for _, sc := range scenarios {
		if !strings.Contains(out.String(), sc.name) {
			t.Errorf("list output missing scenario %q:\n%s", sc.name, out.String())
		}
	}
}

func TestUnknownScenarioListsAndExits2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown scenario "nope"`) {
		t.Errorf("stderr missing unknown-scenario message:\n%s", msg)
	}
	for _, sc := range scenarios {
		if !strings.Contains(msg, sc.name) {
			t.Errorf("stderr missing valid scenario %q:\n%s", sc.name, msg)
		}
	}
}

// TestChurnTraceCausality is the acceptance check: a churn run with
// tracing enabled must contain at least one migration span that is a
// descendant of a pressure span.
func TestChurnTraceCausality(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.jsonl")
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "churn", "-horizon-ms", "60", "-trace-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]obs.Record{}
	for _, r := range recs {
		if r.Type == "span" {
			byID[r.ID] = r
		}
	}
	caused := 0
	for _, r := range byID {
		if r.Kind != obs.KindMigrate {
			continue
		}
		for p := r.Parent; p != 0; {
			pr, ok := byID[p]
			if !ok {
				break
			}
			if pr.Kind == obs.KindPressure {
				caused++
				break
			}
			p = pr.Parent
		}
	}
	if caused == 0 {
		t.Fatal("no migration span descends from a pressure span")
	}
}

// TestServeScenarioReportsTail runs the open-loop serving scenario and
// checks the operator summary: both tenants generated load, every
// generated request that was served shows up in the histogram, and the
// latency line carries the p50/p99/p999 tail quantiles.
func TestServeScenarioReportsTail(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "serve", "-horizon-ms", "30"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	rep := out.String()
	for _, want := range []string{"serving plane", "web", "batch", "goodput",
		"p50=", "p99=", "p999=", "timeouts"} {
		if !strings.Contains(rep, want) {
			t.Errorf("serve output missing %q:\n%s", want, rep)
		}
	}
	// Same flags, same seed: the run is deterministic, so a second
	// invocation must print byte-identical serving stats.
	var out2, errb2 bytes.Buffer
	if code := run([]string{"-scenario", "serve", "-horizon-ms", "30"}, &out2, &errb2); code != 0 {
		t.Fatalf("second run exit = %d (stderr: %s)", code, errb2.String())
	}
	if out.String() != out2.String() {
		t.Error("serve scenario output differs between identical runs")
	}
}

func TestAnalyzeReportsMethodPercentiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "churn", "-horizon-ms", "40", "-trace-out", path}, &out, &errb); code != 0 {
		t.Fatalf("scenario exit = %d (stderr: %s)", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"analyze", path}, &out, &errb); code != 0 {
		t.Fatalf("analyze exit = %d (stderr: %s)", code, errb.String())
	}
	rep := out.String()
	for _, want := range []string{"call latency by method", "p50", "p99", "slowest migrations", "per-machine utilization"} {
		if !strings.Contains(rep, want) {
			t.Errorf("analyze output missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(rep, "rpc") {
		t.Errorf("analyze output has no rpc method rows:\n%s", rep)
	}
}

func TestChromeTraceExportIsValidJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "filler", "-horizon-ms", "30", "-trace-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("unexpected trace shape: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}

const testScenario = `name: clitest
horizon_ms: 4
fleet:
  machines: 3
workload:
  stores: 2
  objects: 48
  write_frac: 0.2
  tenants:
    - name: web
      rate: 60000
assertions:
  - metric: lost
    op: ==
    value: 0
  - metric: generated
    op: ">"
    value: 100
`

func writeScenario(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scn.yaml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunScenarioDeterministicAcrossWorkers is the acceptance check:
// `qsctl run` at a fixed seed must print byte-identical reports at
// -par 1, 4, and 8, and accept the file before or after the flags.
func TestRunScenarioDeterministicAcrossWorkers(t *testing.T) {
	path := writeScenario(t, testScenario)
	var first string
	for _, args := range [][]string{
		{"run", path, "-par", "1"},
		{"run", path, "-par", "4"},
		{"run", "-par", "8", path},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("%v: exit = %d (stderr: %s)", args, code, errb.String())
		}
		if first == "" {
			first = out.String()
			continue
		}
		if out.String() != first {
			t.Errorf("%v: report differs from -par 1 run:\n%s", args, out.String())
		}
	}
	if !strings.Contains(first, "RESULT PASS") {
		t.Errorf("report missing RESULT PASS:\n%s", first)
	}
}

func TestRunScenarioFailingAssertExits1(t *testing.T) {
	path := writeScenario(t, strings.Replace(testScenario, "    value: 100\n", "    value: 1000000000\n", 1))
	var out, errb bytes.Buffer
	if code := run([]string{"run", path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "RESULT FAIL") {
		t.Errorf("report missing RESULT FAIL:\n%s", out.String())
	}
	// -no-assert still prints the verdict but exits 0, so determinism
	// sweeps can run the library at non-committed seeds.
	out.Reset()
	errb.Reset()
	if code := run([]string{"run", path, "-no-assert"}, &out, &errb); code != 0 {
		t.Fatalf("-no-assert exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
}

func TestRunScenarioParseErrorExits2(t *testing.T) {
	path := writeScenario(t, "name: broken\nevents:\n  - at_ms: 1\n    kind: explode\n")
	var out, errb bytes.Buffer
	if code := run([]string{"run", path}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown event kind "explode"`) {
		t.Errorf("stderr missing parse diagnostic:\n%s", errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"run"}, &out, &errb); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
}

func TestRunScenarioReportAndTraceFiles(t *testing.T) {
	path := writeScenario(t, testScenario)
	dir := t.TempDir()
	rep := filepath.Join(dir, "verdict.json")
	trc := filepath.Join(dir, "trace.txt")
	var out, errb bytes.Buffer
	if code := run([]string{"run", path, "-report", rep, "-trace-out", trc}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	raw, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scenario string `json:"scenario"`
		Pass     bool   `json:"pass"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("verdict is not valid JSON: %v", err)
	}
	if doc.Scenario != "clitest" || !doc.Pass {
		t.Errorf("verdict = %+v", doc)
	}
	if _, err := os.Stat(trc); err != nil {
		t.Errorf("trace file not written: %v", err)
	}
}

// TestAnalyzeMalformedJSONLExits1: a corrupt line in the record stream
// must fail the whole analysis with the offending line number, not be
// silently skipped.
func TestAnalyzeMalformedJSONLExits1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	src := `{"type":"span","id":1,"kind":"rpc","name":"a","start_ns":0,"end_ns":10}
{"type":"span","id":2,"kind":"rpc","name":"b","start_ns":0,"end_ns":10}
{"type":"span","id":3,"kind":"rpc","na
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"analyze", path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "line 3") {
		t.Errorf("stderr missing offending line number:\n%s", errb.String())
	}

	// An unknown record type is just as fatal: the stream contract is
	// span|sample, and anything else means a producer/consumer skew.
	if err := os.WriteFile(path, []byte(`{"type":"mystery"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"analyze", path}, &out, &errb); code != 1 {
		t.Fatalf("unknown type: exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "line 1") || !strings.Contains(errb.String(), "mystery") {
		t.Errorf("stderr missing diagnostic:\n%s", errb.String())
	}
}

const sloScenario = `name: clislo
horizon_ms: 6
fleet:
  machines: 4
workload:
  stores: 2
  rf: 2
  objects: 48
  write_frac: 0.2
  tenants:
    - name: web
      rate: 60000
events:
  - at_ms: 2
    kind: crash
    machine: 1
  - at_ms: 4
    kind: restart
    machine: 1
slo:
  window_ms: 0.5
  windows: 3
  rules:
    - kind: goodput_below
      floor_rps: 30000
      for: 2
      severity: page
assertions:
  - metric: lost
    op: ==
    value: 0
`

// TestTopRendersWindowedSLOState: `qsctl top` must replay the scenario
// with window history retained and print the per-window table plus the
// incident banner, byte-identically across -par counts.
func TestTopRendersWindowedSLOState(t *testing.T) {
	path := writeScenario(t, sloScenario)
	var first string
	for _, par := range []string{"1", "4"} {
		var out, errb bytes.Buffer
		if code := run([]string{"top", path, "-par", par}, &out, &errb); code != 0 {
			t.Fatalf("-par %s: exit = %d (stderr: %s)", par, code, errb.String())
		}
		if first == "" {
			first = out.String()
			continue
		}
		if out.String() != first {
			t.Errorf("-par %s: top table differs from -par 1:\n%s", par, out.String())
		}
	}
	for _, want := range []string{"slo top: clislo", "goodput r/s", "p999 ms", "win"} {
		if !strings.Contains(first, want) {
			t.Errorf("top output missing %q:\n%s", want, first)
		}
	}
	// A scenario without an slo block has nothing to render.
	bare := writeScenario(t, testScenario)
	var out, errb bytes.Buffer
	if code := run([]string{"top", bare}, &out, &errb); code != 2 {
		t.Fatalf("no slo block: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no slo block") {
		t.Errorf("stderr missing diagnostic:\n%s", errb.String())
	}
}

// TestRunFlightOut: -flight-out must write the flight recorder dump
// when an assertion fails, and skip it on a clean green run.
func TestRunFlightOut(t *testing.T) {
	failing := writeScenario(t, strings.Replace(testScenario, "    value: 100\n", "    value: 1000000000\n", 1))
	dump := filepath.Join(t.TempDir(), "flight.txt")
	var out, errb bytes.Buffer
	if code := run([]string{"run", failing, "-flight-out", dump}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	raw, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	if !strings.Contains(string(raw), "flight recorder:") {
		t.Errorf("dump missing header:\n%s", raw)
	}

	// Green run, no incidents: no dump.
	green := writeScenario(t, testScenario)
	dump2 := filepath.Join(t.TempDir(), "flight.txt")
	out.Reset()
	errb.Reset()
	if code := run([]string{"run", green, "-flight-out", dump2}, &out, &errb); code != 0 {
		t.Fatalf("green exit = %d (stderr: %s)", code, errb.String())
	}
	if _, err := os.Stat(dump2); !os.IsNotExist(err) {
		t.Errorf("green run wrote a flight dump (err=%v)", err)
	}

	// Passing run that opened an incident: the dump is still the
	// post-mortem artifact, so it must be written.
	slo := writeScenario(t, sloScenario)
	dump3 := filepath.Join(t.TempDir(), "flight.txt")
	out.Reset()
	errb.Reset()
	code := run([]string{"run", slo, "-flight-out", dump3}, &out, &errb)
	if code != 0 {
		t.Fatalf("slo run exit = %d (stderr: %s, stdout: %s)", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "incidents_opened") {
		t.Fatalf("report missing slo metrics:\n%s", out.String())
	}
	if strings.Contains(out.String(), "incidents_opened 0") {
		t.Skipf("scenario opened no incident at this seed; dump rule not exercised")
	}
	if _, err := os.ReadFile(dump3); err != nil {
		t.Errorf("incident run did not write flight dump: %v", err)
	}
}

// TestScenarioListIncludesFiles: `-scenario list` must enumerate the
// scenario-file library alongside the built-ins, flagging bad files
// inline rather than erroring out.
func TestScenarioListIncludesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "good.yaml"), []byte(testScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.yaml"), []byte("name: x\n\tboom\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "list", "-scenario-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"good.yaml", "bad.yaml", "(parse error:", "filler"} {
		if !strings.Contains(s, want) {
			t.Errorf("list output missing %q:\n%s", want, s)
		}
	}
}
