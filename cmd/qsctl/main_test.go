package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestScenarioList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	for _, sc := range scenarios {
		if !strings.Contains(out.String(), sc.name) {
			t.Errorf("list output missing scenario %q:\n%s", sc.name, out.String())
		}
	}
}

func TestUnknownScenarioListsAndExits2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown scenario "nope"`) {
		t.Errorf("stderr missing unknown-scenario message:\n%s", msg)
	}
	for _, sc := range scenarios {
		if !strings.Contains(msg, sc.name) {
			t.Errorf("stderr missing valid scenario %q:\n%s", sc.name, msg)
		}
	}
}

// TestChurnTraceCausality is the acceptance check: a churn run with
// tracing enabled must contain at least one migration span that is a
// descendant of a pressure span.
func TestChurnTraceCausality(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.jsonl")
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "churn", "-horizon-ms", "60", "-trace-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]obs.Record{}
	for _, r := range recs {
		if r.Type == "span" {
			byID[r.ID] = r
		}
	}
	caused := 0
	for _, r := range byID {
		if r.Kind != obs.KindMigrate {
			continue
		}
		for p := r.Parent; p != 0; {
			pr, ok := byID[p]
			if !ok {
				break
			}
			if pr.Kind == obs.KindPressure {
				caused++
				break
			}
			p = pr.Parent
		}
	}
	if caused == 0 {
		t.Fatal("no migration span descends from a pressure span")
	}
}

// TestServeScenarioReportsTail runs the open-loop serving scenario and
// checks the operator summary: both tenants generated load, every
// generated request that was served shows up in the histogram, and the
// latency line carries the p50/p99/p999 tail quantiles.
func TestServeScenarioReportsTail(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "serve", "-horizon-ms", "30"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	rep := out.String()
	for _, want := range []string{"serving plane", "web", "batch", "goodput",
		"p50=", "p99=", "p999=", "timeouts"} {
		if !strings.Contains(rep, want) {
			t.Errorf("serve output missing %q:\n%s", want, rep)
		}
	}
	// Same flags, same seed: the run is deterministic, so a second
	// invocation must print byte-identical serving stats.
	var out2, errb2 bytes.Buffer
	if code := run([]string{"-scenario", "serve", "-horizon-ms", "30"}, &out2, &errb2); code != 0 {
		t.Fatalf("second run exit = %d (stderr: %s)", code, errb2.String())
	}
	if out.String() != out2.String() {
		t.Error("serve scenario output differs between identical runs")
	}
}

func TestAnalyzeReportsMethodPercentiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "churn", "-horizon-ms", "40", "-trace-out", path}, &out, &errb); code != 0 {
		t.Fatalf("scenario exit = %d (stderr: %s)", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"analyze", path}, &out, &errb); code != 0 {
		t.Fatalf("analyze exit = %d (stderr: %s)", code, errb.String())
	}
	rep := out.String()
	for _, want := range []string{"call latency by method", "p50", "p99", "slowest migrations", "per-machine utilization"} {
		if !strings.Contains(rep, want) {
			t.Errorf("analyze output missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(rep, "rpc") {
		t.Errorf("analyze output has no rpc method rows:\n%s", rep)
	}
}

func TestChromeTraceExportIsValidJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "filler", "-horizon-ms", "30", "-trace-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("unexpected trace shape: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}
