// Command qsctl inspects a Quicksand cluster run: it executes a canned
// scenario on the simulator and dumps the control-plane trace
// (placements, migrations, splits, merges), per-machine utilization,
// and migration latency statistics — the observability surface an
// operator of the real system would use.
//
// Usage:
//
//	qsctl [-scenario filler|pipeline|churn|gpu|replicas] [-horizon-ms N] [-events]
//
// The replicas scenario runs a replicated store fleet through a crash
// and dumps per-proclet replication status: primary location, lease
// validity and expiry, replication log position, and per-backup apply
// lag.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/replication"
	"repro/internal/sharded"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "filler", "scenario: filler, pipeline, churn, gpu, or replicas")
	horizonMs := flag.Int("horizon-ms", 100, "virtual run length in milliseconds")
	events := flag.Bool("events", false, "dump the full event trace")
	flag.Parse()

	machines := []cluster.MachineConfig{
		{Cores: 8, MemBytes: 2 << 30},
		{Cores: 8, MemBytes: 2 << 30},
	}
	if *scenario == "replicas" {
		// Replication needs room for anti-affine backups plus a monitor
		// machine that survives the scripted crash.
		machines = []cluster.MachineConfig{
			{Cores: 8, MemBytes: 2 << 30},
			{Cores: 8, MemBytes: 2 << 30},
			{Cores: 8, MemBytes: 2 << 30},
			{Cores: 8, MemBytes: 2 << 30},
		}
	}
	sys := core.NewSystem(core.DefaultConfig(), machines)
	for _, m := range sys.Cluster.Machines() {
		m.TrackUtilization()
	}
	sys.Start()

	horizon := sim.Time(time.Duration(*horizonMs) * time.Millisecond)
	var err error
	switch *scenario {
	case "filler":
		err = runFiller(sys, horizon)
	case "pipeline":
		err = runPipeline(sys, horizon)
	case "churn":
		err = runChurn(sys, horizon)
	case "gpu":
		err = runGPU(sys, horizon)
	case "replicas":
		err = runReplicas(sys, horizon)
	default:
		fmt.Fprintf(os.Stderr, "qsctl: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("scenario %q ran to %v (%d events)\n\n", *scenario, sys.K.Now(), sys.K.EventsProcessed())
	fmt.Println("-- control plane summary --")
	for _, kind := range []trace.Kind{trace.KindSpawn, trace.KindMigrate, trace.KindSplit,
		trace.KindMerge, trace.KindPressure, trace.KindRebalance, trace.KindDestroy} {
		fmt.Printf("%-10s %5d\n", kind, sys.Trace.Count(kind))
	}
	fmt.Printf("\n-- migrations --\n")
	ml := sys.Runtime.MigrationLatency
	fmt.Printf("count %d  mean %.3f ms  p99 %.3f ms  max %.3f ms\n",
		ml.Count(), ml.Mean()*1000, ml.Percentile(99)*1000, ml.Max()*1000)
	fmt.Printf("\n-- machines --\n")
	for _, m := range sys.Cluster.Machines() {
		util := 0.0
		if m.Util != nil {
			util = m.Util.Mean(0, sys.K.Now()) / m.Cores() * 100
		}
		fmt.Printf("m%d: %2.0f cores, mem %d/%d MiB, mean cpu util %.1f%%, core-seconds %.3f\n",
			m.ID, m.Cores(), m.MemUsed()>>20, m.MemCapacity()>>20, util, m.CoreSeconds)
	}
	fmt.Printf("\n-- proclets --\n")
	for _, pr := range sys.Runtime.Proclets() {
		fmt.Printf("%-20s id=%-4d machine=%d heap=%dKiB invocations=%d\n",
			pr.Name(), pr.ID(), pr.Location(), pr.HeapBytes()>>10, pr.Invocations())
	}
	if *events {
		fmt.Printf("\n-- event trace --\n%s", sys.Trace.String())
	}
}

// runFiller reproduces a short Figure-1-style window: anti-phased
// antagonists and a migrating filler pool.
func runFiller(sys *core.System, horizon sim.Time) error {
	k := sys.K
	period := 20 * time.Millisecond
	for i, m := range sys.Cluster.Machines() {
		a := &workload.Antagonist{Machine: m, Period: period, Busy: period / 2,
			Offset: time.Duration(i) * period / 2, Cores: m.Cores()}
		a.Start(k)
	}
	pool, err := sys.NewPool("filler", 1, 8, 1, 8)
	if err != nil {
		return err
	}
	var feed func(cp *core.ComputeProclet)
	feed = func(cp *core.ComputeProclet) {
		cp.Run(func(tc *core.TaskCtx) {
			tc.Compute(50 * time.Microsecond)
			feed(tc.ComputeProclet())
		})
	}
	for _, m := range pool.Members() {
		feed(m)
		feed(m)
	}
	k.RunUntil(horizon)
	return nil
}

// runPipeline runs a short preprocessing pipeline over a sharded
// vector into a sharded queue.
func runPipeline(sys *core.System, horizon sim.Time) error {
	vec, err := sharded.NewVector[workload.Image](sys, "images", sharded.Options{MaxShardBytes: 8 << 20, AutoAdapt: true})
	if err != nil {
		return err
	}
	queue, err := sharded.NewQueue[workload.Batch](sys, "batches", sharded.Options{MaxShardBytes: 8 << 20})
	if err != nil {
		return err
	}
	gpus := workload.NewGPUPool(queue, 0, time.Millisecond, 8)
	gpus.Start(sys.K)
	pool, err := sys.NewPool("preproc", 1, 8, 1, 16)
	if err != nil {
		return err
	}
	sys.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			im := workload.Image{Idx: i, Bytes: 256 << 10, CPU: 2 * time.Millisecond}
			if err := vec.PushBack(p, 0, im, im.Bytes); err != nil {
				return
			}
		}
		it := vec.Iter(16)
		for {
			im, ok, err := it.Next(p, 0)
			if err != nil || !ok {
				break
			}
			img := im
			pool.Run(func(tc *core.TaskCtx) {
				tc.Compute(img.CPU)
				queue.Push(tc.Proc(), tc.Machine(), workload.Batch{Seq: img.Idx, Bytes: 16 << 10}, 16<<10)
			})
		}
	})
	sys.K.RunUntil(horizon)
	gpus.Stop()
	return nil
}

// runGPU exercises GPU proclets: trainers stepping on spot GPUs with a
// rotating reclamation, evacuated by the fleet watcher.
func runGPU(sys *core.System, horizon sim.Time) error {
	for _, m := range sys.Cluster.Machines() {
		m.AddGPUs(cluster.GPUConfig{Count: 2, MemBytes: 16 << 30, LinkBandwidth: 16_000_000_000})
	}
	fleet := gpu.NewFleet(sys, "trainers", time.Millisecond)
	var trainers []*gpu.Proclet
	for i := 0; i < 3; i++ {
		gp, err := fleet.Add(fmt.Sprintf("trainer-%d", i), 256<<20, 5*time.Millisecond)
		if err != nil {
			return err
		}
		trainers = append(trainers, gp)
		sys.K.Spawn("driver", func(p *sim.Proc) {
			for p.Now() < horizon {
				if err := gp.Step(p, gp.Device().Machine.ID, 8<<20); err != nil {
					p.Sleep(time.Millisecond)
				}
			}
		})
	}
	fleet.Start()
	victim := 0
	sys.K.Every(sim.Time(20*time.Millisecond), 30*time.Millisecond, func() bool {
		g := trainers[victim%len(trainers)].Device()
		victim++
		g.SetAvailable(false)
		sys.K.After(15*time.Millisecond, func() { g.SetAvailable(true) })
		return sys.K.Now() < horizon
	})
	sys.K.RunUntil(horizon)
	fleet.Stop()
	for _, gp := range trainers {
		fmt.Printf("%s: %d steps, now on %v\n", gp.Name(), gp.Steps.Value(), gp.Device())
	}
	fmt.Printf("fleet: %d evacuations (mean %.1f ms), %d stranded polls\n\n",
		fleet.Evacuations.Value(), fleet.MigrationLatency.Mean()*1000, fleet.Stranded.Value())
	return nil
}

// runReplicas replicates a small store fleet at RF=2, drives writers
// through a primary crash, and dumps each replica set's status — the
// view an operator would use to answer "is my data safe and who is
// serving it?".
func runReplicas(sys *core.System, horizon sim.Time) error {
	in := fault.New(sys.K, sys.Cluster, sys.Trace)
	sys.AttachInjector(in)
	// Monitor and writers live on m0; primaries on m1..m3; m1 crashes
	// mid-run and restarts late.
	rm := sys.EnableReplicationPlane(replication.Config{}, 0)
	const stores = 6
	mps := make([]*core.MemoryProclet, stores)
	for i := range mps {
		mid := cluster.MachineID(1 + i%(len(sys.Cluster.Machines())-1))
		mp, err := core.NewMemoryProcletOn(sys, fmt.Sprintf("store-%d", i), mid)
		if err != nil {
			return err
		}
		if err := rm.Replicate(mp, 2); err != nil {
			return err
		}
		mps[i] = mp
	}
	in.Install(fault.Schedule{
		{At: sim.Time(float64(horizon) * 0.3), Op: fault.OpCrash, A: 1},
		{At: sim.Time(float64(horizon) * 0.7), Op: fault.OpRestart, A: 1},
	})
	for w := 0; w < 8; w++ {
		w := w
		sys.K.Spawn(fmt.Sprintf("writer-%d", w), func(p *sim.Proc) {
			for op := 0; p.Now() < horizon; op++ {
				mps[(w+op)%stores].Put(p, 0, uint64(w)<<32|uint64(op), op, 4<<10)
				p.Sleep(100 * time.Microsecond)
			}
		})
	}
	sys.K.RunUntil(horizon)

	fmt.Println("-- replica sets --")
	det := rm.Detector()
	for _, st := range rm.Status() {
		lease := "EXPIRED"
		if st.LeaseValid {
			lease = fmt.Sprintf("valid until %v", st.LeaseExpiry)
		}
		fmt.Printf("%-10s primary id=%-4d m%d  lease %-22s log seq %d\n",
			st.Name, st.PrimaryID, st.PrimaryMachine, lease, st.Seq)
		for _, b := range st.Backups {
			fmt.Printf("           backup  id=%-4d m%d  applied %d (lag %d)\n",
				b.ID, b.Machine, b.Applied, b.Lag)
		}
	}
	fmt.Printf("\n-- durability plane --\n")
	fmt.Printf("heartbeats sent %d, missed %d; suspects %d, confirms %d, false suspects %d\n",
		det.HeartbeatsSent.Value(), det.HeartbeatsMissed.Value(),
		det.Suspects.Value(), det.Confirms.Value(), det.FalseSuspects.Value())
	fmt.Printf("promotions %d, deposes %d, resyncs %d, backup drops %d; batches %d carrying %d records\n",
		rm.Promotions.Value(), rm.Deposes.Value(), rm.Resyncs.Value(), rm.BackupDrops.Value(),
		rm.ReplBatches.Value(), rm.ReplRecords.Value())
	if n := rm.PromoteLatency.Count(); n > 0 {
		fmt.Printf("promote latency: mean %.3f ms, max %.3f ms over %d promotions\n",
			rm.PromoteLatency.Mean()*1000, rm.PromoteLatency.Max()*1000, n)
	}
	fmt.Println()
	return nil
}

// runChurn exercises split/merge on a sharded map under insert/delete
// waves.
func runChurn(sys *core.System, horizon sim.Time) error {
	m, err := sharded.NewMap[int, []byte](sys, "kv", sharded.Options{MaxShardBytes: 1 << 20, AutoAdapt: true})
	if err != nil {
		return err
	}
	sys.K.Spawn("churner", func(p *sim.Proc) {
		for wave := 0; ; wave++ {
			for i := 0; i < 512; i++ {
				if err := m.Put(p, 0, wave*10000+i, nil, 8<<10); err != nil {
					return
				}
			}
			for i := 0; i < 480; i++ {
				if err := m.Delete(p, 0, wave*10000+i); err != nil {
					return
				}
			}
			p.Sleep(time.Millisecond)
		}
	})
	sys.K.RunUntil(horizon)
	return nil
}
