// Command qsctl inspects a Quicksand cluster run: it executes a canned
// scenario on the simulator and dumps the control-plane trace
// (placements, migrations, splits, merges), per-machine utilization,
// and migration latency statistics — the observability surface an
// operator of the real system would use.
//
// Usage:
//
//	qsctl [-scenario <name>] [-horizon-ms N] [-events] [-trace-out run.json]
//	qsctl -scenario list [-scenario-dir scenarios]
//	qsctl run <file.yaml> [-seed N] [-par P] [-report out.json] [-trace-out out.txt] [-flight-out dump.txt] [-no-assert]
//	qsctl top <file.yaml> [-seed N] [-par P]
//	qsctl analyze run.jsonl [-top N]
//
// `qsctl run` executes a declarative scenario file (see
// internal/scenario and the scenarios/ library): a fleet spec, a
// workload mix, a timed fault/load schedule, and assertions, compiled
// onto the partitioned simulation kernel. The run is seeded and
// deterministic — at a fixed seed the report is byte-identical at any
// -par worker count. A failed assertion exits nonzero; -report writes
// the machine-readable verdict.
//
// `qsctl top` replays a scenario with per-window SLO history retained
// and renders the windowed serving state an operator's dashboard would
// show: per-window goodput, tail latency, error rate, and which
// burn-rate rules had an open incident during that window. It needs an
// `slo:` block in the scenario file.
//
// -flight-out (with `qsctl run`) writes the merged per-shard flight
// recorder — the last control-plane events before trouble — whenever an
// assertion fails or an incident opened during the run; CI uploads
// these dumps as failure artifacts.
//
// -trace-out enables causal span tracing and resource telemetry for
// the run and writes the result to the given path: a .json file is
// Chrome trace-event JSON (open in Perfetto or chrome://tracing); a
// .jsonl file is the compact record stream `qsctl analyze` digests
// into slowest-migration, per-method latency, and per-machine
// utilization reports.
//
// The replicas scenario runs a replicated store fleet through a crash
// and dumps per-proclet replication status: primary location, lease
// validity and expiry, replication log position, and per-backup apply
// lag.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/proclet"
	"repro/internal/replication"
	scen "repro/internal/scenario"
	"repro/internal/sharded"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scenario is one canned run: its machine fleet and its driver.
type scenario struct {
	name     string
	desc     string
	machines func() []cluster.MachineConfig
	run      func(sys *core.System, horizon sim.Time, out io.Writer) error
}

// twoBig is the default fleet: two 8-core, 2 GiB machines.
func twoBig() []cluster.MachineConfig {
	return []cluster.MachineConfig{
		{Cores: 8, MemBytes: 2 << 30},
		{Cores: 8, MemBytes: 2 << 30},
	}
}

// scenarios is the ordered registry -scenario resolves against.
var scenarios = []scenario{
	{"filler", "anti-phased antagonists with a migrating filler pool (fig-1 style)", twoBig, runFiller},
	{"pipeline", "sharded preprocessing pipeline feeding a GPU queue", twoBig, runPipeline},
	{"churn", "sharded map under insert/delete waves plus a bursty memory co-tenant", func() []cluster.MachineConfig {
		// Small machines so the co-tenant's bursts push m0 past the
		// memory high water: every burst yields pressure → migration
		// causal chains in the exported trace.
		return []cluster.MachineConfig{
			{Cores: 8, MemBytes: 64 << 20},
			{Cores: 8, MemBytes: 64 << 20},
		}
	}, runChurn},
	{"gpu", "checkpointed trainers ride out XID, throttle, and spot reclaim", twoBig, runGPU},
	{"replicas", "replicated store fleet driven through a primary crash", func() []cluster.MachineConfig {
		// Replication needs room for anti-affine backups plus a monitor
		// machine that survives the scripted crash.
		return []cluster.MachineConfig{
			{Cores: 8, MemBytes: 2 << 30},
			{Cores: 8, MemBytes: 2 << 30},
			{Cores: 8, MemBytes: 2 << 30},
			{Cores: 8, MemBytes: 2 << 30},
		}
	}, runReplicas},
	{"serve", "open-loop multi-tenant serving against a sharded map (ext-serve style)", twoBig, runServe},
}

func findScenario(name string) *scenario {
	for i := range scenarios {
		if scenarios[i].name == name {
			return &scenarios[i]
		}
	}
	return nil
}

func listScenarios(w io.Writer, dir string) {
	fmt.Fprintln(w, "scenarios:")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "  %-10s %s\n", sc.name, sc.desc)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.yaml"))
	if len(files) == 0 {
		return
	}
	sort.Strings(files)
	fmt.Fprintf(w, "scenario files (%s/, for qsctl run):\n", dir)
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(w, "  %-28s (unreadable: %v)\n", filepath.Base(path), err)
			continue
		}
		sp, err := scen.Parse(string(src))
		if err != nil {
			fmt.Fprintf(w, "  %-28s (parse error: %v)\n", filepath.Base(path), err)
			continue
		}
		fmt.Fprintf(w, "  %-28s %s\n", filepath.Base(path), sp.Description)
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, for tests. Returns the
// process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "analyze" {
		return runAnalyze(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "run" {
		return runScenarioFile(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "top" {
		return runTop(args[1:], stdout, stderr)
	}

	fs := flag.NewFlagSet("qsctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenarioName := fs.String("scenario", "filler", "scenario to run, or \"list\" to enumerate")
	horizonMs := fs.Int("horizon-ms", 100, "virtual run length in milliseconds")
	events := fs.Bool("events", false, "dump the full event trace")
	traceOut := fs.String("trace-out", "", "enable tracing+telemetry and write the run here (.json: Chrome trace-event; .jsonl: qsctl analyze input)")
	samplePeriod := fs.Duration("sample-period", 250*time.Microsecond, "telemetry sampling cadence (with -trace-out)")
	scenarioDir := fs.String("scenario-dir", "scenarios", "directory of scenario files to enumerate with -scenario list")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scenarioName == "list" {
		listScenarios(stdout, *scenarioDir)
		return 0
	}
	sc := findScenario(*scenarioName)
	if sc == nil {
		fmt.Fprintf(stderr, "qsctl: unknown scenario %q\n", *scenarioName)
		listScenarios(stderr, *scenarioDir)
		return 2
	}

	sys := core.NewSystem(core.DefaultConfig(), sc.machines())
	for _, m := range sys.Cluster.Machines() {
		m.TrackUtilization()
	}
	if *traceOut != "" {
		sys.EnableTracing()
		sys.EnableTelemetry(*samplePeriod)
	}
	sys.Start()

	horizon := sim.Time(time.Duration(*horizonMs) * time.Millisecond)
	if err := sc.run(sys, horizon, stdout); err != nil {
		fmt.Fprintf(stderr, "qsctl: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "scenario %q ran to %v (%d events)\n\n", sc.name, sys.K.Now(), sys.K.EventsProcessed())
	fmt.Fprintln(stdout, "-- control plane summary --")
	for _, kind := range []trace.Kind{trace.KindSpawn, trace.KindMigrate, trace.KindSplit,
		trace.KindMerge, trace.KindPressure, trace.KindRebalance, trace.KindDestroy} {
		fmt.Fprintf(stdout, "%-10s %5d\n", kind, sys.Trace.Count(kind))
	}
	fmt.Fprintf(stdout, "\n-- migrations --\n")
	ml := sys.Runtime.MigrationLatency
	fmt.Fprintf(stdout, "count %d  mean %.3f ms  p99 %.3f ms  max %.3f ms\n",
		ml.Count(), ml.Mean()*1000, ml.Percentile(99)*1000, ml.Max()*1000)
	fmt.Fprintf(stdout, "\n-- machines --\n")
	for _, m := range sys.Cluster.Machines() {
		util := 0.0
		if m.Util != nil {
			util = m.Util.Mean(0, sys.K.Now()) / m.Cores() * 100
		}
		fmt.Fprintf(stdout, "m%d: %2.0f cores, mem %d/%d MiB, mean cpu util %.1f%%, core-seconds %.3f\n",
			m.ID, m.Cores(), m.MemUsed()>>20, m.MemCapacity()>>20, util, m.CoreSeconds)
	}
	fmt.Fprintf(stdout, "\n-- proclets --\n")
	for _, pr := range sys.Runtime.Proclets() {
		fmt.Fprintf(stdout, "%-20s id=%-4d machine=%d heap=%dKiB invocations=%d\n",
			pr.Name(), pr.ID(), pr.Location(), pr.HeapBytes()>>10, pr.Invocations())
	}
	if *events {
		fmt.Fprintf(stdout, "\n-- event trace --\n%s", sys.Trace.String())
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, sys); err != nil {
			fmt.Fprintf(stderr, "qsctl: writing trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nwrote %d spans, %d telemetry series to %s\n",
			sys.Obs.Len(), len(sys.Tel.Series()), *traceOut)
	}
	return 0
}

// writeTrace exports the run's spans and samples: Chrome trace-event
// JSON by default, compact JSONL when the path ends in .jsonl.
func writeTrace(path string, sys *core.System) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return obs.WriteJSONL(f, sys.Obs, sys.Tel)
	}
	return obs.WriteChromeTrace(f, sys.Obs, sys.Tel)
}

// runScenarioFile implements `qsctl run <file.yaml>`: parse, execute at
// the requested seed and worker count, print the deterministic report,
// and exit nonzero when an assertion fails.
func runScenarioFile(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qsctl run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "seed override (0: the scenario's committed seed)")
	par := fs.Int("par", 1, "host worker count (must not change the report bytes)")
	report := fs.String("report", "", "write the machine-readable JSON verdict here")
	traceOut := fs.String("trace-out", "", "write the merged control-plane trace here")
	flightOut := fs.String("flight-out", "", "write the flight recorder dump here when an assertion fails or an incident opened")
	noAssert := fs.Bool("no-assert", false, "evaluate and print assertions but always exit 0 (for determinism sweeps at non-committed seeds)")
	// Accept both `qsctl run file.yaml -seed 7` and `qsctl run -seed 7
	// file.yaml`: the scenario file may come before the flags.
	file := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case file == "" && fs.NArg() == 1:
		file = fs.Arg(0)
	case file != "" && fs.NArg() == 0:
	default:
		fmt.Fprintln(stderr, "usage: qsctl run <scenario.yaml> [-seed N] [-par P] [-report out.json] [-trace-out out.txt] [-flight-out dump.txt] [-no-assert]")
		return 2
	}
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(stderr, "qsctl: %v\n", err)
		return 1
	}
	sp, err := scen.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "qsctl: %s: %v\n", file, err)
		return 2
	}
	out, err := scen.Run(sp, scen.Options{Seed: *seed, Par: *par})
	if err != nil {
		fmt.Fprintf(stderr, "qsctl: %v\n", err)
		return 1
	}
	out.WriteReport(stdout)
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(stderr, "qsctl: %v\n", err)
			return 1
		}
		werr := out.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "qsctl: writing report: %v\n", werr)
			return 1
		}
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, []byte(strings.Join(out.Trace, "\n")+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "qsctl: writing trace: %v\n", err)
			return 1
		}
	}
	// The flight recorder dump is the post-mortem artifact: write it
	// only when there is something to autopsy — a failed assertion or
	// an incident the SLO plane opened during the run.
	if *flightOut != "" && (!out.Pass || out.Metrics["incidents_opened"] > 0) {
		f, err := os.Create(*flightOut)
		if err != nil {
			fmt.Fprintf(stderr, "qsctl: %v\n", err)
			return 1
		}
		werr := out.WriteFlightDump(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "qsctl: writing flight dump: %v\n", werr)
			return 1
		}
		fmt.Fprintf(stdout, "wrote flight recorder dump to %s\n", *flightOut)
	}
	if !out.Pass && !*noAssert {
		return 1
	}
	return 0
}

// runTop implements `qsctl top <file.yaml>`: replay the scenario with
// per-window SLO history retained and render the windowed serving
// state, merged across shards, with open incidents marked per window.
func runTop(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qsctl top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "seed override (0: the scenario's committed seed)")
	par := fs.Int("par", 1, "host worker count (must not change the table)")
	file := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case file == "" && fs.NArg() == 1:
		file = fs.Arg(0)
	case file != "" && fs.NArg() == 0:
	default:
		fmt.Fprintln(stderr, "usage: qsctl top <scenario.yaml> [-seed N] [-par P]")
		return 2
	}
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(stderr, "qsctl: %v\n", err)
		return 1
	}
	sp, err := scen.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "qsctl: %s: %v\n", file, err)
		return 2
	}
	if !sp.SLO.Enabled() {
		fmt.Fprintf(stderr, "qsctl: %s: scenario has no slo block — nothing to render\n", file)
		return 2
	}
	out, err := scen.Run(sp, scen.Options{Seed: *seed, Par: *par, KeepWindows: true})
	if err != nil {
		fmt.Fprintf(stderr, "qsctl: %v\n", err)
		return 1
	}
	writeTop(stdout, out)
	return 0
}

// writeTop renders the per-window SLO table. Shard histories are
// merged by absolute window index: counts sum, tails take the
// worst-shard p999 (the operator cares about the slowest shard, and
// per-window histograms are not retained to re-aggregate exactly).
func writeTop(w io.Writer, out *scen.Outcome) {
	sp := out.Spec
	merged := map[int]*slo.WindowStat{}
	maxIdx := -1
	for _, hist := range out.SLOHistory {
		for i := range hist {
			ws := &hist[i]
			m, ok := merged[ws.Index]
			if !ok {
				cp := *ws
				merged[ws.Index] = &cp
				if ws.Index > maxIdx {
					maxIdx = ws.Index
				}
				continue
			}
			m.Count += ws.Count
			m.Good += ws.Good
			m.Errors += ws.Errors
			if ws.P999NS > m.P999NS {
				m.P999NS = ws.P999NS
			}
			if ws.MaxNS > m.MaxNS {
				m.MaxNS = ws.MaxNS
			}
		}
	}
	fmt.Fprintf(w, "slo top: %s seed %d — %gms windows, %d shards, %d rules\n",
		sp.Name, out.Seed, sp.SLO.WindowMS, len(out.SLOHistory), len(sp.SLO.Rules))
	fmt.Fprintf(w, "%4s %10s %8s %12s %10s %6s  %s\n",
		"win", "start", "reqs", "goodput r/s", "p999 ms", "err%", "incidents")
	for idx := 0; idx <= maxIdx; idx++ {
		ws, ok := merged[idx]
		if !ok {
			continue
		}
		var open []string
		for i := range out.Incidents {
			inc := &out.Incidents[i]
			if inc.OpenAt <= ws.End && (inc.Open || ws.End <= inc.CloseAt) {
				open = append(open, fmt.Sprintf("%s/%s", inc.Subject, inc.Rule))
			}
		}
		fmt.Fprintf(w, "%4d %10.1f %8d %12.0f %10.4f %6.2f  %s\n",
			idx, float64(ws.Start)/1e6, ws.Count, ws.GoodputRPS(),
			float64(ws.P999NS)/1e6, ws.ErrorRate()*100, strings.Join(open, " "))
	}
	if len(out.Incidents) > 0 {
		fmt.Fprintf(w, "incidents:\n")
		for i := range out.Incidents {
			inc := &out.Incidents[i]
			closeCol := "open"
			if !inc.Open {
				closeCol = fmt.Sprintf("%.1fms", float64(inc.CloseAt)/1e6)
			}
			cause := inc.Cause
			if cause == "" {
				cause = "-"
			}
			fmt.Fprintf(w, "  [%s] %s %s: %.1fms -> %s cause=%s\n",
				inc.Severity, inc.Subject, inc.Rule,
				float64(inc.OpenAt)/1e6, closeCol, cause)
		}
	}
}

// runAnalyze implements `qsctl analyze run.jsonl`.
func runAnalyze(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qsctl analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 10, "slowest migrations to list")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: qsctl analyze [-top N] run.jsonl")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "qsctl: %v\n", err)
		return 1
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		fmt.Fprintf(stderr, "qsctl: %v\n", err)
		return 1
	}
	obs.Analyze(recs).Print(stdout, *top)
	return 0
}

// runFiller reproduces a short Figure-1-style window: anti-phased
// antagonists and a migrating filler pool.
func runFiller(sys *core.System, horizon sim.Time, _ io.Writer) error {
	k := sys.K
	period := 20 * time.Millisecond
	for i, m := range sys.Cluster.Machines() {
		a := &workload.Antagonist{Machine: m, Period: period, Busy: period / 2,
			Offset: time.Duration(i) * period / 2, Cores: m.Cores()}
		a.Start(k)
	}
	pool, err := sys.NewPool("filler", 1, 8, 1, 8)
	if err != nil {
		return err
	}
	var feed func(cp *core.ComputeProclet)
	feed = func(cp *core.ComputeProclet) {
		cp.Run(func(tc *core.TaskCtx) {
			tc.Compute(50 * time.Microsecond)
			feed(tc.ComputeProclet())
		})
	}
	for _, m := range pool.Members() {
		feed(m)
		feed(m)
	}
	k.RunUntil(horizon)
	return nil
}

// runPipeline runs a short preprocessing pipeline over a sharded
// vector into a sharded queue.
func runPipeline(sys *core.System, horizon sim.Time, _ io.Writer) error {
	vec, err := sharded.NewVector[workload.Image](sys, "images", sharded.Options{MaxShardBytes: 8 << 20, AutoAdapt: true})
	if err != nil {
		return err
	}
	queue, err := sharded.NewQueue[workload.Batch](sys, "batches", sharded.Options{MaxShardBytes: 8 << 20})
	if err != nil {
		return err
	}
	gpus := workload.NewGPUPool(queue, 0, time.Millisecond, 8)
	gpus.Start(sys.K)
	pool, err := sys.NewPool("preproc", 1, 8, 1, 16)
	if err != nil {
		return err
	}
	sys.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			im := workload.Image{Idx: i, Bytes: 256 << 10, CPU: 2 * time.Millisecond}
			if err := vec.PushBack(p, 0, im, im.Bytes); err != nil {
				return
			}
		}
		it := vec.Iter(16)
		for {
			im, ok, err := it.Next(p, 0)
			if err != nil || !ok {
				break
			}
			img := im
			pool.Run(func(tc *core.TaskCtx) {
				tc.Compute(img.CPU)
				queue.Push(tc.Proc(), tc.Machine(), workload.Batch{Seq: img.Idx, Bytes: 16 << 10}, 16<<10)
			})
		}
	})
	sys.K.RunUntil(horizon)
	gpus.Stop()
	return nil
}

// runGPU exercises the GPU robustness plane: checkpointed trainers on
// a heterogeneous device mix ride out a fatal XID, a thermal throttle
// with ECC stutter, and a spot reclaim/return cycle, with the fleet
// watcher restoring, re-dispatching, and evacuating as each fault
// lands.
func runGPU(sys *core.System, horizon sim.Time, out io.Writer) error {
	for _, m := range sys.Cluster.Machines() {
		m.AddGPUs(
			cluster.GPUConfig{Count: 2, MemBytes: 1 << 30, LinkBandwidth: 16_000_000_000,
				Class: "a100", Speed: 1},
			cluster.GPUConfig{Count: 1, MemBytes: 1 << 30, LinkBandwidth: 16_000_000_000,
				Class: "h100", Speed: 2},
		)
	}
	fleet := gpu.NewFleetConfig(sys, "trainers", gpu.Config{
		Period: time.Millisecond,
		Checkpoint: gpu.CheckpointConfig{
			DeltaBytes:    256 << 10,
			SnapshotEvery: 50,
			Home:          gpu.AutoHome,
		},
	})
	var trainers []*gpu.Proclet
	for i := 0; i < 3; i++ {
		gp, err := fleet.Add(fmt.Sprintf("trainer-%d", i), 128<<20, time.Millisecond)
		if err != nil {
			return err
		}
		trainers = append(trainers, gp)
		sys.K.Spawn("driver", func(p *sim.Proc) {
			for p.Now() < horizon {
				err := gp.Step(p, gp.Device().Machine.ID, 1<<20)
				if err == nil {
					continue
				}
				if errors.Is(err, proclet.ErrDead) {
					return
				}
				if gp.AwaitPlaced(p) != nil {
					return
				}
			}
		})
	}
	fleet.Start()
	in := fault.New(sys.K, sys.Cluster, sys.Trace)
	in.HookGPU = func(cluster.MachineID, int) { fleet.Kick() }
	at := func(frac float64) sim.Time { return sim.Time(float64(horizon) * frac) }
	d0, d1, d2 := trainers[0].Device(), trainers[1].Device(), trainers[2].Device()
	in.Install(fault.Schedule{
		{At: at(0.15), Op: fault.OpGPUReclaim, A: d2.Machine.ID, Gpu: d2.Index},
		{At: at(0.25), Op: fault.OpGPUXid, A: d0.Machine.ID, Gpu: d0.Index, Xid: 79},
		{At: at(0.45), Op: fault.OpGPUThrottle, A: d1.Machine.ID, Gpu: d1.Index,
			Factor: 4, StallEvery: 8, Stall: 2 * time.Millisecond},
		{At: at(0.6), Op: fault.OpGPUReturn, A: d2.Machine.ID, Gpu: d2.Index},
		{At: at(0.8), Op: fault.OpGPUHeal, A: d1.Machine.ID, Gpu: d1.Index},
	})
	sys.K.RunUntil(horizon)
	fleet.Stop()
	for _, gp := range trainers {
		fmt.Fprintf(out, "%s: %d steps (%d checkpointed), now on %v\n",
			gp.Name(), gp.CompletedSteps(), gp.Checkpoints.Value(), gp.Device())
	}
	fmt.Fprintf(out, "faults: %d xid, %d throttle, %d reclaim, %d heal\n",
		in.GPUXids.Value(), in.GPUThrottles.Value(), in.GPUReclaims.Value(), in.GPUHeals.Value())
	fmt.Fprintf(out, "fleet: %d restores, %d evacuations, %d mitigations (mean %.1f ms), %d stranded polls, %d steps lost\n\n",
		fleet.Restores.Value(), fleet.Evacuations.Value(), fleet.Mitigations.Value(),
		fleet.MigrationLatency.Mean()*1000, fleet.Stranded.Value(), fleet.LostSteps())
	return nil
}

// runReplicas replicates a small store fleet at RF=2, drives writers
// through a primary crash, and dumps each replica set's status — the
// view an operator would use to answer "is my data safe and who is
// serving it?".
func runReplicas(sys *core.System, horizon sim.Time, out io.Writer) error {
	in := fault.New(sys.K, sys.Cluster, sys.Trace)
	sys.AttachInjector(in)
	// Monitor and writers live on m0; primaries on m1..m3; m1 crashes
	// mid-run and restarts late.
	rm := sys.EnableReplicationPlane(replication.Config{}, 0)
	const stores = 6
	mps := make([]*core.MemoryProclet, stores)
	for i := range mps {
		mid := cluster.MachineID(1 + i%(len(sys.Cluster.Machines())-1))
		mp, err := core.NewMemoryProcletOn(sys, fmt.Sprintf("store-%d", i), mid)
		if err != nil {
			return err
		}
		if err := rm.Replicate(mp, 2); err != nil {
			return err
		}
		mps[i] = mp
	}
	in.Install(fault.Schedule{
		{At: sim.Time(float64(horizon) * 0.3), Op: fault.OpCrash, A: 1},
		{At: sim.Time(float64(horizon) * 0.7), Op: fault.OpRestart, A: 1},
	})
	for w := 0; w < 8; w++ {
		w := w
		sys.K.Spawn(fmt.Sprintf("writer-%d", w), func(p *sim.Proc) {
			for op := 0; p.Now() < horizon; op++ {
				mps[(w+op)%stores].Put(p, 0, uint64(w)<<32|uint64(op), op, 4<<10)
				p.Sleep(100 * time.Microsecond)
			}
		})
	}
	sys.K.RunUntil(horizon)

	fmt.Fprintln(out, "-- replica sets --")
	det := rm.Detector()
	for _, st := range rm.Status() {
		lease := "EXPIRED"
		if st.LeaseValid {
			lease = fmt.Sprintf("valid until %v", st.LeaseExpiry)
		}
		fmt.Fprintf(out, "%-10s primary id=%-4d m%d  lease %-22s log seq %d\n",
			st.Name, st.PrimaryID, st.PrimaryMachine, lease, st.Seq)
		for _, b := range st.Backups {
			fmt.Fprintf(out, "           backup  id=%-4d m%d  applied %d (lag %d)\n",
				b.ID, b.Machine, b.Applied, b.Lag)
		}
	}
	fmt.Fprintf(out, "\n-- durability plane --\n")
	fmt.Fprintf(out, "heartbeats sent %d, missed %d; suspects %d, confirms %d, false suspects %d\n",
		det.HeartbeatsSent.Value(), det.HeartbeatsMissed.Value(),
		det.Suspects.Value(), det.Confirms.Value(), det.FalseSuspects.Value())
	fmt.Fprintf(out, "promotions %d, deposes %d, resyncs %d, backup drops %d; batches %d carrying %d records\n",
		rm.Promotions.Value(), rm.Deposes.Value(), rm.Resyncs.Value(), rm.BackupDrops.Value(),
		rm.ReplBatches.Value(), rm.ReplRecords.Value())
	if n := rm.PromoteLatency.Count(); n > 0 {
		fmt.Fprintf(out, "promote latency: mean %.3f ms, max %.3f ms over %d promotions\n",
			rm.PromoteLatency.Mean()*1000, rm.PromoteLatency.Max()*1000, n)
	}
	fmt.Fprintln(out)
	return nil
}

// runServe drives an ext-serve-style open-loop request stream against a
// sharded map: two tenants' aggregate arrival processes (a diurnal web
// tenant and a flash-crowding batch tenant) stand in for tens of
// thousands of clients, Zipfian samplers skew key popularity, and a
// jittered antagonist steals cores mid-run so the reported tail has
// real contention in it. It prints the latency histogram summary an
// operator would read: per-tenant load, goodput, timeout rate, and
// p50/p99/p999.
func runServe(sys *core.System, horizon sim.Time, out io.Writer) error {
	const (
		objects  = 4096
		objBytes = 512
		batchMax = 32
		servers  = 4
	)
	poll := 20 * time.Microsecond
	deadline := sim.Time(time.Millisecond)

	kv, err := sharded.NewMap[uint64, int](sys, "kv", sharded.Options{MaxShardBytes: 1 << 20})
	if err != nil {
		return err
	}

	hist := metrics.NewLogHistogram("serve.latency")
	var queue []load.Request
	qhead := 0
	inj := load.NewInjector(sys.K, 250*time.Microsecond, func(r load.Request) {
		queue = append(queue, r)
	})
	step := time.Duration(horizon) / 200
	web := inj.AddTenant("web",
		load.Sampled(horizon, step, load.Diurnal(40_000, 0.4, time.Duration(horizon)/2)),
		load.NewZipf(objects, 0.99))
	spike := load.Spike(sim.Time(float64(horizon)*0.5),
		time.Duration(horizon)/20, time.Duration(horizon)/10, time.Duration(horizon)/20, 4)
	diur := load.Diurnal(15_000, 0.2, time.Duration(horizon)/2)
	batch := inj.AddTenant("batch",
		load.Sampled(horizon, step, func(t sim.Time) float64 { return diur(t) * spike(t) }),
		load.NewZipf(objects, 0.75))

	// The antagonist's busy windows collide with serving on m1; Jitter
	// decorrelates them from the diurnal phase.
	ant := &workload.Antagonist{Machine: sys.Cluster.Machine(1),
		Period: time.Duration(horizon) / 10, Busy: time.Duration(horizon) / 40,
		Cores: 4, Jitter: time.Duration(horizon) / 100, Rng: rand.New(rand.NewSource(7))}
	ant.Start(sys.K)

	var served, timeouts uint64
	sys.K.Spawn("setup", func(p *sim.Proc) {
		for r := uint64(0); r < objects; r++ {
			if err := kv.Put(p, 0, load.ScrambleKey(r), int(r), objBytes); err != nil {
				return
			}
		}
		inj.Start(p.Now(), horizon)
		for s := 0; s < servers; s++ {
			sys.K.Spawn(fmt.Sprintf("server-%d", s), func(p *sim.Proc) {
				keys := make([]uint64, 0, batchMax)
				for {
					if qhead == len(queue) {
						if p.Now() >= horizon {
							return
						}
						p.Sleep(poll)
						continue
					}
					n := len(queue) - qhead
					if n > batchMax {
						n = batchMax
					}
					reqs := queue[qhead : qhead+n]
					qhead += n
					keys = keys[:0]
					for _, r := range reqs {
						keys = append(keys, r.Key)
					}
					if _, _, err := kv.GetBatch(p, 0, keys); err != nil {
						return
					}
					now := p.Now()
					for _, r := range reqs {
						lat := int64(now - r.At)
						hist.Record(lat)
						served++
						if lat > int64(deadline) {
							timeouts++
						}
					}
				}
			})
		}
	})
	sys.K.RunUntil(horizon)

	fmt.Fprintln(out, "-- serving plane --")
	fmt.Fprintf(out, "tenants: %s %d reqs, %s %d reqs over %d windows\n",
		inj.TenantName(web), inj.Generated(web),
		inj.TenantName(batch), inj.Generated(batch), inj.Windows())
	goodput := float64(served-timeouts) / (float64(horizon) / float64(time.Second))
	fmt.Fprintf(out, "generated %d, served %d, timeouts %d (deadline %v), goodput %.0f req/s\n",
		inj.TotalGenerated(), served, timeouts, time.Duration(deadline), goodput)
	fmt.Fprintf(out, "%s\n\n", hist)
	return nil
}

// runChurn exercises split/merge on a sharded map under insert/delete
// waves, with a bursty co-tenant on m0 that periodically claims most of
// the machine's memory. Each burst drives m0 over the memory high
// water, so the fast-path reactor evacuates shards — producing the
// pressure → migration causal chains the trace exporters capture.
func runChurn(sys *core.System, horizon sim.Time, _ io.Writer) error {
	m, err := sharded.NewMap[int, []byte](sys, "kv", sharded.Options{MaxShardBytes: 1 << 20, AutoAdapt: true})
	if err != nil {
		return err
	}
	m0 := sys.Cluster.Machine(0)
	sys.K.Every(sim.Time(10*time.Millisecond), 20*time.Millisecond, func() bool {
		// Claim all but 2 MiB of whatever is free: pressure spikes well
		// past the high water, and only evacuating shards relieves it.
		tenant := m0.MemFree() - (2 << 20)
		if tenant > 0 && m0.AllocMem(tenant) == nil {
			sys.K.After(8*time.Millisecond, func() { m0.FreeMem(tenant) })
		}
		return true
	})
	sys.K.Spawn("churner", func(p *sim.Proc) {
		for wave := 0; ; wave++ {
			for i := 0; i < 512; i++ {
				if err := m.Put(p, 0, wave*10000+i, nil, 8<<10); err != nil {
					return
				}
			}
			for i := 0; i < 480; i++ {
				if err := m.Delete(p, 0, wave*10000+i); err != nil {
					return
				}
			}
			p.Sleep(time.Millisecond)
		}
	})
	sys.K.RunUntil(horizon)
	return nil
}
