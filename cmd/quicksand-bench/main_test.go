package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// TestWriteBenchJSON round-trips a stats record through the BENCH file.
func TestWriteBenchJSON(t *testing.T) {
	dir := t.TempDir()
	st := benchStats{ID: "fig1", WallMS: 211.5, Events: 1234567, Allocs: 89_000,
		Values: map[string]float64{"lost_rf2": 0, "failover_ms_mean": 3.14}}
	path, err := writeBenchJSON(dir, st)
	if err != nil {
		t.Fatalf("writeBenchJSON: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_fig1.json"); path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var got benchStats
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.ID != st.ID || got.WallMS != st.WallMS || got.Events != st.Events || got.Allocs != st.Allocs {
		t.Errorf("round trip = %+v, want %+v", got, st)
	}
	if len(got.Values) != len(st.Values) {
		t.Fatalf("values round trip = %v, want %v", got.Values, st.Values)
	}
	for k, v := range st.Values {
		if got.Values[k] != v {
			t.Errorf("values[%q] = %v, want %v", k, got.Values[k], v)
		}
	}
	if data[len(data)-1] != '\n' {
		t.Error("BENCH file must end with a newline")
	}
}

// TestWriteBenchJSONBadDir: write failures surface as errors, not
// silent drops.
func TestWriteBenchJSONBadDir(t *testing.T) {
	if _, err := writeBenchJSON(filepath.Join(t.TempDir(), "missing"), benchStats{ID: "x"}); err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}

// TestBenchStatsFromExperiment: a real (test-scale) experiment yields a
// populated events count for the JSON record.
func TestBenchStatsFromExperiment(t *testing.T) {
	res, err := experiments.Run("fig1", experiments.TestScale)
	if err != nil {
		t.Fatalf("fig1: %v", err)
	}
	if res.EventsProcessed == 0 {
		t.Error("fig1 reported 0 events processed; BENCH json would be empty")
	}
	if _, err := writeBenchJSON(t.TempDir(), benchStats{ID: res.ID, Events: res.EventsProcessed}); err != nil {
		t.Fatalf("writeBenchJSON: %v", err)
	}
}
