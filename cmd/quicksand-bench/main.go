// Command quicksand-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	quicksand-bench [-scale full|test] [-par N] [experiment ...]
//	quicksand-bench -list
//
// With no experiment arguments it runs the whole suite. Experiment IDs
// and what they reproduce are described in DESIGN.md's experiment
// index; `-list` prints them.
//
// -par N bounds the host workers used to run experiments (and the
// independent configurations inside each experiment) concurrently;
// 0 means one worker per host core. Every simulation runs on its own
// deterministic kernel and results are always printed in request
// order, so the output is identical at any -par value.
//
// -cpuprofile / -memprofile write pprof profiles of the run for
// `go tool pprof`.
//
// -json additionally writes one BENCH_<id>.json file per experiment
// with the host-side cost of the run: wall-clock time, kernel events
// processed, and heap allocations. Allocation counts are process-wide
// deltas, so they are exact only at -par 1; under parallel runs they
// include whatever ran concurrently.
//
// -seed N offsets the RNG seeds of the seed-swept experiments (fig2,
// ext-chaos, ext-failover). Two runs at the same -seed must produce byte-identical
// output — CI's seed-sweep job enforces this. 0 (the default) keeps
// the committed seeds that the BENCH_*.json baselines were recorded at.
//
// -trace-dir DIR enables causal span tracing plus resource telemetry
// on the traced experiments (fig1's quicksand mode, ext-failover's
// RF=2 crash run) and writes each run as Chrome trace-event JSON to
// DIR/<id>.trace.json — open the files in Perfetto. Telemetry sampling
// adds kernel events, so do not combine -trace-dir with runs whose
// event counts feed the bench baselines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/runpar"
)

// benchStats is the machine-readable record emitted by -json for one
// experiment run. Values carries the experiment's machine-readable
// results (goodput, objects lost, failover latency, ...) so benchdiff
// can gate behavioural guarantees, not just host cost.
type benchStats struct {
	ID     string             `json:"id"`
	WallMS float64            `json:"wall_ms"`
	Events uint64             `json:"events_processed"`
	Allocs uint64             `json:"allocs"`
	Values map[string]float64 `json:"values,omitempty"`
}

// writeBenchJSON writes st to BENCH_<id>.json under dir and returns
// the path written.
func writeBenchJSON(dir string, st benchStats) (string, error) {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+st.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: full (paper) or test (CI)")
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "emit plot-ready CSV time series instead of tables (fig1/fig3)")
	par := flag.Int("par", 0, "max concurrent host workers for experiments (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "write BENCH_<id>.json per experiment (wall clock, events, allocs)")
	seed := flag.Int64("seed", 0, "seed offset for seed-swept experiments (0 = committed seeds)")
	traceDir := flag.String("trace-dir", "", "export Chrome trace-event JSON of traced experiments to this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile to `file` at exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.List() {
			fmt.Printf("%-15s %s\n", id, experiments.Title(id))
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "full":
		scale = experiments.FullScale
	case "test":
		scale = experiments.TestScale
	default:
		fmt.Fprintf(os.Stderr, "quicksand-bench: unknown scale %q (want full or test)\n", *scaleFlag)
		os.Exit(2)
	}

	if *memprofile != "" {
		// Match `go test -memprofile`: sample every 4 KiB allocated
		// instead of the 512 KiB default, so short runs yield a usable
		// allocation profile. Must be set before the first allocation
		// of interest.
		runtime.MemProfileRate = 4096
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quicksand-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "quicksand-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	experiments.SetParallelism(*par)
	experiments.SetBaseSeed(*seed)
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "quicksand-bench: %v\n", err)
			os.Exit(1)
		}
		experiments.SetTraceDir(*traceDir)
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.List()
	}

	// Run experiments concurrently but print strictly in request order.
	type outcome struct {
		res *experiments.Result
		err error
		st  benchStats
	}
	outs := runpar.Map(len(ids), *par, func(i int) outcome {
		var m0 runtime.MemStats
		if *jsonOut {
			runtime.ReadMemStats(&m0)
		}
		start := time.Now()
		res, err := experiments.Run(ids[i], scale)
		o := outcome{res: res, err: err}
		if *jsonOut && err == nil {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			o.st = benchStats{
				ID:     ids[i],
				WallMS: float64(time.Since(start).Microseconds()) / 1000,
				Events: res.EventsProcessed,
				Allocs: m1.Mallocs - m0.Mallocs,
				Values: res.Values,
			}
		}
		return o
	})

	failed := false
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if outs[i].err != nil {
			fmt.Fprintf(os.Stderr, "quicksand-bench: %s: %v\n", id, outs[i].err)
			failed = true
			continue
		}
		if *jsonOut {
			path, err := writeBenchJSON(".", outs[i].st)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quicksand-bench: %s: %v\n", id, err)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "quicksand-bench: wrote %s\n", path)
			}
		}
		if *csv {
			outs[i].res.WriteCSV(os.Stdout)
			continue
		}
		outs[i].res.Print(os.Stdout)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quicksand-bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "quicksand-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if failed {
		os.Exit(1)
	}
}
