// Command quicksand-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	quicksand-bench [-scale full|test] [experiment ...]
//	quicksand-bench -list
//
// With no experiment arguments it runs the whole suite. Experiment IDs
// and what they reproduce are described in DESIGN.md's experiment
// index; `-list` prints them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: full (paper) or test (CI)")
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "emit plot-ready CSV time series instead of tables (fig1/fig3)")
	flag.Parse()

	if *list {
		for _, id := range experiments.List() {
			fmt.Printf("%-15s %s\n", id, experiments.Title(id))
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "full":
		scale = experiments.FullScale
	case "test":
		scale = experiments.TestScale
	default:
		fmt.Fprintf(os.Stderr, "quicksand-bench: unknown scale %q (want full or test)\n", *scaleFlag)
		os.Exit(2)
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.List()
	}
	failed := false
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		res, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quicksand-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		if *csv {
			res.WriteCSV(os.Stdout)
			continue
		}
		res.Print(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}
