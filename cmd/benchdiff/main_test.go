package main

import "testing"

func TestCompare(t *testing.T) {
	base := benchStats{ID: "fig1", WallMS: 100, Events: 1000, Allocs: 500}
	cases := []struct {
		name  string
		cand  benchStats
		tol   float64
		fails int
	}{
		{"identical", benchStats{Events: 1000, Allocs: 500}, 0.10, 0},
		{"within tolerance", benchStats{Events: 1050, Allocs: 540}, 0.10, 0},
		{"events regress high", benchStats{Events: 1200, Allocs: 500}, 0.10, 1},
		{"events regress low", benchStats{Events: 800, Allocs: 500}, 0.10, 1},
		{"allocs regress", benchStats{Events: 1000, Allocs: 600}, 0.10, 1},
		{"allocs improve passes", benchStats{Events: 1000, Allocs: 100}, 0.10, 0},
		{"both regress", benchStats{Events: 2000, Allocs: 2000}, 0.10, 2},
		{"exactly at tolerance", benchStats{Events: 1100, Allocs: 550}, 0.10, 0},
		{"tighter tol catches drift", benchStats{Events: 1050, Allocs: 500}, 0.01, 1},
		{"wall clock never gated", benchStats{WallMS: 9999, Events: 1000, Allocs: 500}, 0.10, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := compare(base, tc.cand, tc.tol)
			if len(fails) != tc.fails {
				t.Fatalf("compare(%+v) = %d failures %v, want %d",
					tc.cand, len(fails), fails, tc.fails)
			}
		})
	}
}

func TestRelDelta(t *testing.T) {
	cases := []struct {
		base, cand uint64
		want       float64
	}{
		{100, 110, 0.10},
		{100, 90, -0.10},
		{100, 100, 0},
		{0, 0, 0},
		{0, 5, 1},
	}
	for _, tc := range cases {
		got := relDelta(tc.base, tc.cand)
		diff := got - tc.want
		if diff < -1e-12 || diff > 1e-12 {
			t.Errorf("relDelta(%d, %d) = %v, want %v", tc.base, tc.cand, got, tc.want)
		}
	}
}
