package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	base := benchStats{ID: "fig1", WallMS: 100, Events: 1000, Allocs: 500}
	cases := []struct {
		name  string
		cand  benchStats
		tol   float64
		fails int
	}{
		{"identical", benchStats{Events: 1000, Allocs: 500}, 0.10, 0},
		{"within tolerance", benchStats{Events: 1050, Allocs: 540}, 0.10, 0},
		{"events regress high", benchStats{Events: 1200, Allocs: 500}, 0.10, 1},
		{"events regress low", benchStats{Events: 800, Allocs: 500}, 0.10, 1},
		{"allocs regress", benchStats{Events: 1000, Allocs: 600}, 0.10, 1},
		{"allocs improve passes", benchStats{Events: 1000, Allocs: 100}, 0.10, 0},
		{"both regress", benchStats{Events: 2000, Allocs: 2000}, 0.10, 2},
		{"exactly at tolerance", benchStats{Events: 1100, Allocs: 550}, 0.10, 0},
		{"tighter tol catches drift", benchStats{Events: 1050, Allocs: 500}, 0.01, 1},
		{"wall clock never gated", benchStats{WallMS: 9999, Events: 1000, Allocs: 500}, 0.10, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := compare(base, tc.cand, tc.tol)
			if len(fails) != tc.fails {
				t.Fatalf("compare(%+v) = %d failures %v, want %d",
					tc.cand, len(fails), fails, tc.fails)
			}
		})
	}
}

func TestRelDelta(t *testing.T) {
	cases := []struct {
		base, cand uint64
		want       float64
	}{
		{100, 110, 0.10},
		{100, 90, -0.10},
		{100, 100, 0},
		{0, 0, 0},
		{0, 5, 1},
	}
	for _, tc := range cases {
		got := relDelta(tc.base, tc.cand)
		diff := got - tc.want
		if diff < -1e-12 || diff > 1e-12 {
			t.Errorf("relDelta(%d, %d) = %v, want %v", tc.base, tc.cand, got, tc.want)
		}
	}
}

func TestCompareValues(t *testing.T) {
	// A record shaped like BENCH_ext-failover.json: durability counters
	// plus failover latency.
	base := benchStats{
		ID: "ext-failover", Events: 1000, Allocs: 500,
		Values: map[string]float64{
			"lost_rf2":         0,
			"lost_rf1":         1372,
			"failover_ms_mean": 3.14,
			"failover_ms_max":  3.27,
			"ops_rf2":          12262, // informational, never gated
		},
	}
	cases := []struct {
		name  string
		vals  map[string]float64
		fails int
	}{
		{"identical", map[string]float64{
			"lost_rf2": 0, "lost_rf1": 1372,
			"failover_ms_mean": 3.14, "failover_ms_max": 3.27, "ops_rf2": 12262}, 0},
		{"data loss appears", map[string]float64{
			"lost_rf2": 3, "lost_rf1": 1372,
			"failover_ms_mean": 3.14, "failover_ms_max": 3.27}, 1},
		{"rf1 loss may shrink", map[string]float64{
			"lost_rf2": 0, "lost_rf1": 900,
			"failover_ms_mean": 3.14, "failover_ms_max": 3.27}, 0},
		{"failover latency within tol", map[string]float64{
			"lost_rf2": 0, "lost_rf1": 1372, "failover_ms_mean": 3.3, "failover_ms_max": 3.4}, 0},
		{"failover latency regresses", map[string]float64{
			"lost_rf2": 0, "lost_rf1": 1372, "failover_ms_mean": 9.9, "failover_ms_max": 3.27}, 1},
		{"failover latency too-good is still drift", map[string]float64{
			"lost_rf2": 0, "lost_rf1": 1372, "failover_ms_mean": 0.1, "failover_ms_max": 3.27}, 1},
		{"informational values never gate", map[string]float64{
			"lost_rf2": 0, "lost_rf1": 1372,
			"failover_ms_mean": 3.14, "failover_ms_max": 3.27, "ops_rf2": 1}, 0},
		{"gated key vanished from candidate", map[string]float64{
			"lost_rf2": 0, "lost_rf1": 1372, "failover_ms_mean": 3.14}, 1},
		{"candidate without values loses every gated key", nil, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand := benchStats{Events: 1000, Allocs: 500, Values: tc.vals}
			fails := compare(base, cand, 0.10)
			if len(fails) != tc.fails {
				t.Fatalf("compare = %d failures %v, want %d", len(fails), fails, tc.fails)
			}
		})
	}
	// Old baseline without values must not gate a candidate that has them.
	if fails := compare(benchStats{Events: 1000, Allocs: 500},
		benchStats{Events: 1000, Allocs: 500, Values: map[string]float64{"lost_rf2": 5}}, 0.10); len(fails) != 0 {
		t.Fatalf("baseline without values gated candidate: %v", fails)
	}
}

func TestCompareServingValues(t *testing.T) {
	// A record shaped like BENCH_ext-serve.json: goodput plus overall and
	// per-phase tail quantiles, with wall_* and p50 informational.
	base := benchStats{
		ID: "ext-serve", Events: 1000, Allocs: 500,
		Values: map[string]float64{
			"goodput_rps":     3_700_000,
			"p999_ms":         0.110,
			"p999_ms_migrate": 0.227,
			"p50_ms":          0.012, // informational, never gated
			"wall_ms_p8":      950,   // host time, never gated
			"wall_speedup_p8": 3.1,   // host time, never gated
			"events":          123456,
		},
	}
	cases := []struct {
		name  string
		vals  map[string]float64
		fails int
	}{
		{"identical", map[string]float64{
			"goodput_rps": 3_700_000, "p999_ms": 0.110, "p999_ms_migrate": 0.227,
			"p50_ms": 0.012, "wall_ms_p8": 950, "wall_speedup_p8": 3.1, "events": 123456}, 0},
		{"within tolerance", map[string]float64{
			"goodput_rps": 3_500_000, "p999_ms": 0.115, "p999_ms_migrate": 0.23}, 0},
		{"goodput collapses", map[string]float64{
			"goodput_rps": 2_000_000, "p999_ms": 0.110, "p999_ms_migrate": 0.227}, 1},
		{"goodput too-good is still drift", map[string]float64{
			"goodput_rps": 9_000_000, "p999_ms": 0.110, "p999_ms_migrate": 0.227}, 1},
		{"tail regresses", map[string]float64{
			"goodput_rps": 3_700_000, "p999_ms": 0.5, "p999_ms_migrate": 0.227}, 1},
		{"migration-phase tail regresses", map[string]float64{
			"goodput_rps": 3_700_000, "p999_ms": 0.110, "p999_ms_migrate": 0.9}, 1},
		{"wall and p50 drift never gate", map[string]float64{
			"goodput_rps": 3_700_000, "p999_ms": 0.110, "p999_ms_migrate": 0.227,
			"p50_ms": 9.9, "wall_ms_p8": 1, "wall_speedup_p8": 0.1, "events": 1}, 0},
		{"gated serving key vanished", map[string]float64{
			"goodput_rps": 3_700_000, "p999_ms": 0.110}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand := benchStats{Events: 1000, Allocs: 500, Values: tc.vals}
			fails := compare(base, cand, 0.10)
			if len(fails) != tc.fails {
				t.Fatalf("compare = %d failures %v, want %d", len(fails), fails, tc.fails)
			}
		})
	}
}

func TestReadStatsFailures(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Missing baseline: the error must say how to record one.
	_, err := readStats(dir, "ext-scale")
	if err == nil || !strings.Contains(err.Error(), "quicksand-bench -json") {
		t.Errorf("missing record error = %v, want a hint to run quicksand-bench -json", err)
	}

	// Malformed JSON still reports the path.
	write("BENCH_broken.json", "{not json")
	if _, err := readStats(dir, "broken"); err == nil || !strings.Contains(err.Error(), "BENCH_broken.json") {
		t.Errorf("malformed record error = %v, want the file path", err)
	}

	// A record with zero events is malformed (every real run has events).
	write("BENCH_empty.json", `{"id":"empty","wall_ms":1,"events_processed":0,"allocs":0}`)
	if _, err := readStats(dir, "empty"); err == nil || !strings.Contains(err.Error(), "events_processed") {
		t.Errorf("zero-events record error = %v, want an events_processed complaint", err)
	}

	// Embedded id must match the requested experiment.
	write("BENCH_fig1.json", `{"id":"fig2","events_processed":10,"allocs":1}`)
	if _, err := readStats(dir, "fig1"); err == nil || !strings.Contains(err.Error(), `"fig2"`) {
		t.Errorf("mismatched id error = %v, want the stale id named", err)
	}

	// A good record round-trips.
	write("BENCH_ok.json", `{"id":"ok","wall_ms":2,"events_processed":10,"allocs":1,"values":{"ops":5}}`)
	st, err := readStats(dir, "ok")
	if err != nil {
		t.Fatalf("valid record: %v", err)
	}
	if st.Events != 10 || st.Values["ops"] != 5 {
		t.Errorf("valid record parsed as %+v", st)
	}
}
