// Command benchdiff compares BENCH_<id>.json cost records produced by
// `quicksand-bench -json` against a committed baseline, and fails when
// a candidate regresses.
//
// Usage:
//
//	benchdiff [-tol 0.10] baselineDir candidateDir id...
//
// For each experiment ID it reads BENCH_<id>.json from both
// directories and compares:
//
//   - events_processed: must match the baseline within ±tol in either
//     direction — kernel event counts are deterministic, so a change
//     beyond noise means the simulation's behaviour changed, faster or
//     slower.
//   - allocs: must not exceed the baseline by more than tol. Falling
//     below is an improvement and passes; heap allocation counts are
//     exact only for -par 1 runs, which is what CI records.
//   - wall_ms: reported for context, never gated — wall clock depends
//     on the host.
//   - values: behavioural guarantees, gated for keys the baseline
//     records (old baselines without values skip these checks).
//     Keys prefixed "lost" are durability counters and must not exceed
//     the baseline — with committed baselines of zero that means no
//     acked object may ever be lost. Failover latency keys
//     (failover_ms_mean/max) must stay within ±tol of the baseline.
//     Serving-tail keys — goodput_rps and every p999_ms* quantile —
//     are gated the same way: the simulation is deterministic, so a
//     drift beyond tolerance means the serving behaviour changed.
//     Other values are informational; keys prefixed "wall_" are host
//     time by convention and never gated. A gated key present in the
//     baseline but missing from the candidate fails explicitly.
//
// Missing or malformed records fail with a message saying how to
// regenerate them (a baseline with zero events is treated as
// malformed), and a record whose embedded id doesn't match its
// filename is rejected as stale.
//
// Exit status is 1 if any comparison fails, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchStats mirrors the record written by quicksand-bench -json.
type benchStats struct {
	ID     string             `json:"id"`
	WallMS float64            `json:"wall_ms"`
	Events uint64             `json:"events_processed"`
	Allocs uint64             `json:"allocs"`
	Values map[string]float64 `json:"values,omitempty"`
}

func readStats(dir, id string) (benchStats, error) {
	var st benchStats
	path := filepath.Join(dir, "BENCH_"+id+".json")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, fmt.Errorf(
			"%s does not exist — record it with `quicksand-bench -json -out %s %s`",
			path, dir, id)
	}
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("%s: %w", path, err)
	}
	if st.ID != "" && st.ID != id {
		return st, fmt.Errorf("%s records experiment %q, not %q — stale or misnamed file", path, st.ID, id)
	}
	if st.Events == 0 {
		return st, fmt.Errorf(
			"%s has no events_processed — malformed or truncated record; regenerate it with `quicksand-bench -json`", path)
	}
	return st, nil
}

// relDelta returns (cand-base)/base; +0.10 means 10% above baseline.
func relDelta(base, cand uint64) float64 {
	if base == 0 {
		if cand == 0 {
			return 0
		}
		return 1
	}
	return float64(cand)/float64(base) - 1
}

// compare checks one experiment's candidate stats against its baseline
// and returns human-readable failure reasons (empty = pass).
func compare(base, cand benchStats, tol float64) []string {
	// Small epsilon so a candidate sitting exactly at the tolerance
	// boundary passes despite float rounding (1100/1000-1 > 0.10).
	tol += 1e-9
	var fails []string
	if d := relDelta(base.Events, cand.Events); d > tol || d < -tol {
		fails = append(fails, fmt.Sprintf(
			"events_processed %d -> %d (%+.1f%%, tolerance ±%.0f%%): deterministic behaviour changed",
			base.Events, cand.Events, 100*d, 100*tol))
	}
	if d := relDelta(base.Allocs, cand.Allocs); d > tol {
		fails = append(fails, fmt.Sprintf(
			"allocs %d -> %d (%+.1f%%, tolerance +%.0f%%): allocation regression",
			base.Allocs, cand.Allocs, 100*d, 100*tol))
	}
	fails = append(fails, compareValues(base.Values, cand.Values, tol)...)
	return fails
}

// gatedValue reports whether a values key carries a behavioural
// guarantee that benchdiff enforces (vs informational context).
func gatedValue(k string) bool {
	return strings.HasPrefix(k, "lost") || k == "failover_ms_mean" || k == "failover_ms_max" ||
		k == "goodput_rps" || strings.HasPrefix(k, "p999_ms") || k == "makespan_ratio"
}

// compareValues gates behavioural values. Non-gated keys — including
// everything prefixed "wall_", which is host time by convention — are
// informational. A gated key the baseline has but the candidate lost is
// a failure (the experiment's metric keys changed under the gate); keys
// only the candidate has are new metrics and pass silently until the
// baseline is regenerated.
func compareValues(base, cand map[string]float64, tol float64) []string {
	var fails []string
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bv := base[k]
		cv, ok := cand[k]
		if !ok {
			if gatedValue(k) {
				fails = append(fails, fmt.Sprintf(
					"%s gated by the baseline but missing from the candidate: metric keys changed; regenerate the baseline if intentional", k))
			}
			continue
		}
		switch {
		case strings.HasPrefix(k, "lost"):
			// Durability counter: acked objects lost must never grow.
			// Committed baselines record 0, so any loss fails.
			if cv > bv {
				fails = append(fails, fmt.Sprintf(
					"%s %.0f -> %.0f: durability regression (acked objects lost)", k, bv, cv))
			}
		case k == "failover_ms_mean" || k == "failover_ms_max":
			lo, hi := bv*(1-tol), bv*(1+tol)
			if cv < lo || cv > hi {
				fails = append(fails, fmt.Sprintf(
					"%s %.2f -> %.2f (tolerance ±%.0f%%): failover latency drifted", k, bv, cv, 100*tol))
			}
		case k == "makespan_ratio":
			// Fixed-work completion time relative to the undisturbed
			// oracle: the price of robustness must not creep.
			lo, hi := bv*(1-tol), bv*(1+tol)
			if cv < lo || cv > hi {
				fails = append(fails, fmt.Sprintf(
					"%s %.3f -> %.3f (tolerance ±%.0f%%): robustness tax drifted", k, bv, cv, 100*tol))
			}
		case k == "goodput_rps" || strings.HasPrefix(k, "p999_ms"):
			// Serving throughput and tail latency: deterministic, so
			// any drift past tolerance is a behaviour change.
			lo, hi := bv*(1-tol), bv*(1+tol)
			if cv < lo || cv > hi {
				fails = append(fails, fmt.Sprintf(
					"%s %.3f -> %.3f (tolerance ±%.0f%%): serving behaviour drifted", k, bv, cv, 100*tol))
			}
		}
	}
	return fails
}

func main() {
	tol := flag.Float64("tol", 0.10, "relative tolerance for events and allocs")
	flag.Parse()
	args := flag.Args()
	if len(args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.10] baselineDir candidateDir id...")
		os.Exit(2)
	}
	baseDir, candDir, ids := args[0], args[1], args[2:]

	failed := false
	for _, id := range ids {
		base, err := readStats(baseDir, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: baseline: %v\n", id, err)
			failed = true
			continue
		}
		cand, err := readStats(candDir, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: candidate: %v\n", id, err)
			failed = true
			continue
		}
		fails := compare(base, cand, *tol)
		status := "ok"
		if len(fails) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-14s %s  events %d -> %d (%+.1f%%)  allocs %d -> %d (%+.1f%%)  wall %.0fms -> %.0fms\n",
			id, status,
			base.Events, cand.Events, 100*relDelta(base.Events, cand.Events),
			base.Allocs, cand.Allocs, 100*relDelta(base.Allocs, cand.Allocs),
			base.WallMS, cand.WallMS)
		for _, f := range fails {
			fmt.Printf("    %s\n", f)
		}
	}
	if failed {
		os.Exit(1)
	}
}
