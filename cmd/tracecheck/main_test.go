package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodTrace = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"machine 0"}},
{"name":"pressure:mem","cat":"pressure","ph":"X","ts":1,"dur":5,"pid":1,"tid":1,"args":{"span":1,"parent":0,"trace":1}},
{"name":"migrate:shard-0","cat":"migrate","ph":"X","ts":2,"dur":3,"pid":1,"tid":1,"args":{"span":2,"parent":1,"trace":1}},
{"name":"m0.cpu_util","ph":"C","ts":1,"pid":1,"args":{"value":0.5}}
]}`

func TestGoodTracePasses(t *testing.T) {
	path := write(t, "good.json", goodTrace)
	var out, errb bytes.Buffer
	if code := run([]string{"-require-causal", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestInvalidJSONFails(t *testing.T) {
	path := write(t, "bad.json", `{"traceEvents": [`)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "not valid JSON") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestMissingCausalChainFails(t *testing.T) {
	// A migrate span with no pressure/sched/repl ancestor.
	path := write(t, "nocausal.json", `{"displayTimeUnit":"ms","traceEvents":[
{"name":"migrate:x","cat":"migrate","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,"args":{"span":1,"parent":0,"trace":1}}
]}`)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("without -require-causal exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{"-require-causal", path}, &out, &errb); code != 1 {
		t.Fatalf("with -require-causal exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no migrate span descends") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestMalformedEventFails(t *testing.T) {
	path := write(t, "malformed.json", `{"displayTimeUnit":"ms","traceEvents":[
{"name":"x","cat":"rpc","ph":"X","ts":1,"pid":1,"args":{"span":1}}
]}`)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "missing name/ts/dur/pid") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestMinEvents(t *testing.T) {
	path := write(t, "tiny.json", goodTrace)
	var out, errb bytes.Buffer
	if code := run([]string{"-min-events", "100", path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "want >= 100") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestNoArgsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// fullTrace has four spans: two trees (1←2, 3) plus a standalone 4.
const fullTrace = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"rpc:get","cat":"rpc","ph":"X","ts":1,"dur":5,"pid":1,"tid":1,"args":{"span":1,"parent":0,"trace":1}},
{"name":"rpc:apply","cat":"rpc","ph":"X","ts":2,"dur":3,"pid":1,"tid":1,"args":{"span":2,"parent":1,"trace":1}},
{"name":"rpc:get","cat":"rpc","ph":"X","ts":4,"dur":2,"pid":1,"tid":1,"args":{"span":3,"parent":0,"trace":3}},
{"name":"rpc:get","cat":"rpc","ph":"X","ts":6,"dur":2,"pid":1,"tid":1,"args":{"span":4,"parent":0,"trace":4}}
]}`

// sampledOK keeps the 1←2 tree verbatim: a legal subset.
const sampledOK = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"rpc:get","cat":"rpc","ph":"X","ts":1,"dur":5,"pid":1,"tid":1,"args":{"span":1,"parent":0,"trace":1}},
{"name":"rpc:apply","cat":"rpc","ph":"X","ts":2,"dur":3,"pid":1,"tid":1,"args":{"span":2,"parent":1,"trace":1}}
]}`

func TestSubsetPasses(t *testing.T) {
	fullPath := write(t, "full.json", fullTrace)
	path := write(t, "sampled.json", sampledOK)
	var out, errb bytes.Buffer
	if code := run([]string{"-subset", fullPath, path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	// 2 of 4 spans = 0.5; a 0.5 bound holds, a 0.25 bound must not.
	errb.Reset()
	if code := run([]string{"-subset", fullPath, "-max-frac", "0.5", path}, &out, &errb); code != 0 {
		t.Fatalf("-max-frac 0.5 exit = %d (stderr: %s)", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{"-subset", fullPath, "-max-frac", "0.25", path}, &out, &errb); code != 1 {
		t.Fatalf("-max-frac 0.25 exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "exceeds -max-frac") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestSubsetRejectsMutatedSpan(t *testing.T) {
	fullPath := write(t, "full.json", fullTrace)
	// Same span ID, different duration: fields must be identical.
	path := write(t, "mutated.json", strings.Replace(sampledOK, `"dur":3`, `"dur":4`, 1))
	var out, errb bytes.Buffer
	if code := run([]string{"-subset", fullPath, path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "differs from full export") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestSubsetRejectsUnknownAndOrphanSpans(t *testing.T) {
	fullPath := write(t, "full.json", fullTrace)
	// Span 9 does not exist in the full export.
	unknown := write(t, "unknown.json", strings.Replace(sampledOK, `"span":2`, `"span":9`, 1))
	var out, errb bytes.Buffer
	if code := run([]string{"-subset", fullPath, unknown}, &out, &errb); code != 1 {
		t.Fatalf("unknown span: exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "not present in full export") {
		t.Errorf("stderr = %q", errb.String())
	}
	// Span 2 kept without its parent 1: prefix-closure violated.
	orphan := write(t, "orphan.json", `{"displayTimeUnit":"ms","traceEvents":[
{"name":"rpc:apply","cat":"rpc","ph":"X","ts":2,"dur":3,"pid":1,"tid":1,"args":{"span":2,"parent":1,"trace":1}}
]}`)
	errb.Reset()
	if code := run([]string{"-subset", fullPath, orphan}, &out, &errb); code != 1 {
		t.Fatalf("orphan: exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "parent 1 was dropped") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestMaxFracRequiresSubset(t *testing.T) {
	path := write(t, "good.json", goodTrace)
	var out, errb bytes.Buffer
	if code := run([]string{"-max-frac", "0.1", path}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
