// Command tracecheck validates the shape of a Chrome trace-event JSON
// file produced by the obs exporter (qsctl -trace-out run.json or the
// bench harness -trace-dir). It is the CI gate that keeps exported
// timelines loadable in Perfetto: valid JSON, the trace-event envelope,
// well-formed events, and — with -require-causal — at least one
// migration span that descends from a pressure/sched/repl span.
//
// Usage:
//
//	tracecheck [-require-causal] [-min-events N] run.json [more.json ...]
//
// Exits 0 when every file passes, 1 on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// event is the subset of a trace event tracecheck inspects.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

type document struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []event `json:"traceEvents"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	requireCausal := fs.Bool("require-causal", false,
		"require at least one migrate span descending from a pressure/sched/repl span")
	minEvents := fs.Int("min-events", 1, "minimum number of trace events per file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: tracecheck [-require-causal] [-min-events N] run.json ...")
		return 2
	}
	ok := true
	for _, path := range fs.Args() {
		if err := checkFile(path, *requireCausal, *minEvents); err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", path, err)
			ok = false
			continue
		}
		fmt.Fprintf(stdout, "tracecheck: %s ok\n", path)
	}
	if !ok {
		return 1
	}
	return 0
}

func checkFile(path string, requireCausal bool, minEvents int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		return fmt.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) < minEvents {
		return fmt.Errorf("%d trace events, want >= %d", len(doc.TraceEvents), minEvents)
	}

	// spanArgs maps span ID -> (parent, cat) for the causal walk.
	type spanInfo struct {
		parent uint64
		cat    string
	}
	spans := map[uint64]spanInfo{}
	sawComplete := false
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			sawComplete = true
			if ev.Name == "" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil {
				return fmt.Errorf("event %d (ph=X) missing name/ts/dur/pid", i)
			}
			if *ev.Dur < 0 {
				return fmt.Errorf("event %d (%s) has negative duration %v", i, ev.Name, *ev.Dur)
			}
			id, okID := asUint(ev.Args["span"])
			if !okID || id == 0 {
				return fmt.Errorf("event %d (%s) missing args.span", i, ev.Name)
			}
			parent, _ := asUint(ev.Args["parent"])
			spans[id] = spanInfo{parent: parent, cat: ev.Cat}
		case "M":
			if ev.Name != "process_name" || ev.Pid == nil {
				return fmt.Errorf("event %d (ph=M) malformed metadata", i)
			}
		case "C":
			if ev.Name == "" || ev.Ts == nil || ev.Pid == nil || ev.Args["value"] == nil {
				return fmt.Errorf("event %d (ph=C) missing name/ts/pid/value", i)
			}
		default:
			return fmt.Errorf("event %d has unexpected phase %q", i, ev.Ph)
		}
	}
	if !sawComplete {
		return fmt.Errorf("no complete (ph=X) span events")
	}

	if requireCausal {
		causal := false
		for _, s := range spans {
			if s.cat != "migrate" {
				continue
			}
			for p := s.parent; p != 0; {
				ps, ok := spans[p]
				if !ok {
					break
				}
				if ps.cat == "pressure" || ps.cat == "sched" || ps.cat == "repl" {
					causal = true
					break
				}
				p = ps.parent
			}
			if causal {
				break
			}
		}
		if !causal {
			return fmt.Errorf("no migrate span descends from a pressure/sched/repl span")
		}
	}
	return nil
}

// asUint coerces a decoded JSON number to uint64.
func asUint(v any) (uint64, bool) {
	f, ok := v.(float64)
	if !ok || f < 0 {
		return 0, false
	}
	return uint64(f), true
}
