// Command tracecheck validates the shape of a Chrome trace-event JSON
// file produced by the obs exporter (qsctl -trace-out run.json or the
// bench harness -trace-dir). It is the CI gate that keeps exported
// timelines loadable in Perfetto: valid JSON, the trace-event envelope,
// well-formed events, and — with -require-causal — at least one
// migration span that descends from a pressure/sched/repl span.
//
// Usage:
//
//	tracecheck [-require-causal] [-min-events N] [-subset full.json] [-max-frac F] run.json [more.json ...]
//
// -subset names the full (unsampled) export of the same run: every
// checked file's complete-span events must then be an ID-keyed subset
// of the full file with byte-identical fields, and prefix-closed — a
// kept span's parent is kept too, so sampled trees stay walkable.
// -max-frac additionally bounds the sampled span count to a fraction
// of the full count; it is the CI gate that keeps tail-based sampling
// honest about its claimed volume reduction.
//
// Exits 0 when every file passes, 1 on any violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// event is the subset of a trace event tracecheck inspects.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

type document struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []event `json:"traceEvents"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	requireCausal := fs.Bool("require-causal", false,
		"require at least one migrate span descending from a pressure/sched/repl span")
	minEvents := fs.Int("min-events", 1, "minimum number of trace events per file")
	subset := fs.String("subset", "", "full export: checked files' spans must be an ID-keyed, prefix-closed subset with identical fields")
	maxFrac := fs.Float64("max-frac", 0, "with -subset: bound sampled span count to this fraction of the full count (0: unbounded)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: tracecheck [-require-causal] [-min-events N] [-subset full.json] [-max-frac F] run.json ...")
		return 2
	}
	if *maxFrac != 0 && *subset == "" {
		fmt.Fprintln(stderr, "tracecheck: -max-frac requires -subset")
		return 2
	}
	var full map[uint64]string
	if *subset != "" {
		var err error
		if full, err = spanEvents(*subset); err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", *subset, err)
			return 1
		}
	}
	ok := true
	for _, path := range fs.Args() {
		err := checkFile(path, *requireCausal, *minEvents)
		if err == nil && full != nil {
			err = checkSubset(path, full, *maxFrac)
		}
		if err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", path, err)
			ok = false
			continue
		}
		fmt.Fprintf(stdout, "tracecheck: %s ok\n", path)
	}
	if !ok {
		return 1
	}
	return 0
}

// spanEvents loads a trace file's complete-span events keyed by span
// ID, each canonicalized back to JSON for field-exact comparison.
func spanEvents(path string) (map[uint64]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("not valid JSON: %w", err)
	}
	out := make(map[uint64]string, len(doc.TraceEvents))
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		id, ok := asUint(ev.Args["span"])
		if !ok || id == 0 {
			return nil, fmt.Errorf("event %d (%s) missing args.span", i, ev.Name)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate span id %d", id)
		}
		canon, err := json.Marshal(ev)
		if err != nil {
			return nil, err
		}
		out[id] = string(canon)
	}
	return out, nil
}

// checkSubset verifies the sampled-export contract against the full
// export: every sampled span exists in the full set with identical
// fields, every sampled span's parent (when the full set has it) is
// also sampled, and the sampled volume honors the claimed reduction.
func checkSubset(path string, full map[uint64]string, maxFrac float64) error {
	sampled, err := spanEvents(path)
	if err != nil {
		return err
	}
	for id, canon := range sampled {
		ref, ok := full[id]
		if !ok {
			return fmt.Errorf("span %d not present in full export", id)
		}
		if canon != ref {
			return fmt.Errorf("span %d differs from full export:\n  sampled: %s\n  full:    %s", id, canon, ref)
		}
	}
	// Prefix-closure: a sampled span whose parent the full export
	// knows must carry that parent along, or the tree is unwalkable.
	var probe event
	for id, canon := range sampled {
		if err := json.Unmarshal([]byte(canon), &probe); err != nil {
			return err
		}
		parent, _ := asUint(probe.Args["parent"])
		if parent == 0 {
			continue
		}
		if _, inFull := full[parent]; !inFull {
			continue
		}
		if _, inSampled := sampled[parent]; !inSampled {
			return fmt.Errorf("span %d kept but its parent %d was dropped", id, parent)
		}
	}
	if maxFrac > 0 && float64(len(sampled)) > maxFrac*float64(len(full)) {
		return fmt.Errorf("%d sampled spans of %d full: exceeds -max-frac %g (%.1fx reduction required)",
			len(sampled), len(full), maxFrac, 1/maxFrac)
	}
	return nil
}

func checkFile(path string, requireCausal bool, minEvents int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		return fmt.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) < minEvents {
		return fmt.Errorf("%d trace events, want >= %d", len(doc.TraceEvents), minEvents)
	}

	// spanArgs maps span ID -> (parent, cat) for the causal walk.
	type spanInfo struct {
		parent uint64
		cat    string
	}
	spans := map[uint64]spanInfo{}
	sawComplete := false
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			sawComplete = true
			if ev.Name == "" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil {
				return fmt.Errorf("event %d (ph=X) missing name/ts/dur/pid", i)
			}
			if *ev.Dur < 0 {
				return fmt.Errorf("event %d (%s) has negative duration %v", i, ev.Name, *ev.Dur)
			}
			id, okID := asUint(ev.Args["span"])
			if !okID || id == 0 {
				return fmt.Errorf("event %d (%s) missing args.span", i, ev.Name)
			}
			parent, _ := asUint(ev.Args["parent"])
			spans[id] = spanInfo{parent: parent, cat: ev.Cat}
		case "M":
			if ev.Name != "process_name" || ev.Pid == nil {
				return fmt.Errorf("event %d (ph=M) malformed metadata", i)
			}
		case "C":
			if ev.Name == "" || ev.Ts == nil || ev.Pid == nil || ev.Args["value"] == nil {
				return fmt.Errorf("event %d (ph=C) missing name/ts/pid/value", i)
			}
		default:
			return fmt.Errorf("event %d has unexpected phase %q", i, ev.Ph)
		}
	}
	if !sawComplete {
		return fmt.Errorf("no complete (ph=X) span events")
	}

	if requireCausal {
		causal := false
		for _, s := range spans {
			if s.cat != "migrate" {
				continue
			}
			for p := s.parent; p != 0; {
				ps, ok := spans[p]
				if !ok {
					break
				}
				if ps.cat == "pressure" || ps.cat == "sched" || ps.cat == "repl" {
					causal = true
					break
				}
				p = ps.parent
			}
			if causal {
				break
			}
		}
		if !causal {
			return fmt.Errorf("no migrate span descends from a pressure/sched/repl span")
		}
	}
	return nil
}

// asUint coerces a decoded JSON number to uint64.
func asUint(v any) (uint64, bool) {
	f, ok := v.(float64)
	if !ok || f < 0 {
		return 0, false
	}
	return uint64(f), true
}
