package quicksand

// Determinism regression test: every optimization to the simulation
// data plane (event queue, processor-sharing model, parallel runners)
// must preserve the property that one seed produces exactly one
// behaviour. This runs fig1 at TestScale repeatedly and requires
// byte-identical output rows, identical machine-readable values,
// identical control-plane trace sequences, and identical kernel event
// counts.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/replication"
	"repro/internal/sim"
)

func fig1Snapshot(t *testing.T) *experiments.Result {
	t.Helper()
	res, err := experiments.Run("fig1", experiments.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareResults asserts two fig1 results are identical in every
// observable: event counts, values, rendered lines, trace sequence,
// and plot series.
func compareResults(t *testing.T, label string, a, b *experiments.Result) {
	t.Helper()
	if a.EventsProcessed != b.EventsProcessed {
		t.Fatalf("%s: EventsProcessed %d vs %d", label, a.EventsProcessed, b.EventsProcessed)
	}
	if len(a.Values) != len(b.Values) {
		t.Fatalf("%s: %d values vs %d", label, len(a.Values), len(b.Values))
	}
	for k, v := range a.Values {
		if bv, ok := b.Values[k]; !ok || bv != v {
			t.Errorf("%s: value %q = %v vs %v", label, k, v, bv)
		}
	}
	if len(a.Lines) != len(b.Lines) {
		t.Fatalf("%s: %d lines vs %d", label, len(a.Lines), len(b.Lines))
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Errorf("%s: line %d differs:\n  %s\n  %s", label, i, a.Lines[i], b.Lines[i])
		}
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("%s: trace diverges at event %d:\n  %s\n  %s", label, i, a.Trace[i], b.Trace[i])
		}
	}
	// Series must match sample-for-sample as well.
	for name, s := range a.Series {
		bs := b.Series[name]
		if len(bs) != len(s) {
			t.Fatalf("%s: series %q length %d vs %d", label, name, len(s), len(bs))
		}
		for i := range s {
			if s[i] != bs[i] {
				t.Errorf("%s: series %q[%d] = %v vs %v", label, name, i, s[i], bs[i])
			}
		}
	}
}

func TestFig1Deterministic(t *testing.T) {
	a := fig1Snapshot(t)
	if a.EventsProcessed == 0 {
		t.Fatal("fig1 did not report kernel event counts")
	}
	if len(a.Trace) == 0 {
		t.Fatal("fig1 did not capture a control-plane trace")
	}
	for rep := 0; rep < 2; rep++ {
		compareResults(t, fmt.Sprintf("rep %d", rep), a, fig1Snapshot(t))
	}
}

func chaosSnapshot(t *testing.T) *experiments.Result {
	t.Helper()
	res, err := experiments.Run("ext-chaos", experiments.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExtChaosDeterministic extends the one-seed-one-behaviour
// guarantee to fault injection: the same seed must produce the same
// crash instants, the same drop decisions, the same retry backoffs, and
// therefore the same recovery — event for event — both at the default
// seed and under a seed offset.
func TestExtChaosDeterministic(t *testing.T) {
	a := chaosSnapshot(t)
	if a.EventsProcessed == 0 {
		t.Fatal("ext-chaos did not report kernel event counts")
	}
	if len(a.Trace) == 0 {
		t.Fatal("ext-chaos did not capture a control-plane trace")
	}
	compareResults(t, "rep", a, chaosSnapshot(t))

	experiments.SetBaseSeed(3)
	shifted := chaosSnapshot(t)
	compareResults(t, "seed 3 rep", shifted, chaosSnapshot(t))
	experiments.SetBaseSeed(0)
	compareResults(t, "seed restored", a, chaosSnapshot(t))
}

// TestFig1DeterministicParallel requires the parallel experiment
// runner (-par > 1) to produce output identical to a sequential run:
// each mode's simulation lives on its own kernel and results merge by
// configuration index, never completion order.
func TestFig1DeterministicParallel(t *testing.T) {
	experiments.SetParallelism(1)
	seq := fig1Snapshot(t)
	for _, par := range []int{2, 4} {
		experiments.SetParallelism(par)
		compareResults(t, fmt.Sprintf("par %d", par), seq, fig1Snapshot(t))
	}
	experiments.SetParallelism(0)
}

func failoverSnapshot(t *testing.T) *experiments.Result {
	t.Helper()
	res, err := experiments.Run("ext-failover", experiments.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExtFailoverDeterministic5Seeds sweeps the replication stack —
// heartbeats, lease renewals, group-commit batches, promotion, resync —
// across five base seeds. Each seed must reproduce itself byte for
// byte, and the headline durability guarantee (no acked write lost at
// RF=2, with no rebuilder anywhere) must hold at every seed, not just
// the committed one.
func TestExtFailoverDeterministic5Seeds(t *testing.T) {
	defer experiments.SetBaseSeed(0)
	for seed := int64(1); seed <= 5; seed++ {
		experiments.SetBaseSeed(seed)
		a := failoverSnapshot(t)
		if a.EventsProcessed == 0 {
			t.Fatalf("seed %d: no kernel event counts", seed)
		}
		if a.Values["lost_rf2"] != 0 {
			t.Errorf("seed %d: lost_rf2 = %v acked objects, want 0", seed, a.Values["lost_rf2"])
		}
		if a.Values["promotions"] < 1 {
			t.Errorf("seed %d: promotions = %v, want >= 1", seed, a.Values["promotions"])
		}
		compareResults(t, fmt.Sprintf("seed %d rep", seed), a, failoverSnapshot(t))
	}
}

// failoverRoutingRun drives a writer through a primary crash and
// records how the directory routed it: the pre-crash primary machine,
// the post-promotion machine, and the full control-plane trace.
func failoverRoutingRun(t *testing.T, seed int64) (before, after cluster.MachineID, trace []string) {
	t.Helper()
	cfgs := []cluster.MachineConfig{
		{Cores: 4, MemBytes: 256 << 20},
		{Cores: 4, MemBytes: 256 << 20},
		{Cores: 4, MemBytes: 256 << 20},
		{Cores: 4, MemBytes: 256 << 20},
	}
	sysCfg := core.DefaultConfig()
	sysCfg.Seed = seed
	sys := core.NewSystem(sysCfg, cfgs)
	defer sys.Close()
	sys.Start()
	in := fault.New(sys.K, sys.Cluster, sys.Trace)
	sys.AttachInjector(in)
	rm := sys.EnableReplicationPlane(replication.Config{}, 3)

	mp, err := core.NewMemoryProcletOn(sys, "route-store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 2); err != nil {
		t.Fatal(err)
	}
	before = mp.Location()
	in.Install(fault.Schedule{{At: sim.Time(2 * time.Millisecond), Op: fault.OpCrash, A: 1}})

	const n = 40
	acked := 0
	sys.K.Spawn("route-writer", func(p *sim.Proc) {
		// Writes from the monitor machine straddle the crash; every one
		// that acks must stay readable, and the directory must chase the
		// promoted backup without help from the client.
		for i := 0; i < n; i++ {
			if err := mp.Put(p, 3, uint64(i), i*3, 256); err == nil {
				acked++
			}
			p.Sleep(200 * time.Microsecond)
		}
		for i := 0; i < acked; i++ {
			v, err := mp.Get(p, 3, uint64(i))
			if err != nil {
				t.Errorf("seed %d: get %d after failover: %v", seed, i, err)
			} else if v.(int) != i*3 {
				t.Errorf("seed %d: key %d = %v, want %d", seed, i, v, i*3)
			}
		}
		sys.K.Stop()
	})
	sys.K.Run()

	if acked < n {
		t.Errorf("seed %d: only %d/%d puts acked (retry budget should bridge the confirm window)", seed, acked, n)
	}
	after = mp.Location()
	if rm.Promotions.Value() != 1 {
		t.Errorf("seed %d: promotions = %d, want 1", seed, rm.Promotions.Value())
	}
	for _, e := range sys.Trace.Events() {
		trace = append(trace, e.String())
	}
	return before, after, trace
}

// TestDirectoryRoutingDuringFailover checks, across five seeds, that a
// writer caught mid-crash is re-routed by the directory to the promoted
// backup — same machine, same trace, twice per seed — and that the
// promoted primary never lands back on the crashed machine.
func TestDirectoryRoutingDuringFailover(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		b1, a1, tr1 := failoverRoutingRun(t, seed)
		if b1 != 1 {
			t.Fatalf("seed %d: primary placed on m%d, want m1", seed, b1)
		}
		if a1 == 1 {
			t.Errorf("seed %d: promoted primary on the crashed machine", seed)
		}
		b2, a2, tr2 := failoverRoutingRun(t, seed)
		if b1 != b2 || a1 != a2 {
			t.Errorf("seed %d: routing not deterministic: m%d->m%d vs m%d->m%d", seed, b1, a1, b2, a2)
		}
		if len(tr1) != len(tr2) {
			t.Fatalf("seed %d: trace length %d vs %d", seed, len(tr1), len(tr2))
		}
		for i := range tr1 {
			if tr1[i] != tr2[i] {
				t.Fatalf("seed %d: trace diverges at %d:\n  %s\n  %s", seed, i, tr1[i], tr2[i])
			}
		}
	}
}
