package quicksand

// Determinism regression test: every optimization to the simulation
// data plane (event queue, processor-sharing model, parallel runners)
// must preserve the property that one seed produces exactly one
// behaviour. This runs fig1 at TestScale repeatedly and requires
// byte-identical output rows, identical machine-readable values,
// identical control-plane trace sequences, and identical kernel event
// counts.

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
)

func fig1Snapshot(t *testing.T) *experiments.Result {
	t.Helper()
	res, err := experiments.Run("fig1", experiments.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareResults asserts two fig1 results are identical in every
// observable: event counts, values, rendered lines, trace sequence,
// and plot series.
func compareResults(t *testing.T, label string, a, b *experiments.Result) {
	t.Helper()
	if a.EventsProcessed != b.EventsProcessed {
		t.Fatalf("%s: EventsProcessed %d vs %d", label, a.EventsProcessed, b.EventsProcessed)
	}
	if len(a.Values) != len(b.Values) {
		t.Fatalf("%s: %d values vs %d", label, len(a.Values), len(b.Values))
	}
	for k, v := range a.Values {
		if bv, ok := b.Values[k]; !ok || bv != v {
			t.Errorf("%s: value %q = %v vs %v", label, k, v, bv)
		}
	}
	if len(a.Lines) != len(b.Lines) {
		t.Fatalf("%s: %d lines vs %d", label, len(a.Lines), len(b.Lines))
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Errorf("%s: line %d differs:\n  %s\n  %s", label, i, a.Lines[i], b.Lines[i])
		}
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("%s: trace diverges at event %d:\n  %s\n  %s", label, i, a.Trace[i], b.Trace[i])
		}
	}
	// Series must match sample-for-sample as well.
	for name, s := range a.Series {
		bs := b.Series[name]
		if len(bs) != len(s) {
			t.Fatalf("%s: series %q length %d vs %d", label, name, len(s), len(bs))
		}
		for i := range s {
			if s[i] != bs[i] {
				t.Errorf("%s: series %q[%d] = %v vs %v", label, name, i, s[i], bs[i])
			}
		}
	}
}

func TestFig1Deterministic(t *testing.T) {
	a := fig1Snapshot(t)
	if a.EventsProcessed == 0 {
		t.Fatal("fig1 did not report kernel event counts")
	}
	if len(a.Trace) == 0 {
		t.Fatal("fig1 did not capture a control-plane trace")
	}
	for rep := 0; rep < 2; rep++ {
		compareResults(t, fmt.Sprintf("rep %d", rep), a, fig1Snapshot(t))
	}
}

func chaosSnapshot(t *testing.T) *experiments.Result {
	t.Helper()
	res, err := experiments.Run("ext-chaos", experiments.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExtChaosDeterministic extends the one-seed-one-behaviour
// guarantee to fault injection: the same seed must produce the same
// crash instants, the same drop decisions, the same retry backoffs, and
// therefore the same recovery — event for event — both at the default
// seed and under a seed offset.
func TestExtChaosDeterministic(t *testing.T) {
	a := chaosSnapshot(t)
	if a.EventsProcessed == 0 {
		t.Fatal("ext-chaos did not report kernel event counts")
	}
	if len(a.Trace) == 0 {
		t.Fatal("ext-chaos did not capture a control-plane trace")
	}
	compareResults(t, "rep", a, chaosSnapshot(t))

	experiments.SetBaseSeed(3)
	shifted := chaosSnapshot(t)
	compareResults(t, "seed 3 rep", shifted, chaosSnapshot(t))
	experiments.SetBaseSeed(0)
	compareResults(t, "seed restored", a, chaosSnapshot(t))
}

// TestFig1DeterministicParallel requires the parallel experiment
// runner (-par > 1) to produce output identical to a sequential run:
// each mode's simulation lives on its own kernel and results merge by
// configuration index, never completion order.
func TestFig1DeterministicParallel(t *testing.T) {
	experiments.SetParallelism(1)
	seq := fig1Snapshot(t)
	for _, par := range []int{2, 4} {
		experiments.SetParallelism(par)
		compareResults(t, fmt.Sprintf("par %d", par), seq, fig1Snapshot(t))
	}
	experiments.SetParallelism(0)
}
