package quicksand

// Repository-level benchmarks: one per paper table/figure (running the
// experiment at TestScale; use `go run ./cmd/quicksand-bench -scale
// full` for the paper-scale numbers reported in EXPERIMENTS.md), plus
// micro-benchmarks of the runtime primitives those experiments rest
// on. Benchmarks report key experiment outcomes as custom metrics so
// regressions in *behaviour*, not just wall time, are visible.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/proclet"
	"repro/internal/sharded"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// benchSystem builds the standard 2-machine benchmark fixture.
func benchSystem() *core.System {
	return core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 4 << 30},
		{Cores: 8, MemBytes: 4 << 30},
	})
}

// ---- Paper figures ----

// BenchmarkFig1FillerMigration regenerates Figure 1: the filler
// application migrating across machines every 10 ms.
func BenchmarkFig1FillerMigration(b *testing.B) {
	b.ReportAllocs()
	var goodput float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("fig1", experiments.TestScale)
		if err != nil {
			b.Fatal(err)
		}
		goodput = res.Values["quicksand.goodput_pct"]
	}
	b.ReportMetric(goodput, "goodput_%ideal")
}

// BenchmarkFig2Imbalance regenerates Figure 2: preprocessing-time
// parity across imbalanced machine splits.
func BenchmarkFig2Imbalance(b *testing.B) {
	b.ReportAllocs()
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("fig2", experiments.TestScale)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, cfgName := range []string{"cpu-unbalanced", "mem-unbalanced", "both-unbalanced"} {
			if r := res.Values[cfgName+".ratio"]; r > worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst, "worst_ratio_vs_baseline")
}

// BenchmarkFig3Adaptation regenerates Figure 3: compute proclets
// tracking 4<->8 GPU swings.
func BenchmarkFig3Adaptation(b *testing.B) {
	b.ReportAllocs()
	var react float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("fig3", experiments.TestScale)
		if err != nil {
			b.Fatal(err)
		}
		react = res.Values["react_mean_ms"]
	}
	b.ReportMetric(react, "settle_ms")
}

// ---- Ablations ----

func benchAblation(b *testing.B, id, metric, unit string) {
	b.Helper()
	b.ReportAllocs()
	var v float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.TestScale)
		if err != nil {
			b.Fatal(err)
		}
		v = res.Values[metric]
	}
	b.ReportMetric(v, unit)
}

func BenchmarkAblMigrationSweep(b *testing.B) {
	b.ReportAllocs()
	benchAblation(b, "abl-migration", "latency_ms.10485760", "mig10MiB_ms")
}

func BenchmarkAblSplitSweep(b *testing.B) {
	b.ReportAllocs()
	benchAblation(b, "abl-split", "split_ms.1048576", "split1MiB_ms")
}

func BenchmarkAblPrefetch(b *testing.B) {
	b.ReportAllocs()
	benchAblation(b, "abl-prefetch", "speedup", "prefetch_speedup_x")
}

func BenchmarkAblSched(b *testing.B) {
	b.ReportAllocs()
	benchAblation(b, "abl-sched", "global-only.goodput_pct", "globalonly_goodput_%")
}

func BenchmarkAblLocality(b *testing.B) {
	b.ReportAllocs()
	benchAblation(b, "abl-locality", "speedup", "colocation_speedup_x")
}

// ---- Runtime micro-benchmarks ----

// BenchmarkKernelEventThroughput measures raw simulator event
// processing (host events per host second).
func BenchmarkKernelEventThroughput(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	k.After(time.Microsecond, tick)
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelScheduleStep measures the schedule/dispatch cycle
// through both queue paths: two same-instant events (FIFO fast path)
// plus one future event (binary heap).
func BenchmarkKernelScheduleStep(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	noop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now(), noop)
		k.Schedule(k.Now(), noop)
		k.After(time.Microsecond, noop)
		for k.Step() {
		}
	}
}

// BenchmarkMachineSubmitChurn measures the processor-sharing machine
// under task churn: submits, a rate change, a cancellation, and
// completion retirement per iteration.
func BenchmarkMachineSubmitChurn(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, 0, "m", cluster.MachineConfig{Cores: 4})
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var last *cluster.Task
		for j := 0; j < 8; j++ {
			last = m.Submit(100 * time.Microsecond)
		}
		m.SetReserved(float64(n % 4))
		k.RunUntil(k.Now().Add(150 * time.Microsecond))
		last.Cancel()
		k.RunUntil(k.Now().Add(time.Millisecond))
	}
}

// BenchmarkLocalInvoke measures same-machine proclet method dispatch.
func BenchmarkLocalInvoke(b *testing.B) {
	b.ReportAllocs()
	sys := benchSystem()
	pr, err := sys.Runtime.Spawn("svc", 0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	pr.Handle("noop", func(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
		return proclet.Msg{}, nil
	})
	b.ResetTimer()
	sys.K.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Runtime.Invoke(p, 0, 0, pr.ID(), "noop", proclet.Msg{}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sys.K.Run()
}

// BenchmarkRemoteInvoke measures cross-machine proclet RPC.
func BenchmarkRemoteInvoke(b *testing.B) {
	b.ReportAllocs()
	sys := benchSystem()
	pr, err := sys.Runtime.Spawn("svc", 1, 1024)
	if err != nil {
		b.Fatal(err)
	}
	pr.Handle("noop", func(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
		return proclet.Msg{Bytes: 128}, nil
	})
	b.ResetTimer()
	sys.K.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Runtime.Invoke(p, 0, 0, pr.ID(), "noop", proclet.Msg{Bytes: 128}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sys.K.Run()
}

// BenchmarkRPCCall measures the raw fabric RPC path (no proclet layer):
// an inline fast handler versus a pooled-process blocking handler.
// Both variants should run allocation-free per call.
func BenchmarkRPCCall(b *testing.B) {
	bench := func(b *testing.B, fast bool) {
		b.ReportAllocs()
		k := sim.NewKernel(1)
		defer k.Close()
		f := simnet.New(k, simnet.DefaultConfig())
		f.AddNode(1)
		srv := f.AddNode(2)
		if fast {
			srv.HandleFast("echo", func(req simnet.Message) (simnet.Message, error) {
				return simnet.Message{Bytes: 128}, nil
			})
		} else {
			srv.Handle("echo", func(p *sim.Proc, req simnet.Message) (simnet.Message, error) {
				return simnet.Message{Bytes: 128}, nil
			})
		}
		b.ResetTimer()
		k.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				if _, err := f.Call(p, 1, 2, "echo", simnet.Message{Bytes: 128}); err != nil {
					b.Error(err)
					return
				}
			}
		})
		k.Run()
	}
	b.Run("fast", func(b *testing.B) { bench(b, true) })
	b.Run("blocking", func(b *testing.B) { bench(b, false) })
}

// BenchmarkProcletMigration measures a 64 KiB proclet bouncing between
// machines, reporting the virtual migration latency alongside host
// cost.
func BenchmarkProcletMigration(b *testing.B) {
	b.ReportAllocs()
	sys := benchSystem()
	pr, err := sys.Runtime.Spawn("migrant", 0, 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.K.Spawn("ctl", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := sys.Runtime.Migrate(p, pr.ID(), cluster.MachineID(1-int(pr.Location()))); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sys.K.Run()
	b.ReportMetric(sys.Runtime.MigrationLatency.Mean()*1e6, "virtual_us/mig")
}

// BenchmarkShardedMapPut measures sharded map writes including the
// amortized cost of splits.
func BenchmarkShardedMapPut(b *testing.B) {
	b.ReportAllocs()
	sys := benchSystem()
	m, err := sharded.NewMap[int, int](sys, "bench", sharded.Options{MaxShardBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.K.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := m.Put(p, 0, i, i, 256); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sys.K.Run()
	b.ReportMetric(float64(m.NumShards()), "final_shards")
}

// BenchmarkShardedQueuePushPop measures the producer/consumer path
// through a sharded queue.
func BenchmarkShardedQueuePushPop(b *testing.B) {
	b.ReportAllocs()
	sys := benchSystem()
	q, err := sharded.NewQueue[int](sys, "bench", sharded.Options{MaxShardBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.K.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := q.Push(p, 0, i, 256); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sys.K.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Pop(p, 1); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sys.K.Run()
}

// BenchmarkVectorIterPrefetch measures streaming a sharded vector with
// prefetch enabled.
func BenchmarkVectorIterPrefetch(b *testing.B) {
	b.ReportAllocs()
	sys := benchSystem()
	v, err := sharded.NewVector[int](sys, "bench", sharded.Options{MaxShardBytes: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	sys.K.Spawn("loader", func(p *sim.Proc) {
		for i := 0; i < 4096; i++ {
			v.PushBack(p, 1, i, 4<<10)
		}
	})
	sys.K.Run()
	b.ResetTimer()
	sys.K.Spawn("reader", func(p *sim.Proc) {
		done := 0
		for done < b.N {
			it := v.Iter(32)
			for done < b.N {
				_, ok, err := it.Next(p, 0)
				if err != nil {
					b.Error(err)
					return
				}
				if !ok {
					break
				}
				done++
			}
		}
	})
	sys.K.Run()
}

// ---- Extensions ----

// BenchmarkExtGPUReclaim regenerates the GPU-proclet extension: spot
// reclamations survived by device-state migration.
func BenchmarkExtGPUReclaim(b *testing.B) {
	b.ReportAllocs()
	var pct float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("ext-gpu", experiments.TestScale)
		if err != nil {
			b.Fatal(err)
		}
		pct = res.Values["gpu-proclets.ideal_pct"]
	}
	b.ReportMetric(pct, "ideal_%")
}

// BenchmarkExtHarvest regenerates fleet-wide idle harvesting.
func BenchmarkExtHarvest(b *testing.B) {
	b.ReportAllocs()
	var pct float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("ext-harvest", experiments.TestScale)
		if err != nil {
			b.Fatal(err)
		}
		pct = res.Values["quicksand.goodput_pct"]
	}
	b.ReportMetric(pct, "goodput_%ideal")
}

// BenchmarkExtServe regenerates the million-client open-loop serving
// scenario (aggregate arrival processes over a partitioned fleet).
func BenchmarkExtServe(b *testing.B) {
	b.ReportAllocs()
	var p999 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("ext-serve", experiments.TestScale)
		if err != nil {
			b.Fatal(err)
		}
		p999 = res.Values["p999_ms"]
	}
	b.ReportMetric(p999, "p999_ms")
}

// ---- Load-plane micro-benchmarks ----

// BenchmarkZipfSample measures the O(1) Zipfian key sampler over a
// 10M-key space. The sample path must be allocation-free: skewed key
// popularity costs a handful of float ops per request regardless of
// keyspace size.
func BenchmarkZipfSample(b *testing.B) {
	b.ReportAllocs()
	z := load.NewZipf(10_000_000, 0.99)
	rng := rand.New(rand.NewSource(1))
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = load.ScrambleKey(z.Sample(rng))
	}); allocs != 0 {
		b.Fatalf("zipf sample path allocates: %v allocs/op", allocs)
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += load.ScrambleKey(z.Sample(rng))
	}
	_ = sink
}

// BenchmarkArrivalBatch measures drawing one 250us window of
// nonhomogeneous-Poisson arrivals at ~400k req/s from a diurnal curve —
// the injector's per-window generation step. Steady-state draws must be
// allocation-free: generation cost is O(requests), never O(clients).
func BenchmarkArrivalBatch(b *testing.B) {
	b.ReportAllocs()
	horizon := sim.Time(time.Hour)
	curve := load.Sampled(horizon, 250*time.Millisecond, load.Diurnal(400_000, 0.5, 10*time.Second))
	a := load.NewArrivals(curve, rand.New(rand.NewSource(1)))
	window := sim.Time(250 * time.Microsecond)
	from := sim.Time(0)
	for i := 0; i < 64; i++ { // warm the reusable buffer
		a.Draw(from, from+window)
		from += window
	}
	if allocs := testing.AllocsPerRun(100, func() {
		a.Draw(from, from+window)
		from += window
	}); allocs != 0 {
		b.Fatalf("arrival batch allocates at steady state: %v allocs/op", allocs)
	}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n += len(a.Draw(from, from+window))
		from += window
		if from >= horizon {
			from = 0
		}
	}
	b.ReportMetric(float64(n)/float64(b.N), "arrivals/window")
}

// BenchmarkLogHistogramRecord measures the fixed-bucket latency
// histogram's record path (one index computation, no allocation).
func BenchmarkLogHistogramRecord(b *testing.B) {
	b.ReportAllocs()
	h := metrics.NewLogHistogram("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)*7919 + 1000)
	}
}

// BenchmarkGPUStep measures one training step (batch upload + kernel)
// through the GPU proclet path.
func BenchmarkGPUStep(b *testing.B) {
	b.ReportAllocs()
	sys := benchSystem()
	m := sys.Cluster.Machine(0)
	m.AddGPUs(cluster.GPUConfig{Count: 1, MemBytes: 16 << 30, LinkBandwidth: 16_000_000_000})
	gp, err := gpu.New(sys, "trainer", m.GPU(0), 1<<30, 100*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := gp.Step(p, 0, 1<<20); err != nil {
				b.Error(err)
				return
			}
		}
	})
	sys.K.Run()
}
