// Gputrain: GPU resource proclets riding out spot reclamations — the
// proclet type the paper defers to future work (§4), implemented in
// internal/gpu.
//
// Four trainers hold 512 MiB model replicas in device memory across
// two machines. A "provider" reclaims one of their GPUs every 100 ms;
// the fleet watcher migrates the device state to a spare within tens
// of milliseconds and training continues, no checkpoints, no restarts.
//
//	go run ./examples/gputrain
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 16, MemBytes: 32 << 30},
		{Cores: 16, MemBytes: 32 << 30},
	})
	for _, m := range sys.Cluster.Machines() {
		m.AddGPUs(cluster.GPUConfig{Count: 3, MemBytes: 16 << 30, LinkBandwidth: 16_000_000_000})
	}

	fleet := gpu.NewFleet(sys, "trainers", time.Millisecond)
	var trainers []*gpu.Proclet
	for i := 0; i < 4; i++ {
		gp, err := fleet.Add(fmt.Sprintf("trainer-%d", i), 512<<20, 5*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		trainers = append(trainers, gp)
		fmt.Printf("%s starts on %v\n", gp.Name(), gp.Device())
	}
	fleet.Start()

	horizon := sim.Time(time.Second)
	for _, gp := range trainers {
		gp := gp
		sys.K.Spawn("driver", func(p *sim.Proc) {
			for p.Now() < horizon {
				if err := gp.Step(p, gp.Device().Machine.ID, 8<<20); err != nil {
					p.Sleep(time.Millisecond) // reclaimed; the fleet is on it
				}
			}
		})
	}

	// The provider reclaims a trainer's GPU every 100 ms for 50 ms.
	victim := 0
	sys.K.Every(sim.Time(100*time.Millisecond), 100*time.Millisecond, func() bool {
		g := trainers[victim%len(trainers)].Device()
		victim++
		g.SetAvailable(false)
		sys.K.After(50*time.Millisecond, func() { g.SetAvailable(true) })
		return sys.K.Now() < horizon
	})

	sys.K.RunUntil(horizon)
	fleet.Stop()

	fmt.Println()
	var total int64
	for _, gp := range trainers {
		fmt.Printf("%s: %4d steps, ends on %v\n", gp.Name(), gp.Steps.Value(), gp.Device())
		total += gp.Steps.Value()
	}
	ideal := float64(len(trainers)) * horizon.Seconds() / (5.5e-3)
	fmt.Printf("\ntotal %d steps = %.1f%% of reclaim-free ideal\n", total, 100*float64(total)/ideal)
	fmt.Printf("fleet evacuations: %d (mean %.1f ms each) across %d reclamations\n",
		fleet.Evacuations.Value(), fleet.MigrationLatency.Mean()*1000, victim)
}
