// Gputrain: GPU resource proclets riding out spot reclamations and
// gray failures — the proclet type the paper defers to future work
// (§4), implemented in internal/gpu.
//
// Four trainers hold 512 MiB model replicas in device memory across
// two machines, each shipping a small per-step checkpoint delta to an
// anti-affine host-RAM mirror. A "provider" reclaims one of their GPUs
// every 100 ms; the fleet watcher migrates the device state to a spare
// within tens of milliseconds and training continues. Mid-run one
// device dies outright with an XID — the fleet re-places the trainer
// from its mirror with zero acknowledged steps lost — and another
// thermally throttles until the straggler detector re-dispatches its
// trainer to a faster spare.
//
//	go run ./examples/gputrain
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/proclet"
	"repro/internal/sim"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 16, MemBytes: 32 << 30},
		{Cores: 16, MemBytes: 32 << 30},
	})
	for _, m := range sys.Cluster.Machines() {
		m.AddGPUs(
			cluster.GPUConfig{Count: 2, MemBytes: 16 << 30, LinkBandwidth: 16_000_000_000,
				Class: "a100", Speed: 1},
			cluster.GPUConfig{Count: 1, MemBytes: 16 << 30, LinkBandwidth: 16_000_000_000,
				Class: "h100", Speed: 2},
		)
	}

	fleet := gpu.NewFleetConfig(sys, "trainers", gpu.Config{
		Period: time.Millisecond,
		Checkpoint: gpu.CheckpointConfig{
			DeltaBytes:    1 << 20,
			SnapshotEvery: 100,
			Home:          gpu.AutoHome,
		},
	})
	var trainers []*gpu.Proclet
	for i := 0; i < 4; i++ {
		gp, err := fleet.Add(fmt.Sprintf("trainer-%d", i), 512<<20, 5*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		trainers = append(trainers, gp)
		fmt.Printf("%s starts on %v (%s)\n", gp.Name(), gp.Device(), gp.Device().Class())
	}
	fleet.Start()

	horizon := sim.Time(time.Second)
	for _, gp := range trainers {
		gp := gp
		sys.K.Spawn("driver", func(p *sim.Proc) {
			for p.Now() < horizon {
				err := gp.Step(p, gp.Device().Machine.ID, 8<<20)
				if err == nil {
					continue
				}
				if errors.Is(err, proclet.ErrDead) {
					return
				}
				if gp.AwaitPlaced(p) != nil {
					return // lost the device; the fleet is on it
				}
			}
		})
	}

	// Gray failures land via the seeded fault plane: trainer-0's device
	// dies with an XID at 300 ms, trainer-1's throttles 4x at 500 ms and
	// heals at 800 ms. The hook bounds reaction latency to the event,
	// not the watcher period.
	in := fault.New(sys.K, sys.Cluster, sys.Trace)
	in.HookGPU = func(cluster.MachineID, int) { fleet.Kick() }
	d0, d1 := trainers[0].Device(), trainers[1].Device()
	in.Install(fault.Schedule{
		{At: sim.Time(300 * time.Millisecond), Op: fault.OpGPUXid,
			A: d0.Machine.ID, Gpu: d0.Index, Xid: 79},
		{At: sim.Time(500 * time.Millisecond), Op: fault.OpGPUThrottle,
			A: d1.Machine.ID, Gpu: d1.Index, Factor: 4},
		{At: sim.Time(800 * time.Millisecond), Op: fault.OpGPUHeal,
			A: d1.Machine.ID, Gpu: d1.Index},
	})

	// The provider also reclaims a trainer's GPU every 100 ms for 50 ms.
	victim := 0
	sys.K.Every(sim.Time(100*time.Millisecond), 100*time.Millisecond, func() bool {
		g := trainers[victim%len(trainers)].Device()
		victim++
		if !g.Healthy() {
			return sys.K.Now() < horizon // already failed or reclaimed
		}
		g.SetAvailable(false)
		fleet.Kick()
		sys.K.After(50*time.Millisecond, func() { g.SetAvailable(true) })
		return sys.K.Now() < horizon
	})

	sys.K.RunUntil(horizon)
	fleet.Stop()

	fmt.Println()
	var total int64
	for _, gp := range trainers {
		fmt.Printf("%s: %4d steps (%d checkpointed), ends on %v (%s)\n",
			gp.Name(), gp.CompletedSteps(), gp.Checkpoints.Value(), gp.Device(), gp.Device().Class())
		total += gp.CompletedSteps()
	}
	ideal := float64(len(trainers)) * horizon.Seconds() / (5.5e-3)
	fmt.Printf("\ntotal %d steps = %.1f%% of fault-free ideal, %d acked steps lost\n",
		total, 100*float64(total)/ideal, fleet.LostSteps())
	fmt.Printf("fleet: %d evacuations, %d restores, %d mitigations (mean %.1f ms) across %d reclamations + 1 xid\n",
		fleet.Evacuations.Value(), fleet.Restores.Value(), fleet.Mitigations.Value(),
		fleet.MigrationLatency.Mean()*1000, victim)
}
