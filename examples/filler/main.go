// Filler: the paper's §2 motivating experiment.
//
// Two machines each run a high-priority application that alternates
// every 10 ms between consuming all cores and none, anti-phased. A
// best-effort filler built from small compute proclets chases the idle
// windows: when CPU vanishes on one machine, the fast scheduler path
// migrates the filler to the other machine in well under a
// millisecond.
//
//	go run ./examples/filler
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 4 << 30},
		{Cores: 8, MemBytes: 4 << 30},
	})
	sys.Start()

	// Anti-phased 10 ms square waves of high-priority load.
	period := 20 * time.Millisecond
	for i, m := range sys.Cluster.Machines() {
		a := &workload.Antagonist{Machine: m, Period: period, Busy: period / 2,
			Offset: time.Duration(i) * period / 2, Cores: m.Cores()}
		a.Start(sys.K)
	}

	// The filler: 8 single-worker compute proclets doing 50 us units.
	pool, err := sys.NewPool("filler", 1, 8, 1, 8)
	if err != nil {
		log.Fatal(err)
	}
	goodput := [2]*metrics.BucketSeries{
		metrics.NewBucketSeries("m0", time.Millisecond),
		metrics.NewBucketSeries("m1", time.Millisecond),
	}
	var feed func(cp *core.ComputeProclet)
	feed = func(cp *core.ComputeProclet) {
		cp.Run(func(tc *core.TaskCtx) {
			tc.Compute(50 * time.Microsecond)
			goodput[tc.Machine()].Add(sys.K.Now(), 1)
			feed(tc.ComputeProclet())
		})
	}
	for _, m := range pool.Members() {
		feed(m)
		feed(m)
	}

	horizon := sim.Time(200 * time.Millisecond)
	sys.K.RunUntil(horizon)

	// Report: one machine's worth of cores is always idle, so ideal
	// goodput is 8 cores / 50 us = 160 units per ms.
	const ideal = 160.0
	var achieved float64
	for b := 20; b < 200; b++ {
		achieved += goodput[0].Bucket(b) + goodput[1].Bucket(b)
	}
	fmt.Printf("filler goodput: %.1f%% of one full machine\n", 100*achieved/(ideal*180))
	fmt.Printf("migrations: %d, mean latency %.3f ms, max %.3f ms\n",
		sys.Runtime.Migrations.Value(),
		sys.Runtime.MigrationLatency.Mean()*1000,
		sys.Runtime.MigrationLatency.Max()*1000)

	// Timeline excerpt around one antagonist flip (t = 100 ms):
	fmt.Println("\nper-machine goodput [units/ms] around the 100 ms flip:")
	fmt.Println("  t[ms]   m0    m1")
	for b := 96; b < 106; b++ {
		fmt.Printf("  %5d %5.0f %5.0f\n", b, goodput[0].Bucket(b), goodput[1].Bucket(b))
	}
}
