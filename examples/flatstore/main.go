// Flatstore: storage resource proclets and the flat storage
// abstraction (§3.1/§3.2).
//
// Fine-grained storage proclets spread across machines combine their
// capacity and IOPS into one namespace. Eight parallel clients hammer
// the store; compare aggregate throughput against routing everything
// through a single device slice.
//
//	go run ./examples/flatstore
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

func run(nProclets int) (ops int64, elapsed time.Duration) {
	sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 4 << 30},
		{Cores: 8, MemBytes: 4 << 30},
	})
	dev := storage.DeviceConfig{
		CapacityBytes: 8 << 30,
		ReadLatency:   80 * time.Microsecond,
		WriteLatency:  20 * time.Microsecond,
		Bandwidth:     2_000_000_000,
		IOPS:          50_000,
	}
	flat, err := storage.NewFlat(sys, "objects", nProclets, dev)
	if err != nil {
		log.Fatal(err)
	}

	const objects = 256
	const clients = 8
	const opsPerClient = 400
	var done sim.Time
	var wg sim.WaitGroup
	sys.K.Spawn("setup", func(p *sim.Proc) {
		for i := 0; i < objects; i++ {
			if err := flat.Write(p, 0, fmt.Sprintf("obj-%04d", i), nil, 64<<10); err != nil {
				log.Fatal(err)
			}
		}
		start := p.Now()
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			sys.K.Spawn("client", func(cp *sim.Proc) {
				defer wg.Done()
				for i := 0; i < opsPerClient; i++ {
					key := fmt.Sprintf("obj-%04d", (c*131+i*17)%objects)
					if _, err := flat.Read(cp, cluster.MachineID(c%2), key); err != nil {
						log.Fatal(err)
					}
				}
			})
		}
		wg.Wait(p)
		done = p.Now() - sim.Time(start)
		_ = start
	})
	sys.K.Run()
	return flat.TotalOps(), time.Duration(done)
}

func main() {
	for _, n := range []int{1, 4, 16} {
		ops, elapsed := run(n)
		fmt.Printf("%2d storage proclets: %5d ops in %8v  (%8.0f ops/s aggregate)\n",
			n, ops, elapsed.Round(time.Microsecond), float64(3200)/elapsed.Seconds())
	}
	fmt.Println("\nspreading fine-grained storage proclets combines capacity and IOPS (§3.2).")
}
