// Kvchurn: adaptive splitting and merging (§3.3) on a sharded map.
//
// Insert waves grow shards past the migration-latency budget, forcing
// splits; delete waves empty them out, and the adaptation loop merges
// adjacent underfull shards back together — the paper's answer to hash
// tables that decay into many sparse memory proclets.
//
//	go run ./examples/kvchurn
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sharded"
	"repro/internal/sim"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 2 << 30},
		{Cores: 8, MemBytes: 2 << 30},
	})
	sys.Start()

	kv, err := sharded.NewMap[string, []byte](sys, "kv", sharded.Options{
		MaxShardBytes: 2 << 20, // 2 MiB shards keep migration < ~200 us
		AutoAdapt:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := func(phase string, p *sim.Proc) {
		var bytes int64
		for _, mp := range kv.Shards() {
			bytes += mp.HeapBytes()
		}
		fmt.Printf("%-22s t=%-8v keys=%-6d shards=%-3d resident=%.1f MiB (splits=%d merges=%d)\n",
			phase, p.Now(), kv.Len(), kv.NumShards(), float64(bytes)/(1<<20), kv.Splits, kv.Merges)
	}

	sys.K.Spawn("churn", func(p *sim.Proc) {
		key := func(wave, i int) string { return fmt.Sprintf("w%d/k%06d", wave, i) }
		for wave := 0; wave < 3; wave++ {
			// Insert wave: 1500 x 8 KiB values (~12 MiB).
			for i := 0; i < 1500; i++ {
				if err := kv.Put(p, 0, key(wave, i), make([]byte, 0), 8<<10); err != nil {
					log.Fatal(err)
				}
			}
			report(fmt.Sprintf("after insert wave %d", wave), p)

			// Delete wave: remove 95% of the keys.
			for i := 0; i < 1425; i++ {
				if err := kv.Delete(p, 0, key(wave, i)); err != nil {
					log.Fatal(err)
				}
			}
			// Give the adaptation loop time to merge.
			p.Sleep(20 * time.Millisecond)
			report(fmt.Sprintf("after delete wave %d", wave), p)
		}

		// Survivors must still be readable through every restructure.
		missing := 0
		for wave := 0; wave < 3; wave++ {
			for i := 1425; i < 1500; i++ {
				if _, err := kv.Get(p, 0, key(wave, i)); err != nil {
					missing++
				}
			}
		}
		fmt.Printf("\nsurvivor check: %d missing of %d expected keys\n", missing, 3*75)
		sys.K.Stop() // the scheduler's control loops run forever; end the simulation here
	})
	sys.K.Run()

	for _, m := range sys.Cluster.Machines() {
		fmt.Printf("m%d resident at end: %.1f MiB\n", m.ID, float64(m.MemUsed())/(1<<20))
	}
}
