// Quickstart: a two-machine Quicksand system with a sharded map and a
// distributed thread pool.
//
// It demonstrates the core workflow: build a System over machine
// shapes, start the scheduler, create sharded data and elastic
// compute, drive them from a simulated process, and read the results —
// all in deterministic virtual time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dtp"
	"repro/internal/sharded"
	"repro/internal/sim"
)

func main() {
	// Two machines: one CPU-rich, one memory-rich. Quicksand will use
	// each for what it has.
	sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 16, MemBytes: 1 << 30}, // m0: cores
		{Cores: 2, MemBytes: 8 << 30},  // m1: memory
	})
	sys.Start()

	// A sharded vector of records: shards are memory proclets, placed
	// where memory is free (mostly m1).
	vec, err := sharded.NewVector[int](sys, "records", sharded.Options{
		MaxShardBytes: 4 << 20,
		AutoAdapt:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A distributed thread pool: compute proclets placed where cores
	// are free (mostly m0).
	tp, err := dtp.New(sys, "workers", 2, 4, 1, 8)
	if err != nil {
		log.Fatal(err)
	}

	var sum int
	sys.K.Spawn("driver", func(p *sim.Proc) {
		// Load 10k records of 64 KiB each (~640 MiB, too big for m0).
		for i := 0; i < 10_000; i++ {
			if err := vec.PushBack(p, 0, i, 64<<10); err != nil {
				log.Fatal(err)
			}
		}
		// Parallel sum with per-record compute; iterator prefetch
		// streams remote shards behind the computation.
		start := p.Now()
		total, err := dtp.ReduceVec(p, tp, vec, 64,
			func(tc *core.TaskCtx, v int) int {
				tc.Compute(50 * time.Microsecond)
				return v
			},
			func(a, b int) int { return a + b }, 0)
		if err != nil {
			log.Fatal(err)
		}
		sum = total
		fmt.Printf("reduced %d records in %v of virtual time\n", vec.Len(), p.Now().Sub(start))
		sys.K.Stop() // the scheduler's control loops run forever; end the simulation here
	})
	sys.K.Run()

	fmt.Printf("sum = %d (want %d)\n", sum, 10_000*9_999/2)
	fmt.Printf("vector shards: %d (splits=%d)\n", vec.NumShards(), vec.Splits)
	for _, m := range sys.Cluster.Machines() {
		fmt.Printf("m%d: %4.0f MiB resident, %.2f core-seconds executed\n",
			m.ID, float64(m.MemUsed())/(1<<20), m.CoreSeconds)
	}
	fmt.Printf("migrations: %d (mean %.3f ms)\n",
		sys.Runtime.Migrations.Value(), sys.Runtime.MigrationLatency.Mean()*1000)
}
