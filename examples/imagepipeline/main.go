// Imagepipeline: the paper's §4 DNN-training case study as library
// client code.
//
// A corpus of images is ingested into a sharded vector (memory
// proclets), preprocessed by an elastic pool of compute proclets, and
// streamed through a sharded queue into an emulated GPU pool. The two
// machines are deliberately imbalanced — one has the cores, the other
// the memory — and Quicksand combines them transparently.
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dtp"
	"repro/internal/sharded"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 14, MemBytes: 1 << 30}, // CPU-heavy
		{Cores: 2, MemBytes: 8 << 30},  // memory-heavy
	})
	sys.Start()

	imgs := workload.GenImages(rand.New(rand.NewSource(1)), 2000, 1<<20, 8*time.Millisecond, 0.25)
	fmt.Printf("corpus: %d images, %.2f GiB, %.1f core-seconds of preprocessing\n",
		len(imgs), float64(workload.TotalBytes(imgs))/(1<<30), workload.TotalCPU(imgs))

	vec, err := sharded.NewVector[workload.Image](sys, "images",
		sharded.Options{MaxShardBytes: 32 << 20, AutoAdapt: true})
	if err != nil {
		log.Fatal(err)
	}
	queue, err := sharded.NewQueue[workload.Batch](sys, "batches",
		sharded.Options{MaxShardBytes: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	gpus := workload.NewGPUPool(queue, 0, time.Millisecond, 32)
	gpus.Start(sys.K)

	tp, err := dtp.New(sys, "preproc", 1, 16, 1, 16)
	if err != nil {
		log.Fatal(err)
	}

	sys.K.Spawn("driver", func(p *sim.Proc) {
		for _, im := range imgs {
			if err := vec.PushBack(p, 0, im, im.Bytes); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("loaded: %d shards; resident m0=%d MiB m1=%d MiB\n",
			vec.NumShards(),
			sys.Cluster.Machine(0).MemUsed()>>20, sys.Cluster.Machine(1).MemUsed()>>20)

		start := p.Now()
		err := dtp.ForEachVec(p, tp, vec, 8, func(tc *core.TaskCtx, idx uint64, im workload.Image) {
			tc.Compute(im.CPU) // decode + clean + augment
			queue.Push(tc.Proc(), tc.Machine(), workload.Batch{Seq: im.Idx, Bytes: 64 << 10}, 64<<10)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("preprocessed %d images in %v of virtual time\n", len(imgs), p.Now().Sub(start))
		gpus.Stop()
		sys.K.Stop()
	})
	sys.K.Run()

	split := make(map[cluster.MachineID]int)
	for _, cp := range tp.Pool().Members() {
		split[cp.Location()]++
	}
	fmt.Printf("compute proclets by machine: %v\n", split)
	fmt.Printf("GPU batches trained: %d\n", gpus.Consumed.Value())
	fmt.Printf("control plane: %d migrations (mean %.3f ms), %d evacuations, %d memory evictions\n",
		sys.Runtime.Migrations.Value(), sys.Runtime.MigrationLatency.Mean()*1000,
		sys.Sched.Evacuations.Value(), sys.Sched.MemEvictions.Value())
}
