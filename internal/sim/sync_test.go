package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMutexExclusion(t *testing.T) {
	k := NewKernel(1)
	var mu Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		k.Spawn("worker", func(p *Proc) {
			for j := 0; j < 3; j++ {
				mu.Lock(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(time.Millisecond)
				inside--
				mu.Unlock()
			}
		})
	}
	k.Run()
	if maxInside != 1 {
		t.Errorf("maxInside = %d, want 1 (mutual exclusion violated)", maxInside)
	}
}

func TestMutexFIFO(t *testing.T) {
	k := NewKernel(1)
	var mu Mutex
	var order []int
	k.Spawn("holder", func(p *Proc) {
		mu.Lock(p)
		p.Sleep(10 * time.Millisecond)
		mu.Unlock()
	})
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond)
			mu.Lock(p)
			order = append(order, i)
			mu.Unlock()
		})
	}
	k.Run()
	for i := 0; i < 4; i++ {
		if order[i] != i {
			t.Fatalf("acquisition order = %v, want FIFO", order)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	k := NewKernel(1)
	var mu Mutex
	if !mu.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	mu.Unlock()
	if mu.Locked() {
		t.Fatal("mutex still locked after Unlock")
	}
	_ = k
}

func TestMutexUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var mu Mutex
	mu.Unlock()
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(1)
	var wg WaitGroup
	wg.Add(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done()
		})
	}
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	k.Run()
	if doneAt != 3*Millisecond {
		t.Errorf("Wait returned at %v, want 3ms", doneAt)
	}
}

func TestWaitGroupZeroNoBlock(t *testing.T) {
	k := NewKernel(1)
	var wg WaitGroup
	ran := false
	k.Spawn("w", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var wg WaitGroup
	wg.Done()
}

func TestSemaphore(t *testing.T) {
	k := NewKernel(1)
	s := NewSemaphore(2)
	active, maxActive := 0, 0
	var wg WaitGroup
	wg.Add(5)
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			s.Acquire(p, 1)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(time.Millisecond)
			active--
			s.Release(1)
			wg.Done()
		})
	}
	k.Run()
	if maxActive != 2 {
		t.Errorf("maxActive = %d, want 2", maxActive)
	}
	if s.Available() != 2 {
		t.Errorf("Available() = %d, want 2", s.Available())
	}
}

func TestSemaphoreFIFOHeadOfLine(t *testing.T) {
	k := NewKernel(1)
	s := NewSemaphore(0)
	var order []string
	k.Spawn("big", func(p *Proc) {
		s.Acquire(p, 3)
		order = append(order, "big")
	})
	k.Spawn("small", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Acquire(p, 1)
		order = append(order, "small")
	})
	k.Spawn("releaser", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		s.Release(3) // big (head) must win even though small fits first
		p.Sleep(time.Millisecond)
		s.Release(1)
	})
	k.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Errorf("order = %v, want [big small] (no head-of-line bypass)", order)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	k := NewKernel(1)
	var c Cond
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Spawn("sig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		if woken != 1 {
			t.Errorf("after Signal woken = %d, want 1", woken)
		}
		c.Broadcast()
	})
	k.Run()
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := NewKernel(1)
	var c Cond
	k.Spawn("w", func(p *Proc) {
		if !c.WaitTimeout(p, 2*time.Millisecond) {
			t.Error("expected timeout")
		}
		if p.Now() != 2*Millisecond {
			t.Errorf("timed out at %v, want 2ms", p.Now())
		}
	})
	k.Run()

	k2 := NewKernel(1)
	var c2 Cond
	k2.Spawn("w", func(p *Proc) {
		if c2.WaitTimeout(p, 10*time.Millisecond) {
			t.Error("unexpected timeout")
		}
	})
	k2.Spawn("sig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c2.Signal()
	})
	k2.Run()
}

func TestFuture(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int]()
	var got int
	var gotAt Time
	k.Spawn("waiter", func(p *Proc) {
		v, err := f.Get(p)
		if err != nil {
			t.Errorf("Get error: %v", err)
		}
		got, gotAt = v, p.Now()
	})
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(4 * time.Millisecond)
		f.Set(42, nil)
	})
	k.Run()
	if got != 42 || gotAt != 4*Millisecond {
		t.Errorf("got %d at %v, want 42 at 4ms", got, gotAt)
	}
	if !f.Ready() {
		t.Error("future not ready after Set")
	}
}

func TestFutureGetAfterSet(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[string]()
	f.Set("done", nil)
	k.Spawn("w", func(p *Proc) {
		v, _ := f.Get(p)
		if v != "done" {
			t.Errorf("Get = %q, want done", v)
		}
	})
	k.Run()
}

func TestFutureDoubleSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewFuture[int]()
	f.Set(1, nil)
	f.Set(2, nil)
}

// TestSemaphoreConservationProperty: for arbitrary acquire/release
// workloads that fit within the semaphore, all units come back.
func TestSemaphoreConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		k := NewKernel(3)
		const total = 16
		s := NewSemaphore(total)
		var wg WaitGroup
		for _, raw := range sizes {
			n := int64(raw%total) + 1
			wg.Add(1)
			k.Spawn("w", func(p *Proc) {
				s.Acquire(p, n)
				p.Sleep(time.Duration(n) * time.Microsecond)
				s.Release(n)
				wg.Done()
			})
		}
		done := false
		k.Spawn("check", func(p *Proc) {
			wg.Wait(p)
			done = true
		})
		k.Run()
		return done && s.Available() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
