// Partitioned conservative-parallel kernel.
//
// A ParKernel shards a simulation across S independent Kernel instances
// (logical shards) and executes them with up to P host worker
// goroutines. Synchronization follows the classic conservative
// time-stepped ("bounded lag" / YAWNS-style) protocol: all shards
// advance together through a lookahead window [W, W+L) whose width L is
// the minimum cross-shard propagation latency, so no event a shard
// executes inside a window can be invalidated by a message from another
// shard — any such message, sent at time t >= W, arrives no earlier
// than t+L >= W+L, which is the next window. Cross-shard messages are
// exchanged through per-(src,dst) single-writer mailboxes that are
// drained at the window barrier in a fixed (dst, src, FIFO) order.
//
// Determinism is structural, not incidental:
//
//   - Each shard is a full Kernel: its own event heap, same-instant
//     FIFO, RNG, worker pool, and (time, seq) order. Shards share no
//     mutable state, so a shard's execution depends only on its seed
//     and the sequence of mailbox messages it receives.
//   - Window boundaries are computed single-threaded from the global
//     minimum next-event time, and mailboxes are merged single-threaded
//     in a fixed order. Neither depends on the worker count.
//   - P (workers) therefore only chooses how many shards execute
//     concurrently within a window; it can never reorder anything.
//     Same seed => byte-identical per-shard event counts, traces and
//     metrics at every P.
//
// A ParKernel with one shard degenerates to exactly today's sequential
// kernel: Run/RunUntil delegate straight to the underlying Kernel with
// zero windows, zero barriers and zero extra events.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// crossMsg is one cross-shard event: run fn in the destination shard at
// absolute virtual time at.
type crossMsg struct {
	at Time
	fn func()
}

// shardTask is one window's worth of work for one shard.
type shardTask struct {
	k     *Kernel
	until Time
}

// ParKernel coordinates S shard kernels under conservative lookahead
// synchronization. Construct with NewParKernel, populate the shard
// kernels (machines, processes, scheduled events), then drive with
// Run/RunUntil from the host goroutine.
//
// Rules for simulated code running under a ParKernel:
//
//   - Everything reachable from a shard's events must touch only that
//     shard's state. The only sanctioned cross-shard channel is Send.
//   - Send may only target times >= now+Lookahead (enforced; this is
//     the conservative contract that makes windows safe).
//   - Kernel.Stop is not supported on shard kernels under a ParKernel;
//     bound runs with RunUntil instead.
type ParKernel struct {
	shards    []*Kernel
	lookahead Time
	workers   int

	// mail[src][dst] buffers cross-shard messages sent during a window.
	// Each slot has exactly one writer (the worker executing shard src)
	// and is drained single-threaded at the barrier, so it needs no
	// locking; the window-barrier WaitGroup provides the happens-before
	// edges in both directions.
	mail [][][]crossMsg

	// crossSent counts mailbox messages. Shard workers append
	// concurrently from different shards, hence the atomic.
	crossSent atomic.Uint64
	windows   uint64

	// active is a per-window scratch list of shards with runnable work.
	active []*Kernel

	pool     []chan shardTask // one task channel per started worker
	poolWG   sync.WaitGroup   // open shard tasks in the current window
	poolSize int
}

// NewParKernel creates a partitioned kernel with the given number of
// logical shards and a lookahead window of the given width (the minimum
// cross-shard propagation latency). Shard i's kernel is seeded with
// seed+i*1_000_003, so shard 0 of a single-shard ParKernel is exactly
// NewKernel(seed).
func NewParKernel(seed int64, shards int, lookahead Time) *ParKernel {
	if shards <= 0 {
		panic("sim: ParKernel needs at least one shard")
	}
	if lookahead <= 0 && shards > 1 {
		panic("sim: ParKernel needs a positive lookahead window")
	}
	pk := &ParKernel{
		shards:    make([]*Kernel, shards),
		lookahead: lookahead,
		workers:   1,
		active:    make([]*Kernel, 0, shards),
	}
	for i := range pk.shards {
		pk.shards[i] = NewKernel(seed + int64(i)*1_000_003)
	}
	pk.mail = make([][][]crossMsg, shards)
	for s := range pk.mail {
		pk.mail[s] = make([][]crossMsg, shards)
	}
	return pk
}

// NumShards returns the number of logical shards.
func (pk *ParKernel) NumShards() int { return len(pk.shards) }

// Shard returns shard i's kernel.
func (pk *ParKernel) Shard(i int) *Kernel { return pk.shards[i] }

// Lookahead returns the window width.
func (pk *ParKernel) Lookahead() Time { return pk.lookahead }

// SetWorkers bounds how many shards execute concurrently (P). Values
// above the shard count are clamped; values below one mean one. The
// setting affects wall-clock only — simulation results are identical at
// every worker count. Must not be called while Run/RunUntil is active.
func (pk *ParKernel) SetWorkers(p int) {
	if p < 1 {
		p = 1
	}
	if p > len(pk.shards) {
		p = len(pk.shards)
	}
	if p != pk.poolSize {
		pk.stopPool()
	}
	pk.workers = p
}

// Workers returns the configured worker bound.
func (pk *ParKernel) Workers() int { return pk.workers }

// Windows reports how many lookahead windows have been executed.
func (pk *ParKernel) Windows() uint64 { return pk.windows }

// CrossMessages reports how many cross-shard mailbox messages have been
// sent.
func (pk *ParKernel) CrossMessages() uint64 { return pk.crossSent.Load() }

// EventsProcessed sums executed events across shards in shard order.
func (pk *ParKernel) EventsProcessed() uint64 {
	var n uint64
	for _, sh := range pk.shards {
		n += sh.EventsProcessed()
	}
	return n
}

// Live sums unfinished processes across shards.
func (pk *ParKernel) Live() int {
	n := 0
	for _, sh := range pk.shards {
		n += sh.Live()
	}
	return n
}

// Blocked sums parked processes across shards.
func (pk *ParKernel) Blocked() int {
	n := 0
	for _, sh := range pk.shards {
		n += sh.Blocked()
	}
	return n
}

// Send schedules fn to run in shard dst at absolute virtual time at. It
// must be called from code executing in shard src (an event, a fast
// handler, or a simulated process of that shard). Same-shard sends are
// ordinary Schedule calls; cross-shard sends must respect the lookahead
// contract at >= src.Now()+Lookahead and are delivered at the next
// window barrier.
func (pk *ParKernel) Send(src, dst int, at Time, fn func()) {
	if src == dst {
		pk.shards[src].Schedule(at, fn)
		return
	}
	if min := pk.shards[src].now + pk.lookahead; at < min {
		panic(fmt.Sprintf(
			"sim: cross-shard send %d->%d at %v violates lookahead (now %v + %v): "+
				"cross-shard interactions must model at least the minimum propagation latency",
			src, dst, at, pk.shards[src].now, pk.lookahead))
	}
	pk.mail[src][dst] = append(pk.mail[src][dst], crossMsg{at: at, fn: fn})
	pk.crossSent.Add(1)
}

// minNext returns the earliest next-event time across all shards.
// Mailboxes are always drained before minNext runs, so pending events
// live entirely in the shard queues.
func (pk *ParKernel) minNext() (Time, bool) {
	var best Time
	found := false
	for _, sh := range pk.shards {
		if at, ok := sh.nextAt(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// deliver drains every mailbox into the destination shards'
// event queues. Runs single-threaded at the window barrier; the merge
// order (dst ascending, then src ascending, then FIFO within a
// mailbox) is fixed, so the (time, seq) stamps each destination kernel
// assigns — and therefore the drain order of same-instant cross-shard
// events — are identical on every run and at every worker count.
func (pk *ParKernel) deliver() {
	for dst := range pk.shards {
		k := pk.shards[dst]
		for src := range pk.shards {
			q := pk.mail[src][dst]
			if len(q) == 0 {
				continue
			}
			for i := range q {
				k.inject(q[i].at, q[i].fn)
				q[i] = crossMsg{} // release the closure to the GC
			}
			pk.mail[src][dst] = q[:0]
		}
	}
}

// startPool launches the worker goroutines. Each worker owns a
// dedicated task channel; runWindow deals shards round-robin so the
// assignment of shards to workers is fixed (it only matters for wall
// clock, never for results).
func (pk *ParKernel) startPool() {
	pk.pool = make([]chan shardTask, pk.workers)
	for w := range pk.pool {
		ch := make(chan shardTask, len(pk.shards))
		pk.pool[w] = ch
		go func() {
			for task := range ch {
				task.k.RunUntil(task.until)
				pk.poolWG.Done()
			}
		}()
	}
	pk.poolSize = pk.workers
}

// stopPool retires the worker goroutines (idempotent).
func (pk *ParKernel) stopPool() {
	for _, ch := range pk.pool {
		close(ch)
	}
	pk.pool = nil
	pk.poolSize = 0
}

// runWindow executes every shard with runnable work up to and including
// until. The channel send (barrier entry) and WaitGroup wait (barrier
// exit) establish happens-before edges between the coordinator and each
// worker, so mailbox slices written during the window are safely read
// by deliver afterwards.
func (pk *ParKernel) runWindow(until Time) {
	pk.active = pk.active[:0]
	for _, sh := range pk.shards {
		if at, ok := sh.nextAt(); ok && at <= until {
			pk.active = append(pk.active, sh)
		}
	}
	if pk.workers <= 1 || len(pk.active) <= 1 {
		for _, sh := range pk.active {
			sh.RunUntil(until)
		}
		return
	}
	if pk.pool == nil {
		pk.startPool()
	}
	pk.poolWG.Add(len(pk.active))
	for i, sh := range pk.active {
		pk.pool[i%len(pk.pool)] <- shardTask{k: sh, until: until}
	}
	pk.poolWG.Wait()
}

// RunUntil executes all shards up to and including virtual time t,
// window by window, then advances every shard clock to exactly t (so
// processes spawned afterwards start from a common instant). Events
// scheduled after t remain queued.
func (pk *ParKernel) RunUntil(t Time) Time {
	if len(pk.shards) == 1 {
		return pk.shards[0].RunUntil(t)
	}
	for {
		w, ok := pk.minNext()
		if !ok || w > t {
			break
		}
		end := w + pk.lookahead - 1
		if end > t {
			end = t
		}
		pk.runWindow(end)
		pk.windows++
		pk.deliver()
	}
	for _, sh := range pk.shards {
		sh.advanceTo(t)
	}
	return t
}

// Run executes windows until every shard's queue drains and no
// cross-shard message is in flight. It returns the maximum shard time.
func (pk *ParKernel) Run() Time {
	if len(pk.shards) == 1 {
		return pk.shards[0].Run()
	}
	for {
		w, ok := pk.minNext()
		if !ok {
			break
		}
		pk.runWindow(w + pk.lookahead - 1)
		pk.windows++
		pk.deliver()
	}
	var max Time
	for _, sh := range pk.shards {
		if sh.now > max {
			max = sh.now
		}
	}
	return max
}

// Close retires the host worker pool and every shard kernel's pooled
// process goroutines. Call when done with the ParKernel; benchmark
// loops that build many would otherwise accumulate parked goroutines.
func (pk *ParKernel) Close() {
	pk.stopPool()
	for _, sh := range pk.shards {
		sh.Close()
	}
}
