package sim

import (
	"strings"
	"testing"
	"time"
)

// TestSpawnReusesWorkers: sequential spawn-run-die processes must share
// one pooled worker goroutine instead of creating one each.
func TestSpawnReusesWorkers(t *testing.T) {
	k := NewKernel(1)
	defer k.Close()
	ran := 0
	for i := 0; i < 100; i++ {
		k.Spawn("w", func(p *Proc) {
			p.Sleep(time.Microsecond)
			ran++
		})
		k.Run()
	}
	if ran != 100 {
		t.Fatalf("ran %d processes, want 100", ran)
	}
	if k.WorkersCreated() != 1 {
		t.Fatalf("created %d workers for sequential spawns, want 1", k.WorkersCreated())
	}
	if k.PooledWorkers() != 1 {
		t.Fatalf("PooledWorkers = %d, want 1", k.PooledWorkers())
	}
}

// TestSpawnOverlappingWorkers: concurrently-live processes need distinct
// workers, which all return to the pool once they finish.
func TestSpawnOverlappingWorkers(t *testing.T) {
	k := NewKernel(1)
	defer k.Close()
	for i := 0; i < 8; i++ {
		k.Spawn("w", func(p *Proc) { p.Sleep(time.Millisecond) })
	}
	k.Run()
	if k.WorkersCreated() != 8 {
		t.Fatalf("created %d workers for 8 overlapping processes, want 8", k.WorkersCreated())
	}
	if k.PooledWorkers() != 8 {
		t.Fatalf("PooledWorkers = %d after drain, want 8", k.PooledWorkers())
	}
	// The next burst reuses all eight.
	for i := 0; i < 8; i++ {
		k.Spawn("w", func(p *Proc) { p.Sleep(time.Millisecond) })
	}
	k.Run()
	if k.WorkersCreated() != 8 {
		t.Fatalf("created %d workers after reuse burst, want 8", k.WorkersCreated())
	}
}

// TestPanicDoesNotPoisonPool: a panic inside a pooled process must
// discard that worker, and the next Spawn must get a clean one.
func TestPanicDoesNotPoisonPool(t *testing.T) {
	k := NewKernel(1)
	defer k.Close()

	// Prime the pool with one healthy worker.
	k.Spawn("ok", func(p *Proc) {})
	k.Run()
	if k.PooledWorkers() != 1 {
		t.Fatalf("PooledWorkers = %d, want 1", k.PooledWorkers())
	}

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected kernel panic from process panic")
			}
			if !strings.Contains(r.(string), `process "boom" panicked`) {
				t.Fatalf("unexpected panic message: %v", r)
			}
		}()
		k.Spawn("boom", func(p *Proc) { panic("bang") })
		k.Run()
	}()

	// The panicked worker must not be back on the free list.
	if k.PooledWorkers() != 0 {
		t.Fatalf("PooledWorkers = %d after panic, want 0", k.PooledWorkers())
	}

	// And the pool still works: subsequent spawns run normally on fresh
	// workers.
	ran := false
	k.Spawn("after", func(p *Proc) {
		p.Sleep(time.Microsecond)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("process spawned after panic did not run")
	}
}

// TestSpawnLazyName: the name function must not run unless the name is
// observed, and must run exactly once when it is.
func TestSpawnLazyName(t *testing.T) {
	k := NewKernel(1)
	defer k.Close()
	calls := 0
	p := k.SpawnLazy(func() string { calls++; return "lazy-1" }, func(p *Proc) {})
	k.Run()
	if calls != 0 {
		t.Fatalf("nameFn ran %d times without the name being observed", calls)
	}
	if got := p.Name(); got != "lazy-1" {
		t.Fatalf("Name() = %q, want %q", got, "lazy-1")
	}
	if got := p.Name(); got != "lazy-1" || calls != 1 {
		t.Fatalf("second Name() = %q (calls=%d), want cached %q (1 call)", got, calls, "lazy-1")
	}
}

// TestBlockFromKernelContextPanics: blocking calls on a process from
// kernel context (an event, a fast handler) must panic with a clear
// message instead of deadlocking the kernel.
func TestBlockFromKernelContextPanics(t *testing.T) {
	k := NewKernel(1)
	defer k.Close()
	var victim *Proc
	victim = k.Spawn("victim", func(p *Proc) { p.Sleep(time.Second) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from blocking call in kernel context")
		}
		if !strings.Contains(r.(string), "must not block") {
			t.Fatalf("unexpected panic message: %v", r)
		}
	}()
	k.Schedule(k.Now().Add(time.Microsecond), func() {
		victim.Sleep(time.Millisecond) // not the running process: must panic
	})
	k.Run()
}

// TestCloseRetiresWorkers: Close must empty the free list; the kernel
// stays usable afterwards.
func TestCloseRetiresWorkers(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) { p.Sleep(time.Microsecond) })
	}
	k.Run()
	if k.PooledWorkers() != 4 {
		t.Fatalf("PooledWorkers = %d, want 4", k.PooledWorkers())
	}
	k.Close()
	if k.PooledWorkers() != 0 {
		t.Fatalf("PooledWorkers = %d after Close, want 0", k.PooledWorkers())
	}
	ran := false
	k.Spawn("again", func(p *Proc) { ran = true })
	k.Run()
	if !ran {
		t.Fatal("spawn after Close did not run")
	}
	k.Close()
}
