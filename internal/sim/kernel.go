// Package sim provides a deterministic discrete-event simulation kernel
// with virtual time and goroutine-backed simulated processes.
//
// The kernel executes exactly one simulated process at a time and hands
// control back and forth over channels, so simulated code is written as
// ordinary sequential Go while the kernel retains full determinism: given
// the same seed and the same program, every run produces an identical
// event order. Virtual time advances only when the kernel pops events
// from its queue; simulated code never consumes wall-clock time.
//
// All Quicksand substrates (machines, networks, proclets) are built on
// this kernel, which is what makes microsecond-scale claims (migration
// latency, time-to-equilibrium) reproducible in tests on any hardware.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start
// of the simulation.
type Time int64

// Common virtual-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the timestamp to a duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the timestamp as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a single entry in the kernel's event queue. Events are held
// by value inside the kernel's slices — there is no per-event heap
// allocation and no interface boxing on the schedule/pop path; the
// slices themselves act as the event pool, retaining capacity across
// the run.
//
// The hot event payloads are typed instead of closed over: process
// wakes carry the *Proc directly and tagged callbacks carry a uint64
// argument, so the dominant event kinds (wake, sleep-expiry, machine
// completion re-arms) schedule without allocating a closure.
type event struct {
	at   Time
	seq  uint64
	tag  uint64       // evTagged argument
	fn   func()       // evFn payload
	tfn  func(uint64) // evTagged payload
	p    *Proc        // evResume / evWakeParked payload
	kind uint8
}

// Event payload kinds.
const (
	evFn         = uint8(iota) // run fn()
	evTagged                   // run tfn(tag)
	evResume                   // resume p (already un-blocked by wake)
	evWakeParked               // un-block and resume p (Sleep expiry)
	evStart                    // first resume of a freshly spawned p
)

// eventLess orders events by (time, insertion sequence).
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Kernel is a deterministic discrete-event simulator.
//
// A Kernel is not safe for concurrent use from multiple host goroutines;
// all interaction must happen either before Run or from within simulated
// processes and scheduled events. Distinct kernels are fully independent
// and may run concurrently on separate host goroutines.
type Kernel struct {
	now Time
	seq uint64

	// The event queue is split in two. Events scheduled for a future
	// instant go through a hand-rolled binary min-heap over a value
	// slice. Events scheduled at exactly the current instant — the
	// dominant case: wakes, Yield, same-instant event chains — take a
	// FIFO fast path that bypasses the heap entirely. FIFO order within
	// nowq equals (time, seq) order because entries are appended with
	// nondecreasing timestamps and increasing sequence numbers; pop
	// compares the FIFO head against the heap top so global (time, seq)
	// order is preserved exactly.
	heap    []event
	nowq    []event
	nowHead int

	rng       *rand.Rand
	nextPID   int64
	live      int // processes spawned and not yet finished
	blocked   int // processes currently parked
	yield     chan yieldMsg
	curr      *Proc
	processed uint64
	stopFlag  bool

	// Worker pool for the spawn-run-die process pattern (RPC handlers,
	// migration copiers, per-task workers). Each worker is a goroutine,
	// its resume channel, and a Proc struct, all created once and reused
	// across process lifetimes; a finished process returns its worker to
	// the free list instead of letting the goroutine die. A worker whose
	// process panicked is discarded, never pooled.
	free    []*worker
	created uint64 // workers (goroutines) ever created
}

type yieldMsg struct {
	p        *Proc
	done     bool
	panicked bool
	panicVal any
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan yieldMsg),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// EventsProcessed reports how many events the kernel has executed.
func (k *Kernel) EventsProcessed() uint64 { return k.processed }

// Live reports the number of spawned processes that have not finished.
func (k *Kernel) Live() int { return k.live }

// Blocked reports the number of processes currently parked on a wait
// primitive. When Run returns with Blocked() > 0, those processes were
// waiting on conditions that never fired (often daemons, sometimes bugs).
func (k *Kernel) Blocked() int { return k.blocked }

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.heap) + len(k.nowq) - k.nowHead }

// Schedule runs fn at absolute virtual time at (clamped to now if in the
// past). fn executes in kernel context: it must not block, but it may
// spawn or wake processes.
func (k *Kernel) Schedule(at Time, fn func()) {
	k.push(at, event{fn: fn, kind: evFn})
}

// ScheduleTagged runs fn(tag) at absolute virtual time at (clamped like
// Schedule). Because the argument travels in the event itself, callers
// that re-arm the same callback with varying state (for example a
// machine's generation-guarded completion event) can hold one long-lived
// fn and schedule with zero allocations.
func (k *Kernel) ScheduleTagged(at Time, fn func(tag uint64), tag uint64) {
	k.push(at, event{tfn: fn, tag: tag, kind: evTagged})
}

// AfterTagged runs fn(tag) after virtual duration d.
func (k *Kernel) AfterTagged(d time.Duration, fn func(tag uint64), tag uint64) {
	k.ScheduleTagged(k.now.Add(d), fn, tag)
}

// push stamps e with (time, seq) and routes it to the same-instant FIFO
// or the future heap.
func (k *Kernel) push(at Time, e event) {
	k.seq++
	e.seq = k.seq
	if at <= k.now {
		// Same-instant fast path: append to the FIFO, skip the heap.
		e.at = k.now
		k.nowq = append(k.nowq, e)
		return
	}
	e.at = at
	k.heapPush(e)
}

// heapPush inserts e into the future-event heap.
func (k *Kernel) heapPush(e event) {
	h := append(k.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	k.heap = h
}

// heapPop removes and returns the minimum future event.
func (k *Kernel) heapPop() event {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure to the GC
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			m = r
		}
		if !eventLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	k.heap = h
	return top
}

// nowqPop removes and returns the FIFO head. The backing array is
// reused once the queue drains, so steady-state same-instant traffic
// allocates nothing.
func (k *Kernel) nowqPop() event {
	e := k.nowq[k.nowHead]
	k.nowq[k.nowHead] = event{} // release payload references to the GC
	k.nowHead++
	if k.nowHead == len(k.nowq) {
		k.nowq = k.nowq[:0]
		k.nowHead = 0
	}
	return e
}

// pop removes and returns the globally next event in (time, seq) order,
// merging the FIFO fast path with the heap.
func (k *Kernel) pop() (event, bool) {
	qn := k.nowHead < len(k.nowq)
	hn := len(k.heap) > 0
	switch {
	case qn && hn:
		if eventLess(k.heap[0], k.nowq[k.nowHead]) {
			return k.heapPop(), true
		}
		return k.nowqPop(), true
	case qn:
		return k.nowqPop(), true
	case hn:
		return k.heapPop(), true
	}
	return event{}, false
}

// nextAt returns the timestamp of the next pending event, consulting
// both the FIFO fast path and the heap.
func (k *Kernel) nextAt() (Time, bool) {
	qn := k.nowHead < len(k.nowq)
	hn := len(k.heap) > 0
	switch {
	case qn && hn:
		q, h := k.nowq[k.nowHead].at, k.heap[0].at
		if h < q {
			return h, true
		}
		return q, true
	case qn:
		return k.nowq[k.nowHead].at, true
	case hn:
		return k.heap[0].at, true
	}
	return 0, false
}

// After runs fn after virtual duration d.
func (k *Kernel) After(d time.Duration, fn func()) {
	k.Schedule(k.now.Add(d), fn)
}

// inject schedules fn at absolute time at from a ParKernel window
// barrier. Unlike Schedule it refuses to clamp past timestamps: a
// cross-shard delivery in the destination's past would be a causality
// violation — the lookahead contract (Send) exists precisely to make
// this impossible, so tripping here means a model charged less than the
// minimum propagation latency.
func (k *Kernel) inject(at Time, fn func()) {
	if at <= k.now {
		panic(fmt.Sprintf("sim: cross-shard delivery at %v is not after shard time %v (causality violation)", at, k.now))
	}
	k.seq++
	k.heapPush(event{at: at, seq: k.seq, fn: fn, kind: evFn})
}

// advanceTo moves the clock forward to t without executing anything
// (no-op if the clock is already at or past t). Used by ParKernel to
// leave all shards at a common instant after a bounded run.
func (k *Kernel) advanceTo(t Time) {
	if k.now < t {
		k.now = t
	}
}

// Every runs fn at t0 and then every period until it returns false or
// the simulation ends.
func (k *Kernel) Every(t0 Time, period time.Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	var tick func()
	at := t0
	tick = func() {
		if !fn() {
			return
		}
		at = at.Add(period)
		k.Schedule(at, tick)
	}
	k.Schedule(at, tick)
}

// worker is a pooled execution vehicle for simulated processes: one
// goroutine, one resume channel, and one Proc struct, created together
// and reused across process lifetimes. Between lifetimes the goroutine
// parks on the resume channel inside loop; handing it a new fn costs a
// channel send instead of a goroutine creation. The unbuffered resume
// channel orders every kernel-side write to w.p/w.fn before the worker
// goroutine reads them, so reuse is race-free.
type worker struct {
	k      *Kernel
	resume chan struct{}
	p      *Proc
	fn     func(p *Proc) // next body to run; nil send retires the worker
}

func (w *worker) loop() {
	for {
		<-w.resume
		if w.fn == nil {
			return // retired by Kernel.Close
		}
		if !w.runOne() {
			return // body panicked; this goroutine is done for
		}
	}
}

// runOne executes one process lifetime and reports whether the worker
// may be reused. A panic in the body is captured and forwarded to the
// kernel, and the worker goroutine exits: its internal state is
// suspect, so the pool never sees it again.
func (w *worker) runOne() (ok bool) {
	p, fn := w.p, w.fn
	w.fn = nil
	defer func() {
		msg := yieldMsg{p: p, done: true}
		if r := recover(); r != nil {
			msg.panicked = true
			msg.panicVal = r
		}
		w.k.yield <- msg
	}()
	fn(p)
	return true
}

// getWorker pops a parked worker off the free list or creates one.
func (k *Kernel) getWorker() *worker {
	if n := len(k.free); n > 0 {
		w := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return w
	}
	k.created++
	w := &worker{k: k, resume: make(chan struct{})}
	w.p = &Proc{k: k, w: w, resume: w.resume}
	go w.loop()
	return w
}

// Spawn starts a new simulated process running fn. The process begins
// executing at the current virtual time, after the caller yields back to
// the kernel.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := k.spawnProc(fn)
	p.name = name
	return p
}

// SpawnLazy is Spawn with deferred naming: nameFn runs only if the
// process name is actually observed (a panic message, debugging). Hot
// spawn paths use it to avoid a fmt.Sprintf per process.
func (k *Kernel) SpawnLazy(nameFn func() string, fn func(p *Proc)) *Proc {
	p := k.spawnProc(fn)
	p.nameFn = nameFn
	return p
}

func (k *Kernel) spawnProc(fn func(p *Proc)) *Proc {
	w := k.getWorker()
	p := w.p
	k.nextPID++
	p.ID = k.nextPID
	p.name, p.nameFn = "", nil
	p.finished = false
	// parkSeq deliberately survives reuse: it stays monotonic so waiter
	// handles from the previous lifetime remain stale.
	w.fn = fn
	k.live++
	k.push(k.now, event{p: p, kind: evStart})
	return p
}

// Close retires the parked workers on the free list, letting their
// goroutines exit. Go never reclaims a blocked goroutine, so code that
// churns through many kernels (benchmark loops, experiment sweeps)
// should Close each kernel when done with it. The kernel remains usable
// after Close; new spawns simply create fresh workers.
func (k *Kernel) Close() {
	for _, w := range k.free {
		w.fn = nil
		w.resume <- struct{}{}
	}
	k.free = k.free[:0]
}

// PooledWorkers reports the number of idle workers on the free list.
func (k *Kernel) PooledWorkers() int { return len(k.free) }

// WorkersCreated reports how many worker goroutines the kernel has ever
// created; the gap between this and the number of processes spawned is
// the pool's hit count.
func (k *Kernel) WorkersCreated() uint64 { return k.created }

// resumeAndWait transfers control to p and blocks until p parks or
// finishes. It must only be called from kernel context.
func (k *Kernel) resumeAndWait(p *Proc) {
	if p.finished {
		return
	}
	k.curr = p
	p.resume <- struct{}{}
	msg := <-k.yield
	k.curr = nil
	if msg.p != p {
		panic(fmt.Sprintf("sim: yield from %q while running %q", msg.p.Name(), p.Name()))
	}
	if msg.done {
		p.finished = true
		k.live--
		if msg.panicked {
			// The worker goroutine already exited; drop it on the floor
			// rather than pooling a worker in an unknown state.
			panic(fmt.Sprintf("sim: process %q panicked at %v: %v", p.Name(), k.now, msg.panicVal))
		}
		k.free = append(k.free, p.w)
		return
	}
	k.blocked++
}

// wake schedules p to resume at the current virtual time.
func (k *Kernel) wake(p *Proc) {
	k.blocked--
	k.push(k.now, event{p: p, kind: evResume})
}

// Step executes the next pending event. It reports false when the event
// queue is empty.
func (k *Kernel) Step() bool {
	e, ok := k.pop()
	if !ok {
		return false
	}
	if e.at > k.now {
		k.now = e.at
	}
	k.processed++
	switch e.kind {
	case evFn:
		e.fn()
	case evTagged:
		e.tfn(e.tag)
	case evResume:
		k.resumeAndWait(e.p)
	case evWakeParked:
		k.blocked--
		k.resumeAndWait(e.p)
	case evStart:
		k.resumeAndWait(e.p)
	}
	return true
}

// Run executes events until the queue drains or Stop is called. It
// returns the final virtual time.
func (k *Kernel) Run() Time {
	k.stopFlag = false
	for !k.stopFlag && k.Step() {
	}
	return k.now
}

// RunUntil executes events with timestamps up to and including t, then
// advances the clock to t. Events scheduled after t remain queued. The
// next-event check consults both the same-instant FIFO and the heap, so
// current-instant work queued on the fast path is never stranded.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopFlag = false
	for !k.stopFlag {
		at, ok := k.nextAt()
		if !ok || at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// Stop makes the innermost Run or RunUntil return after the current
// event completes. It may be called from events or simulated processes.
func (k *Kernel) Stop() { k.stopFlag = true }

// Proc is a simulated process: a goroutine whose execution interleaves
// deterministically with all other simulated processes under kernel
// control. All blocking methods must be called only from the process's
// own goroutine.
//
// Proc structs are pooled along with their workers: once a process
// finishes, its struct may be recycled for a later Spawn with a new ID.
// Holding a *Proc past the process's completion and calling blocking
// methods on it is a bug (and now panics via the park guard); waiter
// handles remain safe because park generations are monotonic across
// reuse.
type Proc struct {
	ID       int64
	k        *Kernel
	w        *worker
	resume   chan struct{}
	finished bool

	// Lazy naming: name is computed from nameFn the first time Name is
	// called, so hot spawn paths never pay for a formatted name that
	// nobody looks at.
	name   string
	nameFn func() string

	// Park-cycle state for waiter handles (see prepark): parkSeq
	// identifies the current cycle and parkWoken records whether some
	// waker already won it.
	parkSeq   uint64
	parkWoken bool
}

// Name returns the process name, computing it on first use when the
// process was spawned with SpawnLazy.
func (p *Proc) Name() string {
	if p.name == "" && p.nameFn != nil {
		p.name = p.nameFn()
		p.nameFn = nil
	}
	if p.name == "" {
		return fmt.Sprintf("proc-%d", p.ID)
	}
	return p.name
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park yields to the kernel until some other party wakes this process.
func (p *Proc) park() {
	if p.k.curr != p {
		panic(fmt.Sprintf(
			"sim: blocking call on process %q from outside its own context: fast handlers and kernel events must not block (sleep, lock, channel ops)",
			p.Name()))
	}
	p.k.yield <- yieldMsg{p: p}
	<-p.resume
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	k := p.k
	k.push(k.now.Add(d), event{p: p, kind: evWakeParked})
	p.parkCounted()
}

// SleepUntil suspends the process until absolute virtual time t.
func (p *Proc) SleepUntil(t Time) {
	p.Sleep(t.Sub(p.k.now))
}

// Yield lets every other event and process scheduled for the current
// instant run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// parkCounted parks and lets the kernel account the process as blocked.
// The waker must go through a path that decrements the blocked count
// (kernel.wake / the evWakeParked event).
func (p *Proc) parkCounted() { p.park() }

// waiter is a one-shot wake handle for one park cycle of a process.
// Primitives (channels, mutexes, timeouts) register a waiter before
// parking so that multiple potential wakers (for example, a sender and
// a timeout) race safely: only the first wake resumes the process.
//
// Waiters are values, not allocations: the handle is (process,
// park-cycle generation), and the live cycle state lives in the Proc.
// A handle from an earlier cycle — say, a timeout that fires after its
// process was woken by a sender and parked somewhere new — sees a
// generation mismatch and becomes inert.
type waiter struct {
	p   *Proc
	gen uint64
}

// prepark opens a new park cycle and returns its wake handle. The
// caller must subsequently call park exactly once; any number of
// parties may call wake on copies of the handle.
func (p *Proc) prepark() waiter {
	p.parkSeq++
	p.parkWoken = false
	return waiter{p: p, gen: p.parkSeq}
}

// woken reports whether this handle can no longer wake its process:
// either some waker already won this park cycle, or the process has
// moved on to a later cycle and the handle is stale.
func (w waiter) woken() bool {
	return w.gen != w.p.parkSeq || w.p.parkWoken
}

// wake resumes the parked process if it has not been woken already. It
// reports whether this call was the one that woke it. Safe to call from
// kernel context or from another simulated process.
func (w waiter) wake() bool {
	if w.woken() {
		return false
	}
	w.p.parkWoken = true
	w.p.k.wake(w.p)
	return true
}
