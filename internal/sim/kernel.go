// Package sim provides a deterministic discrete-event simulation kernel
// with virtual time and goroutine-backed simulated processes.
//
// The kernel executes exactly one simulated process at a time and hands
// control back and forth over channels, so simulated code is written as
// ordinary sequential Go while the kernel retains full determinism: given
// the same seed and the same program, every run produces an identical
// event order. Virtual time advances only when the kernel pops events
// from its queue; simulated code never consumes wall-clock time.
//
// All Quicksand substrates (machines, networks, proclets) are built on
// this kernel, which is what makes microsecond-scale claims (migration
// latency, time-to-equilibrium) reproducible in tests on any hardware.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start
// of the simulation.
type Time int64

// Common virtual-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the timestamp to a duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the timestamp as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a single entry in the kernel's event queue.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event simulator.
//
// A Kernel is not safe for concurrent use from multiple host goroutines;
// all interaction must happen either before Run or from within simulated
// processes and scheduled events.
type Kernel struct {
	now       Time
	seq       uint64
	events    eventHeap
	rng       *rand.Rand
	nextPID   int64
	live      int // processes spawned and not yet finished
	blocked   int // processes currently parked
	yield     chan yieldMsg
	curr      *Proc
	processed uint64
	stopFlag  bool
}

type yieldMsg struct {
	p        *Proc
	done     bool
	panicked bool
	panicVal any
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan yieldMsg),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// EventsProcessed reports how many events the kernel has executed.
func (k *Kernel) EventsProcessed() uint64 { return k.processed }

// Live reports the number of spawned processes that have not finished.
func (k *Kernel) Live() int { return k.live }

// Blocked reports the number of processes currently parked on a wait
// primitive. When Run returns with Blocked() > 0, those processes were
// waiting on conditions that never fired (often daemons, sometimes bugs).
func (k *Kernel) Blocked() int { return k.blocked }

// Schedule runs fn at absolute virtual time at (clamped to now if in the
// past). fn executes in kernel context: it must not block, but it may
// spawn or wake processes.
func (k *Kernel) Schedule(at Time, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fn: fn})
}

// After runs fn after virtual duration d.
func (k *Kernel) After(d time.Duration, fn func()) {
	k.Schedule(k.now.Add(d), fn)
}

// Every runs fn at t0 and then every period until it returns false or
// the simulation ends.
func (k *Kernel) Every(t0 Time, period time.Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	var tick func()
	at := t0
	tick = func() {
		if !fn() {
			return
		}
		at = at.Add(period)
		k.Schedule(at, tick)
	}
	k.Schedule(at, tick)
}

// Spawn starts a new simulated process running fn. The process begins
// executing at the current virtual time, after the caller yields back to
// the kernel.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	k.nextPID++
	p := &Proc{
		ID:     k.nextPID,
		Name:   name,
		k:      k,
		resume: make(chan struct{}),
	}
	k.live++
	k.Schedule(k.now, func() { k.startProc(p, fn) })
	return p
}

func (k *Kernel) startProc(p *Proc, fn func(p *Proc)) {
	go func() {
		<-p.resume
		defer func() {
			msg := yieldMsg{p: p, done: true}
			if r := recover(); r != nil {
				msg.panicked = true
				msg.panicVal = r
			}
			k.yield <- msg
		}()
		fn(p)
	}()
	k.resumeAndWait(p)
}

// resumeAndWait transfers control to p and blocks until p parks or
// finishes. It must only be called from kernel context.
func (k *Kernel) resumeAndWait(p *Proc) {
	if p.finished {
		return
	}
	k.curr = p
	p.resume <- struct{}{}
	msg := <-k.yield
	k.curr = nil
	if msg.p != p {
		panic(fmt.Sprintf("sim: yield from %q while running %q", msg.p.Name, p.Name))
	}
	if msg.done {
		p.finished = true
		k.live--
		if msg.panicked {
			panic(fmt.Sprintf("sim: process %q panicked at %v: %v", p.Name, k.now, msg.panicVal))
		}
		return
	}
	k.blocked++
}

// wake schedules p to resume at the current virtual time.
func (k *Kernel) wake(p *Proc) {
	k.blocked--
	k.Schedule(k.now, func() { k.resumeAndWait(p) })
}

// Step executes the next pending event. It reports false when the event
// queue is empty.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	if e.at > k.now {
		k.now = e.at
	}
	k.processed++
	e.fn()
	return true
}

// Run executes events until the queue drains or Stop is called. It
// returns the final virtual time.
func (k *Kernel) Run() Time {
	k.stopFlag = false
	for !k.stopFlag && k.Step() {
	}
	return k.now
}

// RunUntil executes events with timestamps up to and including t, then
// advances the clock to t. Events scheduled after t remain queued.
func (k *Kernel) RunUntil(t Time) Time {
	k.stopFlag = false
	for !k.stopFlag && len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// Stop makes the innermost Run or RunUntil return after the current
// event completes. It may be called from events or simulated processes.
func (k *Kernel) Stop() { k.stopFlag = true }

// Proc is a simulated process: a goroutine whose execution interleaves
// deterministically with all other simulated processes under kernel
// control. All blocking methods must be called only from the process's
// own goroutine.
type Proc struct {
	ID       int64
	Name     string
	k        *Kernel
	resume   chan struct{}
	finished bool
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park yields to the kernel until some other party wakes this process.
func (p *Proc) park() {
	p.k.yield <- yieldMsg{p: p}
	<-p.resume
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	k := p.k
	k.Schedule(k.now.Add(d), func() { k.wakeParked(p) })
	p.parkCounted()
}

// SleepUntil suspends the process until absolute virtual time t.
func (p *Proc) SleepUntil(t Time) {
	p.Sleep(t.Sub(p.k.now))
}

// Yield lets every other event and process scheduled for the current
// instant run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// parkCounted parks and lets the kernel account the process as blocked.
// The waker must go through a path that decrements the blocked count
// (kernel.wake / wakeParked).
func (p *Proc) parkCounted() { p.park() }

// wakeParked resumes a process that parked via a primitive that did not
// pre-register a waiter (Sleep). It runs in kernel context.
func (k *Kernel) wakeParked(p *Proc) {
	k.blocked--
	k.resumeAndWait(p)
}

// waiter is a one-shot wake handle for a parked process. Primitives
// (channels, mutexes, timeouts) register a waiter before parking so that
// multiple potential wakers (for example, a sender and a timeout) race
// safely: only the first wake resumes the process.
type waiter struct {
	p     *Proc
	woken bool
}

// prepark registers a wake handle. The caller must subsequently call
// park exactly once; any number of parties may call wake on the handle.
func (p *Proc) prepark() *waiter {
	return &waiter{p: p}
}

// wake resumes the parked process if it has not been woken already. It
// reports whether this call was the one that woke it. Safe to call from
// kernel context or from another simulated process.
func (w *waiter) wake() bool {
	if w.woken {
		return false
	}
	w.woken = true
	w.p.k.wake(w.p)
	return true
}
