package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Errorf("Now() = %v, want 30ns", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulePastClamps(t *testing.T) {
	k := NewKernel(1)
	var at Time = -1
	k.Schedule(100, func() {
		k.Schedule(50, func() { at = k.Now() }) // in the past
	})
	k.Run()
	if at != 100 {
		t.Errorf("past event ran at %v, want clamped to 100", at)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel(1)
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		wake = p.Now()
	})
	k.Run()
	if wake != 3*Millisecond {
		t.Errorf("woke at %v, want 3ms", wake)
	}
	if k.Live() != 0 {
		t.Errorf("Live() = %d, want 0", k.Live())
	}
}

func TestProcSleepUntil(t *testing.T) {
	k := NewKernel(1)
	var wake Time
	k.Spawn("p", func(p *Proc) {
		p.SleepUntil(7 * Millisecond)
		p.SleepUntil(2 * Millisecond) // already past: no-op
		wake = p.Now()
	})
	k.Run()
	if wake != 7*Millisecond {
		t.Errorf("woke at %v, want 7ms", wake)
	}
}

func TestMultipleProcsInterleave(t *testing.T) {
	k := NewKernel(1)
	var got []string
	for _, d := range []time.Duration{2 * time.Millisecond, time.Millisecond, 3 * time.Millisecond} {
		d := d
		k.Spawn(fmt.Sprint(d), func(p *Proc) {
			p.Sleep(d)
			got = append(got, fmt.Sprint(d))
		})
	}
	k.Run()
	want := []string{"1ms", "2ms", "3ms"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave order = %v, want %v", got, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Schedule(10*Millisecond, func() { ran = true })
	k.RunUntil(5 * Millisecond)
	if ran {
		t.Fatal("future event ran early")
	}
	if k.Now() != 5*Millisecond {
		t.Errorf("Now() = %v, want 5ms", k.Now())
	}
	k.RunUntil(20 * Millisecond)
	if !ran {
		t.Fatal("event did not run")
	}
	if k.Now() != 20*Millisecond {
		t.Errorf("Now() = %v, want 20ms", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Every(0, time.Millisecond, func() bool {
		count++
		if count == 5 {
			k.Stop()
		}
		return true
	})
	k.RunUntil(Second)
	if count != 5 {
		t.Errorf("count = %d, want 5 (Stop should halt the run)", count)
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel(1)
	var ticks []Time
	k.Every(2*Millisecond, 3*time.Millisecond, func() bool {
		ticks = append(ticks, k.Now())
		return len(ticks) < 4
	})
	k.Run()
	want := []Time{2 * Millisecond, 5 * Millisecond, 8 * Millisecond, 11 * Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestYieldRunsQueuedEventsFirst(t *testing.T) {
	k := NewKernel(1)
	var got []string
	k.Spawn("a", func(p *Proc) {
		k.Schedule(k.Now(), func() { got = append(got, "event") })
		p.Yield()
		got = append(got, "a-after-yield")
	})
	k.Run()
	if len(got) != 2 || got[0] != "event" || got[1] != "a-after-yield" {
		t.Errorf("got %v, want [event a-after-yield]", got)
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("parent", func(p *Proc) {
		order = append(order, "parent-start")
		k.Spawn("child", func(c *Proc) {
			order = append(order, "child")
		})
		p.Sleep(time.Microsecond)
		order = append(order, "parent-end")
	})
	k.Run()
	want := []string{"parent-start", "child", "parent-end"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate from process")
		}
	}()
	k := NewKernel(1)
	k.Spawn("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("boom")
	})
	k.Run()
}

func TestBlockedAccounting(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k, 0)
	k.Spawn("stuck", func(p *Proc) {
		ch.Recv(p) // never satisfied
	})
	k.Run()
	if k.Blocked() != 1 {
		t.Errorf("Blocked() = %d, want 1", k.Blocked())
	}
	if k.Live() != 1 {
		t.Errorf("Live() = %d, want 1", k.Live())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (trace []string, events uint64) {
		k := NewKernel(42)
		ch := NewChan[int](k, 4)
		for i := 0; i < 5; i++ {
			i := i
			k.Spawn(fmt.Sprintf("producer-%d", i), func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(time.Duration(k.Rand().Intn(1000)) * time.Microsecond)
					ch.Send(p, i*100+j)
				}
			})
		}
		k.Spawn("consumer", func(p *Proc) {
			for n := 0; n < 50; n++ {
				v, _ := ch.Recv(p)
				trace = append(trace, fmt.Sprintf("%v:%d", p.Now(), v))
			}
		})
		k.Run()
		return trace, k.EventsProcessed()
	}
	t1, e1 := run()
	t2, e2 := run()
	if e1 != e2 {
		t.Fatalf("event counts differ: %d vs %d", e1, e2)
	}
	if len(t1) != 50 || len(t2) != 50 {
		t.Fatalf("trace lengths: %d, %d, want 50", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * Millisecond)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", tm.Seconds())
	}
	if tm.Add(500*time.Millisecond) != 2*Second {
		t.Errorf("Add: got %v", tm.Add(500*time.Millisecond))
	}
	if tm.Sub(Second) != 500*time.Millisecond {
		t.Errorf("Sub: got %v", tm.Sub(Second))
	}
	if tm.String() != "1.5s" {
		t.Errorf("String() = %q", tm.String())
	}
}
