package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// buildMixedWorkload populates k with a representative event mix:
// processes that sleep and synchronize, timers, same-instant chains.
// It returns a pointer to the log the workload appends to.
func buildMixedWorkload(k *Kernel) *[]string {
	log := &[]string{}
	var mu Mutex
	var wg WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			defer wg.Done()
			for step := 0; step < 5; step++ {
				p.Sleep(time.Duration(1+i) * time.Microsecond)
				mu.Lock(p)
				*log = append(*log, fmt.Sprintf("p%d step%d @%v r%d", i, step, p.Now(), k.Rand().Intn(100)))
				mu.Unlock()
				p.Yield()
			}
		})
	}
	k.Every(2*Microsecond, 3*time.Microsecond, func() bool {
		*log = append(*log, fmt.Sprintf("tick @%v", k.Now()))
		return k.Now() < 40*Microsecond
	})
	return log
}

// A single-shard ParKernel must reduce exactly to the sequential
// kernel: same events processed, same final time, same log, same RNG
// consumption.
func TestParKernelSingleShardReduction(t *testing.T) {
	plain := NewKernel(7)
	defer plain.Close()
	plainLog := buildMixedWorkload(plain)
	plainEnd := plain.Run()

	pk := NewParKernel(7, 1, 2*Microsecond)
	defer pk.Close()
	parLog := buildMixedWorkload(pk.Shard(0))
	parEnd := pk.Run()

	if plainEnd != parEnd {
		t.Fatalf("final time: plain %v vs par %v", plainEnd, parEnd)
	}
	if plain.EventsProcessed() != pk.EventsProcessed() {
		t.Fatalf("events: plain %d vs par %d", plain.EventsProcessed(), pk.EventsProcessed())
	}
	if pk.Windows() != 0 {
		t.Fatalf("single-shard ParKernel executed %d windows, want 0 (exact reduction)", pk.Windows())
	}
	if !reflect.DeepEqual(*plainLog, *parLog) {
		t.Fatalf("logs differ:\nplain %v\npar   %v", *plainLog, *parLog)
	}
}

// parRun executes a canonical multi-shard workload with cross-shard
// ping-pong traffic at the given worker count and returns per-shard
// logs and per-shard event counts.
func parRun(t *testing.T, workers int, horizon Time) ([][]string, []uint64) {
	t.Helper()
	const shards = 4
	const lookahead = 2 * Microsecond
	pk := NewParKernel(3, shards, lookahead)
	defer pk.Close()
	pk.SetWorkers(workers)

	logs := make([][]string, shards)
	for s := 0; s < shards; s++ {
		s := s
		k := pk.Shard(s)
		// Local workload: sleeping processes with RNG draws.
		for i := 0; i < 3; i++ {
			i := i
			k.Spawn(fmt.Sprintf("s%d-p%d", s, i), func(p *Proc) {
				for p.Now() < horizon {
					p.Sleep(time.Duration(1+k.Rand().Intn(5)) * time.Microsecond)
					logs[s] = append(logs[s], fmt.Sprintf("s%d p%d @%v", s, i, p.Now()))
				}
			})
		}
		// Cross-shard traffic: every 4us send a message to the next
		// shard that lands lookahead+1us later and logs there.
		k.Every(Microsecond, 4*time.Microsecond, func() bool {
			dst := (s + 1) % shards
			at := k.Now() + lookahead + Microsecond
			from := fmt.Sprintf("s%d@%v", s, k.Now())
			pk.Send(s, dst, at, func() {
				logs[dst] = append(logs[dst], fmt.Sprintf("recv %s -> s%d @%v", from, dst, pk.Shard(dst).Now()))
			})
			return k.Now() < horizon
		})
	}
	pk.RunUntil(horizon)
	if pk.CrossMessages() == 0 {
		t.Fatal("workload sent no cross-shard messages")
	}
	counts := make([]uint64, shards)
	for s := range counts {
		counts[s] = pk.Shard(s).EventsProcessed()
	}
	return logs, counts
}

// The same seed must produce byte-identical per-shard behaviour at
// every worker count: P only chooses concurrency, never order.
func TestParKernelDeterministicAcrossWorkers(t *testing.T) {
	const horizon = 120 * Microsecond
	refLogs, refCounts := parRun(t, 1, horizon)
	for _, p := range []int{2, 4, 8} {
		logs, counts := parRun(t, p, horizon)
		if !reflect.DeepEqual(refCounts, counts) {
			t.Fatalf("P=%d: per-shard event counts %v, want %v", p, counts, refCounts)
		}
		if !reflect.DeepEqual(refLogs, logs) {
			t.Fatalf("P=%d: shard logs differ from P=1", p)
		}
	}
	// And re-running at the same P is identical too.
	logs, counts := parRun(t, 4, horizon)
	logs2, counts2 := parRun(t, 4, horizon)
	if !reflect.DeepEqual(logs, logs2) || !reflect.DeepEqual(counts, counts2) {
		t.Fatal("two P=4 runs differ")
	}
}

// Kernel.Every must reschedule seamlessly across window barriers: a
// periodic timer whose period is not a multiple of the lookahead window
// ticks at exactly the arithmetic sequence of times, whether it runs
// under the sequential kernel or any ParKernel worker count.
func TestParKernelEveryAcrossWindows(t *testing.T) {
	const lookahead = 2 * Microsecond
	const horizon = 50 * Microsecond
	want := func() []Time {
		var ts []Time
		// 700ns period deliberately misaligned with the 2us window.
		for at := Time(500); at <= horizon; at += 700 {
			ts = append(ts, at)
		}
		return ts
	}()

	run := func(workers int) [][]Time {
		pk := NewParKernel(9, 3, lookahead)
		defer pk.Close()
		pk.SetWorkers(workers)
		got := make([][]Time, pk.NumShards())
		for s := 0; s < pk.NumShards(); s++ {
			s := s
			k := pk.Shard(s)
			k.Every(500, 700*time.Nanosecond, func() bool {
				got[s] = append(got[s], k.Now())
				return true
			})
			// Keep cross traffic flowing so windows are exercised.
			if s > 0 {
				k.Every(Microsecond, 5*time.Microsecond, func() bool {
					pk.Send(s, 0, k.Now()+lookahead, func() {})
					return true
				})
			}
		}
		pk.RunUntil(horizon)
		return got
	}

	for _, p := range []int{1, 3} {
		got := run(p)
		for s, ticks := range got {
			if !reflect.DeepEqual(ticks, want) {
				t.Fatalf("P=%d shard %d: Every ticked at %v, want %v", p, s, ticks[:min(len(ticks), 5)], want[:5])
			}
		}
	}
}

// Events scheduled across shards at the identical timestamp must drain
// in a deterministic order: the destination's own events first (their
// sequence numbers predate the barrier), then mailbox messages in
// (source shard, FIFO) order — and same-instant events chained from a
// cross-shard delivery still interleave with later deliveries in exact
// global (time, seq) order via the nowq fast path.
func TestParKernelCrossShardSameInstantFIFO(t *testing.T) {
	const lookahead = 2 * Microsecond
	at := Time(10 * Microsecond)

	run := func(workers int) []string {
		pk := NewParKernel(1, 3, lookahead)
		defer pk.Close()
		pk.SetWorkers(workers)
		var order []string
		// Shard 2's own event at the contested instant, scheduled up
		// front (lowest seq at time `at`).
		pk.Shard(2).Schedule(at, func() {
			order = append(order, "local")
			// Same-instant chain through the nowq fast path: these get
			// post-barrier sequence numbers, so they must run after the
			// already-queued cross deliveries at this instant.
			pk.Shard(2).Schedule(pk.Shard(2).Now(), func() { order = append(order, "local-chain") })
		})
		// Shards 0 and 1 each send two messages to shard 2, all at the
		// same instant. Send order within a shard is FIFO; shard 0's
		// mailbox drains before shard 1's.
		for _, src := range []int{1, 0} { // deliberately registered out of order
			src := src
			pk.Shard(src).Schedule(at-lookahead, func() {
				for i := 0; i < 2; i++ {
					i := i
					pk.Send(src, 2, at, func() {
						order = append(order, fmt.Sprintf("src%d-msg%d", src, i))
					})
				}
			})
		}
		pk.RunUntil(at + Microsecond)
		return order
	}

	want := []string{"local", "src0-msg0", "src0-msg1", "src1-msg0", "src1-msg1", "local-chain"}
	for _, p := range []int{1, 2, 3} {
		if got := run(p); !reflect.DeepEqual(got, want) {
			t.Fatalf("P=%d: same-instant drain order %v, want %v", p, got, want)
		}
	}
}

// Cross-shard sends below the lookahead floor are conservative-protocol
// violations and must panic rather than silently corrupt causality.
func TestParKernelLookaheadViolationPanics(t *testing.T) {
	pk := NewParKernel(1, 2, 2*Microsecond)
	defer pk.Close()
	pk.Shard(0).Schedule(5*Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("Send below lookahead did not panic")
			}
		}()
		pk.Send(0, 1, 5*Microsecond+Microsecond, func() {}) // 1us < 2us lookahead
	})
	pk.Run()
}

// RunUntil leaves every shard clock at exactly the horizon, so
// processes spawned between phases start from a common instant.
func TestParKernelRunUntilAlignsClocks(t *testing.T) {
	pk := NewParKernel(1, 3, 2*Microsecond)
	defer pk.Close()
	pk.Shard(0).Schedule(3*Microsecond, func() {})
	// Shards 1 and 2 have no events at all.
	end := pk.RunUntil(9 * Microsecond)
	if end != 9*Microsecond {
		t.Fatalf("RunUntil returned %v, want 9us", end)
	}
	for s := 0; s < 3; s++ {
		if now := pk.Shard(s).Now(); now != 9*Microsecond {
			t.Fatalf("shard %d clock %v after RunUntil, want 9us", s, now)
		}
	}
}
