package sim

import "time"

// Mutex is a simulated mutual-exclusion lock with FIFO handoff.
type Mutex struct {
	held    bool
	waiters []waiter
}

// Lock acquires the mutex, blocking the calling process until available.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	w := p.prepark()
	m.waiters = append(m.waiters, w)
	p.park()
	// Ownership was handed to us by Unlock.
}

// TryLock acquires the mutex if it is free.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: unlock of unlocked mutex")
	}
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if w.wake() {
			// Lock stays held; ownership transfers to the woken process.
			return
		}
	}
	m.held = false
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.held }

// WaitGroup waits for a collection of simulated activities to finish.
type WaitGroup struct {
	count   int
	waiters []waiter
}

// Add adds delta to the counter. Panics if the counter goes negative.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		wg.release()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count returns the current counter value.
func (wg *WaitGroup) Count() int { return wg.count }

// Wait blocks the calling process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	w := p.prepark()
	wg.waiters = append(wg.waiters, w)
	p.park()
}

func (wg *WaitGroup) release() {
	for _, w := range wg.waiters {
		w.wake()
	}
	wg.waiters = nil
}

// Semaphore is a counting semaphore with FIFO waiters.
type Semaphore struct {
	avail   int64
	waiters []semWaiter
}

type semWaiter struct {
	w waiter
	n int64
}

// NewSemaphore creates a semaphore with n initially available units.
func NewSemaphore(n int64) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore count")
	}
	return &Semaphore{avail: n}
}

// Available returns the number of free units.
func (s *Semaphore) Available() int64 { return s.avail }

// TryAcquire acquires n units if immediately available.
func (s *Semaphore) TryAcquire(n int64) bool {
	if n <= s.avail && len(s.waiters) == 0 {
		s.avail -= n
		return true
	}
	return false
}

// Acquire blocks until n units are available and takes them.
func (s *Semaphore) Acquire(p *Proc, n int64) {
	if s.TryAcquire(n) {
		return
	}
	sw := semWaiter{w: p.prepark(), n: n}
	s.waiters = append(s.waiters, sw)
	p.park()
}

// Release returns n units and wakes eligible waiters in FIFO order.
func (s *Semaphore) Release(n int64) {
	s.avail += n
	for len(s.waiters) > 0 {
		sw := s.waiters[0]
		if sw.w.woken() {
			s.waiters = s.waiters[1:]
			continue
		}
		if sw.n > s.avail {
			return // FIFO: do not starve the head waiter
		}
		s.avail -= sw.n
		s.waiters = s.waiters[1:]
		sw.w.wake()
	}
}

// Cond is a simulated condition variable. Unlike sync.Cond it is not
// tied to a mutex: since the kernel runs one process at a time, checking
// the predicate and calling Wait cannot race.
//
// The first waiter is stored inline (w0) so the overwhelmingly common
// single-waiter case — e.g. one process waiting on a Task's completion
// — allocates nothing; additional waiters spill to the slice.
type Cond struct {
	w0      waiter
	has0    bool
	waiters []waiter
}

// add registers a waiter, preserving FIFO order: the inline slot is
// only used when no other waiter is registered.
func (c *Cond) add(w waiter) {
	if !c.has0 && len(c.waiters) == 0 {
		c.w0, c.has0 = w, true
		return
	}
	c.waiters = append(c.waiters, w)
}

// Wait parks the calling process until Signal or Broadcast.
func (c *Cond) Wait(p *Proc) {
	w := p.prepark()
	c.add(w)
	p.park()
}

// WaitTimeout parks until signaled or until d elapses; it reports
// whether the wait timed out.
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) (timedOut bool) {
	if d <= 0 {
		return true
	}
	w := p.prepark()
	c.add(w)
	fired := false
	p.k.After(d, func() {
		if w.wake() {
			fired = true
		}
	})
	p.park()
	return fired
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if c.has0 {
		w := c.w0
		c.has0 = false
		c.w0 = waiter{}
		if w.wake() {
			return
		}
	}
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.wake() {
			return
		}
	}
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	if c.has0 {
		c.has0 = false
		w := c.w0
		c.w0 = waiter{}
		w.wake()
	}
	for _, w := range c.waiters {
		w.wake()
	}
	c.waiters = c.waiters[:0]
}

// Waiters returns the number of registered (possibly already-woken)
// waiters; mainly useful in tests.
func (c *Cond) Waiters() int {
	n := len(c.waiters)
	if c.has0 {
		n++
	}
	return n
}

// Future is a one-shot value that simulated processes can wait on.
type Future[T any] struct {
	set     bool
	val     T
	err     error
	waiters []waiter
}

// NewFuture creates an unset future.
func NewFuture[T any]() *Future[T] { return &Future[T]{} }

// Set resolves the future and wakes all waiters. Setting twice panics.
func (f *Future[T]) Set(v T, err error) {
	if f.set {
		panic("sim: future set twice")
	}
	f.set = true
	f.val, f.err = v, err
	for _, w := range f.waiters {
		w.wake()
	}
	f.waiters = nil
}

// Ready reports whether the future has been resolved.
func (f *Future[T]) Ready() bool { return f.set }

// Get blocks until the future resolves and returns its value.
func (f *Future[T]) Get(p *Proc) (T, error) {
	if !f.set {
		w := p.prepark()
		f.waiters = append(f.waiters, w)
		p.park()
	}
	return f.val, f.err
}
