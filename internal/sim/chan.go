package sim

import "time"

// Chan is a simulated channel carrying values of type T between
// simulated processes. Semantics mirror Go channels: a zero-capacity
// channel rendezvouses sender and receiver; a buffered channel blocks
// senders only when full and receivers only when empty. Waiters are
// served in FIFO order, which keeps simulations deterministic.
type Chan[T any] struct {
	k      *Kernel
	buf    []T
	cap    int
	closed bool
	recvQ  []*chanRecv[T]
	sendQ  []*chanSend[T]
}

type chanRecv[T any] struct {
	w   waiter
	val T
	ok  bool
	rcv bool // value delivered directly to this receiver
}

type chanSend[T any] struct {
	w   waiter
	val T
	ok  bool // send completed (vs channel closed under a parked sender)
}

// NewChan creates a simulated channel with the given buffer capacity.
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan[T]{k: k, cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Cap returns the channel's buffer capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Closed reports whether the channel has been closed.
func (c *Chan[T]) Closed() bool { return c.closed }

// popRecv removes and returns the first receiver still eligible to be
// woken, or nil.
func (c *Chan[T]) popRecv() *chanRecv[T] {
	for len(c.recvQ) > 0 {
		r := c.recvQ[0]
		c.recvQ = c.recvQ[1:]
		if !r.w.woken() {
			return r
		}
	}
	return nil
}

func (c *Chan[T]) popSend() *chanSend[T] {
	for len(c.sendQ) > 0 {
		s := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		if !s.w.woken() {
			return s
		}
	}
	return nil
}

// TrySend attempts a non-blocking send. It reports whether the value was
// delivered. Sending on a closed channel panics, as with Go channels.
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		panic("sim: send on closed channel")
	}
	if r := c.popRecv(); r != nil {
		r.val, r.ok, r.rcv = v, true, true
		r.w.wake()
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Send delivers v, blocking the calling process until a receiver or
// buffer slot is available.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.TrySend(v) {
		return
	}
	s := &chanSend[T]{w: p.prepark(), val: v}
	c.sendQ = append(c.sendQ, s)
	p.park()
	if !s.ok {
		panic("sim: send on closed channel")
	}
}

// TryRecv attempts a non-blocking receive. ok is false when the channel
// is empty (and not closed-drained); closed reports a closed, drained
// channel.
func (c *Chan[T]) TryRecv() (v T, ok bool, chClosed bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		// A parked sender can now move its value into the freed slot.
		if s := c.popSend(); s != nil {
			c.buf = append(c.buf, s.val)
			s.ok = true
			s.w.wake()
		}
		return v, true, false
	}
	if s := c.popSend(); s != nil {
		// Unbuffered rendezvous (or buffered with zero cap edge).
		v = s.val
		s.ok = true
		s.w.wake()
		return v, true, false
	}
	if c.closed {
		return v, false, true
	}
	return v, false, false
}

// Recv blocks until a value is available or the channel is closed and
// drained. ok is false only on a closed, drained channel.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	if v, ok, chClosed := c.TryRecv(); ok || chClosed {
		return v, ok
	}
	r := &chanRecv[T]{w: p.prepark()}
	c.recvQ = append(c.recvQ, r)
	p.park()
	if r.rcv {
		return r.val, r.ok
	}
	// Woken by close.
	return r.val, false
}

// RecvTimeout is Recv with a virtual-time deadline. timedOut is true when
// the deadline elapsed before a value arrived.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (v T, ok bool, timedOut bool) {
	if v, ok, chClosed := c.TryRecv(); ok || chClosed {
		return v, ok, false
	}
	if d <= 0 {
		return v, false, true
	}
	r := &chanRecv[T]{w: p.prepark()}
	c.recvQ = append(c.recvQ, r)
	timeout := false
	p.k.After(d, func() {
		if r.w.wake() {
			timeout = true
		}
	})
	p.park()
	if timeout {
		return v, false, true
	}
	if r.rcv {
		return r.val, r.ok, false
	}
	return r.val, false, false
}

// Close closes the channel, waking all parked receivers with ok=false
// and panicking any parked senders (mirroring Go semantics). Closing an
// already-closed channel panics.
func (c *Chan[T]) Close() {
	if c.closed {
		panic("sim: close of closed channel")
	}
	c.closed = true
	for _, r := range c.recvQ {
		if !r.w.woken() {
			r.w.wake()
		}
	}
	c.recvQ = nil
	for _, s := range c.sendQ {
		if !s.w.woken() {
			s.ok = false
			s.w.wake()
		}
	}
	c.sendQ = nil
}
