package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestChanUnbufferedRendezvous(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k, 0)
	var sendDone, recvDone Time
	k.Spawn("sender", func(p *Proc) {
		ch.Send(p, 7)
		sendDone = p.Now()
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		v, ok := ch.Recv(p)
		if !ok || v != 7 {
			t.Errorf("Recv = %d,%v, want 7,true", v, ok)
		}
		recvDone = p.Now()
	})
	k.Run()
	if sendDone != 5*Millisecond || recvDone != 5*Millisecond {
		t.Errorf("send at %v recv at %v, want both 5ms", sendDone, recvDone)
	}
}

func TestChanBufferedNonBlocking(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k, 2)
	var t1 Time = -1
	k.Spawn("sender", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		t1 = p.Now()  // both should complete without blocking
		ch.Send(p, 3) // blocks until a recv
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if v, _ := ch.Recv(p); v != 1 {
			t.Errorf("first recv = %d, want 1", v)
		}
	})
	k.Run()
	if t1 != 0 {
		t.Errorf("buffered sends finished at %v, want 0", t1)
	}
	if ch.Len() != 2 { // 2 then 3 moved in after recv of 1
		t.Errorf("Len() = %d, want 2", ch.Len())
	}
}

func TestChanFIFOAcrossSenders(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k, 0)
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("s", func(p *Proc) { ch.Send(p, i) })
	}
	var got []int
	k.Spawn("r", func(p *Proc) {
		p.Sleep(time.Millisecond)
		for j := 0; j < 5; j++ {
			v, _ := ch.Recv(p)
			got = append(got, v)
		}
	})
	k.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("recv order %v, want ascending (FIFO senders)", got)
		}
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k, 0)
	closedSeen := 0
	for i := 0; i < 3; i++ {
		k.Spawn("r", func(p *Proc) {
			if _, ok := ch.Recv(p); !ok {
				closedSeen++
			}
		})
	}
	k.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Close()
	})
	k.Run()
	if closedSeen != 3 {
		t.Errorf("closedSeen = %d, want 3", closedSeen)
	}
}

func TestChanCloseDrainsBuffer(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k, 3)
	k.Spawn("p", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Close()
		if v, ok := ch.Recv(p); !ok || v != 1 {
			t.Errorf("recv after close = %d,%v, want 1,true", v, ok)
		}
		if v, ok := ch.Recv(p); !ok || v != 2 {
			t.Errorf("recv after close = %d,%v, want 2,true", v, ok)
		}
		if _, ok := ch.Recv(p); ok {
			t.Error("recv on drained closed channel reported ok")
		}
	})
	k.Run()
}

func TestChanSendOnClosedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := NewKernel(1)
	ch := NewChan[int](k, 1)
	ch.Close()
	k.Spawn("p", func(p *Proc) { ch.Send(p, 1) })
	k.Run()
}

func TestChanTrySendTryRecv(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[string](k, 1)
	if !ch.TrySend("a") {
		t.Fatal("TrySend into empty buffer failed")
	}
	if ch.TrySend("b") {
		t.Fatal("TrySend into full buffer succeeded")
	}
	v, ok, closed := ch.TryRecv()
	if !ok || closed || v != "a" {
		t.Fatalf("TryRecv = %q,%v,%v", v, ok, closed)
	}
	_, ok, closed = ch.TryRecv()
	if ok || closed {
		t.Fatalf("TryRecv on empty = ok=%v closed=%v", ok, closed)
	}
}

func TestChanRecvTimeout(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k, 0)
	var timedOutAt Time
	k.Spawn("r", func(p *Proc) {
		_, ok, timedOut := ch.RecvTimeout(p, 2*time.Millisecond)
		if ok || !timedOut {
			t.Errorf("RecvTimeout = ok=%v timedOut=%v, want timeout", ok, timedOut)
		}
		timedOutAt = p.Now()
		// A later send must not be stolen by the dead waiter.
		v, ok, timedOut := ch.RecvTimeout(p, 10*time.Millisecond)
		if !ok || timedOut || v != 9 {
			t.Errorf("second RecvTimeout = %d,%v,%v, want 9,true,false", v, ok, timedOut)
		}
	})
	k.Spawn("s", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		ch.Send(p, 9)
	})
	k.Run()
	if timedOutAt != 2*Millisecond {
		t.Errorf("timed out at %v, want 2ms", timedOutAt)
	}
}

func TestChanRecvTimeoutValueArrivesFirst(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k, 0)
	k.Spawn("r", func(p *Proc) {
		v, ok, timedOut := ch.RecvTimeout(p, 10*time.Millisecond)
		if !ok || timedOut || v != 4 {
			t.Errorf("RecvTimeout = %d,%v,%v, want 4,true,false", v, ok, timedOut)
		}
		if p.Now() != Millisecond {
			t.Errorf("received at %v, want 1ms", p.Now())
		}
	})
	k.Spawn("s", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Send(p, 4)
	})
	k.Run()
}

// TestChanPreservesSequenceProperty checks, for arbitrary payload
// sequences, that a channel delivers exactly the sent values in order
// through a producer/consumer pair.
func TestChanPreservesSequenceProperty(t *testing.T) {
	f := func(vals []int32, capRaw uint8) bool {
		capacity := int(capRaw % 8)
		k := NewKernel(7)
		ch := NewChan[int32](k, capacity)
		k.Spawn("producer", func(p *Proc) {
			for _, v := range vals {
				ch.Send(p, v)
			}
			ch.Close()
		})
		var got []int32
		k.Spawn("consumer", func(p *Proc) {
			for {
				v, ok := ch.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		k.Run()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
