package sharded

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Queue is a sharded FIFO queue connecting pipeline stages (§4): items
// buffer in a chain of segment memory proclets, so bursts of producer
// output absorb into memory that can split across machines and migrate
// under pressure. Producers append to the tail segment; when it
// outgrows the size cap the queue seals it and opens a fresh segment
// (the queue's split function). Fully-consumed segments retire (the
// merge/cleanup path).
type Queue[T any] struct {
	sys  *core.System
	name string
	opts Options

	segs    []*qseg
	headSeq uint64 // next sequence number to pop
	tailSeq uint64 // next sequence number to push

	notEmpty  sim.Cond // signaled on push
	committed sim.Cond // signaled when an in-flight push lands

	nextSeg int
	closed  bool

	// Seals counts segment roll-overs (queue splits); Retires counts
	// drained segments destroyed.
	Seals   int64
	Retires int64
	// MaxDepth tracks the high-water item count.
	MaxDepth uint64
}

// qseg is one segment: sequence numbers [lo, hi) (hi set when sealed).
type qseg struct {
	mp     *core.MemoryProclet
	lo     uint64
	hi     uint64 // exclusive; 0 while the segment is the open tail
	pushed uint64 // completed puts
	taken  uint64 // completed takes
	sealed bool
}

// NewQueue creates a queue with a single open segment.
func NewQueue[T any](sys *core.System, name string, opts Options) (*Queue[T], error) {
	opts = opts.withDefaults(sys)
	q := &Queue[T]{sys: sys, name: name, opts: opts}
	seg, err := q.newSeg(0)
	if err != nil {
		return nil, err
	}
	q.segs = []*qseg{seg}
	return q, nil
}

func (q *Queue[T]) newSeg(lo uint64) (*qseg, error) {
	q.nextSeg++
	mp, err := q.sys.NewMemoryProclet(fmt.Sprintf("%s.seg-%d", q.name, q.nextSeg), q.opts.MaxShardBytes/2)
	if err != nil {
		return nil, err
	}
	if mp, err = replicate(q.sys, mp, q.opts); err != nil {
		return nil, err
	}
	return &qseg{mp: mp, lo: lo}, nil
}

// Name returns the queue's name.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of items logically in the queue (reserved
// pushes minus reserved pops).
func (q *Queue[T]) Len() uint64 { return q.tailSeq - q.headSeq }

// NumSegments returns the live segment count.
func (q *Queue[T]) NumSegments() int { return len(q.segs) }

// Segments returns the backing memory proclets, oldest first.
func (q *Queue[T]) Segments() []*core.MemoryProclet {
	out := make([]*core.MemoryProclet, len(q.segs))
	for i, s := range q.segs {
		out[i] = s.mp
	}
	return out
}

// segFor locates the segment covering sequence number seq.
func (q *Queue[T]) segFor(seq uint64) *qseg {
	for _, s := range q.segs {
		if seq >= s.lo && (!s.sealed || seq < s.hi) {
			return s
		}
	}
	return nil
}

// Push appends an item, blocking the producer for the transfer to the
// tail segment's machine.
func (q *Queue[T]) Push(p *sim.Proc, from cluster.MachineID, val T, bytes int64) error {
	if q.closed {
		return ErrClosed
	}
	seq := q.tailSeq
	q.tailSeq++
	if d := q.Len(); d > q.MaxDepth {
		q.MaxDepth = d
	}
	seg := q.segs[len(q.segs)-1]
	// Seal the tail and open a new segment when it is full — the
	// queue's split path. Sealing happens before the put so seq still
	// belongs to the old segment only if it was reserved before.
	if seg.mp.HeapBytes() > q.opts.MaxShardBytes {
		seg.sealed = true
		seg.hi = seq
		nseg, err := q.newSeg(seq)
		if err != nil {
			// No capacity for a new segment; keep stuffing the tail.
			seg.sealed = false
			seg.hi = 0
		} else {
			q.segs = append(q.segs, nseg)
			seg = nseg
			q.Seals++
			q.sys.Trace.Emitf(q.sys.K.Now(), trace.KindSplit, q.name,
				-1, int(nseg.mp.Location()), "sealed at seq %d, %d segments", seq, len(q.segs))
		}
	}
	q.notEmpty.Signal()
	err := seg.mp.Put(p, from, seq+1, val, bytes)
	if errors.Is(err, cluster.ErrNoMemory) {
		if q.sys.Sched.FreeUpMemory(p, seg.mp.Location(), bytes*4) {
			err = seg.mp.Put(p, from, seq+1, val, bytes)
		}
	}
	if err != nil {
		return err
	}
	seg.pushed++
	q.committed.Broadcast()
	return nil
}

// TryPop removes and returns the oldest item. ok is false when the
// queue is logically empty. If the item's push is still in flight the
// pop waits for it to land (bounded by the producer's transfer).
func (q *Queue[T]) TryPop(p *sim.Proc, from cluster.MachineID) (T, bool, error) {
	var zero T
	if q.closed {
		return zero, false, ErrClosed
	}
	if q.headSeq == q.tailSeq {
		return zero, false, nil
	}
	seq := q.headSeq
	q.headSeq++
	for {
		seg := q.segFor(seq)
		if seg == nil {
			return zero, false, fmt.Errorf("sharded: queue %s lost segment for seq %d", q.name, seq)
		}
		val, err := seg.mp.Take(p, from, seq+1)
		if errors.Is(err, core.ErrNoObject) {
			// Producer reserved this seq but its put is still on the
			// wire; wait for a commit and retry.
			q.committed.Wait(p)
			continue
		}
		if err != nil {
			return zero, false, err
		}
		seg.taken++
		q.retireDrained()
		return val.(T), true, nil
	}
}

// Pop blocks until an item is available.
func (q *Queue[T]) Pop(p *sim.Proc, from cluster.MachineID) (T, error) {
	for {
		val, ok, err := q.TryPop(p, from)
		if err != nil || ok {
			return val, err
		}
		q.notEmpty.Wait(p)
	}
}

// retireDrained destroys fully consumed sealed segments.
func (q *Queue[T]) retireDrained() {
	for len(q.segs) > 1 {
		s := q.segs[0]
		n := s.hi - s.lo
		if !s.sealed || s.pushed < n || s.taken < n {
			return
		}
		s.mp.Destroy()
		q.segs = q.segs[1:]
		q.Retires++
		q.sys.Trace.Emitf(q.sys.K.Now(), trace.KindMerge, q.name, -1, -1,
			"retired segment [%d,%d), %d segments", s.lo, s.hi, len(q.segs))
	}
}

// Close destroys all segments. Items still queued are lost.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, s := range q.segs {
		s.mp.Destroy()
	}
	q.notEmpty.Broadcast()
	q.committed.Broadcast()
}
