package sharded

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestQueueFIFO(t *testing.T) {
	s := testSys(t)
	q, err := NewQueue[int](s, "q", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := q.Push(p, 0, i, 100); err != nil {
				t.Fatalf("Push: %v", err)
			}
		}
		if q.Len() != 20 {
			t.Errorf("Len = %d, want 20", q.Len())
		}
		for i := 0; i < 20; i++ {
			val, ok, err := q.TryPop(p, 1)
			if err != nil || !ok || val != i {
				t.Fatalf("TryPop #%d = %d,%v,%v", i, val, ok, err)
			}
		}
		if _, ok, _ := q.TryPop(p, 1); ok {
			t.Error("TryPop on empty queue returned ok")
		}
	})
	s.K.Run()
}

func TestQueueBlockingPop(t *testing.T) {
	s := testSys(t)
	q, _ := NewQueue[string](s, "q", smallOpts())
	var got string
	var at sim.Time
	s.K.Spawn("consumer", func(p *sim.Proc) {
		v, err := q.Pop(p, 1)
		if err != nil {
			t.Errorf("Pop: %v", err)
		}
		got, at = v, p.Now()
	})
	s.K.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		q.Push(p, 0, "item", 100)
	})
	s.K.Run()
	if got != "item" {
		t.Errorf("got %q", got)
	}
	if at < 5*sim.Millisecond {
		t.Errorf("consumer woke at %v, before the push", at)
	}
}

func TestQueueSealsAndRetiresSegments(t *testing.T) {
	s := testSys(t)
	q, _ := NewQueue[[]byte](s, "q", Options{MaxShardBytes: 8 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if err := q.Push(p, 0, nil, 1<<10); err != nil {
				t.Fatalf("Push: %v", err)
			}
		}
		if q.Seals == 0 || q.NumSegments() < 2 {
			t.Errorf("Seals=%d segments=%d, want rollover", q.Seals, q.NumSegments())
		}
		for i := 0; i < 50; i++ {
			if _, ok, err := q.TryPop(p, 1); !ok || err != nil {
				t.Fatalf("TryPop #%d: ok=%v err=%v", i, ok, err)
			}
		}
		if q.Retires == 0 {
			t.Error("no segments retired after draining")
		}
		if q.NumSegments() != 1 {
			t.Errorf("NumSegments = %d after drain, want 1", q.NumSegments())
		}
	})
	s.K.Run()
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	s := testSys(t)
	q, _ := NewQueue[int](s, "q", Options{MaxShardBytes: 16 << 10})
	const perProducer = 25
	const producers, consumers = 3, 2
	popped := make(map[int]int)
	var wg sim.WaitGroup
	wg.Add(producers)
	for pi := 0; pi < producers; pi++ {
		pi := pi
		s.K.Spawn("producer", func(p *sim.Proc) {
			for i := 0; i < perProducer; i++ {
				if err := q.Push(p, 0, pi*1000+i, 512); err != nil {
					t.Errorf("Push: %v", err)
				}
				p.Sleep(100 * time.Microsecond)
			}
			wg.Done()
		})
	}
	total := producers * perProducer
	remaining := total
	for ci := 0; ci < consumers; ci++ {
		s.K.Spawn("consumer", func(p *sim.Proc) {
			for remaining > 0 {
				v, ok, err := q.TryPop(p, 1)
				if err != nil {
					t.Errorf("TryPop: %v", err)
					return
				}
				if !ok {
					p.Sleep(200 * time.Microsecond)
					continue
				}
				remaining--
				popped[v]++
			}
		})
	}
	s.K.Run()
	if len(popped) != total {
		t.Fatalf("popped %d distinct items, want %d", len(popped), total)
	}
	for v, n := range popped {
		if n != 1 {
			t.Errorf("item %d popped %d times", v, n)
		}
	}
}

func TestQueuePopWaitsForInflightPush(t *testing.T) {
	// A consumer that claims a sequence number whose push is still on
	// the wire must wait for the data, not error.
	s := testSys(t)
	q, _ := NewQueue[int](s, "q", smallOpts())
	var got int
	s.K.Spawn("producer", func(p *sim.Proc) {
		// Large payload: the put RPC takes ~ms on the wire.
		if err := q.Push(p, 0, 42, 10<<20); err != nil {
			t.Errorf("Push: %v", err)
		}
	})
	s.K.Spawn("consumer", func(p *sim.Proc) {
		p.Yield() // let the producer reserve its seq first
		v, err := q.Pop(p, 1)
		if err != nil {
			t.Errorf("Pop: %v", err)
		}
		got = v
	})
	s.K.Run()
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestQueueMaxDepthTracking(t *testing.T) {
	s := testSys(t)
	q, _ := NewQueue[int](s, "q", smallOpts())
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			q.Push(p, 0, i, 64)
		}
		q.TryPop(p, 0)
		q.Push(p, 0, 11, 64)
	})
	s.K.Run()
	if q.MaxDepth != 10 {
		t.Errorf("MaxDepth = %d, want 10", q.MaxDepth)
	}
}

func TestQueueCloseReleasesMemory(t *testing.T) {
	s := testSys(t)
	q, _ := NewQueue[int](s, "q", smallOpts())
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			q.Push(p, 0, i, 1<<10)
		}
		q.Close()
	})
	s.K.Run()
	total := s.Cluster.Machine(0).MemUsed() + s.Cluster.Machine(1).MemUsed()
	if total != 0 {
		t.Errorf("memory leaked after Close: %d", total)
	}
}
