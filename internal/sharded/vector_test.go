package sharded

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// testSys builds a system with two 1-GiB machines and a small shard cap
// so structural adaptation is easy to trigger.
func testSys(t *testing.T, machines ...cluster.MachineConfig) *core.System {
	t.Helper()
	if len(machines) == 0 {
		machines = []cluster.MachineConfig{
			{Cores: 8, MemBytes: 1 << 30},
			{Cores: 8, MemBytes: 1 << 30},
		}
	}
	return core.NewSystem(core.DefaultConfig(), machines)
}

func smallOpts() Options {
	return Options{MaxShardBytes: 64 << 10} // 64 KiB shards
}

func TestVectorPushGet(t *testing.T) {
	s := testSys(t)
	v, err := NewVector[string](s, "vec", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if err := v.PushBack(p, 0, fmt.Sprintf("val-%d", i), 100); err != nil {
				t.Fatalf("PushBack: %v", err)
			}
		}
		if v.Len() != 50 {
			t.Errorf("Len = %d, want 50", v.Len())
		}
		for _, i := range []uint64{0, 17, 49} {
			got, err := v.Get(p, 0, i)
			if err != nil || got != fmt.Sprintf("val-%d", i) {
				t.Errorf("Get(%d) = %q, %v", i, got, err)
			}
		}
		if _, err := v.Get(p, 0, 50); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("out-of-range err = %v", err)
		}
	})
	s.K.Run()
}

func TestVectorSet(t *testing.T) {
	s := testSys(t)
	v, _ := NewVector[int](s, "vec", smallOpts())
	s.K.Spawn("driver", func(p *sim.Proc) {
		v.PushBack(p, 0, 1, 64)
		if err := v.Set(p, 0, 0, 99, 64); err != nil {
			t.Fatalf("Set: %v", err)
		}
		got, _ := v.Get(p, 0, 0)
		if got != 99 {
			t.Errorf("Get = %d, want 99", got)
		}
	})
	s.K.Run()
}

func TestVectorSplitsWhenOversized(t *testing.T) {
	s := testSys(t)
	v, _ := NewVector[[]byte](s, "vec", Options{MaxShardBytes: 10 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		// 40 x 1 KiB: must split repeatedly at the 10 KiB cap.
		for i := 0; i < 40; i++ {
			if err := v.PushBack(p, 0, make([]byte, 0), 1<<10); err != nil {
				t.Fatalf("PushBack: %v", err)
			}
		}
		if v.NumShards() < 3 {
			t.Errorf("NumShards = %d, want >= 3 after splits", v.NumShards())
		}
		if v.Splits == 0 {
			t.Error("no splits recorded")
		}
		// Every shard within budget (allowing one in-flight overshoot).
		for i, mp := range v.Shards() {
			if mp.HeapBytes() > 2*v.opts.MaxShardBytes {
				t.Errorf("shard %d = %d bytes, way over cap", i, mp.HeapBytes())
			}
		}
		// All elements still reachable after splits.
		for i := uint64(0); i < 40; i++ {
			if _, err := v.Get(p, 0, i); err != nil {
				t.Errorf("Get(%d) after splits: %v", i, err)
			}
		}
	})
	s.K.Run()
}

func TestVectorShardsSpreadAcrossMachines(t *testing.T) {
	// With a small per-machine RAM and placement by most-free-memory,
	// shards of one vector must land on both machines — the fig2
	// mechanism for combining memory of imbalanced machines.
	s := testSys(t,
		cluster.MachineConfig{Cores: 4, MemBytes: 200 << 10},
		cluster.MachineConfig{Cores: 4, MemBytes: 200 << 10},
	)
	v, _ := NewVector[int](s, "vec", Options{MaxShardBytes: 32 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if err := v.PushBack(p, 0, i, 1<<10); err != nil {
				t.Fatalf("PushBack %d: %v", i, err)
			}
		}
	})
	s.K.Run()
	seen := map[cluster.MachineID]bool{}
	for _, mp := range v.Shards() {
		seen[mp.Location()] = true
	}
	if len(seen) < 2 {
		t.Errorf("shards on %d machine(s), want both", len(seen))
	}
}

func TestVectorMergeAfterShrink(t *testing.T) {
	s := testSys(t)
	v, _ := NewVector[[]byte](s, "vec", Options{MaxShardBytes: 10 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			v.PushBack(p, 0, make([]byte, 0), 1<<10)
		}
		before := v.NumShards()
		if before < 3 {
			t.Fatalf("need splits first, got %d shards", before)
		}
		// Shrink all elements to near-zero size, then adapt.
		for i := uint64(0); i < 40; i++ {
			if err := v.Set(p, 0, i, nil, 1); err != nil {
				t.Fatalf("Set: %v", err)
			}
		}
		v.Adapt(p)
		if v.NumShards() >= before {
			t.Errorf("shards %d -> %d, want merges", before, v.NumShards())
		}
		if v.Merges == 0 {
			t.Error("no merges recorded")
		}
		for i := uint64(0); i < 40; i++ {
			if _, err := v.Get(p, 0, i); err != nil {
				t.Errorf("Get(%d) after merge: %v", i, err)
			}
		}
	})
	s.K.Run()
}

func TestVectorIterSequential(t *testing.T) {
	s := testSys(t)
	v, _ := NewVector[int](s, "vec", Options{MaxShardBytes: 8 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			v.PushBack(p, 0, i, 256)
		}
		it := v.Iter(16)
		var got []int
		for {
			val, ok, err := it.Next(p, 1) // consume from the other machine
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !ok {
				break
			}
			got = append(got, val)
		}
		if len(got) != 100 {
			t.Fatalf("iterated %d elements, want 100", len(got))
		}
		for i, val := range got {
			if val != i {
				t.Fatalf("element %d = %d, out of order", i, val)
			}
		}
		if it.Fetches == 0 || it.Fetches > 20 {
			t.Errorf("Fetches = %d, want batched (~7-13)", it.Fetches)
		}
	})
	s.K.Run()
}

func TestVectorIterNoPrefetchFallback(t *testing.T) {
	s := testSys(t)
	v, _ := NewVector[int](s, "vec", smallOpts())
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			v.PushBack(p, 0, i, 128)
		}
		it := v.Iter(0) // synchronous
		count := 0
		for {
			val, ok, err := it.Next(p, 0)
			if err != nil || (!ok && count != 10) && err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !ok {
				break
			}
			if val != count {
				t.Fatalf("val = %d, want %d", val, count)
			}
			count++
		}
		if count != 10 {
			t.Errorf("count = %d", count)
		}
	})
	s.K.Run()
}

func TestVectorIterPrefetchOverlapsCompute(t *testing.T) {
	// With prefetching, total time for fetch+compute over remote data
	// should approach max(fetch, compute), not their sum.
	run := func(batch int) sim.Time {
		s := testSys(t)
		v, _ := NewVector[[]byte](s, "vec", Options{MaxShardBytes: 1 << 30})
		var done sim.Time
		s.K.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 64; i++ {
				if err := v.PushBack(p, 1, make([]byte, 0), 1<<20); err != nil {
					t.Fatalf("PushBack: %v", err)
				}
			}
			start := p.Now()
			it := v.Iter(batch)
			m := s.Cluster.Machine(0)
			for {
				_, ok, err := it.Next(p, 0)
				if err != nil {
					t.Fatalf("Next: %v", err)
				}
				if !ok {
					break
				}
				m.Exec(p, 100*time.Microsecond) // per-element compute
			}
			done = sim.Time(p.Now().Sub(start))
		})
		s.K.Run()
		return done
	}
	withPrefetch := run(8)
	without := run(0)
	if withPrefetch >= without {
		t.Errorf("prefetch (%v) not faster than sync (%v)", withPrefetch, without)
	}
}

func TestVectorClose(t *testing.T) {
	s := testSys(t)
	v, _ := NewVector[int](s, "vec", smallOpts())
	s.K.Spawn("driver", func(p *sim.Proc) {
		v.PushBack(p, 0, 1, 100)
		v.Close()
		if err := v.PushBack(p, 0, 2, 100); !errors.Is(err, ErrClosed) {
			t.Errorf("push after close: %v", err)
		}
	})
	s.K.Run()
	total := s.Cluster.Machine(0).MemUsed() + s.Cluster.Machine(1).MemUsed()
	if total != 0 {
		t.Errorf("memory leaked after Close: %d bytes", total)
	}
}

func TestVectorIterExactlyOnceUnderSplits(t *testing.T) {
	// Regression: a split racing a prefetch must never skip or shift
	// elements (this desynchronized index/value pairs in ForEachVec).
	s := testSys(t)
	v, _ := NewVector[int](s, "vec", Options{MaxShardBytes: 4 << 10})
	var got []int
	s.K.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			if err := v.PushBack(p, 0, i, 256); err != nil {
				t.Errorf("PushBack: %v", err)
				return
			}
			p.Sleep(20 * time.Microsecond)
		}
	})
	s.K.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		it := v.Iter(8)
		for len(got) < 300 {
			val, ok, err := it.Next(p, 1)
			if err != nil {
				t.Errorf("Next: %v", err)
				return
			}
			if !ok {
				p.Sleep(100 * time.Microsecond) // writer still appending
				continue
			}
			got = append(got, val)
			p.Sleep(10 * time.Microsecond)
		}
	})
	s.K.Run()
	if len(got) < 300 {
		t.Fatalf("read %d elements, want 300", len(got))
	}
	for i, val := range got {
		if val != i {
			t.Fatalf("element %d = %d (exactly-once/order violated); splits=%d", i, val, v.Splits)
		}
	}
	if v.Splits == 0 {
		t.Error("test did not exercise splits")
	}
}

func TestVectorNoLossWhenAdaptRacesAppends(t *testing.T) {
	// Regression: an adaptation-loop split of the tail shard used to
	// compute its bounds before draining an in-flight append, stranding
	// the new element in the old shard (unroutable).
	s := testSys(t)
	s.Start()
	v, _ := NewVector[int](s, "vec", Options{MaxShardBytes: 8 << 10, AutoAdapt: true})
	const n = 600
	s.K.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := v.PushBack(p, 0, i, 1<<10); err != nil {
				t.Errorf("PushBack(%d): %v", i, err)
				return
			}
		}
		// Every element must be reachable through the final routing.
		for i := uint64(0); i < n; i++ {
			got, err := v.Get(p, 0, i)
			if err != nil {
				t.Errorf("Get(%d): %v", i, err)
				return
			}
			if got != int(i) {
				t.Errorf("Get(%d) = %d", i, got)
			}
		}
		s.K.Stop()
	})
	s.K.Run()
	if v.Splits == 0 {
		t.Error("test did not exercise splits")
	}
}
