package sharded

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// indexObjID is the object holding the routing table inside a
// structure's index proclet.
const indexObjID = 1

// Vector is a sharded, growable sequence. Elements live in memory
// proclets partitioned by contiguous index ranges; an index proclet
// records the partitioning (clients cache it). Appends go to the last
// shard; a shard that outgrows the size cap splits at its midpoint.
type Vector[T any] struct {
	sys  *core.System
	name string
	opts Options

	// prefName caches the prefetch-process name ("<name>.prefetch") so
	// the iterator hot path does not format it per fetch.
	prefName string

	shards []vshard // sorted by lo
	length uint64

	index *core.MemoryProclet // pinned; holds the routing table

	gate      splitGate
	ops       *opTracker
	adaptMu   sim.Mutex
	nextShard int
	closed    bool

	// Splits and Merges count structural adaptations; Spills and
	// Faults count tiering activity (see tiering.go).
	Splits int64
	Merges int64
	Spills int64
	Faults int64
}

// vshard is one index entry: the shard holding elements [lo, next.lo).
// A spilled shard has mp == nil and its contents in the storage tier.
type vshard struct {
	lo uint64
	mp *core.MemoryProclet

	spilled    bool
	spillBytes int64
	lastAccess sim.Time
}

// NewVector creates a sharded vector with one initial shard placed by
// the scheduler.
func NewVector[T any](sys *core.System, name string, opts Options) (*Vector[T], error) {
	opts = opts.withDefaults(sys)
	if opts.Spill != nil && opts.Replicas >= 2 {
		return nil, errors.New("sharded: Replicas and Spill are mutually exclusive")
	}
	v := &Vector[T]{sys: sys, name: name, opts: opts, ops: newOpTracker()}
	idx, err := sys.NewMemoryProclet(name+".index", 4096)
	if err != nil {
		return nil, err
	}
	if idx, err = replicate(sys, idx, opts); err != nil {
		return nil, err
	}
	v.index = idx
	sys.Sched.Pin(idx.ID())
	sh, err := v.newShard()
	if err != nil {
		return nil, err
	}
	v.shards = []vshard{{lo: 0, mp: sh}}
	if opts.AutoAdapt {
		sys.Sched.RegisterAdaptive(v)
	}
	return v, nil
}

func (v *Vector[T]) newShard() (*core.MemoryProclet, error) {
	v.nextShard++
	mp, err := v.sys.NewMemoryProclet(fmt.Sprintf("%s.shard-%d", v.name, v.nextShard), v.opts.MaxShardBytes/2)
	if err != nil {
		return nil, err
	}
	return replicate(v.sys, mp, v.opts)
}

// Name returns the vector's name.
func (v *Vector[T]) Name() string { return v.name }

// Len returns the element count.
func (v *Vector[T]) Len() uint64 { return v.length }

// NumShards returns the current shard count.
func (v *Vector[T]) NumShards() int { return len(v.shards) }

// Shards returns the backing memory proclets in index order; spilled
// shards contribute nil entries.
func (v *Vector[T]) Shards() []*core.MemoryProclet {
	out := make([]*core.MemoryProclet, len(v.shards))
	for i, s := range v.shards {
		out[i] = s.mp
	}
	return out
}

// shardIdx returns the index of the shard covering element i.
func (v *Vector[T]) shardIdx(i uint64) int {
	return sort.Search(len(v.shards), func(s int) bool { return v.shards[s].lo > i }) - 1
}

// hiOf returns the exclusive upper element bound of shard s.
func (v *Vector[T]) hiOf(s int) uint64 {
	if s == len(v.shards)-1 {
		return v.length
	}
	return v.shards[s+1].lo
}

// Get fetches element i from wherever its shard lives.
func (v *Vector[T]) Get(p *sim.Proc, from cluster.MachineID, i uint64) (T, error) {
	var zero T
	if i >= v.length {
		return zero, fmt.Errorf("%w: %d >= %d", ErrOutOfRange, i, v.length)
	}
	for retry := 0; retry < 4; retry++ {
		v.gate.wait(p, i)
		if err := v.ensureResident(p, i); err != nil {
			return zero, err
		}
		s := v.shardIdx(i)
		v.touch(s)
		sh := v.shards[s]
		v.ops.enter(sh.mp.ID())
		val, err := sh.mp.Get(p, from, i+1)
		v.ops.exit(sh.mp.ID())
		if errors.Is(err, core.ErrNoObject) {
			continue // raced a split; re-route
		}
		if err != nil {
			return zero, err
		}
		return val.(T), nil
	}
	return zero, fmt.Errorf("sharded: element %d unroutable after retries", i)
}

// Set overwrites element i.
func (v *Vector[T]) Set(p *sim.Proc, from cluster.MachineID, i uint64, val T, bytes int64) error {
	if i >= v.length {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, i, v.length)
	}
	v.gate.wait(p, i)
	if err := v.ensureResident(p, i); err != nil {
		return err
	}
	s := v.shardIdx(i)
	v.touch(s)
	sh := v.shards[s]
	v.ops.enter(sh.mp.ID())
	defer v.ops.exit(sh.mp.ID())
	return sh.mp.Put(p, from, i+1, val, bytes)
}

// PushBack appends an element, splitting or spilling to a new shard as
// needed. It synchronously frees memory (by evacuating other proclets)
// when the owning machine is full and the cluster has room elsewhere.
func (v *Vector[T]) PushBack(p *sim.Proc, from cluster.MachineID, val T, bytes int64) error {
	if v.closed {
		return ErrClosed
	}
	i := v.length
	v.gate.wait(p, i)
	last := len(v.shards) - 1
	v.touch(last)
	sh := v.shards[last]
	v.ops.enter(sh.mp.ID())
	err := sh.mp.Put(p, from, i+1, val, bytes)
	if errors.Is(err, cluster.ErrNoMemory) {
		// Ask the scheduler to relieve the machine, then retry once.
		if v.sys.Sched.FreeUpMemory(p, sh.mp.Location(), bytes*4) {
			err = sh.mp.Put(p, from, i+1, val, bytes)
		}
	}
	v.ops.exit(sh.mp.ID())
	if errors.Is(err, cluster.ErrNoMemory) && v.opts.Spill != nil {
		// Memory tiering: push the coldest shard down to the storage
		// tier and retry (the dataset exceeds cluster RAM).
		v.adaptMu.Lock(p)
		if _, perr := v.placeWithEviction(p, last, bytes*4); perr == nil {
			v.adaptMu.Unlock()
			v.ops.enter(sh.mp.ID())
			err = sh.mp.Put(p, from, i+1, val, bytes)
			v.ops.exit(sh.mp.ID())
		} else {
			v.adaptMu.Unlock()
		}
	}
	if errors.Is(err, cluster.ErrNoMemory) {
		// The shard's machine is stuck; start a fresh shard elsewhere.
		nsh, nerr := v.newShard()
		if nerr != nil {
			return fmt.Errorf("sharded: push spill failed: %w (after %w)", nerr, err)
		}
		v.shards = append(v.shards, vshard{lo: i, mp: nsh})
		v.publishIndex(p)
		v.ops.enter(nsh.ID())
		err = nsh.Put(p, from, i+1, val, bytes)
		v.ops.exit(nsh.ID())
		if err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	v.length = i + 1
	// Keep the tail shard within the migration budget.
	if sh.mp.HeapBytes() > v.opts.MaxShardBytes {
		v.adaptMu.Lock(p)
		v.splitShard(p, v.shardIdx(i))
		v.adaptMu.Unlock()
	}
	return nil
}

// splitShard splits shard s at its midpoint. Caller holds adaptMu.
// Spilled shards are not split (they have no resident proclet).
func (v *Vector[T]) splitShard(p *sim.Proc, s int) bool {
	if v.shards[s].spilled {
		return false
	}
	src := v.shards[s].mp
	dst, err := v.newShard()
	if err != nil {
		return false // no capacity anywhere; leave the shard oversized
	}
	// Gate the shard's whole range. For the last shard the range is
	// open-ended: appends reserve indices beyond the current length,
	// so the gate must cover them too.
	lo := v.shards[s].lo
	gateHi := ^uint64(0)
	if s+1 < len(v.shards) {
		gateHi = v.shards[s+1].lo
	}
	v.gate.open(lo, gateHi)
	defer v.gate.close()
	// Wait out operations that were already in flight against the
	// source shard when the gate closed, then take stable bounds.
	v.ops.drain(p, src.ID())
	hi := v.hiOf(s)
	if hi-lo < 2 {
		dst.Destroy()
		return false
	}
	mid := lo + (hi-lo)/2
	home := src.Location()
	ids, vals, sizes, err := src.Scan(p, home, mid+1, hi+1)
	if err == nil {
		err = dst.PutBatch(p, home, ids, vals, sizes)
	}
	if err != nil {
		dst.Destroy()
		return false
	}
	// Publish the new routing before deleting from the source so
	// readers always find their element on one side or the other.
	v.shards = append(v.shards, vshard{})
	copy(v.shards[s+2:], v.shards[s+1:])
	v.shards[s+1] = vshard{lo: mid, mp: dst}
	v.publishIndex(p)
	if err := src.DelRange(p, home, mid+1, hi+1); err != nil {
		return false
	}
	v.Splits++
	v.sys.Trace.Emitf(v.sys.K.Now(), trace.KindSplit, v.name,
		int(src.Location()), int(dst.Location()), "shard %d at %d, %d shards", s, mid, len(v.shards))
	return true
}

// mergeShards merges shard s+1 into shard s. Caller holds adaptMu.
func (v *Vector[T]) mergeShards(p *sim.Proc, s int) bool {
	if s+1 >= len(v.shards) {
		return false
	}
	if v.shards[s].spilled || v.shards[s+1].spilled {
		return false
	}
	dst, src := v.shards[s], v.shards[s+1]
	gateHi := ^uint64(0)
	if s+2 < len(v.shards) {
		gateHi = v.shards[s+2].lo
	}
	v.gate.open(dst.lo, gateHi)
	defer v.gate.close()
	v.ops.drain(p, src.mp.ID())
	v.ops.drain(p, dst.mp.ID())
	lo, hi := src.lo, v.hiOf(s+1)
	home := src.mp.Location()
	ids, vals, sizes, err := src.mp.Scan(p, home, lo+1, hi+1)
	if err == nil && len(ids) > 0 {
		err = dst.mp.PutBatch(p, home, ids, vals, sizes)
	}
	if err != nil {
		return false
	}
	v.shards = append(v.shards[:s+1], v.shards[s+2:]...)
	v.publishIndex(p)
	src.mp.Destroy()
	v.Merges++
	v.sys.Trace.Emitf(v.sys.K.Now(), trace.KindMerge, v.name,
		int(home), int(dst.mp.Location()), "%d shards", len(v.shards))
	return true
}

// publishIndex writes the routing table to the index proclet (clients
// read their cached copy; the write keeps the authoritative copy
// current for recovery and for cold clients).
func (v *Vector[T]) publishIndex(p *sim.Proc) {
	table := make([]uint64, len(v.shards))
	for i, s := range v.shards {
		table[i] = s.lo
	}
	// 16 bytes per entry: range start + proclet id.
	v.index.Put(p, v.index.Location(), indexObjID, table, int64(16*len(table)))
}

// Adapt implements core.Adaptive: split oversized shards, merge
// adjacent underfull neighbours.
func (v *Vector[T]) Adapt(p *sim.Proc) {
	if v.closed || !v.adaptMu.TryLock() {
		return
	}
	defer v.adaptMu.Unlock()
	for s := 0; s < len(v.shards); s++ {
		if v.shards[s].spilled {
			continue
		}
		if v.shards[s].mp.HeapBytes() > v.opts.MaxShardBytes {
			v.splitShard(p, s)
		}
	}
	mergeMax := int64(float64(v.opts.MaxShardBytes) * v.opts.MergeFraction)
	for s := 0; s+1 < len(v.shards); s++ {
		if v.shards[s].spilled || v.shards[s+1].spilled {
			continue
		}
		if v.shards[s].mp.HeapBytes()+v.shards[s+1].mp.HeapBytes() < mergeMax {
			if v.mergeShards(p, s) {
				s-- // re-examine the merged shard with its next neighbour
			}
		}
	}
}

// Close destroys all resident shards and the index. Spilled shards'
// storage objects are left for the storage tier's owner to reclaim
// (Flat.Close destroys the proclets holding them).
func (v *Vector[T]) Close() {
	if v.closed {
		return
	}
	v.closed = true
	for _, s := range v.shards {
		if s.mp != nil {
			s.mp.Destroy()
		}
	}
	v.index.Destroy()
}
