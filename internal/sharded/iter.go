package sharded

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/proclet"
	"repro/internal/sim"
)

// VecIter iterates a sharded vector with asynchronous batch prefetch:
// while the consumer processes the current batch, the next batch is
// already crossing the network. This is the mechanism behind the
// paper's "preprocessing images from remote memory proclets is as fast
// as preprocessing local images" (§4).
//
// A batchSize of 0 disables prefetching and fetches one element per
// Next call — the ablation baseline.
//
// Iteration is exactly-once even when shards split or merge mid-scan:
// a batch is only installed when it is aligned with the consumer's
// position and completely covers its planned extent; otherwise the
// fetch is retried through the freshly updated routing.
type VecIter[T any] struct {
	v         *Vector[T]
	pos       uint64 // next element to hand to the consumer
	end       uint64 // exclusive bound (ranged iteration)
	ranged    bool   // when false, end tracks the live vector length
	batchSize int

	buf      []any
	bufPos   int
	inflight *sim.Future[*vecBatch]
	nextFrom uint64 // first element of the batch to prefetch next

	// Fetches counts batch RPCs issued; Refetches counts batches
	// discarded because a split or merge raced the scan.
	Fetches   int64
	Refetches int64
}

type vecBatch struct {
	start uint64
	end   uint64 // planned exclusive extent at fetch time
	vals  []any
	err   error
}

// Iter creates an iterator over the whole vector. Elements appended
// after iteration passes them are not revisited; appends beyond the
// current position are observed.
func (v *Vector[T]) Iter(batchSize int) *VecIter[T] {
	return &VecIter[T]{v: v, batchSize: batchSize}
}

// IterRange creates an iterator over elements [lo, hi) — the unit of
// work the distributed thread pool hands to each chunk task.
func (v *Vector[T]) IterRange(lo, hi uint64, batchSize int) *VecIter[T] {
	return &VecIter[T]{v: v, pos: lo, nextFrom: lo, end: hi, ranged: true, batchSize: batchSize}
}

// limit returns the iterator's current exclusive bound.
func (it *VecIter[T]) limit() uint64 {
	if it.ranged {
		if it.end > it.v.length {
			return it.v.length
		}
		return it.end
	}
	return it.v.length
}

// Remaining returns how many elements are left.
func (it *VecIter[T]) Remaining() uint64 {
	if lim := it.limit(); it.pos < lim {
		return lim - it.pos
	}
	return 0
}

// issuePrefetch starts an asynchronous batch fetch, if one is not
// already in flight and elements remain. The shard is re-resolved
// inside the fetch process (after any in-progress restructure ends),
// so the scan targets current routing.
func (it *VecIter[T]) issuePrefetch(from cluster.MachineID) {
	if it.inflight != nil || it.nextFrom >= it.limit() {
		return
	}
	start := it.nextFrom
	planned := start + uint64(it.batchSize)
	if lim := it.limit(); planned > lim {
		planned = lim
	}
	fut := sim.NewFuture[*vecBatch]()
	it.inflight = fut
	it.nextFrom = planned // provisional; corrected when the batch lands
	it.Fetches++
	if it.v.prefName == "" {
		it.v.prefName = it.v.name + ".prefetch"
	}
	it.v.sys.K.Spawn(it.v.prefName, func(p *sim.Proc) {
		it.v.gate.wait(p, start)
		s := it.v.shardIdx(start)
		end := planned
		if hi := it.v.hiOf(s); end > hi {
			end = hi
		}
		if end <= start {
			fut.Set(&vecBatch{start: start, end: start}, nil)
			return
		}
		if it.v.shards[s].spilled {
			// The shard spilled to the storage tier under us; report a
			// routing miss so the consumer faults it back in.
			fut.Set(&vecBatch{start: start, end: start, err: errSpilledBatch}, nil)
			return
		}
		it.v.touch(s)
		mp := it.v.shards[s].mp
		it.v.ops.enter(mp.ID())
		_, vals, _, err := mp.Scan(p, from, start+1, end+1)
		it.v.ops.exit(mp.ID())
		fut.Set(&vecBatch{start: start, end: end, vals: vals, err: err}, nil)
	})
}

// Next returns the next element. ok is false at the end of the
// iteration range. p is the consuming process; from is the machine it
// currently runs on (data is fetched to that machine).
func (it *VecIter[T]) Next(p *sim.Proc, from cluster.MachineID) (T, bool, error) {
	var zero T
	if it.batchSize <= 0 {
		// Synchronous per-element path (prefetch disabled).
		if it.pos >= it.limit() {
			return zero, false, nil
		}
		val, err := it.v.Get(p, from, it.pos)
		if err != nil {
			return zero, false, err
		}
		it.pos++
		return val, true, nil
	}
	const maxRefetches = 16
	for attempt := 0; attempt <= maxRefetches; attempt++ {
		if it.bufPos < len(it.buf) {
			val := it.buf[it.bufPos]
			it.bufPos++
			it.pos++
			// Keep the pipeline primed.
			it.issuePrefetch(from)
			return val.(T), true, nil
		}
		if it.pos >= it.limit() {
			return zero, false, nil
		}
		if it.inflight == nil {
			// Fault the shard in from the storage tier if necessary
			// before planning a batch against it.
			if err := it.v.ensureResident(p, it.pos); err != nil {
				return zero, false, err
			}
			it.nextFrom = it.pos
			it.issuePrefetch(from)
		}
		b, _ := it.inflight.Get(p)
		it.inflight = nil
		if b.err != nil && !isRoutingErr(b.err) {
			return zero, false, b.err
		}
		complete := b.err == nil && b.start == it.pos && b.end > b.start &&
			uint64(len(b.vals)) == b.end-b.start
		if !complete {
			// A split/merge raced the scan, or the consumer moved.
			// Discard and refetch through the updated routing; never
			// skip positions.
			it.Refetches++
			it.nextFrom = it.pos
			it.buf, it.bufPos = nil, 0
			continue
		}
		it.buf, it.bufPos = b.vals, 0
		it.nextFrom = b.end
		// Immediately overlap the next batch with consumption.
		it.issuePrefetch(from)
	}
	return zero, false, fmt.Errorf("sharded: element %d unfetchable after %d refetches (in %s)",
		it.pos, maxRefetches, it.v.name)
}

// errSpilledBatch marks a batch fetch that raced a shard spill.
var errSpilledBatch = errors.New("sharded: shard spilled during fetch")

// isRoutingErr reports whether an error means "the data moved" (a
// restructure, migration, or spill raced the scan) rather than a hard
// failure.
func isRoutingErr(err error) bool {
	return errors.Is(err, core.ErrNoObject) ||
		errors.Is(err, proclet.ErrNotFound) ||
		errors.Is(err, proclet.ErrMoved) ||
		errors.Is(err, proclet.ErrDead) ||
		errors.Is(err, errSpilledBatch)
}
