// Package sharded provides Quicksand's high-level memory abstractions
// (§3.2): data structures — vector, map, set, queue — partitioned into
// disjoint ranges, each range stored in its own memory proclet so the
// scheduler can place and migrate data at fine granularity.
//
// Each structure keeps an index proclet mapping shard ranges to data
// proclets; clients cache the index, so lookups route directly to the
// owning shard. Structure-specific split and merge functions keep
// shards within the migration-latency budget (§3.3): a shard that
// outgrows MaxShardBytes splits in two, and adjacent underfull shards
// merge. Iterators carry semantic hints that drive prefetching, hiding
// remote-shard access latency behind computation.
package sharded

import (
	"errors"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Errors returned by sharded structures.
var (
	ErrOutOfRange = errors.New("sharded: index out of range")
	ErrNotFound   = errors.New("sharded: key not found")
	ErrClosed     = errors.New("sharded: structure closed")
)

// Options tunes a sharded structure.
type Options struct {
	// MaxShardBytes caps shard size; 0 uses the system's derived cap
	// (target migration latency x NIC bandwidth).
	MaxShardBytes int64
	// MergeFraction: two adjacent shards merge when their combined
	// size is below MergeFraction*MaxShardBytes. Default 0.5.
	MergeFraction float64
	// AutoAdapt registers the structure with the scheduler's
	// adaptation loop so splits and merges happen automatically.
	AutoAdapt bool
	// Spill, when set, enables memory tiering for vectors: cold
	// shards move to this storage tier when RAM runs out and fault
	// back in on access (§5's "flash as slow cheap memory").
	Spill *storage.Flat
	// Replicas, when >= 2, replicates every shard (and the index)
	// through the system's replication plane: each shard proclet gets
	// Replicas-1 anti-affine backups and its writes group-commit log
	// records before acking, so a machine crash promotes a backup
	// instead of losing the shard. Requires
	// core.System.EnableReplicationPlane; replicated shards are pinned
	// (durability trades away harvest mobility). Incompatible with
	// Spill.
	Replicas int
}

func (o Options) withDefaults(sys *core.System) Options {
	if o.MaxShardBytes == 0 {
		o.MaxShardBytes = sys.Config().MaxShardBytes()
	}
	if o.MergeFraction == 0 {
		o.MergeFraction = 0.5
	}
	return o
}

// replicate enables primary/backup replication on a freshly created
// shard or index proclet when the structure's options ask for it. The
// proclet is destroyed on failure so callers don't leak a half-built
// shard.
func replicate(sys *core.System, mp *core.MemoryProclet, opts Options) (*core.MemoryProclet, error) {
	if opts.Replicas < 2 {
		return mp, nil
	}
	rm := sys.Replication()
	if rm == nil {
		_ = mp.Destroy()
		return nil, errors.New("sharded: Options.Replicas requires an enabled replication plane")
	}
	if err := rm.Replicate(mp, opts.Replicas); err != nil {
		_ = mp.Destroy()
		return nil, err
	}
	return mp, nil
}

// hashKey hashes an arbitrary comparable key into the uint64 shard
// space using FNV-1a over its printed form. Deterministic across runs.
func hashKey[K comparable](k K) uint64 {
	h := fnv.New64a()
	writeKey(h, k)
	return h.Sum64()
}

func writeKey[K comparable](h interface{ Write([]byte) (int, error) }, k K) {
	// fmt.Fprintf would allocate; for the simulator's purposes the
	// printed form is a fine canonical encoding.
	b := []byte(keyString(k))
	h.Write(b)
}

// opTracker counts in-flight structure operations per shard proclet.
// Splits and merges drain a shard's outstanding operations before
// moving its data; combined with the split gate (which holds back new
// operations), this gives restructures an atomic view — the §3.3
// "splitting blocks new invocations until it completes" semantics.
type opTracker struct {
	counts map[proclet.ID]int
	idle   sim.Cond
}

func newOpTracker() *opTracker {
	return &opTracker{counts: make(map[proclet.ID]int)}
}

// enter records an operation starting against a shard.
func (t *opTracker) enter(id proclet.ID) { t.counts[id]++ }

// exit records an operation completing.
func (t *opTracker) exit(id proclet.ID) {
	t.counts[id]--
	if t.counts[id] <= 0 {
		delete(t.counts, id)
		t.idle.Broadcast()
	}
}

// drain blocks until the shard has no in-flight operations.
func (t *opTracker) drain(p *sim.Proc, id proclet.ID) {
	for t.counts[id] > 0 {
		t.idle.Wait(p)
	}
}

// splitGate blocks operations targeting a key range that is currently
// being restructured — the paper's "splitting/merging briefly blocks
// new proclet method invocations" (§3.3), surfaced at the structure
// level where routing happens.
type splitGate struct {
	active bool
	lo, hi uint64 // affected key range, [lo, hi)
	done   sim.Cond
}

// wait blocks while the gate covers key.
func (g *splitGate) wait(p *sim.Proc, key uint64) {
	for g.active && key >= g.lo && key < g.hi {
		g.done.Wait(p)
	}
}

// close opens the gate and wakes all blocked operations.
func (g *splitGate) close() {
	g.active = false
	g.done.Broadcast()
}

// open marks [lo, hi) as under restructure.
func (g *splitGate) open(lo, hi uint64) {
	g.active = true
	g.lo, g.hi = lo, hi
}
