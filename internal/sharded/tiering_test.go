package sharded

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

// tierSys builds a small-RAM cluster with a flash tier.
func tierSys(t *testing.T, ramPerMachine int64) (*core.System, *storage.Flat) {
	t.Helper()
	s := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 4, MemBytes: ramPerMachine},
		{Cores: 4, MemBytes: ramPerMachine},
	})
	dev := storage.DeviceConfig{
		CapacityBytes: 8 << 30,
		ReadLatency:   80 * time.Microsecond,
		WriteLatency:  20 * time.Microsecond,
		Bandwidth:     2_000_000_000,
	}
	flat, err := storage.NewFlat(s, "flash", 4, dev)
	if err != nil {
		t.Fatal(err)
	}
	return s, flat
}

func TestTieringHoldsDatasetLargerThanRAM(t *testing.T) {
	// 2 x 256 KiB of RAM (minus index/overheads) must hold a 1 MiB
	// dataset by spilling cold shards to flash.
	s, flat := tierSys(t, 256<<10)
	v, err := NewVector[int](s, "big", Options{MaxShardBytes: 64 << 10, Spill: flat})
	if err != nil {
		t.Fatal(err)
	}
	const n = 256 // 256 x 4 KiB = 1 MiB
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := v.PushBack(p, 0, i, 4<<10); err != nil {
				t.Fatalf("PushBack(%d): %v", i, err)
			}
		}
		if v.Spilled() == 0 || v.Spills == 0 {
			t.Fatalf("nothing spilled (spilled=%d spills=%d): dataset should exceed RAM", v.Spilled(), v.Spills)
		}
		// Every element — resident or spilled — must read back.
		for i := uint64(0); i < n; i++ {
			got, err := v.Get(p, 0, i)
			if err != nil {
				t.Fatalf("Get(%d): %v", i, err)
			}
			if got != int(i) {
				t.Fatalf("Get(%d) = %d", i, got)
			}
		}
		if v.Faults == 0 {
			t.Error("reads of spilled ranges recorded no faults")
		}
	})
	s.K.Run()
}

func TestWithoutTierOversizeFails(t *testing.T) {
	s, _ := tierSys(t, 256<<10)
	v, _ := NewVector[int](s, "big", Options{MaxShardBytes: 64 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		var err error
		for i := 0; i < 256; i++ {
			if err = v.PushBack(p, 0, i, 4<<10); err != nil {
				break
			}
		}
		if err == nil {
			t.Error("expected capacity exhaustion without a spill tier")
		}
	})
	s.K.Run()
}

func TestFaultEvictsColdestNotHottest(t *testing.T) {
	s, flat := tierSys(t, 256<<10)
	v, _ := NewVector[int](s, "lru", Options{MaxShardBytes: 64 << 10, Spill: flat})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			if err := v.PushBack(p, 0, i, 4<<10); err != nil {
				t.Fatal(err)
			}
			p.Sleep(10 * time.Microsecond)
		}
		// Heat up the first shard's range repeatedly, then force
		// faults elsewhere: shard 0 must stay resident.
		for round := 0; round < 3; round++ {
			if _, err := v.Get(p, 0, 1); err != nil {
				t.Fatal(err)
			}
			p.Sleep(time.Millisecond)
		}
		hot := v.shardIdx(1)
		if v.shards[hot].spilled {
			// Fault it in and re-heat.
			v.Get(p, 0, 1)
			hot = v.shardIdx(1)
		}
		// Access a spilled high range to trigger eviction pressure.
		if _, err := v.Get(p, 0, 250); err != nil {
			t.Fatal(err)
		}
		if v.shards[v.shardIdx(1)].spilled {
			t.Error("hottest shard was evicted instead of a cold one")
		}
	})
	s.K.Run()
}

func TestTieredIteration(t *testing.T) {
	// A full scan over a dataset 4x RAM must fault every spilled shard
	// in exactly-once order.
	s, flat := tierSys(t, 256<<10)
	v, _ := NewVector[int](s, "scan", Options{MaxShardBytes: 64 << 10, Spill: flat})
	const n = 400
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := v.PushBack(p, 0, i, 4<<10); err != nil {
				t.Fatal(err)
			}
		}
		it := v.Iter(8)
		want := 0
		for {
			val, ok, err := it.Next(p, 1)
			if err != nil {
				t.Fatalf("Next at %d: %v", want, err)
			}
			if !ok {
				break
			}
			if val != want {
				t.Fatalf("element %d = %d (order broken across faults)", want, val)
			}
			want++
		}
		if want != n {
			t.Fatalf("scanned %d of %d", want, n)
		}
		if v.Faults == 0 {
			t.Error("scan recorded no faults over a 4x-RAM dataset")
		}
	})
	s.K.Run()
}

func TestTieredFaultCostsFlash(t *testing.T) {
	// A fault must cost device time: reading a spilled element is
	// slower than a resident one.
	s, flat := tierSys(t, 256<<10)
	v, _ := NewVector[int](s, "cost", Options{MaxShardBytes: 64 << 10, Spill: flat})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 256; i++ {
			v.PushBack(p, 0, i, 4<<10)
		}
		// Resident read (tail shard).
		start := p.Now()
		v.Get(p, 0, 255)
		residentCost := p.Now().Sub(start)
		// Spilled read (cold front shard).
		if !v.shards[0].spilled {
			t.Skip("front shard unexpectedly resident")
		}
		start = p.Now()
		v.Get(p, 0, 1)
		faultCost := p.Now().Sub(start)
		if faultCost < 10*residentCost {
			t.Errorf("fault cost %v vs resident %v: flash should be much slower", faultCost, residentCost)
		}
	})
	s.K.Run()
}
