package sharded

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// Property: the sharded queue is a FIFO under arbitrary interleavings
// of pushes and pops (driven by a random op tape), matching a model
// queue exactly, including across segment seals and retires.
func TestQueueMatchesModelProperty(t *testing.T) {
	f := func(tape []uint8) bool {
		s := testSys(t)
		q, err := NewQueue[int](s, "model", Options{MaxShardBytes: 4 << 10})
		if err != nil {
			return false
		}
		ok := true
		s.K.Spawn("driver", func(p *sim.Proc) {
			var model []int
			next := 0
			for _, op := range tape {
				if op%3 != 0 { // 2/3 pushes
					if err := q.Push(p, 0, next, 256); err != nil {
						ok = false
						return
					}
					model = append(model, next)
					next++
				} else {
					got, gotOK, err := q.TryPop(p, 1)
					if err != nil {
						ok = false
						return
					}
					if gotOK != (len(model) > 0) {
						ok = false
						return
					}
					if gotOK {
						if got != model[0] {
							ok = false
							return
						}
						model = model[1:]
					}
				}
			}
			if q.Len() != uint64(len(model)) {
				ok = false
				return
			}
			// Drain and compare the tail.
			for _, want := range model {
				got, gotOK, err := q.TryPop(p, 1)
				if err != nil || !gotOK || got != want {
					ok = false
					return
				}
			}
		})
		s.K.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: vector contents equal the model after arbitrary sequences
// of pushes, sets, and adaptation passes, and total accounted memory
// equals the sum of shard heaps.
func TestVectorMatchesModelProperty(t *testing.T) {
	f := func(tape []uint16) bool {
		s := testSys(t)
		v, err := NewVector[int](s, "model", Options{MaxShardBytes: 4 << 10})
		if err != nil {
			return false
		}
		ok := true
		s.K.Spawn("driver", func(p *sim.Proc) {
			var model []int
			for _, op := range tape {
				switch op % 4 {
				case 0, 1: // push
					val := int(op)
					if err := v.PushBack(p, 0, val, 200); err != nil {
						ok = false
						return
					}
					model = append(model, val)
				case 2: // set
					if len(model) == 0 {
						continue
					}
					idx := uint64(int(op) % len(model))
					if err := v.Set(p, 0, idx, -1, 200); err != nil {
						ok = false
						return
					}
					model[idx] = -1
				case 3: // adapt (split/merge pass)
					v.Adapt(p)
				}
			}
			if v.Len() != uint64(len(model)) {
				ok = false
				return
			}
			for i, want := range model {
				got, err := v.Get(p, 0, uint64(i))
				if err != nil || got != want {
					ok = false
					return
				}
			}
		})
		s.K.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: IterRange over any subrange yields exactly the elements of
// that range, in order, for any batch size.
func TestIterRangeExactProperty(t *testing.T) {
	s := testSys(t)
	v, _ := NewVector[int](s, "vec", Options{MaxShardBytes: 4 << 10})
	const n = 120
	s.K.Spawn("loader", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			v.PushBack(p, 0, i, 200)
		}
	})
	s.K.Run()

	f := func(loRaw, hiRaw uint8, batchRaw uint8) bool {
		lo := uint64(loRaw) % n
		hi := uint64(hiRaw) % (n + 1)
		if hi < lo {
			lo, hi = hi, lo
		}
		batch := int(batchRaw % 17) // includes 0 = sync path
		ok := true
		s.K.Spawn("reader", func(p *sim.Proc) {
			it := v.IterRange(lo, hi, batch)
			want := lo
			for {
				val, more, err := it.Next(p, 1)
				if err != nil {
					ok = false
					return
				}
				if !more {
					break
				}
				if uint64(val) != want {
					ok = false
					return
				}
				want++
			}
			if want != hi {
				ok = false
			}
		})
		s.K.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: memory accounting is conserved — after any workload, the
// bytes resident on all machines equal the sum of live proclet heaps.
func TestMemoryConservationProperty(t *testing.T) {
	f := func(tape []uint8) bool {
		s := testSys(t)
		v, err := NewVector[[]byte](s, "v", Options{MaxShardBytes: 8 << 10})
		if err != nil {
			return false
		}
		s.K.Spawn("driver", func(p *sim.Proc) {
			for _, op := range tape {
				v.PushBack(p, 0, nil, int64(op)*16+64)
				if op%5 == 0 {
					v.Adapt(p)
				}
			}
		})
		s.K.Run()
		var machineTotal int64
		for _, m := range s.Cluster.Machines() {
			machineTotal += m.MemUsed()
		}
		var procletTotal int64
		for _, pr := range s.Runtime.Proclets() {
			procletTotal += pr.HeapBytes()
		}
		return machineTotal == procletTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Determinism: the same structural workload produces identical shard
// layouts and traces across runs.
func TestShardedDeterminism(t *testing.T) {
	run := func() (int, int64, uint64) {
		s := testSys(t)
		v, _ := NewVector[int](s, "d", Options{MaxShardBytes: 8 << 10})
		s.K.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				v.PushBack(p, 0, i, int64(128+(i*37)%512))
				if i%50 == 0 {
					p.Sleep(time.Duration(i) * time.Microsecond)
				}
			}
			v.Adapt(p)
		})
		s.K.Run()
		return v.NumShards(), v.Splits, s.K.EventsProcessed()
	}
	s1, sp1, e1 := run()
	s2, sp2, e2 := run()
	if s1 != s2 || sp1 != sp2 || e1 != e2 {
		t.Errorf("nondeterminism: shards %d/%d splits %d/%d events %d/%d",
			s1, s2, sp1, sp2, e1, e2)
	}
}
