package sharded

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Memory tiering — the paper's §5 storage-class direction: "fast flash
// disks are increasingly used as slow cheap memory". A Vector created
// with Options.Spill set can hold datasets larger than cluster RAM:
// when memory runs out, the coldest shard's contents move to the flat
// storage tier and its memory proclet is destroyed; touching a spilled
// range faults the shard back in (evicting another cold shard if RAM
// is still tight).

// ErrNoTier is returned when a spill is required but no storage tier
// was configured.
var ErrNoTier = errors.New("sharded: dataset exceeds memory and no spill tier is configured")

// spillPayload is what a spilled shard stores in the flat tier.
type spillPayload struct {
	ids   []uint64
	vals  []any
	sizes []int64
}

// Spilled reports how many of the vector's shards currently live in
// the storage tier.
func (v *Vector[T]) Spilled() int {
	n := 0
	for _, s := range v.shards {
		if s.spilled {
			n++
		}
	}
	return n
}

// touch stamps a shard's last access time (the spill policy's signal).
func (v *Vector[T]) touch(s int) {
	v.shards[s].lastAccess = v.sys.K.Now()
}

// ensureResident faults the shard covering element i back into memory
// if it is spilled. It serializes with other restructures via adaptMu.
func (v *Vector[T]) ensureResident(p *sim.Proc, i uint64) error {
	for attempt := 0; attempt < 64; attempt++ {
		s := v.shardIdx(i)
		if !v.shards[s].spilled {
			return nil
		}
		if !v.adaptMu.TryLock() {
			p.Sleep(100 * time.Microsecond) // another restructure is running
			continue
		}
		// Recheck under the lock; the index may have shifted.
		s = v.shardIdx(i)
		var err error
		if v.shards[s].spilled {
			err = v.faultShard(p, s)
		}
		v.adaptMu.Unlock()
		if err != nil {
			return err
		}
	}
	return fmt.Errorf("sharded: element %d not faultable after retries", i)
}

// spillKey names a shard's object in the storage tier.
func (v *Vector[T]) spillKey(lo uint64) string {
	return fmt.Sprintf("%s/shard@%d", v.name, lo)
}

// spillShard moves shard s's contents to the storage tier and destroys
// its memory proclet. Caller holds adaptMu. The tail shard (the append
// target) never spills.
func (v *Vector[T]) spillShard(p *sim.Proc, s int) error {
	if v.opts.Spill == nil {
		return ErrNoTier
	}
	if s == len(v.shards)-1 || v.shards[s].spilled {
		return fmt.Errorf("sharded: shard %d not spillable", s)
	}
	lo, hi := v.shards[s].lo, v.hiOf(s)
	gateHi := hi
	v.gate.open(lo, gateHi)
	defer v.gate.close()
	mp := v.shards[s].mp
	v.ops.drain(p, mp.ID())

	home := mp.Location()
	ids, vals, sizes, err := mp.Scan(p, home, lo+1, hi+1)
	if err != nil {
		return err
	}
	var bytes int64
	for _, b := range sizes {
		bytes += b
	}
	key := v.spillKey(lo)
	if err := v.opts.Spill.Write(p, home, key, &spillPayload{ids: ids, vals: vals, sizes: sizes}, bytes); err != nil {
		return err
	}
	mp.Destroy()
	v.shards[s].mp = nil
	v.shards[s].spilled = true
	v.shards[s].spillBytes = bytes
	v.Spills++
	v.publishIndex(p)
	v.sys.Trace.Emitf(v.sys.K.Now(), trace.KindMigrate, v.name, int(home), -1,
		"spilled shard [%d,%d) %d bytes to %s", lo, hi, bytes, v.opts.Spill.Name())
	return nil
}

// faultShard brings a spilled shard back into memory, evicting other
// cold shards if RAM is tight. Caller holds adaptMu.
func (v *Vector[T]) faultShard(p *sim.Proc, s int) error {
	lo, hi := v.shards[s].lo, v.hiOf(s)
	v.gate.open(lo, hi)
	defer v.gate.close()

	need := v.shards[s].spillBytes + v.shards[s].spillBytes/8 + 4096
	machine, err := v.placeWithEviction(p, s, need)
	if err != nil {
		return err
	}
	mp, err := core.NewMemoryProcletOn(v.sys, fmt.Sprintf("%s.shard-f%d", v.name, v.nextShard), machine)
	if err != nil {
		return err
	}
	v.nextShard++
	key := v.spillKey(lo)
	raw, err := v.opts.Spill.Read(p, mp.Location(), key)
	if err != nil {
		mp.Destroy()
		return err
	}
	pl := raw.(*spillPayload)
	if err := mp.PutBatch(p, mp.Location(), pl.ids, pl.vals, pl.sizes); err != nil {
		mp.Destroy()
		return err
	}
	if err := v.opts.Spill.Delete(p, mp.Location(), key); err != nil {
		return err
	}
	v.shards[s].mp = mp
	v.shards[s].spilled = false
	v.shards[s].spillBytes = 0
	v.touch(s)
	v.Faults++
	v.publishIndex(p)
	v.sys.Trace.Emitf(v.sys.K.Now(), trace.KindMigrate, v.name, -1, int(machine),
		"faulted shard [%d,%d) back from %s", lo, hi, v.opts.Spill.Name())
	return nil
}

// placeWithEviction finds a machine with `need` free bytes, spilling
// the coldest resident shards (other than `keep`) until one exists.
func (v *Vector[T]) placeWithEviction(p *sim.Proc, keep int, need int64) (cluster.MachineID, error) {
	for round := 0; round < len(v.shards)+1; round++ {
		if m, err := v.sys.Sched.PlaceMemory(need); err == nil {
			return m, nil
		}
		// Try the scheduler's evacuation path first.
		for _, m := range v.sys.Cluster.Machines() {
			if v.sys.Sched.FreeUpMemory(p, m.ID, need) {
				return m.ID, nil
			}
		}
		// Spill the coldest resident shard.
		coldest := -1
		for s := range v.shards {
			if s == keep || s == len(v.shards)-1 || v.shards[s].spilled || v.shards[s].mp == nil {
				continue
			}
			if coldest == -1 || v.shards[s].lastAccess < v.shards[coldest].lastAccess {
				coldest = s
			}
		}
		if coldest == -1 {
			break
		}
		if err := v.spillShard(p, coldest); err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("%w: need %d bytes", core.ErrNoCapacity, need)
}
