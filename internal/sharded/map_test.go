package sharded

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMapPutGetDelete(t *testing.T) {
	s := testSys(t)
	m, err := NewMap[string, int](s, "map", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		if err := m.Put(p, 0, "alpha", 1, 100); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := m.Put(p, 0, "beta", 2, 100); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if m.Len() != 2 {
			t.Errorf("Len = %d, want 2", m.Len())
		}
		got, err := m.Get(p, 0, "alpha")
		if err != nil || got != 1 {
			t.Errorf("Get(alpha) = %d, %v", got, err)
		}
		// Replace does not change count.
		m.Put(p, 0, "alpha", 10, 100)
		if m.Len() != 2 {
			t.Errorf("Len after replace = %d", m.Len())
		}
		got, _ = m.Get(p, 0, "alpha")
		if got != 10 {
			t.Errorf("Get after replace = %d", got)
		}
		if _, err := m.Get(p, 0, "gamma"); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(missing) = %v, want ErrNotFound", err)
		}
		if err := m.Delete(p, 0, "alpha"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if m.Len() != 1 {
			t.Errorf("Len after delete = %d", m.Len())
		}
		if _, err := m.Get(p, 0, "alpha"); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(deleted) = %v", err)
		}
		// Deleting an absent key is a no-op.
		if err := m.Delete(p, 0, "nope"); err != nil {
			t.Errorf("Delete(missing): %v", err)
		}
		if m.Len() != 1 {
			t.Errorf("Len changed on no-op delete: %d", m.Len())
		}
	})
	s.K.Run()
}

func TestMapGetBatch(t *testing.T) {
	s := testSys(t)
	m, err := NewMap[int, int](s, "map", Options{MaxShardBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if err := m.Put(p, 0, i, i*10, 1<<9); err != nil {
				t.Fatalf("Put(%d): %v", i, err)
			}
		}
		if m.NumShards() < 2 {
			t.Fatalf("want a multi-shard map, got %d shards", m.NumShards())
		}
		// A batch spanning every shard, with present, absent, and
		// duplicate keys.
		keys := []int{0, 7, 999, 42, 199, 7, -5}
		vals, found, err := m.GetBatch(p, 0, keys)
		if err != nil {
			t.Fatalf("GetBatch: %v", err)
		}
		for i, k := range keys {
			if k >= 0 && k < 200 {
				if !found[i] || vals[i] != k*10 {
					t.Errorf("key %d: found=%v val=%d, want %d", k, found[i], vals[i], k*10)
				}
			} else if found[i] {
				t.Errorf("absent key %d reported found", k)
			}
		}
		// Batch answers must match singleton Gets exactly.
		all := make([]int, 200)
		for i := range all {
			all[i] = i
		}
		bvals, bfound, err := m.GetBatch(p, 0, all)
		if err != nil {
			t.Fatal(err)
		}
		for i := range all {
			if !bfound[i] || bvals[i] != i*10 {
				t.Fatalf("batch key %d: found=%v val=%d", i, bfound[i], bvals[i])
			}
		}
		// Empty batch is a no-op.
		if v, f, err := m.GetBatch(p, 0, nil); err != nil || len(v) != 0 || len(f) != 0 {
			t.Errorf("empty batch: %v %v %v", v, f, err)
		}
	})
	s.K.Run()
}

func TestMapSplitsUnderLoad(t *testing.T) {
	s := testSys(t)
	m, _ := NewMap[int, []byte](s, "map", Options{MaxShardBytes: 16 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if err := m.Put(p, 0, i, nil, 1<<10); err != nil {
				t.Fatalf("Put(%d): %v", i, err)
			}
		}
		if m.NumShards() < 3 {
			t.Errorf("NumShards = %d, want >= 3", m.NumShards())
		}
		for i := 0; i < 100; i++ {
			if _, err := m.Get(p, 0, i); err != nil {
				t.Errorf("Get(%d) after splits: %v", i, err)
			}
		}
	})
	s.K.Run()
}

func TestMapMergeAfterDeletes(t *testing.T) {
	// The paper's motivating merge case: a hash table shrunk by heavy
	// deletes re-compacts into fewer memory proclets.
	s := testSys(t)
	m, _ := NewMap[int, []byte](s, "map", Options{MaxShardBytes: 16 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			m.Put(p, 0, i, nil, 1<<10)
		}
		before := m.NumShards()
		for i := 0; i < 95; i++ {
			if err := m.Delete(p, 0, i); err != nil {
				t.Fatalf("Delete(%d): %v", i, err)
			}
		}
		m.Adapt(p)
		if m.NumShards() >= before {
			t.Errorf("shards %d -> %d, want merges after deletes", before, m.NumShards())
		}
		if m.Merges == 0 {
			t.Error("no merges recorded")
		}
		for i := 95; i < 100; i++ {
			if _, err := m.Get(p, 0, i); err != nil {
				t.Errorf("survivor Get(%d): %v", i, err)
			}
		}
	})
	s.K.Run()
}

func TestMapHashCollisionsBucketed(t *testing.T) {
	// Force two distinct keys into the same shard object by checking
	// behaviour under the bucket path: same-hash keys are impossible to
	// construct reliably with FNV, so exercise replace+delete within a
	// bucket of one instead, plus a sanity check across many keys.
	s := testSys(t)
	m, _ := NewMap[string, string](s, "map", smallOpts())
	s.K.Spawn("driver", func(p *sim.Proc) {
		keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for _, k := range keys {
			m.Put(p, 0, k, "v:"+k, 50)
		}
		for _, k := range keys {
			got, err := m.Get(p, 0, k)
			if err != nil || got != "v:"+k {
				t.Errorf("Get(%s) = %q, %v", k, got, err)
			}
		}
	})
	s.K.Run()
}

func TestSetSemantics(t *testing.T) {
	s := testSys(t)
	set, err := NewSet[int](s, "set", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		set.Add(p, 0, 7, 8)
		set.Add(p, 0, 7, 8) // duplicate
		set.Add(p, 0, 9, 8)
		if set.Len() != 2 {
			t.Errorf("Len = %d, want 2", set.Len())
		}
		if ok, _ := set.Contains(p, 0, 7); !ok {
			t.Error("Contains(7) = false")
		}
		if ok, _ := set.Contains(p, 0, 8); ok {
			t.Error("Contains(8) = true")
		}
		set.Remove(p, 0, 7)
		if ok, _ := set.Contains(p, 0, 7); ok {
			t.Error("Contains(7) after remove")
		}
	})
	s.K.Run()
}

// Property: a sharded map behaves exactly like a Go map under an
// arbitrary sequence of puts and deletes, including across splits.
func TestMapMatchesModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := testSys(t)
		m, err := NewMap[int, int](s, "model", Options{MaxShardBytes: 4 << 10})
		if err != nil {
			return false
		}
		model := map[int]int{}
		okAll := true
		s.K.Spawn("driver", func(p *sim.Proc) {
			for _, op := range ops {
				key := int(op % 32)
				switch {
				case op%3 == 2:
					m.Delete(p, 0, key)
					delete(model, key)
				default:
					val := int(op)
					if err := m.Put(p, 0, key, val, 256); err != nil {
						okAll = false
						return
					}
					model[key] = val
				}
			}
			if int(m.Len()) != len(model) {
				okAll = false
				return
			}
			for k, want := range model {
				got, err := m.Get(p, 0, k)
				if err != nil || got != want {
					okAll = false
					return
				}
			}
		})
		s.K.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKeyStringStable(t *testing.T) {
	cases := []struct {
		k    any
		want string
	}{
		{"str", "str"}, {42, "42"}, {-7, "-7"}, {int64(9), "9"},
		{uint64(12345678901234567890), "12345678901234567890"},
		{uint32(0), "0"},
	}
	for _, c := range cases {
		var got string
		switch v := c.k.(type) {
		case string:
			got = keyString(v)
		case int:
			got = keyString(v)
		case int64:
			got = keyString(v)
		case uint64:
			got = keyString(v)
		case uint32:
			got = keyString(v)
		}
		if got != c.want {
			t.Errorf("keyString(%v) = %q, want %q", c.k, got, c.want)
		}
	}
	// Struct keys fall back to fmt.
	type pair struct{ A, B int }
	if keyString(pair{1, 2}) != fmt.Sprint(pair{1, 2}) {
		t.Error("struct key fallback broken")
	}
}
