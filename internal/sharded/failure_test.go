package sharded

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/replication"
	"repro/internal/sim"
)

// Failure injection: sharded structures must surface capacity
// exhaustion as clean errors without corrupting state or leaking
// memory.

func TestVectorPushWhenClusterFull(t *testing.T) {
	s := testSys(t,
		cluster.MachineConfig{Cores: 2, MemBytes: 64 << 10},
		cluster.MachineConfig{Cores: 2, MemBytes: 64 << 10},
	)
	v, err := NewVector[int](s, "vec", Options{MaxShardBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		var pushErr error
		pushed := 0
		for i := 0; i < 200; i++ {
			if pushErr = v.PushBack(p, 0, i, 1<<10); pushErr != nil {
				break
			}
			pushed++
		}
		if pushErr == nil {
			t.Fatal("expected capacity exhaustion")
		}
		if !errors.Is(pushErr, cluster.ErrNoMemory) && !errors.Is(pushErr, core.ErrNoCapacity) {
			t.Errorf("push error = %v, want memory/capacity error", pushErr)
		}
		if pushed < 50 {
			t.Errorf("pushed only %d before failing; cluster should hold ~100", pushed)
		}
		// Everything that was acknowledged must still be readable.
		for i := uint64(0); i < uint64(pushed); i++ {
			if _, err := v.Get(p, 0, i); err != nil {
				t.Errorf("Get(%d) after partial fill: %v", i, err)
			}
		}
	})
	s.K.Run()
}

func TestMapPutWhenClusterFull(t *testing.T) {
	s := testSys(t,
		cluster.MachineConfig{Cores: 2, MemBytes: 64 << 10},
		cluster.MachineConfig{Cores: 2, MemBytes: 64 << 10},
	)
	m, _ := NewMap[int, int](s, "map", Options{MaxShardBytes: 16 << 10})
	s.K.Spawn("driver", func(p *sim.Proc) {
		var putErr error
		inserted := 0
		for i := 0; i < 200; i++ {
			if putErr = m.Put(p, 0, i, i, 1<<10); putErr != nil {
				break
			}
			inserted++
		}
		if putErr == nil {
			t.Fatal("expected capacity exhaustion")
		}
		if int64(inserted) != m.Len() {
			t.Errorf("Len = %d, want %d (failed put must not count)", m.Len(), inserted)
		}
		// Deleting frees capacity and writes work again.
		for i := 0; i < inserted/2; i++ {
			if err := m.Delete(p, 0, i); err != nil {
				t.Fatalf("Delete(%d): %v", i, err)
			}
		}
		if err := m.Put(p, 0, 9999, 1, 1<<10); err != nil {
			t.Errorf("Put after freeing space: %v", err)
		}
	})
	s.K.Run()
}

func TestQueueBackpressureOnFullCluster(t *testing.T) {
	s := testSys(t,
		cluster.MachineConfig{Cores: 2, MemBytes: 96 << 10},
		cluster.MachineConfig{Cores: 2, MemBytes: 96 << 10},
	)
	q, _ := NewQueue[int](s, "q", Options{MaxShardBytes: 32 << 10})
	s.K.Spawn("producer", func(p *sim.Proc) {
		var pushErr error
		pushed := 0
		for i := 0; i < 300; i++ {
			if pushErr = q.Push(p, 0, i, 1<<10); pushErr != nil {
				break
			}
			pushed++
		}
		if pushErr == nil {
			t.Fatal("expected capacity exhaustion")
		}
		// Consumption drains memory; production can resume.
		for i := 0; i < pushed; i++ {
			if _, ok, err := q.TryPop(p, 1); !ok || err != nil {
				t.Fatalf("TryPop #%d: ok=%v err=%v", i, ok, err)
			}
		}
		if err := q.Push(p, 0, 1, 1<<10); err != nil {
			t.Errorf("Push after drain: %v", err)
		}
	})
	s.K.Run()
}

func TestVectorReadDuringMemoryEvacuation(t *testing.T) {
	// Reads must stay correct while the memory reactor migrates shards
	// away from a machine under pressure.
	s := testSys(t,
		cluster.MachineConfig{Cores: 4, MemBytes: 300 << 10},
		cluster.MachineConfig{Cores: 4, MemBytes: 2 << 20},
	)
	s.Start()
	v, _ := NewVector[int](s, "vec", Options{MaxShardBytes: 64 << 10})
	readErrs := 0
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 150; i++ {
			if err := v.PushBack(p, 0, i, 1<<10); err != nil {
				t.Fatalf("PushBack(%d): %v", i, err)
			}
		}
		// Interleave reads with ongoing reactor activity.
		for round := 0; round < 5; round++ {
			for i := uint64(0); i < 150; i += 7 {
				if got, err := v.Get(p, 0, i); err != nil || got != int(i) {
					readErrs++
				}
			}
			p.Sleep(2 * time.Millisecond)
		}
		s.K.Stop()
	})
	s.K.Run()
	if readErrs != 0 {
		t.Errorf("%d reads failed during evacuation", readErrs)
	}
}

func TestCloseIsIdempotentUnderFailure(t *testing.T) {
	s := testSys(t)
	v, _ := NewVector[int](s, "vec", smallOpts())
	m, _ := NewMap[int, int](s, "map", smallOpts())
	q, _ := NewQueue[int](s, "q", smallOpts())
	v.Close()
	v.Close()
	m.Close()
	m.Close()
	q.Close()
	q.Close()
	used := s.Cluster.Machine(0).MemUsed() + s.Cluster.Machine(1).MemUsed()
	if used != 0 {
		t.Errorf("double close leaked %d bytes", used)
	}
}

func TestReplicatedMapSurvivesMachineCrash(t *testing.T) {
	s := testSys(t,
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28},
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28},
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28},
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28},
	)
	in := fault.New(s.K, s.Cluster, s.Trace)
	s.AttachInjector(in)
	// Monitor on m3: placement favors low-numbered machines, so shard
	// primaries land on crashable machines.
	rm := s.EnableReplicationPlane(replication.Config{}, 3)

	m, err := NewMap[int, int](s, "map", Options{MaxShardBytes: 64 << 10, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := m.Put(p, 3, i, i*7, 256); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		// Crash every machine hosting a shard primary except the monitor.
		crashed := map[cluster.MachineID]bool{}
		for _, sh := range m.Shards() {
			if mid := sh.Location(); mid != 3 && !crashed[mid] {
				crashed[mid] = true
				in.Apply(fault.Event{Op: fault.OpCrash, A: mid})
			}
		}
		if len(crashed) == 0 {
			t.Fatal("no shard primary off the monitor machine; test is vacuous")
		}
		// Every acked write must survive via promoted backups.
		for i := 0; i < n; i++ {
			v, err := m.Get(p, 3, i)
			if err != nil {
				t.Errorf("get %d after crash: %v", i, err)
				continue
			}
			if v != i*7 {
				t.Errorf("key %d = %d, want %d", i, v, i*7)
			}
		}
	})
	s.K.RunUntil(sim.Time(80 * time.Millisecond))
	if rm.Promotions.Value() == 0 {
		t.Error("expected at least one promotion")
	}
}

func TestReplicasWithoutPlaneFails(t *testing.T) {
	s := testSys(t)
	if _, err := NewMap[int, int](s, "map", Options{Replicas: 2}); err == nil {
		t.Fatal("Replicas without an enabled replication plane should fail")
	}
	used := s.Cluster.Machine(0).MemUsed() + s.Cluster.Machine(1).MemUsed()
	if used != 0 {
		t.Errorf("failed construction leaked %d bytes", used)
	}
}
