package sharded

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// mapEntry is one key/value pair inside a hash bucket.
type mapEntry[K comparable, V any] struct {
	key   K
	val   V
	bytes int64
}

// Map is a sharded hash map: keys hash into a uint64 space partitioned
// into ranges, each range stored in its own memory proclet. Mutations
// ship an update closure to the owning shard (compute-to-data), so a
// put or delete costs one invocation.
type Map[K comparable, V any] struct {
	sys  *core.System
	name string
	opts Options

	shards []mshard // sorted by lo (hash-space range starts)
	count  int64

	index *core.MemoryProclet

	gate      splitGate
	ops       *opTracker
	adaptMu   sim.Mutex
	nextShard int
	closed    bool

	// Splits and Merges count structural adaptations.
	Splits int64
	Merges int64
}

type mshard struct {
	lo uint64
	mp *core.MemoryProclet
}

// NewMap creates a sharded map with one initial shard.
func NewMap[K comparable, V any](sys *core.System, name string, opts Options) (*Map[K, V], error) {
	opts = opts.withDefaults(sys)
	m := &Map[K, V]{sys: sys, name: name, opts: opts, ops: newOpTracker()}
	idx, err := sys.NewMemoryProclet(name+".index", 4096)
	if err != nil {
		return nil, err
	}
	if idx, err = replicate(sys, idx, opts); err != nil {
		return nil, err
	}
	m.index = idx
	sys.Sched.Pin(idx.ID())
	sh, err := m.newShard()
	if err != nil {
		return nil, err
	}
	m.shards = []mshard{{lo: 0, mp: sh}}
	if opts.AutoAdapt {
		sys.Sched.RegisterAdaptive(m)
	}
	return m, nil
}

func (m *Map[K, V]) newShard() (*core.MemoryProclet, error) {
	m.nextShard++
	mp, err := m.sys.NewMemoryProclet(fmt.Sprintf("%s.shard-%d", m.name, m.nextShard), m.opts.MaxShardBytes/2)
	if err != nil {
		return nil, err
	}
	return replicate(m.sys, mp, m.opts)
}

// Name returns the map's name.
func (m *Map[K, V]) Name() string { return m.name }

// Len returns the number of keys.
func (m *Map[K, V]) Len() int64 { return m.count }

// NumShards returns the shard count.
func (m *Map[K, V]) NumShards() int { return len(m.shards) }

// Shards returns the backing memory proclets in hash order.
func (m *Map[K, V]) Shards() []*core.MemoryProclet {
	out := make([]*core.MemoryProclet, len(m.shards))
	for i, s := range m.shards {
		out[i] = s.mp
	}
	return out
}

func (m *Map[K, V]) shardIdx(h uint64) int {
	return sort.Search(len(m.shards), func(s int) bool { return m.shards[s].lo > h }) - 1
}

func (m *Map[K, V]) hiOf(s int) uint64 {
	if s == len(m.shards)-1 {
		return ^uint64(0)
	}
	return m.shards[s+1].lo
}

// Put inserts or replaces a key. bytes is the value's accounted size.
func (m *Map[K, V]) Put(p *sim.Proc, from cluster.MachineID, key K, val V, bytes int64) error {
	if m.closed {
		return ErrClosed
	}
	h := hashKey(key)
	m.gate.wait(p, h)
	sh := m.shards[m.shardIdx(h)]
	m.ops.enter(sh.mp.ID())
	inserted := false
	entryBytes := bytes + 16 // key material
	err := sh.mp.Update(p, from, h, entryBytes, func(old any, exists bool) (any, int64, bool) {
		var bucket []mapEntry[K, V]
		if exists {
			bucket = old.([]mapEntry[K, V])
		}
		var total int64
		replaced := false
		for i := range bucket {
			if bucket[i].key == key {
				bucket[i] = mapEntry[K, V]{key: key, val: val, bytes: entryBytes}
				replaced = true
			}
			total += bucket[i].bytes
		}
		if !replaced {
			bucket = append(bucket, mapEntry[K, V]{key: key, val: val, bytes: entryBytes})
			total += entryBytes
			inserted = true
		}
		return bucket, total, true
	})
	if errors.Is(err, cluster.ErrNoMemory) {
		if m.sys.Sched.FreeUpMemory(p, sh.mp.Location(), entryBytes*4) {
			err = sh.mp.Update(p, from, h, entryBytes, func(old any, exists bool) (any, int64, bool) {
				var bucket []mapEntry[K, V]
				if exists {
					bucket = old.([]mapEntry[K, V])
				}
				var total int64
				for i := range bucket {
					total += bucket[i].bytes
				}
				bucket = append(bucket, mapEntry[K, V]{key: key, val: val, bytes: entryBytes})
				inserted = true
				return bucket, total + entryBytes, true
			})
		}
	}
	// Release the op entry before any split: splitShard drains the
	// shard's in-flight operations and must not wait on ourselves.
	m.ops.exit(sh.mp.ID())
	if err != nil {
		return err
	}
	if inserted {
		m.count++
	}
	// Keep the shard within the migration budget.
	if sh.mp.HeapBytes() > m.opts.MaxShardBytes {
		m.adaptMu.Lock(p)
		m.splitShard(p, m.shardIdx(h))
		m.adaptMu.Unlock()
	}
	return nil
}

// Get fetches a key's value. Returns ErrNotFound for absent keys.
func (m *Map[K, V]) Get(p *sim.Proc, from cluster.MachineID, key K) (V, error) {
	var zero V
	h := hashKey(key)
	for retry := 0; retry < 4; retry++ {
		m.gate.wait(p, h)
		sh := m.shards[m.shardIdx(h)]
		m.ops.enter(sh.mp.ID())
		val, err := sh.mp.Get(p, from, h)
		m.ops.exit(sh.mp.ID())
		if errors.Is(err, core.ErrNoObject) {
			// Either truly absent or raced a split; re-check routing.
			if m.shards[m.shardIdx(h)].mp == sh.mp && !m.gate.active {
				return zero, fmt.Errorf("%w: %v", ErrNotFound, key)
			}
			continue
		}
		if err != nil {
			return zero, err
		}
		for _, e := range val.([]mapEntry[K, V]) {
			if e.key == key {
				return e.val, nil
			}
		}
		return zero, fmt.Errorf("%w: %v", ErrNotFound, key)
	}
	return zero, fmt.Errorf("sharded: key %v unroutable after retries", key)
}

// GetBatch fetches many keys in one fan-in round: keys are grouped by
// owning shard (ascending shard order, so invocation order is
// deterministic) and each touched shard serves a single mem.getbatch
// invocation instead of one RPC per key. Returns values aligned with
// keys plus a found mask. Keys the batch pass misses — genuinely absent
// or raced by a concurrent split — are re-checked individually through
// Get, which owns the split-retry protocol, so the mask is
// authoritative.
func (m *Map[K, V]) GetBatch(p *sim.Proc, from cluster.MachineID, keys []K) ([]V, []bool, error) {
	vals := make([]V, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found, nil
	}
	hs := make([]uint64, len(keys))
	si := make([]int, len(keys))
	for i, key := range keys {
		hs[i] = hashKey(key)
		m.gate.wait(p, hs[i])
		si[i] = m.shardIdx(hs[i])
	}
	var ids []uint64
	var members []int
	for s := 0; s < len(m.shards); s++ {
		ids = ids[:0]
		members = members[:0]
		for i := range keys {
			if si[i] == s {
				ids = append(ids, hs[i])
				members = append(members, i)
			}
		}
		if len(ids) == 0 {
			continue
		}
		sh := m.shards[s]
		m.ops.enter(sh.mp.ID())
		gotIDs, gotVals, err := sh.mp.GetBatch(p, from, ids)
		m.ops.exit(sh.mp.ID())
		if err != nil {
			return nil, nil, err
		}
		buckets := make(map[uint64]any, len(gotIDs))
		for j, id := range gotIDs {
			buckets[id] = gotVals[j]
		}
		for _, i := range members {
			bv, ok := buckets[hs[i]]
			if !ok {
				continue
			}
			for _, e := range bv.([]mapEntry[K, V]) {
				if e.key == keys[i] {
					vals[i] = e.val
					found[i] = true
					break
				}
			}
		}
	}
	for i := range keys {
		if found[i] {
			continue
		}
		v, err := m.Get(p, from, keys[i])
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		vals[i] = v
		found[i] = true
	}
	return vals, found, nil
}

// Contains reports whether the key is present.
func (m *Map[K, V]) Contains(p *sim.Proc, from cluster.MachineID, key K) (bool, error) {
	_, err := m.Get(p, from, key)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Delete removes a key. Deleting an absent key is a no-op.
func (m *Map[K, V]) Delete(p *sim.Proc, from cluster.MachineID, key K) error {
	if m.closed {
		return ErrClosed
	}
	h := hashKey(key)
	m.gate.wait(p, h)
	sh := m.shards[m.shardIdx(h)]
	m.ops.enter(sh.mp.ID())
	defer m.ops.exit(sh.mp.ID())
	removed := false
	err := sh.mp.Update(p, from, h, 16, func(old any, exists bool) (any, int64, bool) {
		if !exists {
			return nil, 0, false
		}
		bucket := old.([]mapEntry[K, V])
		var kept []mapEntry[K, V]
		var total int64
		for _, e := range bucket {
			if e.key == key {
				removed = true
				continue
			}
			kept = append(kept, e)
			total += e.bytes
		}
		if len(kept) == 0 {
			return nil, 0, false
		}
		return kept, total, true
	})
	if err != nil {
		return err
	}
	if removed {
		m.count--
	}
	return nil
}

// splitShard splits shard s at the midpoint of its hash range. Caller
// holds adaptMu.
func (m *Map[K, V]) splitShard(p *sim.Proc, s int) bool {
	lo, hi := m.shards[s].lo, m.hiOf(s)
	mid := lo + (hi-lo)/2
	if mid == lo {
		return false
	}
	src := m.shards[s].mp
	dst, err := m.newShard()
	if err != nil {
		return false
	}
	m.gate.open(lo, hi)
	defer m.gate.close()
	m.ops.drain(p, src.ID())
	home := src.Location()
	ids, vals, sizes, err := src.Scan(p, home, mid, hi)
	if err == nil && len(ids) > 0 {
		err = dst.PutBatch(p, home, ids, vals, sizes)
	}
	if err != nil {
		dst.Destroy()
		return false
	}
	m.shards = append(m.shards, mshard{})
	copy(m.shards[s+2:], m.shards[s+1:])
	m.shards[s+1] = mshard{lo: mid, mp: dst}
	m.publishIndex(p)
	if len(ids) > 0 {
		if err := src.DelRange(p, home, mid, hi); err != nil {
			return false
		}
	}
	m.Splits++
	m.sys.Trace.Emitf(m.sys.K.Now(), trace.KindSplit, m.name,
		int(src.Location()), int(dst.Location()), "hash mid=%x, %d shards", mid, len(m.shards))
	return true
}

// mergeShards merges shard s+1 into s — the paper's answer to hash
// tables left sparse after heavy deletes (§3.3). Caller holds adaptMu.
func (m *Map[K, V]) mergeShards(p *sim.Proc, s int) bool {
	if s+1 >= len(m.shards) {
		return false
	}
	dst, src := m.shards[s], m.shards[s+1]
	lo, hi := src.lo, m.hiOf(s+1)
	m.gate.open(dst.lo, hi)
	defer m.gate.close()
	m.ops.drain(p, src.mp.ID())
	m.ops.drain(p, dst.mp.ID())
	home := src.mp.Location()
	ids, vals, sizes, err := src.mp.Scan(p, home, lo, hi)
	if err == nil && len(ids) > 0 {
		err = dst.mp.PutBatch(p, home, ids, vals, sizes)
	}
	if err != nil {
		return false
	}
	m.shards = append(m.shards[:s+1], m.shards[s+2:]...)
	m.publishIndex(p)
	src.mp.Destroy()
	m.Merges++
	m.sys.Trace.Emitf(m.sys.K.Now(), trace.KindMerge, m.name,
		int(home), int(dst.mp.Location()), "%d shards", len(m.shards))
	return true
}

func (m *Map[K, V]) publishIndex(p *sim.Proc) {
	table := make([]uint64, len(m.shards))
	for i, s := range m.shards {
		table[i] = s.lo
	}
	m.index.Put(p, m.index.Location(), indexObjID, table, int64(16*len(table)))
}

// Adapt implements core.Adaptive.
func (m *Map[K, V]) Adapt(p *sim.Proc) {
	if m.closed || !m.adaptMu.TryLock() {
		return
	}
	defer m.adaptMu.Unlock()
	for s := 0; s < len(m.shards); s++ {
		if m.shards[s].mp.HeapBytes() > m.opts.MaxShardBytes {
			m.splitShard(p, s)
		}
	}
	mergeMax := int64(float64(m.opts.MaxShardBytes) * m.opts.MergeFraction)
	for s := 0; s+1 < len(m.shards); s++ {
		if m.shards[s].mp.HeapBytes()+m.shards[s+1].mp.HeapBytes() < mergeMax {
			if m.mergeShards(p, s) {
				s--
			}
		}
	}
}

// Close destroys all shards and the index.
func (m *Map[K, V]) Close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, s := range m.shards {
		s.mp.Destroy()
	}
	m.index.Destroy()
}

// Set is a sharded set: a Map with empty values.
type Set[K comparable] struct {
	m *Map[K, struct{}]
}

// NewSet creates a sharded set.
func NewSet[K comparable](sys *core.System, name string, opts Options) (*Set[K], error) {
	m, err := NewMap[K, struct{}](sys, name, opts)
	if err != nil {
		return nil, err
	}
	return &Set[K]{m: m}, nil
}

// Add inserts a key; bytes is its accounted size.
func (s *Set[K]) Add(p *sim.Proc, from cluster.MachineID, key K, bytes int64) error {
	return s.m.Put(p, from, key, struct{}{}, bytes)
}

// Contains reports membership.
func (s *Set[K]) Contains(p *sim.Proc, from cluster.MachineID, key K) (bool, error) {
	return s.m.Contains(p, from, key)
}

// Remove deletes a key.
func (s *Set[K]) Remove(p *sim.Proc, from cluster.MachineID, key K) error {
	return s.m.Delete(p, from, key)
}

// Len returns the member count.
func (s *Set[K]) Len() int64 { return s.m.Len() }

// NumShards returns the shard count.
func (s *Set[K]) NumShards() int { return s.m.NumShards() }

// Adapt implements core.Adaptive.
func (s *Set[K]) Adapt(p *sim.Proc) { s.m.Adapt(p) }

// Close destroys the set.
func (s *Set[K]) Close() { s.m.Close() }
