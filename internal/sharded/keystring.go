package sharded

import "fmt"

// keyString produces a canonical string form of a comparable key for
// hashing. Common key types avoid reflection; everything else falls
// back to fmt.
func keyString[K comparable](k K) string {
	switch v := any(k).(type) {
	case string:
		return v
	case int:
		return itoa(int64(v))
	case int32:
		return itoa(int64(v))
	case int64:
		return itoa(v)
	case uint64:
		return utoa(v)
	case uint32:
		return utoa(uint64(v))
	default:
		return fmt.Sprint(k)
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + utoa(uint64(-v))
	}
	return utoa(uint64(v))
}

func utoa(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(buf[i:])
}
