// Package proclet implements the Nu substrate Quicksand builds on:
// logical processes decomposed into proclets — granular, independently
// schedulable units, each with a heap for state and threads for
// computation, exposing an object-oriented method-invocation interface
// and supporting live migration between machines in well under a
// millisecond for small state (Ruan et al., NSDI '23).
//
// The runtime provides location transparency: local invocations cost a
// function call, remote ones an RPC, and callers never name machines.
// A directory service tracks authoritative proclet locations; each
// machine keeps a location cache that is lazily invalidated when an
// invocation chases a stale entry.
package proclet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// ID identifies a proclet. IDs are never reused. Zero means "no
// proclet" (external client).
type ID int64

// Msg is a method argument or result: a payload passed by reference
// plus the byte size charged when it crosses the network.
type Msg = simnet.Message

// Errors returned by the proclet runtime.
var (
	ErrNotFound  = errors.New("proclet: no such proclet")
	ErrDead      = errors.New("proclet: proclet destroyed")
	ErrNoMethod  = errors.New("proclet: no such method")
	ErrMoved     = errors.New("proclet: proclet moved")
	ErrMigrating = errors.New("proclet: migration already in progress")
	ErrRetries   = errors.New("proclet: invocation retries exhausted")
	ErrCrashed   = errors.New("proclet: hosting machine crashed")
	// ErrUnavailable means the target proclet exists but temporarily
	// refuses to serve — e.g. a replicated primary whose serving lease
	// lapsed during a partition, or one deposed mid-request by a
	// failover. It is retryable: the caller backs off and re-routes,
	// landing on the promoted replica once the directory updates.
	ErrUnavailable = errors.New("proclet: proclet temporarily unavailable")
)

// State is a proclet's lifecycle state.
type State int

// Proclet lifecycle states.
const (
	StateRunning State = iota
	StateMigrating
	StateDead
	// StateOrphaned means the hosting machine crashed out from under the
	// proclet: its heap contents are gone and it serves nothing until
	// recovery Restores it onto a live machine (or Abandons it).
	StateOrphaned
)

func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateMigrating:
		return "migrating"
	case StateDead:
		return "dead"
	case StateOrphaned:
		return "orphaned"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Method is a proclet method. It runs in a simulated process on the
// proclet's machine and may block: sleep, compute, or call other
// proclets through the context.
type Method func(ctx *Ctx, arg Msg) (Msg, error)

// FastMethod is a proclet method that never blocks: no sleeping, no
// compute, no locks, no nested calls. Remote invocations of a fast
// method are served inline at the instant the request is delivered —
// no handler process, no goroutine handoff, no Ctx allocation — via
// simnet's fast-dispatch path; local invocations skip the Ctx as well.
// Pure state reads and writes (directory lookups, memory-proclet
// get/put) belong here.
type FastMethod func(arg Msg) (Msg, error)

// Proclet is one migratable unit: a heap (byte-accounted state plus an
// arbitrary Go value in Data) and threads.
type Proclet struct {
	id      ID
	name    string
	rt      *Runtime
	machine cluster.MachineID
	state   State

	// allocEpoch is the hosting machine's crash epoch at the time the
	// heap was charged to it. A mismatch means the machine crashed since
	// (wiping the allocation), so the heap must not be freed against it.
	allocEpoch uint64

	heapBytes   int64
	methods     map[string]Method
	fastMethods map[string]FastMethod

	// Data holds the proclet's actual structure state (shard contents,
	// task queues). It travels with the proclet on migration; its
	// simulated size is heapBytes.
	Data any

	active    int      // running method invocations
	drained   sim.Cond // signaled when active returns to zero
	unblocked sim.Cond // signaled when a migration completes

	// Post-copy migration state (see postcopy.go).
	lazyWindow bool     // heap not yet resident at pr.machine
	residentAt sim.Time // when the last post-copy window closed

	nextThread int64
	tasks      map[*cluster.Task]struct{} // outstanding thread compute

	commBytes map[ID]int64 // affinity: bytes exchanged per peer proclet
	invokes   metrics.Counter
}

// ID returns the proclet's identifier.
func (pr *Proclet) ID() ID { return pr.id }

// Name returns the proclet's human-readable name.
func (pr *Proclet) Name() string { return pr.name }

// Location returns the machine currently hosting the proclet.
func (pr *Proclet) Location() cluster.MachineID { return pr.machine }

// State returns the proclet's lifecycle state.
func (pr *Proclet) State() State { return pr.state }

// HeapBytes returns the proclet's accounted state size.
func (pr *Proclet) HeapBytes() int64 { return pr.heapBytes }

// Invocations returns the number of method invocations executed.
func (pr *Proclet) Invocations() int64 { return pr.invokes.Value() }

// CommBytes returns bytes exchanged with each peer proclet since the
// last ResetComm (the scheduler's affinity signal). Not a copy.
func (pr *Proclet) CommBytes() map[ID]int64 { return pr.commBytes }

// ResetComm clears the affinity counters.
func (pr *Proclet) ResetComm() { pr.commBytes = make(map[ID]int64) }

// Handle registers a method. Registration is not allowed after the
// proclet has started serving (no enforcement; callers register at
// construction time).
func (pr *Proclet) Handle(method string, fn Method) {
	if _, dup := pr.methods[method]; dup {
		panic(fmt.Sprintf("proclet: duplicate method %q on %s", method, pr.name))
	}
	if _, dup := pr.fastMethods[method]; dup {
		panic(fmt.Sprintf("proclet: method %q on %s already registered as fast", method, pr.name))
	}
	pr.methods[method] = fn
}

// HandleFast registers a non-blocking method served on the inline
// dispatch path (see FastMethod). A method name is either fast or
// blocking, not both; registering it in both tables panics.
func (pr *Proclet) HandleFast(method string, fn FastMethod) {
	if _, dup := pr.fastMethods[method]; dup {
		panic(fmt.Sprintf("proclet: duplicate fast method %q on %s", method, pr.name))
	}
	if _, dup := pr.methods[method]; dup {
		panic(fmt.Sprintf("proclet: method %q on %s already registered as blocking", method, pr.name))
	}
	if pr.fastMethods == nil {
		pr.fastMethods = make(map[string]FastMethod)
	}
	pr.fastMethods[method] = fn
}

// HandleWithFallback registers the same method name on both dispatch
// tables: fast serves the common case inline, and may decline any
// individual invocation by returning simnet.ErrWouldBlock, which
// re-dispatches that invocation to blocking on a handler process. This
// is how a method stays on the zero-overhead inline path in one
// configuration (an unreplicated memory-proclet write) while paying for
// a blocking protocol in another (the same write shipping a replication
// record before acking).
func (pr *Proclet) HandleWithFallback(method string, fast FastMethod, blocking Method) {
	if _, dup := pr.fastMethods[method]; dup {
		panic(fmt.Sprintf("proclet: duplicate fast method %q on %s", method, pr.name))
	}
	if _, dup := pr.methods[method]; dup {
		panic(fmt.Sprintf("proclet: duplicate method %q on %s", method, pr.name))
	}
	if pr.fastMethods == nil {
		pr.fastMethods = make(map[string]FastMethod)
	}
	pr.fastMethods[method] = fast
	pr.methods[method] = blocking
}

// GrowHeap adjusts the proclet's accounted state size by delta bytes
// (negative shrinks), charging the hosting machine's memory. It fails
// with cluster.ErrNoMemory when the machine cannot hold the growth.
func (pr *Proclet) GrowHeap(delta int64) error {
	if pr.state == StateDead {
		return ErrDead
	}
	if pr.state == StateOrphaned {
		return ErrCrashed
	}
	m := pr.rt.Cluster.Machine(pr.machine)
	if delta >= 0 {
		if err := m.AllocMem(delta); err != nil {
			return err
		}
	} else {
		m.FreeMem(-delta)
	}
	pr.heapBytes += delta
	if pr.heapBytes < 0 {
		panic(fmt.Sprintf("proclet: negative heap on %s", pr.name))
	}
	return nil
}

// Call invokes a method on another proclet from this one, recording
// affinity and routing from this proclet's current machine.
func (pr *Proclet) Call(p *sim.Proc, target ID, method string, arg Msg) (Msg, error) {
	return pr.rt.Invoke(p, pr.machine, pr.id, target, method, arg)
}

// Ctx is passed to every method invocation. It is valid only for the
// duration of the invocation — the runtime recycles Ctx structs, so
// methods must not retain one past their return.
type Ctx struct {
	// Proc is the simulated process executing the invocation.
	Proc *sim.Proc
	// Self is the proclet whose method is running.
	Self *Proclet
	// From identifies the calling proclet (0 for external clients).
	From ID
}

// Machine returns the machine hosting the proclet right now.
func (c *Ctx) Machine() *cluster.Machine {
	return c.Self.rt.Cluster.Machine(c.Self.machine)
}

// Compute executes d of single-core CPU work on the proclet's machine.
// Unlike thread compute, invocation compute is not migratable: the
// migration protocol drains invocations first, so methods should keep
// their compute slices short.
func (c *Ctx) Compute(d time.Duration) {
	c.Machine().Exec(c.Proc, d)
}

// Call invokes a method on another proclet on behalf of Self.
func (c *Ctx) Call(target ID, method string, arg Msg) (Msg, error) {
	return c.Self.Call(c.Proc, target, method, arg)
}

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.Self.rt }

// Thread is a proclet thread: long-running computation that belongs to
// the proclet and follows it across migrations. When the proclet
// migrates, in-flight Compute work is suspended and its remainder
// resumes on the destination machine — the simulator's analogue of Nu
// migrating thread stacks.
type Thread struct {
	pr   *Proclet
	proc *sim.Proc
	base string // thread name as given to SpawnThread
	idx  int64  // per-proclet thread ordinal
}

// SpawnThread starts fn on a new thread of the proclet. The thread's
// full process name is formatted lazily (only if observed, e.g. on
// panic), so thread-heavy workloads pay no per-spawn Sprintf.
func (pr *Proclet) SpawnThread(name string, fn func(t *Thread)) *Thread {
	pr.nextThread++
	t := &Thread{pr: pr, base: name, idx: pr.nextThread}
	t.proc = pr.rt.k.SpawnLazy(t.procName, func(p *sim.Proc) {
		t.proc = p
		fn(t)
	})
	return t
}

func (t *Thread) procName() string {
	return fmt.Sprintf("%s/%s-%d", t.pr.name, t.base, t.idx)
}

// Proc returns the thread's simulated process.
func (t *Thread) Proc() *sim.Proc { return t.proc }

// Proclet returns the owning proclet.
func (t *Thread) Proclet() *Proclet { return t.pr }

// Sleep suspends the thread for virtual duration d.
func (t *Thread) Sleep(d time.Duration) { t.proc.Sleep(d) }

// Compute executes d of single-core CPU work on whichever machine hosts
// the proclet, following it across migrations: if the proclet migrates
// mid-compute, the remaining work resumes on the new machine.
func (t *Thread) Compute(d time.Duration) {
	pr := t.pr
	for d > 0 {
		switch pr.state {
		case StateDead:
			return
		case StateMigrating, StateOrphaned:
			// Suspended: a migration commit or a crash-recovery Restore
			// resumes the remainder on the proclet's new machine.
			pr.unblocked.Wait(t.proc)
			continue
		}
		m := pr.rt.Cluster.Machine(pr.machine)
		task := m.Submit(d)
		pr.tasks[task] = struct{}{}
		canceled, rem := task.Wait(t.proc)
		delete(pr.tasks, task)
		if !canceled {
			return
		}
		d = rem
	}
}

// Call invokes a method on another proclet on behalf of this thread's
// proclet.
func (t *Thread) Call(target ID, method string, arg Msg) (Msg, error) {
	return t.pr.Call(t.proc, target, method, arg)
}
