package proclet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// testEnv builds a 2-machine cluster with simple, round-number costs:
// 1 GB/s NIC, 10 us latency, zero per-message/RPC overhead.
func testEnv(t *testing.T, machines int) (*sim.Kernel, *cluster.Cluster, *Runtime) {
	t.Helper()
	k := sim.NewKernel(1)
	netCfg := simnet.Config{
		Latency:   10 * time.Microsecond,
		Bandwidth: 1_000_000_000,
	}
	c := cluster.New(k, netCfg)
	for i := 0; i < machines; i++ {
		c.AddMachine(cluster.MachineConfig{Cores: 8, MemBytes: 1 << 30})
	}
	cfg := Config{
		MigrationFixedOverhead: 100 * time.Microsecond,
		MigrationPerMiB:        0,
		DirectoryLookup:        5 * time.Microsecond,
		LocalInvokeOverhead:    100 * time.Nanosecond,
		MaxInvokeRetries:       16,
		LazyRemotePenalty:      4 * time.Microsecond,
	}
	rt := NewRuntime(c, cfg, trace.New())
	return k, c, rt
}

func TestSpawnAccountsMemory(t *testing.T) {
	_, c, rt := testEnv(t, 2)
	pr, err := rt.Spawn("mem-0", 0, 1<<20)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if pr.Location() != 0 || pr.HeapBytes() != 1<<20 {
		t.Errorf("loc=%d heap=%d", pr.Location(), pr.HeapBytes())
	}
	if c.Machine(0).MemUsed() != 1<<20 {
		t.Errorf("machine mem = %d, want 1MiB", c.Machine(0).MemUsed())
	}
	if rt.Lookup(pr.ID()) != pr {
		t.Error("Lookup failed")
	}
}

func TestSpawnRejectsOversize(t *testing.T) {
	_, _, rt := testEnv(t, 1)
	if _, err := rt.Spawn("big", 0, 2<<30); !errors.Is(err, cluster.ErrNoMemory) {
		t.Errorf("err = %v, want ErrNoMemory", err)
	}
}

func TestLocalInvoke(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("counter", 0, 1024)
	count := 0
	pr.Handle("inc", func(ctx *Ctx, arg Msg) (Msg, error) {
		count++
		return Msg{Payload: count}, nil
	})
	var elapsed time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		res, err := rt.Invoke(p, 0, 0, pr.ID(), "inc", Msg{})
		if err != nil {
			t.Errorf("Invoke: %v", err)
		}
		if res.Payload != 1 {
			t.Errorf("result = %v, want 1", res.Payload)
		}
		elapsed = p.Now().Sub(start)
	})
	k.Run()
	// Local path: directory lookup (5us, cold cache) + 100ns dispatch.
	want := 5*time.Microsecond + 100*time.Nanosecond
	if elapsed != want {
		t.Errorf("local invoke took %v, want %v", elapsed, want)
	}
	if rt.LocalInvokes.Value() != 1 || rt.RemoteInvokes.Value() != 0 {
		t.Errorf("local/remote = %d/%d", rt.LocalInvokes.Value(), rt.RemoteInvokes.Value())
	}
}

func TestRemoteInvoke(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 1, 1024)
	pr.Handle("echo", func(ctx *Ctx, arg Msg) (Msg, error) {
		return Msg{Payload: arg.Payload, Bytes: arg.Bytes}, nil
	})
	k.Spawn("client", func(p *sim.Proc) {
		res, err := rt.Invoke(p, 0, 0, pr.ID(), "echo", Msg{Payload: "x", Bytes: 1000})
		if err != nil {
			t.Errorf("Invoke: %v", err)
		}
		if res.Payload != "x" {
			t.Errorf("payload = %v", res.Payload)
		}
		// 2 x 10us latency + 2 x 1us wire must be included.
		if p.Now() < 22*sim.Microsecond {
			t.Errorf("remote invoke finished at %v, too fast", p.Now())
		}
	})
	k.Run()
	if rt.RemoteInvokes.Value() != 1 {
		t.Errorf("RemoteInvokes = %d, want 1", rt.RemoteInvokes.Value())
	}
}

func TestInvokeNoMethod(t *testing.T) {
	k, _, rt := testEnv(t, 1)
	pr, _ := rt.Spawn("svc", 0, 0)
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "missing", Msg{}); !errors.Is(err, ErrNoMethod) {
			t.Errorf("err = %v, want ErrNoMethod", err)
		}
	})
	k.Run()
}

func TestInvokeUnknownProclet(t *testing.T) {
	k, _, rt := testEnv(t, 1)
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, 0, 0, 999, "m", Msg{}); !errors.Is(err, ErrNotFound) {
			t.Errorf("err = %v, want ErrNotFound", err)
		}
	})
	k.Run()
}

func TestMigrateMovesStateAndMemory(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("mover", 0, 10<<20) // 10 MiB
	k.Spawn("ctl", func(p *sim.Proc) {
		if err := rt.Migrate(p, pr.ID(), 1); err != nil {
			t.Errorf("Migrate: %v", err)
		}
		// 10 MiB at 1 GB/s ~ 10.49ms + 100us fixed + 10us latency.
		if pr.Location() != 1 {
			t.Errorf("location = %d, want 1", pr.Location())
		}
	})
	k.Run()
	if c.Machine(0).MemUsed() != 0 {
		t.Errorf("src mem = %d, want 0", c.Machine(0).MemUsed())
	}
	if c.Machine(1).MemUsed() != 10<<20 {
		t.Errorf("dst mem = %d, want 10MiB", c.Machine(1).MemUsed())
	}
	if rt.Migrations.Value() != 1 {
		t.Errorf("Migrations = %d", rt.Migrations.Value())
	}
	lat := rt.MigrationLatency.Mean()
	if lat < 0.010 || lat > 0.012 {
		t.Errorf("migration latency = %vs, want ~10.6ms", lat)
	}
}

func TestMigrateSmallProcletSubMillisecond(t *testing.T) {
	// The Nu headline: small-state proclets migrate in well under 1 ms.
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("small", 0, 64<<10) // 64 KiB
	k.Spawn("ctl", func(p *sim.Proc) {
		if err := rt.Migrate(p, pr.ID(), 1); err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	k.Run()
	if lat := rt.MigrationLatency.Mean(); lat >= 0.001 {
		t.Errorf("64KiB migration took %vs, want < 1ms", lat)
	}
}

func TestMigrateRejectedWhenDestinationFull(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	// Fill machine 1.
	if err := c.Machine(1).AllocMem(1 << 30); err != nil {
		t.Fatal(err)
	}
	pr, _ := rt.Spawn("p", 0, 1<<20)
	k.Spawn("ctl", func(p *sim.Proc) {
		if err := rt.Migrate(p, pr.ID(), 1); !errors.Is(err, cluster.ErrNoMemory) {
			t.Errorf("err = %v, want ErrNoMemory", err)
		}
		if pr.Location() != 0 || pr.State() != StateRunning {
			t.Errorf("proclet disturbed: loc=%d state=%v", pr.Location(), pr.State())
		}
	})
	k.Run()
}

func TestInvokeBlocksDuringMigrationThenFollows(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 0, 1<<20)
	served := []cluster.MachineID{}
	pr.Handle("where", func(ctx *Ctx, arg Msg) (Msg, error) {
		served = append(served, ctx.Self.Location())
		return Msg{}, nil
	})
	// Warm the client cache, then migrate, then call again: the stale
	// cache must be chased to the new location.
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "where", Msg{}); err != nil {
			t.Errorf("first invoke: %v", err)
		}
		p.Sleep(time.Millisecond)
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "where", Msg{}); err != nil {
			t.Errorf("second invoke: %v", err)
		}
	})
	k.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(100 * time.Microsecond)
		if err := rt.Migrate(p, pr.ID(), 1); err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	k.Run()
	if len(served) != 2 || served[0] != 0 || served[1] != 1 {
		t.Errorf("served on machines %v, want [0 1]", served)
	}
}

func TestMigrationDrainsActiveInvocations(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 0, 1024)
	pr.Handle("slow", func(ctx *Ctx, arg Msg) (Msg, error) {
		ctx.Proc.Sleep(5 * time.Millisecond)
		return Msg{}, nil
	})
	var migratedAt sim.Time
	k.Spawn("client", func(p *sim.Proc) {
		rt.Invoke(p, 0, 0, pr.ID(), "slow", Msg{})
	})
	k.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // invocation now in flight
		if err := rt.Migrate(p, pr.ID(), 1); err != nil {
			t.Errorf("Migrate: %v", err)
		}
		migratedAt = p.Now()
	})
	k.Run()
	if migratedAt < 5*sim.Millisecond {
		t.Errorf("migration finished at %v, before invocation drained", migratedAt)
	}
}

func TestThreadComputeFollowsMigration(t *testing.T) {
	// A thread with 20ms of work starts on machine 0. At t=5ms the
	// proclet migrates. The remaining 15ms must execute on machine 1,
	// even though machine 0 then goes fully reserved.
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("worker", 0, 64<<10)
	var done sim.Time
	pr.SpawnThread("loop", func(th *Thread) {
		th.Compute(20 * time.Millisecond)
		done = th.Proc().Now()
	})
	k.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		c.Machine(0).SetReserved(8) // old machine becomes useless
		if err := rt.Migrate(p, pr.ID(), 1); err != nil {
			t.Errorf("Migrate: %v", err)
		}
	})
	k.Run()
	if done == 0 {
		t.Fatal("thread never finished")
	}
	// 5ms on m0 + ~0.2ms migration + 15ms on m1 => ~20.2ms; it must not
	// have waited for machine 0's reservation to lift (never does).
	if done > 21*sim.Millisecond {
		t.Errorf("thread finished at %v, want ~20.2ms (compute must follow proclet)", done)
	}
	// Machine 1 must have executed the remainder.
	if c.Machine(1).CoreSeconds < 0.0149 {
		t.Errorf("machine 1 core-seconds = %v, want ~0.015", c.Machine(1).CoreSeconds)
	}
}

func TestDestroyFreesMemoryAndFailsCalls(t *testing.T) {
	k, c, rt := testEnv(t, 1)
	pr, _ := rt.Spawn("tmp", 0, 1<<20)
	pr.Handle("m", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	id := pr.ID()
	if err := rt.Destroy(id); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if c.Machine(0).MemUsed() != 0 {
		t.Errorf("mem = %d after destroy", c.Machine(0).MemUsed())
	}
	if rt.Lookup(id) != nil {
		t.Error("Lookup returns destroyed proclet")
	}
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, 0, 0, id, "m", Msg{}); !errors.Is(err, ErrNotFound) {
			t.Errorf("invoke after destroy: %v, want ErrNotFound", err)
		}
	})
	k.Run()
}

func TestGrowHeapChargesMachine(t *testing.T) {
	_, c, rt := testEnv(t, 1)
	pr, _ := rt.Spawn("grow", 0, 1000)
	if err := pr.GrowHeap(500); err != nil {
		t.Fatalf("GrowHeap: %v", err)
	}
	if pr.HeapBytes() != 1500 || c.Machine(0).MemUsed() != 1500 {
		t.Errorf("heap=%d mem=%d", pr.HeapBytes(), c.Machine(0).MemUsed())
	}
	if err := pr.GrowHeap(-700); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if pr.HeapBytes() != 800 || c.Machine(0).MemUsed() != 800 {
		t.Errorf("after shrink heap=%d mem=%d", pr.HeapBytes(), c.Machine(0).MemUsed())
	}
	if err := pr.GrowHeap(2 << 30); !errors.Is(err, cluster.ErrNoMemory) {
		t.Errorf("oversize grow err = %v", err)
	}
}

func TestAffinityTracking(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	a, _ := rt.Spawn("a", 0, 1024)
	b, _ := rt.Spawn("b", 1, 1024)
	b.Handle("recv", func(ctx *Ctx, arg Msg) (Msg, error) {
		return Msg{Bytes: 200}, nil
	})
	k.Spawn("driver", func(p *sim.Proc) {
		if _, err := a.Call(p, b.ID(), "recv", Msg{Bytes: 300}); err != nil {
			t.Errorf("Call: %v", err)
		}
	})
	k.Run()
	if got := b.CommBytes()[a.ID()]; got != 500 {
		t.Errorf("affinity bytes = %d, want 500", got)
	}
	b.ResetComm()
	if len(b.CommBytes()) != 0 {
		t.Error("ResetComm did not clear")
	}
}

func TestCtxNestedCall(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	front, _ := rt.Spawn("front", 0, 1024)
	back, _ := rt.Spawn("back", 1, 1024)
	back.Handle("add", func(ctx *Ctx, arg Msg) (Msg, error) {
		return Msg{Payload: arg.Payload.(int) + 1}, nil
	})
	front.Handle("relay", func(ctx *Ctx, arg Msg) (Msg, error) {
		return ctx.Call(back.ID(), "add", arg)
	})
	k.Spawn("client", func(p *sim.Proc) {
		res, err := rt.Invoke(p, 0, 0, front.ID(), "relay", Msg{Payload: 41})
		if err != nil {
			t.Errorf("Invoke: %v", err)
		}
		if res.Payload != 42 {
			t.Errorf("result = %v, want 42", res.Payload)
		}
	})
	k.Run()
}

func TestMigrationLatencyScalesWithState(t *testing.T) {
	// Regenerates the shape behind Nu's "a few ms for 10 MiB": latency
	// grows roughly linearly in heap size past the fixed overhead.
	sizes := []int64{1 << 16, 1 << 20, 10 << 20}
	var lats []float64
	for _, size := range sizes {
		k, _, rt := testEnv(t, 2)
		pr, err := rt.Spawn("p", 0, size)
		if err != nil {
			t.Fatal(err)
		}
		k.Spawn("ctl", func(p *sim.Proc) {
			if err := rt.Migrate(p, pr.ID(), 1); err != nil {
				t.Errorf("Migrate: %v", err)
			}
		})
		k.Run()
		lats = append(lats, rt.MigrationLatency.Mean())
	}
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		t.Errorf("latencies not increasing: %v", lats)
	}
	if lats[2] < 8*lats[1] { // 10 MiB should be ~10x the 1 MiB wire time
		t.Errorf("10MiB/1MiB latency ratio = %v, want >= 8", lats[2]/lats[1])
	}
}

func TestTraceRecordsLifecycle(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("traced", 0, 1024)
	k.Spawn("ctl", func(p *sim.Proc) {
		rt.Migrate(p, pr.ID(), 1)
	})
	k.Run()
	rt.Destroy(pr.ID())
	tl := rt.Trace
	if tl.Count(trace.KindSpawn) != 1 || tl.Count(trace.KindMigrate) != 1 || tl.Count(trace.KindDestroy) != 1 {
		t.Errorf("trace counts: spawn=%d migrate=%d destroy=%d",
			tl.Count(trace.KindSpawn), tl.Count(trace.KindMigrate), tl.Count(trace.KindDestroy))
	}
}
