package proclet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestFastMethodLocal: a FastMethod invoked locally skips the Ctx but
// pays the same simulated costs as a blocking method.
func TestFastMethodLocal(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	defer k.Close()
	pr, _ := rt.Spawn("counter", 0, 1024)
	count := 0
	pr.HandleFast("inc", func(arg Msg) (Msg, error) {
		count++
		return Msg{Payload: count}, nil
	})
	var elapsed time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		res, err := rt.Invoke(p, 0, 0, pr.ID(), "inc", Msg{})
		if err != nil {
			t.Errorf("Invoke: %v", err)
		}
		if res.Payload != 1 {
			t.Errorf("result = %v, want 1", res.Payload)
		}
		elapsed = p.Now().Sub(start)
	})
	k.Run()
	// Identical virtual cost to the blocking local path: directory
	// lookup (cold cache) + dispatch overhead.
	want := 5*time.Microsecond + 100*time.Nanosecond
	if elapsed != want {
		t.Errorf("local fast invoke took %v, want %v", elapsed, want)
	}
	if rt.FastInvokes.Value() != 1 {
		t.Errorf("FastInvokes = %d, want 1", rt.FastInvokes.Value())
	}
	if pr.Invocations() != 1 {
		t.Errorf("Invocations = %d, want 1", pr.Invocations())
	}
}

// TestFastMethodRemoteInline: a remote invocation of a FastMethod is
// served inline by the fabric (no handler process) while still paying
// full wire costs.
func TestFastMethodRemoteInline(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	defer k.Close()
	pr, _ := rt.Spawn("svc", 1, 1024)
	pr.HandleFast("echo", func(arg Msg) (Msg, error) {
		return Msg{Payload: arg.Payload, Bytes: arg.Bytes}, nil
	})
	k.Spawn("client", func(p *sim.Proc) {
		res, err := rt.Invoke(p, 0, 0, pr.ID(), "echo", Msg{Payload: "x", Bytes: 1000})
		if err != nil {
			t.Errorf("Invoke: %v", err)
		}
		if res.Payload != "x" {
			t.Errorf("payload = %v", res.Payload)
		}
		// 2 x 10us latency + 2 x 1us wire must still be charged.
		if p.Now() < 22*sim.Microsecond {
			t.Errorf("remote fast invoke finished at %v, too fast", p.Now())
		}
	})
	k.Run()
	if rt.FastInvokes.Value() != 1 || rt.RemoteInvokes.Value() != 1 {
		t.Errorf("fast/remote = %d/%d, want 1/1", rt.FastInvokes.Value(), rt.RemoteInvokes.Value())
	}
	if c.Fabric.FastCalls.Value() != 1 {
		t.Errorf("fabric FastCalls = %d, want 1 (served inline)", c.Fabric.FastCalls.Value())
	}
}

// TestFastMethodDuringLazyWindow: while a post-copy window is open the
// inline path must decline (the remote-access penalty is a sleep), and
// invocations served through the normal path must pay that penalty.
func TestFastMethodDuringLazyWindow(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	defer k.Close()
	pr, _ := rt.Spawn("svc", 0, 16<<20)
	pr.HandleFast("get", func(arg Msg) (Msg, error) {
		return Msg{Payload: "v"}, nil
	})
	k.Spawn("ctl", func(p *sim.Proc) {
		if err := rt.MigrateLazy(p, pr.ID(), 1); err != nil {
			t.Errorf("MigrateLazy: %v", err)
		}
		if pr.Resident() {
			t.Fatal("proclet already resident; lazy window too short for test")
		}
		// The inline dispatch path must refuse to serve during the
		// window rather than skip the penalty.
		if _, err := rt.execFastOn(1, &invokeReq{Target: pr.ID(), Method: "get"}); !errors.Is(err, simnet.ErrWouldBlock) {
			t.Errorf("execFastOn during lazy window: err = %v, want ErrWouldBlock", err)
		}
		// An invocation at the proclet's new home pays the penalty on
		// the normal path. (Remote requests physically queue behind the
		// heap stream on the destination NIC, so they land only after
		// residency — per-NIC FIFO semantics.)
		start := p.Now()
		res, err := rt.Invoke(p, 1, 0, pr.ID(), "get", Msg{})
		if err != nil || res.Payload != "v" {
			t.Errorf("invoke during lazy window: res=%v err=%v", res.Payload, err)
		}
		if rt.LazyPenalties.Value() != 1 {
			t.Errorf("LazyPenalties = %d, want 1", rt.LazyPenalties.Value())
		}
		if elapsed := p.Now().Sub(start); elapsed < rt.cfg.LazyRemotePenalty {
			t.Errorf("lazy-window invoke took %v, want >= %v penalty", elapsed, rt.cfg.LazyRemotePenalty)
		}
	})
	k.Run()
}

// TestFastMethodChasesMigration: a stale location cache still resolves
// for fast methods — the inline path reports ErrMoved and routing
// retries at the new home.
func TestFastMethodChasesMigration(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	defer k.Close()
	pr, _ := rt.Spawn("svc", 1, 1024)
	pr.HandleFast("where", func(arg Msg) (Msg, error) {
		return Msg{Payload: int(pr.Location())}, nil
	})
	k.Spawn("driver", func(p *sim.Proc) {
		// Warm machine 0's cache with location 1.
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "where", Msg{}); err != nil {
			t.Errorf("warmup: %v", err)
		}
		if err := rt.Migrate(p, pr.ID(), 0); err != nil {
			t.Errorf("Migrate: %v", err)
		}
		// The cache on machine 0 still says 1 — the fast path at node 1
		// must answer ErrMoved so routing retries locally.
		res, err := rt.Invoke(p, 0, 0, pr.ID(), "where", Msg{})
		if err != nil {
			t.Errorf("post-migration invoke: %v", err)
		}
		if res.Payload != 0 {
			t.Errorf("served at machine %v, want 0", res.Payload)
		}
	})
	k.Run()
}

// TestHandleFastDuplicatePanics: registering a method as both fast and
// blocking is a programming error.
func TestHandleFastDuplicatePanics(t *testing.T) {
	k, _, rt := testEnv(t, 1)
	defer k.Close()
	pr, _ := rt.Spawn("svc", 0, 1024)
	pr.HandleFast("m", func(arg Msg) (Msg, error) { return Msg{}, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dual registration")
		}
	}()
	pr.Handle("m", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
}
