package proclet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Failure injection: the runtime must degrade cleanly when machines
// drop off the fabric, and recover when they return.

func TestInvokeFailsWhenTargetDown(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 1, 1024)
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	c.Node(1).SetDown(true)
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "ping", Msg{}); !errors.Is(err, simnet.ErrNodeDown) {
			t.Errorf("err = %v, want ErrNodeDown", err)
		}
		// Recovery: the node comes back and service resumes.
		c.Node(1).SetDown(false)
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "ping", Msg{}); err != nil {
			t.Errorf("invoke after recovery: %v", err)
		}
	})
	k.Run()
}

func TestInvokeFailsWhenSourceDown(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 1, 1024)
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	c.Node(0).SetDown(true)
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "ping", Msg{}); !errors.Is(err, simnet.ErrNodeDown) {
			t.Errorf("err = %v, want ErrNodeDown (source partitioned)", err)
		}
	})
	k.Run()
}

func TestMigrationRollsBackWhenDestinationDown(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 0, 1<<20)
	served := 0
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) {
		served++
		return Msg{}, nil
	})
	c.Node(1).SetDown(true)
	k.Spawn("ctl", func(p *sim.Proc) {
		err := rt.Migrate(p, pr.ID(), 1)
		if !errors.Is(err, simnet.ErrNodeDown) {
			t.Errorf("Migrate err = %v, want ErrNodeDown", err)
		}
		// Rollback: proclet still on machine 0, still serving, and the
		// destination's reserved memory was released.
		if pr.Location() != 0 || pr.State() != StateRunning {
			t.Errorf("proclet loc=%d state=%v after failed migration", pr.Location(), pr.State())
		}
		if c.Machine(1).MemUsed() != 0 {
			t.Errorf("destination memory leaked: %d", c.Machine(1).MemUsed())
		}
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "ping", Msg{}); err != nil {
			t.Errorf("invoke after failed migration: %v", err)
		}
	})
	k.Run()
	if served != 1 {
		t.Errorf("served = %d, want 1", served)
	}
}

func TestInvocationsBlockedDuringFailedMigrationResume(t *testing.T) {
	// Invocations that arrive during a migration that ultimately fails
	// must still complete against the rolled-back proclet.
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 0, 20<<20) // 20 MiB: migration takes ~20ms
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	var invokeErr error
	var invokeDone sim.Time
	k.Spawn("ctl", func(p *sim.Proc) {
		// Partition strikes mid-transfer.
		k.After(5*time.Millisecond, func() { c.Node(1).SetDown(true) })
		rt.Migrate(p, pr.ID(), 1) // will fail when the transfer... completes? The
		// transfer reserves NIC time up front, so the partition check
		// happens at Transfer start; this migration may succeed if the
		// transfer started before the partition. Either way the
		// blocked invocation below must complete.
		c.Node(1).SetDown(false)
	})
	k.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // arrive mid-migration
		_, invokeErr = rt.Invoke(p, 0, 0, pr.ID(), "ping", Msg{})
		invokeDone = p.Now()
	})
	k.Run()
	if invokeErr != nil {
		t.Errorf("blocked invocation failed: %v", invokeErr)
	}
	if invokeDone == 0 {
		t.Error("blocked invocation never completed")
	}
}

func TestRuntimeSurvivesManyFailedMigrations(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 0, 1<<20)
	c.Node(1).SetDown(true)
	k.Spawn("ctl", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			rt.Migrate(p, pr.ID(), 1)
			p.Sleep(time.Millisecond)
		}
	})
	k.Run()
	if got := c.Machine(1).MemUsed(); got != 0 {
		t.Errorf("retries leaked %d bytes on the dead destination", got)
	}
	if pr.Location() != 0 || pr.State() != StateRunning {
		t.Errorf("proclet corrupted: loc=%d state=%v", pr.Location(), pr.State())
	}
}

func TestThreadSurvivesProcletDestroy(t *testing.T) {
	// Destroying a proclet cancels its thread compute; the thread's
	// Compute returns (without completing) rather than hanging.
	k, _, rt := testEnv(t, 1)
	pr, _ := rt.Spawn("doomed", 0, 1024)
	finished := false
	pr.SpawnThread("loop", func(th *Thread) {
		th.Compute(time.Hour)
		finished = true
	})
	k.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		if err := rt.Destroy(pr.ID()); err != nil {
			t.Errorf("Destroy: %v", err)
		}
	})
	k.Run()
	if !finished {
		t.Error("thread hung after proclet destroy")
	}
	if k.Blocked() != 0 {
		t.Errorf("Blocked() = %d, want 0", k.Blocked())
	}
}

func TestMachineOverloadDoesNotCorruptAccounting(t *testing.T) {
	// A machine whose capacity is permanently reserved still accounts
	// memory and tasks correctly; canceled work returns cleanly.
	k := sim.NewKernel(1)
	c := cluster.New(k, simnet.DefaultConfig())
	m := c.AddMachine(cluster.MachineConfig{Cores: 2, MemBytes: 1 << 20})
	m.SetReserved(2)
	var tasks []*cluster.Task
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *sim.Proc) {
			task := m.Submit(time.Millisecond)
			tasks = append(tasks, task)
			task.Wait(p)
		})
	}
	k.Schedule(10*sim.Millisecond, func() {
		for _, task := range tasks {
			task.Cancel()
		}
	})
	k.Run()
	if m.Runnable() != 0 {
		t.Errorf("Runnable = %d after cancel-all", m.Runnable())
	}
	if m.CoreSeconds != 0 {
		t.Errorf("CoreSeconds = %v with zero capacity, want 0", m.CoreSeconds)
	}
}
