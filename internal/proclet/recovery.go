package proclet

// Crash recovery: when a machine fail-stops (cluster.Machine.Crash),
// every proclet resident there is orphaned — detached from the machine,
// its heap contents gone, serving nothing. A recovery controller (the
// core scheduler) then either Restores each orphan onto a live machine
// (re-placing compute, reconstructing memory contents via a rebuild
// hook) or Abandons it when the cluster has no capacity left.
//
// Routing during the outage: the directory keeps mapping an orphan to
// its dead machine, so invocations fail fast with simnet.ErrNodeDown
// and retry with backoff until Restore updates the directory (or
// Abandon removes the entry, surfacing ErrNotFound).

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// freeHeap releases pr's heap charge against its hosting machine — but
// only if that allocation still exists (the machine has not crashed
// since it was made; a crash wipes all allocations and bumps the epoch).
func (rt *Runtime) freeHeap(pr *Proclet) {
	m := rt.Cluster.Machine(pr.machine)
	if m != nil && m.Epoch() == pr.allocEpoch {
		m.FreeMem(pr.heapBytes)
	}
}

// ResetHeap zeroes the proclet's accounted state size without touching
// machine accounting. Legal only while orphaned: the crashed machine's
// copy is already gone, and recovery re-grows the heap as contents are
// rebuilt (replication, replay).
func (pr *Proclet) ResetHeap() {
	if pr.state != StateOrphaned {
		panic(fmt.Sprintf("proclet: ResetHeap on %s in state %v", pr.name, pr.state))
	}
	pr.heapBytes = 0
}

// CrashMachine detaches every proclet resident on mid after the machine
// fail-stopped: each becomes StateOrphaned, its outstanding thread
// compute is canceled (Machine.Crash usually already retired it), and
// waiters are woken so they re-check state. Returns the orphans sorted
// by ID so recovery is deterministic.
func (rt *Runtime) CrashMachine(mid cluster.MachineID) []*Proclet {
	tbl := rt.local[mid]
	ids := make([]ID, 0, len(tbl))
	for id := range tbl {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	orphans := make([]*Proclet, 0, len(ids))
	for _, id := range ids {
		pr := tbl[id]
		delete(tbl, id)
		pr.state = StateOrphaned
		pr.lazyWindow = false // a post-copy window dies with the machine
		for task := range pr.tasks {
			task.Cancel()
		}
		pr.tasks = make(map[*cluster.Task]struct{})
		// Wake suspended threads and migration waiters: they observe
		// StateOrphaned and park for recovery (or abort, for a migration
		// whose source just died).
		pr.unblocked.Broadcast()
		pr.drained.Broadcast()
		rt.Trace.Emitf(rt.k.Now(), trace.KindCrash, pr.name, int(mid), -1,
			"orphaned id=%d heap=%d", id, pr.heapBytes)
		orphans = append(orphans, pr)
	}
	return orphans
}

// Depose detaches a proclet from a machine that is still alive — the
// false-confirmation case: the failure detector confirmed the machine
// dead (it is partitioned from the monitor) but it never crashed. The
// proclet's heap charge is released and it becomes StateOrphaned so a
// failover can Restore it elsewhere; invocations arriving at the old
// machine find no local entry and chase ErrMoved to the new location.
// Safe only because the lease protocol already stopped the old primary
// from serving: its lease lapsed strictly before the confirmation.
func (rt *Runtime) Depose(pr *Proclet) error {
	if pr.state != StateRunning {
		return fmt.Errorf("proclet: Depose on %s in state %v", pr.name, pr.state)
	}
	mid := pr.machine
	rt.freeHeap(pr)
	pr.heapBytes = 0
	delete(rt.local[mid], pr.id)
	pr.state = StateOrphaned
	pr.lazyWindow = false
	for task := range pr.tasks {
		task.Cancel()
	}
	pr.tasks = make(map[*cluster.Task]struct{})
	pr.unblocked.Broadcast()
	pr.drained.Broadcast()
	rt.Trace.Emitf(rt.k.Now(), trace.KindRepl, pr.name, int(mid), -1,
		"deposed id=%d (false confirmation)", pr.id)
	return nil
}

// Restore places an orphaned proclet onto live machine `to`, charging
// its accounted heap size there and resuming its threads. Memory
// contents are NOT restored — the proclet's state is whatever its Data
// holds; callers needing reconstruction (memory proclets) reset the
// heap and rebuild after Restore returns. On failure the proclet stays
// orphaned and the caller may try another machine.
func (rt *Runtime) Restore(p *sim.Proc, pr *Proclet, to cluster.MachineID) error {
	if pr.state != StateOrphaned {
		return fmt.Errorf("proclet: Restore on %s in state %v", pr.name, pr.state)
	}
	dst := rt.Cluster.Machine(to)
	if dst == nil {
		return fmt.Errorf("%w: machine %d", ErrNotFound, to)
	}
	if dst.Down() {
		return fmt.Errorf("%w: restore destination %d", simnet.ErrNodeDown, to)
	}
	if err := dst.AllocMem(pr.heapBytes); err != nil {
		return err
	}
	epoch := dst.Epoch()
	from := pr.machine

	// Control-plane cost of the re-placement: directory update and page
	// table setup, same fixed overhead as a migration (no copy).
	p.Sleep(rt.cfg.MigrationFixedOverhead)
	if dst.Down() || dst.Epoch() != epoch {
		// The chosen machine died during the re-placement; its memory —
		// including our reservation — is gone. Still orphaned.
		return fmt.Errorf("%w: restore destination %d", simnet.ErrNodeDown, to)
	}

	pr.machine = to
	pr.allocEpoch = epoch
	rt.local[to][pr.id] = pr
	rt.directory[pr.id] = to
	rt.caches[to][pr.id] = to
	pr.state = StateRunning
	pr.unblocked.Broadcast()
	rt.Trace.Emitf(rt.k.Now(), trace.KindRecover, pr.name, int(from), int(to),
		"restored id=%d heap=%d", pr.id, pr.heapBytes)
	return nil
}

// Abandon gives up on an orphaned proclet (load shedding: no live
// machine can hold it). It becomes dead; pending and future invocations
// resolve with ErrNotFound once the directory entry is removed.
func (rt *Runtime) Abandon(pr *Proclet) {
	if pr.state != StateOrphaned {
		return
	}
	pr.state = StateDead
	pr.heapBytes = 0
	delete(rt.directory, pr.id)
	pr.unblocked.Broadcast()
	rt.Trace.Emitf(rt.k.Now(), trace.KindDestroy, pr.name, int(pr.machine), -1,
		"shed after crash id=%d", pr.id)
}
