package proclet

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Post-copy ("lazy") migration — the paper's §5 CXL direction: with
// coherent remote memory, a proclet can *move* before its heap does.
// MigrateLazy commits the location switch after only the drain and
// pinning pause (a blackout independent of state size); the heap then
// streams over in the background while invocations at the new home pay
// a remote-access penalty for not-yet-resident state.
//
// Compared to Migrate (pre-copy):
//
//	            blackout              post-move invocation cost
//	pre-copy    O(state/bandwidth)    none
//	post-copy   O(1)                  LazyRemotePenalty until resident
//
// The heap stays charged to the source machine until the background
// copy lands (the bytes physically live there), with the destination's
// share reserved up front so the copy cannot strand the proclet.

// Resident reports whether the proclet's heap is fully local to its
// current machine (false during a post-copy window).
func (pr *Proclet) Resident() bool { return !pr.lazyWindow }

// MigrateLazy post-copy-migrates the proclet: the location flips after
// draining in-flight invocations and paying only the fixed pinning
// overhead; the heap streams over in the background. Further
// migrations are rejected with ErrMigrating until the proclet is
// resident.
func (rt *Runtime) MigrateLazy(p *sim.Proc, id ID, to cluster.MachineID) error {
	pr := rt.Lookup(id)
	if pr == nil {
		return ErrNotFound
	}
	if pr.state == StateMigrating || pr.lazyWindow {
		return ErrMigrating
	}
	from := pr.machine
	if from == to {
		return nil
	}
	dst := rt.Cluster.Machine(to)
	if dst == nil {
		return ErrNotFound
	}
	// Reserve the destination's share up front; the source keeps its
	// charge until the copy completes (the bytes live there).
	if err := dst.AllocMem(pr.heapBytes); err != nil {
		return err
	}

	var sp, frz obs.SpanID
	if rt.obs != nil {
		sp = rt.obs.Start(obs.KindMigrate, pr.name, int(from), 0)
		rt.obs.SetRoute(sp, int(from), int(to))
		rt.obs.SetBytes(sp, pr.heapBytes)
		rt.obs.Str(sp, "mode", "postcopy")
		frz = rt.obs.Start(obs.KindPhase, "freeze", int(from), sp)
	}

	start := rt.k.Now()
	pr.state = StateMigrating
	for task := range pr.tasks {
		task.Cancel()
	}
	pr.tasks = make(map[*cluster.Task]struct{})
	for pr.active > 0 {
		pr.drained.Wait(p)
	}

	// Only the fixed control-plane pause — no per-byte pinning, the
	// pages are not copied during the blackout.
	p.Sleep(rt.cfg.MigrationFixedOverhead)

	// Commit the move.
	delete(rt.local[from], id)
	rt.local[to][id] = pr
	rt.directory[id] = to
	rt.caches[from][id] = to
	rt.caches[to][id] = to
	pr.machine = to
	pr.state = StateRunning
	pr.lazyWindow = true
	pr.unblocked.Broadcast()

	blackout := rt.k.Now().Sub(start)
	rt.MigrationLatency.ObserveDuration(blackout)
	rt.Migrations.Inc()
	rt.Trace.Emitf(rt.k.Now(), trace.KindMigrate, pr.name, int(from), int(to),
		"post-copy blackout=%v bytes=%d", blackout, pr.heapBytes)

	// The migrate span covers only the blackout; the postcopy phase
	// span runs until residence (clamped open if the run ends first).
	var pcp obs.SpanID
	if rt.obs != nil {
		rt.obs.End(frz)
		rt.obs.End(sp)
		pcp = rt.obs.Start(obs.KindPhase, "postcopy", int(to), sp)
		rt.obs.SetRoute(pcp, int(from), int(to))
		rt.obs.SetBytes(pcp, pr.heapBytes)
	}

	// Background copy: stream the heap, then settle the accounting.
	heap := pr.heapBytes
	srcEpoch := rt.Cluster.Machine(from).Epoch()
	rt.k.Spawn("postcopy/"+pr.name, func(bp *sim.Proc) {
		err := rt.Cluster.Fabric.Transfer(bp, simnet.NodeID(from), simnet.NodeID(to), heap)
		// Transient failures (partition, timeout): the proclet stays
		// remote-dependent; retry until the fabric heals. Stop for good
		// if the proclet itself is gone — a crash on either end orphaned
		// or killed it, and recovery owns the accounting from there.
		for err != nil {
			if pr.state == StateDead || pr.state == StateOrphaned || !pr.lazyWindow {
				rt.obs.SetErr(pcp, err)
				rt.obs.End(pcp)
				return
			}
			bp.Sleep(time.Millisecond)
			err = rt.Cluster.Fabric.Transfer(bp, simnet.NodeID(from), simnet.NodeID(to), heap)
		}
		if src := rt.Cluster.Machine(from); src.Epoch() == srcEpoch {
			src.FreeMem(heap)
		}
		if !pr.lazyWindow {
			rt.obs.End(pcp)
			return // crashed mid-copy; nothing left to settle
		}
		pr.lazyWindow = false
		pr.residentAt = rt.k.Now()
		rt.LazyResidence.ObserveDuration(rt.k.Now().Sub(start))
		rt.Trace.Emitf(rt.k.Now(), trace.KindMigrate, pr.name, int(from), int(to),
			"post-copy resident after %v", rt.k.Now().Sub(start))
		rt.obs.End(pcp)
	})
	return nil
}

// lazyPenalty charges the remote-access cost of an invocation that
// runs during a post-copy window.
func (rt *Runtime) lazyPenalty(p *sim.Proc, pr *Proclet) {
	if pr.lazyWindow && rt.cfg.LazyRemotePenalty > 0 {
		rt.LazyPenalties.Inc()
		p.Sleep(rt.cfg.LazyRemotePenalty)
	}
}
