package proclet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Crash recovery: orphaning, restore, abandonment, and the retry
// backoff that bridges the outage.

func TestBackoffScheduleNoJitter(t *testing.T) {
	tests := []struct {
		name      string
		base, max time.Duration
		retries   []int
		want      []time.Duration
	}{
		{
			name: "exponential-then-cap",
			base: 100 * time.Microsecond, max: 2 * time.Millisecond,
			retries: []int{0, 1, 2, 3, 4, 5, 6},
			want: []time.Duration{
				100 * time.Microsecond, 200 * time.Microsecond,
				400 * time.Microsecond, 800 * time.Microsecond,
				1600 * time.Microsecond, 2 * time.Millisecond,
				2 * time.Millisecond,
			},
		},
		{
			name: "deep-retry-hits-cap",
			base: time.Millisecond, max: 50 * time.Millisecond,
			retries: []int{30, 40, 63},
			want:    []time.Duration{50 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond},
		},
		{
			name: "shift-overflow-clamps-to-cap",
			base: time.Hour, max: 2 * time.Hour,
			retries: []int{25, 29},
			want:    []time.Duration{2 * time.Hour, 2 * time.Hour},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, rt := testEnv(t, 1)
			rt.cfg.RetryBackoffBase = tc.base
			rt.cfg.RetryBackoffMax = tc.max
			rt.cfg.RetryJitter = 0
			for i, r := range tc.retries {
				if got := rt.backoffDelay(r); got != tc.want[i] {
					t.Errorf("backoffDelay(%d) = %v, want %v", r, got, tc.want[i])
				}
			}
		})
	}
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	const jitter = 0.5
	draw := func() []time.Duration {
		_, _, rt := testEnv(t, 1) // testEnv seeds the kernel with 1
		rt.cfg.RetryJitter = jitter
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = rt.backoffDelay(i)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("retry %d: same seed gave %v then %v", i, a[i], b[i])
		}
		// Jittered delay stays within [1-j/2, 1+j/2) of the nominal value.
		_, _, rt := testEnv(t, 1)
		rt.cfg.RetryJitter = 0
		nominal := rt.backoffDelay(i)
		lo := time.Duration(float64(nominal) * (1 - jitter/2))
		hi := time.Duration(float64(nominal) * (1 + jitter/2))
		if a[i] < lo || a[i] > hi {
			t.Errorf("retry %d: jittered %v outside [%v, %v]", i, a[i], lo, hi)
		}
	}
}

// crash fail-stops machine mid: network first, then the machine, then
// the runtime's orphaning pass — the order the fault injector uses.
func crash(c *cluster.Cluster, rt *Runtime, mid cluster.MachineID) []*Proclet {
	c.Node(mid).SetDown(true)
	c.Machine(mid).Crash()
	return rt.CrashMachine(mid)
}

func TestCrashMachineOrphansResidents(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	var prs []*Proclet
	for i := 0; i < 3; i++ {
		pr, err := rt.Spawn("svc", 1, 4096)
		if err != nil {
			t.Fatal(err)
		}
		pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
		prs = append(prs, pr)
	}
	k.Spawn("ctl", func(p *sim.Proc) {
		orphans := crash(c, rt, 1)
		if len(orphans) != 3 {
			t.Fatalf("orphans = %d, want 3", len(orphans))
		}
		for i := 1; i < len(orphans); i++ {
			if orphans[i-1].ID() >= orphans[i].ID() {
				t.Errorf("orphans not sorted by ID: %d before %d", orphans[i-1].ID(), orphans[i].ID())
			}
		}
		for _, pr := range orphans {
			if pr.State() != StateOrphaned {
				t.Errorf("%s state = %v, want orphaned", pr.Name(), pr.State())
			}
		}
		if got := c.Machine(1).MemUsed(); got != 0 {
			t.Errorf("crashed machine MemUsed = %d, want 0", got)
		}
		// Invocations fail with ErrNodeDown (wrapped in ErrRetries after
		// the retry budget) — never hang, never silently succeed.
		if _, err := rt.Invoke(p, 0, 0, prs[0].ID(), "ping", Msg{}); !errors.Is(err, simnet.ErrNodeDown) {
			t.Errorf("invoke on orphan: err = %v, want ErrNodeDown", err)
		}
	})
	k.Run()
}

func TestRestoreResumesService(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 1, 4096)
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	k.Spawn("ctl", func(p *sim.Proc) {
		crash(c, rt, 1)
		if err := rt.Restore(p, pr, 0); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if pr.State() != StateRunning || pr.Location() != 0 {
			t.Fatalf("after Restore: state=%v loc=%d", pr.State(), pr.Location())
		}
		if got := c.Machine(0).MemUsed(); got != 4096 {
			t.Errorf("restore target MemUsed = %d, want 4096", got)
		}
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "ping", Msg{}); err != nil {
			t.Errorf("invoke after Restore: %v", err)
		}
	})
	k.Run()
}

func TestRestoreRejectsDownDestination(t *testing.T) {
	k, c, rt := testEnv(t, 3)
	pr, _ := rt.Spawn("svc", 1, 4096)
	k.Spawn("ctl", func(p *sim.Proc) {
		crash(c, rt, 1)
		crash(c, rt, 2)
		if err := rt.Restore(p, pr, 2); !errors.Is(err, simnet.ErrNodeDown) {
			t.Errorf("Restore onto down machine: err = %v, want ErrNodeDown", err)
		}
		if pr.State() != StateOrphaned {
			t.Errorf("state = %v, want still orphaned after failed restore", pr.State())
		}
		// A live machine still works.
		if err := rt.Restore(p, pr, 0); err != nil {
			t.Errorf("Restore onto live machine: %v", err)
		}
	})
	k.Run()
}

func TestAbandonSurfacesNotFound(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 1, 4096)
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	k.Spawn("ctl", func(p *sim.Proc) {
		crash(c, rt, 1)
		rt.Abandon(pr)
		if pr.State() != StateDead {
			t.Errorf("state = %v, want dead", pr.State())
		}
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "ping", Msg{}); !errors.Is(err, ErrNotFound) {
			t.Errorf("invoke after Abandon: err = %v, want ErrNotFound", err)
		}
	})
	k.Run()
}

// Crash during migration: whichever end dies mid-copy, the proclet must
// end up live on exactly one machine (or cleanly orphaned), with no
// double residency and no leaked memory charge.

func countResidency(rt *Runtime, id ID) (n int, at cluster.MachineID) {
	for mid, tbl := range rt.local {
		if _, ok := tbl[id]; ok {
			n++
			at = mid
		}
	}
	return n, at
}

func TestCrashDestinationDuringMigration(t *testing.T) {
	k, c, rt := testEnv(t, 3)
	pr, _ := rt.Spawn("svc", 0, 1<<20) // ~1ms copy at 1 GB/s
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	k.Spawn("ctl", func(p *sim.Proc) {
		err := rt.Migrate(p, pr.ID(), 1)
		if !errors.Is(err, simnet.ErrNodeDown) {
			t.Errorf("Migrate err = %v, want ErrNodeDown", err)
		}
		if pr.State() != StateRunning || pr.Location() != 0 {
			t.Errorf("after rollback: state=%v loc=%d, want running on 0", pr.State(), pr.Location())
		}
		if n, at := countResidency(rt, pr.ID()); n != 1 || at != 0 {
			t.Errorf("residency = %d tables (at %d), want exactly 1 at machine 0", n, at)
		}
		if _, err := rt.Invoke(p, 0, 0, pr.ID(), "ping", Msg{}); err != nil {
			t.Errorf("invoke after rollback: %v", err)
		}
	})
	k.Spawn("chaos", func(p *sim.Proc) {
		p.Sleep(500 * time.Microsecond) // mid-copy
		crash(c, rt, 1)
	})
	k.Run()
	if got := c.Machine(1).MemUsed(); got != 0 {
		t.Errorf("crashed destination MemUsed = %d, want 0 (no leaked reservation)", got)
	}
}

func TestCrashSourceDuringMigration(t *testing.T) {
	k, c, rt := testEnv(t, 3)
	pr, _ := rt.Spawn("svc", 0, 1<<20)
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	k.Spawn("ctl", func(p *sim.Proc) {
		err := rt.Migrate(p, pr.ID(), 1)
		if !errors.Is(err, ErrCrashed) {
			t.Errorf("Migrate err = %v, want ErrCrashed", err)
		}
		if pr.State() != StateOrphaned {
			t.Errorf("state = %v, want orphaned", pr.State())
		}
		// The half-copied destination image was abandoned: no charge left.
		if got := c.Machine(1).MemUsed(); got != 0 {
			t.Errorf("destination MemUsed = %d, want 0 after abandoned copy", got)
		}
		// Recovery lands the proclet on exactly one live machine.
		if err := rt.Restore(p, pr, 2); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if n, at := countResidency(rt, pr.ID()); n != 1 || at != 2 {
			t.Errorf("residency = %d tables (at %d), want exactly 1 at machine 2", n, at)
		}
		// Invoke from a live machine (the old source node is still down).
		if _, err := rt.Invoke(p, 1, 0, pr.ID(), "ping", Msg{}); err != nil {
			t.Errorf("invoke after recovery: %v", err)
		}
	})
	k.Spawn("chaos", func(p *sim.Proc) {
		p.Sleep(500 * time.Microsecond)
		crash(c, rt, 0)
	})
	k.Run()
}
