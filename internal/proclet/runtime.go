package proclet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Config tunes the runtime's cost model.
type Config struct {
	// MigrationFixedOverhead is the control-plane cost charged once per
	// migration: pausing, page-table setup, directory update.
	MigrationFixedOverhead time.Duration
	// MigrationPerMiB is the kernel-side page pinning/mapping cost per
	// MiB of migrated heap (the paper's §5 notes this as today's
	// kernel bottleneck).
	MigrationPerMiB time.Duration
	// DirectoryLookup is the cost of consulting the directory service
	// on a location-cache miss.
	DirectoryLookup time.Duration
	// LocalInvokeOverhead is the dispatch cost of a same-machine
	// method invocation (a function call).
	LocalInvokeOverhead time.Duration
	// MaxInvokeRetries bounds routing retries while chasing a moving
	// proclet.
	MaxInvokeRetries int
	// LazyRemotePenalty is the per-invocation cost of touching
	// not-yet-copied state through coherent remote memory during a
	// post-copy (CXL-style) migration window (§5: "postponing the
	// copying of data").
	LazyRemotePenalty time.Duration

	// InvokeTimeout bounds each remote invocation attempt. Zero defers
	// to the fabric's default deadline (simnet.Config.CallTimeout);
	// if that is also zero, attempts have no deadline.
	InvokeTimeout time.Duration
	// RetryBackoffBase is the delay before the first retry after a
	// retryable failure (ErrNodeDown, ErrTimeout); it doubles per
	// attempt. Routing chases (ErrMoved) never back off.
	RetryBackoffBase time.Duration
	// RetryBackoffMax caps the exponential backoff.
	RetryBackoffMax time.Duration
	// RetryJitter is the fraction of each backoff randomized (0..1),
	// drawn from the kernel RNG so schedules stay deterministic per
	// seed. A delay d becomes uniform in [d*(1-j/2), d*(1+j/2)].
	RetryJitter float64
}

// DefaultConfig matches Nu's reported costs: sub-millisecond migration
// for small proclets (fixed ~50 us + pinning ~30 us/MiB on top of wire
// time) and ~100 ns local dispatch.
func DefaultConfig() Config {
	return Config{
		MigrationFixedOverhead: 50 * time.Microsecond,
		MigrationPerMiB:        30 * time.Microsecond,
		DirectoryLookup:        5 * time.Microsecond,
		LocalInvokeOverhead:    100 * time.Nanosecond,
		MaxInvokeRetries:       16,
		LazyRemotePenalty:      4 * time.Microsecond,
		RetryBackoffBase:       100 * time.Microsecond,
		RetryBackoffMax:        2 * time.Millisecond,
		RetryJitter:            0.5,
	}
}

// Runtime is the distributed proclet runtime spanning every machine in
// the cluster (Nu's "distributed runtime" that avoids cold starts).
type Runtime struct {
	Cluster *cluster.Cluster
	Trace   *trace.Log

	cfg    Config
	k      *sim.Kernel
	nextID ID

	directory map[ID]cluster.MachineID                       // authoritative
	local     map[cluster.MachineID]map[ID]*Proclet          // per-machine tables
	caches    map[cluster.MachineID]map[ID]cluster.MachineID // per-machine location caches

	// MigrationLatency records blackout times (the window in which new
	// invocations block) in seconds, for both pre- and post-copy
	// migrations. LazyResidence records post-copy start-to-resident
	// times.
	MigrationLatency *metrics.Histogram
	LazyResidence    *metrics.Histogram
	// Counters for runtime activity.
	Migrations       metrics.Counter
	DirectoryLookups metrics.Counter
	LocalInvokes     metrics.Counter
	RemoteInvokes    metrics.Counter
	LazyPenalties    metrics.Counter
	// FastInvokes counts invocations of FastMethods served without a
	// Ctx or handler process (both local and remote-inline).
	FastInvokes metrics.Counter
	// InvokeRetries counts backoff retries after retryable invocation
	// failures (node down, timeout); InvokeTimeouts counts attempts
	// that resolved with simnet.ErrTimeout.
	InvokeRetries  metrics.Counter
	InvokeTimeouts metrics.Counter

	// reqPool recycles invokeReq wire structs so steady-state remote
	// invocations allocate nothing for the request envelope; ctxPool
	// does the same for method Ctxs (a stack, so invocations that
	// nest — a method calling another local proclet — each get their
	// own Ctx).
	reqPool []*invokeReq
	ctxPool []*Ctx

	// obs, when set, records invocation and migration spans. Nil (the
	// default) keeps the invoke fast path allocation-free.
	obs *obs.Tracer
}

// SetTracer attaches a span tracer to the runtime. Pass nil to detach.
func (rt *Runtime) SetTracer(t *obs.Tracer) { rt.obs = t }

// invokeReq is the wire format of a remote invocation.
type invokeReq struct {
	From   ID
	Target ID
	Method string
	Arg    Msg
}

// NewRuntime creates a runtime over an already-populated cluster (all
// machines must be added before calling). tl may be nil to disable
// tracing.
func NewRuntime(c *cluster.Cluster, cfg Config, tl *trace.Log) *Runtime {
	if cfg.MaxInvokeRetries <= 0 {
		cfg.MaxInvokeRetries = 16
	}
	if cfg.RetryBackoffBase <= 0 {
		cfg.RetryBackoffBase = 100 * time.Microsecond
	}
	if cfg.RetryBackoffMax < cfg.RetryBackoffBase {
		cfg.RetryBackoffMax = 2 * time.Millisecond
	}
	if cfg.RetryJitter < 0 {
		cfg.RetryJitter = 0
	} else if cfg.RetryJitter > 1 {
		cfg.RetryJitter = 1
	}
	rt := &Runtime{
		Cluster:          c,
		Trace:            tl,
		cfg:              cfg,
		k:                c.K,
		directory:        make(map[ID]cluster.MachineID),
		local:            make(map[cluster.MachineID]map[ID]*Proclet),
		caches:           make(map[cluster.MachineID]map[ID]cluster.MachineID),
		MigrationLatency: metrics.NewHistogram("proclet.migration_latency"),
		LazyResidence:    metrics.NewHistogram("proclet.lazy_residence"),
	}
	for _, m := range c.Machines() {
		mid := m.ID
		rt.local[mid] = make(map[ID]*Proclet)
		rt.caches[mid] = make(map[ID]cluster.MachineID)
		n := c.Node(mid)
		n.Handle("proclet.invoke", func(hp *sim.Proc, req simnet.Message) (simnet.Message, error) {
			r := req.Payload.(*invokeReq)
			return rt.execOn(hp, mid, r)
		})
		// Fast methods are served inline at request delivery; anything
		// that would need to block falls back to the handler above.
		n.HandleFast("proclet.invoke", func(req simnet.Message) (simnet.Message, error) {
			return rt.execFastOn(mid, req.Payload.(*invokeReq))
		})
	}
	return rt
}

// Config returns the runtime's cost-model configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Kernel returns the simulation kernel.
func (rt *Runtime) Kernel() *sim.Kernel { return rt.k }

// Spawn creates a proclet with heapBytes of state on machine m. It
// fails with cluster.ErrNoMemory when m cannot hold the heap.
func (rt *Runtime) Spawn(name string, m cluster.MachineID, heapBytes int64) (*Proclet, error) {
	mach := rt.Cluster.Machine(m)
	if mach == nil {
		return nil, fmt.Errorf("%w: machine %d", ErrNotFound, m)
	}
	if err := mach.AllocMem(heapBytes); err != nil {
		return nil, err
	}
	rt.nextID++
	pr := &Proclet{
		id:         rt.nextID,
		name:       name,
		rt:         rt,
		machine:    m,
		allocEpoch: mach.Epoch(),
		heapBytes:  heapBytes,
		methods:    make(map[string]Method),
		tasks:      make(map[*cluster.Task]struct{}),
		commBytes:  make(map[ID]int64),
	}
	rt.directory[pr.id] = m
	rt.local[m][pr.id] = pr
	rt.Trace.Emitf(rt.k.Now(), trace.KindSpawn, name, -1, int(m), "heap=%d id=%d", heapBytes, pr.id)
	return pr, nil
}

// Destroy removes a proclet, releasing its memory. Blocked and future
// invocations fail with ErrDead (after routing notices the removal).
func (rt *Runtime) Destroy(id ID) error {
	pr := rt.Lookup(id)
	if pr == nil {
		return ErrNotFound
	}
	if pr.state == StateMigrating {
		return ErrMigrating
	}
	m := pr.machine
	rt.freeHeap(pr)
	pr.heapBytes = 0
	pr.state = StateDead
	for task := range pr.tasks {
		task.Cancel()
	}
	pr.tasks = make(map[*cluster.Task]struct{})
	delete(rt.local[m], id)
	delete(rt.directory, id)
	pr.unblocked.Broadcast()
	rt.Trace.Emitf(rt.k.Now(), trace.KindDestroy, pr.name, int(m), -1, "id=%d", id)
	return nil
}

// Lookup returns the proclet with the given ID, or nil. It is a
// zero-cost host-side accessor for controllers and tests; simulated
// code pays routing costs through Invoke.
func (rt *Runtime) Lookup(id ID) *Proclet {
	m, ok := rt.directory[id]
	if !ok {
		return nil
	}
	return rt.local[m][id]
}

// Proclets returns all live proclets in ascending ID order, so dumps
// built from it are deterministic.
func (rt *Runtime) Proclets() []*Proclet {
	var out []*Proclet
	for id, m := range rt.directory {
		if pr := rt.local[m][id]; pr != nil {
			out = append(out, pr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// locate returns the target's location as seen from machine m, charging
// a directory lookup on cache miss.
func (rt *Runtime) locate(p *sim.Proc, m cluster.MachineID, target ID) (cluster.MachineID, error) {
	if loc, ok := rt.caches[m][target]; ok {
		return loc, nil
	}
	rt.DirectoryLookups.Inc()
	p.Sleep(rt.cfg.DirectoryLookup)
	loc, ok := rt.directory[target]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrNotFound, target)
	}
	rt.caches[m][target] = loc
	return loc, nil
}

// Invoke calls a method on the target proclet from fromMachine. from is
// the calling proclet (0 for external clients); it is used for affinity
// accounting. The call blocks the calling process until the reply
// arrives, chasing stale location caches as needed.
func (rt *Runtime) Invoke(p *sim.Proc, fromMachine cluster.MachineID, from ID, target ID, method string, arg Msg) (Msg, error) {
	var sp obs.SpanID
	if rt.obs != nil {
		sp = rt.obs.Start(obs.KindInvoke, method, int(fromMachine), rt.obs.TakeNext())
		rt.obs.SetBytes(sp, arg.Bytes)
	}
	req := rt.getReq()
	req.From, req.Target, req.Method, req.Arg = from, target, method, arg
	res, err := rt.invoke(p, fromMachine, req, rt.cfg.MaxInvokeRetries, sp)
	rt.putReq(req)
	if rt.obs != nil {
		rt.obs.SetErr(sp, err)
		rt.obs.End(sp)
	}
	return res, err
}

// InvokeLimited is Invoke with an explicit attempt bound overriding
// MaxInvokeRetries. Replication shipping uses a small bound so a write
// is not stalled for the full retry budget by one dead backup: the
// shipper drops the backup quickly and re-replication repairs the set.
func (rt *Runtime) InvokeLimited(p *sim.Proc, fromMachine cluster.MachineID, from ID, target ID, method string, arg Msg, maxAttempts int) (Msg, error) {
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	var sp obs.SpanID
	if rt.obs != nil {
		sp = rt.obs.Start(obs.KindInvoke, method, int(fromMachine), rt.obs.TakeNext())
		rt.obs.SetBytes(sp, arg.Bytes)
	}
	req := rt.getReq()
	req.From, req.Target, req.Method, req.Arg = from, target, method, arg
	res, err := rt.invoke(p, fromMachine, req, maxAttempts, sp)
	rt.putReq(req)
	if rt.obs != nil {
		rt.obs.SetErr(sp, err)
		rt.obs.End(sp)
	}
	return res, err
}

// getReq pops a pooled request envelope; putReq returns it. The
// envelope is only referenced synchronously while the invocation is in
// flight (the caller blocks for the round trip), so releasing it when
// invoke returns is safe.
func (rt *Runtime) getReq() *invokeReq {
	if n := len(rt.reqPool); n > 0 {
		r := rt.reqPool[n-1]
		rt.reqPool[n-1] = nil
		rt.reqPool = rt.reqPool[:n-1]
		return r
	}
	return &invokeReq{}
}

func (rt *Runtime) putReq(r *invokeReq) {
	*r = invokeReq{} // drop the payload reference
	rt.reqPool = append(rt.reqPool, r)
}

func (rt *Runtime) getCtx() *Ctx {
	if n := len(rt.ctxPool); n > 0 {
		c := rt.ctxPool[n-1]
		rt.ctxPool[n-1] = nil
		rt.ctxPool = rt.ctxPool[:n-1]
		return c
	}
	return &Ctx{}
}

func (rt *Runtime) putCtx(c *Ctx) {
	*c = Ctx{}
	rt.ctxPool = append(rt.ctxPool, c)
}

// backoffDelay returns the capped exponential backoff for the given
// retry ordinal (0 = first retry), with deterministic jitter drawn from
// the kernel RNG.
func (rt *Runtime) backoffDelay(retry int) time.Duration {
	d := rt.cfg.RetryBackoffBase
	if retry >= 30 {
		d = rt.cfg.RetryBackoffMax
	} else {
		d <<= uint(retry)
		if d > rt.cfg.RetryBackoffMax || d <= 0 {
			d = rt.cfg.RetryBackoffMax
		}
	}
	if j := rt.cfg.RetryJitter; j > 0 {
		d = time.Duration(float64(d) * (1 - j/2 + j*rt.k.Rand().Float64()))
	}
	return d
}

// retryable reports whether an invocation error is worth retrying after
// a backoff: the node may restart, the partition may heal, recovery
// may re-place the target elsewhere, or a lapsed lease may be renewed
// (or its holder deposed and a replica promoted).
func retryable(err error) bool {
	return errors.Is(err, simnet.ErrNodeDown) || errors.Is(err, simnet.ErrTimeout) ||
		errors.Is(err, ErrUnavailable)
}

func (rt *Runtime) invoke(p *sim.Proc, fromMachine cluster.MachineID, req *invokeReq, maxAttempts int, sp obs.SpanID) (Msg, error) {
	var lastErr error
	retries := 0
	for attempt := 0; attempt < maxAttempts; attempt++ {
		loc, err := rt.locate(p, fromMachine, req.Target)
		if err != nil {
			return Msg{}, err
		}
		if loc == fromMachine {
			pr, ok := rt.local[loc][req.Target]
			if !ok {
				delete(rt.caches[fromMachine], req.Target)
				continue
			}
			if pr.state == StateMigrating {
				pr.unblocked.Wait(p)
				continue
			}
			p.Sleep(rt.cfg.LocalInvokeOverhead)
			rt.LocalInvokes.Inc()
			res, err := rt.exec(p, pr, req.From, req.Method, req.Arg)
			if errors.Is(err, ErrUnavailable) {
				// A lease-lapsed or deposed primary refused to serve;
				// back off and re-route (the proclet may be promoted
				// onto another machine meanwhile).
				lastErr = err
				delete(rt.caches[fromMachine], req.Target)
				rt.InvokeRetries.Inc()
				p.Sleep(rt.backoffDelay(retries))
				retries++
				continue
			}
			return res, err
		}
		if rt.obs != nil {
			rt.obs.SetNext(sp) // consumed synchronously at CallWithTimeout entry
		}
		reply, err := rt.Cluster.Fabric.CallWithTimeout(p,
			simnet.NodeID(fromMachine), simnet.NodeID(loc),
			"proclet.invoke", simnet.Message{Payload: req, Bytes: req.Arg.Bytes},
			rt.cfg.InvokeTimeout)
		if errors.Is(err, ErrMoved) {
			delete(rt.caches[fromMachine], req.Target)
			continue
		}
		if err != nil {
			if !retryable(err) {
				return Msg{}, err
			}
			// The target's machine is down, or the message was lost: the
			// cached location may be stale (recovery re-places orphans),
			// so drop it and retry after a capped, jittered backoff.
			if errors.Is(err, simnet.ErrTimeout) {
				rt.InvokeTimeouts.Inc()
			}
			lastErr = err
			delete(rt.caches[fromMachine], req.Target)
			rt.InvokeRetries.Inc()
			p.Sleep(rt.backoffDelay(retries))
			retries++
			continue
		}
		rt.RemoteInvokes.Inc()
		return reply, nil
	}
	if lastErr != nil {
		return Msg{}, fmt.Errorf("%w: target %d method %q (last: %w)",
			ErrRetries, req.Target, req.Method, lastErr)
	}
	return Msg{}, fmt.Errorf("%w: target %d method %q", ErrRetries, req.Target, req.Method)
}

// execOn runs an invocation that arrived at machine m, waiting out any
// in-progress migration and reporting ErrMoved when the proclet is no
// longer (or never was) here.
func (rt *Runtime) execOn(p *sim.Proc, m cluster.MachineID, r *invokeReq) (Msg, error) {
	for {
		pr, ok := rt.local[m][r.Target]
		if !ok {
			return Msg{}, ErrMoved
		}
		if pr.state == StateMigrating {
			pr.unblocked.Wait(p)
			continue
		}
		return rt.exec(p, pr, r.From, r.Method, r.Arg)
	}
}

// execFastOn serves a remote invocation inline in kernel context at the
// instant the request lands. It declines with simnet.ErrWouldBlock
// whenever serving would need a simulated process: the proclet is
// migrating (the handler must wait it out), it is in a post-copy lazy
// window (the remote-access penalty is a sleep), or the method is a
// blocking one.
func (rt *Runtime) execFastOn(m cluster.MachineID, r *invokeReq) (Msg, error) {
	pr, ok := rt.local[m][r.Target]
	if !ok {
		return Msg{}, ErrMoved
	}
	if pr.state == StateMigrating || (pr.lazyWindow && rt.cfg.LazyRemotePenalty > 0) {
		return Msg{}, simnet.ErrWouldBlock
	}
	fn, ok := pr.fastMethods[r.Method]
	if !ok {
		if _, blocking := pr.methods[r.Method]; blocking {
			return Msg{}, simnet.ErrWouldBlock
		}
		return Msg{}, fmt.Errorf("%w: %q on %s", ErrNoMethod, r.Method, pr.name)
	}
	res, err := fn(r.Arg)
	if errors.Is(err, simnet.ErrWouldBlock) {
		// The fast registration declined this particular invocation
		// (e.g. a write that must ship replication records); it will be
		// re-dispatched to the blocking fallback, which does its own
		// counting and accounting.
		return Msg{}, simnet.ErrWouldBlock
	}
	rt.FastInvokes.Inc()
	rt.account(pr, r.From, r.Arg, res)
	return res, err
}

// exec dispatches the method on a proclet known to be local and
// running, tracking the active-invocation count for migration drains
// and affinity bytes for the scheduler. Fast methods skip the Ctx and
// the active count: they execute atomically within the current event,
// so a migration drain can never observe one in flight.
func (rt *Runtime) exec(p *sim.Proc, pr *Proclet, from ID, method string, arg Msg) (Msg, error) {
	rt.lazyPenalty(p, pr)
	if fastFn, ok := pr.fastMethods[method]; ok {
		res, err := fastFn(arg)
		if !errors.Is(err, simnet.ErrWouldBlock) {
			rt.FastInvokes.Inc()
			rt.account(pr, from, arg, res)
			return res, err
		}
		// Declined: fall through to the blocking fallback registration.
	}
	fn, ok := pr.methods[method]
	if !ok {
		return Msg{}, fmt.Errorf("%w: %q on %s", ErrNoMethod, method, pr.name)
	}
	pr.active++
	ctx := rt.getCtx()
	ctx.Proc, ctx.Self, ctx.From = p, pr, from
	res, err := fn(ctx, arg)
	rt.putCtx(ctx)
	pr.active--
	if pr.active == 0 {
		pr.drained.Broadcast()
	}
	rt.account(pr, from, arg, res)
	return res, err
}

// account records an executed invocation for the proclet's stats and
// the scheduler's affinity signal.
func (rt *Runtime) account(pr *Proclet, from ID, arg, res Msg) {
	pr.invokes.Inc()
	if from != 0 {
		bytes := arg.Bytes + res.Bytes
		pr.commBytes[from] += bytes
		// Record symmetrically so a mobile caller can discover its
		// affinity for a pinned callee.
		if caller := rt.Lookup(from); caller != nil {
			caller.commBytes[pr.id] += bytes
		}
	}
}

// Migrate live-migrates the proclet to machine `to`, blocking the
// calling process for the duration. The protocol: reserve destination
// memory, block new invocations, suspend thread compute, drain active
// invocations, pay pinning overhead, copy the heap over the wire,
// commit the move, and resume. Fails without side effects when the
// destination cannot hold the heap.
func (rt *Runtime) Migrate(p *sim.Proc, id ID, to cluster.MachineID) error {
	return rt.MigrateCaused(p, id, to, 0)
}

// MigrateCaused is Migrate with an explicit causal parent span: the
// pressure episode or scheduler decision that triggered the move. The
// migration span becomes a child of that cause, so traces answer "why
// did this proclet move". cause 0 records a root migration span.
func (rt *Runtime) MigrateCaused(p *sim.Proc, id ID, to cluster.MachineID, cause obs.SpanID) error {
	pr := rt.Lookup(id)
	if pr == nil {
		return ErrNotFound
	}
	if pr.state == StateMigrating || pr.lazyWindow {
		return ErrMigrating
	}
	if pr.state == StateOrphaned {
		return ErrCrashed
	}
	from := pr.machine
	if from == to {
		return nil
	}
	dst := rt.Cluster.Machine(to)
	if dst == nil {
		return fmt.Errorf("%w: machine %d", ErrNotFound, to)
	}
	if dst.Down() {
		return fmt.Errorf("%w: migration destination %d", simnet.ErrNodeDown, to)
	}
	if err := dst.AllocMem(pr.heapBytes); err != nil {
		return err
	}
	dstEpoch := dst.Epoch()

	var sp, frz obs.SpanID
	if rt.obs != nil {
		sp = rt.obs.Start(obs.KindMigrate, pr.name, int(from), cause)
		rt.obs.SetRoute(sp, int(from), int(to))
		rt.obs.SetBytes(sp, pr.heapBytes)
		rt.obs.Str(sp, "mode", "precopy")
		// Pre-copy blackout: drain, pin, and copy all happen frozen.
		frz = rt.obs.Start(obs.KindPhase, "freeze", int(from), sp)
	}

	start := rt.k.Now()
	pr.state = StateMigrating

	// Suspend thread compute; remaining work resumes at the destination.
	for task := range pr.tasks {
		task.Cancel()
	}
	pr.tasks = make(map[*cluster.Task]struct{})

	// Drain in-flight method invocations.
	for pr.active > 0 {
		pr.drained.Wait(p)
	}

	// Kernel-side pause: page pinning and mapping, scaled by heap size.
	pin := rt.cfg.MigrationFixedOverhead +
		time.Duration(float64(rt.cfg.MigrationPerMiB)*float64(pr.heapBytes)/(1<<20))
	p.Sleep(pin)

	var cp obs.SpanID
	if rt.obs != nil {
		rt.obs.End(frz)
		cp = rt.obs.Start(obs.KindPhase, "precopy", int(from), sp)
		rt.obs.SetRoute(cp, int(from), int(to))
		rt.obs.SetBytes(cp, pr.heapBytes)
	}

	// Copy the heap.
	err := rt.Cluster.Fabric.Transfer(p, simnet.NodeID(from), simnet.NodeID(to), pr.heapBytes)
	if rt.obs != nil {
		rt.obs.SetErr(cp, err)
		rt.obs.End(cp)
	}
	if pr.state != StateMigrating {
		// The source crashed mid-copy and CrashMachine orphaned the
		// proclet underneath us: the half-copied destination image is
		// abandoned. Recovery owns the proclet now.
		if dst.Epoch() == dstEpoch {
			dst.FreeMem(pr.heapBytes)
		}
		cerr := fmt.Errorf("%w: source machine %d failed during migration", ErrCrashed, from)
		if rt.obs != nil {
			rt.obs.SetErr(sp, cerr)
			rt.obs.End(sp)
		}
		return cerr
	}
	if err == nil && dst.Down() {
		// The copy "landed" on a machine that died before commit.
		err = fmt.Errorf("%w: migration destination %d", simnet.ErrNodeDown, to)
	}
	if err != nil {
		// Roll back: the proclet stays where it was. The destination's
		// reservation is released only if the destination has not
		// crashed since (a crash already wiped it).
		if dst.Epoch() == dstEpoch {
			dst.FreeMem(pr.heapBytes)
		}
		pr.state = StateRunning
		pr.unblocked.Broadcast()
		if rt.obs != nil {
			rt.obs.SetErr(sp, err)
			rt.obs.End(sp)
		}
		return err
	}

	// Commit.
	rt.Cluster.Machine(from).FreeMem(pr.heapBytes)
	delete(rt.local[from], id)
	rt.local[to][id] = pr
	rt.directory[id] = to
	rt.caches[from][id] = to
	rt.caches[to][id] = to
	pr.machine = to
	pr.allocEpoch = dstEpoch
	pr.state = StateRunning
	pr.unblocked.Broadcast()

	d := rt.k.Now().Sub(start)
	rt.MigrationLatency.ObserveDuration(d)
	rt.Migrations.Inc()
	rt.Trace.Emitf(rt.k.Now(), trace.KindMigrate, pr.name, int(from), int(to),
		"bytes=%d latency=%v", pr.heapBytes, d)
	rt.obs.End(sp)
	return nil
}
