package proclet

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// checkInvariants validates the runtime's structural invariants:
// directory and local tables agree, each machine's resident memory
// equals the heaps placed on it, and no proclet is in two places.
func checkInvariants(t *testing.T, rt *Runtime) {
	t.Helper()
	seen := make(map[ID]cluster.MachineID)
	for mid, table := range rt.local {
		for id, pr := range table {
			if prev, dup := seen[id]; dup {
				t.Fatalf("proclet %d on machines %d and %d", id, prev, mid)
			}
			seen[id] = mid
			if rt.directory[id] != mid {
				t.Fatalf("proclet %d local on %d but directory says %d", id, mid, rt.directory[id])
			}
			if pr.machine != mid {
				t.Fatalf("proclet %d.machine=%d in table of %d", id, pr.machine, mid)
			}
		}
	}
	for id, mid := range rt.directory {
		if _, ok := rt.local[mid][id]; !ok {
			t.Fatalf("directory entry %d->%d has no local proclet", id, mid)
		}
	}
	for _, m := range rt.Cluster.Machines() {
		var sum int64
		for _, pr := range rt.local[m.ID] {
			sum += pr.heapBytes
		}
		if m.MemUsed() != sum {
			t.Fatalf("machine %d resident %d != placed heaps %d", m.ID, m.MemUsed(), sum)
		}
	}
}

// Property: invariants hold after arbitrary sequences of spawns,
// migrations (some to full/absent machines), heap growth, and
// destroys.
func TestRuntimeInvariantsProperty(t *testing.T) {
	f := func(tape []uint16) bool {
		k, _, rt := testEnv(t, 3)
		var ids []ID
		failed := false
		k.Spawn("driver", func(p *sim.Proc) {
			for _, op := range tape {
				switch op % 5 {
				case 0: // spawn
					pr, err := rt.Spawn("p", cluster.MachineID(op%3), int64(op)*100)
					if err == nil {
						ids = append(ids, pr.ID())
					}
				case 1, 2: // migrate
					if len(ids) == 0 {
						continue
					}
					id := ids[int(op)%len(ids)]
					rt.Migrate(p, id, cluster.MachineID((op/3)%3))
				case 3: // grow/shrink heap
					if len(ids) == 0 {
						continue
					}
					if pr := rt.Lookup(ids[int(op)%len(ids)]); pr != nil {
						delta := int64(op%1000) - 300
						if pr.HeapBytes()+delta >= 0 {
							pr.GrowHeap(delta)
						}
					}
				case 4: // destroy
					if len(ids) == 0 {
						continue
					}
					idx := int(op) % len(ids)
					rt.Destroy(ids[idx])
					ids = append(ids[:idx], ids[idx+1:]...)
				}
			}
		})
		k.Run()
		if failed {
			return false
		}
		checkInvariants(t, rt)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: concurrent migrations of distinct proclets between two
// machines preserve invariants and complete.
func TestConcurrentMigrationsProperty(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		k, _, rt := testEnv(t, 2)
		var prs []*Proclet
		for i := 0; i < n; i++ {
			pr, err := rt.Spawn("p", cluster.MachineID(i%2), int64(i+1)*4096)
			if err != nil {
				return false
			}
			prs = append(prs, pr)
		}
		for i, pr := range prs {
			i, pr := i, pr
			k.Spawn("mover", func(p *sim.Proc) {
				for round := 0; round < 4; round++ {
					p.Sleep(time.Duration((int(seed)+i*7+round*13)%200) * time.Microsecond)
					rt.Migrate(p, pr.ID(), cluster.MachineID((i+round)%2))
				}
			})
		}
		k.Run()
		checkInvariants(t, rt)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInvokeStormDuringMigrations: invocations from many clients while
// the target bounces between machines — all must eventually succeed.
func TestInvokeStormDuringMigrations(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 0, 256<<10)
	served := 0
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) {
		served++
		return Msg{}, nil
	})
	const clients = 8
	const calls = 20
	errs := 0
	for c := 0; c < clients; c++ {
		c := c
		k.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < calls; i++ {
				if _, err := rt.Invoke(p, cluster.MachineID(c%2), 0, pr.ID(), "ping", Msg{Bytes: 64}); err != nil {
					errs++
				}
				p.Sleep(time.Duration(50+c*13) * time.Microsecond)
			}
		})
	}
	k.Spawn("mover", func(p *sim.Proc) {
		for round := 0; round < 12; round++ {
			p.Sleep(300 * time.Microsecond)
			rt.Migrate(p, pr.ID(), cluster.MachineID(round%2))
		}
	})
	k.Run()
	if errs != 0 {
		t.Errorf("%d invocations failed during migration storm", errs)
	}
	if served != clients*calls {
		t.Errorf("served = %d, want %d", served, clients*calls)
	}
	checkInvariants(t, rt)
}
