package proclet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestMigrateLazyConstantBlackout(t *testing.T) {
	// Post-copy blackout must not depend on state size; pre-copy must.
	blackout := func(size int64, lazy bool) float64 {
		k, _, rt := testEnv(t, 2)
		pr, err := rt.Spawn("p", 0, size)
		if err != nil {
			t.Fatal(err)
		}
		k.Spawn("ctl", func(p *sim.Proc) {
			if lazy {
				err = rt.MigrateLazy(p, pr.ID(), 1)
			} else {
				err = rt.Migrate(p, pr.ID(), 1)
			}
			if err != nil {
				t.Errorf("migrate: %v", err)
			}
		})
		k.Run()
		return rt.MigrationLatency.Mean()
	}
	lazySmall := blackout(1<<20, true)
	lazyBig := blackout(64<<20, true)
	preBig := blackout(64<<20, false)
	if lazySmall != lazyBig {
		t.Errorf("post-copy blackout varies with size: %v vs %v", lazySmall, lazyBig)
	}
	if preBig < 20*lazyBig {
		t.Errorf("pre-copy 64MiB blackout (%v) should dwarf post-copy (%v)", preBig, lazyBig)
	}
}

func TestMigrateLazyServesImmediatelyWithPenalty(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("svc", 0, 32<<20) // 32 MiB: background copy ~34ms
	pr.Handle("ping", func(ctx *Ctx, arg Msg) (Msg, error) { return Msg{}, nil })
	k.Spawn("ctl", func(p *sim.Proc) {
		if err := rt.MigrateLazy(p, pr.ID(), 1); err != nil {
			t.Fatalf("MigrateLazy: %v", err)
		}
		if pr.Location() != 1 {
			t.Fatalf("location = %d immediately after lazy migrate", pr.Location())
		}
		if pr.Resident() {
			t.Fatal("resident before background copy")
		}
		// Invocation during the window: works, but pays the penalty.
		before := rt.LazyPenalties.Value()
		if _, err := rt.Invoke(p, 1, 0, pr.ID(), "ping", Msg{}); err != nil {
			t.Fatalf("invoke during window: %v", err)
		}
		if rt.LazyPenalties.Value() != before+1 {
			t.Error("no lazy penalty charged during window")
		}
		// After residence, no penalty.
		p.Sleep(100 * time.Millisecond)
		if !pr.Resident() {
			t.Fatal("still not resident after 100ms")
		}
		before = rt.LazyPenalties.Value()
		if _, err := rt.Invoke(p, 1, 0, pr.ID(), "ping", Msg{}); err != nil {
			t.Fatalf("invoke after residence: %v", err)
		}
		if rt.LazyPenalties.Value() != before {
			t.Error("penalty charged after residence")
		}
	})
	k.Run()
	if rt.LazyResidence.Count() != 1 {
		t.Errorf("LazyResidence count = %d", rt.LazyResidence.Count())
	}
}

func TestMigrateLazyMemoryAccounting(t *testing.T) {
	k, c, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("p", 0, 16<<20)
	k.Spawn("ctl", func(p *sim.Proc) {
		if err := rt.MigrateLazy(p, pr.ID(), 1); err != nil {
			t.Fatal(err)
		}
		// During the window both machines hold a share: src the bytes,
		// dst the reservation.
		if c.Machine(0).MemUsed() != 16<<20 || c.Machine(1).MemUsed() != 16<<20 {
			t.Errorf("window accounting: src=%d dst=%d", c.Machine(0).MemUsed(), c.Machine(1).MemUsed())
		}
		p.Sleep(100 * time.Millisecond)
	})
	k.Run()
	if c.Machine(0).MemUsed() != 0 || c.Machine(1).MemUsed() != 16<<20 {
		t.Errorf("final accounting: src=%d dst=%d", c.Machine(0).MemUsed(), c.Machine(1).MemUsed())
	}
}

func TestMigrateLazyRejectsOverlap(t *testing.T) {
	k, _, rt := testEnv(t, 3)
	pr, _ := rt.Spawn("p", 0, 32<<20)
	k.Spawn("ctl", func(p *sim.Proc) {
		if err := rt.MigrateLazy(p, pr.ID(), 1); err != nil {
			t.Fatal(err)
		}
		// Neither a second lazy nor a pre-copy migration may start
		// before residence.
		if err := rt.MigrateLazy(p, pr.ID(), 2); !errors.Is(err, ErrMigrating) {
			t.Errorf("second lazy = %v, want ErrMigrating", err)
		}
		if err := rt.Migrate(p, pr.ID(), 2); !errors.Is(err, ErrMigrating) {
			t.Errorf("pre-copy during window = %v, want ErrMigrating", err)
		}
		p.Sleep(100 * time.Millisecond)
		if err := rt.Migrate(p, pr.ID(), 2); err != nil {
			t.Errorf("migrate after residence: %v", err)
		}
	})
	k.Run()
	checkInvariants(t, rt)
}

func TestMigrateLazyInvariantsAfterChain(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	pr, _ := rt.Spawn("p", 0, 4<<20)
	k.Spawn("ctl", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			target := 1 - pr.Location()
			if err := rt.MigrateLazy(p, pr.ID(), target); err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
			p.Sleep(50 * time.Millisecond) // let residence land
		}
	})
	k.Run()
	checkInvariants(t, rt)
	if rt.LazyResidence.Count() != 4 {
		t.Errorf("residences = %d, want 4", rt.LazyResidence.Count())
	}
}
