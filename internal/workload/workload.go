// Package workload provides the experiment drivers for the Quicksand
// reproduction: the phased high-priority antagonist from the paper's
// motivating experiment (Figure 1), the synthetic image corpus and
// preprocessing kernel behind the DNN-training case study (Figure 2),
// and the emulated GPU pool whose availability varies over time
// (Figure 3). The paper itself emulated GPUs "by adding a delay to
// consume data from the queue"; the GPU pool here does exactly that.
package workload

import (
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sharded"
	"repro/internal/sim"
)

// Antagonist is a high-priority, latency-critical application whose
// CPU use follows a square wave: for Busy out of every Period it
// consumes Cores cores (modeled as a capacity reservation, which is
// exactly how a high-priority app affects best-effort work), then
// releases them.
//
// With Jitter > 0 each cycle's busy-window start shifts by a uniform
// ±Jitter drawn from the injected Rng, desynchronizing a fleet of
// antagonists the way real latency-critical apps desynchronize. The RNG
// is always injected — never package-global — so a partitioned run that
// seeds one RNG per shard replays the exact same interference pattern
// at any worker count.
type Antagonist struct {
	Machine *cluster.Machine
	Period  time.Duration
	Busy    time.Duration
	Offset  time.Duration // phase shift of the busy window
	Cores   float64
	Jitter  time.Duration // per-cycle uniform start jitter, 0 = none
	Rng     *rand.Rand    // required when Jitter > 0

	stopped bool
}

// Start begins the square wave at Offset. Before Offset the antagonist
// is idle.
func (a *Antagonist) Start(k *sim.Kernel) {
	if a.Busy > a.Period {
		panic("workload: antagonist busy window exceeds period")
	}
	if a.Jitter < 0 || a.Jitter > (a.Period-a.Busy)/2 {
		panic("workload: antagonist jitter must be in [0, (period-busy)/2]")
	}
	if a.Jitter > 0 && a.Rng == nil {
		panic("workload: jittered antagonist needs an injected *rand.Rand")
	}
	var cycle func()
	at := sim.Time(0).Add(a.Offset)
	cycle = func() {
		if a.stopped {
			a.Machine.SetReserved(0)
			return
		}
		if a.Jitter > 0 {
			// Uniform in [0, 2*Jitter): keeps the window inside the period.
			start := k.Now().Add(time.Duration(a.Rng.Int63n(2 * int64(a.Jitter))))
			k.Schedule(start, func() {
				if a.stopped {
					return
				}
				a.Machine.SetReserved(a.Cores)
				k.After(a.Busy, func() { a.Machine.SetReserved(0) })
			})
		} else {
			a.Machine.SetReserved(a.Cores)
			k.After(a.Busy, func() {
				a.Machine.SetReserved(0)
			})
		}
		at = at.Add(a.Period)
		k.Schedule(at, cycle)
	}
	k.Schedule(at, cycle)
}

// Stop ends the square wave; the reservation is released at the next
// transition.
func (a *Antagonist) Stop() { a.stopped = true }

// Image is one synthetic input image: its encoded size and the CPU
// time its preprocessing (decode, clean, augment) costs. Figure 2
// depends only on these two quantities, not on pixel contents.
type Image struct {
	Idx   int
	Bytes int64
	CPU   time.Duration
}

// GenImages generates a deterministic corpus of n images whose sizes
// and CPU costs vary uniformly by ±spread around the means, with CPU
// cost correlated to size (bigger images decode slower).
func GenImages(rng *rand.Rand, n int, meanBytes int64, meanCPU time.Duration, spread float64) []Image {
	imgs := make([]Image, n)
	for i := range imgs {
		f := 1 + spread*(2*rng.Float64()-1)
		imgs[i] = Image{
			Idx:   i,
			Bytes: int64(float64(meanBytes) * f),
			CPU:   time.Duration(float64(meanCPU) * f),
		}
	}
	return imgs
}

// TotalCPU sums the corpus's preprocessing cost in core-seconds.
func TotalCPU(imgs []Image) float64 {
	var sum float64
	for _, im := range imgs {
		sum += im.CPU.Seconds()
	}
	return sum
}

// TotalBytes sums the corpus's encoded size.
func TotalBytes(imgs []Image) int64 {
	var sum int64
	for _, im := range imgs {
		sum += im.Bytes
	}
	return sum
}

// Batch is a preprocessed minibatch flowing from the CPU stage to the
// GPU stage through the sharded queue.
type Batch struct {
	Seq   int
	Bytes int64
}

// GPUPool emulates a set of training GPUs attached to one machine:
// each active GPU repeatedly pops a batch from the queue and spends
// PerBatch of GPU time on it. The number of active GPUs can change at
// runtime (spot GPUs appearing and disappearing, Figure 3).
type GPUPool struct {
	Queue    *sharded.Queue[Batch]
	Machine  cluster.MachineID
	PerBatch time.Duration
	Poll     time.Duration // starved-GPU retry interval

	active  int
	maxGPUs int
	stopped bool

	// Consumed counts batches trained; Starved counts empty polls.
	Consumed metrics.Counter
	Starved  metrics.Counter
	// ActiveSeries records the active-GPU count over time.
	ActiveSeries *metrics.TimeSeries
	// busyNs accumulates GPU-busy time for utilization accounting.
	busyNs int64
}

// NewGPUPool creates a pool of maxGPUs emulated GPUs, initially all
// active. Call Start to launch the consumer processes.
func NewGPUPool(q *sharded.Queue[Batch], machine cluster.MachineID, perBatch time.Duration, maxGPUs int) *GPUPool {
	return &GPUPool{
		Queue:        q,
		Machine:      machine,
		PerBatch:     perBatch,
		Poll:         100 * time.Microsecond,
		active:       maxGPUs,
		maxGPUs:      maxGPUs,
		ActiveSeries: metrics.NewTimeSeries("gpus.active"),
	}
}

// Start launches one consumer process per GPU slot.
func (g *GPUPool) Start(k *sim.Kernel) {
	g.ActiveSeries.Add(k.Now(), float64(g.active))
	for i := 0; i < g.maxGPUs; i++ {
		i := i
		k.Spawn("gpu", func(p *sim.Proc) { g.gpuLoop(p, i) })
	}
}

func (g *GPUPool) gpuLoop(p *sim.Proc, slot int) {
	for !g.stopped {
		if slot >= g.active {
			// Deactivated (spot GPU reclaimed): idle until reactivated.
			p.Sleep(g.Poll * 5)
			continue
		}
		_, ok, err := g.Queue.TryPop(p, g.Machine)
		if err != nil {
			return
		}
		if !ok {
			g.Starved.Inc()
			p.Sleep(g.Poll)
			continue
		}
		p.Sleep(g.PerBatch)
		g.busyNs += int64(g.PerBatch)
		g.Consumed.Inc()
	}
}

// SetActive changes how many GPUs are live.
func (g *GPUPool) SetActive(k *sim.Kernel, n int) {
	if n < 0 || n > g.maxGPUs {
		panic("workload: active GPU count out of range")
	}
	g.active = n
	g.ActiveSeries.Add(k.Now(), float64(n))
}

// Active returns the live GPU count.
func (g *GPUPool) Active() int { return g.active }

// Stop terminates the consumer processes at their next poll.
func (g *GPUPool) Stop() { g.stopped = true }

// BusySeconds returns accumulated GPU-busy time.
func (g *GPUPool) BusySeconds() float64 { return float64(g.busyNs) / 1e9 }

// ConsumptionRate returns the pool's maximum drain rate in batches per
// second at the current active count.
func (g *GPUPool) ConsumptionRate() float64 {
	return float64(g.active) / g.PerBatch.Seconds()
}

// Toggle flips fn between two levels every half-period, starting with
// `a` now — the Figure 3 availability trace (4 and 8 GPUs every
// 200 ms).
func Toggle(k *sim.Kernel, halfPeriod time.Duration, a, b int, until sim.Time, fn func(n int)) {
	level := a
	var flip func()
	at := k.Now()
	flip = func() {
		fn(level)
		if level == a {
			level = b
		} else {
			level = a
		}
		at = at.Add(halfPeriod)
		if at <= until {
			k.Schedule(at, flip)
		}
	}
	k.Schedule(at, flip)
}
