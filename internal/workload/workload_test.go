package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sharded"
	"repro/internal/sim"
)

func TestAntagonistSquareWave(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, 0, "m", cluster.MachineConfig{Cores: 8})
	a := &Antagonist{Machine: m, Period: 20 * time.Millisecond, Busy: 10 * time.Millisecond, Cores: 8}
	a.Start(k)
	samples := map[sim.Time]float64{}
	for _, at := range []sim.Time{sim.Time(5 * time.Millisecond), sim.Time(15 * time.Millisecond),
		sim.Time(25 * time.Millisecond), sim.Time(35 * time.Millisecond)} {
		at := at
		k.Schedule(at, func() { samples[at] = m.Reserved() })
	}
	k.Schedule(40*sim.Millisecond, func() { a.Stop(); k.Stop() })
	k.Run()
	if samples[sim.Time(5*time.Millisecond)] != 8 || samples[sim.Time(25*time.Millisecond)] != 8 {
		t.Errorf("busy windows wrong: %v", samples)
	}
	if samples[sim.Time(15*time.Millisecond)] != 0 || samples[sim.Time(35*time.Millisecond)] != 0 {
		t.Errorf("idle windows wrong: %v", samples)
	}
}

func TestAntagonistPhaseOffset(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, 0, "m", cluster.MachineConfig{Cores: 4})
	a := &Antagonist{Machine: m, Period: 20 * time.Millisecond, Busy: 10 * time.Millisecond,
		Offset: 10 * time.Millisecond, Cores: 4}
	a.Start(k)
	var at5, at15 float64 = -1, -1
	k.Schedule(5*sim.Millisecond, func() { at5 = m.Reserved() })
	k.Schedule(15*sim.Millisecond, func() { at15 = m.Reserved() })
	k.Schedule(30*sim.Millisecond, func() { a.Stop(); k.Stop() })
	k.Run()
	if at5 != 0 || at15 != 4 {
		t.Errorf("offset wave: at5=%v at15=%v, want 0 and 4", at5, at15)
	}
}

func TestAntagonistJitterDeterministic(t *testing.T) {
	// Same injected RNG seed → identical reservation timeline; jitter
	// must never come from package-global randomness.
	run := func(seed int64) []float64 {
		k := sim.NewKernel(1)
		m := cluster.NewMachine(k, 0, "m", cluster.MachineConfig{Cores: 8})
		a := &Antagonist{Machine: m, Period: 20 * time.Millisecond, Busy: 8 * time.Millisecond,
			Cores: 8, Jitter: 4 * time.Millisecond, Rng: rand.New(rand.NewSource(seed))}
		a.Start(k)
		var samples []float64
		for at := sim.Time(time.Millisecond); at < sim.Time(200*time.Millisecond); at += sim.Time(time.Millisecond) {
			k.Schedule(at, func() { samples = append(samples, m.Reserved()) })
		}
		k.Schedule(sim.Time(200*time.Millisecond), func() { a.Stop(); k.Stop() })
		k.Run()
		return samples
	}
	a1, a2, b := run(5), run(5), run(6)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different jitter timeline")
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter timeline (jitter inert?)")
	}
}

func TestAntagonistJitterRequiresRng(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, 0, "m", cluster.MachineConfig{Cores: 8})
	a := &Antagonist{Machine: m, Period: 20 * time.Millisecond, Busy: 8 * time.Millisecond,
		Cores: 8, Jitter: 2 * time.Millisecond}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: jitter without injected RNG")
		}
	}()
	a.Start(k)
}

func TestGenImagesDeterministicAndCalibrated(t *testing.T) {
	g1 := GenImages(rand.New(rand.NewSource(7)), 1000, 1<<20, 100*time.Millisecond, 0.3)
	g2 := GenImages(rand.New(rand.NewSource(7)), 1000, 1<<20, 100*time.Millisecond, 0.3)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("corpus not deterministic")
		}
	}
	cpu := TotalCPU(g1)
	if cpu < 90 || cpu > 110 { // 1000 x ~100ms = ~100 core-seconds
		t.Errorf("TotalCPU = %v, want ~100", cpu)
	}
	bytes := TotalBytes(g1)
	if bytes < 900<<20 || bytes > 1100<<20 {
		t.Errorf("TotalBytes = %v, want ~1GiB", bytes)
	}
	for _, im := range g1 {
		f := float64(im.Bytes) / float64(1<<20)
		if f < 0.69 || f > 1.31 {
			t.Errorf("image %d bytes out of spread: %v", im.Idx, f)
		}
	}
}

func gpuTestSys(t *testing.T) (*core.System, *sharded.Queue[Batch]) {
	t.Helper()
	s := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 1 << 30},
		{Cores: 8, MemBytes: 1 << 30},
	})
	q, err := sharded.NewQueue[Batch](s, "q", sharded.Options{MaxShardBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return s, q
}

func TestGPUPoolDrainsQueue(t *testing.T) {
	s, q := gpuTestSys(t)
	g := NewGPUPool(q, 1, time.Millisecond, 4)
	g.Start(s.K)
	s.K.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			q.Push(p, 0, Batch{Seq: i, Bytes: 1 << 10}, 1<<10)
		}
	})
	s.K.RunUntil(sim.Time(50 * time.Millisecond))
	g.Stop()
	if g.Consumed.Value() != 40 {
		t.Errorf("Consumed = %d, want 40", g.Consumed.Value())
	}
	// 40 batches / 4 GPUs x 1ms = ~10ms of busy time each.
	if g.BusySeconds() < 0.039 || g.BusySeconds() > 0.041 {
		t.Errorf("BusySeconds = %v, want 0.040", g.BusySeconds())
	}
}

func TestGPUPoolSetActiveThrottles(t *testing.T) {
	s, q := gpuTestSys(t)
	g := NewGPUPool(q, 1, time.Millisecond, 8)
	g.SetActive(s.K, 2)
	g.Start(s.K)
	s.K.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			q.Push(p, 0, Batch{Seq: i, Bytes: 256}, 256)
		}
	})
	// 2 GPUs x 1ms per batch: after 10ms, at most ~20 consumed.
	s.K.RunUntil(sim.Time(10 * time.Millisecond))
	if got := g.Consumed.Value(); got > 22 {
		t.Errorf("Consumed = %d with 2 GPUs after 10ms, want <= ~20", got)
	}
	g.SetActive(s.K, 8)
	s.K.RunUntil(sim.Time(30 * time.Millisecond))
	g.Stop()
	if g.Consumed.Value() < 90 {
		t.Errorf("Consumed = %d after reactivation, want ~100", g.Consumed.Value())
	}
	if g.ConsumptionRate() != 8000 {
		t.Errorf("ConsumptionRate = %v, want 8000/s", g.ConsumptionRate())
	}
}

func TestToggle(t *testing.T) {
	k := sim.NewKernel(1)
	var levels []int
	Toggle(k, 200*time.Millisecond, 8, 4, sim.Time(700*time.Millisecond), func(n int) {
		levels = append(levels, n)
	})
	k.Run()
	want := []int{8, 4, 8, 4}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}
