package replication

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// testCluster builds a kernel + n-machine cluster with the detector's
// handlers not yet installed.
func testCluster(t *testing.T, n int) (*sim.Kernel, *cluster.Cluster, *trace.Log) {
	t.Helper()
	k := sim.NewKernel(1)
	c := cluster.New(k, simnet.DefaultConfig())
	for i := 0; i < n; i++ {
		c.AddMachine(cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28})
	}
	return k, c, trace.New()
}

func TestDetectorCrashSuspectConfirm(t *testing.T) {
	k, c, tl := testCluster(t, 3)
	in := fault.New(k, c, tl)
	d := NewDetector(k, c, tl, Config{}, 0)

	var order []string
	d.OnSuspect = func(mid cluster.MachineID) {
		order = append(order, "suspect")
		if mid != 1 {
			t.Errorf("suspected m%d, want m1", mid)
		}
	}
	d.OnConfirm = func(mid cluster.MachineID) {
		order = append(order, "confirm")
		if mid != 1 {
			t.Errorf("confirmed m%d, want m1", mid)
		}
		if d.LeaseValid(1) {
			t.Error("lease still valid at confirmation (split-brain window)")
		}
	}
	d.Start()
	in.Install(fault.Schedule{{At: sim.Time(2 * time.Millisecond), Op: fault.OpCrash, A: 1}})
	k.RunUntil(sim.Time(20 * time.Millisecond))

	if len(order) != 2 || order[0] != "suspect" || order[1] != "confirm" {
		t.Fatalf("hook order = %v, want [suspect confirm]", order)
	}
	if got := d.State(1); got != StateDead {
		t.Errorf("State(1) = %v, want dead", got)
	}
	if got := d.State(2); got != StateAlive {
		t.Errorf("State(2) = %v, want alive", got)
	}
	if d.Confirms.Value() != 1 || d.Suspects.Value() != 1 {
		t.Errorf("Suspects=%d Confirms=%d, want 1/1", d.Suspects.Value(), d.Confirms.Value())
	}
	if d.DetectLatency.Count() != 1 {
		t.Errorf("DetectLatency samples = %d, want 1", d.DetectLatency.Count())
	}
	// Blind window: last beat to confirmation should span at least
	// ConfirmMisses heartbeat periods.
	min := (time.Duration(d.Config().ConfirmMisses) * d.Config().HeartbeatPeriod).Seconds() * 0.5
	if got := d.DetectLatency.Mean(); got < min {
		t.Errorf("detect latency %.6fs implausibly small (< %.6fs)", got, min)
	}
}

func TestDetectorFalseSuspicionHealsHarmlessly(t *testing.T) {
	k, c, tl := testCluster(t, 2)
	in := fault.New(k, c, tl)
	cfg := DefaultConfig()
	d := NewDetector(k, c, tl, cfg, 0)
	confirmed := false
	d.OnConfirm = func(cluster.MachineID) { confirmed = true }
	d.Start()

	// Drop all monitor->m1 traffic for ~3 heartbeat periods: long enough
	// to suspect, too short to confirm.
	in.Install(fault.Schedule{
		{At: sim.Time(2 * time.Millisecond), Op: fault.OpDegrade, A: 0, B: 1, Drop: 1.0},
		{At: sim.Time(2*time.Millisecond + 3*cfg.HeartbeatPeriod), Op: fault.OpHeal, A: 0, B: 1},
	})
	k.RunUntil(sim.Time(20 * time.Millisecond))

	if confirmed {
		t.Fatal("short degradation must not confirm the machine dead")
	}
	if d.FalseSuspects.Value() != 1 {
		t.Errorf("FalseSuspects = %d, want 1", d.FalseSuspects.Value())
	}
	if got := d.State(1); got != StateAlive {
		t.Errorf("State(1) = %v, want alive after heal", got)
	}
	if !d.LeaseValid(1) {
		t.Error("lease should be renewed after heal")
	}
}

func TestDetectorPartitionLapsesLeaseBeforeConfirm(t *testing.T) {
	k, c, tl := testCluster(t, 2)
	in := fault.New(k, c, tl)
	d := NewDetector(k, c, tl, Config{}, 0)
	var confirmAt, lapsedBy sim.Time
	d.OnConfirm = func(mid cluster.MachineID) {
		confirmAt = k.Now()
		lapsedBy = d.LeaseExpiry(mid)
	}
	d.Start()
	in.Install(fault.Schedule{{At: sim.Time(time.Millisecond), Op: fault.OpPartition, A: 0, B: 1}})
	k.RunUntil(sim.Time(20 * time.Millisecond))

	if confirmAt == 0 {
		t.Fatal("partition from the monitor should eventually confirm")
	}
	if lapsedBy >= confirmAt {
		t.Errorf("lease expiry %v not strictly before confirmation %v", lapsedBy, confirmAt)
	}
}

func TestConfigRejectsUnsafeLease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for LeaseDuration >= ConfirmMisses*HeartbeatPeriod")
		}
	}()
	cfg := Config{
		HeartbeatPeriod: time.Millisecond,
		SuspectMisses:   1,
		ConfirmMisses:   2,
		LeaseDuration:   5 * time.Millisecond,
	}
	cfg.withDefaults()
}
