// Package replication provides the failure-detection half of
// Quicksand's durability plane: a heartbeat-based failure detector with
// a suspect→confirm state machine, and machine-granular leases that
// make failover safe under partitions.
//
// The detector replaces the oracle crash knowledge used by the early
// recovery path (core.AttachInjector used to re-place orphans at the
// instant of the injected crash). Here a monitor machine pings every
// machine over the simulated fabric; consecutive missed heartbeats move
// a machine Alive→Suspect→Dead, and only a Dead confirmation triggers
// recovery. Degraded or partitioned links can produce false suspicion —
// the lease protocol renders that harmless: a machine's lease is
// renewed by the same heartbeats, so by the time the detector confirms
// a machine dead, any still-alive-but-partitioned primary on it has
// already stopped serving (its lease lapsed strictly before the
// confirmation, provided LeaseDuration < ConfirmMisses*HeartbeatPeriod).
//
// All timing randomness (heartbeat jitter) is drawn from the kernel
// RNG, so runs are deterministic per seed.
package replication

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// methodPing is the heartbeat RPC served by every machine's node.
const methodPing = "repl.ping"

// pingBytes is the on-wire size of a heartbeat request and reply.
const pingBytes = 16

// Config tunes the failure detector and the lease protocol.
type Config struct {
	// HeartbeatPeriod is the monitor's per-machine ping interval.
	HeartbeatPeriod time.Duration
	// HeartbeatJitter is the fraction of each period randomized (0..1),
	// drawn from the kernel RNG: a period d becomes uniform in
	// [d*(1-j/2), d*(1+j/2)]. Jitter de-synchronizes the per-machine
	// ping loops.
	HeartbeatJitter float64
	// PingTimeout bounds each heartbeat RPC. Zero defaults to
	// HeartbeatPeriod.
	PingTimeout time.Duration
	// SuspectMisses is the number of consecutive missed heartbeats
	// after which a machine becomes Suspect.
	SuspectMisses int
	// ConfirmMisses is the number of consecutive missed heartbeats
	// after which a Suspect machine is confirmed Dead and recovery
	// begins. Must exceed SuspectMisses.
	ConfirmMisses int
	// LeaseDuration is how long a machine's serving lease lasts past
	// its most recent heartbeat arrival. Safety requires
	// LeaseDuration < ConfirmMisses*HeartbeatPeriod so a partitioned
	// primary's lease lapses strictly before the detector confirms it
	// dead and promotes a backup — never two serving primaries.
	LeaseDuration time.Duration
}

// DefaultConfig returns detector parameters tuned for the simulated
// fabric's microsecond RPCs: confirmation in ~3ms of a fail-stop,
// leases lapsing ~1ms before that.
func DefaultConfig() Config {
	return Config{
		HeartbeatPeriod: 500 * time.Microsecond,
		HeartbeatJitter: 0.2,
		SuspectMisses:   2,
		ConfirmMisses:   6,
		LeaseDuration:   2 * time.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = d.HeartbeatPeriod
	}
	if c.HeartbeatJitter < 0 {
		c.HeartbeatJitter = 0
	} else if c.HeartbeatJitter > 1 {
		c.HeartbeatJitter = 1
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = c.HeartbeatPeriod
	}
	if c.SuspectMisses <= 0 {
		c.SuspectMisses = d.SuspectMisses
	}
	if c.ConfirmMisses <= c.SuspectMisses {
		c.ConfirmMisses = c.SuspectMisses + d.ConfirmMisses - d.SuspectMisses
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = d.LeaseDuration
	}
	if c.LeaseDuration >= time.Duration(c.ConfirmMisses)*c.HeartbeatPeriod {
		panic(fmt.Sprintf(
			"replication: LeaseDuration %v must be below ConfirmMisses*HeartbeatPeriod %v (split-brain window)",
			c.LeaseDuration, time.Duration(c.ConfirmMisses)*c.HeartbeatPeriod))
	}
	return c
}

// MachineState is the detector's view of one machine.
type MachineState int

// Detector states for a machine.
const (
	StateAlive MachineState = iota
	StateSuspect
	StateDead
)

func (s MachineState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// machineHealth is the detector's per-machine record.
type machineHealth struct {
	state    MachineState
	misses   int
	lastBeat sim.Time // arrival time of the most recent successful ping reply
}

// Detector is the heartbeat failure detector. One monitor machine pings
// every machine in the cluster; per-machine miss counts drive the
// Alive→Suspect→Dead state machine, and successful ping *arrivals* at
// the target renew that machine's serving lease.
type Detector struct {
	k       *sim.Kernel
	c       *cluster.Cluster
	tl      *trace.Log
	cfg     Config
	monitor cluster.MachineID

	health map[cluster.MachineID]*machineHealth
	leases map[cluster.MachineID]sim.Time // serving-lease expiry per machine

	// OnSuspect fires when a machine transitions Alive→Suspect;
	// OnConfirm when Suspect→Dead (recovery should begin); OnAlive on
	// every successful heartbeat round trip — not just transitions —
	// because a machine can crash and restart so fast it never leaves
	// Alive, yet its orphaned proclets still need recovery. Hooks run on
	// the detector's per-machine ping process and should spawn if they
	// need to block for long.
	OnSuspect func(cluster.MachineID)
	OnConfirm func(cluster.MachineID)
	OnAlive   func(cluster.MachineID)

	// Counters and distributions for experiments and tools.
	HeartbeatsSent   metrics.Counter
	HeartbeatsMissed metrics.Counter
	Suspects         metrics.Counter
	Confirms         metrics.Counter
	FalseSuspects    metrics.Counter // Suspect machines that answered again
	// DetectLatency records, at each confirmation, seconds since the
	// machine's last successful heartbeat — the blind window.
	DetectLatency *metrics.Histogram

	started bool
	stopped bool
}

// NewDetector creates a detector monitoring every machine currently in
// the cluster from the given monitor machine. It registers the
// heartbeat handler on every node and grants every machine an initial
// lease; Start launches the ping loops. tl may be nil.
func NewDetector(k *sim.Kernel, c *cluster.Cluster, tl *trace.Log, cfg Config, monitor cluster.MachineID) *Detector {
	d := &Detector{
		k:             k,
		c:             c,
		tl:            tl,
		cfg:           cfg.withDefaults(),
		monitor:       monitor,
		health:        make(map[cluster.MachineID]*machineHealth),
		leases:        make(map[cluster.MachineID]sim.Time),
		DetectLatency: metrics.NewHistogram("replication.detect_latency"),
	}
	now := k.Now()
	for _, m := range c.Machines() {
		mid := m.ID
		d.health[mid] = &machineHealth{state: StateAlive, lastBeat: now}
		d.leases[mid] = now + sim.Time(d.cfg.LeaseDuration)
		// The handler runs in kernel context at request delivery on the
		// target machine: the lease renewal models local knowledge — a
		// partitioned machine stops receiving pings and its lease lapses
		// without any cross-machine coordination.
		d.c.Node(mid).HandleFast(methodPing, func(req simnet.Message) (simnet.Message, error) {
			d.leases[mid] = d.k.Now() + sim.Time(d.cfg.LeaseDuration)
			return simnet.Message{Bytes: pingBytes}, nil
		})
	}
	return d
}

// Config returns the detector's (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Monitor returns the machine the ping loops run on.
func (d *Detector) Monitor() cluster.MachineID { return d.monitor }

// Start launches one heartbeat process per monitored machine. Call
// once, after the cluster is fully populated.
func (d *Detector) Start() {
	if d.started {
		panic("replication: detector started twice")
	}
	d.started = true
	now := d.k.Now()
	for _, m := range d.c.Machines() {
		mid := m.ID
		d.health[mid].lastBeat = now
		d.leases[mid] = now + sim.Time(d.cfg.LeaseDuration)
		d.k.Spawn(fmt.Sprintf("repl/fd-m%d", mid), func(p *sim.Proc) {
			d.pingLoop(p, mid)
		})
	}
}

// Stop halts the ping loops at their next iteration.
func (d *Detector) Stop() { d.stopped = true }

// pingLoop is the monitor's heartbeat process for one machine.
func (d *Detector) pingLoop(p *sim.Proc, mid cluster.MachineID) {
	for !d.stopped {
		d.sleepPeriod(p)
		if d.stopped {
			return
		}
		d.HeartbeatsSent.Inc()
		_, err := d.c.Fabric.CallWithTimeout(p,
			simnet.NodeID(d.monitor), simnet.NodeID(mid),
			methodPing, simnet.Message{Bytes: pingBytes}, d.cfg.PingTimeout)
		if err == nil {
			d.noteAlive(mid, p.Now())
		} else {
			d.HeartbeatsMissed.Inc()
			d.noteMiss(mid)
		}
	}
}

// sleepPeriod sleeps one jittered heartbeat period.
func (d *Detector) sleepPeriod(p *sim.Proc) {
	period := d.cfg.HeartbeatPeriod
	if j := d.cfg.HeartbeatJitter; j > 0 {
		period = time.Duration(float64(period) * (1 - j/2 + j*d.k.Rand().Float64()))
	}
	p.Sleep(period)
}

// noteAlive records a successful heartbeat round trip.
func (d *Detector) noteAlive(mid cluster.MachineID, at sim.Time) {
	h := d.health[mid]
	prev := h.state
	h.misses = 0
	h.lastBeat = at
	h.state = StateAlive
	switch prev {
	case StateSuspect:
		d.FalseSuspects.Inc()
		d.tl.Emitf(at, trace.KindSuspect, fmt.Sprintf("m%d", mid), int(d.monitor), int(mid),
			"cleared: heartbeat answered")
	case StateDead:
		d.tl.Emitf(at, trace.KindSuspect, fmt.Sprintf("m%d", mid), int(d.monitor), int(mid),
			"rejoined after confirm")
	}
	if d.OnAlive != nil {
		d.OnAlive(mid)
	}
}

// noteMiss records a missed heartbeat and advances the state machine.
func (d *Detector) noteMiss(mid cluster.MachineID) {
	h := d.health[mid]
	h.misses++
	switch {
	case h.state == StateAlive && h.misses >= d.cfg.SuspectMisses:
		h.state = StateSuspect
		d.Suspects.Inc()
		d.tl.Emitf(d.k.Now(), trace.KindSuspect, fmt.Sprintf("m%d", mid), int(d.monitor), int(mid),
			"suspected after %d misses", h.misses)
		if d.OnSuspect != nil {
			d.OnSuspect(mid)
		}
	case h.state == StateSuspect && h.misses >= d.cfg.ConfirmMisses:
		h.state = StateDead
		d.Confirms.Inc()
		d.DetectLatency.ObserveDuration(time.Duration(d.k.Now() - h.lastBeat))
		d.tl.Emitf(d.k.Now(), trace.KindSuspect, fmt.Sprintf("m%d", mid), int(d.monitor), int(mid),
			"confirmed dead after %d misses", h.misses)
		if d.OnConfirm != nil {
			d.OnConfirm(mid)
		}
	}
}

// State returns the detector's view of machine mid.
func (d *Detector) State(mid cluster.MachineID) MachineState {
	if h, ok := d.health[mid]; ok {
		return h.state
	}
	return StateAlive
}

// LeaseValid reports whether machine mid currently holds a serving
// lease: its most recent heartbeat arrived within LeaseDuration. A
// primary on a machine without a valid lease must not serve.
func (d *Detector) LeaseValid(mid cluster.MachineID) bool {
	exp, ok := d.leases[mid]
	return ok && d.k.Now() < exp
}

// LeaseExpiry returns machine mid's current lease expiry instant.
func (d *Detector) LeaseExpiry(mid cluster.MachineID) sim.Time { return d.leases[mid] }
