package slo

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// FlightRecorder is a bounded ring of recent noteworthy moments —
// control-plane events, closed SLO windows, incident transitions. It
// costs O(capacity) memory no matter how long the run is, and its
// snapshot is dumped when a scenario assertion fails or an incident
// opens, so failure reports carry the last seconds of context instead
// of a terse metric diff.
//
// All methods are nil-safe no-ops, so wiring sites need no guards.
// Entries are recorded from kernel context (single-threaded per
// shard), so no locking; per-shard recorders merge deterministically
// by (time, shard) in MergeSnapshots.
type FlightRecorder struct {
	cap  int
	ring []FlightEntry
	n    int // total entries ever recorded
}

// FlightEntry is one recorded moment.
type FlightEntry struct {
	At     sim.Time
	Shard  int    // recording shard; -1 for single-kernel runs
	Source string // "event", "window", "incident", "note"
	Text   string
}

func (e FlightEntry) String() string {
	return fmt.Sprintf("%12v s%d %-8s %s", e.At, e.Shard, e.Source, e.Text)
}

// NewFlightRecorder creates a recorder keeping the last capacity
// entries (64 if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 64
	}
	return &FlightRecorder{cap: capacity, ring: make([]FlightEntry, 0, capacity)}
}

// Note records one entry, evicting the oldest when full.
func (f *FlightRecorder) Note(at sim.Time, source, text string) {
	if f == nil {
		return
	}
	e := FlightEntry{At: at, Shard: -1, Source: source, Text: text}
	if len(f.ring) < f.cap {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.n%f.cap] = e
	}
	f.n++
}

// AttachLog hooks the recorder onto a control-plane log so every
// emitted event lands in the ring, chaining any hook already
// installed.
func (f *FlightRecorder) AttachLog(l *trace.Log) {
	if f == nil || l == nil {
		return
	}
	prev := l.OnEmit
	l.OnEmit = func(e trace.Event) {
		if prev != nil {
			prev(e)
		}
		f.Note(e.At, "event", fmt.Sprintf("%-9s %s %s", e.Kind, e.Subject, e.Detail))
	}
}

// Recorded returns the total number of entries ever recorded
// (including evicted ones).
func (f *FlightRecorder) Recorded() int {
	if f == nil {
		return 0
	}
	return f.n
}

// Dropped returns how many entries were evicted from the ring.
func (f *FlightRecorder) Dropped() int {
	if f == nil {
		return 0
	}
	if f.n <= f.cap {
		return 0
	}
	return f.n - f.cap
}

// Snapshot returns the retained entries, oldest first.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	if f.n <= f.cap {
		out := make([]FlightEntry, len(f.ring))
		copy(out, f.ring)
		return out
	}
	out := make([]FlightEntry, 0, f.cap)
	start := f.n % f.cap
	out = append(out, f.ring[start:]...)
	out = append(out, f.ring[:start]...)
	return out
}

// MergeSnapshots interleaves per-shard snapshots into one timeline,
// ordered by time with ties broken by shard index — deterministic
// regardless of worker count. Each entry is tagged with its shard.
func MergeSnapshots(shards ...[]FlightEntry) []FlightEntry {
	var out []FlightEntry
	for s, entries := range shards {
		for _, e := range entries {
			e.Shard = s
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// WriteDump renders a flight-recorder dump: a header with totals, then
// one line per entry. Byte-deterministic given deterministic entries.
func WriteDump(w io.Writer, title string, entries []FlightEntry, dropped int) error {
	if _, err := fmt.Fprintf(w, "flight recorder: %s (%d entries, %d evicted)\n", title, len(entries), dropped); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
