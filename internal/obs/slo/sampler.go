package slo

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Tail-based trace sampling. A full tracer records every causal tree;
// most trees are boring. Filter keeps the interesting ones — tail
// latency, errors, incident overlap — plus a seeded 1-in-N head
// sample, and drops the rest. Because span IDs are assigned at record
// time (independent of retention) and Put copies spans verbatim, the
// sampled tracer's export is a literal ID-level subset of the full
// export: byte-identical records, just fewer of them. cmd/tracecheck
// gates exactly that property.

// SampleConfig tunes the retention decision. The zero value keeps
// nothing but errors; typical configs set all fields.
type SampleConfig struct {
	Seed      uint64 // run seed folded into the head-sample hash
	HeadEvery uint64 // keep 1 in HeadEvery trees unconditionally (0: no head sample)
	TailNS    int64  // keep trees whose end-to-end extent exceeds this (0: keep all completed)
	Budget    int    // max spans kept per retained tree, lowest IDs first (0: unlimited)
}

// SampleStats reports what Filter kept and why. A tree retained for
// several reasons counts once, under the first matching reason in
// Tail, Err, Incident, Head order.
type SampleStats struct {
	Trees     int // causal trees in the full tracer
	Kept      int // trees retained
	FullSpans int
	KeptSpans int
	Truncated int // spans dropped from retained trees by Budget
	Tail      int // trees kept for tail latency (or never completing)
	Err       int // trees kept for a span error
	Incident  int // trees kept for overlapping an incident
	Head      int // trees kept by the seeded head sample
}

// splitmix64 is the head-sample hash: a fixed avalanche mix, so the
// keep set depends only on (seed, trace ID) — never on worker count,
// retention of other trees, or iteration order.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// interval is a closed time range.
type interval struct{ from, to sim.Time }

// Filter builds the sampled tracer from a full one. incidents mark
// time ranges whose overlapping trees are always retained (an open
// incident extends to the horizon). The result preserves the full
// tracer's base and every kept span verbatim.
func Filter(full *obs.Tracer, incidents []Incident, cfg SampleConfig) (*obs.Tracer, SampleStats) {
	var st SampleStats
	out := obs.NewTracerWithBase(nil, full.Base())
	spans := full.SpansByID()
	st.FullSpans = len(spans)
	if len(spans) == 0 {
		return out, st
	}

	// Horizon: latest timestamp in the tracer, used to clamp open spans
	// and open incidents.
	var horizon sim.Time
	for i := range spans {
		if spans[i].Start > horizon {
			horizon = spans[i].Start
		}
		if spans[i].Done && spans[i].End > horizon {
			horizon = spans[i].End
		}
	}
	var incs []interval
	for i := range incidents {
		to := incidents[i].CloseAt
		if incidents[i].Open {
			to = horizon
		}
		incs = append(incs, interval{from: incidents[i].OpenAt, to: to})
	}

	// Group spans by causal tree. Spans are in ID order and a root's ID
	// is its TraceID (the smallest in the tree), so trees appear as
	// runs keyed by TraceID; order of first appearance is root-ID order.
	byTree := map[obs.SpanID][]int{}
	var treeOrder []obs.SpanID
	for i := range spans {
		tid := spans[i].TraceID
		if _, ok := byTree[tid]; !ok {
			treeOrder = append(treeOrder, tid)
		}
		byTree[tid] = append(byTree[tid], i)
	}
	st.Trees = len(treeOrder)

	for _, tid := range treeOrder {
		idxs := byTree[tid]
		// The tree's extent is its earliest start to its latest end —
		// retroactively recorded children (e.g. a request span whose
		// start is the arrival, before the batch root opened) count, so
		// queue wait is part of the tail decision.
		from, to := spans[idxs[0]].Start, sim.Time(0)
		open := false
		for _, i := range idxs {
			s := &spans[i]
			if s.Start < from {
				from = s.Start
			}
			if !s.Done {
				open = true
			} else if s.End > to {
				to = s.End
			}
		}
		if open {
			to = horizon
		}
		keep := false
		switch {
		case open || int64(to-from) > cfg.TailNS:
			keep = true
			st.Tail++
		case treeHasErr(spans, idxs):
			keep = true
			st.Err++
		case overlapsAny(from, to, incs):
			keep = true
			st.Incident++
		case cfg.HeadEvery > 0 && splitmix64(cfg.Seed^uint64(tid))%cfg.HeadEvery == 0:
			keep = true
			st.Head++
		}
		if !keep {
			continue
		}
		st.Kept++
		n := len(idxs)
		if cfg.Budget > 0 && n > cfg.Budget {
			// Truncate to the lowest-ID spans. Parents are recorded
			// before children, so an ID-prefix of a tree is
			// prefix-closed: no kept span orphans its parent.
			st.Truncated += n - cfg.Budget
			n = cfg.Budget
		}
		for _, i := range idxs[:n] {
			out.Put(spans[i])
		}
		st.KeptSpans += n
	}
	return out, st
}

func treeHasErr(spans []obs.Span, idxs []int) bool {
	for _, i := range idxs {
		if spans[i].Err != "" {
			return true
		}
	}
	return false
}

func overlapsAny(from, to sim.Time, incs []interval) bool {
	for _, iv := range incs {
		if from <= iv.to && iv.from <= to {
			return true
		}
	}
	return false
}
