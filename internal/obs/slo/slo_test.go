package slo

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

const win = sim.Time(100 * time.Millisecond)

// feedWindow drives n completions spread across window idx with the
// given latency.
func feedWindow(m *Monitor, idx int, n int, latNS int64, isErr bool) {
	start := sim.Time(idx) * win
	step := win / sim.Time(n+1)
	for i := 0; i < n; i++ {
		m.Observe(start+sim.Time(i+1)*step, latNS, isErr)
	}
}

func TestMonitorOpensAndClosesIncident(t *testing.T) {
	tl := trace.New()
	k := sim.NewKernel(1)
	tr := obs.NewTracer(k)
	m := New(Config{
		Window: win, Windows: 5, Subject: "api", Machine: -1,
		Rules: []Rule{{Kind: P999Above, BoundMS: 50, For: 3, Severity: "page"}},
	})
	m.Log = tl
	m.Tracer = tr

	// A control-plane event before the breach: becomes the cause.
	tl.Emitf(sim.Time(250*time.Millisecond), trace.KindCrash, "m3", 3, -1, "fail-stop")

	for i := 0; i < 3; i++ {
		feedWindow(m, i, 50, int64(10*time.Millisecond), false)
	}
	for i := 3; i < 8; i++ { // five slow windows; third closes -> open
		feedWindow(m, i, 50, int64(80*time.Millisecond), false)
	}
	if got := m.Opened(); got != 1 {
		t.Fatalf("Opened = %d, want 1", got)
	}
	inc := m.Incidents()[0]
	// Breaching windows are 3,4,5...; the rule (for=3) trips when
	// window 5 closes, i.e. at the end of window 5 = 600ms.
	if want := sim.Time(600 * time.Millisecond); inc.OpenAt != want {
		t.Errorf("OpenAt = %v, want %v", inc.OpenAt, want)
	}
	if !inc.Open || inc.Severity != "page" {
		t.Errorf("incident = %+v, want open page", inc)
	}
	if inc.Cause != "crash m3" {
		t.Errorf("Cause = %q, want \"crash m3\"", inc.Cause)
	}

	// Recovery: fast windows until zero of the last 5 breach.
	for i := 8; i < 14; i++ {
		feedWindow(m, i, 50, int64(10*time.Millisecond), false)
	}
	m.Finish(sim.Time(14) * win)
	inc = m.Incidents()[0]
	if inc.Open {
		t.Fatal("incident did not close after recovery")
	}
	// Last breaching window is 7; it leaves the 5-window ring when
	// window 12 closes, at 1300ms.
	if want := sim.Time(1300 * time.Millisecond); inc.CloseAt != want {
		t.Errorf("CloseAt = %v, want %v", inc.CloseAt, want)
	}

	// The incident span: recorded at close, spanning [open, close].
	sp := tr.Span(inc.Span)
	if sp == nil || sp.Kind != obs.KindIncident {
		t.Fatalf("incident span missing: %+v", sp)
	}
	if sp.Start != inc.OpenAt || sp.End != inc.CloseAt || !sp.Done {
		t.Errorf("span interval [%v,%v] done=%v, want [%v,%v] done", sp.Start, sp.End, sp.Done, inc.OpenAt, inc.CloseAt)
	}

	// Log carries exactly one open and one close event.
	incEvents := tl.Filter(trace.KindIncident)
	if len(incEvents) != 2 {
		t.Fatalf("incident events = %d, want 2", len(incEvents))
	}
	if !strings.HasPrefix(incEvents[0].Detail, "open ") || !strings.HasPrefix(incEvents[1].Detail, "close ") {
		t.Errorf("event details = %q, %q", incEvents[0].Detail, incEvents[1].Detail)
	}
}

func TestMonitorGapWindowsBreachGoodput(t *testing.T) {
	m := New(Config{
		Window: win, Windows: 4, Subject: "kv",
		Rules: []Rule{{Kind: GoodputBelow, FloorRPS: 100, For: 2}},
	})
	// Healthy traffic (500 rps), then a dead gap of 5 windows: the gap
	// windows close empty and must breach the goodput floor.
	for i := 0; i < 3; i++ {
		feedWindow(m, i, 50, int64(time.Millisecond), false)
	}
	feedWindow(m, 8, 50, int64(time.Millisecond), false) // resumes after gap
	if m.Opened() != 1 {
		t.Fatalf("Opened = %d, want 1 (outage must open via empty windows)", m.Opened())
	}
	inc := m.Incidents()[0]
	// Gap windows 3 and 4 close when the clock reaches window 8; the
	// second empty window trips for=2 at its end, 500ms.
	if want := sim.Time(500 * time.Millisecond); inc.OpenAt != want {
		t.Errorf("OpenAt = %v, want %v", inc.OpenAt, want)
	}
	// Recovery then closes it once 4 consecutive healthy windows pass.
	for i := 9; i < 14; i++ {
		feedWindow(m, i, 50, int64(time.Millisecond), false)
	}
	if m.Resolved() != 1 {
		t.Fatalf("Resolved = %d, want 1", m.Resolved())
	}
}

func TestMonitorErrorRateRule(t *testing.T) {
	m := New(Config{
		Window: win, Windows: 3, Subject: "api",
		Rules: []Rule{{Kind: ErrorRateAbove, Ceiling: 0.10, For: 1}},
	})
	feedWindow(m, 0, 90, int64(time.Millisecond), false)
	feedWindow(m, 1, 70, int64(time.Millisecond), false)
	// Window 1 gains 30 errors: 30% > 10% ceiling.
	start := sim.Time(1) * win
	for i := 0; i < 30; i++ {
		m.Observe(start+sim.Time(i+1)*(win/40), int64(time.Millisecond), true)
	}
	m.Finish(3 * win)
	if m.Opened() != 1 {
		t.Fatalf("Opened = %d, want 1", m.Opened())
	}
	if m.Breaches() != 1 {
		t.Errorf("Breaches = %d, want 1", m.Breaches())
	}
}

func TestMonitorFinishLeavesOpenIncidentMarked(t *testing.T) {
	k := sim.NewKernel(1)
	tr := obs.NewTracer(k)
	m := New(Config{
		Window: win, Windows: 3, Subject: "api", Machine: -1,
		Rules: []Rule{{Kind: P999Above, BoundMS: 10, For: 1}},
	})
	m.Tracer = tr
	feedWindow(m, 0, 20, int64(50*time.Millisecond), false)
	feedWindow(m, 1, 20, int64(50*time.Millisecond), false)
	horizon := sim.Time(2)*win + win/2 // mid-window-2: partial window dropped
	m.Finish(horizon)
	if m.WindowsClosed() != 2 {
		t.Fatalf("WindowsClosed = %d, want 2 (partial window must not close)", m.WindowsClosed())
	}
	if m.Opened() != 1 || m.Resolved() != 0 || m.OpenCount() != 1 {
		t.Fatalf("opened/resolved/open = %d/%d/%d", m.Opened(), m.Resolved(), m.OpenCount())
	}
	inc := m.Incidents()[0]
	sp := tr.Span(inc.Span)
	if sp == nil {
		t.Fatal("still-open incident must get a span at Finish")
	}
	if sp.End != horizon {
		t.Errorf("span end = %v, want horizon %v", sp.End, horizon)
	}
	found := false
	for _, a := range sp.Attrs {
		if a.Key == "still_open" {
			found = true
		}
	}
	if !found {
		t.Error("still-open span missing still_open attr")
	}
}

func TestObserveZeroAllocSteadyState(t *testing.T) {
	m := New(Config{
		Window: win, Windows: 5, Subject: "api",
		Rules: []Rule{{Kind: P999Above, BoundMS: 50, For: 3}},
	})
	m.Observe(1, int64(time.Millisecond), false)
	at := sim.Time(2)
	allocs := testing.AllocsPerRun(1000, func() {
		m.Observe(at, int64(time.Millisecond), false)
		at++
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f/op within a window, want 0", allocs)
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.Observe(1, 2, false)
	m.Finish(10)
	if m.Opened() != 0 || m.WindowsClosed() != 0 || m.Incidents() != nil {
		t.Error("nil monitor must report zeroes")
	}
}

// buildTracer records a mix of causal trees: fast clean trees, one
// slow tree, one erroring tree.
func buildTracer(t *testing.T, k *sim.Kernel) *obs.Tracer {
	t.Helper()
	tr := obs.NewTracer(k)
	mk := func(at sim.Time, dur sim.Time, err bool) {
		k.After(time.Duration(at), func() {
			root := tr.Start(obs.KindInvoke, "get", 0, 0)
			child := tr.Start(obs.KindRPC, "call", 0, root)
			k.After(time.Duration(dur), func() {
				if err {
					tr.SetErr(child, errFake{})
				}
				tr.End(child)
				tr.End(root)
			})
		})
	}
	for i := 0; i < 20; i++ {
		mk(sim.Time(i)*sim.Time(10*time.Millisecond), sim.Time(time.Millisecond), false)
	}
	mk(sim.Time(200*time.Millisecond), sim.Time(90*time.Millisecond), false) // tail
	mk(sim.Time(300*time.Millisecond), sim.Time(time.Millisecond), true)     // error
	k.RunUntil(sim.Time(time.Second))
	return tr
}

type errFake struct{}

func (errFake) Error() string { return "boom" }

func TestFilterKeepsTailErrAndHead(t *testing.T) {
	k := sim.NewKernel(1)
	tr := buildTracer(t, k)
	cfg := SampleConfig{Seed: 42, HeadEvery: 7, TailNS: int64(50 * time.Millisecond)}
	sampled, st := Filter(tr, nil, cfg)

	if st.Trees != 22 {
		t.Fatalf("Trees = %d, want 22", st.Trees)
	}
	if st.Tail != 1 || st.Err != 1 {
		t.Errorf("Tail/Err = %d/%d, want 1/1", st.Tail, st.Err)
	}
	if st.Kept >= st.Trees {
		t.Errorf("sampling kept everything (%d/%d)", st.Kept, st.Trees)
	}
	if st.KeptSpans != sampled.Len() {
		t.Errorf("KeptSpans = %d but tracer holds %d", st.KeptSpans, sampled.Len())
	}

	// Subset property: every sampled span is byte-identical to the full
	// tracer's span with the same ID.
	for _, s := range sampled.SpansByID() {
		fullSpan := tr.Span(s.ID)
		if fullSpan == nil {
			t.Fatalf("sampled span %d not in full tracer", s.ID)
		}
		if !reflect.DeepEqual(s, *fullSpan) {
			t.Errorf("span %d differs:\nsampled %+v\nfull    %+v", s.ID, s, *fullSpan)
		}
	}

	// Determinism: the same filter twice yields the same result.
	again, st2 := Filter(tr, nil, cfg)
	if !reflect.DeepEqual(sampled.SpansByID(), again.SpansByID()) || st != st2 {
		t.Error("Filter is not deterministic")
	}
}

func TestFilterIncidentOverlapRetains(t *testing.T) {
	k := sim.NewKernel(1)
	tr := buildTracer(t, k)
	// An incident covering 40–60ms: the fast trees started at 40 and
	// 50ms overlap it and must be retained even though they are neither
	// slow nor erroring.
	incs := []Incident{{OpenAt: sim.Time(40 * time.Millisecond), CloseAt: sim.Time(60 * time.Millisecond)}}
	_, st := Filter(tr, incs, SampleConfig{TailNS: int64(50 * time.Millisecond)})
	if st.Incident < 2 {
		t.Errorf("Incident-kept trees = %d, want >= 2", st.Incident)
	}
	// Without the incident those trees are dropped.
	_, st2 := Filter(tr, nil, SampleConfig{TailNS: int64(50 * time.Millisecond)})
	if st2.Incident != 0 || st2.Kept >= st.Kept {
		t.Errorf("incident overlap did not change retention: %d vs %d", st2.Kept, st.Kept)
	}
}

func TestFilterBudgetIsPrefixClosed(t *testing.T) {
	k := sim.NewKernel(1)
	tr := obs.NewTracer(k)
	// One deep tree: root -> chain of 9 children.
	root := tr.Start(obs.KindInvoke, "deep", 0, 0)
	parent := root
	for i := 0; i < 9; i++ {
		parent = tr.Start(obs.KindRPC, "hop", 0, parent)
	}
	k.RunUntil(sim.Time(time.Second))
	sampled, st := Filter(tr, nil, SampleConfig{TailNS: 0, Budget: 4})
	if st.KeptSpans != 4 || st.Truncated != 6 {
		t.Fatalf("KeptSpans/Truncated = %d/%d, want 4/6", st.KeptSpans, st.Truncated)
	}
	// Every kept non-root span's parent must also be kept.
	for _, s := range sampled.SpansByID() {
		if s.Parent != 0 && sampled.Span(s.Parent) == nil {
			t.Errorf("span %d orphaned: parent %d dropped", s.ID, s.Parent)
		}
	}
}

func TestFlightRecorderRingAndMerge(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Note(sim.Time(i), "note", "x")
	}
	if f.Recorded() != 10 || f.Dropped() != 6 {
		t.Fatalf("Recorded/Dropped = %d/%d, want 10/6", f.Recorded(), f.Dropped())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.At != sim.Time(6+i) {
			t.Errorf("snapshot[%d].At = %v, want %v (oldest first)", i, e.At, 6+i)
		}
	}

	g := NewFlightRecorder(4)
	g.Note(sim.Time(7), "note", "y")
	merged := MergeSnapshots(f.Snapshot(), g.Snapshot())
	if len(merged) != 5 {
		t.Fatalf("merged len = %d", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		a, b := merged[i-1], merged[i]
		if a.At > b.At || (a.At == b.At && a.Shard > b.Shard) {
			t.Errorf("merge order violated at %d: %+v then %+v", i, a, b)
		}
	}

	var buf bytes.Buffer
	if err := WriteDump(&buf, "test", merged, f.Dropped()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flight recorder: test (5 entries, 6 evicted)") {
		t.Errorf("dump header wrong:\n%s", buf.String())
	}
}

func TestFlightRecorderAttachLog(t *testing.T) {
	f := NewFlightRecorder(8)
	tl := trace.New()
	f.AttachLog(tl)
	tl.Emitf(5, trace.KindCrash, "m1", 1, -1, "fail-stop")
	tl.Emitf(9, trace.KindRecover, "m1", -1, 1, "restart")
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].Source != "event" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !strings.Contains(snap[0].Text, "crash") || !strings.Contains(snap[0].Text, "m1") {
		t.Errorf("entry text = %q", snap[0].Text)
	}
	if tl.Len() != 2 {
		t.Error("hook must not suppress log append")
	}
}
