// Package slo is the streaming SLO plane over the deterministic
// simulation: a windowed aggregator that folds request completions
// into fixed windows on the virtual clock, evaluates multi-window
// burn-rate rules over them, and emits first-class incident records —
// open and close, with severity and a causal link to the control-plane
// activity in flight when the incident opened.
//
// The monitor is pure host-side bookkeeping fed synchronously from
// serving completion paths: it schedules no kernel events, so enabling
// it never perturbs a run's event count or schedule, and per-shard
// monitors under a sim.ParKernel are deterministic at any worker
// count. Observe on the hot path is allocation-free except at window
// boundaries (and the one recycled histogram makes even those cheap).
package slo

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RuleKind selects the windowed statistic a rule evaluates.
type RuleKind string

const (
	// P999Above breaches when the window's p99.9 latency exceeds
	// BoundMS. Empty windows do not breach.
	P999Above RuleKind = "p999_above"
	// GoodputBelow breaches when the window's successful-request rate
	// falls below FloorRPS. Empty windows DO breach — a total outage
	// must look worse than a slow one.
	GoodputBelow RuleKind = "goodput_below"
	// ErrorRateAbove breaches when the window's error fraction exceeds
	// Ceiling. Empty windows do not breach.
	ErrorRateAbove RuleKind = "error_rate_above"
)

// Rule is one multi-window burn-rate rule: it breaches per window, and
// an incident opens once at least For of the last Config.Windows
// windows breached. The incident closes only when zero of the last
// Config.Windows windows breach — the asymmetry is hysteresis, so a
// flapping signal does not open and close an incident per window.
type Rule struct {
	Kind     RuleKind
	Name     string  // display name; defaults to the kind
	BoundMS  float64 // P999Above: latency bound in milliseconds
	FloorRPS float64 // GoodputBelow: goodput floor in requests/sec
	Ceiling  float64 // ErrorRateAbove: error fraction ceiling in [0,1]
	For      int     // windows (of the last Config.Windows) that must breach to open
	Severity string  // "page" or "warn"; defaults to "warn"
}

// Config sizes the monitor's windows and names its subject.
type Config struct {
	Window  sim.Time // window width (virtual nanoseconds)
	Windows int      // burn-rate ring length N: rules look at the last N windows
	Rules   []Rule
	Subject string // tenant/experiment name used in events and spans
	Machine int    // machine attributed in incident spans (-1: control plane)

	// KeepHistory retains every closed WindowStat for timeline views
	// (qsctl top). Off by default: long serving runs close millions of
	// windows and the monitor otherwise holds O(Windows) state.
	KeepHistory bool
}

// WindowStat is one closed window's aggregate.
type WindowStat struct {
	Index  int // absolute window index: window covers [Index*W, (Index+1)*W)
	Start  sim.Time
	End    sim.Time
	Count  uint64 // requests completed in the window
	Good   uint64 // non-error completions
	Errors uint64
	P999NS int64 // p99.9 latency (0 when empty)
	MaxNS  int64
}

// GoodputRPS returns the window's successful-request rate per second.
func (w *WindowStat) GoodputRPS() float64 {
	if w.End <= w.Start {
		return 0
	}
	return float64(w.Good) / (float64(w.End-w.Start) / 1e9)
}

// ErrorRate returns the window's error fraction (0 when empty).
func (w *WindowStat) ErrorRate() float64 {
	if w.Count == 0 {
		return 0
	}
	return float64(w.Errors) / float64(w.Count)
}

// Incident is one rule's violation interval.
type Incident struct {
	Rule     string
	Kind     RuleKind
	Severity string
	Subject  string
	OpenAt   sim.Time // end of the window that tripped the rule
	CloseAt  sim.Time // zero while open
	Open     bool
	Cause    string     // "kind subject" of the causal control-plane event, "" when none
	CauseAt  sim.Time   // timestamp of that event
	Span     obs.SpanID // incident span (recorded at close/Finish); 0 without a tracer
	Parent   obs.SpanID // open causal span at open time; 0 when none
}

// ruleState is one rule's burn-rate ring over the last N windows.
type ruleState struct {
	rule Rule
	ring []bool // breach flags, ring[i] for window (closed-index mod N)
	fill int    // windows seen, saturates at len(ring)
	open int    // index into Monitor.incidents of the open incident, -1
}

// Monitor folds completions into windows and evaluates SLO rules.
// The zero Monitor is not usable; construct with New. A nil *Monitor
// accepts Observe/Finish as no-ops so call sites need no guards.
type Monitor struct {
	cfg   Config
	rules []ruleState

	cur     *metrics.LogHistogram // recycled per-window latency histogram
	curIdx  int                   // absolute index of the window being filled
	started bool
	count   uint64 // completions in the current window
	good    uint64
	errs    uint64

	windowsClosed int
	breaches      int // total rule-window breaches across all rules
	incidents     []Incident
	history       []WindowStat

	// Hooks, all optional. Log receives incident open/close events and
	// is scanned backward for the causal control-plane event; Tracer
	// receives one incident span per incident (recorded at close, so
	// span IDs stay deterministic); Flight gets window and incident
	// notes; OnWindow observes every closed window.
	Log      *trace.Log
	Tracer   *obs.Tracer
	Flight   *FlightRecorder
	OnWindow func(WindowStat)
}

// New creates a monitor. It panics on a malformed config — the config
// is authored (scenario spec or experiment code), not data-driven at
// runtime.
func New(cfg Config) *Monitor {
	if cfg.Window <= 0 {
		panic("slo: window width must be positive")
	}
	if cfg.Windows <= 0 {
		panic("slo: windows must be positive")
	}
	m := &Monitor{cfg: cfg, cur: metrics.NewLogHistogram(cfg.Subject)}
	for _, r := range cfg.Rules {
		if r.Name == "" {
			r.Name = string(r.Kind)
		}
		if r.Severity == "" {
			r.Severity = "warn"
		}
		if r.For <= 0 || r.For > cfg.Windows {
			panic(fmt.Sprintf("slo: rule %s: for=%d out of [1,%d]", r.Name, r.For, cfg.Windows))
		}
		switch r.Kind {
		case P999Above, GoodputBelow, ErrorRateAbove:
		default:
			panic(fmt.Sprintf("slo: rule %s: unknown kind %q", r.Name, r.Kind))
		}
		m.rules = append(m.rules, ruleState{rule: r, ring: make([]bool, cfg.Windows), open: -1})
	}
	return m
}

// Observe folds one request completion at virtual time at with the
// given latency. Any windows the clock has moved past close first —
// including empty gap windows, which is how a total outage becomes a
// goodput incident. Allocation-free between window boundaries.
func (m *Monitor) Observe(at sim.Time, latNS int64, isErr bool) {
	if m == nil {
		return
	}
	w := int(at / m.cfg.Window)
	if !m.started {
		m.started = true
		m.curIdx = w
	}
	for m.curIdx < w {
		m.closeWindow()
	}
	m.cur.Record(latNS)
	m.count++
	if isErr {
		m.errs++
	} else {
		m.good++
	}
}

// Finish closes every complete window up to horizon and records spans
// for incidents still open (clamped to horizon, left marked open).
// Call once when the run ends; a trailing partial window is discarded
// rather than evaluated against full-window bounds.
func (m *Monitor) Finish(horizon sim.Time) {
	if m == nil || !m.started {
		return
	}
	for sim.Time(m.curIdx+1)*m.cfg.Window <= horizon {
		m.closeWindow()
	}
	for i := range m.incidents {
		inc := &m.incidents[i]
		if !inc.Open || inc.Span != 0 {
			continue
		}
		end := horizon
		if end < inc.OpenAt {
			end = inc.OpenAt
		}
		inc.Span = m.recordSpan(inc, end, true)
	}
}

// closeWindow seals the window being filled, evaluates every rule
// against it, and resets the recycled aggregates for the next window.
func (m *Monitor) closeWindow() {
	stat := WindowStat{
		Index:  m.curIdx,
		Start:  sim.Time(m.curIdx) * m.cfg.Window,
		End:    sim.Time(m.curIdx+1) * m.cfg.Window,
		Count:  m.count,
		Good:   m.good,
		Errors: m.errs,
		P999NS: m.cur.Quantile(0.999),
		MaxNS:  m.cur.Max(),
	}
	m.windowsClosed++
	if m.cfg.KeepHistory {
		m.history = append(m.history, stat)
	}
	if m.OnWindow != nil {
		m.OnWindow(stat)
	}
	for i := range m.rules {
		m.evalRule(&m.rules[i], &stat)
	}
	m.cur.Reset()
	m.count, m.good, m.errs = 0, 0, 0
	m.curIdx++
}

// breached evaluates one rule against one closed window.
func breached(r *Rule, w *WindowStat) bool {
	switch r.Kind {
	case P999Above:
		return w.Count > 0 && float64(w.P999NS)/1e6 > r.BoundMS
	case GoodputBelow:
		return w.GoodputRPS() < r.FloorRPS
	case ErrorRateAbove:
		return w.Count > 0 && w.ErrorRate() > r.Ceiling
	}
	return false
}

// evalRule pushes the window's breach flag into the rule's ring and
// drives the incident state machine.
func (m *Monitor) evalRule(rs *ruleState, w *WindowStat) {
	b := breached(&rs.rule, w)
	rs.ring[w.Index%len(rs.ring)] = b
	if rs.fill < len(rs.ring) {
		rs.fill++
	}
	if b {
		m.breaches++
	}
	n := 0
	for _, v := range rs.ring[:rs.fill] {
		if v {
			n++
		}
	}
	switch {
	case rs.open < 0 && n >= rs.rule.For:
		m.openIncident(rs, w)
	case rs.open >= 0 && n == 0:
		m.closeIncident(rs, w)
	}
}

// openIncident records a new incident at the end of window w.
func (m *Monitor) openIncident(rs *ruleState, w *WindowStat) {
	inc := Incident{
		Rule:     rs.rule.Name,
		Kind:     rs.rule.Kind,
		Severity: rs.rule.Severity,
		Subject:  m.cfg.Subject,
		OpenAt:   w.End,
		Open:     true,
	}
	if ev, ok := m.cause(w.End); ok {
		inc.Cause = string(ev.Kind) + " " + ev.Subject
		inc.CauseAt = ev.At
	}
	inc.Parent = m.Tracer.LastOpen(obs.KindPressure, obs.KindMigrate, obs.KindSched, obs.KindRepl)
	rs.open = len(m.incidents)
	m.incidents = append(m.incidents, inc)
	m.Log.Emitf(w.End, trace.KindIncident, m.cfg.Subject, -1, -1,
		"open %s severity=%s cause=%s", rs.rule.Name, inc.Severity, orNone(inc.Cause))
	m.Flight.Note(w.End, "incident",
		fmt.Sprintf("open %s %s severity=%s cause=%s", m.cfg.Subject, rs.rule.Name, inc.Severity, orNone(inc.Cause)))
}

// closeIncident seals the rule's open incident at the end of window w
// and records its span — retroactively, so span IDs are assigned in
// close order and exports stay deterministic.
func (m *Monitor) closeIncident(rs *ruleState, w *WindowStat) {
	inc := &m.incidents[rs.open]
	inc.CloseAt = w.End
	inc.Open = false
	rs.open = -1
	inc.Span = m.recordSpan(inc, w.End, false)
	m.Log.Emitf(w.End, trace.KindIncident, m.cfg.Subject, -1, -1,
		"close %s after=%v", rs.rule.Name, w.End-inc.OpenAt)
	m.Flight.Note(w.End, "incident",
		fmt.Sprintf("close %s %s after=%v", m.cfg.Subject, rs.rule.Name, w.End-inc.OpenAt))
}

// recordSpan emits the incident's span into the tracer (0 when no
// tracer is attached).
func (m *Monitor) recordSpan(inc *Incident, end sim.Time, stillOpen bool) obs.SpanID {
	if m.Tracer == nil {
		return 0
	}
	id := m.Tracer.RecordAt(obs.KindIncident, inc.Rule, m.cfg.Machine, inc.Parent, inc.OpenAt, end)
	m.Tracer.Str(id, "severity", inc.Severity)
	m.Tracer.Str(id, "subject", inc.Subject)
	if inc.Cause != "" {
		m.Tracer.Str(id, "cause", inc.Cause)
	}
	if stillOpen {
		m.Tracer.Num(id, "still_open", 1)
	}
	return id
}

// cause scans the attached control-plane log backward for the most
// recent fault/pressure/migration-family event at or before at.
func (m *Monitor) cause(at sim.Time) (trace.Event, bool) {
	evs := m.Log.Events()
	for i := len(evs) - 1; i >= 0; i-- {
		e := &evs[i]
		if e.At > at || e.Kind == trace.KindIncident {
			continue
		}
		switch e.Kind {
		case trace.KindCrash, trace.KindFault, trace.KindMigrate,
			trace.KindPressure, trace.KindRepl, trace.KindSuspect:
			return *e, true
		}
	}
	return trace.Event{}, false
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// Incidents returns every incident in open order (not a copy).
func (m *Monitor) Incidents() []Incident {
	if m == nil {
		return nil
	}
	return m.incidents
}

// History returns the closed windows retained under KeepHistory.
func (m *Monitor) History() []WindowStat {
	if m == nil {
		return nil
	}
	return m.history
}

// WindowsClosed returns how many windows have been sealed.
func (m *Monitor) WindowsClosed() int {
	if m == nil {
		return 0
	}
	return m.windowsClosed
}

// Breaches returns the total number of rule-window breaches.
func (m *Monitor) Breaches() int {
	if m == nil {
		return 0
	}
	return m.breaches
}

// Opened returns how many incidents were opened.
func (m *Monitor) Opened() int {
	if m == nil {
		return 0
	}
	return len(m.incidents)
}

// Resolved returns how many incidents opened and then closed.
func (m *Monitor) Resolved() int {
	if m == nil {
		return 0
	}
	n := 0
	for i := range m.incidents {
		if !m.incidents[i].Open {
			n++
		}
	}
	return n
}

// OpenCount returns how many incidents are currently open.
func (m *Monitor) OpenCount() int {
	if m == nil {
		return 0
	}
	return len(m.incidents) - m.Resolved()
}
