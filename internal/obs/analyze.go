package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Run-timeline analysis over JSONL records (qsctl analyze): slowest
// migrations with their causes, RPC latency percentiles by method, and
// per-machine utilization timelines.

// MigrationStat is one migration span, slowest-first in Report.
type MigrationStat struct {
	Name      string
	From, To  int
	Bytes     int64
	LatencyMS float64
	Cause     string // kind:name of the root pressure/sched span, "" if none
}

// MethodStat aggregates call latency for one (kind, method) pair.
// Quantiles come from a fixed-bucket metrics.LogHistogram, so analyzing
// a million-call run retains no per-call samples and p999 is available
// at the same cost as p50.
type MethodStat struct {
	Kind   string
	Method string
	Count  int
	P50MS  float64
	P99MS  float64
	P999MS float64
	MaxMS  float64
	Errs   int
}

// MachineUtil is one machine's sampled utilization summary.
type MachineUtil struct {
	Machine  int
	CPUMean  float64 // mean of sampled utilization fraction
	CPUMax   float64
	MemMean  float64
	MemMax   float64
	TxBytes  float64 // final cumulative counter values
	RxBytes  float64
	Timeline []float64 // CPU utilization averaged into 10 buckets
}

// GPUStat summarizes one GPU trainer's sampled step latency and queue
// delay (the gpu.<name>.step_ms / .qdelay_ms series that
// gpu.Fleet.AttachTelemetry registers). A step-latency max well above
// the mean is the analyze-level fingerprint of a gray-degraded device
// (thermal throttle, ECC stutter) before the fleet mitigates it.
type GPUStat struct {
	Name         string
	Machine      int
	Samples      int
	StepMeanMS   float64
	StepMaxMS    float64
	QDelayMeanMS float64
	QDelayMaxMS  float64
}

// IncidentStat is one SLO incident span (internal/obs/slo), in open
// order in Report.
type IncidentStat struct {
	Rule       string
	Subject    string
	Severity   string
	OpenNS     int64
	CloseNS    int64
	StillOpen  bool
	Cause      string // causal control-plane event, "-" rendering when none
	ParentSpan string // kind:name of the causal parent span, "" when none
}

// Report is the digest of one exported run.
type Report struct {
	Spans      int
	Samples    int
	HorizonNS  int64
	Migrations []MigrationStat
	Methods    []MethodStat
	Machines   []MachineUtil
	GPUs       []GPUStat
	Incidents  []IncidentStat
}

// Analyze digests JSONL records into a Report.
func Analyze(recs []Record) *Report {
	rp := &Report{}
	byID := map[uint64]*Record{}
	for i := range recs {
		if recs[i].Type == "span" {
			byID[recs[i].ID] = &recs[i]
		}
	}

	// rootCause walks parents to the outermost pressure/sched ancestor.
	rootCause := func(r *Record) string {
		cause := ""
		for p := r.Parent; p != 0; {
			pr, ok := byID[p]
			if !ok {
				break
			}
			if pr.Kind == KindPressure || pr.Kind == KindSched || pr.Kind == KindRepl {
				cause = pr.Kind + ":" + pr.Name
				if pr.Machine >= 0 {
					cause += fmt.Sprintf(" m%d", pr.Machine)
				}
			}
			p = pr.Parent
		}
		return cause
	}

	type methodKey struct{ kind, method string }
	hists := map[methodKey]*metrics.LogHistogram{}
	errs := map[methodKey]int{}
	type mutil struct {
		cpu, mem []Record
		tx, rx   float64
	}
	machines := map[int]*mutil{}
	type gpuSamples struct {
		machine      int
		step, qdelay []Record
	}
	gpus := map[string]*gpuSamples{}
	gpuSeries := func(series string) (name, kind string, ok bool) {
		rest, found := strings.CutPrefix(series, "gpu.")
		if !found {
			return "", "", false
		}
		if name, found = strings.CutSuffix(rest, ".step_ms"); found {
			return name, "step", true
		}
		if name, found = strings.CutSuffix(rest, ".qdelay_ms"); found {
			return name, "qdelay", true
		}
		return "", "", false
	}

	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case "span":
			rp.Spans++
			if r.EndNS > rp.HorizonNS {
				rp.HorizonNS = r.EndNS
			}
			durMS := float64(r.EndNS-r.StartNS) / 1e6
			switch r.Kind {
			case KindMigrate:
				rp.Migrations = append(rp.Migrations, MigrationStat{
					Name: r.Name, From: r.From, To: r.To, Bytes: r.Bytes,
					LatencyMS: durMS, Cause: rootCause(r),
				})
			case KindRPC, KindInvoke:
				k := methodKey{r.Kind, r.Name}
				h := hists[k]
				if h == nil {
					h = metrics.NewLogHistogram(r.Name)
					hists[k] = h
				}
				h.Record(r.EndNS - r.StartNS)
				if r.Err != "" {
					errs[k]++
				}
			case KindIncident:
				st := IncidentStat{
					Rule:     r.Name,
					Subject:  r.Attrs["subject"],
					Severity: r.Attrs["severity"],
					Cause:    r.Attrs["cause"],
					OpenNS:   r.StartNS,
					CloseNS:  r.EndNS,
				}
				if r.Nums["still_open"] == 1 {
					st.StillOpen = true
				}
				if pr, ok := byID[r.Parent]; ok {
					st.ParentSpan = pr.Kind + ":" + pr.Name
				}
				rp.Incidents = append(rp.Incidents, st)
			}
		case "sample":
			rp.Samples++
			if r.AtNS > rp.HorizonNS {
				rp.HorizonNS = r.AtNS
			}
			if r.Machine < 0 {
				continue
			}
			if name, kind, ok := gpuSeries(r.Series); ok {
				gs := gpus[name]
				if gs == nil {
					gs = &gpuSamples{machine: r.Machine}
					gpus[name] = gs
				}
				if kind == "step" {
					gs.step = append(gs.step, *r)
				} else {
					gs.qdelay = append(gs.qdelay, *r)
				}
				continue
			}
			mu := machines[r.Machine]
			if mu == nil {
				mu = &mutil{}
				machines[r.Machine] = mu
			}
			switch {
			case strings.HasSuffix(r.Series, ".cpu_util"):
				mu.cpu = append(mu.cpu, *r)
			case strings.HasSuffix(r.Series, ".mem_frac"):
				mu.mem = append(mu.mem, *r)
			case strings.HasSuffix(r.Series, ".net_tx_bytes"):
				if r.Value > mu.tx {
					mu.tx = r.Value
				}
			case strings.HasSuffix(r.Series, ".net_rx_bytes"):
				if r.Value > mu.rx {
					mu.rx = r.Value
				}
			}
		}
	}

	sort.SliceStable(rp.Migrations, func(i, j int) bool {
		return rp.Migrations[i].LatencyMS > rp.Migrations[j].LatencyMS
	})

	// Incident spans are recorded at close time; the timeline reads in
	// open order.
	sort.SliceStable(rp.Incidents, func(i, j int) bool {
		return rp.Incidents[i].OpenNS < rp.Incidents[j].OpenNS
	})

	keys := make([]methodKey, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].method < keys[j].method
	})
	for _, k := range keys {
		h := hists[k]
		rp.Methods = append(rp.Methods, MethodStat{
			Kind: k.kind, Method: k.method, Count: int(h.Count()),
			P50MS: h.QuantileMS(0.50), P99MS: h.QuantileMS(0.99),
			P999MS: h.QuantileMS(0.999), MaxMS: float64(h.Max()) / 1e6,
			Errs: errs[k],
		})
	}

	mids := make([]int, 0, len(machines))
	for id := range machines {
		mids = append(mids, id)
	}
	sort.Ints(mids)
	for _, id := range mids {
		mu := machines[id]
		u := MachineUtil{Machine: id, TxBytes: mu.tx, RxBytes: mu.rx}
		u.CPUMean, u.CPUMax = meanMax(mu.cpu)
		u.MemMean, u.MemMax = meanMax(mu.mem)
		u.Timeline = bucketize(mu.cpu, rp.HorizonNS, 10)
		rp.Machines = append(rp.Machines, u)
	}

	gnames := make([]string, 0, len(gpus))
	for name := range gpus {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		gs := gpus[name]
		st := GPUStat{Name: name, Machine: gs.machine, Samples: len(gs.step)}
		st.StepMeanMS, st.StepMaxMS = meanMax(gs.step)
		st.QDelayMeanMS, st.QDelayMaxMS = meanMax(gs.qdelay)
		rp.GPUs = append(rp.GPUs, st)
	}
	return rp
}

func meanMax(samples []Record) (mean, max float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var sum float64
	for _, s := range samples {
		sum += s.Value
		if s.Value > max {
			max = s.Value
		}
	}
	return sum / float64(len(samples)), max
}

// bucketize averages samples into n equal time buckets over [0, horizon].
func bucketize(samples []Record, horizon int64, n int) []float64 {
	if len(samples) == 0 || horizon <= 0 {
		return nil
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, s := range samples {
		b := int(s.AtNS * int64(n) / (horizon + 1))
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		sums[b] += s.Value
		counts[b]++
	}
	out := make([]float64, n)
	for i := range sums {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// Print writes the report, listing at most topN migrations.
func (rp *Report) Print(w io.Writer, topN int) {
	fmt.Fprintf(w, "run: %d spans, %d samples, horizon %.3f ms\n",
		rp.Spans, rp.Samples, float64(rp.HorizonNS)/1e6)

	fmt.Fprintf(w, "\n-- slowest migrations (top %d of %d) --\n", topN, len(rp.Migrations))
	if len(rp.Migrations) == 0 {
		fmt.Fprintln(w, "(none)")
	} else {
		fmt.Fprintf(w, "%-24s %8s %12s %12s  %s\n", "proclet", "route", "bytes", "latency", "cause")
		for i, m := range rp.Migrations {
			if i >= topN {
				break
			}
			cause := m.Cause
			if cause == "" {
				cause = "-"
			}
			fmt.Fprintf(w, "%-24s %3d->%-3d %12d %9.3f ms  %s\n",
				m.Name, m.From, m.To, m.Bytes, m.LatencyMS, cause)
		}
	}

	if len(rp.Incidents) > 0 {
		fmt.Fprintf(w, "\n-- incident timeline (%d) --\n", len(rp.Incidents))
		fmt.Fprintf(w, "%-20s %-12s %-8s %12s %12s %10s  %s\n",
			"rule", "subject", "severity", "open", "close", "duration", "cause")
		for _, inc := range rp.Incidents {
			cause := inc.Cause
			if cause == "" {
				cause = "-"
			}
			if inc.ParentSpan != "" {
				cause += " [" + inc.ParentSpan + "]"
			}
			closeCol := fmt.Sprintf("%.1f ms", float64(inc.CloseNS)/1e6)
			if inc.StillOpen {
				closeCol = "open"
			}
			fmt.Fprintf(w, "%-20s %-12s %-8s %9.1f ms %12s %7.1f ms  %s\n",
				inc.Rule, inc.Subject, inc.Severity,
				float64(inc.OpenNS)/1e6, closeCol,
				float64(inc.CloseNS-inc.OpenNS)/1e6, cause)
		}
	}

	fmt.Fprintf(w, "\n-- call latency by method (ms) --\n")
	if len(rp.Methods) == 0 {
		fmt.Fprintln(w, "(none)")
	} else {
		fmt.Fprintf(w, "%-8s %-24s %8s %9s %9s %9s %9s %6s\n",
			"kind", "method", "count", "p50", "p99", "p999", "max", "errs")
		for _, ms := range rp.Methods {
			fmt.Fprintf(w, "%-8s %-24s %8d %9.4f %9.4f %9.4f %9.4f %6d\n",
				ms.Kind, ms.Method, ms.Count, ms.P50MS, ms.P99MS, ms.P999MS, ms.MaxMS, ms.Errs)
		}
	}

	if len(rp.GPUs) > 0 {
		fmt.Fprintf(w, "\n-- gpu trainers (step latency, ms) --\n")
		fmt.Fprintf(w, "%-24s %8s %8s %9s %9s %11s %11s\n",
			"trainer", "machine", "samples", "step-mean", "step-max", "qdelay-mean", "qdelay-max")
		for _, g := range rp.GPUs {
			fmt.Fprintf(w, "%-24s %8d %8d %9.3f %9.3f %11.3f %11.3f\n",
				g.Name, g.Machine, g.Samples, g.StepMeanMS, g.StepMaxMS, g.QDelayMeanMS, g.QDelayMaxMS)
		}
	}

	fmt.Fprintf(w, "\n-- per-machine utilization --\n")
	if len(rp.Machines) == 0 {
		fmt.Fprintln(w, "(no telemetry samples)")
	}
	for _, m := range rp.Machines {
		fmt.Fprintf(w, "m%d: cpu mean %5.1f%% max %5.1f%% | mem mean %5.1f%% max %5.1f%% | tx %.1f KiB rx %.1f KiB\n",
			m.Machine, 100*m.CPUMean, 100*m.CPUMax, 100*m.MemMean, 100*m.MemMax,
			m.TxBytes/1024, m.RxBytes/1024)
		if len(m.Timeline) > 0 {
			fmt.Fprintf(w, "    cpu timeline:")
			for _, v := range m.Timeline {
				fmt.Fprintf(w, " %3.0f%%", 100*v)
			}
			fmt.Fprintln(w)
		}
	}
}
