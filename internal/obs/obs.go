// Package obs is the observability layer over the deterministic
// simulation: causal spans (who did what, for how long, and what
// triggered it) and continuously sampled resource telemetry. The flat
// event log in internal/trace records *that* a migration or split
// happened; obs records *why* — a migration span is a child of the
// pressure span that caused it — and exports the whole run as a
// Perfetto-loadable timeline (export.go).
//
// Everything is nil-safe: a nil *Tracer accepts every call, allocates
// nothing, and returns the zero SpanID, so instrumented hot paths pay
// only a nil check when tracing is disabled. Span recording is
// synchronous host-side bookkeeping — it schedules no kernel events —
// so enabling the tracer never changes a run's kernel event count or
// schedule. Telemetry sampling (telemetry.go) does add kernel events
// and is therefore a separate, strictly opt-in switch.
package obs

import (
	"repro/internal/sim"
)

// Span kinds. Name refines the kind: a KindPhase span named "freeze"
// is the blackout phase of its parent migration span.
const (
	KindRPC      = "rpc"      // one fabric round trip (simnet)
	KindInvoke   = "invoke"   // one proclet method invocation, retries included
	KindMigrate  = "migrate"  // one proclet migration, phases as children
	KindPhase    = "phase"    // a migration phase: freeze, precopy, postcopy
	KindSplit    = "split"    // a pool split
	KindMerge    = "merge"    // a pool merge
	KindPressure = "pressure" // a reactor pressure episode (cpu, mem, mem-demand)
	KindSched    = "sched"    // a slow-path decision: rebalance, affinity
	KindRepl     = "repl"     // replication plane: ship, promote
)

// SpanID identifies a span within one Tracer; 0 is "no span" (the
// parent of a root). IDs are assigned densely in creation order, which
// makes them deterministic per seed.
type SpanID uint64

// Attr is one span attribute: a key with either a string or a numeric
// value. A slice of Attrs (not a map) keeps attribute order — and
// therefore every export — deterministic.
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Span is one timed, causally-linked operation. TraceID is the ID of
// the root span of its causal tree (a root's TraceID is its own ID).
// Machine is the machine the operation ran on (-1: control plane);
// From/To are machine IDs for operations that move something (-1: not
// applicable).
type Span struct {
	TraceID SpanID
	ID      SpanID
	Parent  SpanID
	Kind    string
	Name    string
	Machine int
	From    int
	To      int
	Bytes   int64
	Start   sim.Time
	End     sim.Time
	Done    bool // End was recorded; open spans are clamped on export
	Err     string
	Attrs   []Attr
}

// Duration returns End-Start, or 0 for a span that was never ended.
func (s *Span) Duration() sim.Time {
	if !s.Done {
		return 0
	}
	return s.End - s.Start
}

// Tracer records spans against the kernel clock. All methods are valid
// on a nil receiver (no-ops returning zero), so instrumentation sites
// need no guards for correctness — only optionally for speed.
//
// The simulation kernel executes one event at a time, so the tracer
// needs no locking even though spans are recorded from many simulated
// processes.
type Tracer struct {
	k     *sim.Kernel
	spans []Span

	// next is a one-shot parent handed across an API boundary whose
	// signature cannot carry a SpanID (Runtime.Invoke calling
	// Fabric.CallWithTimeout). SetNext and the consuming TakeNext must
	// run synchronously — no park in between — or the scope would leak
	// to an unrelated caller.
	next SpanID
}

// NewTracer creates a tracer on the given kernel.
func NewTracer(k *sim.Kernel) *Tracer { return &Tracer{k: k} }

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a span and returns its ID (0 on a nil tracer). parent 0
// makes it a root.
func (t *Tracer) Start(kind, name string, machine int, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	trace := id
	if parent != 0 {
		trace = t.spans[parent-1].TraceID
	}
	t.spans = append(t.spans, Span{
		TraceID: trace,
		ID:      id,
		Parent:  parent,
		Kind:    kind,
		Name:    name,
		Machine: machine,
		From:    -1,
		To:      -1,
		Start:   t.k.Now(),
	})
	return id
}

// End closes a span at the current kernel time.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	sp.End = t.k.Now()
	sp.Done = true
}

// SetRoute records the source and destination machines of a move.
func (t *Tracer) SetRoute(id SpanID, from, to int) {
	if t == nil || id == 0 {
		return
	}
	t.spans[id-1].From, t.spans[id-1].To = from, to
}

// SetBytes records the payload size the span moved.
func (t *Tracer) SetBytes(id SpanID, n int64) {
	if t == nil || id == 0 {
		return
	}
	t.spans[id-1].Bytes = n
}

// SetErr records the span's error (nil clears nothing and is a no-op).
func (t *Tracer) SetErr(id SpanID, err error) {
	if t == nil || id == 0 || err == nil {
		return
	}
	t.spans[id-1].Err = err.Error()
}

// Num attaches a numeric attribute.
func (t *Tracer) Num(id SpanID, key string, v float64) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Num: v, IsNum: true})
}

// Str attaches a string attribute.
func (t *Tracer) Str(id SpanID, key, v string) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: v})
}

// SetNext arms a one-shot parent for the next TakeNext. See the field
// comment for the synchronicity requirement.
func (t *Tracer) SetNext(id SpanID) {
	if t == nil {
		return
	}
	t.next = id
}

// TakeNext consumes the one-shot parent (0 when none armed).
func (t *Tracer) TakeNext() SpanID {
	if t == nil {
		return 0
	}
	id := t.next
	t.next = 0
	return id
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns all recorded spans in creation order (not a copy).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Span returns the span with the given ID, or nil.
func (t *Tracer) Span(id SpanID) *Span {
	if t == nil || id == 0 || int(id) > len(t.spans) {
		return nil
	}
	return &t.spans[id-1]
}

// clampEnd returns the span's end for export: open spans are clamped
// to the latest timestamp the tracer has seen (end of run).
func (t *Tracer) clampEnd(s *Span) sim.Time {
	if s.Done {
		return s.End
	}
	if now := t.k.Now(); now > s.Start {
		return now
	}
	return s.Start
}
