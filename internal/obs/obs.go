// Package obs is the observability layer over the deterministic
// simulation: causal spans (who did what, for how long, and what
// triggered it) and continuously sampled resource telemetry. The flat
// event log in internal/trace records *that* a migration or split
// happened; obs records *why* — a migration span is a child of the
// pressure span that caused it — and exports the whole run as a
// Perfetto-loadable timeline (export.go).
//
// Everything is nil-safe: a nil *Tracer accepts every call, allocates
// nothing, and returns the zero SpanID, so instrumented hot paths pay
// only a nil check when tracing is disabled. Span recording is
// synchronous host-side bookkeeping — it schedules no kernel events —
// so enabling the tracer never changes a run's kernel event count or
// schedule. Telemetry sampling (telemetry.go) does add kernel events
// and is therefore a separate, strictly opt-in switch.
package obs

import (
	"sort"

	"repro/internal/sim"
)

// Span kinds. Name refines the kind: a KindPhase span named "freeze"
// is the blackout phase of its parent migration span.
const (
	KindRPC      = "rpc"      // one fabric round trip (simnet)
	KindInvoke   = "invoke"   // one proclet method invocation, retries included
	KindMigrate  = "migrate"  // one proclet migration, phases as children
	KindPhase    = "phase"    // a migration phase: freeze, precopy, postcopy
	KindSplit    = "split"    // a pool split
	KindMerge    = "merge"    // a pool merge
	KindPressure = "pressure" // a reactor pressure episode (cpu, mem, mem-demand)
	KindSched    = "sched"    // a slow-path decision: rebalance, affinity
	KindRepl     = "repl"     // replication plane: ship, promote
	KindIncident = "incident" // an SLO incident interval (internal/obs/slo)
	KindReq      = "req"      // one served request (or fan-in batch) in a serving plane
)

// SpanID identifies a span within one Tracer; 0 is "no span" (the
// parent of a root). IDs are assigned in creation order from the
// tracer's base (base+1, base+2, ...), which makes them deterministic
// per seed. A nonzero base (NewTracerWithBase) gives each shard of a
// partitioned run a disjoint ID space, so per-shard tracers merge into
// one fleet timeline without renumbering — and a span keeps the same
// ID whether or not the sampler retained its neighbors, which is what
// makes a sampled export a literal subset of the full one.
type SpanID uint64

// Attr is one span attribute: a key with either a string or a numeric
// value. A slice of Attrs (not a map) keeps attribute order — and
// therefore every export — deterministic.
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Span is one timed, causally-linked operation. TraceID is the ID of
// the root span of its causal tree (a root's TraceID is its own ID).
// Machine is the machine the operation ran on (-1: control plane);
// From/To are machine IDs for operations that move something (-1: not
// applicable).
type Span struct {
	TraceID SpanID
	ID      SpanID
	Parent  SpanID
	Kind    string
	Name    string
	Machine int
	From    int
	To      int
	Bytes   int64
	Start   sim.Time
	End     sim.Time
	Done    bool // End was recorded; open spans are clamped on export
	Err     string
	Attrs   []Attr
}

// Duration returns End-Start, or 0 for a span that was never ended.
func (s *Span) Duration() sim.Time {
	if !s.Done {
		return 0
	}
	return s.End - s.Start
}

// Tracer records spans against the kernel clock. All methods are valid
// on a nil receiver (no-ops returning zero), so instrumentation sites
// need no guards for correctness — only optionally for speed.
//
// The simulation kernel executes one event at a time, so the tracer
// needs no locking even though spans are recorded from many simulated
// processes.
type Tracer struct {
	k     *sim.Kernel
	base  SpanID
	seq   uint64 // IDs handed out: next ID is base + seq + 1
	spans []Span
	pos   map[SpanID]int // span ID -> index in spans
	maxAt sim.Time       // latest timestamp seen; export clamp for kernel-less tracers

	// next is a one-shot parent handed across an API boundary whose
	// signature cannot carry a SpanID (Runtime.Invoke calling
	// Fabric.CallWithTimeout). SetNext and the consuming TakeNext must
	// run synchronously — no park in between — or the scope would leak
	// to an unrelated caller.
	next SpanID
}

// NewTracer creates a tracer on the given kernel.
func NewTracer(k *sim.Kernel) *Tracer {
	return &Tracer{k: k, pos: make(map[SpanID]int)}
}

// NewTracerWithBase creates a tracer whose span IDs start at base+1.
// Partitioned runs give shard s the base SpanID(s)<<32, so every
// shard's IDs are globally unique and a fleet-wide merge (Concat)
// never renumbers. k may be nil for tracers that only receive complete
// spans (RecordAt/Put); such tracers clamp open spans to the latest
// timestamp they have seen.
func NewTracerWithBase(k *sim.Kernel, base SpanID) *Tracer {
	return &Tracer{k: k, base: base, pos: make(map[SpanID]int)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Base returns the tracer's ID base.
func (t *Tracer) Base() SpanID {
	if t == nil {
		return 0
	}
	return t.base
}

// span returns a pointer to the stored span with the given ID, or nil.
func (t *Tracer) span(id SpanID) *Span {
	i, ok := t.pos[id]
	if !ok {
		return nil
	}
	return &t.spans[i]
}

// note advances the export clamp for open spans.
func (t *Tracer) note(at sim.Time) {
	if at > t.maxAt {
		t.maxAt = at
	}
}

// Start opens a span and returns its ID (0 on a nil tracer). parent 0
// makes it a root.
func (t *Tracer) Start(kind, name string, machine int, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	t.seq++
	id := t.base + SpanID(t.seq)
	trace := id
	if parent != 0 {
		if ps := t.span(parent); ps != nil {
			trace = ps.TraceID
		}
	}
	now := t.k.Now()
	t.note(now)
	t.pos[id] = len(t.spans)
	t.spans = append(t.spans, Span{
		TraceID: trace,
		ID:      id,
		Parent:  parent,
		Kind:    kind,
		Name:    name,
		Machine: machine,
		From:    -1,
		To:      -1,
		Start:   now,
	})
	return id
}

// SkipIDs burns n span IDs without recording anything. The sampler
// uses it to keep a filtered tracer's ID counter aligned with the full
// tracer it mirrors, so spans recorded after a dropped tree still get
// identical IDs in both.
func (t *Tracer) SkipIDs(n uint64) {
	if t == nil {
		return
	}
	t.seq += n
}

// RecordAt appends a complete span with explicit timestamps and
// returns its ID. This is the retroactive path: the SLO monitor emits
// an incident span only once the incident has closed, with the open
// time as Start — span IDs are assigned at emission, so the ID order
// of an export remains deterministic.
func (t *Tracer) RecordAt(kind, name string, machine int, parent SpanID, start, end sim.Time) SpanID {
	if t == nil {
		return 0
	}
	t.seq++
	id := t.base + SpanID(t.seq)
	trace := id
	if parent != 0 {
		if ps := t.span(parent); ps != nil {
			trace = ps.TraceID
		}
	}
	t.note(end)
	t.pos[id] = len(t.spans)
	t.spans = append(t.spans, Span{
		TraceID: trace,
		ID:      id,
		Parent:  parent,
		Kind:    kind,
		Name:    name,
		Machine: machine,
		From:    -1,
		To:      -1,
		Start:   start,
		End:     end,
		Done:    true,
	})
	return id
}

// Put stores a span verbatim, keeping its ID, trace, and parent. This
// is how samplers and mergers build derived tracers: the copied span
// is byte-identical to the original, so a filtered export is a literal
// subset of the full one. The caller must not reuse an ID already
// present. Put does not advance the ID counter — pair it with SkipIDs
// when mirroring a live tracer.
func (t *Tracer) Put(s Span) {
	if t == nil {
		return
	}
	t.note(s.Start)
	if s.Done {
		t.note(s.End)
	}
	t.pos[s.ID] = len(t.spans)
	t.spans = append(t.spans, s)
}

// End closes a span at the current kernel time.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	sp := t.span(id)
	if sp == nil {
		return
	}
	sp.End = t.k.Now()
	sp.Done = true
	t.note(sp.End)
}

// SetRoute records the source and destination machines of a move.
func (t *Tracer) SetRoute(id SpanID, from, to int) {
	if t == nil || id == 0 {
		return
	}
	if sp := t.span(id); sp != nil {
		sp.From, sp.To = from, to
	}
}

// SetBytes records the payload size the span moved.
func (t *Tracer) SetBytes(id SpanID, n int64) {
	if t == nil || id == 0 {
		return
	}
	if sp := t.span(id); sp != nil {
		sp.Bytes = n
	}
}

// SetErr records the span's error (nil clears nothing and is a no-op).
func (t *Tracer) SetErr(id SpanID, err error) {
	if t == nil || id == 0 || err == nil {
		return
	}
	if sp := t.span(id); sp != nil {
		sp.Err = err.Error()
	}
}

// Num attaches a numeric attribute.
func (t *Tracer) Num(id SpanID, key string, v float64) {
	if t == nil || id == 0 {
		return
	}
	if sp := t.span(id); sp != nil {
		sp.Attrs = append(sp.Attrs, Attr{Key: key, Num: v, IsNum: true})
	}
}

// Str attaches a string attribute.
func (t *Tracer) Str(id SpanID, key, v string) {
	if t == nil || id == 0 {
		return
	}
	if sp := t.span(id); sp != nil {
		sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: v})
	}
}

// SetNext arms a one-shot parent for the next TakeNext. See the field
// comment for the synchronicity requirement.
func (t *Tracer) SetNext(id SpanID) {
	if t == nil {
		return
	}
	t.next = id
}

// TakeNext consumes the one-shot parent (0 when none armed).
func (t *Tracer) TakeNext() SpanID {
	if t == nil {
		return 0
	}
	id := t.next
	t.next = 0
	return id
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns all recorded spans in recording order (not a copy).
// Within one live tracer recording order is ID order; tracers built
// with Put may interleave — exporters use SpansByID.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// SpansByID returns the spans in ascending ID order. When the spans
// are already ordered (the common case: one live tracer) the
// underlying slice is returned without copying.
func (t *Tracer) SpansByID() []Span {
	if t == nil {
		return nil
	}
	ordered := true
	for i := 1; i < len(t.spans); i++ {
		if t.spans[i].ID < t.spans[i-1].ID {
			ordered = false
			break
		}
	}
	if ordered {
		return t.spans
	}
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Span returns the span with the given ID, or nil.
func (t *Tracer) Span(id SpanID) *Span {
	if t == nil || id == 0 {
		return nil
	}
	return t.span(id)
}

// LastOpen returns the most recently started span that is still open
// and whose kind is one of kinds (0 when none). The SLO monitor uses
// it to parent an incident under the fault/pressure/migration span
// active at open.
func (t *Tracer) LastOpen(kinds ...string) SpanID {
	if t == nil {
		return 0
	}
	for i := len(t.spans) - 1; i >= 0; i-- {
		sp := &t.spans[i]
		if sp.Done {
			continue
		}
		for _, k := range kinds {
			if sp.Kind == k {
				return sp.ID
			}
		}
	}
	return 0
}

// Concat builds one tracer holding every span of the inputs, in
// ascending ID order. With disjoint per-shard bases this is the
// deterministic barrier merge for partitioned runs: the result depends
// only on shard contents, never on host worker count. Nil tracers are
// skipped; inputs are not modified.
func Concat(tracers ...*Tracer) *Tracer {
	total := 0
	for _, t := range tracers {
		total += t.Len()
	}
	out := &Tracer{pos: make(map[SpanID]int, total)}
	out.spans = make([]Span, 0, total)
	for _, t := range tracers {
		if t == nil {
			continue
		}
		for i := range t.spans {
			out.Put(t.spans[i])
		}
	}
	sort.Slice(out.spans, func(i, j int) bool { return out.spans[i].ID < out.spans[j].ID })
	for i := range out.spans {
		out.pos[out.spans[i].ID] = i
	}
	return out
}

// clampEnd returns the span's end for export: open spans are clamped
// to the latest timestamp the tracer has seen (end of run).
func (t *Tracer) clampEnd(s *Span) sim.Time {
	if s.Done {
		return s.End
	}
	end := t.maxAt
	if t.k != nil {
		if now := t.k.Now(); now > end {
			end = now
		}
	}
	if end > s.Start {
		return end
	}
	return s.Start
}
