package obs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// Per-shard telemetry registries sampled on independent shard kernels
// must merge into one deterministic view whose order depends only on
// argument order and registration order.
func TestMergeSeries(t *testing.T) {
	const shards = 3
	pk := sim.NewParKernel(5, shards, 2*sim.Microsecond)
	defer pk.Close()

	regs := make([]*Telemetry, shards)
	for s := 0; s < shards; s++ {
		s := s
		k := pk.Shard(s)
		regs[s] = NewTelemetry(k, 10*time.Microsecond)
		for g := 0; g < 2; g++ {
			val := float64(s*10 + g)
			regs[s].Register(fmt.Sprintf("shard%d.g%d", s, g), s, func() float64 { return val })
		}
		regs[s].Start()
		// Cross-shard chatter so windows are real.
		if s > 0 {
			k.Every(sim.Microsecond, 7*time.Microsecond, func() bool {
				pk.Send(s, 0, k.Now()+pk.Lookahead(), func() {})
				return true
			})
		}
	}
	pk.RunUntil(100 * sim.Microsecond)

	merged := MergeSeries(regs...)
	if len(merged) != shards*2 {
		t.Fatalf("merged %d series, want %d", len(merged), shards*2)
	}
	for i, s := range merged {
		wantName := fmt.Sprintf("shard%d.g%d", i/2, i%2)
		if s.Name != wantName {
			t.Fatalf("series %d is %q, want %q (merge order must be argument then registration order)", i, s.Name, wantName)
		}
		if s.Len() != 10 {
			t.Errorf("series %q has %d samples, want 10", s.Name, s.Len())
		}
	}

	// Nil registries are skipped without guards.
	if got := MergeSeries(nil, regs[0], nil); len(got) != 2 {
		t.Fatalf("MergeSeries with nils returned %d series, want 2", len(got))
	}
}
