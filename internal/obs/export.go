package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/sim"
)

// Export formats. Both are byte-deterministic: spans are written in ID
// order, samples in (probe, time) order, and attribute maps are
// marshaled by encoding/json, which sorts keys.
//
//   - Chrome trace-event JSON (WriteChromeTrace): loads in Perfetto or
//     chrome://tracing. One process (pid) per machine, one thread (tid)
//     per causal tree, so spans of a tree nest visually by time;
//     telemetry series become counter tracks.
//   - JSONL (WriteJSONL): one Record per line, for qsctl analyze and
//     offline tooling.

// chromeSpanEvent is one complete ("X") trace event.
type chromeSpanEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMetaEvent names a process track ("M" metadata).
type chromeMetaEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

// chromeCounterEvent is one counter sample ("C").
type chromeCounterEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

// pidOf maps a machine ID to a Chrome process ID: machine m is pid
// m+1; the control plane (machine -1) is pid 0.
func pidOf(machine int) int {
	if machine < 0 {
		return 0
	}
	return machine + 1
}

// usOf converts a kernel timestamp to trace-event microseconds.
func usOf(t sim.Time) float64 { return float64(t) / 1e3 }

// finite clamps non-finite values so encoding/json never rejects an
// export (JSON has no Inf/NaN).
func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// WriteChromeTrace writes the run as Chrome trace-event JSON. tl may
// be nil (no counter tracks).
func WriteChromeTrace(w io.Writer, t *Tracer, tl *Telemetry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev any) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Process-name metadata: the control plane plus every machine that
	// appears in a span or a telemetry probe.
	spans := t.SpansByID()
	pids := map[int]string{}
	for i := range spans {
		s := &spans[i]
		pid := pidOf(s.Machine)
		if _, ok := pids[pid]; !ok {
			pids[pid] = trackName(s.Machine)
		}
	}
	if tl != nil {
		for i := range tl.probes {
			pid := pidOf(tl.probes[i].machine)
			if _, ok := pids[pid]; !ok {
				pids[pid] = trackName(tl.probes[i].machine)
			}
		}
	}
	order := make([]int, 0, len(pids))
	for pid := range pids {
		order = append(order, pid)
	}
	sort.Ints(order)
	for _, pid := range order {
		ev := chromeMetaEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": pids[pid]}}
		if err := emit(ev); err != nil {
			return err
		}
	}

	// Spans, in ID order.
	for i := range spans {
		s := &spans[i]
		end := t.clampEnd(s)
		args := map[string]any{
			"span":   uint64(s.ID),
			"parent": uint64(s.Parent),
			"trace":  uint64(s.TraceID),
		}
		if s.From >= 0 || s.To >= 0 {
			args["from"] = s.From
			args["to"] = s.To
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		if !s.Done {
			args["open"] = true
		}
		for _, a := range s.Attrs {
			if a.IsNum {
				args[a.Key] = finite(a.Num)
			} else {
				args[a.Key] = a.Str
			}
		}
		ev := chromeSpanEvent{
			Name: s.Kind + ":" + s.Name,
			Cat:  s.Kind,
			Ph:   "X",
			Ts:   usOf(s.Start),
			Dur:  usOf(end - s.Start),
			Pid:  pidOf(s.Machine),
			Tid:  uint64(s.TraceID),
			Args: args,
		}
		if err := emit(ev); err != nil {
			return err
		}
	}

	// Telemetry counter tracks, one event per sample.
	if tl != nil {
		for i := range tl.probes {
			p := &tl.probes[i]
			for _, pt := range p.series.Points() {
				ev := chromeCounterEvent{
					Name: p.series.Name,
					Ph:   "C",
					Ts:   usOf(pt.At),
					Pid:  pidOf(p.machine),
					Args: map[string]any{"value": finite(pt.Value)},
				}
				if err := emit(ev); err != nil {
					return err
				}
			}
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// trackName renders a machine's Chrome process name.
func trackName(machine int) string {
	if machine < 0 {
		return "control-plane"
	}
	return fmt.Sprintf("machine %d", machine)
}

// Record is one JSONL line: a span (Type "span") or a telemetry sample
// (Type "sample"). One struct covers both so readers need a single
// decode path.
type Record struct {
	Type string `json:"type"`

	// Span fields.
	Trace   uint64             `json:"trace,omitempty"`
	ID      uint64             `json:"id,omitempty"`
	Parent  uint64             `json:"parent,omitempty"`
	Kind    string             `json:"kind,omitempty"`
	Name    string             `json:"name,omitempty"`
	Machine int                `json:"machine"`
	From    int                `json:"from"`
	To      int                `json:"to"`
	Bytes   int64              `json:"bytes,omitempty"`
	StartNS int64              `json:"start_ns"`
	EndNS   int64              `json:"end_ns"`
	Open    bool               `json:"open,omitempty"`
	Err     string             `json:"err,omitempty"`
	Attrs   map[string]string  `json:"attrs,omitempty"`
	Nums    map[string]float64 `json:"nums,omitempty"`

	// Sample fields.
	Series string  `json:"series,omitempty"`
	AtNS   int64   `json:"at_ns,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// WriteJSONL writes the run as compact JSONL: one span record per span
// (ID order), then one sample record per telemetry sample (probe
// order). tl may be nil.
func WriteJSONL(w io.Writer, t *Tracer, tl *Telemetry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	spans := t.SpansByID()
	for i := range spans {
		s := &spans[i]
		rec := Record{
			Type:    "span",
			Trace:   uint64(s.TraceID),
			ID:      uint64(s.ID),
			Parent:  uint64(s.Parent),
			Kind:    s.Kind,
			Name:    s.Name,
			Machine: s.Machine,
			From:    s.From,
			To:      s.To,
			Bytes:   s.Bytes,
			StartNS: int64(s.Start),
			EndNS:   int64(t.clampEnd(s)),
			Open:    !s.Done,
			Err:     s.Err,
		}
		for _, a := range s.Attrs {
			if a.IsNum {
				if rec.Nums == nil {
					rec.Nums = map[string]float64{}
				}
				rec.Nums[a.Key] = finite(a.Num)
			} else {
				if rec.Attrs == nil {
					rec.Attrs = map[string]string{}
				}
				rec.Attrs[a.Key] = a.Str
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if tl != nil {
		for i := range tl.probes {
			p := &tl.probes[i]
			for _, pt := range p.series.Points() {
				rec := Record{
					Type:    "sample",
					Series:  p.series.Name,
					Machine: p.machine,
					From:    -1,
					To:      -1,
					AtNS:    int64(pt.At),
					Value:   finite(pt.Value),
				}
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses records written by WriteJSONL. It reads line by
// line so a malformed record is reported with its 1-based line number
// instead of being silently skipped or failing with an opaque offset;
// blank lines are allowed, anything else must be a valid span or
// sample record.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("obs: line %d: malformed JSONL record: %w", line, err)
		}
		switch rec.Type {
		case "span", "sample":
		default:
			return nil, fmt.Errorf("obs: line %d: unknown record type %q", line, rec.Type)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: line %d: %w", line+1, err)
	}
	return out, nil
}
