package obs_test

// Determinism regression test for the observability layer: tracing and
// telemetry ride the deterministic kernel, so one seed must produce one
// timeline — identical span IDs in identical order, and byte-identical
// exported JSON — run after run. This mirrors the top-level
// determinism_test.go, but for the span/telemetry plane instead of the
// experiment result plane.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sharded"
	"repro/internal/sim"
)

// tracedChurnRun executes a small churn workload — a sharded map under
// insert/delete waves plus a bursty memory co-tenant that forces
// pressure-caused migrations — with tracing and telemetry on, and
// returns both exports plus the recorded spans.
func tracedChurnRun(t *testing.T, seed int64) (jsonl, chrome []byte, spans []obs.Span) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	sys := core.NewSystem(cfg, []cluster.MachineConfig{
		{Cores: 8, MemBytes: 64 << 20},
		{Cores: 8, MemBytes: 64 << 20},
	})
	defer sys.Close()
	sys.EnableTracing()
	sys.EnableTelemetry(250 * time.Microsecond)
	sys.Start()

	m, err := sharded.NewMap[int, []byte](sys, "kv", sharded.Options{MaxShardBytes: 1 << 20, AutoAdapt: true})
	if err != nil {
		t.Fatal(err)
	}
	m0 := sys.Cluster.Machine(0)
	sys.K.Every(sim.Time(5*time.Millisecond), 10*time.Millisecond, func() bool {
		tenant := m0.MemFree() - (2 << 20)
		if tenant > 0 && m0.AllocMem(tenant) == nil {
			sys.K.After(4*time.Millisecond, func() { m0.FreeMem(tenant) })
		}
		return true
	})
	sys.K.Spawn("churner", func(p *sim.Proc) {
		for wave := 0; ; wave++ {
			for i := 0; i < 256; i++ {
				if err := m.Put(p, 0, wave*10000+i, nil, 8<<10); err != nil {
					return
				}
			}
			for i := 0; i < 240; i++ {
				if err := m.Delete(p, 0, wave*10000+i); err != nil {
					return
				}
			}
			p.Sleep(time.Millisecond)
		}
	})
	sys.K.RunUntil(sim.Time(40 * time.Millisecond))

	var jb, cb bytes.Buffer
	if err := obs.WriteJSONL(&jb, sys.Obs, sys.Tel); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&cb, sys.Obs, sys.Tel); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes(), append([]obs.Span(nil), sys.Obs.Spans()...)
}

// TestTracedRunDeterministic5Seeds sweeps five seeds; each must
// reproduce itself exactly — same spans, same IDs, same order, and
// byte-identical JSONL and Chrome trace exports.
func TestTracedRunDeterministic5Seeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		j1, c1, s1 := tracedChurnRun(t, seed)
		j2, c2, s2 := tracedChurnRun(t, seed)

		if len(s1) == 0 {
			t.Fatalf("seed %d: run recorded no spans", seed)
		}
		if len(s1) != len(s2) {
			t.Fatalf("seed %d: %d spans vs %d", seed, len(s1), len(s2))
		}
		for i := range s1 {
			a, b := s1[i], s2[i]
			// Attrs is a slice; compare scalar identity fields directly.
			if a.ID != b.ID || a.Parent != b.Parent || a.TraceID != b.TraceID ||
				a.Kind != b.Kind || a.Name != b.Name || a.Machine != b.Machine ||
				a.From != b.From || a.To != b.To || a.Bytes != b.Bytes ||
				a.Start != b.Start || a.End != b.End || a.Done != b.Done || a.Err != b.Err {
				t.Fatalf("seed %d: span %d diverges:\n  %+v\n  %+v", seed, i, a, b)
			}
		}
		if !bytes.Equal(j1, j2) {
			t.Errorf("seed %d: JSONL export not byte-identical (%d vs %d bytes)", seed, len(j1), len(j2))
		}
		if !bytes.Equal(c1, c2) {
			t.Errorf("seed %d: Chrome trace export not byte-identical (%d vs %d bytes)", seed, len(c1), len(c2))
		}
	}
}

// TestTracedRunsDifferAcrossSeeds is the sanity inverse: distinct seeds
// must not collapse to the same timeline (the workload is seed-driven
// through proclet placement and steal order).
func TestTracedRunsDifferAcrossSeeds(t *testing.T) {
	j1, _, _ := tracedChurnRun(t, 1)
	j2, _, _ := tracedChurnRun(t, 2)
	if bytes.Equal(j1, j2) {
		t.Skip("seeds 1 and 2 produced identical timelines (placement happened to match)")
	}
}
