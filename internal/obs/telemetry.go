package obs

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Gauge reads one instantaneous value. Gauges are polled from kernel
// context on the sampling tick, so they must not block.
type Gauge func() float64

// probe is one registered gauge plus the series it fills. machine
// associates the series with a machine track on export (-1: control
// plane).
type probe struct {
	series  *metrics.TimeSeries
	machine int
	gauge   Gauge
}

// Telemetry samples registered gauges into metrics.TimeSeries on a
// fixed cadence of the kernel clock. Unlike span recording, sampling
// schedules kernel events (one per tick), so it changes a run's event
// count — experiments that compare event counts must leave it off.
//
// A nil *Telemetry accepts Register and returns a nil series, so
// conditional instrumentation sites need no guards.
type Telemetry struct {
	k       *sim.Kernel
	period  time.Duration
	probes  []probe
	started bool
	stopped bool
}

// NewTelemetry creates a sampling registry with the given cadence.
func NewTelemetry(k *sim.Kernel, period time.Duration) *Telemetry {
	if period <= 0 {
		period = time.Millisecond
	}
	return &Telemetry{k: k, period: period}
}

// Period returns the sampling cadence.
func (tl *Telemetry) Period() time.Duration {
	if tl == nil {
		return 0
	}
	return tl.period
}

// Register adds a gauge under the given series name. Probes registered
// after Start are picked up on the next tick. Returns the series the
// samples land in (nil on a nil registry).
func (tl *Telemetry) Register(name string, machine int, g Gauge) *metrics.TimeSeries {
	if tl == nil {
		return nil
	}
	s := metrics.NewTimeSeries(name)
	tl.probes = append(tl.probes, probe{series: s, machine: machine, gauge: g})
	return s
}

// Start launches the sampling loop, first tick one period from now.
// Idempotent.
func (tl *Telemetry) Start() {
	if tl == nil || tl.started {
		return
	}
	tl.started = true
	tl.k.Every(tl.k.Now().Add(tl.period), tl.period, func() bool {
		if tl.stopped {
			return false
		}
		tl.sample()
		return true
	})
}

// Stop ends sampling at the next tick. A stopped registry keeps its
// recorded series and cannot be restarted.
func (tl *Telemetry) Stop() {
	if tl == nil {
		return
	}
	tl.stopped = true
}

// sample polls every probe once at the current kernel time.
func (tl *Telemetry) sample() {
	now := tl.k.Now()
	for i := range tl.probes {
		tl.probes[i].series.Add(now, tl.probes[i].gauge())
	}
}

// Series returns every registered series in registration order.
func (tl *Telemetry) Series() []*metrics.TimeSeries {
	if tl == nil {
		return nil
	}
	out := make([]*metrics.TimeSeries, len(tl.probes))
	for i := range tl.probes {
		out[i] = tl.probes[i].series
	}
	return out
}

// machineOf returns the machine associated with probe i.
func (tl *Telemetry) machineOf(i int) int { return tl.probes[i].machine }

// MergeSeries combines the series of several telemetry registries into
// one deterministic view, in argument order then registration order.
//
// This is the shard-safe telemetry design for partitioned simulations
// (sim.ParKernel): each shard owns a private registry on its own shard
// kernel — sampling stays single-threaded and lock-free, exactly as on
// the sequential kernel — and cross-shard aggregation happens once,
// host-side, after the shards have synchronized at a barrier. The
// merged ordering depends only on argument order, never on the worker
// count. Nil registries are skipped, so partitioned systems with
// telemetry enabled on a subset of shards need no guards.
func MergeSeries(registries ...*Telemetry) []*metrics.TimeSeries {
	var out []*metrics.TimeSeries
	for _, tl := range registries {
		out = append(out, tl.Series()...)
	}
	return out
}
