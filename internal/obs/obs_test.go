package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer must report disabled")
	}
	id := tr.Start(KindRPC, "x", 0, 0)
	if id != 0 {
		t.Errorf("nil Start = %d, want 0", id)
	}
	tr.End(id)
	tr.SetRoute(id, 0, 1)
	tr.SetBytes(id, 42)
	tr.SetErr(id, nil)
	tr.Num(id, "k", 1)
	tr.Str(id, "k", "v")
	tr.SetNext(id)
	if tr.TakeNext() != 0 {
		t.Error("nil TakeNext must be 0")
	}
	if tr.Len() != 0 || tr.Spans() != nil || tr.Span(1) != nil {
		t.Error("nil tracer must hold nothing")
	}
}

func TestNilTracerDoesNotAllocate(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start(KindRPC, "call", 0, tr.TakeNext())
		tr.SetRoute(sp, 0, 1)
		tr.SetBytes(sp, 128)
		tr.End(sp)
	})
	if allocs != 0 {
		t.Errorf("nil tracer allocated %.1f objects per op, want 0", allocs)
	}
}

func TestNilTelemetrySafe(t *testing.T) {
	var tl *Telemetry
	if tl.Register("s", 0, func() float64 { return 1 }) != nil {
		t.Error("nil Register must return nil series")
	}
	tl.Start()
	tl.Stop()
	if tl.Period() != 0 || tl.Series() != nil {
		t.Error("nil telemetry must hold nothing")
	}
}

func TestSpanParentingAndTraceID(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)

	root := tr.Start(KindPressure, "mem", 0, 0)
	child := tr.Start(KindMigrate, "p1", 0, root)
	grand := tr.Start(KindPhase, "freeze", 0, child)
	other := tr.Start(KindRPC, "call", 1, 0)

	rs, cs, gs, os := tr.Span(root), tr.Span(child), tr.Span(grand), tr.Span(other)
	if rs.TraceID != root {
		t.Errorf("root TraceID = %d, want its own ID %d", rs.TraceID, root)
	}
	if cs.TraceID != root || gs.TraceID != root {
		t.Error("descendants must inherit the root's TraceID")
	}
	if cs.Parent != root || gs.Parent != child {
		t.Error("parent links wrong")
	}
	if os.TraceID != other || os.Parent != 0 {
		t.Error("independent root must start its own trace")
	}
	if rs.From != -1 || rs.To != -1 {
		t.Error("route must default to -1/-1")
	}
}

func TestSpanIDsAreDense(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	for i := 1; i <= 5; i++ {
		if id := tr.Start(KindRPC, "c", 0, 0); id != SpanID(i) {
			t.Fatalf("span %d got ID %d", i, id)
		}
	}
}

func TestEndRecordsKernelTime(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	var sp SpanID
	k.After(time.Millisecond, func() { sp = tr.Start(KindInvoke, "get", 0, 0) })
	k.After(3*time.Millisecond, func() { tr.End(sp) })
	k.RunUntil(sim.Time(10 * time.Millisecond))
	s := tr.Span(sp)
	if s.Start != sim.Time(time.Millisecond) || s.End != sim.Time(3*time.Millisecond) {
		t.Errorf("span times = [%d, %d]", s.Start, s.End)
	}
	if s.Duration() != sim.Time(2*time.Millisecond) {
		t.Errorf("Duration = %d", s.Duration())
	}
}

func TestOpenSpanClampsOnExport(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	var sp SpanID
	k.After(time.Millisecond, func() { sp = tr.Start(KindInvoke, "get", 0, 0) })
	k.RunUntil(sim.Time(5 * time.Millisecond))
	s := tr.Span(sp)
	if s.Done {
		t.Fatal("span should be open")
	}
	if s.Duration() != 0 {
		t.Error("open span Duration must be 0")
	}
	if end := tr.clampEnd(s); end != k.Now() {
		t.Errorf("clampEnd = %d, want now %d", end, k.Now())
	}
}

func TestSetNextIsOneShot(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	sp := tr.Start(KindInvoke, "get", 0, 0)
	tr.SetNext(sp)
	if got := tr.TakeNext(); got != sp {
		t.Errorf("TakeNext = %d, want %d", got, sp)
	}
	if got := tr.TakeNext(); got != 0 {
		t.Errorf("second TakeNext = %d, want 0", got)
	}
}

func TestTelemetrySamplesOnCadence(t *testing.T) {
	k := sim.NewKernel(1)
	tl := NewTelemetry(k, time.Millisecond)
	v := 0.0
	s := tl.Register("m0.cpu_util", 0, func() float64 { v += 0.1; return v })
	tl.Start()
	tl.Start() // idempotent
	k.RunUntil(sim.Time(5 * time.Millisecond))
	pts := s.Points()
	if len(pts) != 5 {
		t.Fatalf("got %d samples over 5ms at 1ms cadence, want 5", len(pts))
	}
	if pts[0].At != sim.Time(time.Millisecond) || pts[0].Value != 0.1 {
		t.Errorf("first sample = %+v", pts[0])
	}
	tl.Stop()
	k.RunUntil(sim.Time(10 * time.Millisecond))
	if len(s.Points()) != 5 {
		t.Error("samples recorded after Stop")
	}
}

// buildRun records a tiny run with a pressure-caused migration, an RPC,
// and one telemetry series, all at fixed kernel times.
func buildRun(t *testing.T) (*Tracer, *Telemetry) {
	t.Helper()
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	tl := NewTelemetry(k, time.Millisecond)
	cpu := 0.0
	tl.Register("m0.cpu_util", 0, func() float64 { cpu += 0.2; return cpu })
	tl.Start()

	var pressure, mig, rpc SpanID
	k.After(time.Millisecond, func() {
		pressure = tr.Start(KindPressure, "mem", 0, 0)
		tr.Num(pressure, "pressure", 0.95)
		mig = tr.Start(KindMigrate, "shard-0", 0, pressure)
		tr.SetRoute(mig, 0, 1)
		tr.SetBytes(mig, 1<<20)
	})
	k.After(2*time.Millisecond, func() {
		rpc = tr.Start(KindRPC, "kv.Get", 0, 0)
		tr.SetRoute(rpc, 0, 1)
	})
	k.After(3*time.Millisecond, func() {
		tr.End(rpc)
		tr.End(mig)
		tr.End(pressure)
	})
	k.RunUntil(sim.Time(4 * time.Millisecond))
	return tr, tl
}

func TestJSONLRoundTrip(t *testing.T) {
	tr, tl := buildRun(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr, tl); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans, samples := 0, 0
	var mig *Record
	for i := range recs {
		switch recs[i].Type {
		case "span":
			spans++
			if recs[i].Kind == KindMigrate {
				mig = &recs[i]
			}
		case "sample":
			samples++
		}
	}
	if spans != tr.Len() {
		t.Errorf("round-tripped %d spans, want %d", spans, tr.Len())
	}
	if samples == 0 {
		t.Error("no samples round-tripped")
	}
	if mig == nil {
		t.Fatal("migrate span lost")
	}
	if mig.From != 0 || mig.To != 1 || mig.Bytes != 1<<20 || mig.Parent == 0 {
		t.Errorf("migrate record = %+v", mig)
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr, tl := buildRun(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, tl); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	foundMigrate := false
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if name, _ := ev["name"].(string); strings.HasPrefix(name, "migrate:") {
			foundMigrate = true
			args := ev["args"].(map[string]any)
			if args["parent"].(float64) == 0 {
				t.Error("migrate event lost its parent")
			}
			if args["from"].(float64) != 0 || args["to"].(float64) != 1 {
				t.Errorf("migrate route args = %v", args)
			}
		}
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["C"] == 0 {
		t.Errorf("missing event phases: %v", phases)
	}
	if !foundMigrate {
		t.Error("no migrate span event")
	}
}

func TestExportSanitizesNonFiniteValues(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	sp := tr.Start(KindPressure, "cpu", 0, 0)
	tr.Num(sp, "inf", math.Inf(1))
	tr.Num(sp, "neginf", math.Inf(-1))
	tr.Num(sp, "nan", math.NaN())
	tr.End(sp)
	tl := NewTelemetry(k, time.Millisecond)
	tl.Register("m0.bad", 0, func() float64 { return math.Inf(1) })
	tl.Start()
	k.RunUntil(sim.Time(2 * time.Millisecond))

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, tr, tl); err != nil {
		t.Fatalf("chrome export rejected non-finite values: %v", err)
	}
	if !json.Valid(chrome.Bytes()) {
		t.Error("chrome export is not valid JSON")
	}
	var jl bytes.Buffer
	if err := WriteJSONL(&jl, tr, tl); err != nil {
		t.Fatalf("jsonl export rejected non-finite values: %v", err)
	}
	recs, err := ReadJSONL(&jl)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		for key, v := range r.Nums {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Errorf("num %q survived as non-finite", key)
			}
		}
		if math.IsInf(r.Value, 0) || math.IsNaN(r.Value) {
			t.Error("sample value survived as non-finite")
		}
	}
}

func TestAnalyzeReport(t *testing.T) {
	tr, tl := buildRun(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr, tl); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rp := Analyze(recs)
	if rp.Spans != tr.Len() || rp.Samples == 0 {
		t.Errorf("report counts: %d spans %d samples", rp.Spans, rp.Samples)
	}
	if len(rp.Migrations) != 1 {
		t.Fatalf("got %d migrations, want 1", len(rp.Migrations))
	}
	m := rp.Migrations[0]
	if m.Cause != "pressure:mem m0" {
		t.Errorf("migration cause = %q", m.Cause)
	}
	if m.LatencyMS != 2 {
		t.Errorf("migration latency = %v ms, want 2", m.LatencyMS)
	}
	if len(rp.Methods) != 1 || rp.Methods[0].Method != "kv.Get" || rp.Methods[0].Count != 1 {
		t.Errorf("methods = %+v", rp.Methods)
	}
	if rp.Methods[0].P50MS != 1 || rp.Methods[0].P99MS != 1 {
		t.Errorf("percentiles = %+v", rp.Methods[0])
	}
	if len(rp.Machines) != 1 || rp.Machines[0].Machine != 0 {
		t.Fatalf("machines = %+v", rp.Machines)
	}
	if rp.Machines[0].CPUMax == 0 {
		t.Error("cpu max not captured")
	}
	var report strings.Builder
	rp.Print(&report, 5)
	for _, want := range []string{"slowest migrations", "call latency by method", "per-machine utilization", "kv.Get", "pressure:mem m0"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}

// TestAnalyzeGPUSection: the gpu.<name>.step_ms / .qdelay_ms series
// registered by the GPU fleet's AttachTelemetry must surface as a
// per-trainer step-latency digest — the fingerprint of a gray-degraded
// device is a step-max far above the step-mean.
func TestAnalyzeGPUSection(t *testing.T) {
	recs := []Record{
		{Type: "sample", Series: "gpu.trainer-0.step_ms", Machine: 1, AtNS: 1e6, Value: 1.0},
		{Type: "sample", Series: "gpu.trainer-0.step_ms", Machine: 1, AtNS: 2e6, Value: 3.0},
		{Type: "sample", Series: "gpu.trainer-0.qdelay_ms", Machine: 1, AtNS: 2e6, Value: 0.5},
		{Type: "sample", Series: "gpu.trainer-1.step_ms", Machine: 2, AtNS: 1e6, Value: 2.0},
		// Not a GPU series: must keep flowing into machine utilization.
		{Type: "sample", Series: "m0.cpu_util", Machine: 0, AtNS: 1e6, Value: 0.5},
	}
	rp := Analyze(recs)
	if len(rp.GPUs) != 2 {
		t.Fatalf("GPUs = %+v, want 2 trainers", rp.GPUs)
	}
	g0 := rp.GPUs[0]
	if g0.Name != "trainer-0" || g0.Machine != 1 || g0.Samples != 2 {
		t.Errorf("trainer-0 stat = %+v", g0)
	}
	if g0.StepMeanMS != 2.0 || g0.StepMaxMS != 3.0 {
		t.Errorf("trainer-0 step mean/max = %v/%v, want 2/3", g0.StepMeanMS, g0.StepMaxMS)
	}
	if g0.QDelayMeanMS != 0.5 || g0.QDelayMaxMS != 0.5 {
		t.Errorf("trainer-0 qdelay mean/max = %v/%v, want 0.5/0.5", g0.QDelayMeanMS, g0.QDelayMaxMS)
	}
	if rp.GPUs[1].Name != "trainer-1" || rp.GPUs[1].StepMeanMS != 2.0 {
		t.Errorf("trainer-1 stat = %+v", rp.GPUs[1])
	}
	if len(rp.Machines) != 1 || rp.Machines[0].Machine != 0 {
		t.Errorf("machines = %+v: gpu series leaked into machine utilization", rp.Machines)
	}
	var report strings.Builder
	rp.Print(&report, 5)
	for _, want := range []string{"gpu trainers", "trainer-0", "step-max"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}
