package simnet

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// testPartCfg uses round numbers so latency arithmetic is exact:
// 1 GB/s = 1 ns per byte, no header overhead, 1 us software overhead.
func testPartCfg() Config {
	return Config{
		Latency:          2 * time.Microsecond,
		Bandwidth:        1_000_000_000,
		RPCOverhead:      time.Microsecond,
		MsgOverheadBytes: 0,
	}
}

// newTestPartition builds a ParKernel with one Fabric per shard and
// nodes 0..nodes-1 on each.
func newTestPartition(seed int64, shards, nodes int, cfg Config) (*sim.ParKernel, *Partition) {
	pk := sim.NewParKernel(seed, shards, sim.Time(cfg.Latency.Nanoseconds()))
	fabrics := make([]*Fabric, shards)
	for s := 0; s < shards; s++ {
		fabrics[s] = New(pk.Shard(s), cfg)
		for n := 0; n < nodes; n++ {
			fabrics[s].AddNode(NodeID(n))
		}
	}
	return pk, NewPartition(pk, fabrics)
}

// Same-shard calls through the Partition must behave exactly like calls
// on the shard's own Fabric: same reply, same elapsed time, and no
// cross-shard machinery engaged.
func TestPartitionSameShardDelegates(t *testing.T) {
	cfg := testPartCfg()

	// Reference: the identical call on a plain single fabric.
	refK := sim.NewKernel(1)
	defer refK.Close()
	refF := New(refK, cfg)
	refF.AddNode(0)
	refF.AddNode(1)
	refF.Node(1).HandleFast("echo", func(req Message) (Message, error) { return req, nil })
	var refElapsed sim.Time
	refK.Spawn("client", func(p *sim.Proc) {
		start := refK.Now()
		if _, err := refF.Call(p, 0, 1, "echo", Message{Bytes: 1000}); err != nil {
			t.Errorf("reference call: %v", err)
		}
		refElapsed = refK.Now() - start
	})
	refK.Run()

	pk, pt := newTestPartition(1, 2, 2, cfg)
	defer pk.Close()
	pt.Fabric(0).Node(1).HandleFast("echo", func(req Message) (Message, error) { return req, nil })
	var elapsed sim.Time
	pk.Shard(0).Spawn("client", func(p *sim.Proc) {
		start := pk.Shard(0).Now()
		rep, err := pt.Call(p, ShardNode{0, 0}, ShardNode{0, 1}, "echo", Message{Bytes: 1000})
		if err != nil {
			t.Errorf("partition same-shard call: %v", err)
		}
		if rep.Bytes != 1000 {
			t.Errorf("reply bytes = %d, want 1000", rep.Bytes)
		}
		elapsed = pk.Shard(0).Now() - start
	})
	pk.Run()

	if elapsed != refElapsed {
		t.Errorf("same-shard call through partition took %v, plain fabric took %v", elapsed, refElapsed)
	}
	if got := pt.CrossCalls.Value(); got != 0 {
		t.Errorf("CrossCalls = %d after same-shard call, want 0", got)
	}
	if got := pt.CrossBytes.Value(); got != 0 {
		t.Errorf("CrossBytes = %d after same-shard call, want 0", got)
	}
}

// A cross-shard fast-handler round trip follows the documented model:
// overhead + tx/rx of the request + fast handler + tx/rx of the reply +
// one propagation latency each way.
func TestPartitionCrossShardLatencyModel(t *testing.T) {
	cfg := testPartCfg()
	pk, pt := newTestPartition(7, 2, 1, cfg)
	defer pk.Close()

	pt.Fabric(1).Node(0).HandleFast("get", func(req Message) (Message, error) {
		return Message{Payload: "value", Bytes: 500}, nil
	})

	// 1us overhead + (1us tx + 1us rx) request + (0.5us tx + 0.5us rx)
	// reply + 2 * 2us propagation = 8us.
	const want = 8 * sim.Microsecond
	var elapsed sim.Time
	pk.Shard(0).Spawn("client", func(p *sim.Proc) {
		start := pk.Shard(0).Now()
		rep, err := pt.Call(p, ShardNode{0, 0}, ShardNode{1, 0}, "get", Message{Bytes: 1000})
		if err != nil {
			t.Errorf("cross-shard call: %v", err)
		}
		if rep.Payload != "value" || rep.Bytes != 500 {
			t.Errorf("reply = %+v, want value/500", rep)
		}
		elapsed = pk.Shard(0).Now() - start
	})
	pk.Run()

	if elapsed != want {
		t.Errorf("cross-shard round trip took %v, want %v", elapsed, want)
	}
	if got := pt.CrossCalls.Value(); got != 1 {
		t.Errorf("CrossCalls = %d, want 1", got)
	}
	if got := pt.CrossBytes.Value(); got != 1500 {
		t.Errorf("CrossBytes = %d, want 1500 (request 1000 + reply 500)", got)
	}
	tx := pt.Fabric(0).Node(0).TxBytes.Value()
	rx := pt.Fabric(1).Node(0).RxBytes.Value()
	if tx != 1000 || rx != 1000 {
		t.Errorf("request NIC charges tx=%d rx=%d, want 1000/1000", tx, rx)
	}
}

// When the destination's fast handler declines with ErrWouldBlock, the
// blocking handler must run on the destination shard in a real process.
func TestPartitionCrossShardBlockingFallback(t *testing.T) {
	cfg := testPartCfg()
	pk, pt := newTestPartition(3, 2, 1, cfg)
	defer pk.Close()

	fastTried := false
	dst := pt.Fabric(1).Node(0)
	dst.HandleFast("work", func(req Message) (Message, error) {
		fastTried = true
		return Message{}, ErrWouldBlock
	})
	dst.Handle("work", func(hp *sim.Proc, req Message) (Message, error) {
		hp.Sleep(3 * time.Microsecond)
		return Message{Payload: "done", Bytes: 500}, nil
	})

	const want = 11 * sim.Microsecond // fast-path 8us + 3us blocking work
	var elapsed sim.Time
	pk.Shard(0).Spawn("client", func(p *sim.Proc) {
		start := pk.Shard(0).Now()
		rep, err := pt.Call(p, ShardNode{0, 0}, ShardNode{1, 0}, "work", Message{Bytes: 1000})
		if err != nil {
			t.Errorf("cross-shard blocking call: %v", err)
		}
		if rep.Payload != "done" {
			t.Errorf("reply payload = %v, want done", rep.Payload)
		}
		elapsed = pk.Shard(0).Now() - start
	})
	pk.Run()

	if !fastTried {
		t.Error("fast handler was never offered the request")
	}
	if elapsed != want {
		t.Errorf("blocking cross-shard round trip took %v, want %v", elapsed, want)
	}
	if got := pt.Fabric(1).FastCalls.Value(); got != 0 {
		t.Errorf("FastCalls = %d after ErrWouldBlock fallback, want 0", got)
	}
}

// Cross-shard error paths must resolve the caller with the canonical
// sentinel errors, never hang it.
func TestPartitionCrossShardErrors(t *testing.T) {
	cfg := testPartCfg()
	pk, pt := newTestPartition(11, 3, 2, cfg)
	defer pk.Close()

	pt.Fabric(2).Node(1).SetDown(true)
	pt.Fabric(1).Node(0).HandleFast("only", func(req Message) (Message, error) { return req, nil })

	pk.Shard(0).Spawn("client", func(p *sim.Proc) {
		if _, err := pt.Call(p, ShardNode{0, 0}, ShardNode{1, 7}, "only", Message{}); !errors.Is(err, ErrNoSuchNode) {
			t.Errorf("unknown node: err = %v, want ErrNoSuchNode", err)
		}
		if _, err := pt.Call(p, ShardNode{0, 0}, ShardNode{2, 1}, "only", Message{}); !errors.Is(err, ErrNodeDown) {
			t.Errorf("down node: err = %v, want ErrNodeDown", err)
		}
		if _, err := pt.Call(p, ShardNode{0, 0}, ShardNode{1, 0}, "missing", Message{}); !errors.Is(err, ErrNoHandler) {
			t.Errorf("missing handler: err = %v, want ErrNoHandler", err)
		}
		if _, err := pt.Call(p, ShardNode{0, 0}, ShardNode{9, 0}, "only", Message{}); !errors.Is(err, ErrNoSuchNode) {
			t.Errorf("shard out of range: err = %v, want ErrNoSuchNode", err)
		}
	})
	pk.Run()
}

// A partitioned cross link drops the request: with a deadline the call
// resolves as ErrTimeout exactly when the deadline fires; without one
// it fails immediately rather than hanging. Healing the link restores
// service.
func TestPartitionCrossLinkFaults(t *testing.T) {
	cfg := testPartCfg()
	pk, pt := newTestPartition(5, 2, 1, cfg)
	defer pk.Close()
	pt.Fabric(1).Node(0).HandleFast("echo", func(req Message) (Message, error) { return req, nil })

	a, b := ShardNode{0, 0}, ShardNode{1, 0}
	pt.SetCrossLinkFault(a, b, LinkFault{Partitioned: true})

	pk.Shard(0).Spawn("client", func(p *sim.Proc) {
		// With a deadline: resolves at overhead + d.
		start := pk.Shard(0).Now()
		_, err := pt.CallWithTimeout(p, a, b, "echo", Message{Bytes: 100}, 50*time.Microsecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("partitioned with deadline: err = %v, want ErrTimeout", err)
		}
		if got, want := pk.Shard(0).Now()-start, 51*sim.Microsecond; got != want {
			t.Errorf("deadline resolution after %v, want %v", got, want)
		}

		// Without a deadline: fails at send time instead of hanging.
		start = pk.Shard(0).Now()
		_, err = pt.CallWithTimeout(p, a, b, "echo", Message{Bytes: 100}, -1)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("partitioned without deadline: err = %v, want ErrTimeout", err)
		}
		if got, want := pk.Shard(0).Now()-start, sim.Microsecond; got != want {
			t.Errorf("no-deadline loss resolved after %v, want %v (overhead only)", got, want)
		}

		pt.ClearCrossLinkFault(a, b)
		if _, err := pt.Call(p, a, b, "echo", Message{Bytes: 100}); err != nil {
			t.Errorf("call after heal: %v", err)
		}
	})
	pk.Run()

	if got := pt.CrossDrops.Value(); got != 2 {
		t.Errorf("CrossDrops = %d, want 2", got)
	}
	if got := pt.CrossTimeouts.Value(); got != 2 {
		t.Errorf("CrossTimeouts = %d, want 2", got)
	}
}

// A reply lost to a fault installed mid-call must still resolve a
// caller that has no deadline armed.
func TestPartitionReplyLossResolves(t *testing.T) {
	cfg := testPartCfg()
	pk, pt := newTestPartition(9, 2, 1, cfg)
	defer pk.Close()

	a, b := ShardNode{0, 0}, ShardNode{1, 0}
	pt.Fabric(1).Node(0).Handle("slow", func(hp *sim.Proc, req Message) (Message, error) {
		hp.Sleep(20 * time.Microsecond)
		return Message{Payload: "late"}, nil
	})
	// Cut the link after the request is through but before the reply:
	// the request is in flight by ~5us, the reply departs after ~25us.
	pk.Shard(1).Schedule(10*sim.Microsecond, func() {
		pt.SetCrossLinkFault(a, b, LinkFault{Partitioned: true})
	})

	done := false
	pk.Shard(0).Spawn("client", func(p *sim.Proc) {
		_, err := pt.CallWithTimeout(p, a, b, "slow", Message{Bytes: 100}, -1)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("lost reply: err = %v, want ErrTimeout", err)
		}
		done = true
	})
	pk.Run()

	if !done {
		t.Fatal("caller never resolved after reply loss")
	}
	if got := pt.CrossDrops.Value(); got != 1 {
		t.Errorf("CrossDrops = %d, want 1", got)
	}
}

// partitionTrafficRun drives a mixed intra/cross-shard workload and
// returns per-shard transcripts plus the partition counters. Everything
// in the transcript is written only from the owning shard's context.
func partitionTrafficRun(t *testing.T, seed int64, workers int) ([][]string, []int64) {
	t.Helper()
	const shards = 4
	cfg := testPartCfg()
	cfg.CallTimeout = 40 * time.Microsecond
	pk, pt := newTestPartition(seed, shards, 2, cfg)
	defer pk.Close()
	pk.SetWorkers(workers)

	for s := 0; s < shards; s++ {
		s := s
		srv := pt.Fabric(s).Node(1)
		srv.HandleFast("echo", func(req Message) (Message, error) {
			return Message{Payload: req.Payload, Bytes: req.Bytes / 2}, nil
		})
		srv.Handle("work", func(hp *sim.Proc, req Message) (Message, error) {
			hp.Sleep(time.Duration(1+s) * time.Microsecond)
			return Message{Bytes: 200}, nil
		})
	}
	// A lossy cross link between shard 0 and shard 1 exercises the
	// RNG-driven drop path under the deadline.
	pt.SetCrossLinkFault(ShardNode{0, 0}, ShardNode{1, 1}, LinkFault{DropProb: 0.3})

	logs := make([][]string, shards)
	for s := 0; s < shards; s++ {
		s := s
		k := pk.Shard(s)
		k.Spawn("client", func(p *sim.Proc) {
			rng := k.Rand()
			for i := 0; i < 40; i++ {
				target := ShardNode{s, 1}
				method := "echo"
				if i%3 == 0 {
					target = ShardNode{(s + 1) % shards, 1}
				}
				if i%5 == 0 {
					method = "work"
				}
				bytes := int64(100 + rng.Intn(900))
				rep, err := pt.Call(p, ShardNode{s, 0}, target, method, Message{Bytes: bytes})
				logs[s] = append(logs[s], fmt.Sprintf("%v %d->%v %s req=%d rep=%d err=%v",
					k.Now(), s, target, method, bytes, rep.Bytes, err))
			}
		})
	}
	pk.Run()

	counters := []int64{
		pt.CrossCalls.Value(), pt.CrossBytes.Value(),
		pt.CrossTimeouts.Value(), pt.CrossDrops.Value(),
	}
	for s := 0; s < shards; s++ {
		counters = append(counters, int64(pk.Shard(s).EventsProcessed()))
	}
	return logs, counters
}

// The same seed must produce byte-identical transcripts and counters at
// every worker count: the host parallelism level is invisible to the
// simulation.
func TestPartitionDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		baseLogs, baseCounters := partitionTrafficRun(t, seed, 1)
		total := 0
		for _, l := range baseLogs {
			total += len(l)
		}
		if total != 4*40 {
			t.Fatalf("seed %d: %d transcript lines, want 160", seed, total)
		}
		for _, workers := range []int{2, 4, 8} {
			logs, counters := partitionTrafficRun(t, seed, workers)
			if !reflect.DeepEqual(logs, baseLogs) {
				t.Errorf("seed %d: transcripts differ between workers=1 and workers=%d", seed, workers)
			}
			if !reflect.DeepEqual(counters, baseCounters) {
				t.Errorf("seed %d: counters differ between workers=1 and workers=%d: %v vs %v",
					seed, workers, baseCounters, counters)
			}
		}
	}
}

// NewPartition must refuse a fabric whose propagation latency is below
// the kernel's lookahead window — that combination breaks the
// conservative synchronization invariant.
func TestPartitionLookaheadValidation(t *testing.T) {
	pk := sim.NewParKernel(1, 2, 2*sim.Microsecond)
	defer pk.Close()
	cfg := testPartCfg()
	cfg.Latency = time.Microsecond // below the 2us lookahead
	fabrics := []*Fabric{New(pk.Shard(0), cfg), New(pk.Shard(1), cfg)}
	defer func() {
		if recover() == nil {
			t.Fatal("NewPartition accepted latency below lookahead")
		}
	}()
	NewPartition(pk, fabrics)
}
