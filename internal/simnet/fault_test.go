package simnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func echoFabric(k *sim.Kernel, cfg Config) *Fabric {
	f := New(k, cfg)
	f.AddNode(1)
	n2 := f.AddNode(2)
	n2.Handle("echo", func(p *sim.Proc, req Message) (Message, error) {
		return req, nil
	})
	n2.Handle("slow", func(p *sim.Proc, req Message) (Message, error) {
		p.Sleep(time.Millisecond)
		return req, nil
	})
	return f
}

func TestCallTimesOutOnPartition(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	f := echoFabric(k, testConfig())
	f.SetLinkFault(1, 2, LinkFault{Partitioned: true})
	var took sim.Time
	var err error
	k.Spawn("caller", func(p *sim.Proc) {
		start := p.Now()
		_, err = f.CallWithTimeout(p, 1, 2, "echo", Message{Bytes: 100}, 500*time.Microsecond)
		took = p.Now() - start
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if took != sim.Time(500*time.Microsecond) {
		t.Errorf("call resolved after %v, want exactly the 500us deadline", took)
	}
	if f.Timeouts.Value() != 1 {
		t.Errorf("Timeouts = %d, want 1", f.Timeouts.Value())
	}
}

func TestCallOnPartitionWithoutDeadlineFailsImmediately(t *testing.T) {
	// No deadline armed anywhere: the loss must still resolve the call
	// (the no-hang guarantee) rather than strand the caller.
	k := sim.NewKernel(1)
	defer k.Close()
	f := echoFabric(k, testConfig())
	f.SetLinkFault(1, 2, LinkFault{Partitioned: true})
	var err error
	done := false
	k.Spawn("caller", func(p *sim.Proc) {
		_, err = f.Call(p, 1, 2, "echo", Message{Bytes: 100})
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("caller hung on a partitioned link with no deadline")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestDefaultCallTimeoutFromConfig(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	cfg := testConfig()
	cfg.CallTimeout = 300 * time.Microsecond
	f := echoFabric(k, cfg)
	f.SetLinkFault(1, 2, LinkFault{Partitioned: true})
	var took sim.Time
	var err error
	k.Spawn("caller", func(p *sim.Proc) {
		start := p.Now()
		_, err = f.Call(p, 1, 2, "echo", Message{Bytes: 100})
		took = p.Now() - start
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if took != sim.Time(300*time.Microsecond) {
		t.Errorf("call resolved after %v, want the 300us fabric default", took)
	}
}

func TestReplyLossResolvesViaDeadline(t *testing.T) {
	// Partition the link while the handler is running: the request got
	// through, the reply is eaten, and the deadline resolves the call.
	k := sim.NewKernel(1)
	defer k.Close()
	f := echoFabric(k, testConfig())
	var err error
	k.Spawn("caller", func(p *sim.Proc) {
		_, err = f.CallWithTimeout(p, 1, 2, "slow", Message{Bytes: 100}, 5*time.Millisecond)
	})
	k.Schedule(sim.Time(500*time.Microsecond), func() {
		f.SetLinkFault(1, 2, LinkFault{Partitioned: true})
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (reply lost)", err)
	}
}

// TestPartitionHealOrdering drives one call per phase of a
// partition/heal sequence and checks each call's outcome is decided by
// the link state at the instants its messages are sent.
func TestPartitionHealOrdering(t *testing.T) {
	cases := []struct {
		name                string
		partitionAt, healAt sim.Time // fault window
		callAt              sim.Time
		wantErr             error
	}{
		{"before-partition", 1000_000, 2_000_000, 0, nil},
		{"inside-window", 0, 2_000_000, 1_000_000, ErrTimeout},
		{"after-heal", 0, 1_000_000, 2_000_000, nil},
		// Request sent during the partition is lost for good: healing
		// the link later cannot resurrect it.
		{"heal-cannot-resurrect", 0, 200_000, 100_000, ErrTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.NewKernel(1)
			defer k.Close()
			f := echoFabric(k, testConfig())
			k.Schedule(tc.partitionAt, func() {
				f.SetLinkFault(1, 2, LinkFault{Partitioned: true})
			})
			k.Schedule(tc.healAt, func() { f.ClearLinkFault(1, 2) })
			var err error
			called := false
			k.Schedule(tc.callAt, func() {
				k.Spawn("caller", func(p *sim.Proc) {
					_, err = f.CallWithTimeout(p, 1, 2, "echo", Message{Bytes: 10}, 5*time.Millisecond)
					called = true
				})
			})
			k.Run()
			if !called {
				t.Fatal("call never resolved")
			}
			if !errors.Is(err, tc.wantErr) && !(tc.wantErr == nil && err == nil) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestLatencySpikeDelaysCall(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	f := echoFabric(k, testConfig())
	rtt := func() sim.Time {
		var took sim.Time
		k.Spawn("caller", func(p *sim.Proc) {
			start := p.Now()
			if _, err := f.Call(p, 1, 2, "echo", Message{Bytes: 0}); err != nil {
				t.Errorf("Call: %v", err)
			}
			took = p.Now() - start
		})
		k.Run()
		return took
	}
	base := rtt()
	f.SetLinkFault(1, 2, LinkFault{ExtraLatency: 100 * time.Microsecond})
	spiked := rtt()
	// The spike applies one-way to each leg of the round trip.
	if want := base + sim.Time(200*time.Microsecond); spiked != want {
		t.Errorf("spiked RTT = %v, want %v (base %v + 2x100us)", spiked, want, base)
	}
	f.ClearLinkFault(1, 2)
	if healed := rtt(); healed != base {
		t.Errorf("healed RTT = %v, want base %v", healed, base)
	}
}

func TestSetDownFailsInflightCalls(t *testing.T) {
	// The handler sleeps 1 ms; the destination dies 200 us in. The
	// caller must get ErrNodeDown at the instant of the failure, not
	// hang until (or beyond) the handler's reply.
	for _, who := range []string{"destination", "source"} {
		t.Run(who, func(t *testing.T) {
			k := sim.NewKernel(1)
			defer k.Close()
			f := echoFabric(k, testConfig())
			var err error
			var at sim.Time = -1
			k.Spawn("caller", func(p *sim.Proc) {
				_, err = f.Call(p, 1, 2, "slow", Message{Bytes: 10})
				at = p.Now()
			})
			victim := NodeID(2)
			if who == "source" {
				victim = 1
			}
			k.Schedule(sim.Time(200*time.Microsecond), func() {
				f.Node(victim).SetDown(true)
			})
			k.Run()
			if !errors.Is(err, ErrNodeDown) {
				t.Fatalf("err = %v, want ErrNodeDown", err)
			}
			if at != sim.Time(200*time.Microsecond) {
				t.Errorf("call resolved at %v, want the failure instant 200us", at)
			}
		})
	}
}

func TestSetDownThenUpCompletesNewCalls(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	f := echoFabric(k, testConfig())
	f.Node(2).SetDown(true)
	var errDown, errUp error
	k.Spawn("caller", func(p *sim.Proc) {
		_, errDown = f.Call(p, 1, 2, "echo", Message{Bytes: 10})
		f.Node(2).SetDown(false)
		_, errUp = f.Call(p, 1, 2, "echo", Message{Bytes: 10})
	})
	k.Run()
	if !errors.Is(errDown, ErrNodeDown) {
		t.Errorf("down err = %v, want ErrNodeDown", errDown)
	}
	if errUp != nil {
		t.Errorf("up err = %v, want nil", errUp)
	}
}

func TestDropProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		k := sim.NewKernel(seed)
		defer k.Close()
		f := echoFabric(k, testConfig())
		f.SetLinkFault(1, 2, LinkFault{DropProb: 0.5})
		outcomes := make([]bool, 0, 64)
		k.Spawn("caller", func(p *sim.Proc) {
			for i := 0; i < 64; i++ {
				_, err := f.CallWithTimeout(p, 1, 2, "echo", Message{Bytes: 10}, 100*time.Microsecond)
				outcomes = append(outcomes, err == nil)
			}
		})
		k.Run()
		return outcomes
	}
	a, b := run(7), run(7)
	ok, drop := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: outcome differs across identical seeds", i)
		}
		if a[i] {
			ok++
		} else {
			drop++
		}
	}
	if ok == 0 || drop == 0 {
		t.Errorf("with DropProb 0.5 over 64 calls expected a mix, got %d ok / %d dropped", ok, drop)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical drop patterns (RNG not wired?)")
	}
}

func TestTransferTimesOutOnPartition(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	cfg := testConfig()
	cfg.CallTimeout = time.Millisecond
	f := echoFabric(k, cfg)
	f.SetLinkFault(1, 2, LinkFault{Partitioned: true})
	var err error
	var took sim.Time
	k.Spawn("sender", func(p *sim.Proc) {
		start := p.Now()
		err = f.Transfer(p, 1, 2, 1<<20)
		took = p.Now() - start
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if took != sim.Time(time.Millisecond) {
		t.Errorf("transfer failed after %v, want the 1ms timeout window", took)
	}
}

// TestNoHangUnderRandomFaults hammers the fabric with randomized
// partitions, drops, and node flaps while callers issue deadline-bound
// RPCs: every call must resolve and the kernel must drain.
func TestNoHangUnderRandomFaults(t *testing.T) {
	const callers, calls = 8, 50
	k := sim.NewKernel(99)
	defer k.Close()
	cfg := testConfig()
	cfg.CallTimeout = 200 * time.Microsecond
	f := New(k, cfg)
	const nodes = 4
	for id := 0; id < nodes; id++ {
		n := f.AddNode(NodeID(id))
		n.Handle("work", func(p *sim.Proc, req Message) (Message, error) {
			p.Sleep(10 * time.Microsecond)
			return req, nil
		})
	}
	// Chaos driver: random fault churn every 50 us.
	k.Spawn("chaos", func(p *sim.Proc) {
		rng := k.Rand()
		for i := 0; i < 200; i++ {
			a := NodeID(rng.Intn(nodes))
			b := NodeID(rng.Intn(nodes))
			switch rng.Intn(4) {
			case 0:
				f.SetLinkFault(a, b, LinkFault{Partitioned: true})
			case 1:
				f.ClearLinkFault(a, b)
			case 2:
				if n := f.Node(a); n != nil {
					n.SetDown(!n.Down())
				}
			case 3:
				f.SetLinkFault(a, b, LinkFault{DropProb: 0.3, ExtraLatency: 20 * time.Microsecond})
			}
			p.Sleep(50 * time.Microsecond)
		}
		// Heal everything so stragglers can finish.
		for a := 0; a < nodes; a++ {
			f.Node(NodeID(a)).SetDown(false)
			for b := 0; b < nodes; b++ {
				f.ClearLinkFault(NodeID(a), NodeID(b))
			}
		}
	})
	resolved := 0
	for c := 0; c < callers; c++ {
		src := NodeID(c % nodes)
		k.Spawn(fmt.Sprintf("caller%d", c), func(p *sim.Proc) {
			rng := k.Rand()
			for i := 0; i < calls; i++ {
				dst := NodeID(rng.Intn(nodes))
				_, err := f.Call(p, src, dst, "work", Message{Bytes: 64})
				if err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrNodeDown) {
					t.Errorf("caller%d call %d: unexpected error %v", c, i, err)
				}
				resolved++
				p.Sleep(5 * time.Microsecond)
			}
		})
	}
	k.Run()
	if resolved != callers*calls {
		t.Fatalf("resolved %d/%d calls — some caller hung", resolved, callers*calls)
	}
	if got := k.Blocked(); got != 0 {
		t.Fatalf("%d processes still blocked after drain", got)
	}
}
