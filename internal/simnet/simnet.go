// Package simnet models the datacenter network that connects simulated
// machines: per-NIC transmit/receive bandwidth queues, propagation
// latency, per-message header overhead, and a software RPC layer with a
// fixed per-call overhead.
//
// The model charges exactly the costs that drive Quicksand's results —
// proclet migration time is dominated by state-bytes/bandwidth, and
// remote method invocation by latency plus payload-bytes/bandwidth —
// while staying deterministic under the sim kernel.
package simnet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// NodeID identifies a machine's network attachment point.
type NodeID int

// Errors returned by transfers and calls.
var (
	ErrNodeDown   = errors.New("simnet: node is down")
	ErrNoHandler  = errors.New("simnet: no handler registered for method")
	ErrNoSuchNode = errors.New("simnet: unknown node")
)

// Config holds the network's performance parameters.
type Config struct {
	// Latency is the one-way propagation delay between any two nodes.
	Latency time.Duration
	// Bandwidth is each NIC's line rate in bytes per second, applied
	// independently to the transmit and receive directions.
	Bandwidth int64
	// RPCOverhead is the fixed software cost charged per RPC on top of
	// the wire time (dispatch, marshaling setup).
	RPCOverhead time.Duration
	// MsgOverheadBytes is the per-message header cost added to every
	// transfer's payload size.
	MsgOverheadBytes int64
}

// DefaultConfig models a contemporary datacenter fabric: 100 Gb/s NICs,
// 2 us one-way latency, 1 us RPC software overhead.
func DefaultConfig() Config {
	return Config{
		Latency:          2 * time.Microsecond,
		Bandwidth:        12_500_000_000, // 100 Gb/s
		RPCOverhead:      time.Microsecond,
		MsgOverheadBytes: 64,
	}
}

// Message is an RPC payload plus its on-wire size. Payloads are passed
// by reference (host memory); Bytes is what the network charges for.
type Message struct {
	Payload any
	Bytes   int64
}

// Handler processes an RPC on the destination node. It runs in its own
// simulated process and may block (sleep, take locks, call other nodes).
type Handler func(p *sim.Proc, req Message) (Message, error)

// Node is a machine's attachment to the fabric.
type Node struct {
	ID       NodeID
	f        *Fabric
	txFree   sim.Time
	rxFree   sim.Time
	handlers map[string]Handler
	down     bool

	// TxBytes and RxBytes count payload+header bytes through this NIC.
	TxBytes metrics.Counter
	RxBytes metrics.Counter
}

// Fabric is the cluster-wide network.
type Fabric struct {
	k     *sim.Kernel
	cfg   Config
	nodes map[NodeID]*Node

	// TransferLatency records end-to-end transfer times in seconds.
	TransferLatency *metrics.Histogram
	// Calls counts completed RPCs.
	Calls metrics.Counter
}

// New creates a fabric on the given kernel.
func New(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.Bandwidth <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	return &Fabric{
		k:               k,
		cfg:             cfg,
		nodes:           make(map[NodeID]*Node),
		TransferLatency: metrics.NewHistogram("simnet.transfer_latency"),
	}
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// AddNode attaches a new node. Adding a duplicate ID panics.
func (f *Fabric) AddNode(id NodeID) *Node {
	if _, ok := f.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %d", id))
	}
	n := &Node{ID: id, f: f, handlers: make(map[string]Handler)}
	f.nodes[id] = n
	return n
}

// Node returns the node with the given ID, or nil.
func (f *Fabric) Node(id NodeID) *Node { return f.nodes[id] }

// SetDown marks a node as unreachable (true) or reachable (false).
func (n *Node) SetDown(down bool) { n.down = down }

// Down reports whether the node is unreachable.
func (n *Node) Down() bool { return n.down }

// Handle registers an RPC handler for method on this node.
func (n *Node) Handle(method string, h Handler) {
	if _, dup := n.handlers[method]; dup {
		panic(fmt.Sprintf("simnet: duplicate handler %q on node %d", method, n.ID))
	}
	n.handlers[method] = h
}

// wireTime returns how long size payload bytes occupy a NIC direction.
func (f *Fabric) wireTime(size int64) time.Duration {
	total := size + f.cfg.MsgOverheadBytes
	return time.Duration(float64(total) / float64(f.cfg.Bandwidth) * 1e9)
}

// deliveryTime reserves NIC time on both ends and returns the absolute
// virtual time at which a transfer of size bytes from -> to completes.
func (f *Fabric) deliveryTime(from, to *Node, size int64) sim.Time {
	now := f.k.Now()
	dur := f.wireTime(size)

	txStart := now
	if from.txFree > txStart {
		txStart = from.txFree
	}
	txEnd := txStart.Add(dur)
	from.txFree = txEnd

	rxStart := txStart.Add(f.cfg.Latency)
	if to.rxFree > rxStart {
		rxStart = to.rxFree
	}
	rxEnd := rxStart.Add(dur)
	to.rxFree = rxEnd

	from.TxBytes.Addn(size + f.cfg.MsgOverheadBytes)
	to.RxBytes.Addn(size + f.cfg.MsgOverheadBytes)
	return rxEnd
}

// checkPath validates both endpoints, returning the node structs.
func (f *Fabric) checkPath(from, to NodeID) (*Node, *Node, error) {
	src, ok := f.nodes[from]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, from)
	}
	dst, ok := f.nodes[to]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, to)
	}
	if src.down {
		return nil, nil, fmt.Errorf("%w: source %d", ErrNodeDown, from)
	}
	if dst.down {
		return nil, nil, fmt.Errorf("%w: destination %d", ErrNodeDown, to)
	}
	return src, dst, nil
}

// Transfer moves size bytes from one node to another, blocking the
// calling process until delivery. Transfers between a node and itself
// complete immediately (no wire cost).
func (f *Fabric) Transfer(p *sim.Proc, from, to NodeID, size int64) error {
	src, dst, err := f.checkPath(from, to)
	if err != nil {
		return err
	}
	if from == to {
		return nil
	}
	start := f.k.Now()
	done := f.deliveryTime(src, dst, size)
	p.SleepUntil(done)
	f.TransferLatency.ObserveDuration(f.k.Now().Sub(start))
	return nil
}

// TransferAsync schedules onDelivered to run when the transfer lands.
// For same-node transfers the callback runs at the current instant.
func (f *Fabric) TransferAsync(from, to NodeID, size int64, onDelivered func()) error {
	src, dst, err := f.checkPath(from, to)
	if err != nil {
		return err
	}
	if from == to {
		f.k.Schedule(f.k.Now(), onDelivered)
		return nil
	}
	done := f.deliveryTime(src, dst, size)
	f.k.Schedule(done, onDelivered)
	return nil
}

// Call performs a synchronous RPC: the request payload travels the wire,
// the handler runs on the destination node in its own process, and the
// reply travels back. The calling process blocks for the round trip.
func (f *Fabric) Call(p *sim.Proc, from, to NodeID, method string, req Message) (Message, error) {
	_, dst, err := f.checkPath(from, to)
	if err != nil {
		return Message{}, err
	}
	h, ok := dst.handlers[method]
	if !ok {
		return Message{}, fmt.Errorf("%w: %q on node %d", ErrNoHandler, method, to)
	}

	// Fixed software overhead on the caller side.
	p.Sleep(f.cfg.RPCOverhead)

	fut := sim.NewFuture[Message]()
	runHandler := func() {
		f.k.Spawn(fmt.Sprintf("rpc:%s@%d", method, to), func(hp *sim.Proc) {
			reply, herr := h(hp, req)
			if herr != nil {
				fut.Set(Message{}, herr)
				return
			}
			if from == to {
				fut.Set(reply, nil)
				return
			}
			if terr := f.TransferAsync(to, from, reply.Bytes, func() { fut.Set(reply, nil) }); terr != nil {
				fut.Set(Message{}, terr)
			}
		})
	}

	if from == to {
		f.k.Schedule(f.k.Now(), runHandler)
	} else if terr := f.TransferAsync(from, to, req.Bytes, runHandler); terr != nil {
		return Message{}, terr
	}

	reply, err := fut.Get(p)
	if err != nil {
		return Message{}, err
	}
	f.Calls.Inc()
	return reply, nil
}
