// Package simnet models the datacenter network that connects simulated
// machines: per-NIC transmit/receive bandwidth queues, propagation
// latency, per-message header overhead, and a software RPC layer with a
// fixed per-call overhead.
//
// The model charges exactly the costs that drive Quicksand's results —
// proclet migration time is dominated by state-bytes/bandwidth, and
// remote method invocation by latency plus payload-bytes/bandwidth —
// while staying deterministic under the sim kernel.
package simnet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// NodeID identifies a machine's network attachment point.
type NodeID int

// Errors returned by transfers and calls.
var (
	ErrNodeDown   = errors.New("simnet: node is down")
	ErrNoHandler  = errors.New("simnet: no handler registered for method")
	ErrNoSuchNode = errors.New("simnet: unknown node")
)

// ErrWouldBlock is returned by a FastHandler to decline a request it
// cannot serve without blocking. Call transparently falls back to the
// method's blocking Handler, which runs in a (pooled) simulated process.
var ErrWouldBlock = errors.New("simnet: fast handler would block")

// Config holds the network's performance parameters.
type Config struct {
	// Latency is the one-way propagation delay between any two nodes.
	Latency time.Duration
	// Bandwidth is each NIC's line rate in bytes per second, applied
	// independently to the transmit and receive directions.
	Bandwidth int64
	// RPCOverhead is the fixed software cost charged per RPC on top of
	// the wire time (dispatch, marshaling setup).
	RPCOverhead time.Duration
	// MsgOverheadBytes is the per-message header cost added to every
	// transfer's payload size.
	MsgOverheadBytes int64
}

// DefaultConfig models a contemporary datacenter fabric: 100 Gb/s NICs,
// 2 us one-way latency, 1 us RPC software overhead.
func DefaultConfig() Config {
	return Config{
		Latency:          2 * time.Microsecond,
		Bandwidth:        12_500_000_000, // 100 Gb/s
		RPCOverhead:      time.Microsecond,
		MsgOverheadBytes: 64,
	}
}

// Message is an RPC payload plus its on-wire size. Payloads are passed
// by reference (host memory); Bytes is what the network charges for.
type Message struct {
	Payload any
	Bytes   int64
}

// Handler processes an RPC on the destination node. It runs in its own
// simulated process and may block (sleep, take locks, call other nodes).
type Handler func(p *sim.Proc, req Message) (Message, error)

// FastHandler processes an RPC inline in kernel context at the instant
// the request is delivered: no simulated process is created and no
// goroutine handoff happens. It must not block — any park attempt
// (sleep, lock, channel op) panics the kernel with a clear message. A
// fast handler may decline a particular request by returning
// ErrWouldBlock, which routes that request to the method's blocking
// Handler instead.
type FastHandler func(req Message) (Message, error)

// Node is a machine's attachment to the fabric.
type Node struct {
	ID       NodeID
	f        *Fabric
	txFree   sim.Time
	rxFree   sim.Time
	handlers map[string]Handler
	fast     map[string]FastHandler
	down     bool

	// TxBytes and RxBytes count payload+header bytes through this NIC.
	TxBytes metrics.Counter
	RxBytes metrics.Counter
}

// Fabric is the cluster-wide network.
type Fabric struct {
	k     *sim.Kernel
	cfg   Config
	nodes map[NodeID]*Node

	// TransferLatency records end-to-end transfer times in seconds.
	TransferLatency *metrics.Histogram
	// Calls counts completed RPCs.
	Calls metrics.Counter
	// FastCalls counts RPCs served inline by a FastHandler (no handler
	// process). FastCalls <= Calls.
	FastCalls metrics.Counter

	// callPool recycles per-Call state (see callState). The pool is a
	// stack, so reuse order is deterministic.
	callPool []*callState
}

// New creates a fabric on the given kernel.
func New(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.Bandwidth <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	return &Fabric{
		k:               k,
		cfg:             cfg,
		nodes:           make(map[NodeID]*Node),
		TransferLatency: metrics.NewHistogram("simnet.transfer_latency"),
	}
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// AddNode attaches a new node. Adding a duplicate ID panics.
func (f *Fabric) AddNode(id NodeID) *Node {
	if _, ok := f.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %d", id))
	}
	n := &Node{ID: id, f: f, handlers: make(map[string]Handler)}
	f.nodes[id] = n
	return n
}

// Node returns the node with the given ID, or nil.
func (f *Fabric) Node(id NodeID) *Node { return f.nodes[id] }

// SetDown marks a node as unreachable (true) or reachable (false).
func (n *Node) SetDown(down bool) { n.down = down }

// Down reports whether the node is unreachable.
func (n *Node) Down() bool { return n.down }

// Handle registers an RPC handler for method on this node.
func (n *Node) Handle(method string, h Handler) {
	if _, dup := n.handlers[method]; dup {
		panic(fmt.Sprintf("simnet: duplicate handler %q on node %d", method, n.ID))
	}
	n.handlers[method] = h
}

// HandleFast registers an inline handler for method on this node. A
// method may carry both a fast and a blocking handler: the fast one
// runs first and may return ErrWouldBlock to route a request to the
// blocking one (per request, so the decision can depend on state).
func (n *Node) HandleFast(method string, h FastHandler) {
	if _, dup := n.fast[method]; dup {
		panic(fmt.Sprintf("simnet: duplicate fast handler %q on node %d", method, n.ID))
	}
	if n.fast == nil {
		n.fast = make(map[string]FastHandler)
	}
	n.fast[method] = h
}

// wireTime returns how long size payload bytes occupy a NIC direction.
func (f *Fabric) wireTime(size int64) time.Duration {
	total := size + f.cfg.MsgOverheadBytes
	return time.Duration(float64(total) / float64(f.cfg.Bandwidth) * 1e9)
}

// deliveryTime reserves NIC time on both ends and returns the absolute
// virtual time at which a transfer of size bytes from -> to completes.
func (f *Fabric) deliveryTime(from, to *Node, size int64) sim.Time {
	now := f.k.Now()
	dur := f.wireTime(size)

	txStart := now
	if from.txFree > txStart {
		txStart = from.txFree
	}
	txEnd := txStart.Add(dur)
	from.txFree = txEnd

	rxStart := txStart.Add(f.cfg.Latency)
	if to.rxFree > rxStart {
		rxStart = to.rxFree
	}
	rxEnd := rxStart.Add(dur)
	to.rxFree = rxEnd

	from.TxBytes.Addn(size + f.cfg.MsgOverheadBytes)
	to.RxBytes.Addn(size + f.cfg.MsgOverheadBytes)
	return rxEnd
}

// checkPath validates both endpoints, returning the node structs.
func (f *Fabric) checkPath(from, to NodeID) (*Node, *Node, error) {
	src, ok := f.nodes[from]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, from)
	}
	dst, ok := f.nodes[to]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, to)
	}
	if src.down {
		return nil, nil, fmt.Errorf("%w: source %d", ErrNodeDown, from)
	}
	if dst.down {
		return nil, nil, fmt.Errorf("%w: destination %d", ErrNodeDown, to)
	}
	return src, dst, nil
}

// Transfer moves size bytes from one node to another, blocking the
// calling process until delivery. Transfers between a node and itself
// complete immediately (no wire cost).
func (f *Fabric) Transfer(p *sim.Proc, from, to NodeID, size int64) error {
	src, dst, err := f.checkPath(from, to)
	if err != nil {
		return err
	}
	if from == to {
		return nil
	}
	start := f.k.Now()
	done := f.deliveryTime(src, dst, size)
	p.SleepUntil(done)
	f.TransferLatency.ObserveDuration(f.k.Now().Sub(start))
	return nil
}

// TransferAsync schedules onDelivered to run when the transfer lands.
// For same-node transfers the callback runs at the current instant.
func (f *Fabric) TransferAsync(from, to NodeID, size int64, onDelivered func()) error {
	src, dst, err := f.checkPath(from, to)
	if err != nil {
		return err
	}
	if from == to {
		f.k.Schedule(f.k.Now(), onDelivered)
		return nil
	}
	done := f.deliveryTime(src, dst, size)
	f.k.Schedule(done, onDelivered)
	return nil
}

// callState is one in-flight Call's plumbing, pooled on the Fabric. It
// carries pre-built closures for every stage of the round trip — request
// delivery, the (pooled) handler process, reply delivery, completion —
// so a steady-state RPC allocates nothing: not for the kernel events,
// not for the handler process (worker pool), not for its name (lazy),
// and not for the caller's wait (inline Cond slot).
type callState struct {
	f      *Fabric
	from   NodeID
	to     NodeID
	method string
	req    Message
	h      Handler     // blocking handler, or nil
	fh     FastHandler // fast handler, or nil

	reply Message
	err   error
	done  bool
	cv    sim.Cond

	deliver func()        // runs when the request lands on the destination
	finishF func()        // runs when the reply lands back on the caller
	nameF   func() string // lazy handler-process name ("rpc:method@node")
	procF   func(p *sim.Proc)
}

func (f *Fabric) getCall() *callState {
	if n := len(f.callPool); n > 0 {
		cs := f.callPool[n-1]
		f.callPool[n-1] = nil
		f.callPool = f.callPool[:n-1]
		return cs
	}
	cs := &callState{f: f}
	cs.deliver = cs.onDelivered
	cs.finishF = cs.onReplyDelivered
	cs.nameF = cs.procName
	cs.procF = cs.runProc
	return cs
}

// putCall returns cs to the pool. Only the owning Call may do this,
// after its wait completes: every closure stage has run by then, so
// nothing can touch cs afterwards.
func (f *Fabric) putCall(cs *callState) {
	cs.req, cs.reply = Message{}, Message{}
	cs.h, cs.fh, cs.err = nil, nil, nil
	cs.method = ""
	cs.done = false
	f.callPool = append(f.callPool, cs)
}

func (cs *callState) procName() string {
	return fmt.Sprintf("rpc:%s@%d", cs.method, cs.to)
}

// onDelivered runs in kernel context when the request reaches the
// destination node. The fast path serves the RPC inline; everything
// else spawns the blocking handler in a pooled process.
func (cs *callState) onDelivered() {
	if cs.fh != nil {
		reply, err := cs.fh(cs.req)
		if err == nil || !errors.Is(err, ErrWouldBlock) {
			if err == nil {
				cs.f.FastCalls.Inc()
			}
			cs.sendReply(reply, err)
			return
		}
		if cs.h == nil {
			cs.sendReply(Message{}, fmt.Errorf(
				"%w: fast handler for %q on node %d declined and no blocking handler is registered",
				ErrNoHandler, cs.method, cs.to))
			return
		}
	}
	cs.f.k.SpawnLazy(cs.nameF, cs.procF)
}

func (cs *callState) runProc(hp *sim.Proc) {
	reply, err := cs.h(hp, cs.req)
	cs.sendReply(reply, err)
}

// sendReply routes the handler's result back to the caller, charging
// the return wire time for cross-node success replies (errors complete
// immediately, as before).
func (cs *callState) sendReply(reply Message, err error) {
	if err != nil || cs.from == cs.to {
		cs.finish(reply, err)
		return
	}
	cs.reply = reply // parked here while the reply crosses the wire
	if terr := cs.f.TransferAsync(cs.to, cs.from, reply.Bytes, cs.finishF); terr != nil {
		cs.finish(Message{}, terr)
	}
}

func (cs *callState) onReplyDelivered() { cs.finish(cs.reply, nil) }

func (cs *callState) finish(reply Message, err error) {
	cs.reply, cs.err = reply, err
	cs.done = true
	cs.cv.Signal()
}

// Call performs a synchronous RPC: the request payload travels the wire,
// the handler runs on the destination node — inline via a FastHandler
// when one is registered, otherwise in its own pooled process — and the
// reply travels back. The calling process blocks for the round trip.
func (f *Fabric) Call(p *sim.Proc, from, to NodeID, method string, req Message) (Message, error) {
	_, dst, err := f.checkPath(from, to)
	if err != nil {
		return Message{}, err
	}
	fh := dst.fast[method]
	h, hasH := dst.handlers[method]
	if fh == nil && !hasH {
		return Message{}, fmt.Errorf("%w: %q on node %d", ErrNoHandler, method, to)
	}

	// Fixed software overhead on the caller side.
	p.Sleep(f.cfg.RPCOverhead)

	cs := f.getCall()
	cs.from, cs.to, cs.method, cs.req, cs.h, cs.fh = from, to, method, req, h, fh

	if from == to {
		f.k.Schedule(f.k.Now(), cs.deliver)
	} else if terr := f.TransferAsync(from, to, req.Bytes, cs.deliver); terr != nil {
		f.putCall(cs)
		return Message{}, terr
	}

	for !cs.done {
		cs.cv.Wait(p)
	}
	reply, rerr := cs.reply, cs.err
	f.putCall(cs)
	if rerr != nil {
		return Message{}, rerr
	}
	f.Calls.Inc()
	return reply, nil
}
