// Package simnet models the datacenter network that connects simulated
// machines: per-NIC transmit/receive bandwidth queues, propagation
// latency, per-message header overhead, and a software RPC layer with a
// fixed per-call overhead.
//
// The model charges exactly the costs that drive Quicksand's results —
// proclet migration time is dominated by state-bytes/bandwidth, and
// remote method invocation by latency plus payload-bytes/bandwidth —
// while staying deterministic under the sim kernel.
//
// Failure model: links can carry per-link faults (partitions, latency
// spikes, probabilistic message drops — see LinkFault) and nodes can be
// taken down. A down node fails new and in-flight calls with
// ErrNodeDown; a partitioned or lossy link silently eats messages, which
// callers observe as ErrTimeout once their per-call deadline expires.
// Calls with no deadline on a faulted link fail with ErrTimeout
// immediately rather than hanging forever.
package simnet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// NodeID identifies a machine's network attachment point.
type NodeID int

// Errors returned by transfers and calls.
var (
	ErrNodeDown   = errors.New("simnet: node is down")
	ErrNoHandler  = errors.New("simnet: no handler registered for method")
	ErrNoSuchNode = errors.New("simnet: unknown node")
	ErrTimeout    = errors.New("simnet: call timed out")
)

// ErrWouldBlock is returned by a FastHandler to decline a request it
// cannot serve without blocking. Call transparently falls back to the
// method's blocking Handler, which runs in a (pooled) simulated process.
var ErrWouldBlock = errors.New("simnet: fast handler would block")

// Config holds the network's performance parameters.
type Config struct {
	// Latency is the one-way propagation delay between any two nodes.
	Latency time.Duration
	// Bandwidth is each NIC's line rate in bytes per second, applied
	// independently to the transmit and receive directions.
	Bandwidth int64
	// RPCOverhead is the fixed software cost charged per RPC on top of
	// the wire time (dispatch, marshaling setup).
	RPCOverhead time.Duration
	// MsgOverheadBytes is the per-message header cost added to every
	// transfer's payload size.
	MsgOverheadBytes int64
	// CallTimeout is the default per-call deadline. Zero means calls
	// have no deadline (the fault-free configuration): no timer event
	// is armed and behavior is identical to a fabric without timeouts.
	// Fault injection installs a deadline so lost messages resolve as
	// ErrTimeout instead of hanging the caller.
	CallTimeout time.Duration
}

// DefaultConfig models a contemporary datacenter fabric: 100 Gb/s NICs,
// 2 us one-way latency, 1 us RPC software overhead.
func DefaultConfig() Config {
	return Config{
		Latency:          2 * time.Microsecond,
		Bandwidth:        12_500_000_000, // 100 Gb/s
		RPCOverhead:      time.Microsecond,
		MsgOverheadBytes: 64,
	}
}

// LinkFault is the fault state of one directed link. The zero value is
// a healthy link.
type LinkFault struct {
	// Partitioned drops every message on the link.
	Partitioned bool
	// ExtraLatency is added to the propagation delay of each message
	// (a latency spike).
	ExtraLatency time.Duration
	// DropProb drops each message independently with this probability,
	// drawn from the kernel RNG (deterministic per seed).
	DropProb float64
}

// healthy reports whether the fault is a no-op.
func (lf LinkFault) healthy() bool {
	return !lf.Partitioned && lf.ExtraLatency == 0 && lf.DropProb == 0
}

// linkKey addresses one direction of a node pair.
type linkKey struct {
	from, to NodeID
}

// Message is an RPC payload plus its on-wire size. Payloads are passed
// by reference (host memory); Bytes is what the network charges for.
type Message struct {
	Payload any
	Bytes   int64
}

// Handler processes an RPC on the destination node. It runs in its own
// simulated process and may block (sleep, take locks, call other nodes).
type Handler func(p *sim.Proc, req Message) (Message, error)

// FastHandler processes an RPC inline in kernel context at the instant
// the request is delivered: no simulated process is created and no
// goroutine handoff happens. It must not block — any park attempt
// (sleep, lock, channel op) panics the kernel with a clear message. A
// fast handler may decline a particular request by returning
// ErrWouldBlock, which routes that request to the method's blocking
// Handler instead.
type FastHandler func(req Message) (Message, error)

// Node is a machine's attachment to the fabric.
type Node struct {
	ID       NodeID
	f        *Fabric
	txFree   sim.Time
	rxFree   sim.Time
	handlers map[string]Handler
	fast     map[string]FastHandler
	down     bool

	// TxBytes and RxBytes count payload+header bytes through this NIC.
	TxBytes metrics.Counter
	RxBytes metrics.Counter
}

// Fabric is the cluster-wide network.
type Fabric struct {
	k     *sim.Kernel
	cfg   Config
	nodes map[NodeID]*Node

	// faults holds per-directed-link fault state. It stays empty on
	// fault-free runs, so the hot paths pay only a length check.
	faults map[linkKey]LinkFault

	// inflight tracks every outstanding Call so a node going down can
	// complete them with ErrNodeDown instead of stranding the callers.
	inflight []*callState

	// TransferLatency records end-to-end transfer times in seconds.
	TransferLatency *metrics.Histogram
	// Calls counts completed RPCs.
	Calls metrics.Counter
	// FastCalls counts RPCs served inline by a FastHandler (no handler
	// process). FastCalls <= Calls.
	FastCalls metrics.Counter
	// Timeouts counts calls that resolved with ErrTimeout.
	Timeouts metrics.Counter
	// Drops counts messages eaten by link faults.
	Drops metrics.Counter

	// callPool recycles per-Call state (see callState). The pool is a
	// stack, so reuse order is deterministic.
	callPool []*callState

	// obs, when set, records one causal span per Call. Nil (the
	// default) keeps the fast path allocation-free.
	obs *obs.Tracer
}

// SetTracer attaches a span tracer to the fabric. Pass nil to detach.
func (f *Fabric) SetTracer(t *obs.Tracer) { f.obs = t }

// New creates a fabric on the given kernel.
func New(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.Bandwidth <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	return &Fabric{
		k:               k,
		cfg:             cfg,
		nodes:           make(map[NodeID]*Node),
		TransferLatency: metrics.NewHistogram("simnet.transfer_latency"),
	}
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetCallTimeout changes the default per-call deadline (see
// Config.CallTimeout). Fault injectors use it to guarantee that no call
// outlives a lost message.
func (f *Fabric) SetCallTimeout(d time.Duration) { f.cfg.CallTimeout = d }

// SetLinkFault installs fault state on the link between a and b, in
// both directions, replacing any previous fault on that pair.
func (f *Fabric) SetLinkFault(a, b NodeID, lf LinkFault) {
	if f.faults == nil {
		f.faults = make(map[linkKey]LinkFault)
	}
	f.faults[linkKey{a, b}] = lf
	f.faults[linkKey{b, a}] = lf
}

// ClearLinkFault heals the link between a and b (both directions).
func (f *Fabric) ClearLinkFault(a, b NodeID) {
	delete(f.faults, linkKey{a, b})
	delete(f.faults, linkKey{b, a})
}

// LinkFaultOn returns the fault installed on the directed link from ->
// to (zero value if healthy).
func (f *Fabric) LinkFaultOn(from, to NodeID) LinkFault {
	if len(f.faults) == 0 {
		return LinkFault{}
	}
	return f.faults[linkKey{from, to}]
}

// lost decides whether a message sent now on from -> to is eaten by a
// link fault. It draws from the kernel RNG only when a probabilistic
// drop is installed, so fault-free runs consume no randomness.
func (f *Fabric) lost(from, to NodeID) bool {
	if len(f.faults) == 0 {
		return false
	}
	lf, ok := f.faults[linkKey{from, to}]
	if !ok || lf.healthy() {
		return false
	}
	if lf.Partitioned {
		f.Drops.Inc()
		return true
	}
	if lf.DropProb > 0 && f.k.Rand().Float64() < lf.DropProb {
		f.Drops.Inc()
		return true
	}
	return false
}

// extraLatency returns the latency spike installed on from -> to.
func (f *Fabric) extraLatency(from, to NodeID) time.Duration {
	if len(f.faults) == 0 {
		return 0
	}
	return f.faults[linkKey{from, to}].ExtraLatency
}

// AddNode attaches a new node. Adding a duplicate ID panics.
func (f *Fabric) AddNode(id NodeID) *Node {
	if _, ok := f.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %d", id))
	}
	n := &Node{ID: id, f: f, handlers: make(map[string]Handler)}
	f.nodes[id] = n
	return n
}

// Node returns the node with the given ID, or nil.
func (f *Fabric) Node(id NodeID) *Node { return f.nodes[id] }

// SetDown marks a node as unreachable (true) or reachable (false).
// Taking a node down completes every in-flight call that touches it
// with ErrNodeDown — callers never hang on a dead peer.
func (n *Node) SetDown(down bool) {
	if n.down == down {
		return
	}
	n.down = down
	if down {
		n.f.failInflightOn(n.ID)
	}
}

// Down reports whether the node is unreachable.
func (n *Node) Down() bool { return n.down }

// failInflightOn resolves every outstanding call with an endpoint on
// the given node. Collect first: finish() swap-removes entries from the
// in-flight list.
func (f *Fabric) failInflightOn(id NodeID) {
	var hit []*callState
	for _, cs := range f.inflight {
		if cs.from == id || cs.to == id {
			hit = append(hit, cs)
		}
	}
	for _, cs := range hit {
		cs.finish(Message{}, fmt.Errorf("%w: node %d failed mid-call (%q)", ErrNodeDown, id, cs.method))
	}
}

// Handle registers an RPC handler for method on this node.
func (n *Node) Handle(method string, h Handler) {
	if _, dup := n.handlers[method]; dup {
		panic(fmt.Sprintf("simnet: duplicate handler %q on node %d", method, n.ID))
	}
	n.handlers[method] = h
}

// HandleFast registers an inline handler for method on this node. A
// method may carry both a fast and a blocking handler: the fast one
// runs first and may return ErrWouldBlock to route a request to the
// blocking one (per request, so the decision can depend on state).
func (n *Node) HandleFast(method string, h FastHandler) {
	if _, dup := n.fast[method]; dup {
		panic(fmt.Sprintf("simnet: duplicate fast handler %q on node %d", method, n.ID))
	}
	if n.fast == nil {
		n.fast = make(map[string]FastHandler)
	}
	n.fast[method] = h
}

// wireTime returns how long size payload bytes occupy a NIC direction.
func (f *Fabric) wireTime(size int64) time.Duration {
	total := size + f.cfg.MsgOverheadBytes
	return time.Duration(float64(total) / float64(f.cfg.Bandwidth) * 1e9)
}

// deliveryTime reserves NIC time on both ends and returns the absolute
// virtual time at which a transfer of size bytes from -> to completes.
func (f *Fabric) deliveryTime(from, to *Node, size int64) sim.Time {
	now := f.k.Now()
	dur := f.wireTime(size)

	txStart := now
	if from.txFree > txStart {
		txStart = from.txFree
	}
	txEnd := txStart.Add(dur)
	from.txFree = txEnd

	rxStart := txStart.Add(f.cfg.Latency + f.extraLatency(from.ID, to.ID))
	if to.rxFree > rxStart {
		rxStart = to.rxFree
	}
	rxEnd := rxStart.Add(dur)
	to.rxFree = rxEnd

	from.TxBytes.Addn(size + f.cfg.MsgOverheadBytes)
	to.RxBytes.Addn(size + f.cfg.MsgOverheadBytes)
	return rxEnd
}

// checkPath validates both endpoints, returning the node structs.
func (f *Fabric) checkPath(from, to NodeID) (*Node, *Node, error) {
	src, ok := f.nodes[from]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, from)
	}
	dst, ok := f.nodes[to]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, to)
	}
	if src.down {
		return nil, nil, fmt.Errorf("%w: source %d", ErrNodeDown, from)
	}
	if dst.down {
		return nil, nil, fmt.Errorf("%w: destination %d", ErrNodeDown, to)
	}
	return src, dst, nil
}

// Transfer moves size bytes from one node to another, blocking the
// calling process until delivery. Transfers between a node and itself
// complete immediately (no wire cost). On a partitioned or lossy link
// the transfer is eaten: the caller blocks for the fabric's call
// timeout (modeling the sender waiting out its acknowledgment window)
// and gets ErrTimeout.
func (f *Fabric) Transfer(p *sim.Proc, from, to NodeID, size int64) error {
	src, dst, err := f.checkPath(from, to)
	if err != nil {
		return err
	}
	if from == to {
		return nil
	}
	if f.lost(from, to) {
		if f.cfg.CallTimeout > 0 {
			p.Sleep(f.cfg.CallTimeout)
		}
		return fmt.Errorf("%w: transfer %d->%d (%d bytes) lost", ErrTimeout, from, to, size)
	}
	start := f.k.Now()
	done := f.deliveryTime(src, dst, size)
	p.SleepUntil(done)
	f.TransferLatency.ObserveDuration(f.k.Now().Sub(start))
	return nil
}

// TransferAsync schedules onDelivered to run when the transfer lands.
// For same-node transfers the callback runs at the current instant. On
// a faulted link the message is eaten and ErrTimeout returned; the
// callback never runs.
func (f *Fabric) TransferAsync(from, to NodeID, size int64, onDelivered func()) error {
	src, dst, err := f.checkPath(from, to)
	if err != nil {
		return err
	}
	if from == to {
		f.k.Schedule(f.k.Now(), onDelivered)
		return nil
	}
	if f.lost(from, to) {
		return fmt.Errorf("%w: transfer %d->%d (%d bytes) lost", ErrTimeout, from, to, size)
	}
	f.k.Schedule(f.deliveryTime(src, dst, size), onDelivered)
	return nil
}

// transferAsyncTagged is TransferAsync with a tagged callback, so
// pooled call state can discard deliveries aimed at a recycled
// generation without allocating a closure per message.
func (f *Fabric) transferAsyncTagged(from, to NodeID, size int64, fn func(uint64), tag uint64) error {
	src, dst, err := f.checkPath(from, to)
	if err != nil {
		return err
	}
	if from == to {
		f.k.ScheduleTagged(f.k.Now(), fn, tag)
		return nil
	}
	if f.lost(from, to) {
		return fmt.Errorf("%w: transfer %d->%d (%d bytes) lost", ErrTimeout, from, to, size)
	}
	f.k.ScheduleTagged(f.deliveryTime(src, dst, size), fn, tag)
	return nil
}

// callState is one in-flight Call's plumbing, pooled on the Fabric. It
// carries pre-built closures for every stage of the round trip — request
// delivery, the (pooled) handler process, reply delivery, completion —
// so a steady-state RPC allocates nothing: not for the kernel events,
// not for the handler process (worker pool), not for its name (lazy),
// and not for the caller's wait (inline Cond slot).
//
// Timeouts make recycling subtle: a timed-out call can leave its
// delivery/reply/deadline events in the queue, and its blocking handler
// mid-run. Every such event carries the generation it was armed for and
// is discarded if the callState has since been recycled (gen bumped in
// putCall); a still-running handler pins the callState out of the pool
// (handlerLive) until its sendReply, which reclaims it.
type callState struct {
	f       *Fabric
	from    NodeID
	to      NodeID
	method  string
	req     Message
	h       Handler     // blocking handler, or nil
	fh      FastHandler // fast handler, or nil
	timeout time.Duration

	reply Message
	err   error
	done  bool
	cv    sim.Cond

	gen         uint64 // bumped on recycle; stale tagged events no-op
	ifIdx       int    // index in Fabric.inflight, -1 if not tracked
	hasDeadline bool   // a timeout event is armed for this attempt
	handlerLive bool   // blocking handler process still references cs
	abandoned   bool   // owner returned before the handler finished

	deliverT func(uint64)  // runs when the request lands on the destination
	finishT  func(uint64)  // runs when the reply lands back on the caller
	timeoutT func(uint64)  // runs when the call's deadline expires
	nameF    func() string // lazy handler-process name ("rpc:method@node")
	procF    func(p *sim.Proc)
}

func (f *Fabric) getCall() *callState {
	if n := len(f.callPool); n > 0 {
		cs := f.callPool[n-1]
		f.callPool[n-1] = nil
		f.callPool = f.callPool[:n-1]
		return cs
	}
	cs := &callState{f: f, ifIdx: -1}
	cs.deliverT = cs.onDelivered
	cs.finishT = cs.onReplyDelivered
	cs.timeoutT = cs.onDeadline
	cs.nameF = cs.procName
	cs.procF = cs.runProc
	return cs
}

// putCall retires cs after its owning Call completes. If the blocking
// handler is still running it keeps a reference, so cs is marked
// abandoned instead of pooled; sendReply reclaims it.
func (f *Fabric) putCall(cs *callState) {
	cs.gen++
	if cs.handlerLive {
		cs.abandoned = true
		return
	}
	f.resetCall(cs)
	f.callPool = append(f.callPool, cs)
}

// resetCall clears a callState for reuse.
func (f *Fabric) resetCall(cs *callState) {
	cs.req, cs.reply = Message{}, Message{}
	cs.h, cs.fh, cs.err = nil, nil, nil
	cs.method = ""
	cs.timeout = 0
	cs.done = false
	cs.ifIdx = -1
	cs.hasDeadline = false
	cs.abandoned = false
}

// addInflight registers cs for failure notification (see SetDown).
func (f *Fabric) addInflight(cs *callState) {
	cs.ifIdx = len(f.inflight)
	f.inflight = append(f.inflight, cs)
}

// removeInflight unregisters cs via swap-remove; order is deterministic.
func (f *Fabric) removeInflight(cs *callState) {
	i := cs.ifIdx
	if i < 0 {
		return
	}
	last := len(f.inflight) - 1
	f.inflight[i] = f.inflight[last]
	f.inflight[i].ifIdx = i
	f.inflight[last] = nil
	f.inflight = f.inflight[:last]
	cs.ifIdx = -1
}

func (cs *callState) procName() string {
	return fmt.Sprintf("rpc:%s@%d", cs.method, cs.to)
}

// onDelivered runs in kernel context when the request reaches the
// destination node. The fast path serves the RPC inline; everything
// else spawns the blocking handler in a pooled process.
func (cs *callState) onDelivered(gen uint64) {
	if gen != cs.gen || cs.done {
		return // the call already resolved (timeout / node down) or recycled
	}
	if cs.fh != nil {
		reply, err := cs.fh(cs.req)
		if err == nil || !errors.Is(err, ErrWouldBlock) {
			if err == nil {
				cs.f.FastCalls.Inc()
			}
			cs.sendReply(reply, err)
			return
		}
		if cs.h == nil {
			cs.sendReply(Message{}, fmt.Errorf(
				"%w: fast handler for %q on node %d declined and no blocking handler is registered",
				ErrNoHandler, cs.method, cs.to))
			return
		}
	}
	cs.handlerLive = true
	cs.f.k.SpawnLazy(cs.nameF, cs.procF)
}

func (cs *callState) runProc(hp *sim.Proc) {
	reply, err := cs.h(hp, cs.req)
	cs.sendReply(reply, err)
}

// onDeadline fires when a call's deadline expires before its reply.
func (cs *callState) onDeadline(gen uint64) {
	if gen != cs.gen || cs.done {
		return
	}
	cs.f.Timeouts.Inc()
	cs.finish(Message{}, fmt.Errorf("%w: %q to node %d after %v", ErrTimeout, cs.method, cs.to, cs.timeout))
}

// sendReply routes the handler's result back to the caller, charging
// the return wire time for cross-node success replies (errors complete
// immediately, as before). It is also where a finished blocking handler
// releases its pin on the callState.
func (cs *callState) sendReply(reply Message, err error) {
	if cs.handlerLive {
		cs.handlerLive = false
		if cs.abandoned {
			// The caller timed out (or saw the node fail) and moved on
			// while this handler ran; nobody is waiting for the reply.
			cs.f.resetCall(cs)
			cs.f.callPool = append(cs.f.callPool, cs)
			return
		}
	}
	if cs.done {
		return // resolved underneath the handler (timeout / node down)
	}
	if err != nil || cs.from == cs.to {
		cs.finish(reply, err)
		return
	}
	if cs.f.lost(cs.to, cs.from) {
		if cs.hasDeadline {
			return // reply eaten by the link; the armed deadline resolves the call
		}
		cs.f.Timeouts.Inc()
		cs.finish(Message{}, fmt.Errorf("%w: reply for %q lost on link %d->%d",
			ErrTimeout, cs.method, cs.to, cs.from))
		return
	}
	cs.reply = reply // parked here while the reply crosses the wire
	if terr := cs.f.transferAsyncTagged(cs.to, cs.from, reply.Bytes, cs.finishT, cs.gen); terr != nil {
		cs.finish(Message{}, terr)
	}
}

func (cs *callState) onReplyDelivered(gen uint64) {
	if gen != cs.gen {
		return
	}
	cs.finish(cs.reply, nil)
}

func (cs *callState) finish(reply Message, err error) {
	if cs.done {
		return
	}
	cs.reply, cs.err = reply, err
	cs.done = true
	cs.f.removeInflight(cs)
	cs.cv.Signal()
}

// Call performs a synchronous RPC: the request payload travels the wire,
// the handler runs on the destination node — inline via a FastHandler
// when one is registered, otherwise in its own pooled process — and the
// reply travels back. The calling process blocks for the round trip,
// bounded by the fabric's default deadline (Config.CallTimeout).
func (f *Fabric) Call(p *sim.Proc, from, to NodeID, method string, req Message) (Message, error) {
	return f.CallWithTimeout(p, from, to, method, req, 0)
}

// CallWithTimeout is Call with an explicit per-call deadline: d > 0
// bounds this call, d == 0 uses the fabric default, d < 0 forces no
// deadline. A call whose deadline expires resolves with ErrTimeout; the
// request may still execute on the destination (at-most-once).
func (f *Fabric) CallWithTimeout(p *sim.Proc, from, to NodeID, method string, req Message, d time.Duration) (Message, error) {
	_, dst, err := f.checkPath(from, to)
	if err != nil {
		return Message{}, err
	}
	fh := dst.fast[method]
	h, hasH := dst.handlers[method]
	if fh == nil && !hasH {
		return Message{}, fmt.Errorf("%w: %q on node %d", ErrNoHandler, method, to)
	}
	if d == 0 {
		d = f.cfg.CallTimeout
	}

	// Span bookkeeping is synchronous host-side work: it must read the
	// one-shot parent before the first park (the overhead sleep below)
	// or an unrelated caller could consume it.
	var sp obs.SpanID
	if f.obs != nil {
		sp = f.obs.Start(obs.KindRPC, method, int(from), f.obs.TakeNext())
		f.obs.SetRoute(sp, int(from), int(to))
		f.obs.SetBytes(sp, int64(req.Bytes))
	}

	// Fixed software overhead on the caller side.
	p.Sleep(f.cfg.RPCOverhead)

	cs := f.getCall()
	cs.from, cs.to, cs.method, cs.req, cs.h, cs.fh = from, to, method, req, h, fh
	f.addInflight(cs)
	if d > 0 {
		cs.timeout = d
		cs.hasDeadline = true
		f.k.ScheduleTagged(f.k.Now().Add(d), cs.timeoutT, cs.gen)
	}

	if from == to {
		f.k.ScheduleTagged(f.k.Now(), cs.deliverT, cs.gen)
	} else if f.lost(from, to) {
		if !cs.hasDeadline {
			// No deadline armed to resolve the loss: fail now rather
			// than hang forever.
			f.Timeouts.Inc()
			cs.finish(Message{}, fmt.Errorf("%w: %q lost on link %d->%d", ErrTimeout, method, from, to))
		}
	} else if terr := f.transferAsyncTagged(from, to, req.Bytes, cs.deliverT, cs.gen); terr != nil {
		cs.finish(Message{}, terr)
	}

	for !cs.done {
		cs.cv.Wait(p)
	}
	reply, rerr := cs.reply, cs.err
	f.putCall(cs)
	if f.obs != nil {
		f.obs.SetErr(sp, rerr)
		f.obs.End(sp)
	}
	if rerr != nil {
		return Message{}, rerr
	}
	f.Calls.Inc()
	return reply, nil
}
