package simnet

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestHandleFastRoundTrip: a fast handler serves an RPC inline with the
// same wire costs and reply semantics as a blocking handler.
func TestHandleFastRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	f := New(k, testConfig())
	f.AddNode(1)
	srv := f.AddNode(2)
	srv.HandleFast("echo", func(req Message) (Message, error) {
		return Message{Payload: req.Payload, Bytes: req.Bytes}, nil
	})
	var reply Message
	var done sim.Time
	k.Spawn("client", func(p *sim.Proc) {
		var err error
		reply, err = f.Call(p, 1, 2, "echo", Message{Payload: "hi", Bytes: 500_000})
		if err != nil {
			t.Errorf("Call: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if reply.Payload != "hi" {
		t.Errorf("reply = %v, want hi", reply.Payload)
	}
	// Same timing as the blocking echo in TestCallRoundTrip: 0.5 ms each
	// way + 2x10us latency. Inline dispatch removes host overhead, not
	// simulated time.
	want := sim.Time(time.Millisecond + 20*time.Microsecond)
	if done != want {
		t.Errorf("round trip = %v, want %v", done, want)
	}
	if f.Calls.Value() != 1 {
		t.Errorf("Calls = %d, want 1", f.Calls.Value())
	}
	if f.FastCalls.Value() != 1 {
		t.Errorf("FastCalls = %d, want 1", f.FastCalls.Value())
	}
}

// TestHandleFastWouldBlockFallsBack: a fast handler returning
// ErrWouldBlock routes that request to the blocking handler.
func TestHandleFastWouldBlockFallsBack(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	cfg := testConfig()
	cfg.Latency = 0
	f := New(k, cfg)
	f.AddNode(1)
	srv := f.AddNode(2)
	fastTried := 0
	srv.HandleFast("op", func(req Message) (Message, error) {
		fastTried++
		if req.Payload == "fast" {
			return Message{Payload: "from-fast"}, nil
		}
		return Message{}, ErrWouldBlock
	})
	srv.Handle("op", func(p *sim.Proc, req Message) (Message, error) {
		p.Sleep(5 * time.Millisecond)
		return Message{Payload: "from-slow"}, nil
	})
	k.Spawn("client", func(p *sim.Proc) {
		reply, err := f.Call(p, 1, 2, "op", Message{Payload: "fast"})
		if err != nil || reply.Payload != "from-fast" {
			t.Errorf("fast request: reply=%v err=%v", reply.Payload, err)
		}
		start := p.Now()
		reply, err = f.Call(p, 1, 2, "op", Message{Payload: "slow"})
		if err != nil || reply.Payload != "from-slow" {
			t.Errorf("slow request: reply=%v err=%v", reply.Payload, err)
		}
		if elapsed := p.Now().Sub(start); elapsed < 5*time.Millisecond {
			t.Errorf("slow request took %v, want >= 5ms (blocking handler)", elapsed)
		}
	})
	k.Run()
	if fastTried != 2 {
		t.Errorf("fast handler tried %d times, want 2", fastTried)
	}
	if f.Calls.Value() != 2 || f.FastCalls.Value() != 1 {
		t.Errorf("Calls = %d FastCalls = %d, want 2 and 1", f.Calls.Value(), f.FastCalls.Value())
	}
}

// TestHandleFastWouldBlockNoFallback: declining with no blocking
// handler registered is an ErrNoHandler, not a hang.
func TestHandleFastWouldBlockNoFallback(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	f := New(k, testConfig())
	f.AddNode(1)
	srv := f.AddNode(2)
	srv.HandleFast("op", func(req Message) (Message, error) {
		return Message{}, ErrWouldBlock
	})
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := f.Call(p, 1, 2, "op", Message{}); !errors.Is(err, ErrNoHandler) {
			t.Errorf("err = %v, want ErrNoHandler", err)
		}
	})
	k.Run()
}

// TestHandleFastErrorPropagates: a fast handler's error reaches the
// caller like a blocking handler's would.
func TestHandleFastErrorPropagates(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	f := New(k, testConfig())
	f.AddNode(1)
	srv := f.AddNode(2)
	errBoom := errors.New("boom")
	srv.HandleFast("fail", func(req Message) (Message, error) {
		return Message{}, errBoom
	})
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := f.Call(p, 1, 2, "fail", Message{}); !errors.Is(err, errBoom) {
			t.Errorf("err = %v, want boom", err)
		}
	})
	k.Run()
	if f.FastCalls.Value() != 0 {
		t.Errorf("FastCalls = %d for an error reply, want 0", f.FastCalls.Value())
	}
}

// TestHandleFastBlockingPanics: a fast handler that attempts to block
// must panic with a clear message rather than deadlock the kernel.
func TestHandleFastBlockingPanics(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	f := New(k, testConfig())
	f.AddNode(1)
	srv := f.AddNode(2)
	var client *sim.Proc
	srv.HandleFast("bad", func(req Message) (Message, error) {
		// Misuse: fast handlers run in kernel context and own no
		// process; any park attempt must be caught.
		client.Sleep(time.Millisecond)
		return Message{}, nil
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from blocking fast handler")
		}
		if !strings.Contains(r.(string), "must not block") {
			t.Fatalf("unexpected panic message: %v", r)
		}
	}()
	client = k.Spawn("client", func(p *sim.Proc) {
		f.Call(p, 1, 2, "bad", Message{})
	})
	k.Run()
}

// TestCallStateReuse: the pooled per-call state must actually be reused
// across sequential calls (one allocation's worth of state, many calls).
func TestCallStateReuse(t *testing.T) {
	k := sim.NewKernel(1)
	defer k.Close()
	f := New(k, testConfig())
	f.AddNode(1)
	srv := f.AddNode(2)
	srv.HandleFast("echo", func(req Message) (Message, error) { return req, nil })
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if _, err := f.Call(p, 1, 2, "echo", Message{Bytes: 100}); err != nil {
				t.Errorf("Call %d: %v", i, err)
				return
			}
		}
	})
	k.Run()
	if len(f.callPool) != 1 {
		t.Errorf("callPool holds %d states after 50 sequential calls, want 1", len(f.callPool))
	}
	if f.Calls.Value() != 50 {
		t.Errorf("Calls = %d, want 50", f.Calls.Value())
	}
}
