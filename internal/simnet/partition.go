package simnet

// Partitioned network: cross-shard RPC over per-shard Fabrics.
//
// A Partition stitches the per-shard Fabrics of a partitioned
// simulation (sim.ParKernel) into one logical datacenter network.
// Intra-shard calls delegate to the shard's own Fabric and keep every
// property of the sequential fast path — inline FastHandler dispatch,
// pooled call state, zero allocations. Cross-shard calls travel through
// the ParKernel's mailboxes: the request is charged on the source NIC,
// crosses the partition boundary at the next window barrier, is charged
// on the destination NIC when it lands, runs the destination's fast or
// blocking handler on the destination shard's kernel, and the reply
// makes the symmetric trip back.
//
// The conservative-lookahead contract holds by construction: every
// cross-shard message is timestamped at least one propagation latency
// (Config.Latency) after it is sent, and the ParKernel's window width
// must be at most that latency (validated in NewPartition). This is
// exactly the "lookahead derived from minimum simnet propagation
// latency" of DESIGN.md §10.
//
// Model notes, where the cross-shard path deviates slightly from the
// single-fabric path (documented rather than hidden):
//
//   - Receive-side NIC occupancy is reserved when the message reaches
//     the destination shard, not presciently at send time; under
//     receive-side contention a cross-shard message can be charged
//     slightly later than the same message on a single fabric.
//   - Error replies return as minimal control messages after one
//     propagation latency instead of completing instantaneously.
//   - A destination node going down mid-handler does not proactively
//     fail in-flight cross-shard calls; the caller's deadline resolves
//     them (arm Config.CallTimeout when injecting faults, as on the
//     sequential fabric).
//
// The cross-shard path allocates per call. That is deliberate: it is
// the inter-partition slow path, expected to carry a small fraction of
// traffic (locality-aware sharding is the whole point of partitioning);
// the intra-shard fast path stays allocation-free.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// ShardNode addresses a node in a partitioned fabric: shard index plus
// the node's ID within that shard's Fabric. Node IDs are only unique
// within a shard (each shard's cluster numbers its machines from 0), so
// cross-shard addressing is always explicit about the shard.
type ShardNode struct {
	Shard int
	Node  NodeID
}

func (sn ShardNode) String() string { return fmt.Sprintf("%d.%d", sn.Shard, sn.Node) }

// crossLink addresses one direction of a cross-shard node pair.
type crossLink struct {
	from, to ShardNode
}

// crossCall is the caller-side state of one cross-shard RPC. It is
// created, waited on, and completed exclusively in the source shard's
// context; the destination shard only ever carries the pointer inside
// reply closures, never dereferences it.
type crossCall struct {
	reply Message
	err   error
	done  bool
	cv    sim.Cond
}

// Partition connects per-shard Fabrics across a ParKernel.
type Partition struct {
	pk      *sim.ParKernel
	fabrics []*Fabric

	// Cross-shard link faults. Guarded by a mutex because fault
	// schedules may be installed from any shard's injector; reads on
	// the call path take the read lock only when faults exist.
	mu            sync.RWMutex
	faults        map[crossLink]LinkFault
	faulted       bool
	CrossCalls    metrics.SharedCounter // completed cross-shard RPCs
	CrossBytes    metrics.SharedCounter // payload bytes across shard boundaries
	CrossTimeouts metrics.SharedCounter // cross-shard calls resolved by deadline/loss
	CrossDrops    metrics.SharedCounter // cross-shard messages eaten by link faults
}

// NewPartition builds the cross-shard plane over one Fabric per shard.
// Every fabric's propagation latency must be at least the ParKernel's
// lookahead window — the conservative protocol is only sound if no
// cross-shard interaction can take effect sooner than one window.
func NewPartition(pk *sim.ParKernel, fabrics []*Fabric) *Partition {
	if len(fabrics) != pk.NumShards() {
		panic(fmt.Sprintf("simnet: partition over %d fabrics but kernel has %d shards", len(fabrics), pk.NumShards()))
	}
	for i, f := range fabrics {
		if sim.Time(f.cfg.Latency.Nanoseconds()) < pk.Lookahead() {
			panic(fmt.Sprintf(
				"simnet: shard %d latency %v is below the lookahead window %v; cross-shard messages could violate causality",
				i, f.cfg.Latency, pk.Lookahead()))
		}
	}
	return &Partition{pk: pk, fabrics: fabrics}
}

// NumShards returns the number of shards in the partition.
func (pt *Partition) NumShards() int { return len(pt.fabrics) }

// Fabric returns shard s's fabric.
func (pt *Partition) Fabric(s int) *Fabric { return pt.fabrics[s] }

// SetCrossLinkFault installs fault state on the cross-shard link
// between a and b, in both directions. Intra-shard faults belong on the
// shard's own Fabric (SetLinkFault).
func (pt *Partition) SetCrossLinkFault(a, b ShardNode, lf LinkFault) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.faults == nil {
		pt.faults = make(map[crossLink]LinkFault)
	}
	pt.faults[crossLink{a, b}] = lf
	pt.faults[crossLink{b, a}] = lf
	pt.faulted = true
}

// ClearCrossLinkFault heals the cross-shard link between a and b.
func (pt *Partition) ClearCrossLinkFault(a, b ShardNode) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	delete(pt.faults, crossLink{a, b})
	delete(pt.faults, crossLink{b, a})
	pt.faulted = len(pt.faults) > 0
}

// crossFaultOn returns the fault installed on the directed cross link.
func (pt *Partition) crossFaultOn(from, to ShardNode) LinkFault {
	if !pt.faulted {
		return LinkFault{}
	}
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return pt.faults[crossLink{from, to}]
}

// Call performs a synchronous RPC between any two nodes of the
// partitioned fleet. Same-shard calls delegate to the shard Fabric's
// Call (identical semantics and cost, including the zero-allocation
// fast path); cross-shard calls take the mailbox path described in the
// package comment.
func (pt *Partition) Call(p *sim.Proc, from, to ShardNode, method string, req Message) (Message, error) {
	return pt.CallWithTimeout(p, from, to, method, req, 0)
}

// CallWithTimeout is Call with an explicit deadline: d > 0 bounds this
// call, d == 0 uses the source fabric's default, d < 0 forces none.
func (pt *Partition) CallWithTimeout(p *sim.Proc, from, to ShardNode, method string, req Message, d time.Duration) (Message, error) {
	if from.Shard < 0 || from.Shard >= len(pt.fabrics) || to.Shard < 0 || to.Shard >= len(pt.fabrics) {
		return Message{}, fmt.Errorf("%w: shard out of range in %v -> %v", ErrNoSuchNode, from, to)
	}
	if from.Shard == to.Shard {
		return pt.fabrics[from.Shard].CallWithTimeout(p, from.Node, to.Node, method, req, d)
	}
	srcFab := pt.fabrics[from.Shard]
	src := srcFab.nodes[from.Node]
	if src == nil {
		return Message{}, fmt.Errorf("%w: %v", ErrNoSuchNode, from)
	}
	if src.down {
		return Message{}, fmt.Errorf("%w: source %v", ErrNodeDown, from)
	}
	if d == 0 {
		d = srcFab.cfg.CallTimeout
	}
	hasDeadline := d > 0

	// Fixed software overhead on the caller side, as on the fabric path.
	p.Sleep(srcFab.cfg.RPCOverhead)

	k := srcFab.k
	cc := &crossCall{}
	if hasDeadline {
		deadline := fmt.Errorf("%w: cross-shard %q to %v after %v", ErrTimeout, method, to, d)
		k.Schedule(k.Now().Add(d), func() {
			if cc.done {
				return
			}
			pt.CrossTimeouts.Inc()
			pt.complete(cc, Message{}, deadline)
		})
	}

	lf := pt.crossFaultOn(from, to)
	lost := lf.Partitioned || (lf.DropProb > 0 && k.Rand().Float64() < lf.DropProb)
	switch {
	case lost && !hasDeadline:
		// No deadline armed to resolve the loss: fail now rather than
		// hang forever (mirrors Fabric.Call).
		pt.CrossDrops.Inc()
		pt.CrossTimeouts.Inc()
		return Message{}, fmt.Errorf("%w: %q lost on cross link %v->%v", ErrTimeout, method, from, to)
	case lost:
		pt.CrossDrops.Inc() // the armed deadline resolves the call
	default:
		now := k.Now()
		wire := srcFab.wireTime(req.Bytes)
		txStart := now
		if src.txFree > txStart {
			txStart = src.txFree
		}
		txEnd := txStart.Add(wire)
		src.txFree = txEnd
		src.TxBytes.Addn(req.Bytes + srcFab.cfg.MsgOverheadBytes)
		pt.CrossBytes.Addn(req.Bytes)
		arrive := txEnd.Add(srcFab.cfg.Latency + lf.ExtraLatency)
		pt.pk.Send(from.Shard, to.Shard, arrive, func() {
			pt.deliver(cc, from, to, method, req, hasDeadline)
		})
	}

	for !cc.done {
		cc.cv.Wait(p)
	}
	if cc.err != nil {
		return Message{}, cc.err
	}
	pt.CrossCalls.Inc()
	return cc.reply, nil
}

// deliver runs in the destination shard's kernel context when the
// request lands: it reserves receive-side NIC time, then dispatches the
// method's fast handler inline or its blocking handler in a pooled
// process, exactly like the sequential fabric's onDelivered.
func (pt *Partition) deliver(cc *crossCall, from, to ShardNode, method string, req Message, hasDeadline bool) {
	dstFab := pt.fabrics[to.Shard]
	k := dstFab.k
	dst := dstFab.nodes[to.Node]
	switch {
	case dst == nil:
		pt.reply(cc, to, from, Message{}, fmt.Errorf("%w: %v", ErrNoSuchNode, to), hasDeadline)
		return
	case dst.down:
		pt.reply(cc, to, from, Message{}, fmt.Errorf("%w: destination %v", ErrNodeDown, to), hasDeadline)
		return
	}
	fh := dst.fast[method]
	h, hasH := dst.handlers[method]
	if fh == nil && !hasH {
		pt.reply(cc, to, from, Message{}, fmt.Errorf("%w: %q on %v", ErrNoHandler, method, to), hasDeadline)
		return
	}

	wire := dstFab.wireTime(req.Bytes)
	rxStart := k.Now()
	if dst.rxFree > rxStart {
		rxStart = dst.rxFree
	}
	rxEnd := rxStart.Add(wire)
	dst.rxFree = rxEnd
	dst.RxBytes.Addn(req.Bytes + dstFab.cfg.MsgOverheadBytes)

	k.Schedule(rxEnd, func() {
		if fh != nil {
			rep, err := fh(req)
			if err == nil || !errors.Is(err, ErrWouldBlock) {
				if err == nil {
					dstFab.FastCalls.Inc()
				}
				pt.reply(cc, to, from, rep, err, hasDeadline)
				return
			}
			if !hasH {
				pt.reply(cc, to, from, Message{}, fmt.Errorf(
					"%w: fast handler for %q on %v declined and no blocking handler is registered",
					ErrNoHandler, method, to), hasDeadline)
				return
			}
		}
		k.SpawnLazy(
			func() string { return fmt.Sprintf("xrpc:%s@%v", method, to) },
			func(hp *sim.Proc) {
				rep, err := h(hp, req)
				pt.reply(cc, to, from, rep, err, hasDeadline)
			})
	})
}

// reply runs in the responding shard's context and routes the handler
// result back to the caller. Success replies are charged on the wire in
// both directions; error replies travel as minimal control messages
// after one propagation latency.
func (pt *Partition) reply(cc *crossCall, responder, caller ShardNode, rep Message, err error, hasDeadline bool) {
	dstFab := pt.fabrics[responder.Shard]
	k := dstFab.k
	if err != nil {
		pt.pk.Send(responder.Shard, caller.Shard, k.Now().Add(dstFab.cfg.Latency), func() {
			pt.complete(cc, Message{}, err)
		})
		return
	}
	lf := pt.crossFaultOn(responder, caller)
	if lf.Partitioned || (lf.DropProb > 0 && k.Rand().Float64() < lf.DropProb) {
		pt.CrossDrops.Inc()
		if hasDeadline {
			return // the caller's armed deadline resolves the call
		}
		lossErr := fmt.Errorf("%w: cross-shard reply lost on link %v->%v", ErrTimeout, responder, caller)
		pt.pk.Send(responder.Shard, caller.Shard, k.Now().Add(dstFab.cfg.Latency), func() {
			pt.CrossTimeouts.Inc()
			pt.complete(cc, Message{}, lossErr)
		})
		return
	}
	node := dstFab.nodes[responder.Node]
	wire := dstFab.wireTime(rep.Bytes)
	txStart := k.Now()
	if node != nil {
		if node.txFree > txStart {
			txStart = node.txFree
		}
	}
	txEnd := txStart.Add(wire)
	if node != nil {
		node.txFree = txEnd
		node.TxBytes.Addn(rep.Bytes + dstFab.cfg.MsgOverheadBytes)
	}
	pt.CrossBytes.Addn(rep.Bytes)
	arrive := txEnd.Add(dstFab.cfg.Latency + lf.ExtraLatency)
	pt.pk.Send(responder.Shard, caller.Shard, arrive, func() {
		// Back in the caller's shard: reserve receive-side NIC time,
		// then complete once the payload is fully received.
		srcFab := pt.fabrics[caller.Shard]
		sk := srcFab.k
		srcNode := srcFab.nodes[caller.Node]
		rxStart := sk.Now()
		rwire := srcFab.wireTime(rep.Bytes)
		if srcNode != nil {
			if srcNode.rxFree > rxStart {
				rxStart = srcNode.rxFree
			}
		}
		rxEnd := rxStart.Add(rwire)
		if srcNode != nil {
			srcNode.rxFree = rxEnd
			srcNode.RxBytes.Addn(rep.Bytes + srcFab.cfg.MsgOverheadBytes)
		}
		sk.Schedule(rxEnd, func() { pt.complete(cc, rep, nil) })
	})
}

// complete resolves a cross call. Runs only in the caller's shard.
func (pt *Partition) complete(cc *crossCall, rep Message, err error) {
	if cc.done {
		return
	}
	cc.reply, cc.err = rep, err
	cc.done = true
	cc.cv.Signal()
}
