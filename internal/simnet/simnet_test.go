package simnet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// testConfig: 1 GB/s, 10 us latency, zero overheads for easy arithmetic.
func testConfig() Config {
	return Config{
		Latency:          10 * time.Microsecond,
		Bandwidth:        1_000_000_000,
		RPCOverhead:      0,
		MsgOverheadBytes: 0,
	}
}

func TestTransferTiming(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	f.AddNode(2)
	var done sim.Time
	k.Spawn("sender", func(p *sim.Proc) {
		// 1 MB at 1 GB/s = 1 ms wire + 10 us latency.
		if err := f.Transfer(p, 1, 2, 1_000_000); err != nil {
			t.Errorf("Transfer: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	want := sim.Time(time.Millisecond + 10*time.Microsecond)
	if done != want {
		t.Errorf("transfer completed at %v, want %v", done, want)
	}
}

func TestTransferSameNodeFree(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	var done sim.Time = -1
	k.Spawn("p", func(p *sim.Proc) {
		if err := f.Transfer(p, 1, 1, 1<<30); err != nil {
			t.Errorf("Transfer: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if done != 0 {
		t.Errorf("same-node transfer took %v, want 0", done)
	}
}

func TestTransfersSerializeOnTxNIC(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	f.AddNode(2)
	f.AddNode(3)
	var d2, d3 sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		f.Transfer(p, 1, 2, 1_000_000)
		d2 = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		f.Transfer(p, 1, 3, 1_000_000)
		d3 = p.Now()
	})
	k.Run()
	// Both leave node 1's NIC: second transfer must wait for the first
	// transmission to finish (1ms), then its own 1ms + latency.
	want2 := sim.Time(time.Millisecond + 10*time.Microsecond)
	want3 := sim.Time(2*time.Millisecond + 10*time.Microsecond)
	if d2 != want2 || d3 != want3 {
		t.Errorf("d2=%v d3=%v, want %v and %v", d2, d3, want2, want3)
	}
}

func TestTransfersSerializeOnRxNIC(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	f.AddNode(2)
	f.AddNode(3)
	var times []sim.Time
	for _, src := range []NodeID{1, 2} {
		src := src
		k.Spawn("s", func(p *sim.Proc) {
			f.Transfer(p, src, 3, 1_000_000)
			times = append(times, p.Now())
		})
	}
	k.Run()
	// Different sources, same sink: rx NIC serializes them.
	want0 := sim.Time(time.Millisecond + 10*time.Microsecond)
	want1 := sim.Time(2*time.Millisecond + 10*time.Microsecond)
	if times[0] != want0 || times[1] != want1 {
		t.Errorf("times=%v, want [%v %v]", times, want0, want1)
	}
}

func TestMsgOverheadBytes(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig()
	cfg.MsgOverheadBytes = 1000
	cfg.Latency = 0
	f := New(k, cfg)
	f.AddNode(1)
	f.AddNode(2)
	var done sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		f.Transfer(p, 1, 2, 0) // pure header: 1000 B at 1 GB/s = 1 us
		done = p.Now()
	})
	k.Run()
	if done != sim.Time(time.Microsecond) {
		t.Errorf("done = %v, want 1us", done)
	}
	if f.Node(1).TxBytes.Value() != 1000 {
		t.Errorf("TxBytes = %d, want 1000", f.Node(1).TxBytes.Value())
	}
}

func TestTransferAsync(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	f.AddNode(2)
	var at sim.Time = -1
	if err := f.TransferAsync(1, 2, 1_000_000, func() { at = k.Now() }); err != nil {
		t.Fatalf("TransferAsync: %v", err)
	}
	k.Run()
	want := sim.Time(time.Millisecond + 10*time.Microsecond)
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestCallRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	srv := f.AddNode(2)
	srv.Handle("echo", func(p *sim.Proc, req Message) (Message, error) {
		return Message{Payload: req.Payload, Bytes: req.Bytes}, nil
	})
	var reply Message
	var done sim.Time
	k.Spawn("client", func(p *sim.Proc) {
		var err error
		reply, err = f.Call(p, 1, 2, "echo", Message{Payload: "hi", Bytes: 500_000})
		if err != nil {
			t.Errorf("Call: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if reply.Payload != "hi" {
		t.Errorf("reply = %v, want hi", reply.Payload)
	}
	// 0.5 ms each way + 2x10us latency.
	want := sim.Time(time.Millisecond + 20*time.Microsecond)
	if done != want {
		t.Errorf("round trip = %v, want %v", done, want)
	}
	if f.Calls.Value() != 1 {
		t.Errorf("Calls = %d, want 1", f.Calls.Value())
	}
}

func TestCallHandlerBlocks(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig()
	cfg.Latency = 0
	f := New(k, cfg)
	f.AddNode(1)
	srv := f.AddNode(2)
	srv.Handle("slow", func(p *sim.Proc, req Message) (Message, error) {
		p.Sleep(5 * time.Millisecond)
		return Message{}, nil
	})
	var done sim.Time
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := f.Call(p, 1, 2, "slow", Message{}); err != nil {
			t.Errorf("Call: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if done != 5*sim.Millisecond {
		t.Errorf("done = %v, want 5ms", done)
	}
}

func TestCallHandlerError(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	srv := f.AddNode(2)
	errBoom := errors.New("boom")
	srv.Handle("fail", func(p *sim.Proc, req Message) (Message, error) {
		return Message{}, errBoom
	})
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := f.Call(p, 1, 2, "fail", Message{}); !errors.Is(err, errBoom) {
			t.Errorf("Call err = %v, want boom", err)
		}
	})
	k.Run()
}

func TestCallNoHandler(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	f.AddNode(2)
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := f.Call(p, 1, 2, "missing", Message{}); !errors.Is(err, ErrNoHandler) {
			t.Errorf("err = %v, want ErrNoHandler", err)
		}
	})
	k.Run()
}

func TestCallSameNodeSkipsWire(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	n := f.AddNode(1)
	n.Handle("f", func(p *sim.Proc, req Message) (Message, error) {
		return Message{Payload: 1}, nil
	})
	var done sim.Time = -1
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := f.Call(p, 1, 1, "f", Message{Bytes: 1 << 20}); err != nil {
			t.Errorf("Call: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if done != 0 {
		t.Errorf("local call took %v, want 0", done)
	}
}

func TestNodeDown(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	f.AddNode(2).SetDown(true)
	k.Spawn("client", func(p *sim.Proc) {
		if err := f.Transfer(p, 1, 2, 100); !errors.Is(err, ErrNodeDown) {
			t.Errorf("Transfer err = %v, want ErrNodeDown", err)
		}
		if _, err := f.Call(p, 1, 2, "x", Message{}); !errors.Is(err, ErrNodeDown) {
			t.Errorf("Call err = %v, want ErrNodeDown", err)
		}
	})
	k.Run()
	// Recover and verify reachability is restored.
	f.Node(2).SetDown(false)
	f.Node(2).Handle("x", func(p *sim.Proc, req Message) (Message, error) { return Message{}, nil })
	k.Spawn("client2", func(p *sim.Proc) {
		if _, err := f.Call(p, 1, 2, "x", Message{}); err != nil {
			t.Errorf("Call after recovery: %v", err)
		}
	})
	k.Run()
}

func TestUnknownNode(t *testing.T) {
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	k.Spawn("client", func(p *sim.Proc) {
		if err := f.Transfer(p, 1, 99, 100); !errors.Is(err, ErrNoSuchNode) {
			t.Errorf("err = %v, want ErrNoSuchNode", err)
		}
	})
	k.Run()
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := sim.NewKernel(1)
	f := New(k, testConfig())
	f.AddNode(1)
	f.AddNode(1)
}

func TestRPCOverheadCharged(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig()
	cfg.RPCOverhead = 3 * time.Microsecond
	cfg.Latency = 0
	f := New(k, cfg)
	n := f.AddNode(1)
	n.Handle("f", func(p *sim.Proc, req Message) (Message, error) { return Message{}, nil })
	var done sim.Time
	k.Spawn("c", func(p *sim.Proc) {
		f.Call(p, 1, 1, "f", Message{})
		done = p.Now()
	})
	k.Run()
	if done != 3*sim.Microsecond {
		t.Errorf("done = %v, want 3us overhead", done)
	}
}

// Property: transfer completion time is monotone in payload size and
// never less than the propagation latency for cross-node transfers.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(sizesRaw []uint32) bool {
		k := sim.NewKernel(1)
		fab := New(k, testConfig())
		fab.AddNode(1)
		fab.AddNode(2)
		prevDone := sim.Time(0)
		okAll := true
		k.Spawn("s", func(p *sim.Proc) {
			for _, s := range sizesRaw {
				start := p.Now()
				if err := fab.Transfer(p, 1, 2, int64(s)); err != nil {
					okAll = false
					return
				}
				elapsed := p.Now().Sub(start)
				if elapsed < 10*time.Microsecond {
					okAll = false
					return
				}
				if p.Now() < prevDone {
					okAll = false
					return
				}
				prevDone = p.Now()
			}
		})
		k.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: byte accounting is conserved — every transfer adds exactly
// payload+header to the source's TxBytes and destination's RxBytes.
func TestByteConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := sim.NewKernel(1)
		cfg := testConfig()
		cfg.MsgOverheadBytes = 64
		fab := New(k, cfg)
		fab.AddNode(1)
		fab.AddNode(2)
		var want int64
		k.Spawn("s", func(p *sim.Proc) {
			for _, s := range sizes {
				if err := fab.Transfer(p, 1, 2, int64(s)); err != nil {
					return
				}
				want += int64(s) + 64
			}
		})
		k.Run()
		return fab.Node(1).TxBytes.Value() == want && fab.Node(2).RxBytes.Value() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: concurrent transfers through one NIC take at least the
// serialized wire time (bandwidth cannot be exceeded).
func TestBandwidthCapProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		k := sim.NewKernel(1)
		fab := New(k, testConfig())
		fab.AddNode(1)
		fab.AddNode(2)
		const size = 500_000 // 0.5ms each at 1 GB/s
		var last sim.Time
		for i := 0; i < n; i++ {
			k.Spawn("s", func(p *sim.Proc) {
				fab.Transfer(p, 1, 2, size)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		k.Run()
		minTime := sim.Time(n) * sim.Time(500*time.Microsecond)
		return last >= minTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
