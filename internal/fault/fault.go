// Package fault injects failures into a simulated Quicksand cluster —
// machine crashes and restarts, network partitions, latency spikes and
// message loss — from a declarative, seeded schedule. Because the
// simulation kernel is deterministic and all randomness (schedule
// generation, drop decisions, retry jitter) derives from the kernel
// RNG, a chaos run is exactly reproducible from its seed: the same
// faults land at the same virtual instants and the system takes the
// same recovery actions, event for event.
//
// The injector only breaks things. Recovery — orphan re-placement,
// memory reconstruction, load shedding — belongs to the control plane
// (core.System.AttachInjector wires its handlers into the hooks here).
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Op is a fault operation.
type Op int

// Fault operations.
const (
	// OpCrash fail-stops machine A: its node drops off the fabric
	// (in-flight RPCs fail with ErrNodeDown), its CPU tasks are retired,
	// its memory contents are lost.
	OpCrash Op = iota
	// OpRestart brings machine A back empty: node up, zero memory, no
	// proclets. Recovery re-places work onto it.
	OpRestart
	// OpPartition cuts the link between machines A and B symmetrically.
	OpPartition
	// OpDegrade adds Extra latency and Drop probability to the A–B link
	// without cutting it.
	OpDegrade
	// OpHeal clears any link fault between A and B.
	OpHeal
	// OpGPUXid fatally fails GPU Gpu on machine A with error code Xid:
	// the device stops executing and its memory contents are lost.
	OpGPUXid
	// OpGPUThrottle degrades GPU Gpu on machine A without killing it:
	// Factor is a multiplicative thermal slowdown (>= 1), and
	// StallEvery/Stall optionally add an ECC stutter (every Nth kernel
	// stalls for Stall).
	OpGPUThrottle
	// OpGPUHeal clears all gray-failure state on GPU Gpu of machine A.
	OpGPUHeal
	// OpGPUReclaim takes spot GPU Gpu on machine A back (memory stays
	// readable for evacuation); OpGPUReturn hands it back.
	OpGPUReclaim
	OpGPUReturn
)

func (o Op) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpRestart:
		return "restart"
	case OpPartition:
		return "partition"
	case OpDegrade:
		return "degrade"
	case OpHeal:
		return "heal"
	case OpGPUXid:
		return "gpu_xid"
	case OpGPUThrottle:
		return "gpu_throttle"
	case OpGPUHeal:
		return "gpu_heal"
	case OpGPUReclaim:
		return "gpu_reclaim"
	case OpGPUReturn:
		return "gpu_return"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Event is one scheduled fault. A is the target machine; B is the peer
// for link faults (ignored for crash/restart). Extra and Drop apply to
// OpDegrade only. Gpu selects the device on machine A for the OpGPU*
// ops; Xid carries the device error code for OpGPUXid; Factor,
// StallEvery and Stall parameterize OpGPUThrottle.
type Event struct {
	At    sim.Time
	Op    Op
	A, B  cluster.MachineID
	Extra time.Duration
	Drop  float64

	Gpu        int
	Xid        int
	Factor     float64
	StallEvery int
	Stall      time.Duration
}

// Schedule is a list of fault events. Order does not matter; Install
// sorts by time (stably, so same-instant events keep their declared
// order).
type Schedule []Event

// Injector applies a fault schedule to a cluster. Hooks let the control
// plane react the instant a fault lands — the injector itself performs
// only the mechanical state change.
type Injector struct {
	k *sim.Kernel
	c *cluster.Cluster
	t *trace.Log

	// HookCrash runs after machine m fail-stops (node down, tasks
	// retired, memory wiped). The control plane orphans and re-places
	// the machine's proclets here.
	HookCrash func(m cluster.MachineID)
	// HookRestart runs after machine m rejoins empty.
	HookRestart func(m cluster.MachineID)
	// HookGPU runs after any GPU fault op changes device state on
	// machine m's GPU gpu (xid, throttle, heal, reclaim, return). A GPU
	// fleet kicks its watcher here so reaction latency is not quantized
	// to the watch period.
	HookGPU func(m cluster.MachineID, gpu int)

	// Counters of applied faults.
	Crashes    metrics.Counter
	Restarts   metrics.Counter
	Partitions metrics.Counter
	Degrades   metrics.Counter
	Heals      metrics.Counter

	// GPU gray-failure counters.
	GPUXids      metrics.Counter
	GPUThrottles metrics.Counter
	GPUHeals     metrics.Counter
	GPUReclaims  metrics.Counter
	GPUReturns   metrics.Counter
}

// New creates an injector for the cluster. If the fabric has no default
// call timeout, one is set (2ms): without a deadline, an RPC whose
// reply is lost to a partition could hang forever, and the no-hang
// guarantee is the point of running under the injector.
func New(k *sim.Kernel, c *cluster.Cluster, tl *trace.Log) *Injector {
	if c.Fabric.Config().CallTimeout <= 0 {
		c.Fabric.SetCallTimeout(2 * time.Millisecond)
	}
	return &Injector{k: k, c: c, t: tl}
}

// Install schedules every event in s on the kernel. It may be called
// before or during the run, multiple times.
func (in *Injector) Install(s Schedule) {
	sorted := make(Schedule, len(s))
	copy(sorted, s)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for _, ev := range sorted {
		ev := ev
		in.k.Schedule(ev.At, func() { in.Apply(ev) })
	}
}

// Apply executes one fault event immediately.
func (in *Injector) Apply(ev Event) {
	switch ev.Op {
	case OpCrash:
		in.crash(ev.A)
	case OpRestart:
		in.restart(ev.A)
	case OpPartition:
		in.Partitions.Inc()
		in.c.Fabric.SetLinkFault(simnet.NodeID(ev.A), simnet.NodeID(ev.B),
			simnet.LinkFault{Partitioned: true})
		in.t.Emitf(in.k.Now(), trace.KindFault, "link", int(ev.A), int(ev.B), "partition")
	case OpDegrade:
		in.Degrades.Inc()
		in.c.Fabric.SetLinkFault(simnet.NodeID(ev.A), simnet.NodeID(ev.B),
			simnet.LinkFault{ExtraLatency: ev.Extra, DropProb: ev.Drop})
		in.t.Emitf(in.k.Now(), trace.KindFault, "link", int(ev.A), int(ev.B),
			"degrade latency+%v drop=%.2f", ev.Extra, ev.Drop)
	case OpHeal:
		in.Heals.Inc()
		in.c.Fabric.ClearLinkFault(simnet.NodeID(ev.A), simnet.NodeID(ev.B))
		in.t.Emitf(in.k.Now(), trace.KindFault, "link", int(ev.A), int(ev.B), "heal")
	case OpGPUXid, OpGPUThrottle, OpGPUHeal, OpGPUReclaim, OpGPUReturn:
		in.applyGPU(ev)
	default:
		panic(fmt.Sprintf("fault: unknown op %v", ev.Op))
	}
}

func (in *Injector) applyGPU(ev Event) {
	m := in.c.Machine(ev.A)
	if m == nil {
		return
	}
	g := m.GPU(ev.Gpu)
	if g == nil {
		return
	}
	name := g.String()
	switch ev.Op {
	case OpGPUXid:
		if g.Failed() {
			return
		}
		in.GPUXids.Inc()
		g.Fail(ev.Xid)
		in.t.Emitf(in.k.Now(), trace.KindFault, name, int(ev.A), ev.Gpu,
			"gpu xid %d (fatal, device memory lost)", ev.Xid)
	case OpGPUThrottle:
		in.GPUThrottles.Inc()
		if ev.Factor > 1 {
			g.SetThrottle(ev.Factor)
		}
		if ev.StallEvery > 0 {
			g.SetStutter(ev.StallEvery, ev.Stall)
		}
		in.t.Emitf(in.k.Now(), trace.KindFault, name, int(ev.A), ev.Gpu,
			"gpu throttle x%.2f stall %v/%d", g.Throttle(), ev.Stall, ev.StallEvery)
	case OpGPUHeal:
		in.GPUHeals.Inc()
		g.Heal()
		in.t.Emitf(in.k.Now(), trace.KindRecover, name, int(ev.A), ev.Gpu, "gpu heal")
	case OpGPUReclaim:
		if !g.Available() {
			return
		}
		in.GPUReclaims.Inc()
		g.SetAvailable(false)
		in.t.Emitf(in.k.Now(), trace.KindFault, name, int(ev.A), ev.Gpu, "gpu spot reclaim")
	case OpGPUReturn:
		if g.Available() {
			return
		}
		in.GPUReturns.Inc()
		g.SetAvailable(true)
		in.t.Emitf(in.k.Now(), trace.KindRecover, name, int(ev.A), ev.Gpu, "gpu spot return")
	}
	if in.HookGPU != nil {
		in.HookGPU(ev.A, ev.Gpu)
	}
}

func (in *Injector) crash(mid cluster.MachineID) {
	m := in.c.Machine(mid)
	if m == nil || m.Down() {
		return
	}
	in.Crashes.Inc()
	// Network first (in-flight RPCs fail), then the machine (tasks
	// retired, memory wiped), then the control plane's orphaning pass.
	in.c.Node(mid).SetDown(true)
	m.Crash()
	in.t.Emitf(in.k.Now(), trace.KindCrash, fmt.Sprintf("m%d", mid), int(mid), -1,
		"machine fail-stop")
	if in.HookCrash != nil {
		in.HookCrash(mid)
	}
}

func (in *Injector) restart(mid cluster.MachineID) {
	m := in.c.Machine(mid)
	if m == nil || !m.Down() {
		return
	}
	in.Restarts.Inc()
	m.Restart()
	in.c.Node(mid).SetDown(false)
	in.t.Emitf(in.k.Now(), trace.KindRecover, fmt.Sprintf("m%d", mid), int(mid), -1,
		"machine restart (empty)")
	if in.HookRestart != nil {
		in.HookRestart(mid)
	}
}

// Churn generates a crash/restart schedule for the given machines over
// [0, horizon): each machine alternates up and down phases whose
// lengths are exponentially distributed around meanUp and meanDown.
// All randomness comes from rng, so the same seed yields the same
// schedule.
func Churn(rng *rand.Rand, ids []cluster.MachineID, horizon sim.Time, meanUp, meanDown time.Duration) Schedule {
	var s Schedule
	for _, id := range ids {
		at := sim.Time(0)
		for {
			up := time.Duration(rng.ExpFloat64() * float64(meanUp))
			at = at.Add(up)
			if at >= horizon {
				break
			}
			s = append(s, Event{At: at, Op: OpCrash, A: id})
			down := time.Duration(rng.ExpFloat64() * float64(meanDown))
			at = at.Add(down)
			if at >= horizon {
				break
			}
			s = append(s, Event{At: at, Op: OpRestart, A: id})
		}
	}
	return s
}
