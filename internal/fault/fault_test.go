package fault

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func testCluster(t *testing.T, machines int) (*sim.Kernel, *cluster.Cluster, *proclet.Runtime) {
	t.Helper()
	k := sim.NewKernel(1)
	c := cluster.New(k, simnet.Config{
		Latency:   10 * time.Microsecond,
		Bandwidth: 1_000_000_000,
	})
	for i := 0; i < machines; i++ {
		c.AddMachine(cluster.MachineConfig{Cores: 8, MemBytes: 1 << 30})
	}
	rt := proclet.NewRuntime(c, proclet.Config{
		MigrationFixedOverhead: 100 * time.Microsecond,
		DirectoryLookup:        5 * time.Microsecond,
		MaxInvokeRetries:       16,
	}, trace.New())
	return k, c, rt
}

func TestChurnDeterministicPerSeed(t *testing.T) {
	ids := []cluster.MachineID{0, 1, 2}
	gen := func(seed int64) Schedule {
		return Churn(rand.New(rand.NewSource(seed)), ids,
			sim.Time(100*time.Millisecond), 10*time.Millisecond, 2*time.Millisecond)
	}
	a, b := gen(7), gen(7)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := gen(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	// Per machine: ops alternate crash, restart, crash, ... in time order.
	for _, id := range ids {
		want := OpCrash
		for _, ev := range a {
			if ev.A != id {
				continue
			}
			if ev.Op != want {
				t.Fatalf("machine %d: got %v, want %v", id, ev.Op, want)
			}
			if want == OpCrash {
				want = OpRestart
			} else {
				want = OpCrash
			}
		}
	}
}

func TestInjectorAppliesScheduleInOrder(t *testing.T) {
	k, c, _ := testCluster(t, 2)
	in := New(k, c, trace.New())
	in.Install(Schedule{
		// Deliberately out of order; Install sorts by time.
		{At: sim.Time(3 * time.Millisecond), Op: OpHeal, A: 0, B: 1},
		{At: sim.Time(1 * time.Millisecond), Op: OpPartition, A: 0, B: 1},
		{At: sim.Time(2 * time.Millisecond), Op: OpCrash, A: 1},
		{At: sim.Time(4 * time.Millisecond), Op: OpRestart, A: 1},
	})
	check := func(at sim.Time, fn func()) { k.Schedule(at, fn) }
	check(sim.Time(1500*time.Microsecond), func() {
		if !c.Fabric.LinkFaultOn(0, 1).Partitioned {
			t.Error("t=1.5ms: expected partition")
		}
	})
	check(sim.Time(2500*time.Microsecond), func() {
		if !c.Machine(1).Down() || !c.Node(1).Down() {
			t.Error("t=2.5ms: expected machine 1 down")
		}
	})
	check(sim.Time(3500*time.Microsecond), func() {
		if c.Fabric.LinkFaultOn(0, 1).Partitioned {
			t.Error("t=3.5ms: expected link healed")
		}
	})
	k.Run()
	if c.Machine(1).Down() {
		t.Error("machine 1 still down after restart")
	}
	if in.Crashes.Value() != 1 || in.Restarts.Value() != 1 ||
		in.Partitions.Value() != 1 || in.Heals.Value() != 1 {
		t.Errorf("counters = crash %d restart %d partition %d heal %d, want 1 each",
			in.Crashes.Value(), in.Restarts.Value(), in.Partitions.Value(), in.Heals.Value())
	}
}

func TestInjectorIdempotentOps(t *testing.T) {
	k, c, _ := testCluster(t, 2)
	in := New(k, c, trace.New())
	k.Spawn("driver", func(p *sim.Proc) {
		in.Apply(Event{Op: OpCrash, A: 0})
		in.Apply(Event{Op: OpCrash, A: 0}) // already down: no-op
		in.Apply(Event{Op: OpRestart, A: 0})
		in.Apply(Event{Op: OpRestart, A: 0}) // already up: no-op
	})
	k.Run()
	if in.Crashes.Value() != 1 || in.Restarts.Value() != 1 {
		t.Errorf("crashes %d restarts %d, want 1 each", in.Crashes.Value(), in.Restarts.Value())
	}
}

func TestNewSetsDefaultCallTimeout(t *testing.T) {
	k, c, _ := testCluster(t, 1)
	New(k, c, trace.New())
	if d := c.Fabric.Config().CallTimeout; d != 2*time.Millisecond {
		t.Errorf("CallTimeout = %v, want 2ms default", d)
	}
	// An explicit timeout is respected.
	k2 := sim.NewKernel(1)
	c2 := cluster.New(k2, simnet.Config{
		Latency: time.Microsecond, Bandwidth: 1e9, CallTimeout: 5 * time.Millisecond,
	})
	c2.AddMachine(cluster.MachineConfig{Cores: 1, MemBytes: 1 << 20})
	New(k2, c2, trace.New())
	if d := c2.Fabric.Config().CallTimeout; d != 5*time.Millisecond {
		t.Errorf("CallTimeout = %v, want 5ms (explicit)", d)
	}
}

// TestNoHangUnderChurn is the package's core guarantee: with crashes,
// restarts, partitions and degraded links all landing on a live RPC
// workload, every invocation must resolve (reply or error) and the
// kernel must drain — nothing blocks forever.
func TestNoHangUnderChurn(t *testing.T) {
	k, c, rt := testCluster(t, 4)
	tl := trace.New()
	in := New(k, c, tl)

	// A service proclet per machine; crashed machines orphan theirs.
	var prs []*proclet.Proclet
	for m := 0; m < 4; m++ {
		pr, err := rt.Spawn("svc", cluster.MachineID(m), 4096)
		if err != nil {
			t.Fatal(err)
		}
		pr.Handle("work", func(ctx *Ctx, arg Msg) (Msg, error) {
			ctx.Proc.Sleep(20 * time.Microsecond)
			return Msg{}, nil
		})
		prs = append(prs, pr)
	}
	in.HookCrash = func(mid cluster.MachineID) { rt.CrashMachine(mid) }

	horizon := sim.Time(20 * time.Millisecond)
	rng := k.Rand()
	sched := Churn(rng, []cluster.MachineID{1, 2, 3}, horizon,
		5*time.Millisecond, 2*time.Millisecond)
	// Mix in link faults on machine 0's links, always healed before the end.
	sched = append(sched,
		Event{At: sim.Time(2 * time.Millisecond), Op: OpPartition, A: 0, B: 2},
		Event{At: sim.Time(4 * time.Millisecond), Op: OpHeal, A: 0, B: 2},
		Event{At: sim.Time(6 * time.Millisecond), Op: OpDegrade, A: 0, B: 3,
			Extra: 200 * time.Microsecond, Drop: 0.3},
		Event{At: sim.Time(9 * time.Millisecond), Op: OpHeal, A: 0, B: 3},
	)
	// Heal everything at the horizon: all machines back up.
	for _, m := range []cluster.MachineID{1, 2, 3} {
		sched = append(sched, Event{At: horizon, Op: OpRestart, A: m})
	}
	in.Install(sched)

	resolved := 0
	const callers, callsPer = 6, 40
	for i := 0; i < callers; i++ {
		i := i
		k.Spawn("caller", func(p *sim.Proc) {
			for j := 0; j < callsPer; j++ {
				target := prs[(i+j)%4]
				_, err := rt.Invoke(p, 0, 0, target.ID(), "work", Msg{})
				if err != nil && !errors.Is(err, simnet.ErrNodeDown) &&
					!errors.Is(err, simnet.ErrTimeout) && !errors.Is(err, proclet.ErrRetries) {
					t.Errorf("unexpected error class: %v", err)
				}
				resolved++
				p.Sleep(50 * time.Microsecond)
			}
		})
	}
	k.Run()
	if resolved != callers*callsPer {
		t.Errorf("resolved %d/%d invocations", resolved, callers*callsPer)
	}
	if n := k.Blocked(); n != 0 {
		t.Errorf("%d processes still blocked after run", n)
	}
}

type (
	// Local aliases keep the chaos test readable.
	Ctx = proclet.Ctx
	Msg = proclet.Msg
)

func TestGPUFaultOps(t *testing.T) {
	k, c, _ := testCluster(t, 2)
	c.Machine(1).AddGPUs(cluster.GPUConfig{Count: 2, MemBytes: 4 << 30, LinkBandwidth: 1_000_000_000})
	tl := trace.New()
	in := New(k, c, tl)
	var kicks []int
	in.HookGPU = func(m cluster.MachineID, gpu int) {
		if m != 1 {
			t.Errorf("hook machine = %d", m)
		}
		kicks = append(kicks, gpu)
	}
	in.Install(Schedule{
		{At: sim.Time(time.Millisecond), Op: OpGPUThrottle, A: 1, Gpu: 0, Factor: 3},
		{At: sim.Time(2 * time.Millisecond), Op: OpGPUXid, A: 1, Gpu: 1, Xid: 79},
		{At: sim.Time(3 * time.Millisecond), Op: OpGPUReclaim, A: 1, Gpu: 0},
		{At: sim.Time(4 * time.Millisecond), Op: OpGPUHeal, A: 1, Gpu: 1},
		{At: sim.Time(5 * time.Millisecond), Op: OpGPUReturn, A: 1, Gpu: 0},
		// No-ops: unknown GPU index, machine without GPUs.
		{At: sim.Time(6 * time.Millisecond), Op: OpGPUXid, A: 1, Gpu: 9},
		{At: sim.Time(6 * time.Millisecond), Op: OpGPUXid, A: 0, Gpu: 0},
	})
	g0, g1 := c.Machine(1).GPU(0), c.Machine(1).GPU(1)

	k.RunUntil(sim.Time(1500 * time.Microsecond))
	if g0.Throttle() != 3 {
		t.Errorf("throttle = %v", g0.Throttle())
	}
	k.RunUntil(sim.Time(2500 * time.Microsecond))
	if !g1.Failed() || g1.Xid() != 79 {
		t.Errorf("failed=%v xid=%d", g1.Failed(), g1.Xid())
	}
	k.RunUntil(sim.Time(3500 * time.Microsecond))
	if g0.Available() {
		t.Error("g0 still available after reclaim")
	}
	k.Run()
	if g1.Failed() || !g0.Available() {
		t.Errorf("after heal/return: failed=%v avail=%v", g1.Failed(), g0.Available())
	}
	if got := in.GPUXids.Value() + in.GPUThrottles.Value() + in.GPUHeals.Value() +
		in.GPUReclaims.Value() + in.GPUReturns.Value(); got != 5 {
		t.Errorf("applied GPU faults = %d, want 5", got)
	}
	want := []int{0, 1, 0, 1, 0}
	if len(kicks) != len(want) {
		t.Fatalf("hook kicks = %v, want %v", kicks, want)
	}
	for i := range want {
		if kicks[i] != want[i] {
			t.Fatalf("hook kicks = %v, want %v", kicks, want)
		}
	}
}

func TestGPUFaultOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpGPUXid: "gpu_xid", OpGPUThrottle: "gpu_throttle", OpGPUHeal: "gpu_heal",
		OpGPUReclaim: "gpu_reclaim", OpGPUReturn: "gpu_return",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
}
