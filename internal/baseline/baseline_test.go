package baseline

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func corpus(n int) []workload.Image {
	return workload.GenImages(rand.New(rand.NewSource(1)), n, 1<<20, 10*time.Millisecond, 0.2)
}

func TestStaticPipelineBalanced(t *testing.T) {
	k := sim.NewKernel(1)
	c := cluster.New(k, simnet.DefaultConfig())
	m0 := c.AddMachine(cluster.MachineConfig{Cores: 4, MemBytes: 1 << 30})
	m1 := c.AddMachine(cluster.MachineConfig{Cores: 4, MemBytes: 1 << 30})
	imgs := corpus(400)
	res := StaticPipeline(k, []*cluster.Machine{m0, m1}, imgs, []float64{0.5, 0.5})
	if res.OOM != nil {
		t.Fatalf("unexpected OOM: %v", res.OOM)
	}
	// ~400 x 10ms / 8 cores = ~0.5s.
	got := res.Completion.Seconds()
	if got < 0.4 || got > 0.7 {
		t.Errorf("completion = %vs, want ~0.5s", got)
	}
	if m0.MemUsed() != 0 || m1.MemUsed() != 0 {
		t.Error("memory not released")
	}
}

func TestStaticPipelineOOMOnMemImbalance(t *testing.T) {
	// Mem-unbalanced: machine 0 has 100 MiB but must hold ~200 MiB.
	k := sim.NewKernel(1)
	c := cluster.New(k, simnet.DefaultConfig())
	m0 := c.AddMachine(cluster.MachineConfig{Cores: 4, MemBytes: 100 << 20})
	m1 := c.AddMachine(cluster.MachineConfig{Cores: 4, MemBytes: 1 << 30})
	imgs := corpus(400)
	res := StaticPipeline(k, []*cluster.Machine{m0, m1}, imgs, []float64{0.5, 0.5})
	if !errors.Is(res.OOM, cluster.ErrNoMemory) {
		t.Fatalf("OOM = %v, want ErrNoMemory", res.OOM)
	}
	if m0.MemUsed() != 0 || m1.MemUsed() != 0 {
		t.Error("memory leaked after failed run")
	}
}

func TestStaticPipelineStrandsCPUOnCPUImbalance(t *testing.T) {
	// CPU-unbalanced with memory-proportional partitioning: the 2-core
	// machine takes half the work and dominates completion time while
	// the 14-core machine idles — stranded CPU.
	k := sim.NewKernel(1)
	c := cluster.New(k, simnet.DefaultConfig())
	m0 := c.AddMachine(cluster.MachineConfig{Cores: 2, MemBytes: 1 << 30})
	m1 := c.AddMachine(cluster.MachineConfig{Cores: 14, MemBytes: 1 << 30})
	imgs := corpus(400)
	res := StaticPipeline(k, []*cluster.Machine{m0, m1}, imgs, []float64{0.5, 0.5})
	if res.OOM != nil {
		t.Fatalf("OOM: %v", res.OOM)
	}
	// Ideal on 16 pooled cores: 4s/16 = 0.25s. Static: half the work on
	// 2 cores = ~1s. The static run must be at least ~3x worse.
	if res.Completion.Seconds() < 0.75 {
		t.Errorf("completion = %vs; static partitioning should strand CPU (~1s)", res.Completion.Seconds())
	}
}

func TestCoarseAppMovesSlowly(t *testing.T) {
	s := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
		{Cores: 8, MemBytes: 8 << 30},
		{Cores: 8, MemBytes: 8 << 30},
	})
	ca, err := NewCoarseApp(s, "vm", 0, 4, 2<<30, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ca.StartMonitor()
	var feed func(cp *core.ComputeProclet)
	feed = func(cp *core.ComputeProclet) {
		cp.Run(func(tc *core.TaskCtx) {
			tc.Compute(time.Millisecond)
			feed(tc.ComputeProclet())
		})
	}
	feed(ca.Compute())
	// Reserve machine 0 fully at t=100ms.
	s.K.Schedule(sim.Time(100*time.Millisecond), func() { s.Cluster.Machine(0).SetReserved(8) })
	s.K.RunUntil(sim.Time(300 * time.Millisecond))
	if ca.Location() != 0 {
		t.Fatal("coarse app moved before its monitor period elapsed")
	}
	s.K.RunUntil(sim.Time(1200 * time.Millisecond))
	ca.Stop()
	if ca.Location() != 1 || ca.Moves != 1 {
		t.Fatalf("loc=%d moves=%d, want moved to 1 once", ca.Location(), ca.Moves)
	}
	// The move itself must be slow: 2 GiB over 12.5 GB/s ~ 170ms.
	if lat := s.Runtime.MigrationLatency.Max(); lat < 0.1 {
		t.Errorf("coarse migration took %vs, want >= 100ms", lat)
	}
}
