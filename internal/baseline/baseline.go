// Package baseline implements the non-fungible systems Quicksand is
// compared against in the experiments:
//
//   - StaticPipeline: the classic cloud deployment for the Figure 2
//     case study — each machine independently holds a partition of the
//     input in its own RAM and processes it with its own cores. No
//     resource can be used across machine boundaries, so imbalanced
//     machines either run out of memory or strand CPU.
//   - CoarseApp: a VM/container-grained application for Figure 1 — one
//     monolithic unit with gigabytes of state and a slow monitor, so
//     migration takes hundreds of milliseconds and reacts in seconds,
//     far too coarse to harvest 10 ms idle windows.
package baseline

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// StaticResult reports one static-pipeline run.
type StaticResult struct {
	// Completion is the virtual time at which the last machine
	// finished, zero if the run failed.
	Completion sim.Time
	// OOM is non-nil when some partition did not fit its machine.
	OOM error
	// PerMachine is each machine's own finish time.
	PerMachine []sim.Time
}

// StaticPipeline runs the image-preprocessing stage as a non-fungible
// application: the corpus is split across machines in the given
// fractions (which must sum to ~1); machine i loads its partition into
// local RAM and processes it with local cores only. Returns the
// completion time, or an OOM error when a partition exceeds a
// machine's memory — the paper's "run out of memory or underutilize
// CPUs" dichotomy.
//
// The run owns the kernel: it spawns processes and runs the simulation
// to completion.
func StaticPipeline(k *sim.Kernel, machines []*cluster.Machine, imgs []workload.Image, frac []float64) StaticResult {
	if len(machines) != len(frac) {
		panic("baseline: fractions must match machines")
	}
	var sum float64
	for _, f := range frac {
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		panic(fmt.Sprintf("baseline: fractions sum to %v", sum))
	}

	res := StaticResult{PerMachine: make([]sim.Time, len(machines))}

	// Partition the corpus contiguously by fraction.
	bounds := make([]int, len(machines)+1)
	for i := range machines {
		bounds[i+1] = bounds[i] + int(float64(len(imgs))*frac[i]+0.5)
	}
	bounds[len(machines)] = len(imgs)

	// Check and charge memory up front (the static app must hold its
	// partition resident, like the Quicksand pipeline holds the
	// sharded vector).
	charged := make([]int64, len(machines))
	for i, m := range machines {
		var bytes int64
		for _, im := range imgs[bounds[i]:bounds[i+1]] {
			bytes += im.Bytes
		}
		if err := m.AllocMem(bytes); err != nil {
			for j := 0; j < i; j++ {
				machines[j].FreeMem(charged[j])
			}
			res.OOM = fmt.Errorf("baseline: partition %d (%d bytes): %w", i, bytes, err)
			return res
		}
		charged[i] = bytes
	}

	var wg sim.WaitGroup
	for i, m := range machines {
		i, m := i, m
		part := imgs[bounds[i]:bounds[i+1]]
		workers := int(m.Cores())
		if workers < 1 {
			workers = 1
		}
		wg.Add(workers)
		next := 0
		for w := 0; w < workers; w++ {
			k.Spawn(fmt.Sprintf("static-m%d-w%d", m.ID, w), func(p *sim.Proc) {
				defer wg.Done()
				for next < len(part) {
					im := part[next]
					next++
					m.Exec(p, im.CPU)
				}
				if p.Now() > res.PerMachine[i] {
					res.PerMachine[i] = p.Now()
				}
			})
		}
	}
	k.Spawn("static-join", func(p *sim.Proc) {
		wg.Wait(p)
		res.Completion = p.Now()
		for i, m := range machines {
			m.FreeMem(charged[i])
		}
	})
	k.Run()
	return res
}

// CoarseApp is a monolithic, VM-grained application: all of its work
// and state live in one unit that can only move wholesale. Its monitor
// polls at a coarse period (seconds in real clouds); its state is
// large (a VM or container image plus heap), so each move costs
// hundreds of milliseconds of copying.
type CoarseApp struct {
	sys *core.System
	cp  *core.ComputeProclet

	// MonitorPeriod is how often the orchestrator checks placement.
	MonitorPeriod time.Duration
	// Moves counts completed migrations.
	Moves int64

	stopped bool
}

// NewCoarseApp creates a coarse application with `workers` threads and
// stateBytes of monolithic state on machine m. It is pinned so
// Quicksand's reactors leave it alone; only its own slow monitor moves
// it.
func NewCoarseApp(sys *core.System, name string, m cluster.MachineID, workers int, stateBytes int64, monitorPeriod time.Duration) (*CoarseApp, error) {
	cp, err := core.NewComputeProcletOn(sys, name, m, workers)
	if err != nil {
		return nil, err
	}
	if err := cp.Proclet().GrowHeap(stateBytes - cp.Proclet().HeapBytes()); err != nil {
		return nil, err
	}
	sys.Sched.Pin(cp.ID())
	return &CoarseApp{sys: sys, cp: cp, MonitorPeriod: monitorPeriod}, nil
}

// Compute returns the underlying compute proclet (submit work with Run).
func (ca *CoarseApp) Compute() *core.ComputeProclet { return ca.cp }

// Location returns the current machine.
func (ca *CoarseApp) Location() cluster.MachineID { return ca.cp.Location() }

// StartMonitor launches the slow reprovisioning loop: every
// MonitorPeriod, if the app's machine has no available cores and some
// other machine does, move there (paying the full state copy).
func (ca *CoarseApp) StartMonitor() {
	ca.sys.K.Spawn("coarse-monitor", func(p *sim.Proc) {
		for !ca.stopped {
			p.Sleep(ca.MonitorPeriod)
			here := ca.sys.Cluster.Machine(ca.cp.Location())
			if here.AvailCores() > 0 {
				continue
			}
			var best *cluster.Machine
			for _, m := range ca.sys.Cluster.Machines() {
				if m.ID == here.ID || m.AvailCores() <= 0 {
					continue
				}
				if m.MemFree() < ca.cp.Proclet().HeapBytes() {
					continue
				}
				if best == nil || m.AvailCores() > best.AvailCores() {
					best = m
				}
			}
			if best == nil {
				continue
			}
			if err := ca.sys.Runtime.Migrate(p, ca.cp.ID(), best.ID); err == nil {
				ca.Moves++
			}
		}
	})
}

// Stop ends the monitor at its next tick.
func (ca *CoarseApp) Stop() { ca.stopped = true }
