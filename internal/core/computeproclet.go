package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrPoolLimit is returned when Grow/Shrink would exceed pool bounds.
var ErrPoolLimit = errors.New("core: pool size limit reached")

// TaskFn is one unit of work executed by a compute proclet. It runs on
// a proclet thread, so its Compute calls follow the proclet across
// migrations.
type TaskFn func(tc *TaskCtx)

// TaskCtx gives a running task access to its execution environment.
type TaskCtx struct {
	thread *proclet.Thread
	cp     *ComputeProclet
}

// Proc returns the simulated process executing the task.
func (tc *TaskCtx) Proc() *sim.Proc { return tc.thread.Proc() }

// Compute burns d of single-core CPU on the proclet's current machine,
// following migrations.
func (tc *TaskCtx) Compute(d time.Duration) { tc.thread.Compute(d) }

// Machine returns the machine currently hosting the compute proclet.
func (tc *TaskCtx) Machine() cluster.MachineID { return tc.cp.pr.Location() }

// System returns the owning system.
func (tc *TaskCtx) System() *System { return tc.cp.sys }

// ComputeProclet returns the proclet executing the task.
func (tc *TaskCtx) ComputeProclet() *ComputeProclet { return tc.cp }

// ComputeProclet is a resource proclet specialized for computation
// (§3.1): a task queue drained by worker threads, with an almost-empty
// heap so migration is fast. It exposes Run(lambda); oversized proclets
// split by dividing the task queue (§3.3).
type ComputeProclet struct {
	sys  *System
	pr   *proclet.Proclet
	pool *Pool // nil for standalone proclets

	// queue[qHead:] holds pending tasks; popping advances qHead so the
	// backing array's capacity is reused across drain cycles instead of
	// being abandoned by reslicing from the front.
	queue    []TaskFn
	qHead    int
	qCond    sim.Cond
	workers  int
	running  int // tasks currently executing
	stopping bool
	idle     sim.Cond // signaled when queue empty and nothing running

	executed int64

	// Queueing-delay telemetry (off by default; enabled when the system
	// samples telemetry). qTimes mirrors queue index-for-index with each
	// task's enqueue time; popFront folds the waits into waitSumNS, and
	// sampleQueueDelayMS drains the accumulator per sampling interval.
	delayTrack bool
	qTimes     []sim.Time
	waitSumNS  int64
	waitN      int64
}

// enableDelayTracking starts queue-delay accounting, backfilling
// already-enqueued tasks with the current time.
func (cp *ComputeProclet) enableDelayTracking() {
	if cp.delayTrack {
		return
	}
	cp.delayTrack = true
	now := cp.sys.K.Now()
	cp.qTimes = make([]sim.Time, len(cp.queue))
	for i := range cp.qTimes {
		cp.qTimes[i] = now
	}
}

// sampleQueueDelayMS returns the mean queueing delay (enqueue to
// dequeue) of tasks popped since the previous sample, in milliseconds,
// and resets the accumulator.
func (cp *ComputeProclet) sampleQueueDelayMS() float64 {
	if cp.waitN == 0 {
		return 0
	}
	mean := float64(cp.waitSumNS) / float64(cp.waitN) / 1e6
	cp.waitSumNS, cp.waitN = 0, 0
	return mean
}

// NewComputeProcletOn creates a compute proclet with the given number
// of worker threads on an explicit machine.
func NewComputeProcletOn(sys *System, name string, m cluster.MachineID, workers int) (*ComputeProclet, error) {
	if workers <= 0 {
		panic("core: compute proclet needs at least one worker")
	}
	pr, err := sys.Runtime.Spawn(name, m, sys.cfg.ComputeProcletHeap)
	if err != nil {
		return nil, err
	}
	cp := &ComputeProclet{sys: sys, pr: pr, workers: workers}
	pr.Data = cp
	sys.Sched.register(pr, KindCompute)
	sys.registerComputeTelemetry(cp)
	for i := 0; i < workers; i++ {
		pr.SpawnThread("worker", cp.workerLoop)
	}
	return cp, nil
}

// registerComputeTelemetry adds the proclet's queue gauges to the
// telemetry registry (no-op when telemetry is disabled). machine -1:
// compute proclets move, so their series live on the control plane
// track.
func (s *System) registerComputeTelemetry(cp *ComputeProclet) {
	if s.Tel == nil {
		return
	}
	cp.enableDelayTracking()
	name := cp.pr.Name()
	s.Tel.Register("proclet."+name+".qdelay_ms", -1, cp.sampleQueueDelayMS)
	s.Tel.Register("proclet."+name+".qlen", -1, func() float64 {
		return float64(cp.QueueLen())
	})
}

// NewComputeProclet creates a compute proclet, letting the scheduler
// pick the least-loaded machine.
func (s *System) NewComputeProclet(name string, workers int) (*ComputeProclet, error) {
	m, err := s.Sched.PlaceCompute()
	if err != nil {
		return nil, err
	}
	return NewComputeProcletOn(s, name, m, workers)
}

func (cp *ComputeProclet) workerLoop(t *proclet.Thread) {
	// One TaskCtx per worker thread: both fields are invariant for the
	// thread's lifetime, so handing every task the same context avoids a
	// heap allocation per task.
	ctx := TaskCtx{thread: t, cp: cp}
	for {
		for cp.QueueLen() == 0 && !cp.stopping {
			// Idle worker: steal from a pool sibling before parking.
			if cp.pool != nil && cp.pool.stealFor(cp) {
				break
			}
			cp.qCond.Wait(t.Proc())
		}
		if cp.QueueLen() == 0 && cp.stopping {
			return
		}
		fn := cp.popFront()
		cp.running++
		fn(&ctx)
		cp.running--
		cp.executed++
		if cp.running == 0 && cp.QueueLen() == 0 {
			cp.idle.Broadcast()
		}
	}
}

// popFront removes and returns the oldest pending task. The drained
// prefix is reused once the queue empties (or compacted when it grows
// large), keeping steady-state enqueueing allocation-free.
func (cp *ComputeProclet) popFront() TaskFn {
	fn := cp.queue[cp.qHead]
	cp.queue[cp.qHead] = nil // release the closure for GC
	if cp.delayTrack {
		cp.waitSumNS += int64(cp.sys.K.Now().Sub(cp.qTimes[cp.qHead]))
		cp.waitN++
	}
	cp.qHead++
	if cp.qHead == len(cp.queue) {
		cp.queue = cp.queue[:0]
		if cp.delayTrack {
			cp.qTimes = cp.qTimes[:0]
		}
		cp.qHead = 0
	} else if cp.qHead >= 1024 && cp.qHead*2 >= len(cp.queue) {
		n := copy(cp.queue, cp.queue[cp.qHead:])
		cp.queue = cp.queue[:n]
		if cp.delayTrack {
			copy(cp.qTimes, cp.qTimes[cp.qHead:])
			cp.qTimes = cp.qTimes[:n]
		}
		cp.qHead = 0
	}
	return fn
}

// Run enqueues a task (§3.1's Run(lambda)). Safe to call from kernel
// context or any simulated process; enqueueing itself is free. Tasks
// submitted to a pool member that is being merged away are redirected
// to the pool's surviving members.
func (cp *ComputeProclet) Run(fn TaskFn) {
	if cp.stopping {
		if cp.pool != nil {
			cp.pool.Run(fn)
			return
		}
		panic(fmt.Sprintf("core: Run on stopping compute proclet %s", cp.pr.Name()))
	}
	cp.queue = append(cp.queue, fn)
	if cp.delayTrack {
		cp.qTimes = append(cp.qTimes, cp.sys.K.Now())
	}
	cp.qCond.Signal()
}

// Proclet returns the underlying proclet.
func (cp *ComputeProclet) Proclet() *proclet.Proclet { return cp.pr }

// ID returns the underlying proclet ID.
func (cp *ComputeProclet) ID() proclet.ID { return cp.pr.ID() }

// Location returns the current machine.
func (cp *ComputeProclet) Location() cluster.MachineID { return cp.pr.Location() }

// QueueLen returns pending (not yet started) tasks.
func (cp *ComputeProclet) QueueLen() int { return len(cp.queue) - cp.qHead }

// Running returns tasks currently executing.
func (cp *ComputeProclet) Running() int { return cp.running }

// Executed returns completed task count.
func (cp *ComputeProclet) Executed() int64 { return cp.executed }

// Workers returns the worker thread count.
func (cp *ComputeProclet) Workers() int { return cp.workers }

// Demand reports the proclet's CPU demand in cores for the scheduler:
// the number of workers that have work to do.
func (cp *ComputeProclet) Demand() float64 {
	want := cp.running + cp.QueueLen()
	if want > cp.workers {
		want = cp.workers
	}
	return float64(want)
}

// WaitIdle blocks until the proclet has no queued or running tasks.
func (cp *ComputeProclet) WaitIdle(p *sim.Proc) {
	for cp.QueueLen() > 0 || cp.running > 0 {
		cp.idle.Wait(p)
	}
}

// stealHalf removes the back half of the pending queue (the newest
// tasks) and returns it; used when splitting.
func (cp *ComputeProclet) stealHalf() []TaskFn {
	n := cp.QueueLen() / 2
	if n == 0 {
		return nil
	}
	stolen := make([]TaskFn, n)
	copy(stolen, cp.queue[len(cp.queue)-n:])
	cp.queue = cp.queue[:len(cp.queue)-n]
	if cp.delayTrack {
		cp.qTimes = cp.qTimes[:len(cp.queue)]
	}
	return stolen
}

// drainAll removes and returns the entire pending queue (merging).
func (cp *ComputeProclet) drainAll() []TaskFn {
	q := cp.queue[cp.qHead:]
	cp.queue, cp.qHead = nil, 0
	cp.qTimes = nil
	return q
}

// shutdown drains running work and destroys the proclet. Pending tasks
// must already have been moved elsewhere.
func (cp *ComputeProclet) shutdown(p *sim.Proc) error {
	if cp.QueueLen() > 0 {
		panic("core: shutdown with pending tasks")
	}
	cp.stopping = true
	cp.qCond.Broadcast()
	for cp.running > 0 {
		cp.idle.Wait(p)
	}
	cp.sys.Sched.unregister(cp.pr.ID())
	return cp.sys.Runtime.Destroy(cp.pr.ID())
}

// Pool is an elastic group of compute proclets behind a single Run
// interface. Growing splits the busiest member's task queue into a new
// proclet (placed only where idle CPU exists, per §3.3); shrinking
// merges a member's queue into its siblings and retires it.
type Pool struct {
	sys        *System
	name       string
	workersPer int
	minSize    int
	maxSize    int
	members    []*ComputeProclet
	nextName   int
	rr         int

	// Splits and Merges count adaptation actions; Steals counts tasks
	// moved by idle workers stealing from loaded siblings.
	Splits int64
	Merges int64
	Steals int64
}

// NewPool creates a pool with `initial` members of workersPer threads
// each. minSize/maxSize bound adaptation (maxSize<=0 means unbounded).
func (s *System) NewPool(name string, workersPer, initial, minSize, maxSize int) (*Pool, error) {
	if initial < 1 || workersPer < 1 {
		panic("core: pool needs at least one member and one worker")
	}
	if minSize < 1 {
		minSize = 1
	}
	pl := &Pool{sys: s, name: name, workersPer: workersPer, minSize: minSize, maxSize: maxSize}
	for i := 0; i < initial; i++ {
		if _, err := pl.addMember(); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

func (pl *Pool) addMember() (*ComputeProclet, error) {
	pl.nextName++
	cp, err := pl.sys.NewComputeProclet(fmt.Sprintf("%s-%d", pl.name, pl.nextName), pl.workersPer)
	if err != nil {
		return nil, err
	}
	cp.pool = pl
	pl.members = append(pl.members, cp)
	return cp, nil
}

// Name returns the pool's name.
func (pl *Pool) Name() string { return pl.name }

// Size returns the current member count.
func (pl *Pool) Size() int { return len(pl.members) }

// Members returns the member proclets (not a copy).
func (pl *Pool) Members() []*ComputeProclet { return pl.members }

// Run dispatches a task to the member with the shortest backlog,
// breaking ties round-robin.
func (pl *Pool) Run(fn TaskFn) {
	best := -1
	bestLen := int(^uint(0) >> 1)
	n := len(pl.members)
	for i := 0; i < n; i++ {
		idx := (pl.rr + i) % n
		if l := pl.members[idx].QueueLen() + pl.members[idx].Running(); l < bestLen {
			best, bestLen = idx, l
		}
	}
	pl.rr = (pl.rr + 1) % n
	pl.members[best].Run(fn)
}

// QueueLen returns total pending tasks across members.
func (pl *Pool) QueueLen() int {
	var sum int
	for _, m := range pl.members {
		sum += m.QueueLen()
	}
	return sum
}

// TotalExecuted sums completed tasks across current members.
func (pl *Pool) TotalExecuted() int64 {
	var sum int64
	for _, m := range pl.members {
		sum += m.Executed()
	}
	return sum
}

// WaitIdle blocks until every member is idle.
func (pl *Pool) WaitIdle(p *sim.Proc) {
	for _, m := range pl.members {
		m.WaitIdle(p)
	}
}

// Grow splits the pool: a new compute proclet is created on a machine
// with idle CPU and takes half the busiest member's pending queue. It
// reports false (without error) when the cluster has no spare CPU —
// the paper's guard against creating excessive compute proclets.
func (pl *Pool) Grow(p *sim.Proc) (bool, error) {
	if pl.maxSize > 0 && len(pl.members) >= pl.maxSize {
		return false, nil
	}
	if _, err := pl.sys.Sched.PlaceComputeIdle(); err != nil {
		return false, nil // no idle CPU anywhere: do not split
	}
	victim := pl.busiest()
	var sp obs.SpanID
	if pl.sys.Obs != nil {
		sp = pl.sys.Obs.Start(obs.KindSplit, pl.name, int(victim.Location()), 0)
	}
	cp, err := pl.addMember()
	if err != nil {
		if pl.sys.Obs != nil {
			pl.sys.Obs.SetErr(sp, err)
			pl.sys.Obs.End(sp)
		}
		return false, err
	}
	for _, fn := range victim.stealHalf() {
		cp.Run(fn)
	}
	pl.Splits++
	pl.sys.Trace.Emitf(pl.sys.K.Now(), trace.KindSplit, pl.name,
		int(victim.Location()), int(cp.Location()), "members=%d", len(pl.members))
	if pl.sys.Obs != nil {
		pl.sys.Obs.SetRoute(sp, int(victim.Location()), int(cp.Location()))
		pl.sys.Obs.Num(sp, "members", float64(len(pl.members)))
		pl.sys.Obs.End(sp)
	}
	return true, nil
}

// Shrink merges the pool: the least-loaded member's pending tasks move
// to its siblings immediately; the member itself retires in the
// background once its running tasks drain, so a controller can issue
// several merges per tick without serializing on task completions.
// It reports false when the pool is at its minimum size.
func (pl *Pool) Shrink(p *sim.Proc) (bool, error) {
	if len(pl.members) <= pl.minSize {
		return false, nil
	}
	vIdx := pl.emptiestIdx()
	victim := pl.members[vIdx]
	pl.members = append(pl.members[:vIdx], pl.members[vIdx+1:]...)
	pending := victim.drainAll()
	for _, fn := range pending {
		pl.Run(fn)
	}
	loc := victim.Location()
	var sp obs.SpanID
	if pl.sys.Obs != nil {
		sp = pl.sys.Obs.Start(obs.KindMerge, pl.name, int(loc), 0)
		pl.sys.Obs.Num(sp, "members", float64(len(pl.members)))
		pl.sys.Obs.Num(sp, "moved", float64(len(pending)))
	}
	pl.sys.K.Spawn("pool-retire", func(rp *sim.Proc) {
		victim.shutdown(rp)
	})
	pl.Merges++
	pl.sys.Trace.Emitf(pl.sys.K.Now(), trace.KindMerge, pl.name,
		int(loc), -1, "members=%d moved=%d", len(pl.members), len(pending))
	pl.sys.Obs.End(sp)
	return true, nil
}

// stealFor moves half of the busiest sibling's pending queue to the
// idle member cp. It reports whether any tasks moved. Task closures
// are tiny, so the transfer itself is free; the *data* the stolen
// tasks touch still pays its own access costs wherever it lives.
func (pl *Pool) stealFor(cp *ComputeProclet) bool {
	var victim *ComputeProclet
	for _, m := range pl.members {
		if m == cp || m.QueueLen() < 2 {
			continue
		}
		if victim == nil || m.QueueLen() > victim.QueueLen() {
			victim = m
		}
	}
	if victim == nil {
		return false
	}
	stolen := victim.stealHalf()
	if len(stolen) == 0 {
		return false
	}
	cp.queue = append(cp.queue, stolen...)
	if cp.delayTrack {
		now := cp.sys.K.Now()
		for range stolen {
			cp.qTimes = append(cp.qTimes, now)
		}
	}
	pl.Steals += int64(len(stolen))
	return true
}

func (pl *Pool) busiest() *ComputeProclet {
	best := pl.members[0]
	for _, m := range pl.members[1:] {
		if m.QueueLen() > best.QueueLen() {
			best = m
		}
	}
	return best
}

func (pl *Pool) emptiestIdx() int {
	best := 0
	for i, m := range pl.members {
		if m.QueueLen()+m.Running() < pl.members[best].QueueLen()+pl.members[best].Running() {
			best = i
		}
	}
	return best
}
