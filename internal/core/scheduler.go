package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrNoCapacity is returned when no machine can host a placement.
var ErrNoCapacity = errors.New("core: no machine has capacity")

// Kind classifies a resource proclet for placement policy.
type Kind int

// Resource proclet kinds.
const (
	KindCompute Kind = iota
	KindMemory
	KindStorage
	KindOther
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindMemory:
		return "memory"
	case KindStorage:
		return "storage"
	default:
		return "other"
	}
}

// demander is implemented by resource proclets that consume CPU; the
// scheduler reads it to estimate per-proclet core demand.
type demander interface{ Demand() float64 }

// workerser exposes a compute proclet's thread count — its capacity
// commitment, used to spread still-idle proclets at placement time.
type workerser interface{ Workers() int }

// procInfo is the scheduler's view of one registered proclet.
type procInfo struct {
	pr     *proclet.Proclet
	kind   Kind
	pinned bool
}

// demand returns the proclet's current core demand.
func (pi *procInfo) demand() float64 {
	if d, ok := pi.pr.Data.(demander); ok {
		return d.Demand()
	}
	return 0
}

// Adaptive is a split/merge policy evaluated periodically by the
// scheduler (sharded structures and pools implement it).
type Adaptive interface {
	Adapt(p *sim.Proc)
}

// Scheduler is Quicksand's two-level control plane (§5): fast
// per-machine reactors absorb usage spikes by evacuating proclets
// within a millisecond, while a slow global loop rebalances long-term
// load and colocates proclets with high communication affinity.
type Scheduler struct {
	sys     *System
	cfg     Config
	info    map[proclet.ID]*procInfo
	adapts  []Adaptive
	started bool

	// Counters for control-plane activity.
	Evacuations   metrics.Counter // fast-path CPU evacuations
	MemEvictions  metrics.Counter // fast-path memory evacuations
	Rebalances    metrics.Counter // slow-path load moves
	AffinityMoves metrics.Counter // slow-path colocation moves
	Recoveries    metrics.Counter // crash orphans successfully re-placed
	Sheds         metrics.Counter // crash orphans abandoned for lack of capacity
}

func newScheduler(sys *System) *Scheduler {
	return &Scheduler{
		sys:  sys,
		cfg:  sys.cfg,
		info: make(map[proclet.ID]*procInfo),
	}
}

// register is called by resource proclet constructors.
func (sc *Scheduler) register(pr *proclet.Proclet, kind Kind) {
	sc.info[pr.ID()] = &procInfo{pr: pr, kind: kind}
}

func (sc *Scheduler) unregister(id proclet.ID) { delete(sc.info, id) }

// RegisterProclet registers a resource proclet built outside package
// core (for example storage proclets) for placement and migration.
func (sc *Scheduler) RegisterProclet(pr *proclet.Proclet, kind Kind) { sc.register(pr, kind) }

// UnregisterProclet removes a proclet from scheduler control.
func (sc *Scheduler) UnregisterProclet(id proclet.ID) { sc.unregister(id) }

// Pin excludes a proclet from automatic migration (index proclets,
// queue endpoints wired to fixed hardware).
func (sc *Scheduler) Pin(id proclet.ID) {
	if pi, ok := sc.info[id]; ok {
		pi.pinned = true
	}
}

// RegisterAdaptive adds a split/merge policy to the adaptation loop.
func (sc *Scheduler) RegisterAdaptive(a Adaptive) { sc.adapts = append(sc.adapts, a) }

// start launches the reactor, global, and adaptation processes.
func (sc *Scheduler) start() {
	if sc.started {
		panic("core: scheduler started twice")
	}
	sc.started = true
	k := sc.sys.K
	if !sc.cfg.DisableFastPath {
		for _, m := range sc.sys.Cluster.Machines() {
			m := m
			k.Spawn(fmt.Sprintf("sched/reactor-%d", m.ID), func(p *sim.Proc) {
				for {
					p.Sleep(sc.cfg.LocalPeriod)
					sc.reactCPU(p, m)
					sc.reactMem(p, m)
				}
			})
		}
	}
	if !sc.cfg.DisableSlowPath {
		k.Spawn("sched/global", func(p *sim.Proc) {
			for {
				p.Sleep(sc.cfg.GlobalPeriod)
				sc.rebalance(p)
				sc.colocate(p)
			}
		})
	}
	k.Spawn("sched/adapt", func(p *sim.Proc) {
		for {
			p.Sleep(sc.cfg.AdaptPeriod)
			for _, a := range sc.adapts {
				a.Adapt(p)
			}
		}
	})
}

// ---- Placement ----

// PlaceMemory returns the machine with the most free memory that can
// hold `bytes`.
func (sc *Scheduler) PlaceMemory(bytes int64) (cluster.MachineID, error) {
	var best *cluster.Machine
	for _, m := range sc.sys.Cluster.Machines() {
		if m.Down() || m.MemFree() < bytes {
			continue
		}
		if best == nil || m.MemFree() > best.MemFree() {
			best = m
		}
	}
	if best == nil {
		return 0, fmt.Errorf("%w: memory for %d bytes", ErrNoCapacity, bytes)
	}
	return best.ID, nil
}

// PlaceMemoryExcluding is PlaceMemory restricted to machines outside
// `exclude` — anti-affine placement for replicas, which are worthless
// on a machine already hosting a copy of the same data.
func (sc *Scheduler) PlaceMemoryExcluding(bytes int64, exclude map[cluster.MachineID]bool) (cluster.MachineID, error) {
	var best *cluster.Machine
	for _, m := range sc.sys.Cluster.Machines() {
		if exclude[m.ID] || m.Down() || m.MemFree() < bytes {
			continue
		}
		if best == nil || m.MemFree() > best.MemFree() {
			best = m
		}
	}
	if best == nil {
		return 0, fmt.Errorf("%w: anti-affine memory for %d bytes", ErrNoCapacity, bytes)
	}
	return best.ID, nil
}

// computeLoad estimates machine m's best-effort CPU load: registered
// compute demand over available cores.
func (sc *Scheduler) computeLoad(m *cluster.Machine, extra float64) float64 {
	avail := m.AvailCores()
	if avail <= 0 {
		return math.Inf(1)
	}
	return (sc.demandOn(m.ID) + extra) / avail
}

// demandOn sums registered compute demand currently placed on machine m.
func (sc *Scheduler) demandOn(m cluster.MachineID) float64 {
	var sum float64
	for _, pi := range sc.info {
		if pi.kind == KindCompute && pi.pr.Location() == m {
			sum += pi.demand()
		}
	}
	return sum
}

// workersOn sums compute worker threads placed on machine m.
func (sc *Scheduler) workersOn(m cluster.MachineID) float64 {
	var sum float64
	for _, pi := range sc.info {
		if pi.kind == KindCompute && pi.pr.Location() == m {
			if w, ok := pi.pr.Data.(workerser); ok {
				sum += float64(w.Workers())
			}
		}
	}
	return sum
}

// placementLoad is computeLoad with capacity commitments included, so
// freshly created (still idle) proclets spread across machines instead
// of piling onto one.
func (sc *Scheduler) placementLoad(m *cluster.Machine, extra float64) float64 {
	avail := m.AvailCores()
	if avail <= 0 {
		return math.Inf(1)
	}
	commit := sc.demandOn(m.ID)
	if w := sc.workersOn(m.ID); w > commit {
		commit = w
	}
	return (commit + extra) / avail
}

// PlaceCompute returns the machine with the lowest CPU load (counting
// capacity commitments of idle proclets) that has available cores and
// room for a compute proclet heap.
func (sc *Scheduler) PlaceCompute() (cluster.MachineID, error) {
	var best *cluster.Machine
	bestLoad := math.Inf(1)
	for _, m := range sc.sys.Cluster.Machines() {
		if m.Down() || m.AvailCores() <= 0 || m.MemFree() < sc.cfg.ComputeProcletHeap {
			continue
		}
		if l := sc.placementLoad(m, 0); l < bestLoad {
			best, bestLoad = m, l
		}
	}
	if best == nil {
		return 0, fmt.Errorf("%w: compute", ErrNoCapacity)
	}
	return best.ID, nil
}

// PlaceComputeIdle is PlaceCompute restricted to machines with idle CPU
// (load under 1). Splits use it: a new compute proclet is only worth
// creating where spare cycles exist (§3.3).
func (sc *Scheduler) PlaceComputeIdle() (cluster.MachineID, error) {
	id, err := sc.PlaceCompute()
	if err != nil {
		return 0, err
	}
	m := sc.sys.Cluster.Machine(id)
	if sc.placementLoad(m, 1) > 1 {
		return 0, fmt.Errorf("%w: no idle CPU", ErrNoCapacity)
	}
	return id, nil
}

// ---- Fast path: per-machine reactors ----

// movableOn lists non-pinned, running proclets of a kind on machine m,
// smallest heap first (cheapest to migrate).
func (sc *Scheduler) movableOn(m cluster.MachineID, kind Kind) []*procInfo {
	var out []*procInfo
	for _, pi := range sc.info {
		if pi.kind == kind && !pi.pinned &&
			pi.pr.Location() == m && pi.pr.State() == proclet.StateRunning {
			out = append(out, pi)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pr.HeapBytes() != out[j].pr.HeapBytes() {
			return out[i].pr.HeapBytes() < out[j].pr.HeapBytes()
		}
		return out[i].pr.ID() < out[j].pr.ID()
	})
	return out
}

// reactCPU evacuates compute proclets from an overloaded machine,
// launching the migrations in parallel and waiting for them all.
func (sc *Scheduler) reactCPU(p *sim.Proc, m *cluster.Machine) {
	if m.Down() {
		return
	}
	avail := m.AvailCores()
	demand := sc.demandOn(m.ID)
	if demand <= avail*sc.cfg.CPUHighWater {
		return
	}
	victims := sc.movableOn(m.ID, KindCompute)
	if len(victims) == 0 {
		return
	}
	// Projected demand added to each target this round.
	added := make(map[cluster.MachineID]float64)
	var wg sim.WaitGroup
	launched := 0
	var sp obs.SpanID
	for _, v := range victims {
		if demand <= avail || demand <= avail*sc.cfg.CPUHighWater {
			break
		}
		d := v.demand()
		if d == 0 {
			continue
		}
		target := sc.pickCPUTarget(m.ID, d, added, v.pr.HeapBytes())
		if target < 0 {
			break
		}
		if sc.sys.Obs != nil && sp == 0 {
			// The pressure episode: every evacuation it launches is a
			// child span, so traces answer "why did this proclet move".
			sp = sc.sys.Obs.Start(obs.KindPressure, "cpu", int(m.ID), 0)
			sc.sys.Obs.Num(sp, "demand", demand)
			sc.sys.Obs.Num(sp, "avail", avail)
			if avail > 0 {
				sc.sys.Obs.Num(sp, "pressure", demand/avail)
			}
		}
		added[target] += d
		demand -= d
		id := v.pr.ID()
		cause := sp
		wg.Add(1)
		launched++
		sc.sys.K.Spawn("sched/evacuate", func(mp *sim.Proc) {
			defer wg.Done()
			if err := sc.sys.Runtime.MigrateCaused(mp, id, target, cause); err == nil {
				sc.Evacuations.Inc()
			}
		})
	}
	if launched > 0 {
		sc.sys.Trace.Emitf(sc.sys.K.Now(), trace.KindPressure, fmt.Sprintf("m%d", m.ID),
			int(m.ID), -1, "cpu evacuating %d proclets", launched)
		wg.Wait(p)
	}
	sc.sys.Obs.End(sp)
}

// pickCPUTarget finds the machine (other than src) that can absorb d
// cores of demand while staying under the low-water load.
func (sc *Scheduler) pickCPUTarget(src cluster.MachineID, d float64, added map[cluster.MachineID]float64, heap int64) cluster.MachineID {
	var best cluster.MachineID = -1
	bestLoad := math.Inf(1)
	for _, m := range sc.sys.Cluster.Machines() {
		if m.ID == src || m.Down() || m.AvailCores() <= 0 || m.MemFree() < heap {
			continue
		}
		load := sc.computeLoad(m, added[m.ID]+d)
		if load < sc.cfg.CPULowWater && load < bestLoad {
			best, bestLoad = m.ID, load
		}
	}
	return best
}

// reactMem evacuates memory proclets from a machine near its memory
// capacity, until pressure drops below the high water mark.
func (sc *Scheduler) reactMem(p *sim.Proc, m *cluster.Machine) {
	if m.Down() || m.MemPressure() <= sc.cfg.MemHighWater {
		return
	}
	victims := sc.movableOn(m.ID, KindMemory)
	// Evacuate biggest first: frees the most per migration.
	for i, j := 0, len(victims)-1; i < j; i, j = i+1, j-1 {
		victims[i], victims[j] = victims[j], victims[i]
	}
	var sp obs.SpanID
	for _, v := range victims {
		if m.MemPressure() <= sc.cfg.MemHighWater {
			break
		}
		target := sc.pickMemTarget(m.ID, v.pr.HeapBytes())
		if target < 0 {
			break
		}
		if sc.sys.Obs != nil && sp == 0 {
			sp = sc.sys.Obs.Start(obs.KindPressure, "mem", int(m.ID), 0)
			sc.sys.Obs.Num(sp, "pressure", m.MemPressure())
		}
		if err := sc.sys.Runtime.MigrateCaused(p, v.pr.ID(), target, sp); err == nil {
			sc.MemEvictions.Inc()
		}
	}
	sc.sys.Obs.End(sp)
}

// pickMemTarget finds the machine with the most free memory that can
// absorb `bytes` while staying safely under the high water mark.
func (sc *Scheduler) pickMemTarget(src cluster.MachineID, bytes int64) cluster.MachineID {
	var best cluster.MachineID = -1
	var bestFree int64 = -1
	for _, m := range sc.sys.Cluster.Machines() {
		if m.ID == src || m.Down() {
			continue
		}
		after := float64(m.MemUsed()+bytes) / float64(m.MemCapacity())
		if after >= sc.cfg.MemHighWater-0.05 {
			continue
		}
		if m.MemFree() > bestFree {
			best, bestFree = m.ID, m.MemFree()
		}
	}
	return best
}

// FreeUpMemory synchronously evacuates memory proclets from machine m
// until at least `bytes` are free (or nothing more can move). It is the
// demand-paged escape hatch for writers that hit ErrNoMemory between
// reactor ticks. It reports whether the space was freed.
func (sc *Scheduler) FreeUpMemory(p *sim.Proc, mid cluster.MachineID, bytes int64) bool {
	m := sc.sys.Cluster.Machine(mid)
	var sp obs.SpanID
	for _, v := range sc.movableOn(mid, KindMemory) {
		if m.MemFree() >= bytes {
			break
		}
		target := sc.pickMemTarget(mid, v.pr.HeapBytes())
		if target < 0 {
			continue
		}
		if sc.sys.Obs != nil && sp == 0 {
			sp = sc.sys.Obs.Start(obs.KindPressure, "mem-demand", int(mid), 0)
			sc.sys.Obs.Num(sp, "need_bytes", float64(bytes))
			sc.sys.Obs.Num(sp, "pressure", m.MemPressure())
		}
		if err := sc.sys.Runtime.MigrateCaused(p, v.pr.ID(), target, sp); err == nil {
			sc.MemEvictions.Inc()
		}
	}
	sc.sys.Obs.End(sp)
	return m.MemFree() >= bytes
}

// ---- Slow path: global rebalancing and affinity ----

// rebalance moves compute demand from the most- to the least-loaded
// machine when the imbalance is substantial. Unlike the fast path it
// acts below the panic threshold, smoothing long-term placement.
func (sc *Scheduler) rebalance(p *sim.Proc) {
	machines := sc.sys.Cluster.Machines()
	if len(machines) < 2 {
		return
	}
	const maxMovesPerRound = 4
	for i := 0; i < maxMovesPerRound; i++ {
		var hi, lo *cluster.Machine
		hiLoad, loLoad := -1.0, math.Inf(1)
		for _, m := range machines {
			if m.Down() {
				continue
			}
			l := sc.computeLoad(m, 0)
			if l > hiLoad {
				hi, hiLoad = m, l
			}
			if l < loLoad {
				lo, loLoad = m, l
			}
		}
		if hi == nil || lo == nil || hi == lo {
			return
		}
		if math.IsInf(loLoad, 1) || hiLoad-loLoad < 0.5 || hiLoad <= 1 {
			return
		}
		moved := false
		for _, v := range sc.movableOn(hi.ID, KindCompute) {
			d := v.demand()
			if d == 0 {
				continue
			}
			if sc.computeLoad(lo, d) >= sc.computeLoad(hi, -d) {
				break // move would overshoot
			}
			if lo.MemFree() < v.pr.HeapBytes() {
				continue
			}
			var sp obs.SpanID
			if sc.sys.Obs != nil {
				sp = sc.sys.Obs.Start(obs.KindSched, "rebalance", int(hi.ID), 0)
				sc.sys.Obs.SetRoute(sp, int(hi.ID), int(lo.ID))
				sc.sys.Obs.Num(sp, "hiLoad", hiLoad)
				sc.sys.Obs.Num(sp, "loLoad", loLoad)
			}
			if err := sc.sys.Runtime.MigrateCaused(p, v.pr.ID(), lo.ID, sp); err == nil {
				sc.Rebalances.Inc()
				sc.sys.Trace.Emitf(sc.sys.K.Now(), trace.KindRebalance, v.pr.Name(),
					int(hi.ID), int(lo.ID), "load %.2f->%.2f", hiLoad, loLoad)
				moved = true
			}
			sc.sys.Obs.End(sp)
			break
		}
		if !moved {
			return
		}
	}
}

// colocate migrates proclets next to the peers they exchange the most
// bytes with, when the peer's machine has capacity — the paper's
// affinity answer to "how can we maintain locality?" (§5).
func (sc *Scheduler) colocate(p *sim.Proc) {
	// Snapshot candidates first: migration mutates comm maps' owners.
	type move struct {
		id     proclet.ID
		target cluster.MachineID
	}
	var moves []move
	ids := make([]proclet.ID, 0, len(sc.info))
	for id := range sc.info {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pi := sc.info[id]
		if pi.pinned || pi.pr.State() != proclet.StateRunning {
			continue
		}
		var bestPeer proclet.ID
		var bestBytes int64
		for peer, bytes := range pi.pr.CommBytes() {
			if bytes > bestBytes {
				bestPeer, bestBytes = peer, bytes
			}
		}
		pi.pr.ResetComm()
		if bestBytes < sc.cfg.AffinityBytes {
			continue
		}
		peerPr := sc.sys.Runtime.Lookup(bestPeer)
		if peerPr == nil || peerPr.Location() == pi.pr.Location() {
			continue
		}
		target := sc.sys.Cluster.Machine(peerPr.Location())
		if target.Down() || target.MemFree() < pi.pr.HeapBytes() {
			continue
		}
		if pi.kind == KindCompute && sc.computeLoad(target, pi.demand()) >= sc.cfg.CPULowWater {
			continue
		}
		moves = append(moves, move{id: id, target: target.ID})
	}
	for _, mv := range moves {
		var sp obs.SpanID
		if sc.sys.Obs != nil {
			from := -1
			if pr := sc.sys.Runtime.Lookup(mv.id); pr != nil {
				from = int(pr.Location())
			}
			sp = sc.sys.Obs.Start(obs.KindSched, "affinity", from, 0)
			sc.sys.Obs.SetRoute(sp, from, int(mv.target))
		}
		if err := sc.sys.Runtime.MigrateCaused(p, mv.id, mv.target, sp); err == nil {
			sc.AffinityMoves.Inc()
		}
		sc.sys.Obs.End(sp)
	}
}
