package core

// Crash recovery policy. The fault injector breaks machines; this file
// decides what the control plane does about it: orphaned compute
// proclets are re-placed onto live machines and resume their (drained)
// work loops, orphaned memory proclets are re-placed empty and their
// contents reconstructed through an application-provided Rebuilder
// (replaying a durable source, re-deriving from peers), and when no
// live machine has capacity the scheduler sheds the proclet rather
// than wedging recovery. Restarted machines rejoin empty and are
// re-admitted implicitly: every placement loop skips Down machines, so
// a machine that comes back simply starts winning placements again.

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Rebuilder reconstructs a memory proclet's contents after it was
// re-placed empty by crash recovery (its heap was lost with the
// machine). The callback runs on the recovery process and may invoke
// any proclet operations; a non-nil error abandons the proclet.
type Rebuilder func(p *sim.Proc, mp *MemoryProclet) error

// SetRebuilder installs the recovery reconstruction hook for memory
// proclets. Without one, recovered memory proclets come back empty.
func (s *System) SetRebuilder(rb Rebuilder) { s.rebuild = rb }

// AttachInjector wires the system's recovery handlers into a fault
// injector: every machine crash triggers orphan re-placement. Restarts
// need no handler — the machine rejoins empty and placement loops pick
// it up automatically.
func (s *System) AttachInjector(in *fault.Injector) {
	in.HookCrash = s.handleCrash
}

// handleCrash runs at the instant a machine fail-stops. Orphaning is
// synchronous (routing must start failing fast immediately); the
// re-placement work runs on its own process so the injector never
// blocks the kernel. With the replication plane installed, the
// recovery *decision* is deferred to the failure detector: orphans are
// parked until heartbeats confirm the machine dead (or see it answer
// again) — the oracle knowledge that a crash happened is no longer
// consumed by the control plane.
func (s *System) handleCrash(mid cluster.MachineID) {
	orphans := s.Runtime.CrashMachine(mid)
	if s.repl != nil {
		s.repl.noteOrphans(mid, orphans)
		return
	}
	if len(orphans) == 0 {
		return
	}
	s.K.Spawn(fmt.Sprintf("sched/recover-m%d", mid), func(p *sim.Proc) {
		s.Sched.recoverOrphans(p, orphans)
	})
}

// recoverOrphans re-places each orphan in turn (deterministic order:
// CrashMachine returns them sorted by ID).
func (sc *Scheduler) recoverOrphans(p *sim.Proc, orphans []*proclet.Proclet) {
	for _, pr := range orphans {
		if pr.State() != proclet.StateOrphaned {
			continue // already handled (e.g. destroyed by the app)
		}
		sc.recoverOne(p, pr)
	}
}

// restoreAttempts bounds how many distinct placements recovery tries
// per orphan before shedding it (each attempt can fail only if the
// chosen machine dies during the restore).
const restoreAttempts = 3

func (sc *Scheduler) recoverOne(p *sim.Proc, pr *proclet.Proclet) {
	pi := sc.info[pr.ID()]
	kind := KindOther
	if pi != nil {
		kind = pi.kind
	}
	for attempt := 0; attempt < restoreAttempts; attempt++ {
		var (
			target cluster.MachineID
			err    error
		)
		switch kind {
		case KindMemory:
			// The heap died with the machine: place by the proclet's
			// pre-crash footprint, restore empty, then rebuild.
			lost := pr.HeapBytes()
			target, err = sc.PlaceMemory(lost)
			if err == nil {
				mp, _ := pr.Data.(*MemoryProclet)
				if mp != nil {
					mp.objs = make(map[uint64]objEntry)
				}
				pr.ResetHeap()
				if err = sc.sys.Runtime.Restore(p, pr, target); err == nil {
					sc.Recoveries.Inc()
					if mp != nil && sc.sys.rebuild != nil {
						if rerr := sc.sys.rebuild(p, mp); rerr != nil {
							sc.sys.Trace.Emitf(sc.sys.K.Now(), trace.KindRecover, pr.Name(),
								-1, int(target), "rebuild failed: %v", rerr)
						}
					}
					return
				}
			}
		case KindCompute:
			target, err = sc.PlaceCompute()
			if err == nil {
				if err = sc.sys.Runtime.Restore(p, pr, target); err == nil {
					sc.Recoveries.Inc()
					return
				}
			}
		default:
			target, err = sc.PlaceMemory(pr.HeapBytes())
			if err == nil {
				if err = sc.sys.Runtime.Restore(p, pr, target); err == nil {
					sc.Recoveries.Inc()
					return
				}
			}
		}
	}
	// No live machine could take it: shed the proclet so its callers see
	// ErrNotFound instead of retrying against a dead entry forever.
	sc.shed(pr)
}

// shed abandons an orphan the cluster cannot hold (graceful
// degradation under capacity loss).
func (sc *Scheduler) shed(pr *proclet.Proclet) {
	sc.unregister(pr.ID())
	sc.sys.Runtime.Abandon(pr)
	sc.Sheds.Inc()
}
