package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestComputeProcletRunsTasks(t *testing.T) {
	s := testSystem(t)
	cp, err := NewComputeProcletOn(s, "cpu", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 4; i++ {
		cp.Run(func(tc *TaskCtx) {
			tc.Compute(10 * time.Millisecond)
			done++
		})
	}
	s.K.Spawn("waiter", func(p *sim.Proc) {
		cp.WaitIdle(p)
		// 4 tasks x 10ms on 2 workers (8 cores available) = 20ms.
		if p.Now() != 20*sim.Millisecond {
			t.Errorf("idle at %v, want 20ms", p.Now())
		}
	})
	s.K.Run()
	if done != 4 || cp.Executed() != 4 {
		t.Errorf("done=%d executed=%d, want 4", done, cp.Executed())
	}
}

func TestComputeProcletDemand(t *testing.T) {
	s := testSystem(t)
	cp, _ := NewComputeProcletOn(s, "cpu", 0, 2)
	if cp.Demand() != 0 {
		t.Errorf("idle demand = %v, want 0", cp.Demand())
	}
	for i := 0; i < 5; i++ {
		cp.Run(func(tc *TaskCtx) { tc.Compute(time.Millisecond) })
	}
	if cp.Demand() != 2 {
		t.Errorf("busy demand = %v, want 2 (capped at workers)", cp.Demand())
	}
	s.K.Spawn("w", func(p *sim.Proc) { cp.WaitIdle(p) })
	s.K.Run()
	if cp.Demand() != 0 {
		t.Errorf("demand after drain = %v", cp.Demand())
	}
}

func TestComputeProcletMigratesMidTask(t *testing.T) {
	s := testSystem(t)
	cp, _ := NewComputeProcletOn(s, "cpu", 0, 1)
	var finished sim.Time
	cp.Run(func(tc *TaskCtx) {
		tc.Compute(20 * time.Millisecond)
		finished = tc.Proc().Now()
	})
	s.K.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		s.Cluster.Machine(0).SetReserved(8)
		if err := s.Runtime.Migrate(p, cp.ID(), 1); err != nil {
			t.Fatalf("Migrate: %v", err)
		}
	})
	s.K.Run()
	if finished == 0 || finished > 21*sim.Millisecond {
		t.Errorf("task finished at %v, want ~20ms despite source stall", finished)
	}
	if cp.Location() != 1 {
		t.Errorf("location = %d, want 1", cp.Location())
	}
}

func TestPoolDispatchBalances(t *testing.T) {
	s := testSystem(t)
	pl, err := s.NewPool("pool", 1, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pl.Run(func(tc *TaskCtx) { tc.Compute(time.Millisecond) })
	}
	q0 := pl.members[0].QueueLen() + pl.members[0].Running()
	q1 := pl.members[1].QueueLen() + pl.members[1].Running()
	if q0 != 5 || q1 != 5 {
		t.Errorf("queue split %d/%d, want 5/5", q0, q1)
	}
	s.K.Spawn("w", func(p *sim.Proc) { pl.WaitIdle(p) })
	s.K.Run()
	if pl.TotalExecuted() != 10 {
		t.Errorf("TotalExecuted = %d, want 10", pl.TotalExecuted())
	}
}

func TestPoolGrowSplitsQueue(t *testing.T) {
	s := testSystem(t)
	pl, _ := s.NewPool("pool", 1, 1, 1, 0)
	ran := 0
	for i := 0; i < 8; i++ {
		pl.Run(func(tc *TaskCtx) {
			tc.Compute(time.Millisecond)
			ran++
		})
	}
	s.K.Spawn("ctl", func(p *sim.Proc) {
		grew, err := pl.Grow(p)
		if err != nil || !grew {
			t.Errorf("Grow = %v, %v", grew, err)
			return
		}
		if pl.Size() != 2 {
			t.Errorf("Size = %d, want 2", pl.Size())
		}
		pl.WaitIdle(p)
	})
	s.K.Run()
	if ran != 8 {
		t.Errorf("ran = %d, want 8 (no tasks lost in split)", ran)
	}
	if pl.Splits != 1 {
		t.Errorf("Splits = %d", pl.Splits)
	}
}

func TestPoolGrowRefusesWithoutIdleCPU(t *testing.T) {
	// Single machine, 2 cores, both fully reserved: splitting must not
	// create a new proclet (§3.3's guard).
	s := testSystem(t, cluster.MachineConfig{Cores: 2, MemBytes: 1 << 30})
	pl, _ := s.NewPool("pool", 1, 1, 1, 0)
	s.Cluster.Machine(0).SetReserved(2)
	for i := 0; i < 4; i++ {
		pl.Run(func(tc *TaskCtx) { tc.Compute(time.Millisecond) })
	}
	s.K.Spawn("ctl", func(p *sim.Proc) {
		grew, err := pl.Grow(p)
		if err != nil {
			t.Errorf("Grow error: %v", err)
		}
		if grew {
			t.Error("Grow succeeded with zero idle CPU")
		}
		if pl.Size() != 1 {
			t.Errorf("Size = %d, want 1", pl.Size())
		}
	})
	s.K.RunUntil(10 * sim.Millisecond)
}

func TestPoolGrowRespectsMaxSize(t *testing.T) {
	s := testSystem(t)
	pl, _ := s.NewPool("pool", 1, 2, 1, 2)
	s.K.Spawn("ctl", func(p *sim.Proc) {
		if grew, _ := pl.Grow(p); grew {
			t.Error("Grow exceeded maxSize")
		}
	})
	s.K.Run()
}

func TestPoolShrinkMergesQueue(t *testing.T) {
	s := testSystem(t)
	pl, _ := s.NewPool("pool", 1, 3, 1, 0)
	ran := 0
	for i := 0; i < 9; i++ {
		pl.Run(func(tc *TaskCtx) {
			tc.Compute(time.Millisecond)
			ran++
		})
	}
	s.K.Spawn("ctl", func(p *sim.Proc) {
		if shrank, err := pl.Shrink(p); err != nil || !shrank {
			t.Errorf("Shrink = %v, %v", shrank, err)
			return
		}
		if pl.Size() != 2 {
			t.Errorf("Size = %d, want 2", pl.Size())
		}
		pl.WaitIdle(p)
	})
	s.K.Run()
	if ran != 9 {
		t.Errorf("ran = %d, want 9 (no tasks lost in merge)", ran)
	}
	if pl.Merges != 1 {
		t.Errorf("Merges = %d", pl.Merges)
	}
}

func TestPoolShrinkRespectsMinSize(t *testing.T) {
	s := testSystem(t)
	pl, _ := s.NewPool("pool", 1, 2, 2, 0)
	s.K.Spawn("ctl", func(p *sim.Proc) {
		if shrank, _ := pl.Shrink(p); shrank {
			t.Error("Shrink below minSize")
		}
	})
	s.K.Run()
}

func TestPoolSplitLatencyIsMilliseconds(t *testing.T) {
	// §3.3: splits stay fast because compute proclets are granular.
	s := testSystem(t)
	pl, _ := s.NewPool("pool", 1, 1, 1, 0)
	for i := 0; i < 100; i++ {
		pl.Run(func(tc *TaskCtx) { tc.Compute(10 * time.Millisecond) })
	}
	var elapsed time.Duration
	s.K.Spawn("ctl", func(p *sim.Proc) {
		start := p.Now()
		pl.Grow(p)
		elapsed = p.Now().Sub(start)
		s.K.Stop()
	})
	s.K.Run()
	if elapsed > 2*time.Millisecond {
		t.Errorf("split took %v, want <= 2ms", elapsed)
	}
}

func TestPoolWorkStealing(t *testing.T) {
	s := testSystem(t)
	pl, _ := s.NewPool("pool", 1, 2, 1, 0)
	// Pile all work onto member 0 directly; member 1's idle worker
	// must steal.
	done := 0
	for i := 0; i < 20; i++ {
		pl.members[0].Run(func(tc *TaskCtx) {
			tc.Compute(time.Millisecond)
			done++
		})
	}
	var elapsed time.Duration
	s.K.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		pl.WaitIdle(p)
		elapsed = p.Now().Sub(start)
	})
	s.K.Run()
	if done != 20 {
		t.Fatalf("done = %d, want 20", done)
	}
	if pl.Steals == 0 {
		t.Error("no steals recorded")
	}
	// With stealing both workers share: ~10-12ms, not 20ms.
	if elapsed > 14*time.Millisecond {
		t.Errorf("took %v, want ~10ms with stealing", elapsed)
	}
	if pl.members[1].Executed() < 5 {
		t.Errorf("member 1 executed %d, want a meaningful share", pl.members[1].Executed())
	}
}

func TestStealRespectsMinimumBacklog(t *testing.T) {
	s := testSystem(t)
	pl, _ := s.NewPool("pool", 1, 2, 1, 0)
	// A single task must not ping-pong between members.
	pl.members[0].Run(func(tc *TaskCtx) { tc.Compute(time.Millisecond) })
	s.K.Spawn("w", func(p *sim.Proc) { pl.WaitIdle(p) })
	s.K.Run()
	if pl.Steals != 0 {
		t.Errorf("Steals = %d for a 1-task queue, want 0", pl.Steals)
	}
}
