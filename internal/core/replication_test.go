package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/proclet"
	"repro/internal/replication"
	"repro/internal/sim"
)

// replSystem builds a 4-machine system with the durability plane
// enabled, monitored from machine `monitor`.
func replSystem(t *testing.T, monitor cluster.MachineID) (*System, *ReplManager, *fault.Injector) {
	t.Helper()
	s := testSystem(t,
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28},
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28},
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28},
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 28},
	)
	in := fault.New(s.K, s.Cluster, s.Trace)
	s.AttachInjector(in)
	rm := s.EnableReplicationPlane(replication.Config{}, monitor)
	return s, rm, in
}

func TestReplicateShipsWritesToBackup(t *testing.T) {
	s, rm, _ := replSystem(t, 0)
	mp, err := NewMemoryProcletOn(s, "store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 2); err != nil {
		t.Fatal(err)
	}
	st := rm.Status()
	if len(st) != 1 || len(st[0].Backups) != 1 {
		t.Fatalf("Status = %+v, want one set with one backup", st)
	}
	if bm := st[0].Backups[0].Machine; bm == 1 {
		t.Fatalf("backup placed on the primary's machine %d", bm)
	}

	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := uint64(1); i <= 10; i++ {
			if err := mp.Put(p, 3, i, int(i*100), 64); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}
	})
	s.K.RunUntil(sim.Time(10 * time.Millisecond))

	b := rm.sets[mp.ID()].backups[0]
	if got := len(b.mp.objs); got != 10 {
		t.Fatalf("backup holds %d objects, want 10", got)
	}
	if v := b.mp.objs[7].val.(int); v != 700 {
		t.Errorf("backup obj 7 = %d, want 700", v)
	}
	if b.mp.pr.HeapBytes() != mp.pr.HeapBytes() {
		t.Errorf("backup heap %d != primary heap %d", b.mp.pr.HeapBytes(), mp.pr.HeapBytes())
	}
	if rm.ReplRecords.Value() != 10 {
		t.Errorf("ReplRecords = %d, want 10", rm.ReplRecords.Value())
	}
	if rm.ReplBatches.Value() > 10 || rm.ReplBatches.Value() == 0 {
		t.Errorf("ReplBatches = %d, want 1..10", rm.ReplBatches.Value())
	}
}

func TestFailoverPromotesBackupWithoutDataLoss(t *testing.T) {
	s, rm, in := replSystem(t, 0)
	mp, err := NewMemoryProcletOn(s, "store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 2); err != nil {
		t.Fatal(err)
	}
	backupMachine := rm.sets[mp.ID()].backups[0].mp.pr.Location()

	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := uint64(1); i <= 20; i++ {
			if err := mp.Put(p, 3, i, int(i), 64); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}
		in.Apply(fault.Event{Op: fault.OpCrash, A: 1})
		// Every acked write must be readable after failover; the invoke
		// retry budget (~25ms) comfortably covers the ~3ms detect window.
		for i := uint64(1); i <= 20; i++ {
			v, err := mp.Get(p, 3, i)
			if err != nil {
				t.Errorf("get %d after crash: %v", i, err)
				continue
			}
			if v.(int) != int(i) {
				t.Errorf("obj %d = %v, want %d", i, v, i)
			}
		}
		if loc := mp.Location(); loc != backupMachine {
			t.Errorf("promoted location = %d, want backup machine %d", loc, backupMachine)
		}
	})
	s.K.RunUntil(sim.Time(50 * time.Millisecond))

	if rm.Promotions.Value() != 1 {
		t.Errorf("Promotions = %d, want 1", rm.Promotions.Value())
	}
	if rm.Deposes.Value() != 0 {
		t.Errorf("Deposes = %d, want 0 for a real crash", rm.Deposes.Value())
	}
	if rm.PromoteLatency.Count() != 1 {
		t.Errorf("PromoteLatency samples = %d, want 1", rm.PromoteLatency.Count())
	}
	// Re-replication restored RF=2 on a machine that is neither the new
	// primary nor the dead one.
	st := rm.Status()
	if len(st) != 1 || len(st[0].Backups) != 1 {
		t.Fatalf("post-failover Status = %+v, want one backup (resynced)", st)
	}
	if bm := st[0].Backups[0].Machine; bm == backupMachine || bm == 1 {
		t.Errorf("resynced backup on machine %d, want anti-affine to %d and dead 1", bm, backupMachine)
	}
	nb := rm.sets[mp.ID()].backups[0]
	if got := len(nb.mp.objs); got != 20 {
		t.Errorf("resynced backup holds %d objects, want 20", got)
	}
}

func TestPartitionedPrimaryNeverServesAfterLeaseLapse(t *testing.T) {
	s, rm, in := replSystem(t, 0)
	mp, err := NewMemoryProcletOn(s, "store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 2); err != nil {
		t.Fatal(err)
	}

	var lastAcked int
	s.K.Spawn("writer", func(p *sim.Proc) {
		// Single writer on m3 (never partitioned from anyone): every
		// acked write must be durable across the failover.
		for i := 1; ; i++ {
			if p.Now() > sim.Time(30*time.Millisecond) {
				return
			}
			if err := mp.Put(p, 3, 1, i, 64); err == nil {
				lastAcked = i
			}
			p.Sleep(100 * time.Microsecond)
		}
	})
	s.K.Spawn("partitioner", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		// Cut only monitor<->primary: the primary stays up and reachable
		// from the writer, but its lease lapses and the detector falsely
		// confirms it dead.
		in.Apply(fault.Event{Op: fault.OpPartition, A: 0, B: 1})
	})
	s.K.RunUntil(sim.Time(35 * time.Millisecond))

	if rm.Deposes.Value() != 1 {
		t.Fatalf("Deposes = %d, want 1 (false confirmation deposes, never crashes)", rm.Deposes.Value())
	}
	if rm.Promotions.Value() != 1 {
		t.Fatalf("Promotions = %d, want 1", rm.Promotions.Value())
	}
	if m := s.Cluster.Machine(1); m.Down() {
		t.Fatal("machine 1 should still be up (it was only partitioned)")
	}
	// No split-brain: the promoted primary must hold the newest acked
	// value. If the deposed primary had served any write after its lease
	// lapsed, that ack would be missing here.
	var got int
	s.K.Spawn("reader", func(p *sim.Proc) {
		v, err := mp.Get(p, 3, 1)
		if err != nil {
			t.Errorf("final get: %v", err)
			return
		}
		got = v.(int)
	})
	s.K.RunUntil(sim.Time(40 * time.Millisecond))
	if got != lastAcked {
		t.Errorf("promoted primary holds %d, last acked write was %d (split-brain or lost ack)", got, lastAcked)
	}
	if lastAcked < 10 {
		t.Errorf("only %d writes acked; writer should make progress before and after failover", lastAcked)
	}
}

func TestAllReplicasDeadFallsBackToRebuilder(t *testing.T) {
	s, rm, in := replSystem(t, 3) // monitor on m3 so m0 can die
	mp, err := NewMemoryProcletOn(s, "store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 2); err != nil {
		t.Fatal(err)
	}
	backupMachine := rm.sets[mp.ID()].backups[0].mp.pr.Location()

	golden := map[uint64]int{1: 11, 2: 22}
	s.SetRebuilder(func(p *sim.Proc, m *MemoryProclet) error {
		for id, v := range golden {
			if err := m.Put(p, 3, id, v, 64); err != nil {
				return err
			}
		}
		return nil
	})

	s.K.Spawn("driver", func(p *sim.Proc) {
		for id, v := range golden {
			if err := mp.Put(p, 3, id, v, 64); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		// Kill both replicas at once: replication cannot help, the
		// legacy rebuild path must take over.
		in.Apply(fault.Event{Op: fault.OpCrash, A: 1})
		in.Apply(fault.Event{Op: fault.OpCrash, A: backupMachine})
		v, err := mp.Get(p, 3, 1)
		if err != nil {
			t.Errorf("get after double crash: %v", err)
			return
		}
		if v.(int) != 11 {
			t.Errorf("rebuilt obj 1 = %v, want 11", v)
		}
	})
	s.K.RunUntil(sim.Time(60 * time.Millisecond))

	if rm.Promotions.Value() != 0 {
		t.Errorf("Promotions = %d, want 0 when every replica died", rm.Promotions.Value())
	}
	if s.Sched.Recoveries.Value() == 0 {
		t.Error("expected a legacy recovery")
	}
	if mp.pr.State() != proclet.StateRunning {
		t.Errorf("primary state = %v, want running", mp.pr.State())
	}
}

func TestReplicateValidation(t *testing.T) {
	s, rm, _ := replSystem(t, 0)
	mp, err := NewMemoryProcletOn(s, "store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 1); err != nil {
		t.Errorf("rf=1 should be a no-op, got %v", err)
	}
	if mp.rs != nil {
		t.Fatal("rf=1 must not create a replica set")
	}
	if err := rm.Replicate(mp, 2); err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 2); err == nil {
		t.Error("double Replicate should fail")
	}
	b := rm.sets[mp.ID()].backups[0].mp
	if err := rm.Replicate(b, 2); err == nil {
		t.Error("replicating a backup should fail")
	}

	// Unreplicated proclets stay off the replication plane entirely.
	plain, err := NewMemoryProcletOn(s, "plain", 2)
	if err != nil {
		t.Fatal(err)
	}
	before := rm.ReplRecords.Value()
	s.K.Spawn("driver", func(p *sim.Proc) {
		for i := uint64(1); i <= 5; i++ {
			if err := plain.Put(p, 3, i, i, 64); err != nil {
				t.Errorf("put: %v", err)
			}
		}
	})
	s.K.RunUntil(sim.Time(5 * time.Millisecond))
	if got := rm.ReplRecords.Value(); got != before {
		t.Errorf("unreplicated writes generated %d records", got-before)
	}
}

func TestReplicatedDestroyTearsDownBackups(t *testing.T) {
	s, rm, _ := replSystem(t, 0)
	mp, err := NewMemoryProcletOn(s, "store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(rm.sets[mp.ID()].backups); got != 2 {
		t.Fatalf("backups = %d, want 2", got)
	}
	backups := make([]*MemoryProclet, 0, 2)
	for _, b := range rm.sets[mp.ID()].backups {
		backups = append(backups, b.mp)
	}
	if err := mp.Destroy(); err != nil {
		t.Fatal(err)
	}
	for i, b := range backups {
		if st := b.pr.State(); st != proclet.StateDead {
			t.Errorf("backup %d state = %v, want dead", i, st)
		}
	}
	if len(rm.sets) != 0 {
		t.Errorf("sets = %d, want 0", len(rm.sets))
	}
	for _, m := range s.Cluster.Machines() {
		if used := m.MemUsed(); used != 0 {
			t.Errorf("machine %d leaks %d bytes after destroy", m.ID, used)
		}
	}
}

func TestReplicatedTakeAndUpdateShipEffects(t *testing.T) {
	s, rm, _ := replSystem(t, 0)
	mp, err := NewMemoryProcletOn(s, "store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 2); err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		if err := mp.Put(p, 3, 1, 10, 64); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := mp.Update(p, 3, 1, 8, func(old any, exists bool) (any, int64, bool) {
			return old.(int) + 5, 64, true
		}); err != nil {
			t.Fatalf("update: %v", err)
		}
		if err := mp.Put(p, 3, 2, 99, 64); err != nil {
			t.Fatalf("put 2: %v", err)
		}
		if v, err := mp.Take(p, 3, 2); err != nil || v.(int) != 99 {
			t.Fatalf("take = %v, %v", v, err)
		}
	})
	s.K.RunUntil(sim.Time(10 * time.Millisecond))

	b := rm.sets[mp.ID()].backups[0].mp
	if got := len(b.objs); got != 1 {
		t.Fatalf("backup objects = %d, want 1 (take's delete must replicate)", got)
	}
	if v := b.objs[1].val.(int); v != 15 {
		t.Errorf("backup obj 1 = %d, want 15 (update's result must replicate)", v)
	}
}

func TestPrimaryCrashMidShipKeepsBackupAndPromotes(t *testing.T) {
	// A writer keeps writing straight through the crash instant, so a
	// log ship is in flight from the primary's machine when it dies.
	// The resulting apply failure ("source node is down") must not be
	// blamed on the backup: dropping it would leave failover with no
	// replica to promote and lose every acked write.
	s, rm, in := replSystem(t, 0)
	mp, err := NewMemoryProcletOn(s, "store", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Replicate(mp, 2); err != nil {
		t.Fatal(err)
	}
	var acked []uint64
	s.K.Spawn("writer", func(p *sim.Proc) {
		for i := uint64(1); p.Now() < sim.Time(4*time.Millisecond); i++ {
			if err := mp.Put(p, 3, i, int(i), 64); err == nil {
				acked = append(acked, i)
			}
		}
	})
	in.Install(fault.Schedule{{At: sim.Time(2 * time.Millisecond), Op: fault.OpCrash, A: 1}})
	s.K.RunUntil(sim.Time(50 * time.Millisecond))

	if rm.Promotions.Value() != 1 {
		t.Fatalf("Promotions = %d, want 1 (backup must survive the primary's mid-ship crash)",
			rm.Promotions.Value())
	}
	var lost int
	s.K.Spawn("verify", func(p *sim.Proc) {
		for _, k := range acked {
			if v, err := mp.Get(p, 3, k); err != nil || v.(int) != int(k) {
				lost++
			}
		}
	})
	s.K.RunUntil(sim.Time(100 * time.Millisecond))
	if lost > 0 {
		t.Errorf("%d of %d acked writes lost after failover", lost, len(acked))
	}
}
