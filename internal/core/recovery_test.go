package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// End-to-end crash recovery through the control plane: injector →
// orphaning → re-placement → rebuild.

func TestCrashRecoveryRebuildsMemoryProclet(t *testing.T) {
	s := testSystem(t)
	in := fault.New(s.K, s.Cluster, s.Trace)
	s.AttachInjector(in)

	mp, err := NewMemoryProcletOn(s, "store", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilder re-derives the contents from a durable source (here:
	// a host-side map standing in for replay).
	backup := map[uint64]int{1: 100, 2: 200}
	s.SetRebuilder(func(p *sim.Proc, m *MemoryProclet) error {
		for id, v := range backup {
			if err := m.Put(p, 1, id, v, 64); err != nil {
				return err
			}
		}
		return nil
	})

	k := s.K
	k.Spawn("driver", func(p *sim.Proc) {
		for id, v := range backup {
			if err := mp.Put(p, 1, id, v, 64); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		in.Apply(fault.Event{Op: fault.OpCrash, A: 0})
		if mp.Proclet().State() != proclet.StateOrphaned {
			t.Fatalf("state after crash = %v, want orphaned", mp.Proclet().State())
		}
		// Give recovery time to re-place and rebuild, with invokes
		// retrying across the outage.
		v, err := mp.Get(p, 1, 1)
		if err != nil {
			t.Fatalf("get after crash: %v", err)
		}
		if v.(int) != 100 {
			t.Errorf("rebuilt value = %v, want 100", v)
		}
		if loc := mp.Location(); loc != 1 {
			t.Errorf("recovered location = %d, want 1", loc)
		}
		if mp.NumObjects() != 2 {
			t.Errorf("rebuilt objects = %d, want 2", mp.NumObjects())
		}
	})
	k.Run()
	if got := s.Sched.Recoveries.Value(); got != 1 {
		t.Errorf("Recoveries = %d, want 1", got)
	}
	if s.Trace.Count(trace.KindCrash) == 0 || s.Trace.Count(trace.KindRecover) == 0 {
		t.Error("expected crash and recover trace events")
	}
}

func TestCrashRecoveryRestoresComputeProclet(t *testing.T) {
	s := testSystem(t)
	in := fault.New(s.K, s.Cluster, s.Trace)
	s.AttachInjector(in)

	cp, err := NewComputeProcletOn(s, "worker", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 4; i++ {
		cp.Run(func(tc *TaskCtx) {
			tc.Compute(2 * time.Millisecond)
			done++
		})
	}
	s.K.Schedule(sim.Time(time.Millisecond), func() {
		in.Apply(fault.Event{Op: fault.OpCrash, A: 0})
	})
	s.K.Spawn("waiter", func(p *sim.Proc) {
		cp.WaitIdle(p)
	})
	s.K.Run()
	if done != 4 {
		t.Errorf("tasks completed = %d, want 4 (compute resumes after re-placement)", done)
	}
	if loc := cp.Location(); loc != 1 {
		t.Errorf("recovered location = %d, want 1", loc)
	}
}

func TestRecoveryShedsWhenNoCapacity(t *testing.T) {
	s := testSystem(t, cluster.MachineConfig{Cores: 2, MemBytes: 1 << 20})
	in := fault.New(s.K, s.Cluster, s.Trace)
	s.AttachInjector(in)
	mp, err := NewMemoryProcletOn(s, "store", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		in.Apply(fault.Event{Op: fault.OpCrash, A: 0})
	})
	s.K.Run()
	if mp.Proclet().State() != proclet.StateDead {
		t.Errorf("state = %v, want dead (shed: only machine crashed)", mp.Proclet().State())
	}
	if got := s.Sched.Sheds.Value(); got != 1 {
		t.Errorf("Sheds = %d, want 1", got)
	}
}

func TestRestartedMachineWinsPlacementsAgain(t *testing.T) {
	s := testSystem(t)
	in := fault.New(s.K, s.Cluster, s.Trace)
	s.AttachInjector(in)
	s.K.Spawn("driver", func(p *sim.Proc) {
		in.Apply(fault.Event{Op: fault.OpCrash, A: 1})
		if m, err := s.Sched.PlaceMemory(1024); err != nil || m != 0 {
			t.Errorf("PlaceMemory during outage = %d, %v, want 0", m, err)
		}
		in.Apply(fault.Event{Op: fault.OpRestart, A: 1})
		// Machine 1 is back, empty — most free memory again once machine 0
		// holds anything.
		if err := s.Cluster.Machine(0).AllocMem(1 << 20); err != nil {
			t.Fatal(err)
		}
		if m, err := s.Sched.PlaceMemory(1024); err != nil || m != 1 {
			t.Errorf("PlaceMemory after restart = %d, %v, want 1", m, err)
		}
	})
	s.K.Run()
	if errs := s.Cluster.Machine(1).Down(); errs {
		t.Error("machine 1 still down after restart")
	}
}
