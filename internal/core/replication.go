package core

// Primary/backup replication for memory proclets. Enabling replication
// on a memory proclet (the primary) creates RF-1 backup proclets on
// distinct machines; every mutating operation ships a logical log
// record to each backup over the RPC fabric before acking, so a
// confirmed machine failure promotes the freshest backup instead of
// losing the heap. Ownership is lease-based: the primary serves only
// while its machine's lease (renewed by the failure detector's
// heartbeats) is valid, which makes failover safe even when the
// detector confirms a machine that is merely partitioned — by
// construction the lease lapses strictly before the confirmation, so
// there is never an instant with two serving primaries.
//
// Log shipping is group-committed: a writer appends its records to the
// set's pending pipe and, if another writer is already shipping, waits
// until the pipe has drained past its record — concurrent writes to
// one primary batch into single RPCs per backup instead of one RPC per
// write. Failed ships drop the backup from the set (the write still
// acks: the primary holds the data and re-replication restores RF);
// RF is repaired in the background by a resync that streams a
// point-in-time snapshot through the same pipe, keeping snapshot and
// live records totally ordered.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/proclet"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/trace"
)

// methodMemReplApply is the backup-side RPC applying a record batch.
const methodMemReplApply = "mem.replapply"

// shipAttempts bounds invocation attempts per backup per batch: a dead
// backup is dropped after a short probe instead of stalling writers for
// the full retry budget (re-replication repairs the set).
const shipAttempts = 3

// snapshotChunk is how many records a resync snapshot packs per pipe
// entry before yielding to interleaved live writes.
const snapshotChunk = 64

// repRecord is one logical log entry: the effect of a mutating
// operation (not the operation itself — update closures are applied at
// the primary and their result is shipped, so backups never re-run
// application code). gen 0 targets every backup; a nonzero gen targets
// only the backup created with that generation (resync snapshots).
type repRecord struct {
	id    uint64
	val   any
	bytes int64
	del   bool
	gen   uint64
}

// replApplyReq is the wire argument of mem.replapply.
type replApplyReq struct {
	recs []repRecord
}

// payloadBytes sums the wire size of the batch's records.
func payloadBytes(recs []repRecord) int64 {
	var sum int64
	for _, r := range recs {
		if r.del {
			sum += 8
		} else {
			sum += r.bytes + 8
		}
	}
	return sum
}

// errReplEpoch aborts pipe waiters when their replica set failed over
// mid-flight: the write may or may not have reached the promoted
// replica, so the caller must retry against it (applies are idempotent
// absolute effects, so a duplicate is harmless).
var errReplEpoch = fmt.Errorf("%w: replica set failed over", proclet.ErrUnavailable)

// backupRef is the manager's handle on one backup replica.
type backupRef struct {
	mp      *MemoryProclet
	gen     uint64
	applied uint64 // pipe records processed for this backup
}

// replicaSet is the replication state of one primary.
type replicaSet struct {
	rm      *ReplManager
	primary *MemoryProclet
	rf      int
	backups []*backupRef

	// epoch is bumped by every promotion or depose; in-flight writers
	// and shippers from an older epoch abort with errReplEpoch.
	epoch uint64

	nextSeq    uint64 // records ever enqueued
	shippedSeq uint64 // records shipped (or abandoned at an epoch bump)
	pending    []repRecord
	inflight   bool
	shipped    sim.Cond
	nextGen    uint64
	resyncing  bool
}

// ReplManager owns every replica set in a system and reacts to the
// failure detector's confirmations with failover and re-replication.
type ReplManager struct {
	sys  *System
	det  *replication.Detector
	sets map[proclet.ID]*replicaSet // keyed by primary proclet ID

	// pendingOrphans holds proclets orphaned by a crash until the
	// detector confirms the machine dead (or sees it answer again):
	// physical orphaning happens at the crash instant, but the recovery
	// decision belongs to the detector.
	pendingOrphans map[cluster.MachineID][]*proclet.Proclet

	Promotions  metrics.Counter
	Deposes     metrics.Counter
	Resyncs     metrics.Counter
	BackupDrops metrics.Counter
	ReplBatches metrics.Counter
	ReplRecords metrics.Counter
	// PromoteLatency records confirmation-to-promotion durations in
	// seconds (the control-plane half of failover; detection latency is
	// the detector's DetectLatency).
	PromoteLatency *metrics.Histogram
}

// EnableReplicationPlane installs the durability plane: a heartbeat
// failure detector monitoring every machine from `monitor`, leases
// renewed by those heartbeats, and a replication manager wired to the
// detector's confirmations. With the plane installed, crash recovery is
// driven by detector confirmations instead of injector oracle
// knowledge. Call once, before the workload starts; rcfg zero-values
// default sensibly (replication.DefaultConfig).
func (s *System) EnableReplicationPlane(rcfg replication.Config, monitor cluster.MachineID) *ReplManager {
	if s.repl != nil {
		panic("core: replication plane enabled twice")
	}
	rm := &ReplManager{
		sys:            s,
		sets:           make(map[proclet.ID]*replicaSet),
		pendingOrphans: make(map[cluster.MachineID][]*proclet.Proclet),
		PromoteLatency: metrics.NewHistogram("core.promote_latency"),
	}
	det := replication.NewDetector(s.K, s.Cluster, s.Trace, rcfg, monitor)
	det.OnConfirm = rm.onConfirm
	det.OnAlive = rm.onAlive
	rm.det = det
	s.repl = rm
	det.Start()
	return rm
}

// Replication returns the replication manager, or nil when no plane is
// installed.
func (s *System) Replication() *ReplManager { return s.repl }

// Detector returns the plane's failure detector.
func (rm *ReplManager) Detector() *replication.Detector { return rm.det }

// leaseValid reports whether a primary on machine mid may serve.
func (rm *ReplManager) leaseValid(mid cluster.MachineID) bool {
	return rm.det.LeaseValid(mid)
}

// Replicate enables primary/backup replication on mp with the given
// replication factor: rf-1 backup proclets are created on machines
// hosting no other replica of this set, the primary's current contents
// are snapshotted to them, and every subsequent mutating op ships log
// records before acking. rf < 2 is a no-op. The primary and its
// backups are pinned: replicated sets trade harvest mobility for
// durability (anti-affine placement must survive the rebalancer).
func (rm *ReplManager) Replicate(mp *MemoryProclet, rf int) error {
	if rf < 2 {
		return nil
	}
	if mp.rs != nil {
		return fmt.Errorf("core: %s already replicated", mp.pr.Name())
	}
	if mp.isBackup {
		return fmt.Errorf("core: %s is a backup replica", mp.pr.Name())
	}
	rs := &replicaSet{rm: rm, primary: mp, rf: rf}
	mp.rs = rs
	rm.sets[mp.ID()] = rs
	rm.sys.Sched.Pin(mp.ID())
	for i := 0; i < rf-1; i++ {
		if err := rs.addBackup(); err != nil {
			return fmt.Errorf("core: replicate %s: %w", mp.pr.Name(), err)
		}
	}
	if len(rs.pending) > 0 {
		rm.spawnFlusher(rs)
	}
	return nil
}

// replicaMachines returns the machines currently hosting any replica of
// the set (primary included).
func (rs *replicaSet) replicaMachines() map[cluster.MachineID]bool {
	used := map[cluster.MachineID]bool{rs.primary.pr.Location(): true}
	for _, b := range rs.backups {
		used[b.mp.pr.Location()] = true
	}
	return used
}

// addBackup creates one backup shell on an anti-affine machine and
// enqueues a snapshot of the primary's current contents targeted at it.
// Host-side and atomic (no yields): the backup joins the pipe and the
// snapshot is fully enqueued before any later write, so snapshot and
// live records stay totally ordered.
func (rs *replicaSet) addBackup() error {
	sys := rs.rm.sys
	target, err := sys.Sched.PlaceMemoryExcluding(rs.primary.pr.HeapBytes(), rs.replicaMachines())
	if err != nil {
		return err
	}
	rs.nextGen++
	gen := rs.nextGen
	name := fmt.Sprintf("%s.rep%d", rs.primary.pr.Name(), gen)
	bmp, err := NewMemoryProcletOn(sys, name, target)
	if err != nil {
		return err
	}
	bmp.isBackup = true
	sys.Sched.Pin(bmp.ID())
	rs.backups = append(rs.backups, &backupRef{mp: bmp, gen: gen})
	sys.Trace.Emitf(sys.K.Now(), trace.KindRepl, rs.primary.pr.Name(),
		int(rs.primary.pr.Location()), int(target), "backup %s gen=%d", name, gen)

	// Snapshot the primary's live objects into the pipe, targeted at
	// this backup only. Sorted for determinism.
	ids := make([]uint64, 0, len(rs.primary.objs))
	for id := range rs.primary.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := rs.primary.objs[id]
		rs.enqueue(repRecord{id: id, val: e.val, bytes: e.bytes, gen: gen})
	}
	return nil
}

// enqueue appends records to the pipe and returns the sequence number
// of the last one.
func (rs *replicaSet) enqueue(recs ...repRecord) uint64 {
	rs.nextSeq += uint64(len(recs))
	rs.pending = append(rs.pending, recs...)
	rs.rm.ReplRecords.Addn(int64(len(recs)))
	return rs.nextSeq
}

// replicate is the writer-side commit: append the records and block
// until the pipe has shipped past them (group commit: whoever finds
// the pipe idle ships for everyone queued behind). Ship failures do
// not fail the write — the failing backup is dropped and repaired by
// resync — but an epoch bump (failover) does: the caller must retry
// against the promoted replica.
func (rs *replicaSet) replicate(p *sim.Proc, recs ...repRecord) error {
	if len(recs) == 0 {
		return nil
	}
	epoch := rs.epoch
	seq := rs.enqueue(recs...)
	return rs.await(p, seq, epoch)
}

// await drives the pipe until shippedSeq reaches seq (pumping it if no
// other writer is).
func (rs *replicaSet) await(p *sim.Proc, seq, epoch uint64) error {
	if rs.inflight {
		for rs.epoch == epoch && rs.shippedSeq < seq {
			rs.shipped.Wait(p)
		}
		if rs.epoch != epoch {
			return errReplEpoch
		}
		return nil
	}
	rs.inflight = true
	for len(rs.pending) > 0 && rs.epoch == epoch {
		batch := rs.pending
		rs.pending = nil
		rs.shipBatch(p, batch, epoch)
		if rs.epoch != epoch {
			break
		}
		rs.shippedSeq += uint64(len(batch))
		rs.shipped.Broadcast()
	}
	rs.inflight = false
	if rs.epoch != epoch {
		return errReplEpoch
	}
	return nil
}

// shipBatch sends one batch to every live backup (filtered per backup
// by record generation). A backup that cannot be reached within
// shipAttempts, or fails to apply (out of memory), is dropped.
func (rs *replicaSet) shipBatch(p *sim.Proc, batch []repRecord, epoch uint64) {
	rs.rm.ReplBatches.Inc()
	tr := rs.rm.sys.Obs
	var sp obs.SpanID
	if tr != nil {
		sp = tr.Start(obs.KindRepl, "ship", int(rs.primary.pr.Location()), 0)
		tr.Num(sp, "records", float64(len(batch)))
	}
	refs := append([]*backupRef(nil), rs.backups...)
	for _, b := range refs {
		if rs.epoch != epoch {
			tr.End(sp)
			return
		}
		if !rs.hasBackup(b) {
			continue // dropped while we shipped to an earlier backup
		}
		recs := batch
		if hasTargeted(batch) {
			recs = filterForGen(batch, b.gen)
		}
		if len(recs) == 0 {
			b.applied += uint64(len(batch))
			continue
		}
		rt := rs.rm.sys.Runtime
		if tr != nil {
			tr.SetNext(sp) // each per-backup apply invoke is a child
		}
		_, err := rt.InvokeLimited(p, rs.primary.pr.Location(), rs.primary.pr.ID(),
			b.mp.pr.ID(), methodMemReplApply,
			proclet.Msg{Payload: &replApplyReq{recs: recs}, Bytes: payloadBytes(recs)},
			shipAttempts)
		if rs.epoch != epoch {
			tr.End(sp)
			return
		}
		if err != nil {
			// A failed ship only convicts the backup while the primary
			// itself is healthy. If the primary's machine died mid-ship,
			// the invocation failure says nothing about the backup — and
			// dropping it here would erase the very replica failover is
			// about to promote. Abort the ship; the detector decides.
			m := rs.rm.sys.Cluster.Machine(rs.primary.pr.Location())
			if rs.primary.pr.State() != proclet.StateRunning || m == nil || m.Down() {
				tr.End(sp)
				return
			}
			rs.dropBackup(b, err)
			continue
		}
		b.applied += uint64(len(batch))
	}
	tr.End(sp)
}

// hasTargeted reports whether any record in the batch is
// generation-targeted (resync snapshot entries).
func hasTargeted(batch []repRecord) bool {
	for _, r := range batch {
		if r.gen != 0 {
			return true
		}
	}
	return false
}

// filterForGen returns the records a backup of generation gen should
// apply: all broadcast records plus snapshot records targeted at it.
func filterForGen(batch []repRecord, gen uint64) []repRecord {
	out := make([]repRecord, 0, len(batch))
	for _, r := range batch {
		if r.gen == 0 || r.gen == gen {
			out = append(out, r)
		}
	}
	return out
}

// hasBackup reports whether b is still a member of the set.
func (rs *replicaSet) hasBackup(b *backupRef) bool {
	for _, x := range rs.backups {
		if x == b {
			return true
		}
	}
	return false
}

// removeBackup unlinks b from the set (shell lifecycle is the
// caller's).
func (rs *replicaSet) removeBackup(b *backupRef) {
	for i, x := range rs.backups {
		if x == b {
			rs.backups = append(rs.backups[:i], rs.backups[i+1:]...)
			return
		}
	}
}

// dropBackup removes a failed backup, destroys its shell, and kicks a
// resync to restore RF.
func (rs *replicaSet) dropBackup(b *backupRef, cause error) {
	rs.removeBackup(b)
	rs.destroyShell(b)
	rs.rm.BackupDrops.Inc()
	sys := rs.rm.sys
	sys.Trace.Emitf(sys.K.Now(), trace.KindRepl, rs.primary.pr.Name(),
		int(b.mp.pr.Location()), -1, "dropped backup %s: %v", b.mp.pr.Name(), cause)
	rs.rm.scheduleResync(rs)
}

// destroyShell retires a backup proclet in whatever state the failure
// left it.
func (rs *replicaSet) destroyShell(b *backupRef) {
	sys := rs.rm.sys
	pr := b.mp.pr
	switch pr.State() {
	case proclet.StateOrphaned:
		sys.Sched.unregister(pr.ID())
		sys.Runtime.Abandon(pr)
	case proclet.StateRunning:
		sys.Sched.unregister(pr.ID())
		_ = sys.Runtime.Destroy(pr.ID())
	}
}

// scheduleResync starts (at most one) background re-replication for the
// set.
func (rm *ReplManager) scheduleResync(rs *replicaSet) {
	if rs.resyncing {
		return
	}
	rs.resyncing = true
	rm.spawnFlusher(rs)
}

// spawnFlusher runs the resync/flush process: top the set back up to
// RF, then drain whatever the pipe holds.
func (rm *ReplManager) spawnFlusher(rs *replicaSet) {
	rm.sys.K.Spawn(fmt.Sprintf("repl/resync-%s", rs.primary.pr.Name()), func(p *sim.Proc) {
		rs.resync(p)
	})
}

// resync restores the set's replication factor and flushes the pipe.
func (rs *replicaSet) resync(p *sim.Proc) {
	defer func() { rs.resyncing = false }()
	epoch := rs.epoch
	for rs.epoch == epoch && rs.primary.pr.State() == proclet.StateRunning &&
		len(rs.backups) < rs.rf-1 {
		if err := rs.addBackup(); err != nil {
			// No anti-affine machine can host a replica right now;
			// stay degraded and let the next membership change retry.
			sys := rs.rm.sys
			sys.Trace.Emitf(sys.K.Now(), trace.KindRepl, rs.primary.pr.Name(),
				int(rs.primary.pr.Location()), -1, "resync degraded: %v", err)
			break
		}
		rs.rm.Resyncs.Inc()
		if err := rs.await(p, rs.nextSeq, epoch); err != nil {
			return
		}
	}
	if rs.epoch == epoch && len(rs.pending) > 0 {
		_ = rs.await(p, rs.nextSeq, epoch)
	}
}

// noteOrphans parks a crash's orphans until the detector rules on the
// machine (handleCrash calls this when the plane is installed).
func (rm *ReplManager) noteOrphans(mid cluster.MachineID, orphans []*proclet.Proclet) {
	if len(orphans) == 0 {
		return
	}
	rm.pendingOrphans[mid] = append(rm.pendingOrphans[mid], orphans...)
}

// onConfirm reacts to a dead-machine confirmation: failover replicated
// primaries, drop replicas, recover everything else.
func (rm *ReplManager) onConfirm(mid cluster.MachineID) {
	rm.sys.K.Spawn(fmt.Sprintf("repl/recover-m%d", mid), func(p *sim.Proc) {
		rm.recoverMachine(p, mid, true)
	})
}

// onAlive fires on every successful heartbeat; it only acts when a
// machine crashed and restarted so fast the detector never confirmed
// it — the orphans still need re-placement.
func (rm *ReplManager) onAlive(mid cluster.MachineID) {
	if len(rm.pendingOrphans[mid]) == 0 {
		return
	}
	rm.sys.K.Spawn(fmt.Sprintf("repl/recover-m%d", mid), func(p *sim.Proc) {
		rm.recoverMachine(p, mid, false)
	})
}

// setsSorted returns the replica sets ordered by primary ID
// (deterministic recovery order).
func (rm *ReplManager) setsSorted() []*replicaSet {
	ids := make([]proclet.ID, 0, len(rm.sets))
	for id := range rm.sets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*replicaSet, len(ids))
	for i, id := range ids {
		out[i] = rm.sets[id]
	}
	return out
}

// recoverMachine is the detector-driven recovery controller for one
// machine: promote away replicated primaries, drop lost backups, and
// legacy-recover everything else. confirmed is false when the machine
// answered again before confirmation (quick restart): only physically
// orphaned proclets are touched then.
func (rm *ReplManager) recoverMachine(p *sim.Proc, mid cluster.MachineID, confirmed bool) {
	orphans := rm.pendingOrphans[mid]
	delete(rm.pendingOrphans, mid)

	for _, rs := range rm.setsSorted() {
		pr := rs.primary.pr
		switch {
		case pr.State() == proclet.StateOrphaned && pr.Location() == mid:
			rm.failoverSet(p, rs)
		case confirmed && pr.State() == proclet.StateRunning && pr.Location() == mid:
			// False confirmation: the machine is alive but partitioned
			// from the monitor. Depose the primary (its lease already
			// lapsed) and promote a reachable backup.
			rm.failoverSet(p, rs)
		}
	}
	for _, rs := range rm.setsSorted() {
		refs := append([]*backupRef(nil), rs.backups...)
		for _, b := range refs {
			if b.mp.pr.Location() != mid {
				continue
			}
			if b.mp.pr.State() == proclet.StateOrphaned || confirmed {
				rs.dropBackup(b, fmt.Errorf("machine %d confirmed lost", mid))
			}
		}
	}
	for _, pr := range orphans {
		if pr.State() != proclet.StateOrphaned {
			continue // already promoted, dropped, or destroyed
		}
		if mp, ok := pr.Data.(*MemoryProclet); ok && (mp.rs != nil || mp.isBackup) {
			continue // replication handled it above
		}
		rm.sys.Sched.recoverOne(p, pr)
	}
}

// failoverSet promotes the freshest reachable backup to primary. The
// primary proclet keeps its identity — Restore re-places the same
// proclet ID on the backup's machine and the backup's contents are
// adopted — so distributed pointers and sharded handles stay valid;
// callers chase the directory update like any migration. When every
// replica is gone the set falls back to the legacy path (Rebuilder or
// Abandon).
func (rm *ReplManager) failoverSet(p *sim.Proc, rs *replicaSet) {
	sys := rm.sys
	start := sys.K.Now()
	pr := rs.primary.pr
	old := pr.Location()

	var sp obs.SpanID
	if sys.Obs != nil {
		sp = sys.Obs.Start(obs.KindRepl, "promote", int(old), 0)
	}

	switch pr.State() {
	case proclet.StateOrphaned:
		// Crash path: already detached.
	case proclet.StateRunning:
		m := sys.Cluster.Machine(old)
		if m != nil && !m.Down() && rm.leaseValid(old) {
			// Never depose a primary that could still be serving: the
			// no-split-brain invariant outranks failover progress.
			sys.Trace.Emitf(start, trace.KindRepl, pr.Name(), int(old), -1,
				"failover refused: lease valid until %v", rm.det.LeaseExpiry(old))
			if sys.Obs != nil {
				sys.Obs.Str(sp, "refused", "lease valid")
				sys.Obs.End(sp)
			}
			return
		}
		if err := sys.Runtime.Depose(pr); err != nil {
			if sys.Obs != nil {
				sys.Obs.SetErr(sp, err)
				sys.Obs.End(sp)
			}
			return
		}
		rm.Deposes.Inc()
	default:
		sys.Obs.End(sp)
		return
	}

	// Abandon the in-flight pipe: unshipped records belong to writes
	// that were never acked (their writers abort via the epoch bump and
	// retry against the promoted replica).
	rs.epoch++
	rs.pending = nil
	rs.shippedSeq = rs.nextSeq
	rs.shipped.Broadcast()

	for {
		b := rs.freshestLive()
		if b == nil {
			if sys.Obs != nil {
				sys.Obs.Str(sp, "outcome", "fallback")
				sys.Obs.End(sp)
			}
			rm.fallbackRecover(p, rs)
			return
		}
		target := b.mp.pr.Location()
		rs.primary.objs = b.mp.objs
		if b.mp.nextObj > rs.primary.nextObj {
			rs.primary.nextObj = b.mp.nextObj
		}
		pr.ResetHeap()
		if err := sys.Runtime.Restore(p, pr, target); err != nil {
			// The backup's machine died during the restore; its shell
			// is now orphaned and the next candidate is tried.
			continue
		}
		// Transfer the heap accounting: retire the shell (freeing its
		// charge on target) and immediately re-charge it to the
		// promoted primary. No yield in between, so it cannot fail.
		heap := b.mp.pr.HeapBytes()
		rs.removeBackup(b)
		rs.destroyShell(b)
		if err := pr.GrowHeap(heap); err != nil {
			panic(fmt.Sprintf("core: failover re-charge of %d bytes on m%d failed: %v",
				heap, target, err))
		}
		rm.Promotions.Inc()
		rm.PromoteLatency.ObserveDuration(time.Duration(sys.K.Now() - start))
		sys.Sched.Recoveries.Inc()
		sys.Trace.Emitf(sys.K.Now(), trace.KindRepl, pr.Name(), int(old), int(target),
			"promoted backup gen=%d applied=%d heap=%d", b.gen, b.applied, heap)
		if sys.Obs != nil {
			sys.Obs.SetRoute(sp, int(old), int(target))
			sys.Obs.Num(sp, "gen", float64(b.gen))
			sys.Obs.End(sp)
		}
		rm.scheduleResync(rs)
		return
	}
}

// freshestLive returns the backup with the highest applied sequence
// whose machine is up (ties break toward the lowest proclet ID, which
// is creation order).
func (rs *replicaSet) freshestLive() *backupRef {
	var best *backupRef
	for _, b := range rs.backups {
		if b.mp.pr.State() != proclet.StateRunning {
			continue
		}
		m := rs.rm.sys.Cluster.Machine(b.mp.pr.Location())
		if m == nil || m.Down() {
			continue
		}
		if best == nil || b.applied > best.applied ||
			(b.applied == best.applied && b.mp.ID() < best.mp.ID()) {
			best = b
		}
	}
	return best
}

// fallbackRecover handles the every-replica-died case: the legacy
// recovery path re-places the primary empty (Rebuilder reconstructs it
// if installed, otherwise it is shed), then RF is restored around
// whatever came back.
func (rm *ReplManager) fallbackRecover(p *sim.Proc, rs *replicaSet) {
	sys := rm.sys
	pr := rs.primary.pr
	sys.Trace.Emitf(sys.K.Now(), trace.KindRepl, pr.Name(), int(pr.Location()), -1,
		"all replicas lost; falling back to rebuild/abandon")
	for _, b := range append([]*backupRef(nil), rs.backups...) {
		rs.removeBackup(b)
		rs.destroyShell(b)
	}
	sys.Sched.recoverOne(p, pr)
	if pr.State() == proclet.StateRunning {
		rm.scheduleResync(rs)
	} else {
		delete(rm.sets, pr.ID())
		rs.primary.rs = nil
	}
}

// release tears a replica set down when its primary is destroyed by
// the application.
func (rs *replicaSet) release() {
	rs.epoch++
	rs.pending = nil
	rs.shippedSeq = rs.nextSeq
	rs.shipped.Broadcast()
	for _, b := range append([]*backupRef(nil), rs.backups...) {
		rs.removeBackup(b)
		rs.destroyShell(b)
	}
	delete(rs.rm.sets, rs.primary.pr.ID())
	rs.primary.rs = nil
}

// SetStatus is one replica set's observable state (qsctl replicas).
type SetStatus struct {
	Name           string
	PrimaryID      proclet.ID
	PrimaryMachine cluster.MachineID
	LeaseValid     bool
	LeaseExpiry    sim.Time
	Seq            uint64 // records enqueued at the primary
	Backups        []BackupStatus
}

// BackupStatus is one backup replica's observable state.
type BackupStatus struct {
	Name    string
	ID      proclet.ID
	Machine cluster.MachineID
	Applied uint64
	Lag     uint64 // primary records not yet processed for this backup
}

// Status snapshots every replica set, sorted by primary ID.
func (rm *ReplManager) Status() []SetStatus {
	out := make([]SetStatus, 0, len(rm.sets))
	for _, rs := range rm.setsSorted() {
		mid := rs.primary.pr.Location()
		st := SetStatus{
			Name:           rs.primary.pr.Name(),
			PrimaryID:      rs.primary.pr.ID(),
			PrimaryMachine: mid,
			LeaseValid:     rm.det.LeaseValid(mid),
			LeaseExpiry:    rm.det.LeaseExpiry(mid),
			Seq:            rs.nextSeq,
		}
		for _, b := range rs.backups {
			st.Backups = append(st.Backups, BackupStatus{
				Name:    b.mp.pr.Name(),
				ID:      b.mp.ID(),
				Machine: b.mp.pr.Location(),
				Applied: b.applied,
				Lag:     rs.nextSeq - b.applied,
			})
		}
		out = append(out, st)
	}
	return out
}
