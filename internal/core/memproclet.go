package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Memory-proclet method names (the runtime-level RPC surface behind
// distributed pointers and sharded structures).
const (
	methodMemGet      = "mem.get"
	methodMemGetBatch = "mem.getbatch"
	methodMemPut      = "mem.put"
	methodMemDel      = "mem.del"
	methodMemScan     = "mem.scan"
	methodMemPutBatch = "mem.putbatch"
	methodMemDelRange = "mem.delrange"
	methodMemTake     = "mem.take"
	methodMemUpdate   = "mem.update"
)

// objOverheadBytes is the accounting overhead per stored object
// (allocator metadata, index entry).
const objOverheadBytes = 64

// ErrNoObject is returned when dereferencing a dangling pointer.
var ErrNoObject = errors.New("core: no such object")

// objEntry is one stored object inside a memory proclet.
type objEntry struct {
	val   any
	bytes int64
}

// MemoryProclet is a resource proclet specialized for memory: it stores
// in-memory objects and exposes NewPtr-style distributed pointers for
// access from anywhere in the cluster (§3.1). Its compute footprint is
// negligible — data operations cost network transfer, not CPU — so the
// scheduler places and migrates it purely by memory availability.
//
// Unreplicated, every method serves on the inline fast-dispatch path:
// none of them blocks, so remote operations are served at the instant
// the request is delivered — no handler process, no goroutine handoff.
// A replicated primary (rs != nil) keeps reads inline but declines
// mutating fast dispatches to their blocking fallbacks, which ship log
// records to the backups before acking (replication.go).
type MemoryProclet struct {
	sys     *System
	pr      *proclet.Proclet
	objs    map[uint64]objEntry
	nextObj uint64

	// rs is the replica set when this proclet is a replicated primary.
	rs *replicaSet
	// isBackup marks a backup replica: it serves only mem.replapply
	// traffic from its primary and is excluded from generic recovery.
	isBackup bool
}

// putReq is the wire argument of mem.put.
type putReq struct {
	id    uint64
	val   any
	bytes int64
}

// scanReq asks for all objects with id in [lo, hi).
type scanReq struct {
	lo, hi uint64
}

// getBatchReq asks for a specific set of objects by ID (request fan-in:
// many reads against one shard collapse into one invocation).
type getBatchReq struct {
	ids []uint64
}

// scanRes carries a batch of objects out of mem.scan; it doubles as the
// argument to mem.putbatch (bulk loads and shard splits/merges).
type scanRes struct {
	ids   []uint64
	vals  []any
	bytes []int64
}

// totalBytes sums the batch's payload bytes.
func (r *scanRes) totalBytes() int64 {
	var sum int64
	for _, b := range r.bytes {
		sum += b
	}
	return sum
}

// NewMemoryProclet creates a memory proclet on an explicit machine.
// Most callers use the scheduler-driven System.NewMemoryProclet.
func NewMemoryProcletOn(sys *System, name string, m cluster.MachineID) (*MemoryProclet, error) {
	pr, err := sys.Runtime.Spawn(name, m, 0)
	if err != nil {
		return nil, err
	}
	mp := &MemoryProclet{sys: sys, pr: pr, objs: make(map[uint64]objEntry)}
	pr.Data = mp
	mp.registerMethods()
	mp.registerMutators()
	sys.Sched.register(pr, KindMemory)
	return mp, nil
}

// NewMemoryProclet creates a memory proclet, letting the scheduler pick
// the machine with the most free memory.
func (s *System) NewMemoryProclet(name string, expectedBytes int64) (*MemoryProclet, error) {
	m, err := s.Sched.PlaceMemory(expectedBytes)
	if err != nil {
		return nil, err
	}
	return NewMemoryProcletOn(s, name, m)
}

// gate refuses service while ownership is unproven: a replicated
// primary serves only under a valid lease, so a primary partitioned
// from the monitor fails fast (retryably) instead of serving reads a
// promoted backup may already contradict. Unreplicated proclets pay a
// single nil check.
func (mp *MemoryProclet) gate() error {
	rs := mp.rs
	if rs == nil {
		return nil
	}
	mid := mp.pr.Location()
	if !rs.rm.leaseValid(mid) {
		return fmt.Errorf("%w: %s lease lapsed on m%d", proclet.ErrUnavailable, mp.pr.Name(), mid)
	}
	return nil
}

// applyFn applies one mutating operation to local state and returns the
// log records describing its effect. Records are built only when the
// proclet is a replicated primary; the unreplicated fast path allocates
// nothing.
type applyFn func(arg proclet.Msg) (proclet.Msg, []repRecord, error)

// fastMutator serves an unreplicated mutator inline. A replicated
// primary declines every invocation to the blocking fallback: the write
// must ship log records before acking, which blocks.
func (mp *MemoryProclet) fastMutator(apply applyFn) proclet.FastMethod {
	return func(arg proclet.Msg) (proclet.Msg, error) {
		if mp.rs != nil {
			return proclet.Msg{}, simnet.ErrWouldBlock
		}
		res, _, err := apply(arg)
		return res, err
	}
}

// replMutator is the blocking fallback for a replicated primary: check
// the lease, apply locally, group-commit the records to the backups,
// then ack.
func (mp *MemoryProclet) replMutator(apply applyFn) proclet.Method {
	return func(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
		rs := mp.rs
		if rs == nil {
			// Replication was released between the fast decline and this
			// dispatch; serve plainly.
			res, _, err := apply(arg)
			return res, err
		}
		if err := mp.gate(); err != nil {
			return proclet.Msg{}, err
		}
		res, recs, err := apply(arg)
		if err != nil {
			return proclet.Msg{}, err
		}
		if err := rs.replicate(ctx.Proc, recs...); err != nil {
			return proclet.Msg{}, err
		}
		return res, nil
	}
}

func (mp *MemoryProclet) registerMethods() {
	mp.pr.HandleFast(methodMemGet, func(arg proclet.Msg) (proclet.Msg, error) {
		if err := mp.gate(); err != nil {
			return proclet.Msg{}, err
		}
		id := arg.Payload.(uint64)
		e, ok := mp.objs[id]
		if !ok {
			return proclet.Msg{}, fmt.Errorf("%w: obj %d in %s", ErrNoObject, id, mp.pr.Name())
		}
		return proclet.Msg{Payload: e.val, Bytes: e.bytes}, nil
	})
	mp.pr.HandleFast(methodMemGetBatch, func(arg proclet.Msg) (proclet.Msg, error) {
		// Read-only and non-blocking, so like mem.get it serves on the
		// inline fast path even on a replicated primary. Absent IDs are
		// skipped: the response lists what was found.
		if err := mp.gate(); err != nil {
			return proclet.Msg{}, err
		}
		r := arg.Payload.(*getBatchReq)
		res := &scanRes{}
		for _, id := range r.ids {
			if e, ok := mp.objs[id]; ok {
				res.ids = append(res.ids, id)
				res.vals = append(res.vals, e.val)
				res.bytes = append(res.bytes, e.bytes)
			}
		}
		return proclet.Msg{Payload: res, Bytes: res.totalBytes()}, nil
	})
	mp.pr.HandleWithFallback(methodMemPut, mp.fastMutator(mp.applyPut), mp.replMutator(mp.applyPut))
	mp.pr.HandleWithFallback(methodMemDel, mp.fastMutator(mp.applyDel), mp.replMutator(mp.applyDel))
	mp.pr.HandleFast(methodMemScan, func(arg proclet.Msg) (proclet.Msg, error) {
		if err := mp.gate(); err != nil {
			return proclet.Msg{}, err
		}
		r := arg.Payload.(*scanReq)
		res := &scanRes{}
		for _, id := range mp.idsInRange(r.lo, r.hi) {
			e := mp.objs[id]
			res.ids = append(res.ids, id)
			res.vals = append(res.vals, e.val)
			res.bytes = append(res.bytes, e.bytes)
		}
		return proclet.Msg{Payload: res, Bytes: res.totalBytes()}, nil
	})
	mp.pr.HandleWithFallback(methodMemPutBatch, mp.fastMutator(mp.applyPutBatch), mp.replMutator(mp.applyPutBatch))
	mp.pr.HandleWithFallback(methodMemDelRange, mp.fastMutator(mp.applyDelRange), mp.replMutator(mp.applyDelRange))
	mp.pr.HandleFast(methodMemReplApply, func(arg proclet.Msg) (proclet.Msg, error) {
		// Backup side of log shipping: apply a record batch. Records are
		// absolute effects, so reapplying after a retried ship is
		// idempotent. A heap-growth failure leaves this backup stale and
		// errors the ship; the primary drops and replaces it.
		r := arg.Payload.(*replApplyReq)
		for _, rec := range r.recs {
			if rec.del {
				if e, ok := mp.objs[rec.id]; ok {
					delete(mp.objs, rec.id)
					if err := mp.pr.GrowHeap(-(e.bytes + objOverheadBytes)); err != nil {
						return proclet.Msg{}, err
					}
				}
				continue
			}
			delta := rec.bytes + objOverheadBytes
			if old, existed := mp.objs[rec.id]; existed {
				delta -= old.bytes + objOverheadBytes
			}
			if err := mp.pr.GrowHeap(delta); err != nil {
				return proclet.Msg{}, err
			}
			mp.objs[rec.id] = objEntry{val: rec.val, bytes: rec.bytes}
			if rec.id > mp.nextObj {
				mp.nextObj = rec.id
			}
		}
		return proclet.Msg{}, nil
	})
}

func (mp *MemoryProclet) applyPut(arg proclet.Msg) (proclet.Msg, []repRecord, error) {
	r := arg.Payload.(*putReq)
	old, existed := mp.objs[r.id]
	delta := r.bytes + objOverheadBytes
	if existed {
		delta -= old.bytes + objOverheadBytes
	}
	if err := mp.pr.GrowHeap(delta); err != nil {
		return proclet.Msg{}, nil, err
	}
	mp.objs[r.id] = objEntry{val: r.val, bytes: r.bytes}
	var recs []repRecord
	if mp.rs != nil {
		recs = []repRecord{{id: r.id, val: r.val, bytes: r.bytes}}
	}
	return proclet.Msg{}, recs, nil
}

func (mp *MemoryProclet) applyDel(arg proclet.Msg) (proclet.Msg, []repRecord, error) {
	id := arg.Payload.(uint64)
	e, ok := mp.objs[id]
	if !ok {
		return proclet.Msg{}, nil, fmt.Errorf("%w: obj %d", ErrNoObject, id)
	}
	delete(mp.objs, id)
	if err := mp.pr.GrowHeap(-(e.bytes + objOverheadBytes)); err != nil {
		return proclet.Msg{}, nil, err
	}
	var recs []repRecord
	if mp.rs != nil {
		recs = []repRecord{{id: id, del: true}}
	}
	return proclet.Msg{}, recs, nil
}

func (mp *MemoryProclet) applyPutBatch(arg proclet.Msg) (proclet.Msg, []repRecord, error) {
	r := arg.Payload.(*scanRes)
	var delta int64
	for i, id := range r.ids {
		if old, existed := mp.objs[id]; existed {
			delta -= old.bytes + objOverheadBytes
		}
		delta += r.bytes[i] + objOverheadBytes
	}
	if err := mp.pr.GrowHeap(delta); err != nil {
		return proclet.Msg{}, nil, err
	}
	var recs []repRecord
	if mp.rs != nil {
		recs = make([]repRecord, 0, len(r.ids))
	}
	for i, id := range r.ids {
		mp.objs[id] = objEntry{val: r.vals[i], bytes: r.bytes[i]}
		if id > mp.nextObj {
			mp.nextObj = id
		}
		if mp.rs != nil {
			recs = append(recs, repRecord{id: id, val: r.vals[i], bytes: r.bytes[i]})
		}
	}
	return proclet.Msg{}, recs, nil
}

func (mp *MemoryProclet) applyDelRange(arg proclet.Msg) (proclet.Msg, []repRecord, error) {
	r := arg.Payload.(*scanReq)
	var delta int64
	var recs []repRecord
	for _, id := range mp.idsInRange(r.lo, r.hi) {
		e := mp.objs[id]
		delete(mp.objs, id)
		delta -= e.bytes + objOverheadBytes
		if mp.rs != nil {
			recs = append(recs, repRecord{id: id, del: true})
		}
	}
	if delta != 0 {
		if err := mp.pr.GrowHeap(delta); err != nil {
			return proclet.Msg{}, nil, err
		}
	}
	return proclet.Msg{}, recs, nil
}

// UpdateFn mutates one object in place, inside the memory proclet —
// compute shipped to the data. It receives the old value (if any) and
// returns the new value with its size; returning keep=false deletes the
// object instead.
type UpdateFn func(old any, exists bool) (val any, bytes int64, keep bool)

// updateReq is the wire argument of mem.update. argBytes sizes the
// closure's captured state on the wire.
type updateReq struct {
	id uint64
	fn UpdateFn
}

// registerMutators installs the take/update methods (split out of
// registerMethods for readability).
func (mp *MemoryProclet) registerMutators() {
	mp.pr.HandleWithFallback(methodMemTake, mp.fastMutator(mp.applyTake), mp.replMutator(mp.applyTake))
	mp.pr.HandleWithFallback(methodMemUpdate, mp.fastMutator(mp.applyUpdate), mp.replMutator(mp.applyUpdate))
}

func (mp *MemoryProclet) applyTake(arg proclet.Msg) (proclet.Msg, []repRecord, error) {
	id := arg.Payload.(uint64)
	e, ok := mp.objs[id]
	if !ok {
		return proclet.Msg{}, nil, fmt.Errorf("%w: obj %d in %s", ErrNoObject, id, mp.pr.Name())
	}
	delete(mp.objs, id)
	if err := mp.pr.GrowHeap(-(e.bytes + objOverheadBytes)); err != nil {
		return proclet.Msg{}, nil, err
	}
	var recs []repRecord
	if mp.rs != nil {
		recs = []repRecord{{id: id, del: true}}
	}
	return proclet.Msg{Payload: e.val, Bytes: e.bytes}, recs, nil
}

func (mp *MemoryProclet) applyUpdate(arg proclet.Msg) (proclet.Msg, []repRecord, error) {
	// The closure runs at the primary only; its resulting value — not
	// the closure — is what replicates, so backups never re-run
	// application code.
	r := arg.Payload.(*updateReq)
	old, existed := mp.objs[r.id]
	val, bytes, keep := r.fn(old.val, existed)
	var delta int64
	switch {
	case keep && existed:
		delta = bytes - old.bytes
	case keep:
		delta = bytes + objOverheadBytes
	case existed:
		delta = -(old.bytes + objOverheadBytes)
	default:
		return proclet.Msg{}, nil, nil
	}
	if err := mp.pr.GrowHeap(delta); err != nil {
		return proclet.Msg{}, nil, err
	}
	var recs []repRecord
	if keep {
		mp.objs[r.id] = objEntry{val: val, bytes: bytes}
		if r.id > mp.nextObj {
			mp.nextObj = r.id
		}
		if mp.rs != nil {
			recs = []repRecord{{id: r.id, val: val, bytes: bytes}}
		}
	} else {
		delete(mp.objs, r.id)
		if mp.rs != nil {
			recs = []repRecord{{id: r.id, del: true}}
		}
	}
	return proclet.Msg{}, recs, nil
}

// Put stores val at an explicit object ID (sharded structures derive
// IDs from element indices or key hashes).
func (mp *MemoryProclet) Put(p *sim.Proc, from cluster.MachineID, id uint64, val any, bytes int64) error {
	_, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemPut,
		proclet.Msg{Payload: &putReq{id: id, val: val, bytes: bytes}, Bytes: bytes})
	return err
}

// Get fetches the object with the given ID.
func (mp *MemoryProclet) Get(p *sim.Proc, from cluster.MachineID, id uint64) (any, error) {
	res, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemGet,
		proclet.Msg{Payload: id, Bytes: 8})
	if err != nil {
		return nil, err
	}
	return res.Payload, nil
}

// GetBatch fetches the objects with the given IDs in one invocation.
// Absent IDs are skipped: the returned ids slice lists what was found,
// aligned with vals. One batched call costs one network round instead
// of len(ids), which is the point — open-loop serving fans many
// same-shard reads into a single RPC.
func (mp *MemoryProclet) GetBatch(p *sim.Proc, from cluster.MachineID, ids []uint64) ([]uint64, []any, error) {
	res, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemGetBatch,
		proclet.Msg{Payload: &getBatchReq{ids: ids}, Bytes: int64(8 * len(ids))})
	if err != nil {
		return nil, nil, err
	}
	r := res.Payload.(*scanRes)
	return r.ids, r.vals, nil
}

// Del removes the object with the given ID.
func (mp *MemoryProclet) Del(p *sim.Proc, from cluster.MachineID, id uint64) error {
	_, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemDel,
		proclet.Msg{Payload: id, Bytes: 8})
	return err
}

// Take atomically fetches and removes the object (queue pops).
func (mp *MemoryProclet) Take(p *sim.Proc, from cluster.MachineID, id uint64) (any, error) {
	res, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemTake,
		proclet.Msg{Payload: id, Bytes: 8})
	if err != nil {
		return nil, err
	}
	return res.Payload, nil
}

// Update applies fn to the object with the given ID inside the proclet,
// charging argBytes for the shipped closure state. The object is
// created, replaced, or deleted according to fn's result.
func (mp *MemoryProclet) Update(p *sim.Proc, from cluster.MachineID, id uint64, argBytes int64, fn UpdateFn) error {
	_, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemUpdate,
		proclet.Msg{Payload: &updateReq{id: id, fn: fn}, Bytes: argBytes})
	return err
}

// idsInRange returns the IDs of stored objects in [lo, hi), ascending.
// It iterates the object table (not the range), so sparse ID spaces —
// hash-sharded maps — scan in O(objects).
func (mp *MemoryProclet) idsInRange(lo, hi uint64) []uint64 {
	var ids []uint64
	for id := range mp.objs {
		if id >= lo && id < hi {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Scan reads all objects with IDs in [lo, hi) from the proclet.
func (mp *MemoryProclet) Scan(p *sim.Proc, from cluster.MachineID, lo, hi uint64) (ids []uint64, vals []any, sizes []int64, err error) {
	res, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemScan,
		proclet.Msg{Payload: &scanReq{lo: lo, hi: hi}, Bytes: 16})
	if err != nil {
		return nil, nil, nil, err
	}
	r := res.Payload.(*scanRes)
	return r.ids, r.vals, r.bytes, nil
}

// PutBatch bulk-stores objects (used by loaders and shard splits).
func (mp *MemoryProclet) PutBatch(p *sim.Proc, from cluster.MachineID, ids []uint64, vals []any, sizes []int64) error {
	batch := &scanRes{ids: ids, vals: vals, bytes: sizes}
	_, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemPutBatch,
		proclet.Msg{Payload: batch, Bytes: batch.totalBytes()})
	return err
}

// DelRange bulk-deletes objects with IDs in [lo, hi).
func (mp *MemoryProclet) DelRange(p *sim.Proc, from cluster.MachineID, lo, hi uint64) error {
	_, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemDelRange,
		proclet.Msg{Payload: &scanReq{lo: lo, hi: hi}, Bytes: 16})
	return err
}

// Proclet returns the underlying proclet.
func (mp *MemoryProclet) Proclet() *proclet.Proclet { return mp.pr }

// ID returns the underlying proclet ID.
func (mp *MemoryProclet) ID() proclet.ID { return mp.pr.ID() }

// Location returns the hosting machine.
func (mp *MemoryProclet) Location() cluster.MachineID { return mp.pr.Location() }

// HeapBytes returns accounted state size.
func (mp *MemoryProclet) HeapBytes() int64 { return mp.pr.HeapBytes() }

// NumObjects returns the number of stored objects.
func (mp *MemoryProclet) NumObjects() int { return len(mp.objs) }

// Destroy removes the proclet and its objects. Destroying a replicated
// primary tears down its backups too.
func (mp *MemoryProclet) Destroy() error {
	if mp.rs != nil {
		mp.rs.release()
	}
	mp.sys.Sched.unregister(mp.pr.ID())
	return mp.sys.Runtime.Destroy(mp.pr.ID())
}

// allocID reserves a fresh object ID (host-side; IDs are proclet-local).
func (mp *MemoryProclet) allocID() uint64 {
	mp.nextObj++
	return mp.nextObj
}

// Ptr is a distributed pointer to an object stored in a memory proclet
// (§3.1's NewPtr<T>). It stays valid across proclet migrations: the
// runtime re-resolves the proclet's location on every dereference.
type Ptr[T any] struct {
	sys   *System
	pid   proclet.ID
	obj   uint64
	bytes int64
}

// NewPtr allocates val into the memory proclet and returns a
// distributed pointer to it. p is the allocating process; from is the
// machine it runs on (invocation is routed like any other call).
func NewPtr[T any](p *sim.Proc, from cluster.MachineID, mp *MemoryProclet, val T, bytes int64) (Ptr[T], error) {
	id := mp.allocID()
	_, err := mp.sys.Runtime.Invoke(p, from, 0, mp.ID(), methodMemPut,
		proclet.Msg{Payload: &putReq{id: id, val: val, bytes: bytes}, Bytes: bytes})
	if err != nil {
		return Ptr[T]{}, err
	}
	return Ptr[T]{sys: mp.sys, pid: mp.ID(), obj: id, bytes: bytes}, nil
}

// Nil reports whether the pointer is unset.
func (pt Ptr[T]) Nil() bool { return pt.sys == nil }

// ProcletID returns the memory proclet holding the object.
func (pt Ptr[T]) ProcletID() proclet.ID { return pt.pid }

// Bytes returns the object's accounted size.
func (pt Ptr[T]) Bytes() int64 { return pt.bytes }

// Deref fetches the object from wherever its memory proclet currently
// lives. Local access costs a function call; remote access an RPC
// carrying the object's bytes.
func (pt Ptr[T]) Deref(p *sim.Proc, from cluster.MachineID) (T, error) {
	var zero T
	res, err := pt.sys.Runtime.Invoke(p, from, 0, pt.pid, methodMemGet,
		proclet.Msg{Payload: pt.obj, Bytes: 8})
	if err != nil {
		return zero, err
	}
	return res.Payload.(T), nil
}

// Store overwrites the object in place (same pointer, new value).
func (pt *Ptr[T]) Store(p *sim.Proc, from cluster.MachineID, val T, bytes int64) error {
	_, err := pt.sys.Runtime.Invoke(p, from, 0, pt.pid, methodMemPut,
		proclet.Msg{Payload: &putReq{id: pt.obj, val: val, bytes: bytes}, Bytes: bytes})
	if err == nil {
		pt.bytes = bytes
	}
	return err
}

// Free deletes the object.
func (pt Ptr[T]) Free(p *sim.Proc, from cluster.MachineID) error {
	_, err := pt.sys.Runtime.Invoke(p, from, 0, pt.pid, methodMemDel,
		proclet.Msg{Payload: pt.obj, Bytes: 8})
	return err
}
