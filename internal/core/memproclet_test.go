package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/proclet"
	"repro/internal/sim"
)

// testSystem builds a 2-machine system with generous defaults and a
// fast-reacting scheduler (not started unless the test starts it).
func testSystem(t *testing.T, machines ...cluster.MachineConfig) *System {
	t.Helper()
	if len(machines) == 0 {
		machines = []cluster.MachineConfig{
			{Cores: 8, MemBytes: 1 << 30},
			{Cores: 8, MemBytes: 1 << 30},
		}
	}
	cfg := DefaultConfig()
	return NewSystem(cfg, machines)
}

func TestMaxShardBytesDerivation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetMigrationLatency = 5 * time.Millisecond
	cfg.Net.Bandwidth = 12_500_000_000
	want := int64(62_500_000) // 5ms at 12.5 GB/s
	if got := cfg.MaxShardBytes(); got != want {
		t.Errorf("MaxShardBytes = %d, want %d", got, want)
	}
}

func TestMemoryProcletPutGet(t *testing.T) {
	s := testSystem(t)
	mp, err := NewMemoryProcletOn(s, "mem", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.K.Spawn("client", func(p *sim.Proc) {
		ptr, err := NewPtr(p, 0, mp, "hello", 100)
		if err != nil {
			t.Errorf("NewPtr: %v", err)
			return
		}
		v, err := ptr.Deref(p, 0)
		if err != nil || v != "hello" {
			t.Errorf("Deref = %q, %v", v, err)
		}
		// Heap accounting: value + overhead.
		if mp.HeapBytes() != 100+objOverheadBytes {
			t.Errorf("HeapBytes = %d, want %d", mp.HeapBytes(), 100+objOverheadBytes)
		}
		if err := ptr.Free(p, 0); err != nil {
			t.Errorf("Free: %v", err)
		}
		if mp.HeapBytes() != 0 {
			t.Errorf("HeapBytes after free = %d", mp.HeapBytes())
		}
		if _, err := ptr.Deref(p, 0); !errors.Is(err, ErrNoObject) {
			t.Errorf("Deref after free: %v, want ErrNoObject", err)
		}
	})
	s.K.Run()
}

func TestPtrStoreOverwrites(t *testing.T) {
	s := testSystem(t)
	mp, _ := NewMemoryProcletOn(s, "mem", 0)
	s.K.Spawn("client", func(p *sim.Proc) {
		ptr, _ := NewPtr(p, 0, mp, 1, 50)
		if err := ptr.Store(p, 0, 2, 80); err != nil {
			t.Errorf("Store: %v", err)
		}
		v, _ := ptr.Deref(p, 0)
		if v != 2 {
			t.Errorf("Deref = %v, want 2", v)
		}
		if mp.HeapBytes() != 80+objOverheadBytes {
			t.Errorf("HeapBytes = %d, want %d (overwrite replaces)", mp.HeapBytes(), 80+objOverheadBytes)
		}
	})
	s.K.Run()
}

func TestPtrRemoteDerefCostsNetwork(t *testing.T) {
	s := testSystem(t)
	mp, _ := NewMemoryProcletOn(s, "mem", 1)
	var local, remote time.Duration
	s.K.Spawn("client", func(p *sim.Proc) {
		ptr, _ := NewPtr(p, 0, mp, []byte("img"), 1<<20)
		start := p.Now()
		if _, err := ptr.Deref(p, 1); err != nil { // from the same machine
			t.Errorf("local deref: %v", err)
		}
		local = p.Now().Sub(start)
		start = p.Now()
		if _, err := ptr.Deref(p, 0); err != nil { // across the wire
			t.Errorf("remote deref: %v", err)
		}
		remote = p.Now().Sub(start)
	})
	s.K.Run()
	if remote <= local {
		t.Errorf("remote deref (%v) should cost more than local (%v)", remote, local)
	}
	// 1 MiB at 12.5 GB/s ~ 84us; remote must be at least the wire time.
	if remote < 80*time.Microsecond {
		t.Errorf("remote deref = %v, want >= ~84us of wire time", remote)
	}
}

func TestPtrDerefFollowsMigration(t *testing.T) {
	s := testSystem(t)
	mp, _ := NewMemoryProcletOn(s, "mem", 0)
	s.K.Spawn("client", func(p *sim.Proc) {
		ptr, _ := NewPtr(p, 0, mp, 7, 64)
		if err := s.Runtime.Migrate(p, mp.ID(), 1); err != nil {
			t.Fatalf("Migrate: %v", err)
		}
		v, err := ptr.Deref(p, 0)
		if err != nil || v != 7 {
			t.Errorf("Deref after migration = %v, %v", v, err)
		}
	})
	s.K.Run()
	if s.Cluster.Machine(1).MemUsed() == 0 {
		t.Error("object bytes did not move with the proclet")
	}
}

func TestMemScanAndBatchOps(t *testing.T) {
	s := testSystem(t)
	src, _ := NewMemoryProcletOn(s, "src", 0)
	dst, _ := NewMemoryProcletOn(s, "dst", 1)
	s.K.Spawn("client", func(p *sim.Proc) {
		var ids []uint64
		var vals []any
		var sizes []int64
		for i := 0; i < 10; i++ {
			ids = append(ids, uint64(i+1))
			vals = append(vals, i*i)
			sizes = append(sizes, 100)
		}
		if err := src.PutBatch(p, 0, ids, vals, sizes); err != nil {
			t.Fatalf("PutBatch: %v", err)
		}
		if src.NumObjects() != 10 {
			t.Errorf("NumObjects = %d, want 10", src.NumObjects())
		}
		gotIDs, gotVals, gotSizes, err := src.Scan(p, 0, 3, 7)
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if len(gotIDs) != 4 || gotIDs[0] != 3 || gotVals[1].(int) != 9 || gotSizes[0] != 100 {
			t.Errorf("Scan = %v %v %v", gotIDs, gotVals, gotSizes)
		}
		// Move the scanned range to dst (a shard split's data plane).
		if err := dst.PutBatch(p, 0, gotIDs, gotVals, gotSizes); err != nil {
			t.Fatalf("dst PutBatch: %v", err)
		}
		if err := src.DelRange(p, 0, 3, 7); err != nil {
			t.Fatalf("DelRange: %v", err)
		}
		if src.NumObjects() != 6 || dst.NumObjects() != 4 {
			t.Errorf("after move: src=%d dst=%d, want 6/4", src.NumObjects(), dst.NumObjects())
		}
		wantSrc := int64(6 * (100 + objOverheadBytes))
		if src.HeapBytes() != wantSrc {
			t.Errorf("src heap = %d, want %d", src.HeapBytes(), wantSrc)
		}
	})
	s.K.Run()
}

func TestMemoryProcletOOMBubblesUp(t *testing.T) {
	s := testSystem(t, cluster.MachineConfig{Cores: 4, MemBytes: 10_000})
	mp, _ := NewMemoryProcletOn(s, "mem", 0)
	s.K.Spawn("client", func(p *sim.Proc) {
		if _, err := NewPtr(p, 0, mp, 1, 50_000); !errors.Is(err, cluster.ErrNoMemory) {
			t.Errorf("err = %v, want ErrNoMemory", err)
		}
	})
	s.K.Run()
}

func TestNewMemoryProcletPlacement(t *testing.T) {
	// Scheduler places memory proclets on the machine with most free RAM.
	s := testSystem(t,
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 20},
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 30},
	)
	mp, err := s.NewMemoryProclet("mem", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Location() != 1 {
		t.Errorf("placed on %d, want 1 (most free memory)", mp.Location())
	}
}

func TestMemoryProcletDestroy(t *testing.T) {
	s := testSystem(t)
	mp, _ := NewMemoryProcletOn(s, "mem", 0)
	s.K.Spawn("client", func(p *sim.Proc) {
		if _, err := NewPtr(p, 0, mp, 1, 100); err != nil {
			t.Fatal(err)
		}
	})
	s.K.Run()
	if err := mp.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if s.Cluster.Machine(0).MemUsed() != 0 {
		t.Errorf("memory leaked: %d", s.Cluster.Machine(0).MemUsed())
	}
	if _, ok := s.Sched.info[mp.ID()]; ok {
		t.Error("proclet still registered with scheduler")
	}
}

func TestClientInvoke(t *testing.T) {
	s := testSystem(t)
	mp, _ := NewMemoryProcletOn(s, "mem", 1)
	cl := s.Client(0)
	if cl.Machine() != 0 {
		t.Errorf("Machine = %d", cl.Machine())
	}
	s.K.Spawn("driver", func(p *sim.Proc) {
		ptr, err := NewPtr(p, 1, mp, 5, 64)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Invoke(p, mp.ID(), "mem.get", proclet.Msg{Payload: ptr.obj, Bytes: 8})
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		if res.Payload != 5 {
			t.Errorf("payload = %v, want 5", res.Payload)
		}
	})
	s.K.Run()
}
