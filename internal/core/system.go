// Package core implements Quicksand, the paper's primary contribution:
// resource proclets — proclets specialized to consume a single resource
// type — plus the adaptive mechanisms that keep them fungible: a
// two-level scheduler (fast per-machine reactors, slow global
// rebalancing with affinity), adaptive splitting and merging to
// preserve migration-friendly granularity, and distributed pointers
// connecting compute to memory.
//
// Layering: core sits on the Nu proclet substrate (internal/proclet),
// which sits on simulated machines (internal/cluster) and network
// (internal/simnet), all driven by the deterministic virtual-time
// kernel (internal/sim). Higher-level abstractions — sharded data
// structures (internal/sharded), the distributed thread pool
// (internal/dtp), and flat storage (internal/storage) — build on core.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Config tunes the Quicksand control plane.
type Config struct {
	// Seed drives all randomized decisions deterministically.
	Seed int64
	// Net configures the cluster fabric.
	Net simnet.Config
	// Proclet configures the Nu substrate's cost model.
	Proclet proclet.Config

	// LocalPeriod is the fast per-machine reactor's sampling period
	// (pressure detection and evacuation).
	LocalPeriod time.Duration
	// GlobalPeriod is the slow global rebalancer's period (long-term
	// placement and affinity-driven colocation).
	GlobalPeriod time.Duration
	// AdaptPeriod is how often registered adaptives (split/merge
	// policies) are evaluated.
	AdaptPeriod time.Duration

	// CPUHighWater is the pressure (runnable tasks per available core)
	// above which a machine evacuates compute proclets.
	CPUHighWater float64
	// CPULowWater is the pressure below which a machine may receive
	// evacuated compute proclets.
	CPULowWater float64
	// MemHighWater is the memory utilization fraction above which a
	// machine evacuates memory proclets.
	MemHighWater float64

	// TargetMigrationLatency bounds how long migrating any single
	// memory proclet may take; the split threshold MaxShardBytes is
	// derived from it and the NIC bandwidth (§3.3).
	TargetMigrationLatency time.Duration

	// AffinityBytes is the communication volume between two proclets,
	// per global period, above which the rebalancer tries to colocate
	// them.
	AffinityBytes int64

	// ComputeProcletHeap is the accounted heap size of a compute
	// proclet (task queue and scratch space); small so they migrate in
	// well under a millisecond.
	ComputeProcletHeap int64

	// DisableFastPath turns off the per-machine reactors (two-level
	// scheduling ablation: global-only).
	DisableFastPath bool
	// DisableSlowPath turns off the global rebalancer and affinity
	// loop (two-level scheduling ablation: local-only).
	DisableSlowPath bool
}

// DefaultConfig returns the configuration used throughout the paper
// reproduction experiments.
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		Net:                    simnet.DefaultConfig(),
		Proclet:                proclet.DefaultConfig(),
		LocalPeriod:            200 * time.Microsecond,
		GlobalPeriod:           50 * time.Millisecond,
		AdaptPeriod:            2 * time.Millisecond,
		CPUHighWater:           1.25,
		CPULowWater:            0.9,
		MemHighWater:           0.92,
		TargetMigrationLatency: 5 * time.Millisecond,
		AffinityBytes:          1 << 20,
		ComputeProcletHeap:     64 << 10,
	}
}

// MaxShardBytes is the memory-proclet size cap implied by the target
// migration latency at the configured NIC bandwidth.
func (c Config) MaxShardBytes() int64 {
	return int64(float64(c.Net.Bandwidth) * c.TargetMigrationLatency.Seconds())
}

// System is a running Quicksand deployment: the cluster, the proclet
// runtime, and the scheduler, all on one simulation kernel.
type System struct {
	K       *sim.Kernel
	Cluster *cluster.Cluster
	Runtime *proclet.Runtime
	Sched   *Scheduler
	Trace   *trace.Log

	// Obs records causal spans when EnableTracing has been called; Tel
	// samples resource telemetry when EnableTelemetry has. Both are nil
	// by default — every instrumentation site is nil-safe.
	Obs *obs.Tracer
	Tel *obs.Telemetry

	cfg       Config
	ownKernel bool         // Close tears the kernel down only if we made it
	rebuild   Rebuilder    // memory-proclet reconstruction hook (recovery.go)
	repl      *ReplManager // durability plane, nil unless enabled (replication.go)
}

// NewSystem builds a Quicksand system over machines with the given
// shapes, on a fresh kernel seeded from cfg.Seed. The scheduler is
// created but idle until Start.
func NewSystem(cfg Config, machines []cluster.MachineConfig) *System {
	s := NewSystemOnKernel(sim.NewKernel(cfg.Seed), cfg, machines)
	s.ownKernel = true
	return s
}

// NewSystemOnKernel builds a Quicksand system on a caller-supplied
// kernel. This is how partitioned fleets are assembled: one System per
// shard, each on its own sim.ParKernel shard kernel, stitched together
// with a simnet.Partition. The caller owns the kernel's lifecycle —
// Close on a system built this way is a no-op.
func NewSystemOnKernel(k *sim.Kernel, cfg Config, machines []cluster.MachineConfig) *System {
	cl := cluster.New(k, cfg.Net)
	for _, mc := range machines {
		cl.AddMachine(mc)
	}
	tl := trace.New()
	s := &System{
		K:       k,
		Cluster: cl,
		Runtime: proclet.NewRuntime(cl, cfg.Proclet, tl),
		Trace:   tl,
		cfg:     cfg,
	}
	s.Sched = newScheduler(s)
	return s
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// EnableTracing attaches a causal span tracer to every layer (fabric
// RPCs, proclet invocations and migrations, scheduler decisions,
// replication). Span recording is synchronous bookkeeping — it
// schedules no kernel events — so it never perturbs the simulated
// schedule. Idempotent; call before Start.
func (s *System) EnableTracing() *obs.Tracer {
	return s.EnableTracingAt(0)
}

// EnableTracingAt is EnableTracing with an explicit span-ID base:
// shard s of a partitioned run passes obs.SpanID(s)<<32 so the merged
// export has globally unique, shard-sortable span IDs. Idempotent;
// call before Start.
func (s *System) EnableTracingAt(base obs.SpanID) *obs.Tracer {
	if s.Obs == nil {
		s.Obs = obs.NewTracerWithBase(s.K, base)
		s.Cluster.Fabric.SetTracer(s.Obs)
		s.Runtime.SetTracer(s.Obs)
	}
	return s.Obs
}

// EnableTelemetry starts sampling per-machine CPU/memory/net
// utilization (and per-proclet queueing delay for compute proclets
// created afterwards) every period. Unlike tracing, sampling schedules
// one kernel event per tick, so runs that compare kernel event counts
// must leave it off. Idempotent; call before Start.
func (s *System) EnableTelemetry(period time.Duration) *obs.Telemetry {
	if s.Tel != nil {
		return s.Tel
	}
	s.Tel = obs.NewTelemetry(s.K, period)
	for _, m := range s.Cluster.Machines() {
		m := m
		id := int(m.ID)
		s.Tel.Register(fmt.Sprintf("m%d.cpu_util", id), id, m.Utilization)
		s.Tel.Register(fmt.Sprintf("m%d.mem_frac", id), id, func() float64 {
			if cap := m.MemCapacity(); cap > 0 {
				return float64(m.MemUsed()) / float64(cap)
			}
			return 0
		})
		n := s.Cluster.Node(m.ID)
		s.Tel.Register(fmt.Sprintf("m%d.net_tx_bytes", id), id, func() float64 {
			return float64(n.TxBytes.Value())
		})
		s.Tel.Register(fmt.Sprintf("m%d.net_rx_bytes", id), id, func() float64 {
			return float64(n.RxBytes.Value())
		})
	}
	// Compute proclets created before telemetry was enabled, in ID
	// order for deterministic series ordering.
	ids := make([]proclet.ID, 0, len(s.Sched.info))
	for id, pi := range s.Sched.info {
		if pi.kind == KindCompute {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if cp, ok := s.Sched.info[id].pr.Data.(*ComputeProclet); ok {
			s.registerComputeTelemetry(cp)
		}
	}
	s.Tel.Start()
	return s.Tel
}

// Close releases the kernel's pooled worker goroutines. Call it when
// done simulating on this system; experiment sweeps and benchmark
// loops that build many systems would otherwise accumulate parked
// goroutines for the life of the host process. No-op for systems built
// on a caller-owned kernel (NewSystemOnKernel) — close that kernel (or
// its ParKernel) instead.
func (s *System) Close() {
	if s.ownKernel {
		s.K.Close()
	}
}

// Start launches the scheduler's control loops. Call once, before or
// during the simulation run.
func (s *System) Start() { s.Sched.start() }

// Client returns an external caller bound to a machine (for example an
// ingest frontend or an experiment driver colocated with machine m).
func (s *System) Client(m cluster.MachineID) *Client {
	return &Client{sys: s, machine: m}
}

// Client is an external (non-proclet) invoker pinned to a machine.
type Client struct {
	sys     *System
	machine cluster.MachineID
}

// Machine returns the machine the client runs on.
func (c *Client) Machine() cluster.MachineID { return c.machine }

// Invoke calls a proclet method from this client's machine.
func (c *Client) Invoke(p *sim.Proc, target proclet.ID, method string, arg proclet.Msg) (proclet.Msg, error) {
	return c.sys.Runtime.Invoke(p, c.machine, 0, target, method, arg)
}
