package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/proclet"
	"repro/internal/sim"
)

func TestPlaceComputePrefersLeastLoaded(t *testing.T) {
	s := testSystem(t)
	// Load machine 0 with a busy compute proclet.
	cp, _ := NewComputeProcletOn(s, "busy", 0, 4)
	for i := 0; i < 8; i++ {
		cp.Run(func(tc *TaskCtx) { tc.Compute(time.Second) })
	}
	s.K.RunUntil(sim.Millisecond) // let workers start
	m, err := s.Sched.PlaceCompute()
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Errorf("PlaceCompute = %d, want 1", m)
	}
}

func TestPlaceComputeSkipsReservedMachines(t *testing.T) {
	s := testSystem(t)
	s.Cluster.Machine(0).SetReserved(8)
	m, err := s.Sched.PlaceCompute()
	if err != nil || m != 1 {
		t.Errorf("PlaceCompute = %d, %v, want 1", m, err)
	}
	s.Cluster.Machine(1).SetReserved(8)
	if _, err := s.Sched.PlaceCompute(); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
}

func TestPlaceComputeIdleRequiresSpareCores(t *testing.T) {
	s := testSystem(t, cluster.MachineConfig{Cores: 1, MemBytes: 1 << 30})
	cp, _ := NewComputeProcletOn(s, "busy", 0, 1)
	cp.Run(func(tc *TaskCtx) { tc.Compute(time.Second) })
	s.K.RunUntil(sim.Millisecond)
	if _, err := s.Sched.PlaceComputeIdle(); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity (core already claimed)", err)
	}
}

func TestPlaceMemoryRequiresRoom(t *testing.T) {
	s := testSystem(t,
		cluster.MachineConfig{Cores: 1, MemBytes: 1000},
		cluster.MachineConfig{Cores: 1, MemBytes: 2000},
	)
	m, err := s.Sched.PlaceMemory(1500)
	if err != nil || m != 1 {
		t.Errorf("PlaceMemory = %d, %v, want 1", m, err)
	}
	if _, err := s.Sched.PlaceMemory(5000); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
}

// TestReactorEvacuatesOnReservation is a miniature of Figure 1: when a
// high-priority app grabs every core on machine 0, the fast reactor
// must move the filler's compute proclets to machine 1 within a few
// milliseconds.
func TestReactorEvacuatesOnReservation(t *testing.T) {
	s := testSystem(t)
	s.Start()
	pl, _ := s.NewPool("filler", 1, 4, 1, 0)
	// Keep workers permanently busy with short tasks.
	var feed func(cp *ComputeProclet)
	feed = func(cp *ComputeProclet) {
		cp.Run(func(tc *TaskCtx) {
			tc.Compute(100 * time.Microsecond)
			feed(tc.ComputeProclet())
		})
	}
	for _, m := range pl.Members() {
		feed(m)
		feed(m)
	}
	// Let everything settle on machine 0/1 (placement spreads 2/2).
	s.K.RunUntil(5 * sim.Millisecond)
	// Reserve all of machine 0 at t=5ms.
	s.Cluster.Machine(0).SetReserved(8)
	s.K.RunUntil(15 * sim.Millisecond)
	for _, cp := range pl.Members() {
		if cp.Location() != 1 {
			t.Errorf("member %s still on machine %d", cp.Proclet().Name(), cp.Location())
		}
	}
	if s.Sched.Evacuations.Value() == 0 {
		t.Error("no evacuations recorded")
	}
	// And they must have moved quickly: all migrations done within a
	// couple of reactor periods + sub-ms migrations.
	migs := s.Runtime.MigrationLatency
	if migs.Max() > 0.001 {
		t.Errorf("max migration latency = %vs, want < 1ms", migs.Max())
	}
}

func TestReactorLeavesBalancedClusterAlone(t *testing.T) {
	s := testSystem(t)
	s.Start()
	pl, _ := s.NewPool("calm", 1, 2, 1, 0)
	for i := 0; i < 2; i++ {
		pl.Run(func(tc *TaskCtx) { tc.Compute(50 * time.Millisecond) })
	}
	s.K.RunUntil(60 * sim.Millisecond)
	if s.Sched.Evacuations.Value() != 0 {
		t.Errorf("Evacuations = %d on a balanced cluster", s.Sched.Evacuations.Value())
	}
}

func TestReactMemEvacuatesUnderPressure(t *testing.T) {
	s := testSystem(t,
		cluster.MachineConfig{Cores: 4, MemBytes: 10 << 20},
		cluster.MachineConfig{Cores: 4, MemBytes: 100 << 20},
	)
	s.Start()
	mp, _ := NewMemoryProcletOn(s, "shard", 0)
	s.K.Spawn("filler", func(p *sim.Proc) {
		// Fill machine 0 past the high-water mark (92% of 10 MiB).
		var ids []uint64
		var vals []any
		var sizes []int64
		for i := 0; i < 95; i++ {
			ids = append(ids, uint64(i+1))
			vals = append(vals, i)
			sizes = append(sizes, 100<<10)
		}
		if err := mp.PutBatch(p, 0, ids, vals, sizes); err != nil {
			t.Errorf("PutBatch: %v", err)
		}
	})
	s.K.RunUntil(20 * sim.Millisecond)
	if mp.Location() != 1 {
		t.Errorf("memory proclet still on machine %d, want evacuated to 1", mp.Location())
	}
	if s.Sched.MemEvictions.Value() == 0 {
		t.Error("no memory evictions recorded")
	}
}

func TestFreeUpMemory(t *testing.T) {
	s := testSystem(t,
		cluster.MachineConfig{Cores: 4, MemBytes: 10 << 20},
		cluster.MachineConfig{Cores: 4, MemBytes: 100 << 20},
	)
	mp, _ := NewMemoryProcletOn(s, "shard", 0)
	s.K.Spawn("driver", func(p *sim.Proc) {
		ids, vals, sizes := []uint64{1}, []any{0}, []int64{8 << 20}
		if err := mp.PutBatch(p, 0, ids, vals, sizes); err != nil {
			t.Fatalf("PutBatch: %v", err)
		}
		// Machine 0 now holds ~8 MiB of 10 MiB; ask for 5 MiB free.
		if !s.Sched.FreeUpMemory(p, 0, 5<<20) {
			t.Error("FreeUpMemory failed")
		}
		if s.Cluster.Machine(0).MemFree() < 5<<20 {
			t.Errorf("machine 0 free = %d, want >= 5MiB", s.Cluster.Machine(0).MemFree())
		}
	})
	s.K.Run()
}

func TestGlobalRebalanceSmoothsLoad(t *testing.T) {
	// Machine 0 overloaded but below the fast-path panic threshold
	// cannot happen with demand>avail*1.25; instead pin demand between
	// 1.0 and 1.25 of available cores so only the global loop acts.
	s := testSystem(t,
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 30},
		cluster.MachineConfig{Cores: 4, MemBytes: 1 << 30},
	)
	s.Start()
	// 4 single-worker proclets, all forced onto machine 0: demand 4.8
	// would trip the fast path; use demand 4 (load 1.0 exactly is not
	// above high water 1.25 * 4 = 5, nor above avail). Load gap vs
	// machine 1 (0) is 1.0 > 0.5 but hiLoad <= 1 blocks rebalance; so
	// use 5 proclets => load 1.25, still under the fast path's 1.25
	// threshold test (demand 5 <= 4*1.25 = 5), but rebalance moves one.
	var keep func(cp *ComputeProclet)
	keep = func(cp *ComputeProclet) {
		cp.Run(func(tc *TaskCtx) {
			tc.Compute(500 * time.Microsecond)
			keep(tc.ComputeProclet())
		})
	}
	for i := 0; i < 5; i++ {
		cp, err := NewComputeProcletOn(s, "w", 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		keep(cp)
	}
	s.K.RunUntil(sim.Time(200 * time.Millisecond))
	if s.Sched.Rebalances.Value() == 0 {
		t.Error("global rebalancer never acted")
	}
	onM1 := 0
	for _, pi := range s.Sched.info {
		if pi.kind == KindCompute && pi.pr.Location() == 1 {
			onM1++
		}
	}
	if onM1 == 0 {
		t.Error("no compute proclet moved to machine 1")
	}
}

func TestAffinityColocation(t *testing.T) {
	s := testSystem(t)
	cfg := s.Config()
	s.Start()
	// A compute proclet on machine 0 hammers a memory proclet on
	// machine 1 with large transfers; the global loop should colocate.
	mp, _ := NewMemoryProcletOn(s, "data", 1)
	s.Sched.Pin(mp.ID())
	cp, _ := NewComputeProcletOn(s, "reader", 0, 1)
	var ptr Ptr[int]
	s.K.Spawn("setup", func(p *sim.Proc) {
		var err error
		ptr, err = NewPtr(p, 1, mp, 42, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		var loop func()
		loop = func() {
			cp.Run(func(tc *TaskCtx) {
				// Proclet-to-proclet call so affinity is attributed.
				if _, err := cp.Proclet().Call(tc.Proc(), mp.ID(), "mem.get",
					proclet.Msg{Payload: ptr.obj, Bytes: 8}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
				tc.Compute(100 * time.Microsecond)
				loop()
			})
		}
		loop()
	})
	s.K.RunUntil(sim.Time(cfg.GlobalPeriod*4 + 10*sim.Millisecond.Duration()))
	if cp.Location() != 1 {
		t.Errorf("reader on machine %d, want colocated on 1", cp.Location())
	}
	if s.Sched.AffinityMoves.Value() == 0 {
		t.Error("no affinity moves recorded")
	}
}

func TestAdaptiveLoopRuns(t *testing.T) {
	s := testSystem(t)
	count := 0
	s.Sched.RegisterAdaptive(adaptiveFunc(func(p *sim.Proc) { count++ }))
	s.Start()
	s.K.RunUntil(sim.Time(20 * time.Millisecond))
	// AdaptPeriod is 2ms: expect ~10 invocations.
	if count < 8 || count > 12 {
		t.Errorf("adaptive ran %d times in 20ms, want ~10", count)
	}
}

type adaptiveFunc func(p *sim.Proc)

func (f adaptiveFunc) Adapt(p *sim.Proc) { f(p) }

func TestPinPreventsMigration(t *testing.T) {
	s := testSystem(t)
	s.Start()
	cp, _ := NewComputeProcletOn(s, "pinned", 0, 1)
	s.Sched.Pin(cp.ID())
	var keep func()
	keep = func() {
		cp.Run(func(tc *TaskCtx) {
			tc.Compute(100 * time.Microsecond)
			keep()
		})
	}
	keep()
	s.K.RunUntil(2 * sim.Millisecond)
	s.Cluster.Machine(0).SetReserved(8)
	s.K.RunUntil(20 * sim.Millisecond)
	if cp.Location() != 0 {
		t.Errorf("pinned proclet moved to %d", cp.Location())
	}
}
