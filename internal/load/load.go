// Package load models multi-tenant client populations as aggregate
// arrival processes, so "millions of clients" cost O(request rate)
// instead of O(clients).
//
// Closed-loop drivers (one simulated process per client) cap out at a
// few thousand clients: every client is a goroutine, a stack, and a
// stream of kernel events even while idle. An open-loop population is
// the opposite contract — the offered load is an intensity function
// λ(t) over virtual time, and clients exist only as that intensity.
// Three pieces make this practical inside the deterministic simulator:
//
//   - Curve: piecewise-linear request-rate curves (diurnal sine
//     approximations, flash-crowd spikes, ramps) built per tenant from
//     a client count times a per-client rate profile.
//   - Arrivals: a nonhomogeneous-Poisson sampler that draws the exact
//     arrival instants in a window by thinning against the curve's
//     window maximum, allocation-free after warm-up, from an injected
//     per-shard RNG stream.
//   - Zipf/AliasTable (zipf.go): O(1) skewed key and tenant-mix
//     sampling with zero allocations on the sample path.
//   - Injector (inject.go): batched shard-local injection — arrivals
//     for one sim.ParKernel shard are drawn a window at a time in
//     shard context and enqueued through the kernel's pooled event
//     queue, so generation parallelizes with the partitioned kernel
//     and never crosses shards.
package load

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// CurvePoint anchors a piecewise-linear rate curve: the offered rate is
// Rate requests/second at virtual time At, interpolated linearly to the
// next point. Before the first point the rate is the first point's;
// after the last, the last's.
type CurvePoint struct {
	At   sim.Time
	Rate float64
}

// Curve is a piecewise-linear request-rate intensity λ(t) in
// requests/second over virtual time. Curves are immutable once built
// and safe to share read-only across shards.
type Curve struct {
	pts []CurvePoint
}

// Piecewise builds a curve from anchor points, which must be in
// strictly increasing time order with non-negative rates.
func Piecewise(pts ...CurvePoint) Curve {
	if len(pts) == 0 {
		panic("load: curve needs at least one point")
	}
	for i, pt := range pts {
		if pt.Rate < 0 {
			panic("load: negative rate")
		}
		if i > 0 && pt.At <= pts[i-1].At {
			panic("load: curve points must be in strictly increasing time order")
		}
	}
	return Curve{pts: pts}
}

// Constant builds a flat curve at rps requests/second.
func Constant(rps float64) Curve {
	return Piecewise(CurvePoint{At: 0, Rate: rps})
}

// Sampled discretizes an analytic intensity function into a
// piecewise-linear curve with anchor points every step over
// [0, horizon]. This is how compound shapes — a diurnal sine times a
// flash-crowd multiplier — become curves the thinning sampler can
// bound exactly.
func Sampled(horizon sim.Time, step time.Duration, f func(t sim.Time) float64) Curve {
	if step <= 0 {
		panic("load: non-positive sample step")
	}
	var pts []CurvePoint
	for t := sim.Time(0); ; t = t.Add(step) {
		if t > horizon {
			t = horizon
		}
		r := f(t)
		if r < 0 {
			r = 0
		}
		pts = append(pts, CurvePoint{At: t, Rate: r})
		if t >= horizon {
			break
		}
	}
	return Curve{pts: pts}
}

// Diurnal returns the intensity function of a sinusoidal daily cycle
// compressed to the given period: base*(1 + amp*sin(2πt/period)),
// starting at the mean and rising. amp must be in [0, 1] so the rate
// never goes negative.
func Diurnal(base, amp float64, period time.Duration) func(t sim.Time) float64 {
	if amp < 0 || amp > 1 {
		panic("load: diurnal amplitude must be in [0, 1]")
	}
	return func(t sim.Time) float64 {
		return base * (1 + amp*math.Sin(2*math.Pi*float64(t)/float64(period)))
	}
}

// Spike returns a flash-crowd multiplier: 1 outside the event, ramping
// linearly to mult over ramp starting at start, holding for hold, and
// decaying back over decay. Multiply it into a tenant's intensity
// function before Sampled.
func Spike(start sim.Time, ramp, hold, decay time.Duration, mult float64) func(t sim.Time) float64 {
	if mult < 1 {
		panic("load: spike multiplier below 1")
	}
	rampEnd := start.Add(ramp)
	holdEnd := rampEnd.Add(hold)
	decayEnd := holdEnd.Add(decay)
	return func(t sim.Time) float64 {
		switch {
		case t <= start || t >= decayEnd:
			return 1
		case t < rampEnd:
			return 1 + (mult-1)*float64(t-start)/float64(ramp)
		case t < holdEnd:
			return mult
		default:
			return mult - (mult-1)*float64(t-holdEnd)/float64(decay)
		}
	}
}

// Ramp returns an intensity function rising (or falling) linearly from
// `from` to `to` requests/second over [0, over], then holding at `to`.
func Ramp(from, to float64, over time.Duration) func(t sim.Time) float64 {
	return func(t sim.Time) float64 {
		if t >= sim.Time(over) {
			return to
		}
		return from + (to-from)*float64(t)/float64(over)
	}
}

// Rate evaluates the curve at t by linear interpolation, scanning from
// segment hint i (the caller advances the hint monotonically; the
// Arrivals sampler uses this so evaluation during a time-ordered draw
// is O(1) amortized). Returns the rate and the updated hint.
func (c Curve) rateFrom(i int, t sim.Time) (float64, int) {
	pts := c.pts
	for i+1 < len(pts) && pts[i+1].At <= t {
		i++
	}
	if i+1 >= len(pts) || t <= pts[i].At {
		return pts[i].Rate, i
	}
	a, b := pts[i], pts[i+1]
	frac := float64(t-a.At) / float64(b.At-a.At)
	return a.Rate + (b.Rate-a.Rate)*frac, i
}

// Rate evaluates the curve at t.
func (c Curve) Rate(t sim.Time) float64 {
	r, _ := c.rateFrom(0, t)
	return r
}

// MaxRate returns the maximum rate over [from, to]. A piecewise-linear
// curve attains its window maximum at a segment endpoint or a window
// edge, so this is exact — the tight thinning bound for that window.
func (c Curve) MaxRate(from, to sim.Time) float64 {
	max := c.Rate(from)
	if r := c.Rate(to); r > max {
		max = r
	}
	for _, pt := range c.pts {
		if pt.At <= from {
			continue
		}
		if pt.At >= to {
			break
		}
		if pt.Rate > max {
			max = pt.Rate
		}
	}
	return max
}

// Mean returns the time-weighted mean rate over [from, to) — the
// expected number of arrivals in the window divided by its length.
func (c Curve) Mean(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	var area float64
	prevT := from
	prevR := c.Rate(from)
	for _, pt := range c.pts {
		if pt.At <= from {
			continue
		}
		if pt.At >= to {
			break
		}
		r := c.Rate(pt.At)
		area += (prevR + r) / 2 * float64(pt.At-prevT)
		prevT, prevR = pt.At, r
	}
	area += (prevR + c.Rate(to)) / 2 * float64(to-prevT)
	return area / float64(to-from)
}

// Arrivals samples a nonhomogeneous Poisson process whose intensity is
// a Curve, by thinning: candidate arrivals are drawn from a homogeneous
// process at the window's maximum rate and accepted with probability
// λ(t)/λmax. Candidates are generated in time order, so curve
// evaluation amortizes to O(1) per candidate via a segment cursor.
//
// The RNG is injected, never package-global: a partitioned simulation
// gives each shard's generator its own deterministic stream (seeded
// from the shard seed), so arrival sequences are reproducible at any
// worker count. The draw buffer is owned by the Arrivals and reused, so
// steady-state draws allocate nothing.
type Arrivals struct {
	curve  Curve
	rng    *rand.Rand
	cursor int
	buf    []sim.Time
}

// NewArrivals creates a sampler over curve drawing from rng. Draw
// windows must be requested in non-decreasing time order.
func NewArrivals(curve Curve, rng *rand.Rand) *Arrivals {
	if rng == nil {
		panic("load: Arrivals needs an injected *rand.Rand (no package-global randomness)")
	}
	return &Arrivals{curve: curve, rng: rng}
}

// Draw returns the arrival instants in [from, to), sorted ascending.
// The returned slice is the sampler's reusable buffer: valid until the
// next Draw, not to be retained. Zero allocations once the buffer has
// grown to the steady-state batch size.
func (a *Arrivals) Draw(from, to sim.Time) []sim.Time {
	a.buf = a.buf[:0]
	if to <= from {
		return a.buf
	}
	lamMax := a.curve.MaxRate(from, to)
	if lamMax <= 0 {
		return a.buf
	}
	// Exponential gaps at λmax, in nanoseconds of virtual time.
	gapScale := float64(sim.Second) / lamMax
	t := from
	for {
		u := a.rng.Float64()
		t += sim.Time(-math.Log(1-u)*gapScale + 0.5)
		if t >= to {
			break
		}
		var r float64
		r, a.cursor = a.curve.rateFrom(a.cursor, t)
		if a.rng.Float64()*lamMax <= r {
			a.buf = append(a.buf, t)
		}
	}
	return a.buf
}
