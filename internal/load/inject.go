package load

import (
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Request is one generated arrival: its virtual-time instant, the
// tenant that issued it, and a scrambled key drawn from the tenant's
// Zipfian popularity distribution. Requests are passed by value —
// nothing on the delivery path allocates.
type Request struct {
	At     sim.Time
	Tenant int
	Key    uint64
}

// Injector generates a multi-tenant open-loop request stream on ONE
// kernel shard. It is the batched shard-local injection plane: a
// partitioned simulation creates one Injector per sim.ParKernel shard,
// each owning the arrival generators for that shard's machines, so
// generation parallelizes with the kernel and never crosses shards.
//
// Per batch window [W, W+window) the injector — running as an ordinary
// shard event at W — draws every tenant's arrival instants by thinning,
// samples a Zipfian key per arrival, and schedules each request through
// the kernel's pooled event queue via ScheduleTagged with a func bound
// once at Start. The pending slice is reused across windows, so the
// whole generate→schedule→deliver path is allocation-free at steady
// state: cost is O(requests), never O(clients).
//
// Arrivals in a window all land strictly before the next batch event
// (Draw returns [from, to)), so indices into pending are stable for
// exactly the window that scheduled them.
type Injector struct {
	k       *sim.Kernel
	window  sim.Time
	horizon sim.Time
	handler func(Request)

	streams []stream
	pending []Request

	fire  func(uint64) // bound once: delivers pending[tag]
	batch func(uint64) // bound once: generates the next window

	generated []uint64 // per-tenant request counts
	delivered uint64
	windows   uint64
}

// stream is one tenant's generator state on this shard: its (shard-
// scaled) rate curve, an independent deterministic RNG stream, and the
// shared immutable key sampler.
type stream struct {
	name string
	arr  *Arrivals
	zipf *Zipf
	rng  *rand.Rand
}

// NewInjector creates an injector on shard kernel k drawing arrivals in
// batches of the given window — use the ParKernel lookahead so one
// batch event runs per synchronization window. Handler is invoked once
// per request at its arrival instant, in shard context.
func NewInjector(k *sim.Kernel, window time.Duration, handler func(Request)) *Injector {
	if window <= 0 {
		panic("load: non-positive injector window")
	}
	if handler == nil {
		panic("load: nil injector handler")
	}
	inj := &Injector{k: k, window: sim.Time(window), handler: handler}
	inj.fire = func(tag uint64) {
		inj.delivered++
		inj.handler(inj.pending[tag])
	}
	inj.batch = func(uint64) { inj.runBatch() }
	return inj
}

// AddTenant registers a tenant with the given shard-local rate curve
// (already divided by the shard count) and key sampler. The tenant's
// RNG stream is derived from the shard kernel's RNG at registration
// time, so registration order — which callers keep fixed across shards
// and worker counts — fully determines the stream. Returns the tenant
// index used in Request.Tenant.
func (inj *Injector) AddTenant(name string, curve Curve, zipf *Zipf) int {
	rng := rand.New(rand.NewSource(inj.k.Rand().Int63()))
	inj.streams = append(inj.streams, stream{
		name: name,
		arr:  NewArrivals(curve, rng),
		zipf: zipf,
		rng:  rng,
	})
	inj.generated = append(inj.generated, 0)
	return len(inj.streams) - 1
}

// Start schedules generation over [from, horizon). Must be called
// before the kernel runs past from.
func (inj *Injector) Start(from, horizon sim.Time) {
	if len(inj.streams) == 0 {
		panic("load: injector has no tenants")
	}
	inj.horizon = horizon
	if from >= horizon {
		return
	}
	inj.k.ScheduleTagged(from, inj.batch, 0)
}

// runBatch draws one window of arrivals for every tenant (fixed tenant
// order) and schedules each through the pooled event queue.
func (inj *Injector) runBatch() {
	t0 := inj.k.Now()
	t1 := t0 + inj.window
	if t1 > inj.horizon {
		t1 = inj.horizon
	}
	inj.windows++
	inj.pending = inj.pending[:0]
	for si := range inj.streams {
		s := &inj.streams[si]
		before := len(inj.pending)
		for _, at := range s.arr.Draw(t0, t1) {
			inj.pending = append(inj.pending, Request{
				At:     at,
				Tenant: si,
				Key:    ScrambleKey(s.zipf.Sample(s.rng)),
			})
		}
		inj.generated[si] += uint64(len(inj.pending) - before)
	}
	// Schedule only after the slice is fully built: appends above may
	// reallocate, but indices are stable from here to the next batch.
	for i := range inj.pending {
		inj.k.ScheduleTagged(inj.pending[i].At, inj.fire, uint64(i))
	}
	if t1 < inj.horizon {
		inj.k.ScheduleTagged(t1, inj.batch, 0)
	}
}

// Generated returns the number of requests generated for tenant i.
func (inj *Injector) Generated(i int) uint64 { return inj.generated[i] }

// TotalGenerated returns the number of requests generated across all
// tenants.
func (inj *Injector) TotalGenerated() uint64 {
	var n uint64
	for _, g := range inj.generated {
		n += g
	}
	return n
}

// Delivered returns the number of requests whose handler has run.
func (inj *Injector) Delivered() uint64 { return inj.delivered }

// Windows returns the number of batch windows executed.
func (inj *Injector) Windows() uint64 { return inj.windows }

// TenantName returns the name tenant i was registered with.
func (inj *Injector) TenantName(i int) string { return inj.streams[i].name }
