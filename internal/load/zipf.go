package load

import (
	"math"
	"math/rand"
)

// Zipf samples ranks in [0, n) with P(rank=i) ∝ 1/(i+1)^theta in O(1)
// per sample using Gray's rejection-free inversion (the "quickly
// generating billion-record synthetic databases" generator, as adopted
// by YCSB). All per-sample work is a handful of float operations
// against precomputed constants — no tables, no allocations — so a
// skewed popularity distribution over tens of millions of keys costs
// the same as one over a hundred.
//
// A Zipf is immutable after construction and holds no RNG: the stream
// is injected per call, so one shared Zipf (built once per tenant)
// serves every shard of a partitioned simulation while each shard
// draws from its own deterministic RNG.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// zetaExactMax bounds the exact harmonic summation; beyond it the tail
// is closed with an Euler–Maclaurin integral correction, making
// construction O(zetaExactMax) for any n (relative error < 1e-8 — far
// below the generator's own discretization).
const zetaExactMax = 1 << 16

// zeta computes the generalized harmonic number H_{n,theta} =
// Σ_{i=1..n} i^-theta: exactly for small n, with an integral-corrected
// tail for large n.
func zeta(n uint64, theta float64) float64 {
	exact := n
	if exact > zetaExactMax {
		exact = zetaExactMax
	}
	var sum float64
	for i := uint64(1); i <= exact; i++ {
		sum += math.Pow(float64(i), -theta)
	}
	if n > exact {
		// Euler–Maclaurin: Σ_{k+1..n} i^-θ ≈ ∫_k^n x^-θ dx + (n^-θ - k^-θ)/2.
		k, fn := float64(exact), float64(n)
		sum += (math.Pow(fn, 1-theta)-math.Pow(k, 1-theta))/(1-theta) +
			(math.Pow(fn, -theta)-math.Pow(k, -theta))/2
	}
	return sum
}

// NewZipf builds a sampler over n ranks with skew theta in (0, 1) —
// 0.99 is the YCSB default ("hotspot" skew). Construction cost is
// bounded by zetaExactMax regardless of n.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("load: Zipf needs at least one rank")
	}
	if theta <= 0 || theta >= 1 {
		panic("load: Zipf skew theta must be in (0, 1)")
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Sample draws one rank in [0, n); rank 0 is the most popular. O(1),
// zero allocations.
func (z *Zipf) Sample(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.zeta2 {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// ScrambleKey maps a popularity rank to a pseudo-random but stable key
// in the full uint64 space (splitmix64 finalizer). Zipf ranks are
// ordered by popularity; scrambling spreads the hot head uniformly
// across shards and stores while keeping rank→key deterministic, which
// is how YCSB-style "scrambled zipfian" keyspaces work.
func ScrambleKey(rank uint64) uint64 {
	x := rank + 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// AliasTable samples an arbitrary small discrete distribution in O(1)
// per draw (Vose's alias method): one uniform draw picks a column and
// either keeps it or takes its alias. Used for per-arrival tenant-mix
// selection; build cost is O(n) once.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds a sampler over weights (non-negative, at least
// one positive).
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	if n == 0 {
		panic("load: alias table needs at least one weight")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("load: negative or NaN alias weight")
		}
		total += w
	}
	if total <= 0 {
		panic("load: alias table needs a positive total weight")
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1 // numerical remainder
		t.alias[i] = i
	}
	return t
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Sample draws one outcome index. O(1), zero allocations, one uniform
// variate (split into column and coin).
func (t *AliasTable) Sample(rng *rand.Rand) int {
	u := rng.Float64() * float64(len(t.prob))
	i := int(u)
	if i >= len(t.prob) {
		i = len(t.prob) - 1
	}
	if u-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
