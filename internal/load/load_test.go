package load

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCurveRateAndMax(t *testing.T) {
	c := Piecewise(
		CurvePoint{At: 0, Rate: 100},
		CurvePoint{At: sim.Time(10 * time.Second), Rate: 300},
		CurvePoint{At: sim.Time(20 * time.Second), Rate: 50},
	)
	if got := c.Rate(sim.Time(5 * time.Second)); math.Abs(got-200) > 1e-9 {
		t.Fatalf("Rate(5s) = %v, want 200", got)
	}
	if got := c.Rate(sim.Time(30 * time.Second)); got != 50 {
		t.Fatalf("Rate past end = %v, want 50", got)
	}
	if got := c.MaxRate(0, sim.Time(30*time.Second)); got != 300 {
		t.Fatalf("MaxRate = %v, want 300 (interior peak)", got)
	}
	// Window that excludes the peak: max is at a window edge.
	if got := c.MaxRate(sim.Time(12*time.Second), sim.Time(14*time.Second)); got <= 200 || got >= 300 {
		t.Fatalf("MaxRate(12s,14s) = %v, want in (200,300)", got)
	}
	if got := c.Mean(0, sim.Time(10*time.Second)); math.Abs(got-200) > 1e-9 {
		t.Fatalf("Mean(0,10s) = %v, want 200", got)
	}
}

func TestCurveValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":      func() { Piecewise() },
		"negative":   func() { Piecewise(CurvePoint{At: 0, Rate: -1}) },
		"nonincreas": func() { Piecewise(CurvePoint{At: 5, Rate: 1}, CurvePoint{At: 5, Rate: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSampledShapes(t *testing.T) {
	horizon := sim.Time(10 * time.Second)
	d := Diurnal(1000, 0.5, 10*time.Second)
	c := Sampled(horizon, 100*time.Millisecond, d)
	// The sine peaks at t=period/4 with rate base*(1+amp).
	peak := c.Rate(sim.Time(2500 * time.Millisecond))
	if math.Abs(peak-1500) > 15 {
		t.Fatalf("diurnal peak = %v, want ~1500", peak)
	}
	sp := Spike(sim.Time(2*time.Second), time.Second, time.Second, time.Second, 4)
	if sp(sim.Time(time.Second)) != 1 || sp(sim.Time(9*time.Second)) != 1 {
		t.Fatal("spike multiplier must be 1 outside the event")
	}
	if got := sp(sim.Time(3500 * time.Millisecond)); got != 4 {
		t.Fatalf("spike hold = %v, want 4", got)
	}
	r := Ramp(0, 100, 10*time.Second)
	if got := r(sim.Time(5 * time.Second)); math.Abs(got-50) > 1e-9 {
		t.Fatalf("ramp midpoint = %v, want 50", got)
	}
}

func TestArrivalsRateAccuracy(t *testing.T) {
	// Over a long horizon the thinned process must produce ~∫λ dt
	// arrivals (within a few sigma of the Poisson mean).
	rng := rand.New(rand.NewSource(42))
	c := Sampled(sim.Time(60*time.Second), 250*time.Millisecond,
		Diurnal(2000, 0.6, 20*time.Second))
	a := NewArrivals(c, rng)
	var n int
	window := sim.Time(50 * time.Millisecond)
	for from := sim.Time(0); from < sim.Time(60*time.Second); from += window {
		n += len(a.Draw(from, from+window))
	}
	mean := c.Mean(0, sim.Time(60*time.Second)) * 60
	sigma := math.Sqrt(mean)
	if math.Abs(float64(n)-mean) > 5*sigma {
		t.Fatalf("arrivals = %d, expected %v ± %v", n, mean, 5*sigma)
	}
}

func TestArrivalsDeterministicAndOrdered(t *testing.T) {
	c := Constant(50000)
	a1 := NewArrivals(c, rand.New(rand.NewSource(9)))
	a2 := NewArrivals(c, rand.New(rand.NewSource(9)))
	w := sim.Time(10 * time.Millisecond)
	for from := sim.Time(0); from < sim.Time(100*time.Millisecond); from += w {
		d1 := append([]sim.Time(nil), a1.Draw(from, from+w)...)
		d2 := append([]sim.Time(nil), a2.Draw(from, from+w)...)
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("same seed produced different arrivals in window at %v", from)
		}
		for i, at := range d1 {
			if at < from || at >= from+w {
				t.Fatalf("arrival %v outside window [%v,%v)", at, from, from+w)
			}
			if i > 0 && at < d1[i-1] {
				t.Fatal("arrivals not sorted")
			}
		}
	}
}

func TestArrivalsZeroAllocSteadyState(t *testing.T) {
	c := Constant(100000)
	a := NewArrivals(c, rand.New(rand.NewSource(1)))
	w := sim.Time(10 * time.Millisecond)
	from := sim.Time(0)
	// Warm the buffer to steady-state size.
	for i := 0; i < 50; i++ {
		a.Draw(from, from+w)
		from += w
	}
	allocs := testing.AllocsPerRun(200, func() {
		a.Draw(from, from+w)
		from += w
	})
	if allocs != 0 {
		t.Fatalf("Draw allocates at steady state: %v allocs/run", allocs)
	}
}

func TestZipfDistribution(t *testing.T) {
	const n = 1000
	z := NewZipf(n, 0.99)
	rng := rand.New(rand.NewSource(5))
	const draws = 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.Sample(rng)
		if r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must dominate: expected share is 1/zeta(n,0.99) ≈ 13%.
	share0 := float64(counts[0]) / draws
	if share0 < 0.10 || share0 > 0.17 {
		t.Fatalf("rank-0 share = %v, want ~0.13", share0)
	}
	// Monotone-ish decay across decades.
	if counts[0] < counts[10] || counts[10] < counts[100] {
		t.Fatalf("popularity not decaying: %d, %d, %d", counts[0], counts[10], counts[100])
	}
	// Theoretical head probability check for rank 0: 1/zetan.
	want := 1 / zeta(n, 0.99)
	if math.Abs(share0-want) > 0.02 {
		t.Fatalf("rank-0 share %v deviates from theory %v", share0, want)
	}
}

func TestZipfHugeKeyspaceConstruction(t *testing.T) {
	// 10M+ keys must construct fast (bounded zeta work) and still
	// produce in-range, skewed samples.
	z := NewZipf(20_000_000, 0.9)
	rng := rand.New(rand.NewSource(2))
	var head int
	const draws = 50000
	for i := 0; i < draws; i++ {
		r := z.Sample(rng)
		if r >= 20_000_000 {
			t.Fatalf("rank %d out of range", r)
		}
		if r < 100 {
			head++
		}
	}
	// With theta=0.9 the top-100 ranks carry a large share.
	if float64(head)/draws < 0.15 {
		t.Fatalf("head share = %v, keyspace not skewed", float64(head)/draws)
	}
}

func TestZetaTailApproximation(t *testing.T) {
	// The integral-corrected tail must agree with exact summation just
	// past the exact cutoff.
	n := uint64(zetaExactMax + 50000)
	var exact float64
	for i := uint64(1); i <= n; i++ {
		exact += math.Pow(float64(i), -0.99)
	}
	approx := zeta(n, 0.99)
	if rel := math.Abs(approx-exact) / exact; rel > 1e-6 {
		t.Fatalf("zeta tail relative error %v", rel)
	}
}

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(1_000_000, 0.99)
	r1 := rand.New(rand.NewSource(77))
	r2 := rand.New(rand.NewSource(77))
	for i := 0; i < 1000; i++ {
		if z.Sample(r1) != z.Sample(r2) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestScrambleKeyStable(t *testing.T) {
	if ScrambleKey(1) == ScrambleKey(2) {
		t.Fatal("scramble collision on adjacent ranks")
	}
	if ScrambleKey(42) != ScrambleKey(42) {
		t.Fatal("scramble not deterministic")
	}
}

func TestAliasTable(t *testing.T) {
	weights := []float64{5, 3, 2}
	at := NewAliasTable(weights)
	rng := rand.New(rand.NewSource(13))
	counts := make([]int, len(weights))
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[at.Sample(rng)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("outcome %d share %v, want %v", i, got, want)
		}
	}
	// Zero-weight outcomes never sampled.
	at2 := NewAliasTable([]float64{1, 0, 1})
	for i := 0; i < 10000; i++ {
		if at2.Sample(rng) == 1 {
			t.Fatal("sampled zero-weight outcome")
		}
	}
}

func TestSamplePathZeroAlloc(t *testing.T) {
	z := NewZipf(10_000_000, 0.99)
	at := NewAliasTable([]float64{3, 2, 1})
	rng := rand.New(rand.NewSource(21))
	var sink uint64
	allocs := testing.AllocsPerRun(1000, func() {
		sink += ScrambleKey(z.Sample(rng)) + uint64(at.Sample(rng))
	})
	if allocs != 0 {
		t.Fatalf("sample path allocates: %v allocs/run", allocs)
	}
	_ = sink
}

func TestInjectorDeliversInOrder(t *testing.T) {
	k := sim.NewKernel(1)
	var got []Request
	inj := NewInjector(k, 5*time.Millisecond, func(r Request) {
		if r.At != k.Now() {
			t.Fatalf("request fired at %v, stamped %v", k.Now(), r.At)
		}
		got = append(got, r)
	})
	z := NewZipf(1000, 0.9)
	inj.AddTenant("a", Constant(40000), z)
	inj.AddTenant("b", Constant(20000), z)
	horizon := sim.Time(50 * time.Millisecond)
	inj.Start(0, horizon)
	k.Run()

	if len(got) == 0 {
		t.Fatal("no requests delivered")
	}
	if inj.Delivered() != uint64(len(got)) || inj.TotalGenerated() != inj.Delivered() {
		t.Fatalf("generated %d delivered %d handled %d",
			inj.TotalGenerated(), inj.Delivered(), len(got))
	}
	if inj.Windows() != 10 {
		t.Fatalf("windows = %d, want 10", inj.Windows())
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatal("requests delivered out of time order")
		}
	}
	// Tenant a offers ~2x tenant b's rate.
	ratio := float64(inj.Generated(0)) / float64(inj.Generated(1))
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("tenant rate ratio = %v, want ~2", ratio)
	}
	if inj.TenantName(0) != "a" || inj.TenantName(1) != "b" {
		t.Fatal("tenant names lost")
	}
}

func TestInjectorDeterministicAcrossRuns(t *testing.T) {
	run := func() []Request {
		k := sim.NewKernel(123)
		var got []Request
		inj := NewInjector(k, 2*time.Millisecond, func(r Request) { got = append(got, r) })
		inj.AddTenant("a", Constant(30000), NewZipf(100000, 0.99))
		inj.Start(0, sim.Time(20*time.Millisecond))
		k.Run()
		return got
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("same seed produced different request streams")
	}
}

func TestInjectorRespectsHorizon(t *testing.T) {
	k := sim.NewKernel(1)
	horizon := sim.Time(7 * time.Millisecond)
	inj := NewInjector(k, 2*time.Millisecond, func(r Request) {
		if r.At >= horizon {
			t.Fatalf("request at %v past horizon %v", r.At, horizon)
		}
	})
	inj.AddTenant("a", Constant(100000), NewZipf(1000, 0.5))
	inj.Start(0, horizon)
	end := k.Run()
	if end >= horizon+inj.window {
		t.Fatalf("kernel ran to %v, injector did not stop", end)
	}
}
