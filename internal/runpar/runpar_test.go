package runpar

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, par := range []int{0, 1, 2, 7, 64} {
		got := Map(20, par, func(i int) int { return i * i })
		if len(got) != 20 {
			t.Fatalf("par=%d: len = %d, want 20", par, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("par=%d: got[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Errorf("Map(0) = %v, want nil", got)
	}
}

func TestMapRunsEveryItemExactlyOnce(t *testing.T) {
	var calls [100]atomic.Int32
	Map(100, 8, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("item %d ran %d times", i, n)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if fmt.Sprint(r) != "boom-7" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Map(16, 4, func(i int) int {
		if i == 7 {
			panic("boom-7")
		}
		return i
	})
}

func TestMapErrReturnsFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	got, err := MapErr(10, 4, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errB // later item index should not win...
		case 8:
			return 0, errA
		}
		return i, nil
	})
	// First error by item index is i=3's.
	if !errors.Is(err, errB) {
		t.Fatalf("err = %v, want %v", err, errB)
	}
	if got[5] != 5 {
		t.Errorf("successful items must still be collected: got[5] = %d", got[5])
	}
}

func TestMapErrNilOnSuccess(t *testing.T) {
	got, err := MapErr(4, 2, func(i int) (string, error) {
		return fmt.Sprint(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0", "1", "2", "3"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
