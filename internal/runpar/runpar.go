// Package runpar fans independent work items out over a bounded pool of
// host goroutines and merges results deterministically.
//
// Every sim.Kernel is fully independent — it owns its clock, event
// queue, RNG, and process set — so independent experiment
// configurations (fig2's machine splits, ablation sweep points, whole
// experiments in quicksand-bench) can run on separate kernels across
// host cores. Determinism is preserved by construction: each worker
// writes only its own result slot, and callers consume results ordered
// by configuration index, never by completion order.
package runpar

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs f(i) for every i in [0, n) across up to par host goroutines
// and returns the results indexed by i. par <= 0 means GOMAXPROCS.
// With par == 1 (or n == 1) everything runs inline on the caller's
// goroutine, exactly as a plain loop would.
//
// f must not touch shared mutable state; each invocation gets its own
// result slot. If any invocation panics, Map re-panics with that value
// on the calling goroutine after all workers stop.
func Map[T any](n, par int, f func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	out := make([]T, n)
	if par == 1 {
		for i := range out {
			out[i] = f(i)
		}
		return out
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked bool
		panicVal any
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if !panicked {
								panicked, panicVal = true, r
							}
							panicMu.Unlock()
						}
					}()
					out[i] = f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	return out
}

// MapErr is Map for functions that can fail. It runs every item (it
// does not cancel on first error) and returns the results plus the
// first error by item index, mirroring what a sequential loop that
// collected all outcomes would report.
func MapErr[T any](n, par int, f func(i int) (T, error)) ([]T, error) {
	type slot struct {
		v   T
		err error
	}
	slots := Map(n, par, func(i int) slot {
		v, err := f(i)
		return slot{v, err}
	})
	out := make([]T, n)
	var firstErr error
	for i, s := range slots {
		out[i] = s.v
		if s.err != nil && firstErr == nil {
			firstErr = s.err
		}
	}
	return out, firstErr
}
