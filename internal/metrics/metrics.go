// Package metrics provides lightweight measurement containers used by
// the Quicksand simulator and the experiment harness: time series,
// fixed-width bucket series (for goodput/utilization timelines),
// histograms with percentiles, and counters.
//
// All containers are designed for single-threaded use from within the
// deterministic simulation, so they need no locking.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Point is a timestamped sample.
type Point struct {
	At    sim.Time
	Value float64
}

// TimeSeries is an append-only sequence of timestamped samples. Samples
// must be appended in non-decreasing time order.
type TimeSeries struct {
	Name   string
	points []Point
}

// NewTimeSeries creates an empty named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Add appends a sample. It panics if t is before the previous sample.
func (s *TimeSeries) Add(t sim.Time, v float64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].At {
		panic(fmt.Sprintf("metrics: out-of-order sample at %v (last %v) in %q", t, s.points[n-1].At, s.Name))
	}
	s.points = append(s.points, Point{At: t, Value: v})
}

// Len returns the number of samples.
func (s *TimeSeries) Len() int { return len(s.points) }

// Points returns the underlying samples (not a copy; do not mutate).
func (s *TimeSeries) Points() []Point { return s.points }

// Last returns the most recent sample, or a zero Point when empty.
func (s *TimeSeries) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// At returns the value in effect at time t, treating the series as a
// step function (last sample at or before t). ok is false before the
// first sample.
func (s *TimeSeries) At(t sim.Time) (v float64, ok bool) {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].At > t })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].Value, true
}

// Mean returns the time-weighted mean of the step function over
// [from, to). It returns 0 when the window is empty or degenerate.
func (s *TimeSeries) Mean(from, to sim.Time) float64 {
	if to <= from || len(s.points) == 0 {
		return 0
	}
	var area float64
	cur, have := s.At(from)
	prev := from
	for _, pt := range s.points {
		if pt.At <= from {
			continue
		}
		if pt.At >= to {
			break
		}
		if have {
			area += cur * float64(pt.At-prev)
		}
		cur, have = pt.Value, true
		prev = pt.At
	}
	if have {
		area += cur * float64(to-prev)
	}
	return area / float64(to-from)
}

// Max returns the maximum sample value over [from, to], considering the
// step value at from as well.
func (s *TimeSeries) Max(from, to sim.Time) float64 {
	max := math.Inf(-1)
	if v, ok := s.At(from); ok {
		max = v
	}
	for _, pt := range s.points {
		if pt.At < from || pt.At > to {
			continue
		}
		if pt.Value > max {
			max = pt.Value
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// FirstCrossing returns the earliest time in [from, to] at which the
// step function satisfies pred, scanning sample transitions. ok is false
// if pred never holds in the window.
func (s *TimeSeries) FirstCrossing(from, to sim.Time, pred func(v float64) bool) (sim.Time, bool) {
	if v, haveV := s.At(from); haveV && pred(v) {
		return from, true
	}
	for _, pt := range s.points {
		if pt.At < from {
			continue
		}
		if pt.At > to {
			break
		}
		if pred(pt.Value) {
			return pt.At, true
		}
	}
	return 0, false
}

// BucketSeries accumulates values into fixed-width time buckets. It is
// the container behind goodput/throughput timelines: each Add(t, v)
// adds v into the bucket containing t.
type BucketSeries struct {
	Name    string
	Width   time.Duration
	buckets []float64
}

// NewBucketSeries creates a bucket series with the given bucket width.
func NewBucketSeries(name string, width time.Duration) *BucketSeries {
	if width <= 0 {
		panic("metrics: bucket width must be positive")
	}
	return &BucketSeries{Name: name, Width: width}
}

// Add accumulates v into the bucket containing time t.
func (b *BucketSeries) Add(t sim.Time, v float64) {
	if t < 0 {
		panic("metrics: negative time")
	}
	idx := int(int64(t) / int64(b.Width))
	for len(b.buckets) <= idx {
		b.buckets = append(b.buckets, 0)
	}
	b.buckets[idx] += v
}

// Bucket returns the accumulated value of bucket i (0 beyond the end).
func (b *BucketSeries) Bucket(i int) float64 {
	if i < 0 || i >= len(b.buckets) {
		return 0
	}
	return b.buckets[i]
}

// NumBuckets returns the number of materialized buckets.
func (b *BucketSeries) NumBuckets() int { return len(b.buckets) }

// Values returns all bucket values (not a copy).
func (b *BucketSeries) Values() []float64 { return b.buckets }

// Total returns the sum across all buckets.
func (b *BucketSeries) Total() float64 {
	var sum float64
	for _, v := range b.buckets {
		sum += v
	}
	return sum
}

// Rate returns bucket i's value expressed per second.
func (b *BucketSeries) Rate(i int) float64 {
	return b.Bucket(i) / b.Width.Seconds()
}

// Histogram collects unordered samples and reports distribution
// statistics. Percentile queries sort lazily and incrementally: the
// container keeps a sorted prefix, and a query after k new
// observations sorts only the k-sample tail and merges it in — it
// never re-sorts samples that were already in order. Repeated queries
// with no intervening Observe touch nothing at all.
type Histogram struct {
	Name      string
	vals      []float64
	sortedLen int       // vals[:sortedLen] is sorted
	scratch   []float64 // reusable tail buffer for the in-place merge

	// White-box counters for the no-per-call-sort guarantee:
	// tailSorts is how many times a query found unsorted samples;
	// tailSorted is how many samples those sorts covered in total.
	tailSorts  int
	tailSorted int
}

// NewHistogram creates an empty named histogram.
func NewHistogram(name string) *Histogram { return &Histogram{Name: name} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.vals = append(h.vals, v)
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.vals) }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.vals {
		sum += v
	}
	return sum / float64(len(h.vals))
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 {
	h.ensureSorted()
	if len(h.vals) == 0 {
		return 0
	}
	return h.vals[0]
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	h.ensureSorted()
	if len(h.vals) == 0 {
		return 0
	}
	return h.vals[len(h.vals)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted samples. It returns 0 when empty.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.vals) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic("metrics: percentile out of range")
	}
	h.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(h.vals))))
	if rank < 1 {
		rank = 1
	}
	return h.vals[rank-1]
}

// ensureSorted restores the fully-sorted invariant. Samples appended
// since the last query form an unsorted tail: sort just that tail,
// copy it to a reusable scratch buffer, and merge the two sorted runs
// backwards in place. Cost is O(k log k + n) for k new samples rather
// than O(n log n) for the whole slice, and zero when nothing changed.
func (h *Histogram) ensureSorted() {
	n := len(h.vals)
	if h.sortedLen == n {
		return
	}
	tail := h.vals[h.sortedLen:]
	sort.Float64s(tail)
	h.tailSorts++
	h.tailSorted += len(tail)
	if h.sortedLen > 0 {
		if cap(h.scratch) < len(tail) {
			h.scratch = make([]float64, len(tail))
		}
		s := h.scratch[:len(tail)]
		copy(s, tail)
		i, j, k := h.sortedLen-1, len(s)-1, n-1
		for j >= 0 {
			if i >= 0 && h.vals[i] > s[j] {
				h.vals[k] = h.vals[i]
				i--
			} else {
				h.vals[k] = s[j]
				j--
			}
			k--
		}
	}
	h.sortedLen = n
}

// Counter is a monotonically increasing count. It is single-threaded
// like every other container here: use SharedCounter for counts that
// multiple partitioned-simulation shards bump concurrently.
type Counter struct {
	Name string
	n    int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Addn adds n (which must be non-negative) to the counter.
func (c *Counter) Addn(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.n += n
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// SharedCounter is a monotonically increasing count safe for concurrent
// increments from multiple host goroutines. The partitioned simulation
// kernel (sim.ParKernel) executes shards on parallel workers, so
// counters that aggregate across shards — cross-shard calls, bytes over
// partition boundaries — must be atomic; shard-local counters should
// stay plain Counters. Atomic increments commute, so totals are
// deterministic at any worker count even though increment interleaving
// is not.
type SharedCounter struct {
	Name string
	n    atomic.Int64
}

// Inc adds one to the counter.
func (c *SharedCounter) Inc() { c.n.Add(1) }

// Addn adds n (which must be non-negative) to the counter.
func (c *SharedCounter) Addn(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *SharedCounter) Value() int64 { return c.n.Load() }

// EWMA is an exponentially weighted moving average: each observation
// folds in with weight alpha. The first observation seeds the average
// directly, so short-lived series are not biased toward zero. Plain
// float state updated from kernel context — deterministic.
type EWMA struct {
	alpha float64
	v     float64
	n     int64
}

// NewEWMA creates an average with the given smoothing factor
// (0 < alpha <= 1; larger tracks faster).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("metrics: EWMA alpha out of (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average.
func (e *EWMA) Observe(v float64) {
	if e.n == 0 {
		e.v = v
	} else {
		e.v += e.alpha * (v - e.v)
	}
	e.n++
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Count returns how many samples have been observed.
func (e *EWMA) Count() int64 { return e.n }

// Reset discards all state, as after a migration that changes the
// thing being averaged.
func (e *EWMA) Reset() { e.v, e.n = 0, 0 }
