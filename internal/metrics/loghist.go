package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// LogHistogram is a fixed-shape log-scale latency histogram: power-of-two
// exponent ranges subdivided into 2^logSubBits linear sub-buckets
// (HDR-histogram style), over an int64 nanosecond domain.
//
// It exists for open-loop serving workloads that observe millions of
// latencies online: Record is allocation-free (a pure index computation
// into a fixed counts array), quantile queries never retain or sort
// samples, and the memory footprint is a small constant regardless of
// sample count. The price is bounded relative error: every sample lands
// in a bucket whose width is at most 2^-logSubBits of its lower bound,
// so any quantile is within RelError (~3.1%) of the exact order
// statistic.
//
// All state is plain integers updated single-threaded from shard
// context, so per-shard histograms recorded under a sim.ParKernel are
// deterministic at any worker count, and Merge — integer addition in
// caller-chosen order — is deterministic regardless of how many workers
// produced the inputs (the obs.MergeSeries pattern: record shard-local,
// aggregate once at a barrier).
type LogHistogram struct {
	Name string

	counts [logBuckets]uint64
	count  uint64
	sum    int64 // exact integer sum: merge order cannot perturb it
	min    int64
	max    int64
}

// Histogram shape constants. Values below 2^logSubBits ns are exact
// (one bucket per nanosecond); above, each power of two is split into
// 2^logSubBits sub-buckets. Values at or above 2^logMaxExp ns (~9.2
// minutes) clamp into the final overflow bucket.
const (
	logSubBits = 5 // 32 sub-buckets per power of two
	logMaxExp  = 39
	logSub     = 1 << logSubBits
	// Exponent groups 5..logMaxExp-1 each contribute logSub buckets
	// after the exact sub-logSub range, plus one overflow bucket.
	logBuckets = (logMaxExp-logSubBits+1)*logSub + 1
)

// RelError is the worst-case relative error of a quantile query for
// non-overflowed samples: bucket width over bucket lower bound.
const RelError = 1.0 / logSub

// NewLogHistogram creates an empty named log-scale histogram.
func NewLogHistogram(name string) *LogHistogram {
	return &LogHistogram{Name: name}
}

// logIndex maps a nanosecond value to its bucket. Negative values clamp
// to bucket 0; values >= 2^logMaxExp clamp to the overflow bucket.
func logIndex(v int64) int {
	if v < logSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1)
	if e >= logMaxExp {
		return logBuckets - 1
	}
	sub := int(uint64(v)>>(e-logSubBits)) - logSub
	return (e-logSubBits+1)*logSub + sub
}

// logLower returns the inclusive lower bound of bucket idx.
func logLower(idx int) int64 {
	if idx < logSub {
		return int64(idx)
	}
	g := idx >> logSubBits
	sub := idx & (logSub - 1)
	e := g + logSubBits - 1
	return (int64(1) << e) + int64(sub)<<(e-logSubBits)
}

// logWidth returns the width of bucket idx.
func logWidth(idx int) int64 {
	if idx < logSub {
		return 1
	}
	e := idx>>logSubBits + logSubBits - 1
	return int64(1) << (e - logSubBits)
}

// Record adds one nanosecond sample. Zero allocations.
func (h *LogHistogram) Record(ns int64) {
	h.counts[logIndex(ns)]++
	h.count++
	h.sum += ns
	if h.count == 1 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// RecordDuration records a duration sample.
func (h *LogHistogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *LogHistogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all samples in nanoseconds.
func (h *LogHistogram) Sum() int64 { return h.sum }

// Mean returns the exact arithmetic mean in nanoseconds (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the exact smallest sample in nanoseconds (0 when empty).
func (h *LogHistogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest sample in nanoseconds (0 when empty).
func (h *LogHistogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Overflowed returns the number of samples clamped into the overflow
// bucket (at or above 2^logMaxExp ns).
func (h *LogHistogram) Overflowed() uint64 { return h.counts[logBuckets-1] }

// Quantile returns the q-th quantile (0 <= q <= 1) in nanoseconds using
// nearest-rank over the cumulative bucket counts; the returned value is
// the matched bucket's midpoint, clamped to the exact observed min/max
// so Quantile(0) and Quantile(1) are exact. Returns 0 when empty.
func (h *LogHistogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 || q > 1 {
		panic("metrics: quantile out of range [0, 1]")
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for i := 0; i < logBuckets; i++ {
		cum += h.counts[i]
		if cum > rank {
			if i == logBuckets-1 {
				// Overflow bucket: its midpoint is meaningless, but the
				// exact max is known.
				return h.max
			}
			v := logLower(i) + logWidth(i)/2
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// QuantileMS returns Quantile(q) converted to milliseconds.
func (h *LogHistogram) QuantileMS(q float64) float64 {
	return float64(h.Quantile(q)) / 1e6
}

// CountAbove returns the number of samples whose bucket lies entirely
// at or above ns (an under-estimate by at most one bucket's worth of
// samples; exact when ns is a bucket boundary).
func (h *LogHistogram) CountAbove(ns int64) uint64 {
	idx := logIndex(ns)
	if logLower(idx) < ns {
		idx++ // partial bucket: exclude it
	}
	var n uint64
	for i := idx; i < logBuckets; i++ {
		n += h.counts[i]
	}
	return n
}

// Merge adds o's samples into h. Both histograms share the package's
// fixed bucket shape, so merging is pure integer addition: the result
// is byte-identical regardless of the worker count that produced the
// inputs, and independent of merge associativity (though callers should
// still merge in a fixed shard order so Name/min/max tie-breaks are
// stable).
func (h *LogHistogram) Merge(o *LogHistogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset zeroes every bucket so the histogram can be reused — the SLO
// monitor folds each window into one recycled histogram instead of
// allocating per window. The name is kept.
func (h *LogHistogram) Reset() {
	h.counts = [logBuckets]uint64{}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}

// MergeLogHistograms merges hs (in argument order) into a fresh
// histogram with the given name. Nil entries are skipped.
func MergeLogHistograms(name string, hs ...*LogHistogram) *LogHistogram {
	out := NewLogHistogram(name)
	for _, h := range hs {
		if h != nil {
			out.Merge(h)
		}
	}
	return out
}

// Snapshot returns the histogram's deterministic state: every non-empty
// bucket as (index, count) pairs plus the exact count/sum/min/max. Two
// histograms that recorded the same samples — in any order, under any
// worker count — produce identical snapshots, so snapshots are directly
// comparable with reflect.DeepEqual in determinism harnesses.
type LogSnapshot struct {
	Buckets []int
	Counts  []uint64
	Count   uint64
	Sum     int64
	Min     int64
	Max     int64
}

// Snapshot captures the histogram's current state.
func (h *LogHistogram) Snapshot() LogSnapshot {
	s := LogSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, i)
			s.Counts = append(s.Counts, c)
		}
	}
	return s
}

// String renders a one-line summary: count, mean, and tail quantiles.
func (h *LogHistogram) String() string {
	var b strings.Builder
	name := h.Name
	if name == "" {
		name = "loghist"
	}
	fmt.Fprintf(&b, "%s: n=%d mean=%.3fms p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms",
		name, h.count, h.Mean()/1e6,
		h.QuantileMS(0.50), h.QuantileMS(0.99), h.QuantileMS(0.999),
		float64(h.Max())/1e6)
	return b.String()
}
