package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestTimeSeriesAtStepFunction(t *testing.T) {
	s := NewTimeSeries("util")
	s.Add(10, 1.0)
	s.Add(20, 2.0)
	s.Add(30, 3.0)

	if _, ok := s.At(5); ok {
		t.Error("At before first sample should report !ok")
	}
	cases := []struct {
		at   sim.Time
		want float64
	}{{10, 1}, {15, 1}, {20, 2}, {29, 2}, {30, 3}, {100, 3}}
	for _, c := range cases {
		if v, ok := s.At(c.at); !ok || v != c.want {
			t.Errorf("At(%d) = %v,%v, want %v,true", c.at, v, ok, c.want)
		}
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewTimeSeries("x")
	s.Add(10, 1)
	s.Add(5, 2)
}

func TestTimeSeriesMean(t *testing.T) {
	s := NewTimeSeries("x")
	s.Add(0, 0)
	s.Add(10, 10)
	// step: 0 on [0,10), 10 on [10,20) -> mean over [0,20) = 5
	if got := s.Mean(0, 20); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// window fully in second step
	if got := s.Mean(12, 18); got != 10 {
		t.Errorf("Mean = %v, want 10", got)
	}
	// empty window
	if got := s.Mean(10, 10); got != 0 {
		t.Errorf("Mean on empty window = %v, want 0", got)
	}
}

func TestTimeSeriesMax(t *testing.T) {
	s := NewTimeSeries("x")
	s.Add(0, 1)
	s.Add(10, 7)
	s.Add(20, 3)
	if got := s.Max(5, 25); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := s.Max(15, 16); got != 7 { // step value at window start
		t.Errorf("Max = %v, want 7 (step at from)", got)
	}
}

func TestTimeSeriesFirstCrossing(t *testing.T) {
	s := NewTimeSeries("x")
	s.Add(0, 1)
	s.Add(10, 5)
	s.Add(20, 9)
	at, ok := s.FirstCrossing(0, 100, func(v float64) bool { return v >= 5 })
	if !ok || at != 10 {
		t.Errorf("FirstCrossing = %v,%v, want 10,true", at, ok)
	}
	at, ok = s.FirstCrossing(15, 100, func(v float64) bool { return v >= 5 })
	if !ok || at != 15 {
		t.Errorf("FirstCrossing from mid-step = %v,%v, want 15,true", at, ok)
	}
	if _, ok := s.FirstCrossing(0, 100, func(v float64) bool { return v > 100 }); ok {
		t.Error("FirstCrossing found impossible predicate")
	}
}

func TestBucketSeries(t *testing.T) {
	b := NewBucketSeries("goodput", time.Millisecond)
	b.Add(0, 1)
	b.Add(sim.Time(500*time.Microsecond), 2)
	b.Add(sim.Time(time.Millisecond), 4)
	b.Add(sim.Time(5*time.Millisecond), 8)
	if b.NumBuckets() != 6 {
		t.Errorf("NumBuckets = %d, want 6", b.NumBuckets())
	}
	if b.Bucket(0) != 3 || b.Bucket(1) != 4 || b.Bucket(5) != 8 {
		t.Errorf("buckets = %v", b.Values())
	}
	if b.Bucket(2) != 0 || b.Bucket(99) != 0 {
		t.Error("empty buckets should be 0")
	}
	if b.Total() != 15 {
		t.Errorf("Total = %v, want 15", b.Total())
	}
	if b.Rate(1) != 4000 { // 4 per ms = 4000/s
		t.Errorf("Rate(1) = %v, want 4000", b.Rate(1))
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	// Observing after a percentile query must re-sort.
	h.Observe(0.5)
	if h.Min() != 0.5 {
		t.Errorf("Min after new observation = %v, want 0.5", h.Min())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(99) != 0 {
		t.Error("empty histogram stats should be 0")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram("d")
	h.ObserveDuration(1500 * time.Millisecond)
	if h.Mean() != 1.5 {
		t.Errorf("Mean = %v, want 1.5", h.Mean())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counter
	c.Addn(-1)
}

// Property: histogram percentiles are monotone and bounded by min/max.
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram("p")
		for _, v := range vals {
			h.Observe(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) == h.Max() && h.Percentile(0) == h.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: BucketSeries.Total equals the sum of inserted values, and
// bucket assignment matches integer division.
func TestBucketSeriesTotalProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		b := NewBucketSeries("x", 100*time.Nanosecond)
		var want float64
		wantBuckets := map[int]float64{}
		for _, o := range offsets {
			t := sim.Time(o)
			b.Add(t, 1)
			want++
			wantBuckets[int(o/100)]++
		}
		if b.Total() != want {
			return false
		}
		for i, v := range wantBuckets {
			if b.Bucket(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: TimeSeries.Mean of a constant series is that constant.
func TestTimeSeriesConstantMeanProperty(t *testing.T) {
	f := func(v float64, nRaw uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
			return true // v*dt would overflow float64; out of modeled domain
		}
		n := int(nRaw%20) + 1
		s := NewTimeSeries("c")
		times := make([]int64, n)
		for i := range times {
			times[i] = int64(i) * 17
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for _, tt := range times {
			s.Add(sim.Time(tt), v)
		}
		got := s.Mean(0, sim.Time(times[n-1]+100))
		return math.Abs(got-v) < 1e-9*math.Max(1, math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
