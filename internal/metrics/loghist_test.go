package metrics

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestLogIndexRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and
	// bucket bounds must tile the domain without gaps or overlap.
	for idx := 0; idx < logBuckets-1; idx++ {
		lo := logLower(idx)
		if got := logIndex(lo); got != idx {
			t.Fatalf("logIndex(logLower(%d)=%d) = %d", idx, lo, got)
		}
		hi := lo + logWidth(idx) - 1
		if got := logIndex(hi); got != idx {
			t.Fatalf("logIndex(upper %d of bucket %d) = %d", hi, idx, got)
		}
		if next := logLower(idx + 1); next != lo+logWidth(idx) {
			t.Fatalf("bucket %d ends at %d but bucket %d starts at %d",
				idx, lo+logWidth(idx), idx+1, next)
		}
	}
}

func TestLogHistogramQuantileAccuracy(t *testing.T) {
	// Against an exact sorted order statistic on small N, every quantile
	// must be within the documented relative error bound.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(500)
		samples := make([]int64, n)
		h := NewLogHistogram("acc")
		for i := range samples {
			// Log-uniform over ~1µs..10s, the latency range that matters.
			v := int64(1000 * (1 << uint(rng.Intn(24))))
			v += rng.Int63n(v)
			samples[i] = v
			h.Record(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(q * float64(n))
			if rank >= n {
				rank = n - 1
			}
			exact := samples[rank]
			got := h.Quantile(q)
			lo := float64(exact) * (1 - RelError)
			hi := float64(exact) * (1 + RelError)
			if float64(got) < lo || float64(got) > hi {
				t.Fatalf("trial %d q=%v: got %d, exact %d, bound ±%.1f%%",
					trial, q, got, exact, RelError*100)
			}
		}
		if h.Min() != samples[0] || h.Max() != samples[n-1] {
			t.Fatalf("min/max not exact: got %d/%d want %d/%d",
				h.Min(), h.Max(), samples[0], samples[n-1])
		}
	}
}

func TestLogHistogramMergeShardInvariant(t *testing.T) {
	// The same sample stream split across P shard-local histograms and
	// merged must produce byte-identical snapshots for every P — the
	// property the partitioned kernel's worker sweep relies on.
	const n = 10000
	rng := rand.New(rand.NewSource(11))
	samples := make([]int64, n)
	for i := range samples {
		samples[i] = rng.Int63n(int64(5 * time.Second))
	}
	var snaps []LogSnapshot
	for _, p := range []int{1, 4, 8} {
		shards := make([]*LogHistogram, p)
		for i := range shards {
			shards[i] = NewLogHistogram("shard")
		}
		for i, v := range samples {
			shards[i%p].Record(v)
		}
		merged := MergeLogHistograms("merged", shards...)
		snaps = append(snaps, merged.Snapshot())
	}
	for i := 1; i < len(snaps); i++ {
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Fatalf("merge not shard-count-invariant: P=1 vs P=%d differ", []int{1, 4, 8}[i])
		}
	}
	if snaps[0].Count != n {
		t.Fatalf("merged count = %d, want %d", snaps[0].Count, n)
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	h := NewLogHistogram("empty")
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 ||
		h.Min() != 0 || h.Max() != 0 || h.Overflowed() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// Merging an empty histogram must not disturb min/max.
	g := NewLogHistogram("g")
	g.Record(42)
	g.Merge(h)
	if g.Min() != 42 || g.Max() != 42 || g.Count() != 1 {
		t.Fatalf("merge with empty perturbed state: %+v", g.Snapshot())
	}
	// Merging into an empty histogram adopts the source's min.
	h.Merge(g)
	if h.Min() != 42 || h.Count() != 1 {
		t.Fatalf("merge into empty lost min: min=%d count=%d", h.Min(), h.Count())
	}
}

func TestLogHistogramOverflowAndClamps(t *testing.T) {
	h := NewLogHistogram("ovf")
	huge := int64(1) << 45 // far above 2^logMaxExp
	h.Record(huge)
	h.Record(-5) // negative clamps to bucket 0
	h.Record(0)
	if h.Overflowed() != 1 {
		t.Fatalf("overflowed = %d, want 1", h.Overflowed())
	}
	if h.Min() != -5 || h.Max() != huge {
		t.Fatalf("exact min/max lost: %d/%d", h.Min(), h.Max())
	}
	// Quantile(1) is clamped to the exact max even for overflowed samples.
	if h.Quantile(1) != huge {
		t.Fatalf("Quantile(1) = %d, want exact max %d", h.Quantile(1), huge)
	}
}

func TestLogHistogramQuantilePanics(t *testing.T) {
	h := NewLogHistogram("p")
	h.Record(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for q out of range")
		}
	}()
	h.Quantile(1.5)
}

func TestLogHistogramCountAbove(t *testing.T) {
	h := NewLogHistogram("ca")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * int64(time.Millisecond))
	}
	// 10ms is a bucket boundary-ish threshold; CountAbove must never
	// overcount (it excludes the partial bucket).
	got := h.CountAbove(int64(50 * time.Millisecond))
	if got > 51 || got < 45 {
		t.Fatalf("CountAbove(50ms) = %d, want ~51 and never above", got)
	}
}

func TestLogHistogramRecordNoAllocs(t *testing.T) {
	h := NewLogHistogram("alloc")
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = rng.Int63n(int64(time.Second))
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range vals {
			h.Record(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("Record allocates: %v allocs/run", allocs)
	}
	q := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.999)
	})
	if q != 0 {
		t.Fatalf("Quantile allocates: %v allocs/run", q)
	}
}
