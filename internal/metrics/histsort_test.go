package metrics

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sim"
)

// TestHistogramIncrementalSort drives interleaved Observe/Percentile
// traffic and checks, via the white-box counters, that queries never
// re-sort samples that were already in order: each query sorts only
// the tail appended since the previous query, and a query with no new
// samples sorts nothing.
func TestHistogramIncrementalSort(t *testing.T) {
	h := NewHistogram("lat")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		h.Observe(rng.Float64())
	}
	h.Percentile(99)
	if h.tailSorts != 1 || h.tailSorted != 1000 {
		t.Fatalf("first query: tailSorts=%d tailSorted=%d, want 1/1000", h.tailSorts, h.tailSorted)
	}

	// Repeated queries with no intervening Observe must not sort.
	for i := 0; i < 100; i++ {
		h.Percentile(float64(i))
		h.Min()
		h.Max()
	}
	if h.tailSorts != 1 {
		t.Fatalf("repeated queries re-sorted: tailSorts=%d, want 1", h.tailSorts)
	}

	// Each Observe/query round sorts exactly the new tail, never the
	// whole slice again.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			h.Observe(rng.Float64())
		}
		h.Percentile(50)
	}
	if h.tailSorts != 51 {
		t.Fatalf("tailSorts=%d, want 51", h.tailSorts)
	}
	if want := 1000 + 50*7; h.tailSorted != want {
		t.Fatalf("tailSorted=%d, want %d — a query re-sorted the sorted prefix", h.tailSorted, want)
	}

	// The merge must still produce correct order statistics.
	vals := append([]float64(nil), h.vals...)
	sort.Float64s(vals)
	if !sort.Float64sAreSorted(h.vals) {
		t.Fatal("vals not fully sorted after queries")
	}
	if h.Min() != vals[0] || h.Max() != vals[len(vals)-1] {
		t.Fatalf("min/max = %v/%v, want %v/%v", h.Min(), h.Max(), vals[0], vals[len(vals)-1])
	}
}

// TestHistogramIncrementalMatchesFullSort cross-checks every percentile
// of an interleaved-build histogram against a sort-once oracle.
func TestHistogramIncrementalMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram("x")
	var all []float64
	for round := 0; round < 20; round++ {
		n := rng.Intn(40) // including empty tails
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()
			h.Observe(v)
			all = append(all, v)
		}
		if len(all) == 0 {
			continue
		}
		oracle := NewHistogram("oracle")
		for _, v := range all {
			oracle.Observe(v)
		}
		for p := 0.0; p <= 100; p += 2.5 {
			if got, want := h.Percentile(p), oracle.Percentile(p); got != want {
				t.Fatalf("round %d: Percentile(%g) = %v, want %v", round, p, got, want)
			}
		}
	}
}

// BenchmarkHistogramPercentileRepeated asserts the satellite guarantee
// directly: after one warm-up query, repeated Percentile calls perform
// zero sorts regardless of how many samples the histogram holds.
func BenchmarkHistogramPercentileRepeated(b *testing.B) {
	h := NewHistogram("bench")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		h.Observe(rng.Float64())
	}
	h.Percentile(50) // absorb the one-time full sort
	sortsBefore := h.tailSorts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Percentile(99.9)
	}
	b.StopTimer()
	if h.tailSorts != sortsBefore {
		b.Fatalf("repeated Percentile sorted %d times, want 0", h.tailSorts-sortsBefore)
	}
}

// BenchmarkHistogramObserveThenPercentile measures the interleaved
// pattern the old implementation degraded on: one new sample between
// queries used to cost a full O(n log n) re-sort; now it is a 1-element
// tail merge.
func BenchmarkHistogramObserveThenPercentile(b *testing.B) {
	h := NewHistogram("bench")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		h.Observe(rng.Float64())
	}
	h.Percentile(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(rng.Float64())
		h.Percentile(99.9)
	}
}

// TestFirstCrossingEdgeCases covers the satellite's edge matrix: empty
// series, a single point, a degenerate from==to window, and windows
// that miss every sample.
func TestFirstCrossingEdgeCases(t *testing.T) {
	above := func(bound float64) func(float64) bool {
		return func(v float64) bool { return v > bound }
	}

	empty := NewTimeSeries("empty")
	if at, ok := empty.FirstCrossing(0, 100, above(0)); ok {
		t.Errorf("empty series: FirstCrossing = %v,true, want !ok", at)
	}

	one := NewTimeSeries("one")
	one.Add(50, 3)
	if at, ok := one.FirstCrossing(0, 100, above(2)); !ok || at != 50 {
		t.Errorf("single point in window: got %v,%v, want 50,true", at, ok)
	}
	if _, ok := one.FirstCrossing(0, 40, above(2)); ok {
		t.Error("single point after window reported a crossing")
	}
	// After the sample the series holds its value: the step function
	// already satisfies pred at `from`.
	if at, ok := one.FirstCrossing(60, 100, above(2)); !ok || at != 60 {
		t.Errorf("step value at from: got %v,%v, want 60,true", at, ok)
	}
	if _, ok := one.FirstCrossing(60, 100, above(5)); ok {
		t.Error("pred never holds but a crossing was reported")
	}

	s := NewTimeSeries("s")
	s.Add(10, 1)
	s.Add(20, 5)
	// from==to degenerates to a point query on the step function.
	if at, ok := s.FirstCrossing(20, 20, above(2)); !ok || at != 20 {
		t.Errorf("from==to at sample: got %v,%v, want 20,true", at, ok)
	}
	if at, ok := s.FirstCrossing(25, 25, above(2)); !ok || at != 25 {
		t.Errorf("from==to between samples: got %v,%v, want 25,true", at, ok)
	}
	if _, ok := s.FirstCrossing(15, 15, above(2)); ok {
		t.Error("from==to before the crossing reported one")
	}
	// Window entirely before any sample.
	if _, ok := s.FirstCrossing(0, 5, above(0)); ok {
		t.Error("window before first sample reported a crossing")
	}
}

// TestBucketSeriesRateEdgeCases covers Rate on out-of-range and
// negative indices, plus the empty series.
func TestBucketSeriesRateEdgeCases(t *testing.T) {
	b := NewBucketSeries("good", 100*1e6) // 100ms buckets
	if got := b.Rate(0); got != 0 {
		t.Errorf("empty series Rate(0) = %v, want 0", got)
	}
	b.Add(sim.Time(50*1e6), 10)  // bucket 0
	b.Add(sim.Time(150*1e6), 30) // bucket 1
	if got := b.Rate(0); got != 100 {
		t.Errorf("Rate(0) = %v, want 100 (10 per 0.1s)", got)
	}
	if got := b.Rate(1); got != 300 {
		t.Errorf("Rate(1) = %v, want 300", got)
	}
	for _, i := range []int{-1, -100, 2, 1000} {
		if got := b.Rate(i); got != 0 {
			t.Errorf("out-of-range Rate(%d) = %v, want 0", i, got)
		}
	}
}
