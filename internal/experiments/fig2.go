package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dtp"
	"repro/internal/runpar"
	"repro/internal/sharded"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// fig2Cfg parameterizes the §4 case study: preprocess an in-memory
// image corpus with a fixed total of CPU and memory, divided between
// two machines in increasingly imbalanced ways.
type fig2Cfg struct {
	images    int
	meanBytes int64
	meanCPU   time.Duration
	spread    float64
	chunk     int
	outBytes  int64 // preprocessed batch size pushed to the GPU queue
	gpus      int
	gpuBatch  time.Duration
	maxShard  int64 // 0 = system default
	rows      []fig2Row
}

type fig2Row struct {
	name     string
	machines []cluster.MachineConfig
}

func fig2Config(scale Scale) fig2Cfg {
	const GiB = 1 << 30
	if scale == TestScale {
		const MiB = 1 << 20
		return fig2Cfg{
			images:    400,
			meanBytes: 64 << 10,
			meanCPU:   2 * time.Millisecond,
			spread:    0.2,
			chunk:     8,
			outBytes:  8 << 10,
			gpus:      16,
			gpuBatch:  200 * time.Microsecond,
			maxShard:  2 * MiB,
			rows: []fig2Row{
				{"baseline", []cluster.MachineConfig{{Cores: 12, MemBytes: 96 * MiB}}},
				{"cpu-unbalanced", []cluster.MachineConfig{
					{Cores: 2, MemBytes: 48 * MiB}, {Cores: 10, MemBytes: 48 * MiB}}},
				{"mem-unbalanced", []cluster.MachineConfig{
					{Cores: 6, MemBytes: 8 * MiB}, {Cores: 6, MemBytes: 88 * MiB}}},
				{"both-unbalanced", []cluster.MachineConfig{
					{Cores: 2, MemBytes: 88 * MiB}, {Cores: 10, MemBytes: 8 * MiB}}},
			},
		}
	}
	// Paper scale: 46 cores + 13 GiB total; corpus sized so the
	// baseline lands near the paper's 26.1 s (≈1200 core-seconds).
	return fig2Cfg{
		images:    11000,
		meanBytes: 1 << 20,
		meanCPU:   109 * time.Millisecond,
		spread:    0.25,
		chunk:     8,
		outBytes:  128 << 10,
		gpus:      64,
		gpuBatch:  time.Millisecond,
		rows: []fig2Row{
			{"baseline", []cluster.MachineConfig{{Cores: 46, MemBytes: 13 * GiB}}},
			{"cpu-unbalanced", []cluster.MachineConfig{
				{Cores: 6, MemBytes: 13 * GiB / 2}, {Cores: 40, MemBytes: 13 * GiB / 2}}},
			{"mem-unbalanced", []cluster.MachineConfig{
				{Cores: 23, MemBytes: 1 * GiB}, {Cores: 23, MemBytes: 12 * GiB}}},
			{"both-unbalanced", []cluster.MachineConfig{
				{Cores: 6, MemBytes: 12 * GiB}, {Cores: 40, MemBytes: 1 * GiB}}},
		},
	}
}

// fig2Outcome reports one configuration's pipeline run.
type fig2Outcome struct {
	completion  sim.Time
	shards      int
	memSplit    []int64 // bytes resident per machine at preprocessing start
	procSplit   []int   // compute proclets per machine at completion
	evacuations int64
	events      uint64
}

// fig2Pipeline runs the Quicksand preprocessing pipeline on the given
// machine set and returns the preprocessing completion time (load
// phase excluded, as in the paper's in-memory setup).
func fig2Pipeline(cfg fig2Cfg, machines []cluster.MachineConfig, imgs []workload.Image) (fig2Outcome, error) {
	var out fig2Outcome
	sysCfg := core.DefaultConfig()
	sysCfg.Seed = seeded(sysCfg.Seed)
	sys := core.NewSystem(sysCfg, machines)
	defer sys.Close()
	sys.Start()

	opts := sharded.Options{AutoAdapt: true}
	if cfg.maxShard > 0 {
		opts.MaxShardBytes = cfg.maxShard
	}
	vec, err := sharded.NewVector[workload.Image](sys, "images", opts)
	if err != nil {
		return out, err
	}
	queue, err := sharded.NewQueue[workload.Batch](sys, "batches", opts)
	if err != nil {
		return out, err
	}
	gpus := workload.NewGPUPool(queue, 0, cfg.gpuBatch, cfg.gpus)
	gpus.Start(sys.K)

	totalCores := 0
	for _, mc := range machines {
		totalCores += int(mc.Cores)
	}
	tp, err := dtp.New(sys, "preproc", 1, totalCores, 1, totalCores)
	if err != nil {
		return out, err
	}

	var runErr error
	done := false
	sys.K.Spawn("driver", func(p *sim.Proc) {
		// Load phase (untimed): ingest the corpus through machine 0.
		for _, im := range imgs {
			if err := vec.PushBack(p, 0, im, im.Bytes); err != nil {
				runErr = fmt.Errorf("load image %d: %w", im.Idx, err)
				return
			}
		}
		out.shards = vec.NumShards()
		for _, m := range sys.Cluster.Machines() {
			out.memSplit = append(out.memSplit, m.MemUsed())
		}

		// Preprocessing phase (timed).
		start := p.Now()
		err := dtp.ForEachVec(p, tp, vec, cfg.chunk, func(tc *core.TaskCtx, idx uint64, im workload.Image) {
			tc.Compute(im.CPU)
			if perr := queue.Push(tc.Proc(), tc.Machine(), workload.Batch{Seq: im.Idx, Bytes: cfg.outBytes}, cfg.outBytes); perr != nil && runErr == nil {
				runErr = fmt.Errorf("push batch %d: %w", im.Idx, perr)
			}
		})
		if err != nil && runErr == nil {
			runErr = err
		}
		out.completion = p.Now() - start
		out.procSplit = make([]int, len(machines))
		for _, cp := range tp.Pool().Members() {
			out.procSplit[cp.Location()]++
		}
		done = true
		gpus.Stop()
		sys.K.Stop()
	})
	sys.K.Run()
	if runErr != nil {
		return out, runErr
	}
	if !done {
		return out, fmt.Errorf("fig2: pipeline did not complete (deadlock?)")
	}
	out.evacuations = sys.Sched.Evacuations.Value() + sys.Sched.MemEvictions.Value()
	out.events = sys.K.EventsProcessed()
	return out, nil
}

func runFig2(scale Scale) (*Result, error) {
	cfg := fig2Config(scale)
	imgs := workload.GenImages(rand.New(rand.NewSource(seeded(42))), cfg.images, cfg.meanBytes, cfg.meanCPU, cfg.spread)
	res := newResult("fig2", "Figure 2: preprocessing time parity across imbalanced machine splits")
	res.addf("corpus: %d images, %.1f GiB, %.0f core-seconds of preprocessing",
		cfg.images, float64(workload.TotalBytes(imgs))/(1<<30), workload.TotalCPU(imgs))
	res.addf("%-16s %-28s %10s %9s %8s %s",
		"config", "machines", "time[s]", "vs base", "shards", "compute split")

	// Each machine-split configuration is an independent simulation on
	// its own kernel; fan them out across host cores. Results are
	// consumed strictly in row order (the baseline ratio demands it),
	// never in completion order.
	outs, err := runpar.MapErr(len(cfg.rows), parallelism, func(i int) (fig2Outcome, error) {
		out, err := fig2Pipeline(cfg, cfg.rows[i].machines, imgs)
		if err != nil {
			return out, fmt.Errorf("fig2 %s: %w", cfg.rows[i].name, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	var baseSec float64
	for i, row := range cfg.rows {
		out := outs[i]
		res.EventsProcessed += out.events
		sec := out.completion.Seconds()
		if row.name == "baseline" {
			baseSec = sec
		}
		ratio := sec / baseSec
		desc := ""
		for i, mc := range row.machines {
			if i > 0 {
				desc += " + "
			}
			desc += fmt.Sprintf("%gc/%.1fG", mc.Cores, float64(mc.MemBytes)/(1<<30))
		}
		res.addf("%-16s %-28s %10.2f %8.2fx %8d %v",
			row.name, desc, sec, ratio, out.shards, out.procSplit)
		res.set(row.name+".seconds", sec)
		res.set(row.name+".ratio", ratio)
		res.set(row.name+".shards", float64(out.shards))
	}

	// Static (non-fungible) contrast on the hardest split.
	last := cfg.rows[len(cfg.rows)-1]
	if len(last.machines) == 2 {
		res.addf("-- static (non-fungible) baselines on %s --", last.name)
		// Partition evenly: the low-memory machine OOMs.
		even := runStatic(cfg, last.machines, imgs, []float64{0.5, 0.5})
		res.addf("static even-split:   %s", describeStatic(even))
		res.set("static_even.oom", boolTo01(even.OOM != nil))
		// Partition by memory: feasible but strands the big machine's CPU.
		m0 := float64(last.machines[0].MemBytes)
		m1 := float64(last.machines[1].MemBytes)
		byMem := runStatic(cfg, last.machines, imgs, []float64{m0 / (m0 + m1), m1 / (m0 + m1)})
		res.addf("static by-memory:    %s", describeStatic(byMem))
		if byMem.OOM == nil {
			res.set("static_bymem.seconds", byMem.Completion.Seconds())
			res.set("static_bymem.ratio", byMem.Completion.Seconds()/baseSec)
		}
	}
	res.addf("paper shape: Quicksand stays within a few %% of the single-machine ideal on every split")
	res.addf("(paper: 26.1 / 26.4 / 26.6 / 26.5 s); static placement OOMs or strands CPU.")
	return res, nil
}

func runStatic(cfg fig2Cfg, machineCfgs []cluster.MachineConfig, imgs []workload.Image, frac []float64) baseline.StaticResult {
	k := sim.NewKernel(seeded(7))
	defer k.Close()
	c := cluster.New(k, simnet.DefaultConfig())
	var ms []*cluster.Machine
	for _, mc := range machineCfgs {
		ms = append(ms, c.AddMachine(mc))
	}
	return baseline.StaticPipeline(k, ms, imgs, frac)
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// describeStatic renders a static-baseline outcome row.
func describeStatic(r baseline.StaticResult) string {
	if r.OOM != nil {
		return fmt.Sprintf("FAILED (%v)", r.OOM)
	}
	return fmt.Sprintf("%.2f s", r.Completion.Seconds())
}
