package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/proclet"
	"repro/internal/runpar"
	"repro/internal/sharded"
	"repro/internal/sim"
)

// runAblMigration sweeps proclet state size and reports live-migration
// latency — the Nu substrate property everything else rests on ("a few
// milliseconds to migrate a proclet with 10 MiB of state").
func runAblMigration(scale Scale) (*Result, error) {
	sizes := []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 10 << 20, 64 << 20}
	if scale == TestScale {
		sizes = []int64{64 << 10, 1 << 20, 10 << 20}
	}
	res := newResult("abl-migration", "migration latency vs proclet state size")
	res.addf("%-12s %14s", "state", "latency[ms]")
	// Each sweep point is an independent two-machine simulation; fan
	// the points out across host cores and merge in size order.
	lats, err := runpar.MapErr(len(sizes), parallelism, func(i int) (time.Duration, error) {
		sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
			{Cores: 8, MemBytes: 8 << 30},
			{Cores: 8, MemBytes: 8 << 30},
		})
		defer sys.Close()
		pr, err := sys.Runtime.Spawn("migrant", 0, sizes[i])
		if err != nil {
			return 0, err
		}
		var lat time.Duration
		sys.K.Spawn("ctl", func(p *sim.Proc) {
			start := p.Now()
			if err := sys.Runtime.Migrate(p, pr.ID(), 1); err != nil {
				return
			}
			lat = p.Now().Sub(start)
		})
		sys.K.Run()
		return lat, nil
	})
	if err != nil {
		return nil, err
	}
	for i, size := range sizes {
		ms := float64(lats[i]) / 1e6
		res.addf("%-12s %14.3f", byteSize(size), ms)
		res.set(fmt.Sprintf("latency_ms.%d", size), ms)
	}
	res.addf("shape: sub-millisecond below ~1 MiB; ~1-2 ms at 10 MiB (Nu's 'a few ms'); wire-bound beyond.")
	return res, nil
}

// runAblSplit measures the cost of a shard split (scan + bulk move +
// index update) as the split threshold grows — §3.3's argument for
// keeping proclets granular so splits stay fast.
func runAblSplit(scale Scale) (*Result, error) {
	caps := []int64{1 << 20, 4 << 20, 16 << 20, 64 << 20}
	if scale == TestScale {
		caps = []int64{1 << 20, 8 << 20}
	}
	res := newResult("abl-split", "split latency vs shard size cap")
	res.addf("%-12s %16s %16s", "shard cap", "split time[ms]", "plain push[ms]")
	for _, cap := range caps {
		sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
			{Cores: 8, MemBytes: 8 << 30},
			{Cores: 8, MemBytes: 8 << 30},
		})
		defer sys.Close()
		v, err := sharded.NewVector[int](sys, "v", sharded.Options{MaxShardBytes: cap})
		if err != nil {
			return nil, err
		}
		elem := cap / 64
		var splitMs, plainMs float64
		sys.K.Spawn("driver", func(p *sim.Proc) {
			var plainSum float64
			plainN := 0
			for i := 0; v.Splits == 0 && i < 200; i++ {
				before := v.Splits
				start := p.Now()
				if err := v.PushBack(p, 0, i, elem); err != nil {
					return
				}
				d := float64(p.Now().Sub(start)) / 1e6
				if v.Splits > before {
					splitMs = d
				} else {
					plainSum += d
					plainN++
				}
			}
			if plainN > 0 {
				plainMs = plainSum / float64(plainN)
			}
		})
		sys.K.Run()
		res.addf("%-12s %16.3f %16.3f", byteSize(cap), splitMs, plainMs)
		res.set(fmt.Sprintf("split_ms.%d", cap), splitMs)
	}
	res.addf("shape: split cost scales with the shard cap — capping shards at the migration budget keeps")
	res.addf("splits (and therefore the blocking window) in low single-digit milliseconds.")
	return res, nil
}

// runAblPrefetch isolates the iterator prefetcher: a compute-light scan
// over remote memory proclets with and without prefetch — the §4 claim
// that remote preprocessing runs as fast as local.
func runAblPrefetch(scale Scale) (*Result, error) {
	elems := 256
	elemBytes := int64(1 << 20)
	computePer := 100 * time.Microsecond
	if scale == TestScale {
		elems = 64
	}
	res := newResult("abl-prefetch", "iterator prefetch hides remote shard latency")

	run := func(batch int) (float64, error) {
		sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
			{Cores: 8, MemBytes: 8 << 30},
			{Cores: 8, MemBytes: 8 << 30},
		})
		defer sys.Close()
		v, err := sharded.NewVector[int](sys, "imgs", sharded.Options{MaxShardBytes: 1 << 30})
		if err != nil {
			return 0, err
		}
		var sec float64
		var runErr error
		sys.K.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < elems; i++ {
				if err := v.PushBack(p, 1, i, elemBytes); err != nil {
					runErr = err
					return
				}
			}
			// Pin the data to machine 1 so it is remote to the
			// machine-0 consumer regardless of placement tie-breaks.
			for _, mp := range v.Shards() {
				if mp.Location() != 1 {
					if err := sys.Runtime.Migrate(p, mp.ID(), 1); err != nil {
						runErr = err
						return
					}
				}
			}
			m0 := sys.Cluster.Machine(0)
			start := p.Now()
			it := v.Iter(batch)
			for {
				_, ok, err := it.Next(p, 0)
				if err != nil {
					runErr = err
					return
				}
				if !ok {
					break
				}
				m0.Exec(p, computePer)
			}
			sec = p.Now().Sub(start).Seconds()
		})
		sys.K.Run()
		return sec, runErr
	}

	withPf, err := run(16)
	if err != nil {
		return nil, err
	}
	without, err := run(0)
	if err != nil {
		return nil, err
	}
	// Lower bound: pure compute with data already local.
	ideal := float64(elems) * computePer.Seconds()
	res.addf("%-18s %12s %12s", "mode", "time[ms]", "vs ideal")
	res.addf("%-18s %12.2f %11.2fx", "prefetch (16)", withPf*1000, withPf/ideal)
	res.addf("%-18s %12.2f %11.2fx", "no prefetch", without*1000, without/ideal)
	res.addf("%-18s %12.2f %11.2fx", "local ideal", ideal*1000, 1.0)
	res.set("prefetch_ms", withPf*1000)
	res.set("noprefetch_ms", without*1000)
	res.set("ideal_ms", ideal*1000)
	res.set("speedup", without/withPf)
	res.addf("shape: prefetch overlaps the wire with compute, approaching the local ideal;")
	res.addf("synchronous access pays a round trip per element.")
	return res, nil
}

// runAblSched compares the two-level scheduler against local-only and
// global-only variants on the Figure 1 workload (§5's design question).
func runAblSched(scale Scale) (*Result, error) {
	cfg := fig1Config(scale)
	res := newResult("abl-sched", "two-level scheduling: fast local + slow global")
	res.addf("%-12s %14s %12s", "scheduler", "goodput[%ideal]", "migrations")
	modes := []struct {
		name             string
		disFast, disSlow bool
	}{
		{"two-level", false, false},
		{"local-only", false, true},
		{"global-only", true, false},
	}
	stats, err := runpar.MapErr(len(modes), parallelism, func(i int) (fig1Stats, error) {
		return fig1RunSched(cfg, modes[i].disFast, modes[i].disSlow)
	})
	if err != nil {
		return nil, err
	}
	for i, m := range modes {
		st := stats[i]
		res.addf("%-12s %14.1f %12d", m.name, st.goodputPct, st.migrations)
		res.set(m.name+".goodput_pct", st.goodputPct)
	}
	res.addf("shape: the fast path is what harvests 10 ms windows; a global-only scheduler at 50 ms")
	res.addf("granularity misses most of them. The slow path adds long-term placement, not reaction speed.")
	return res, nil
}

// fig1RunSched is fig1's Quicksand mode with scheduler paths toggled.
func fig1RunSched(cfg fig1Cfg, disFast, disSlow bool) (fig1Stats, error) {
	// Reuse fig1Run by temporarily shadowing the system config is not
	// possible (fig1Run builds its own); duplicate the small core here.
	return fig1RunWith(cfg, func(c *core.Config) {
		c.DisableFastPath = disFast
		c.DisableSlowPath = disSlow
	})
}

// runAblLocality measures affinity-driven colocation on an RPC-heavy
// workload: compute proclets chatting with pinned memory proclets
// across the network (§5's locality question).
func runAblLocality(scale Scale) (*Result, error) {
	pairs := 4
	horizon := sim.Time(600 * time.Millisecond)
	if scale == TestScale {
		horizon = sim.Time(400 * time.Millisecond)
	}
	res := newResult("abl-locality", "affinity colocation for chatty proclet pairs")

	run := func(colocate bool) (float64, int64, uint64, error) {
		sysCfg := core.DefaultConfig()
		sysCfg.GlobalPeriod = 50 * time.Millisecond
		sysCfg.DisableSlowPath = !colocate
		sys := core.NewSystem(sysCfg, []cluster.MachineConfig{
			{Cores: 8, MemBytes: 8 << 30},
			{Cores: 8, MemBytes: 8 << 30},
		})
		defer sys.Close()
		sys.Start()
		ops := new(int64)
		for i := 0; i < pairs; i++ {
			// Memory proclet pinned on machine 1; its reader starts on
			// machine 0.
			mp, err := core.NewMemoryProcletOn(sys, fmt.Sprintf("data-%d", i), 1)
			if err != nil {
				return 0, 0, 0, err
			}
			sys.Sched.Pin(mp.ID())
			cp, err := core.NewComputeProcletOn(sys, fmt.Sprintf("reader-%d", i), 0, 1)
			if err != nil {
				return 0, 0, 0, err
			}
			var ptr core.Ptr[int]
			mpLocal := mp
			cpLocal := cp
			sys.K.Spawn("setup", func(p *sim.Proc) {
				ptr, err = core.NewPtr(p, 1, mpLocal, 7, 64<<10)
				if err != nil {
					return
				}
				var loop core.TaskFn
				loop = func(tc *core.TaskCtx) {
					if _, err := cpLocal.Proclet().Call(tc.Proc(), mpLocal.ID(), "mem.get",
						proclet.Msg{Payload: uint64(1), Bytes: 8}); err != nil {
						return
					}
					_ = ptr
					tc.Compute(5 * time.Microsecond)
					*ops++
					cpLocal.Run(loop)
				}
				cpLocal.Run(loop)
			})
		}
		sys.K.RunUntil(horizon)
		return float64(*ops) / horizon.Seconds(), sys.Sched.AffinityMoves.Value(), sys.K.EventsProcessed(), nil
	}

	with, moves, evWith, err := run(true)
	if err != nil {
		return nil, err
	}
	without, _, evWithout, err := run(false)
	if err != nil {
		return nil, err
	}
	res.EventsProcessed = evWith + evWithout
	res.addf("%-16s %14s %14s", "mode", "ops/sec", "affinity moves")
	res.addf("%-16s %14.0f %14d", "colocation on", with, moves)
	res.addf("%-16s %14.0f %14s", "colocation off", without, "-")
	res.set("with_ops_per_sec", with)
	res.set("without_ops_per_sec", without)
	res.set("affinity_moves", float64(moves))
	res.set("speedup", with/without)
	res.addf("shape: once the rebalancer colocates each chatty pair, invocations become local function")
	res.addf("calls and throughput rises by the RPC round-trip factor.")
	return res, nil
}

// byteSize renders a byte count compactly.
func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.4gGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.4gMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.4gKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
