package experiments

import (
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// traceDir, when set, makes the traced experiments (fig1's quicksand
// mode, ext-failover's RF=2 crash run) record causal spans plus
// resource telemetry and export the run as Chrome trace-event JSON to
// <dir>/<name>.trace.json. The default of empty leaves every run
// untraced, so kernel event counts and the BENCH_*.json baselines are
// unaffected.
var traceDir string

// SetTraceDir sets the trace export directory ("" disables). Not safe
// to call concurrently with Run.
func SetTraceDir(dir string) { traceDir = dir }

// TraceDir returns the current trace export directory.
func TraceDir() string { return traceDir }

// maybeTrace enables span tracing and telemetry on sys when a trace
// directory is configured. Telemetry sampling schedules kernel events,
// so a traced run's event count differs from an untraced one — which
// is why tracing hangs off an explicit opt-in directory instead of
// being always on.
func maybeTrace(sys *core.System) {
	if traceDir == "" {
		return
	}
	sys.EnableTracing()
	sys.EnableTelemetry(250 * time.Microsecond)
}

// maybeExportTrace writes sys's recorded timeline to
// <traceDir>/<name>.trace.json; a no-op when tracing is off.
func maybeExportTrace(name string, sys *core.System) error {
	if traceDir == "" || sys.Obs == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(traceDir, name+".trace.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.WriteChromeTrace(f, sys.Obs, sys.Tel)
}
