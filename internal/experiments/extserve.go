package experiments

// ext-serve: the million-client open-loop serving scenario (ROADMAP
// item 1). Per-client state is the thing this experiment refuses to
// have: tenants are modeled as aggregate nonhomogeneous-Poisson arrival
// processes (internal/load) whose intensity is client count x
// per-client rate, so 2.5 million simulated clients cost O(request
// rate) — the generators never know a client ID exists.
//
// The fleet is the partitioned kernel from ext-scale: 8 shards x 125
// machines (full scale) stitched by a simnet.Partition. Each shard owns
// one load.Injector for its machines — arrivals drawn in batches per
// lookahead-aligned window, keys drawn from per-tenant O(1) Zipfian
// samplers, everything from per-shard RNG streams — and a pool of
// server processes that drain the arrival queue through batched
// mem.getbatch fan-in RPCs to the shard's stores. Latency
// (arrival-to-completion, i.e. queue wait + fan-in service) lands in
// fixed-bucket metrics.LogHistograms: alloc-free to record, merged
// across shards in fixed order, byte-identical at any worker count.
//
// Three phases share the horizon: a diurnal baseline, a flash crowd
// (tenant C's intensity ramps ~5x), and migration-under-load (every
// shard migrates two of its stores to different machines while serving,
// so the migrate-phase p999 shows the blackout cost). A jittered
// workload.Antagonist per shard exercises the injected-RNG interference
// path. Like ext-scale, the run is its own determinism harness: the
// same seed executes at P in {1, 4, 8} host workers and every
// deterministic observable — per-shard events, request counts,
// histogram snapshots, merged trace — must be identical.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/workload"
)

// serveTenant is one tenant population: clients x perRPS gives the
// offered aggregate rate; keys/theta shape its Zipfian popularity.
type serveTenant struct {
	name    string
	clients float64
	perRPS  float64 // mean per-client request rate, req/s
	keys    uint64  // Zipfian keyspace size
	theta   float64 // Zipf skew
	spike   bool    // rides the flash-crowd multiplier
}

// serveCfg parameterizes the serving fleet.
type serveCfg struct {
	shards     int
	perShard   int // machines per shard
	stores     int // memory proclets per shard
	objsPer    int // preloaded objects per store
	objBytes   int64
	servers    int // server procs per shard
	batchMax   int // max requests per fan-in batch
	poll       time.Duration
	crossEvery int // cross-shard gateway ping every Nth batch
	deadline   time.Duration
	horizon    sim.Time
	slack      sim.Time
	injWindows int     // injector batch window, in lookahead windows
	diurnalAmp float64 // diurnal sine amplitude
	spikeMult  float64 // flash-crowd multiplier
	migratePer int     // stores migrated per shard in the migrate phase
	sampleStep time.Duration
	tenants    []serveTenant
	workers    []int // host worker counts to sweep
	flashAt    float64
	migrateAt  float64
}

func serveConfig(scale Scale) serveCfg {
	cfg := serveCfg{
		shards:     8,
		perShard:   3,
		stores:     4,
		objsPer:    512,
		objBytes:   256,
		servers:    4,
		batchMax:   32,
		poll:       20 * time.Microsecond,
		crossEvery: 8,
		deadline:   time.Millisecond,
		horizon:    sim.Time(8 * time.Millisecond),
		slack:      sim.Time(8 * time.Millisecond),
		injWindows: 125, // 125 x 2us lookahead = 250us batch windows
		diurnalAmp: 0.3,
		spikeMult:  4,
		migratePer: 2,
		sampleStep: 100 * time.Microsecond,
		flashAt:    0.40,
		migrateAt:  0.70,
		workers:    []int{1, 4, 8},
		tenants: []serveTenant{
			{name: "A", clients: 12_000, perRPS: 30, keys: 10_000_000, theta: 0.99},
			{name: "B", clients: 8_000, perRPS: 24, keys: 5_000_000, theta: 0.90},
			{name: "C", clients: 5_000, perRPS: 20, keys: 2_000_000, theta: 0.75, spike: true},
		},
	}
	if scale == FullScale {
		cfg.perShard = 125 // 8 x 125 = 1,000 machines
		cfg.stores = 16
		cfg.objsPer = 2048
		cfg.servers = 8
		cfg.batchMax = 64
		cfg.spikeMult = 5
		cfg.migratePer = 4
		cfg.horizon = sim.Time(20 * time.Millisecond)
		cfg.slack = sim.Time(20 * time.Millisecond)
		cfg.sampleStep = 250 * time.Microsecond
		cfg.tenants = []serveTenant{
			{name: "A", clients: 1_200_000, perRPS: 1.5, keys: 10_000_000, theta: 0.99},
			{name: "B", clients: 800_000, perRPS: 1.2, keys: 5_000_000, theta: 0.90},
			{name: "C", clients: 500_000, perRPS: 1.0, keys: 2_000_000, theta: 0.75, spike: true},
		}
	}
	return cfg
}

// servePhases names the three phases; arrival time decides a request's
// phase, so attribution is independent of when service completes.
var servePhases = []string{"diurnal", "flash", "migrate"}

// errServeDeadline marks a request span that missed the serving
// deadline, so tail-based sampling retains its causal tree.
var errServeDeadline = errors.New("deadline exceeded")

// serveSLO is the always-on streaming SLO plane for the serving fleet:
// half-millisecond windows, a burn-rate ring of 4, paging when the
// windowed p999 blows through 3x the deadline and warning when the
// in-window timeout fraction passes 20%. The monitor is host-side
// arithmetic over completions the servers already observe — it
// schedules no kernel events and consumes no randomness, so enabling
// it cannot move a single gated metric.
func serveSLO(cfg serveCfg, shard int) *slo.Monitor {
	return slo.New(slo.Config{
		Window:  sim.Time(500 * time.Microsecond),
		Windows: 4,
		Rules: []slo.Rule{
			{Kind: slo.P999Above, BoundMS: 3 * float64(cfg.deadline) / 1e6,
				For: 2, Severity: "page"},
			{Kind: slo.ErrorRateAbove, Ceiling: 0.20, For: 2},
		},
		Subject: fmt.Sprintf("s%d", shard),
		Machine: -1,
	})
}

// serveSampleConfig is the tail-based retention policy for the merged
// ext-serve trace: keep trees whose end-to-end extent beats the
// deadline, trees carrying errors, trees overlapping an incident, and
// a seeded 1-in-64 head sample.
func serveSampleConfig(cfg serveCfg) slo.SampleConfig {
	return slo.SampleConfig{
		Seed:      uint64(seeded(37)),
		HeadEvery: 64,
		TailNS:    cfg.deadline.Nanoseconds(),
	}
}

func (cfg serveCfg) totalClients() float64 {
	var n float64
	for _, t := range cfg.tenants {
		n += t.clients
	}
	return n
}

func (cfg serveCfg) phaseOf(at sim.Time) int {
	switch {
	case at < sim.Time(float64(cfg.horizon)*cfg.flashAt):
		return 0
	case at < sim.Time(float64(cfg.horizon)*cfg.migrateAt):
		return 1
	default:
		return 2
	}
}

// serveDet is every observable that must be identical at any worker
// count, compared with reflect.DeepEqual across the P sweep. Histogram
// state rides along as snapshots: if a single latency bucket shifts
// between worker counts, the run fails.
type serveDet struct {
	ShardEvents []uint64
	Generated   []uint64
	Served      []uint64
	Timeouts    []uint64
	Errors      []uint64
	Migrations  []int64
	StartNS     []int64 // per-shard injection start (after preload)
	Opened      []int   // per-shard SLO incidents opened
	Resolved    []int   // per-shard SLO incidents resolved
	SLOWindows  []int   // per-shard SLO windows closed
	Spans       []int   // per-shard span count (0 when untraced)
	Windows     uint64
	CrossMsgs   uint64
	Phases      []metrics.LogSnapshot // merged across shards, per phase
	Overall     metrics.LogSnapshot
	Trace       []string
}

type serveOutcome struct {
	det     serveDet
	phases  []*metrics.LogHistogram
	overall *metrics.LogHistogram
	wallMS  float64

	// Trace exports, only when a trace directory is configured: the
	// full merged Chrome trace, the tail-sampled subset, and the
	// sampler's retention accounting. Byte-compared across the P sweep.
	fullTrace    []byte
	sampledTrace []byte
	sampleStats  slo.SampleStats
	incidents    []slo.Incident
}

// runServeOnce builds the partitioned serving fleet and drives it with
// the given number of host workers.
func runServeOnce(cfg serveCfg, workers int) (serveOutcome, error) {
	var out serveOutcome
	start := time.Now()

	lookahead := sim.Time(core.DefaultConfig().Net.Latency.Nanoseconds())
	pk := sim.NewParKernel(seeded(37), cfg.shards, lookahead)
	defer pk.Close()
	pk.SetWorkers(workers)
	injWindow := time.Duration(lookahead) * time.Duration(cfg.injWindows)

	machines := make([]cluster.MachineConfig, cfg.perShard)
	for i := range machines {
		machines[i] = cluster.MachineConfig{Cores: 4, MemBytes: 64 << 20}
	}

	// Shared immutable per-tenant samplers: one zeta precompute serves
	// all shards; each shard draws from its own RNG streams.
	zipfs := make([]*load.Zipf, len(cfg.tenants))
	for i, t := range cfg.tenants {
		zipfs[i] = load.NewZipf(t.keys, t.theta)
	}

	type shardState struct {
		sys     *core.System
		stores  []*core.MemoryProclet
		inj     *load.Injector
		mon     *slo.Monitor
		queue   []load.Request
		qhead   int
		served  uint64
		timeout uint64
		errs    uint64
		migOK   int64
		startNS int64
		phases  []*metrics.LogHistogram
		overall *metrics.LogHistogram
		done    bool
	}
	shards := make([]*shardState, cfg.shards)
	fabrics := make([]*simnet.Fabric, cfg.shards)
	for s := 0; s < cfg.shards; s++ {
		sysCfg := core.DefaultConfig()
		sysCfg.Seed = seeded(37) + int64(s)
		sys := core.NewSystemOnKernel(pk.Shard(s), sysCfg, machines)
		if traceDir != "" {
			// Per-shard tracer with a disjoint ID base: shard s owns IDs
			// s<<32 .. (s+1)<<32, so obs.Concat merges shard timelines
			// into one globally ordered export.
			sys.EnableTracingAt(obs.SpanID(s) << 32)
		}
		st := &shardState{sys: sys, overall: metrics.NewLogHistogram(fmt.Sprintf("s%d.lat", s))}
		st.mon = serveSLO(cfg, s)
		st.mon.Log = sys.Trace
		st.mon.Tracer = sys.Obs
		for _, ph := range servePhases {
			st.phases = append(st.phases, metrics.NewLogHistogram(fmt.Sprintf("s%d.lat.%s", s, ph)))
		}
		shards[s] = st
		fabrics[s] = sys.Cluster.Fabric
	}
	pt := simnet.NewPartition(pk, fabrics)

	for s := 0; s < cfg.shards; s++ {
		s := s
		st := shards[s]
		k := pk.Shard(s)
		st.sys.Start()

		// Stores round-robin over machines 1..perShard-1; machine 0 is the
		// shard's front-end (servers + cross-shard gateway).
		st.stores = make([]*core.MemoryProclet, cfg.stores)
		for i := range st.stores {
			mid := cluster.MachineID(1 + i%(cfg.perShard-1))
			mp, err := core.NewMemoryProcletOn(st.sys, fmt.Sprintf("s%d-store-%d", s, i), mid)
			if err != nil {
				return out, err
			}
			st.stores[i] = mp
		}
		st.sys.Cluster.Node(0).HandleFast("xget", func(req simnet.Message) (simnet.Message, error) {
			return simnet.Message{Payload: int64(st.served), Bytes: 64}, nil
		})

		// The shard's injector: tenant curves are the fleet intensity
		// divided by the shard count, diurnal-modulated, with tenant C
		// riding the flash-crowd multiplier. Arrivals land in the shard's
		// serving queue; servers drain it.
		st.inj = load.NewInjector(k, injWindow, func(r load.Request) {
			st.queue = append(st.queue, r)
		})
		period := time.Duration(cfg.horizon)
		spikeF := load.Spike(
			sim.Time(float64(cfg.horizon)*cfg.flashAt),
			period/10, period*3/20, period/10, cfg.spikeMult)
		for ti, t := range cfg.tenants {
			base := load.Diurnal(t.clients*t.perRPS/float64(cfg.shards), cfg.diurnalAmp, period)
			f := base
			if t.spike {
				f = func(at sim.Time) float64 { return base(at) * spikeF(at) }
			}
			st.inj.AddTenant(t.name, load.Sampled(cfg.horizon, cfg.sampleStep, f), zipfs[ti])
		}

		// A jittered high-priority antagonist on one store machine: its
		// interference pattern comes from an injected per-shard RNG, so it
		// replays identically at any worker count.
		ant := &workload.Antagonist{
			Machine: st.sys.Cluster.Machine(1),
			Period:  2 * time.Millisecond, Busy: 500 * time.Microsecond,
			Cores: 2, Jitter: 200 * time.Microsecond,
			Rng: rand.New(rand.NewSource(seeded(41) + int64(s))),
		}
		ant.Start(k)

		// Preload, then open the floodgates: injection starts the moment
		// the stores are populated (a deterministic virtual-time instant).
		k.Spawn(fmt.Sprintf("s%d-setup", s), func(p *sim.Proc) {
			ids := make([]uint64, cfg.objsPer)
			vals := make([]any, cfg.objsPer)
			sizes := make([]int64, cfg.objsPer)
			for i := range ids {
				ids[i] = uint64(i)
				vals[i] = int64(i)
				sizes[i] = cfg.objBytes
			}
			for _, mp := range st.stores {
				if err := mp.PutBatch(p, 0, ids, vals, sizes); err != nil {
					panic(fmt.Sprintf("ext-serve preload: %v", err))
				}
			}
			st.startNS = int64(p.Now())
			st.inj.Start(p.Now(), cfg.horizon)
		})

		// Server pool: batched fan-in. Each server takes a run of queued
		// requests, groups them by store, and issues one mem.getbatch per
		// touched store instead of one RPC per request.
		var wg sim.WaitGroup
		tr := st.sys.Obs // nil when untraced; every Tracer method is nil-safe
		for srv := 0; srv < cfg.servers; srv++ {
			wg.Add(1)
			k.Spawn(fmt.Sprintf("s%d-server-%d", s, srv), func(p *sim.Proc) {
				defer wg.Done()
				byStore := make([][]uint64, cfg.stores)
				batch := make([]load.Request, 0, cfg.batchMax)
				batches := 0
				for {
					if st.qhead == len(st.queue) {
						if p.Now() >= cfg.horizon {
							return // all arrivals delivered and drained
						}
						p.Sleep(cfg.poll)
						continue
					}
					n := len(st.queue) - st.qhead
					if n > cfg.batchMax {
						n = cfg.batchMax
					}
					batch = append(batch[:0], st.queue[st.qhead:st.qhead+n]...)
					st.qhead += n
					// One causal tree per fan-in batch: the root opens at
					// pickup, store fan-in RPCs hang off it via SetNext, and
					// each request lands as a retroactive child spanning
					// arrival -> completion, so queue wait is visible in the
					// tree extent the tail sampler keys on.
					root := tr.Start(obs.KindReq, "batch", 0, 0)
					for i := range byStore {
						byStore[i] = byStore[i][:0]
					}
					for _, r := range batch {
						si := int(r.Key % uint64(cfg.stores))
						byStore[si] = append(byStore[si], r.Key%uint64(cfg.objsPer))
					}
					for si, ids := range byStore {
						if len(ids) == 0 {
							continue
						}
						tr.SetNext(root)
						gotIDs, _, err := st.stores[si].GetBatch(p, 0, ids)
						if err != nil {
							st.errs += uint64(len(ids))
						} else if len(gotIDs) == 0 {
							st.errs++
						}
					}
					now := p.Now()
					for _, r := range batch {
						lat := int64(now - r.At)
						st.overall.Record(lat)
						st.phases[cfg.phaseOf(r.At)].Record(lat)
						st.served++
						missed := lat > int64(cfg.deadline)
						if missed {
							st.timeout++
						}
						// The SLO plane covers the horizon; drain-time
						// completions of late arrivals are excluded so a
						// trailing partial window never masquerades as an
						// outage.
						if now < cfg.horizon {
							st.mon.Observe(now, lat, missed)
						}
						if tr != nil {
							sp := tr.RecordAt(obs.KindReq, "req", 0, root, r.At, now)
							if missed {
								tr.SetErr(sp, errServeDeadline)
							}
						}
					}
					tr.End(root)
					batches++
					if batches%cfg.crossEvery == 0 {
						// Keep the fleet coupled: a cross-shard gateway read
						// rides the partition mailboxes.
						tr.SetNext(root)
						_, err := pt.Call(p, simnet.ShardNode{Shard: s, Node: 0},
							simnet.ShardNode{Shard: (s + 1) % cfg.shards, Node: 0},
							"xget", simnet.Message{Bytes: 64})
						if err != nil {
							st.errs++
						}
					}
				}
			})
		}

		// Migration under load: partway through the migrate phase each
		// shard moves migratePer stores to new machines while the servers
		// keep draining.
		k.Spawn(fmt.Sprintf("s%d-migrator", s), func(p *sim.Proc) {
			p.Sleep(time.Duration(float64(cfg.horizon) * (cfg.migrateAt + 0.05)))
			for i := 0; i < cfg.migratePer && i < len(st.stores); i++ {
				from := st.stores[i].Location()
				to := cluster.MachineID(1 + (int(from)+((cfg.perShard-1)+1)/2-1)%(cfg.perShard-1))
				if to == from {
					to = cluster.MachineID(1 + int(from)%(cfg.perShard-1))
				}
				if err := st.sys.Runtime.Migrate(p, st.stores[i].ID(), to); err == nil {
					st.migOK++
				}
			}
		})

		k.Spawn(fmt.Sprintf("s%d-verify", s), func(p *sim.Proc) {
			wg.Wait(p)
			st.done = true
		})
	}

	pk.RunUntil(cfg.horizon + cfg.slack)

	det := serveDet{
		ShardEvents: make([]uint64, cfg.shards),
		Generated:   make([]uint64, cfg.shards),
		Served:      make([]uint64, cfg.shards),
		Timeouts:    make([]uint64, cfg.shards),
		Errors:      make([]uint64, cfg.shards),
		Migrations:  make([]int64, cfg.shards),
		StartNS:     make([]int64, cfg.shards),
		Opened:      make([]int, cfg.shards),
		Resolved:    make([]int, cfg.shards),
		SLOWindows:  make([]int, cfg.shards),
		Spans:       make([]int, cfg.shards),
	}
	for s, st := range shards {
		if !st.done {
			return out, fmt.Errorf("ext-serve: shard %d did not drain by %v (%d/%d served)",
				s, cfg.horizon+cfg.slack, st.served, st.inj.TotalGenerated())
		}
		st.mon.Finish(cfg.horizon)
		det.ShardEvents[s] = pk.Shard(s).EventsProcessed()
		det.Generated[s] = st.inj.TotalGenerated()
		det.Served[s] = st.served
		det.Timeouts[s] = st.timeout
		det.Errors[s] = st.errs
		det.Migrations[s] = st.migOK
		det.StartNS[s] = st.startNS
		det.Opened[s] = st.mon.Opened()
		det.Resolved[s] = st.mon.Resolved()
		det.SLOWindows[s] = st.mon.WindowsClosed()
		det.Spans[s] = st.sys.Obs.Len()
		out.incidents = append(out.incidents, st.mon.Incidents()...)
	}
	det.Windows = pk.Windows()
	det.CrossMsgs = uint64(pt.CrossCalls.Value())

	// Merge shard-local histograms in fixed shard order (the
	// obs.MergeSeries pattern): integer bucket addition, byte-identical
	// at any worker count.
	out.overall = metrics.NewLogHistogram("latency")
	out.phases = make([]*metrics.LogHistogram, len(servePhases))
	for ph := range servePhases {
		out.phases[ph] = metrics.NewLogHistogram("latency." + servePhases[ph])
	}
	for _, st := range shards {
		out.overall.Merge(st.overall)
		for ph := range servePhases {
			out.phases[ph].Merge(st.phases[ph])
		}
	}
	det.Overall = out.overall.Snapshot()
	for ph := range servePhases {
		det.Phases = append(det.Phases, out.phases[ph].Snapshot())
	}
	logs := make([]*trace.Log, cfg.shards)
	for s, st := range shards {
		logs[s] = st.sys.Trace
	}
	for _, e := range trace.Merge(logs...).Events() {
		det.Trace = append(det.Trace, e.String())
	}

	// Traced runs: concatenate the per-shard tracers (disjoint ID
	// ranges, so the merge is a deterministic sort), run tail-based
	// sampling against the run's incidents, and render both exports.
	// The bytes ride back to the caller for the P-sweep identity check.
	if traceDir != "" {
		tracers := make([]*obs.Tracer, cfg.shards)
		for s, st := range shards {
			tracers[s] = st.sys.Obs
		}
		merged := obs.Concat(tracers...)
		sampled, stats := slo.Filter(merged, out.incidents, serveSampleConfig(cfg))
		var fb, sb bytes.Buffer
		if err := obs.WriteChromeTrace(&fb, merged, nil); err != nil {
			return out, err
		}
		if err := obs.WriteChromeTrace(&sb, sampled, nil); err != nil {
			return out, err
		}
		out.fullTrace, out.sampledTrace, out.sampleStats = fb.Bytes(), sb.Bytes(), stats
	}
	out.det = det
	out.wallMS = float64(time.Since(start).Microseconds()) / 1000
	return out, nil
}

func runExtServe(scale Scale) (*Result, error) {
	cfg := serveConfig(scale)
	res := newResult("ext-serve", "extension: million-client open-loop serving with tail-latency telemetry")
	res.addf("fleet: %d shards x %d machines = %d machines; %d stores + %d servers per shard",
		cfg.shards, cfg.perShard, cfg.shards*cfg.perShard, cfg.stores, cfg.servers)
	for _, t := range cfg.tenants {
		extra := ""
		if t.spike {
			extra = fmt.Sprintf(" [flash crowd x%.0f]", cfg.spikeMult)
		}
		res.addf("tenant %s: %.0f clients x %.1f req/s, zipf(theta=%.2f) over %d keys%s",
			t.name, t.clients, t.perRPS, t.theta, t.keys, extra)
	}

	var ref serveOutcome
	wall := make(map[int]float64, len(cfg.workers))
	for i, p := range cfg.workers {
		o, err := runServeOnce(cfg, p)
		if err != nil {
			return nil, err
		}
		wall[p] = o.wallMS
		res.EventsProcessed += sumU64(o.det.ShardEvents)
		if i == 0 {
			ref = o
			continue
		}
		if !reflect.DeepEqual(o.det, ref.det) {
			return nil, fmt.Errorf(
				"ext-serve: determinism violated — P=%d diverged from P=%d (events %v vs %v, served %v vs %v)",
				p, cfg.workers[0], o.det.ShardEvents, ref.det.ShardEvents,
				o.det.Served, ref.det.Served)
		}
		if !bytes.Equal(o.fullTrace, ref.fullTrace) || !bytes.Equal(o.sampledTrace, ref.sampledTrace) {
			return nil, fmt.Errorf(
				"ext-serve: trace export not byte-identical at P=%d vs P=%d (full %d vs %d bytes, sampled %d vs %d bytes)",
				p, cfg.workers[0], len(o.fullTrace), len(ref.fullTrace),
				len(o.sampledTrace), len(ref.sampledTrace))
		}
	}
	res.Trace = ref.det.Trace

	var generated, served, timeouts, errs uint64
	var migrations int64
	startNS := ref.det.StartNS[0]
	for s := 0; s < cfg.shards; s++ {
		generated += ref.det.Generated[s]
		served += ref.det.Served[s]
		timeouts += ref.det.Timeouts[s]
		errs += ref.det.Errors[s]
		migrations += ref.det.Migrations[s]
		if ref.det.StartNS[s] > startNS {
			startNS = ref.det.StartNS[s]
		}
	}
	durS := float64(int64(cfg.horizon)-startNS) / 1e9
	goodput := float64(served-timeouts) / durS
	timeoutRate := 0.0
	if served > 0 {
		timeoutRate = float64(timeouts) / float64(served)
	}

	res.addf("requests: %d generated, %d served, %d past the %v deadline (%.4f%%), %d errors",
		generated, served, timeouts, cfg.deadline, 100*timeoutRate, errs)
	res.addf("goodput %.0f req/s over the %.2f ms serving window", goodput, durS*1e3)
	res.addf("%s", ref.overall.String())
	for ph, name := range servePhases {
		h := ref.phases[ph]
		res.addf("phase %-7s n=%-6d p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms",
			name, h.Count(), h.QuantileMS(0.50), h.QuantileMS(0.99),
			h.QuantileMS(0.999), float64(h.Max())/1e6)
	}
	res.addf("migration under load: %d stores moved; %d sync windows, %d cross-shard RPCs",
		migrations, ref.det.Windows, ref.det.CrossMsgs)

	opened, resolved, sloWindows := 0, 0, 0
	for s := 0; s < cfg.shards; s++ {
		opened += ref.det.Opened[s]
		resolved += ref.det.Resolved[s]
		sloWindows += ref.det.SLOWindows[s]
	}
	res.addf("slo plane: %d windows closed across shards; %d incidents opened, %d resolved",
		sloWindows, opened, resolved)
	res.set("slo_windows", float64(sloWindows))
	res.set("incidents_opened", float64(opened))
	res.set("incidents_resolved", float64(resolved))

	if TraceDir() != "" {
		st := ref.sampleStats
		if st.KeptSpans*10 > st.FullSpans {
			return nil, fmt.Errorf(
				"ext-serve: tail sampling kept %d of %d spans — misses the 10x reduction bound",
				st.KeptSpans, st.FullSpans)
		}
		res.addf("trace sampling: %d spans in %d trees -> %d spans in %d trees (%.1fx reduction): %d tail, %d err, %d incident, %d head",
			st.FullSpans, st.Trees, st.KeptSpans, st.Kept,
			float64(st.FullSpans)/float64(st.KeptSpans),
			st.Tail, st.Err, st.Incident, st.Head)
		res.set("trace_spans_full", float64(st.FullSpans))
		res.set("trace_spans_sampled", float64(st.KeptSpans))
		res.set("trace_trees_kept", float64(st.Kept))
		full := filepath.Join(TraceDir(), "ext-serve.full.trace.json")
		if err := os.WriteFile(full, ref.fullTrace, 0o644); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(TraceDir(), "ext-serve.trace.json"), ref.sampledTrace, 0o644); err != nil {
			return nil, err
		}
	}
	res.addf("determinism: per-shard events %v identical at P=%v (asserted in-run,", ref.det.ShardEvents, cfg.workers)
	res.addf("histogram snapshots included); wall_* keys are host time, excluded from gates.")

	res.set("machines", float64(cfg.shards*cfg.perShard))
	res.set("shards", float64(cfg.shards))
	res.set("clients", cfg.totalClients())
	res.set("tenants", float64(len(cfg.tenants)))
	res.set("requests", float64(generated))
	res.set("served", float64(served))
	res.set("timeouts", float64(timeouts))
	res.set("timeout_rate", timeoutRate)
	res.set("errors", float64(errs))
	res.set("goodput_rps", goodput)
	res.set("p50_ms", ref.overall.QuantileMS(0.50))
	res.set("p99_ms", ref.overall.QuantileMS(0.99))
	res.set("p999_ms", ref.overall.QuantileMS(0.999))
	for ph, name := range servePhases {
		res.set("p999_ms_"+name, ref.phases[ph].QuantileMS(0.999))
	}
	res.set("migrations", float64(migrations))
	res.set("windows", float64(ref.det.Windows))
	res.set("cross_msgs", float64(ref.det.CrossMsgs))
	res.set("events", float64(sumU64(ref.det.ShardEvents)))
	base := wall[cfg.workers[0]]
	for _, p := range cfg.workers {
		res.set(fmt.Sprintf("wall_ms_p%d", p), wall[p])
		if p != cfg.workers[0] && wall[p] > 0 {
			res.set(fmt.Sprintf("wall_speedup_p%d", p), base/wall[p])
		}
	}
	return res, nil
}
