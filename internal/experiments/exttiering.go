package experiments

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sharded"
	"repro/internal/sim"
	"repro/internal/storage"
)

// runExtTiering demonstrates §5's storage-class direction: a sharded
// vector holding a dataset twice the cluster's RAM, with cold shards
// spilled to a flash tier and faulted back on access. It measures scan
// throughput for a RAM-resident dataset, a 2x-RAM tiered dataset, and
// the skew case where a hot working set stays resident.
func runExtTiering(scale Scale) (*Result, error) {
	// 2 machines x 128 MiB RAM; flash tier of 4 proclets.
	ramPer := int64(128 << 20)
	elemBytes := int64(1 << 20)
	nFits := 160 // ~160 MiB: fits RAM comfortably
	nBig := 480  // ~480 MiB: ~2x RAM
	hotRounds := 5
	if scale == TestScale {
		nFits, nBig, hotRounds = 80, 240, 3
		ramPer = 64 << 20
	}

	res := newResult("ext-tiering", "extension: flash as slow cheap memory for sharded data")

	run := func(n int, hot bool) (scanMsPerElem float64, spills, faults int64, err error) {
		sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
			{Cores: 8, MemBytes: ramPer},
			{Cores: 8, MemBytes: ramPer},
		})
		defer sys.Close()
		dev := storage.DeviceConfig{
			CapacityBytes: 16 << 30,
			ReadLatency:   80 * time.Microsecond,
			WriteLatency:  20 * time.Microsecond,
			Bandwidth:     2_000_000_000,
		}
		flat, ferr := storage.NewFlat(sys, "flash", 4, dev)
		if ferr != nil {
			return 0, 0, 0, ferr
		}
		v, verr := NewTieredVector(sys, flat)
		if verr != nil {
			return 0, 0, 0, verr
		}
		var runErr error
		sys.K.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				if perr := v.PushBack(p, 0, i, elemBytes); perr != nil {
					runErr = perr
					return
				}
			}
			if hot {
				// Hot working set: re-scan the resident tail range.
				lo := uint64(n) - uint64(n)/4
				start := p.Now()
				count := 0
				for r := 0; r < hotRounds; r++ {
					it := v.IterRange(lo, uint64(n), 16)
					for {
						_, ok, ierr := it.Next(p, 1)
						if ierr != nil {
							runErr = ierr
							return
						}
						if !ok {
							break
						}
						count++
					}
				}
				scanMsPerElem = p.Now().Sub(start).Seconds() * 1000 / float64(count)
				return
			}
			// Cold full scan.
			start := p.Now()
			it := v.Iter(16)
			count := 0
			for {
				_, ok, ierr := it.Next(p, 1)
				if ierr != nil {
					runErr = ierr
					return
				}
				if !ok {
					break
				}
				count++
			}
			scanMsPerElem = p.Now().Sub(start).Seconds() * 1000 / float64(count)
		})
		sys.K.Run()
		return scanMsPerElem, v.Spills, v.Faults, runErr
	}

	res.addf("%-28s %16s %8s %8s", "scenario", "scan[ms/elem]", "spills", "faults")
	inRAM, sp0, f0, err := run(nFits, false)
	if err != nil {
		return nil, err
	}
	res.addf("%-28s %16.3f %8d %8d", "fits in RAM", inRAM, sp0, f0)
	tiered, sp1, f1, err := run(nBig, false)
	if err != nil {
		return nil, err
	}
	res.addf("%-28s %16.3f %8d %8d", "2x RAM, cold full scan", tiered, sp1, f1)
	hot, sp2, f2, err := run(nBig, true)
	if err != nil {
		return nil, err
	}
	res.addf("%-28s %16.3f %8d %8d", "2x RAM, hot working set", hot, sp2, f2)
	res.set("inram_ms_per_elem", inRAM)
	res.set("tiered_ms_per_elem", tiered)
	res.set("hot_ms_per_elem", hot)
	res.set("tiered_faults", float64(f1))
	res.addf("shape: the 2x-RAM dataset is usable at a flash-bound scan rate; once the working set fits")
	res.addf("in RAM, access returns to memory speed — flash as slow cheap memory, not a cliff.")
	return res, nil
}

// NewTieredVector builds the experiment's vector (shared by the bench).
func NewTieredVector(sys *core.System, flat *storage.Flat) (*sharded.Vector[int], error) {
	return sharded.NewVector[int](sys, "tiered", sharded.Options{
		MaxShardBytes: 16 << 20,
		Spill:         flat,
	})
}
