package experiments

// ext-scale: a partitioned fleet two orders of magnitude beyond the
// other experiments. Every other experiment drives a handful of
// machines on one sequential kernel; this one shards a 1,000-machine
// fleet (8 shards x 125 machines at full scale) across a
// sim.ParKernel, with per-shard Quicksand systems stitched together by
// a simnet.Partition for cross-shard RPC. The workload mixes
// shard-local store traffic with cross-shard gateway reads, and shard
// 0 additionally rides out a crash/restart of one of its machines
// (granular re-placement plus rebuild, as in ext-chaos — now inside a
// partitioned run).
//
// The experiment is its own determinism harness: it executes the same
// seed at worker counts P in {1, 4, 8} and errors out unless every
// deterministic observable — per-shard event counts, per-shard op and
// error counts, window and cross-message totals, and the merged
// control-plane trace — is identical across P. The CI seed sweep runs
// this experiment at several seeds, so the sweep is automatically a
// seed x P matrix.
//
// Wall-clock per worker count is reported under Values keys prefixed
// "wall_". Host time is the one observable that legitimately varies
// run to run (and cannot show parallel speedup at all on a single-core
// host), so those keys never appear in Lines (which the seed sweep
// byte-compares) and benchdiff excludes the "wall_" prefix from its
// regression gate.

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// scaleCfg parameterizes the partitioned fleet.
type scaleCfg struct {
	shards     int
	perShard   int // machines per shard
	stores     int // memory proclets per shard, machines 1..perShard-1
	clients    int // closed-loop drivers per shard, machine 0
	opBytes    int64
	crossEvery int // every Nth op also performs a cross-shard gateway read
	sample     int // verify every Nth acked key on the crash shard
	horizon    sim.Time
	slack      sim.Time // drain window after the horizon
	workers    []int    // host worker counts to sweep
}

func scaleConfig(scale Scale) scaleCfg {
	const MiB = 1 << 20
	cfg := scaleCfg{
		shards:     8,
		perShard:   3,
		stores:     4,
		clients:    2,
		opBytes:    1 << 10,
		crossEvery: 4,
		sample:     4,
		horizon:    sim.Time(8 * time.Millisecond),
		slack:      sim.Time(8 * time.Millisecond),
		workers:    []int{1, 4, 8},
	}
	if scale == FullScale {
		cfg.perShard = 125 // 8 x 125 = 1,000 machines
		cfg.stores = 16
		cfg.clients = 4
		cfg.crossEvery = 8
		cfg.horizon = sim.Time(20 * time.Millisecond)
		cfg.slack = sim.Time(20 * time.Millisecond)
	}
	return cfg
}

// scaleDet is every observable that must be identical at any worker
// count. Compared with reflect.DeepEqual across the P sweep.
type scaleDet struct {
	ShardEvents []uint64
	Ops         []int64
	Failed      []int64
	CrossOps    []int64
	CrossFailed []int64
	Lost        int64
	Crashes     int64
	Recoveries  int64
	Windows     uint64
	CrossMsgs   uint64
	Trace       []string
}

// scaleOutcome is one run's measurements: the deterministic core plus
// host wall-clock.
type scaleOutcome struct {
	det    scaleDet
	wallMS float64
}

// runScaleOnce builds the partitioned fleet and drives it with the
// given number of host workers.
func runScaleOnce(cfg scaleCfg, workers int) (scaleOutcome, error) {
	var out scaleOutcome
	start := time.Now()

	lookahead := sim.Time(core.DefaultConfig().Net.Latency.Nanoseconds())
	pk := sim.NewParKernel(seeded(29), cfg.shards, lookahead)
	defer pk.Close()
	pk.SetWorkers(workers)

	machines := make([]cluster.MachineConfig, cfg.perShard)
	for i := range machines {
		machines[i] = cluster.MachineConfig{Cores: 4, MemBytes: 64 << 20}
	}

	type shardState struct {
		sys    *core.System
		stores []*core.MemoryProclet
		golden []map[uint64]int
		latest int64 // last acked value, served by the xget gateway
		done   bool
	}
	shards := make([]*shardState, cfg.shards)
	fabrics := make([]*simnet.Fabric, cfg.shards)
	for s := 0; s < cfg.shards; s++ {
		sysCfg := core.DefaultConfig()
		sysCfg.Seed = seeded(29) + int64(s)
		sys := core.NewSystemOnKernel(pk.Shard(s), sysCfg, machines)
		shards[s] = &shardState{sys: sys}
		fabrics[s] = sys.Cluster.Fabric
	}
	pt := simnet.NewPartition(pk, fabrics)

	var buildErr error
	for s := 0; s < cfg.shards; s++ {
		s := s
		st := shards[s]
		st.sys.Start()
		st.stores = make([]*core.MemoryProclet, cfg.stores)
		st.golden = make([]map[uint64]int, cfg.stores)
		for i := range st.stores {
			mid := cluster.MachineID(1 + i%(cfg.perShard-1))
			mp, err := core.NewMemoryProcletOn(st.sys, fmt.Sprintf("s%d-store-%d", s, i), mid)
			if err != nil {
				buildErr = err
				break
			}
			st.stores[i] = mp
			st.golden[i] = make(map[uint64]int)
		}
		if buildErr != nil {
			break
		}
		// Rebuild crash-lost store contents from the shard's host-side
		// golden record (shard-local: written and read only in shard
		// context).
		st.sys.SetRebuilder(func(p *sim.Proc, mp *core.MemoryProclet) error {
			for i, sp := range st.stores {
				if sp.ID() != mp.ID() {
					continue
				}
				keys := make([]uint64, 0, len(st.golden[i]))
				for k := range st.golden[i] {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
				ids := make([]uint64, len(keys))
				vals := make([]any, len(keys))
				sizes := make([]int64, len(keys))
				for j, k := range keys {
					ids[j], vals[j], sizes[j] = k, st.golden[i][k], cfg.opBytes
				}
				return mp.PutBatch(p, 0, ids, vals, sizes)
			}
			return nil
		})
		// The cross-shard gateway: machine 0 serves the shard's last
		// acked value to peers, on the inline fast path.
		st.sys.Cluster.Node(0).HandleFast("xget", func(req simnet.Message) (simnet.Message, error) {
			return simnet.Message{Payload: st.latest, Bytes: 128}, nil
		})
	}
	if buildErr != nil {
		return out, buildErr
	}

	// Shard 0 loses machine 1 mid-run and gets it back: orphaned stores
	// re-place, the rebuilder restores their contents.
	in := fault.New(pk.Shard(0), shards[0].sys.Cluster, shards[0].sys.Trace)
	shards[0].sys.AttachInjector(in)
	in.Install(fault.Schedule{
		{At: sim.Time(float64(cfg.horizon) * 0.35), Op: fault.OpCrash, A: 1},
		{At: sim.Time(float64(cfg.horizon) * 0.65), Op: fault.OpRestart, A: 1},
	})

	det := scaleDet{
		ShardEvents: make([]uint64, cfg.shards),
		Ops:         make([]int64, cfg.shards),
		Failed:      make([]int64, cfg.shards),
		CrossOps:    make([]int64, cfg.shards),
		CrossFailed: make([]int64, cfg.shards),
	}
	for s := 0; s < cfg.shards; s++ {
		s := s
		st := shards[s]
		k := pk.Shard(s)
		var wg sim.WaitGroup
		for c := 0; c < cfg.clients; c++ {
			c := c
			wg.Add(1)
			k.Spawn(fmt.Sprintf("s%d-client-%d", s, c), func(p *sim.Proc) {
				defer wg.Done()
				for op := 0; p.Now() < cfg.horizon; op++ {
					idx := (c + op) % cfg.stores
					key := uint64(c)<<32 | uint64(op)
					val := c*1_000_003 + op
					if err := st.stores[idx].Put(p, 0, key, val, cfg.opBytes); err == nil {
						st.golden[idx][key] = val
						st.latest = int64(val)
						det.Ops[s]++
					} else {
						det.Failed[s]++
					}
					if op%cfg.crossEvery == 0 {
						_, err := pt.Call(p, simnet.ShardNode{Shard: s, Node: 0},
							simnet.ShardNode{Shard: (s + 1) % cfg.shards, Node: 0},
							"xget", simnet.Message{Bytes: 64})
						if err == nil {
							det.CrossOps[s]++
						} else {
							det.CrossFailed[s]++
						}
					}
				}
			})
		}
		k.Spawn(fmt.Sprintf("s%d-verify", s), func(p *sim.Proc) {
			wg.Wait(p)
			if s == 0 {
				// Sampled read-back on the crash shard: acked writes must
				// have survived the crash via re-placement + rebuild.
				for i, mp := range st.stores {
					keys := make([]uint64, 0, len(st.golden[i]))
					for k := range st.golden[i] {
						keys = append(keys, k)
					}
					sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
					for j := 0; j < len(keys); j += cfg.sample {
						v, err := mp.Get(p, 0, keys[j])
						if err != nil || v.(int) != st.golden[i][keys[j]] {
							det.Lost++
						}
					}
				}
			}
			st.done = true
		})
	}

	pk.RunUntil(cfg.horizon + cfg.slack)

	for s, st := range shards {
		if !st.done {
			return out, fmt.Errorf("ext-scale: shard %d did not drain by %v (workload wedged)", s, cfg.horizon+cfg.slack)
		}
		det.ShardEvents[s] = pk.Shard(s).EventsProcessed()
	}
	det.Crashes = in.Crashes.Value()
	det.Recoveries = shards[0].sys.Sched.Recoveries.Value()
	det.Windows = pk.Windows()
	det.CrossMsgs = uint64(pt.CrossCalls.Value())
	logs := make([]*trace.Log, cfg.shards)
	for s, st := range shards {
		logs[s] = st.sys.Trace
	}
	for _, e := range trace.Merge(logs...).Events() {
		det.Trace = append(det.Trace, e.String())
	}
	out.det = det
	out.wallMS = float64(time.Since(start).Microseconds()) / 1000
	return out, nil
}

func runExtScale(scale Scale) (*Result, error) {
	cfg := scaleConfig(scale)
	res := newResult("ext-scale", "extension: 1,000-machine partitioned fleet, deterministic at any worker count")
	res.addf("fleet: %d shards x %d machines = %d machines; %d stores + %d clients per shard",
		cfg.shards, cfg.perShard, cfg.shards*cfg.perShard, cfg.stores, cfg.clients)
	res.addf("faults: shard 0 crashes machine 1 at %v, restarts it at %v",
		sim.Time(float64(cfg.horizon)*0.35), sim.Time(float64(cfg.horizon)*0.65))

	var ref scaleOutcome
	wall := make(map[int]float64, len(cfg.workers))
	for i, p := range cfg.workers {
		o, err := runScaleOnce(cfg, p)
		if err != nil {
			return nil, err
		}
		wall[p] = o.wallMS
		res.EventsProcessed += sumU64(o.det.ShardEvents)
		if i == 0 {
			ref = o
			continue
		}
		if !reflect.DeepEqual(o.det, ref.det) {
			return nil, fmt.Errorf(
				"ext-scale: determinism violated — P=%d diverged from P=%d (events %v vs %v, ops %v vs %v, trace %d vs %d lines)",
				p, cfg.workers[0], o.det.ShardEvents, ref.det.ShardEvents,
				o.det.Ops, ref.det.Ops, len(o.det.Trace), len(ref.det.Trace))
		}
	}
	res.Trace = ref.det.Trace

	var ops, failed, crossOps, crossFailed int64
	for s := 0; s < cfg.shards; s++ {
		ops += ref.det.Ops[s]
		failed += ref.det.Failed[s]
		crossOps += ref.det.CrossOps[s]
		crossFailed += ref.det.CrossFailed[s]
	}
	res.addf("ops acked %d (failed %d), cross-shard reads %d (failed %d), objects lost %d",
		ops, failed, crossOps, crossFailed, ref.det.Lost)
	res.addf("crashes %d, orphans re-placed %d; %d sync windows, %d cross-shard RPCs",
		ref.det.Crashes, ref.det.Recoveries, ref.det.Windows, ref.det.CrossMsgs)
	res.addf("determinism: per-shard events %v identical at P=%v (asserted in-run)",
		ref.det.ShardEvents, cfg.workers)
	res.addf("wall-clock per worker count is host time: see the wall_* keys in the")
	res.addf("JSON output (excluded from byte-compared output and the benchdiff gate).")

	res.set("machines", float64(cfg.shards*cfg.perShard))
	res.set("shards", float64(cfg.shards))
	res.set("ops", float64(ops))
	res.set("failed", float64(failed))
	res.set("cross_ops", float64(crossOps))
	res.set("cross_failed", float64(crossFailed))
	res.set("lost", float64(ref.det.Lost))
	res.set("crashes", float64(ref.det.Crashes))
	res.set("recoveries", float64(ref.det.Recoveries))
	res.set("windows", float64(ref.det.Windows))
	res.set("cross_msgs", float64(ref.det.CrossMsgs))
	res.set("events", float64(sumU64(ref.det.ShardEvents)))
	base := wall[cfg.workers[0]]
	for _, p := range cfg.workers {
		res.set(fmt.Sprintf("wall_ms_p%d", p), wall[p])
		if p != cfg.workers[0] && wall[p] > 0 {
			res.set(fmt.Sprintf("wall_speedup_p%d", p), base/wall[p])
		}
	}
	return res, nil
}

func sumU64(xs []uint64) uint64 {
	var n uint64
	for _, x := range xs {
		n += x
	}
	return n
}
