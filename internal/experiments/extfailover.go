package experiments

// ext-failover: crash recovery without data loss via replicated memory
// proclets. ext-chaos rebuilds lost store contents from an out-of-band
// durable source; this extension removes that crutch: stores carry
// their own durability through primary/backup replication (writes
// group-commit log records to anti-affine backups before acking),
// failure detection is heartbeat-driven (no oracle crash knowledge),
// and ownership is lease-based so promotion is safe under partitions.
// Four identically-seeded runs — RF in {1, 2} x {crash, no-fault} —
// measure what replication costs when nothing fails and what it saves
// when a machine dies: goodput under the crash, failover latency per
// affected store (crash instant to first post-crash ack), and acked
// objects lost (zero at RF=2, positive at RF=1 where restored stores
// come back empty).

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/replication"
	"repro/internal/runpar"
	"repro/internal/sim"
)

// failoverCfg parameterizes one ext-failover run.
type failoverCfg struct {
	machines []cluster.MachineConfig
	stores   int           // memory proclets, round-robin over machines 1..N-1
	clients  int           // open-loop writers on machine 0
	opBytes  int64         // payload per put
	think    time.Duration // writer think time between puts
	horizon  sim.Time
	bucket   time.Duration // goodput histogram bucket
	crashAt  sim.Time
	restart  sim.Time
}

func failoverConfig(scale Scale) failoverCfg {
	const MiB = 1 << 20
	cfg := failoverCfg{
		stores:  6,
		clients: 12,
		opBytes: 1 << 10,
		think:   100 * time.Microsecond,
		horizon: sim.Time(120 * time.Millisecond),
		bucket:  5 * time.Millisecond,
		machines: []cluster.MachineConfig{
			{Cores: 4, MemBytes: 128 * MiB},
			{Cores: 4, MemBytes: 128 * MiB},
			{Cores: 4, MemBytes: 128 * MiB},
			{Cores: 4, MemBytes: 128 * MiB},
		},
	}
	if scale == FullScale {
		cfg.clients = 24
		cfg.opBytes = 4 << 10
		cfg.horizon = sim.Time(400 * time.Millisecond)
		cfg.bucket = 10 * time.Millisecond
		for i := range cfg.machines {
			cfg.machines[i].Cores = 8
			cfg.machines[i].MemBytes = 512 * MiB
		}
	}
	cfg.crashAt = sim.Time(float64(cfg.horizon) * 0.30)
	cfg.restart = sim.Time(float64(cfg.horizon) * 0.70)
	return cfg
}

// failoverOutcome is one run's measurements.
type failoverOutcome struct {
	ops, failed, lost int64
	promotions        int64
	deposes           int64
	resyncs           int64
	confirms          int64
	replRecords       int64
	goodput           []float64
	failoverMS        []float64 // per affected store: crash -> first post-crash ack
	events            uint64
	trace             []string
}

// runFailoverOnce drives the open-loop write workload at the given
// replication factor, optionally crashing machine 1 mid-run. The
// heartbeat detector and lease plane are installed in every variant —
// recovery is detector-driven, never oracle-driven.
func runFailoverOnce(cfg failoverCfg, rf int, inject bool) (failoverOutcome, error) {
	var out failoverOutcome
	sysCfg := core.DefaultConfig()
	sysCfg.Seed = seeded(17)
	sys := core.NewSystem(sysCfg, cfg.machines)
	defer sys.Close()
	if rf >= 2 && inject {
		maybeTrace(sys)
	}
	sys.Start()

	in := fault.New(sys.K, sys.Cluster, sys.Trace)
	sys.AttachInjector(in)
	rm := sys.EnableReplicationPlane(replication.Config{}, 0)

	// Stores on machines 1..N-1; machine 0 hosts the monitor and the
	// clients and never crashes.
	golden := make([]map[uint64]int, cfg.stores)
	stores := make([]*core.MemoryProclet, cfg.stores)
	affected := make([]bool, cfg.stores) // primary on the crashing machine
	for i := range stores {
		golden[i] = make(map[uint64]int)
		mid := cluster.MachineID(1 + i%(len(cfg.machines)-1))
		mp, err := core.NewMemoryProcletOn(sys, fmt.Sprintf("fstore-%d", i), mid)
		if err != nil {
			return out, err
		}
		if rf >= 2 {
			if err := rm.Replicate(mp, rf); err != nil {
				return out, err
			}
		}
		stores[i] = mp
		affected[i] = mid == 1
	}

	if inject {
		in.Install(fault.Schedule{
			{At: cfg.crashAt, Op: fault.OpCrash, A: 1},
			{At: cfg.restart, Op: fault.OpRestart, A: 1},
		})
	}

	nBuckets := int(int64(cfg.horizon)/int64(cfg.bucket)) + 1
	out.goodput = make([]float64, nBuckets)
	firstAck := make([]sim.Time, cfg.stores) // first ack at/after the crash

	var wg sim.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		w := w
		wg.Add(1)
		sys.K.Spawn(fmt.Sprintf("fo-client-%d", w), func(p *sim.Proc) {
			defer wg.Done()
			for op := 0; p.Now() < cfg.horizon; op++ {
				idx := (w + op) % cfg.stores
				key := uint64(w)<<32 | uint64(op)
				val := w*1_000_003 + op
				if err := stores[idx].Put(p, 0, key, val, cfg.opBytes); err == nil {
					golden[idx][key] = val
					out.ops++
					now := p.Now()
					if b := int(int64(now) / int64(cfg.bucket)); b < nBuckets {
						out.goodput[b]++
					}
					if inject && now >= cfg.crashAt && firstAck[idx] == 0 {
						firstAck[idx] = now
					}
				} else {
					out.failed++
				}
				p.Sleep(cfg.think)
			}
		})
	}

	completed := false
	sys.K.Spawn("fo-driver", func(p *sim.Proc) {
		wg.Wait(p)
		// Every acked write must be readable at the end of the run;
		// there is no rebuilder, so whatever a crash destroyed at RF=1
		// stays lost and is counted here.
		for i, mp := range stores {
			keys := make([]uint64, 0, len(golden[i]))
			for k := range golden[i] {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			for _, k := range keys {
				v, err := mp.Get(p, 0, k)
				if err != nil || v.(int) != golden[i][k] {
					out.lost++
				}
			}
		}
		completed = true
		sys.K.Stop()
	})
	sys.K.Run()
	if !completed {
		return out, fmt.Errorf("ext-failover: run did not complete (workload wedged)")
	}

	if inject {
		for i := range stores {
			if !affected[i] {
				continue
			}
			at := firstAck[i]
			if at == 0 {
				at = cfg.horizon // censored: no ack before the horizon
			}
			out.failoverMS = append(out.failoverMS,
				float64(at-cfg.crashAt)/float64(time.Millisecond))
		}
	}
	out.events = sys.K.EventsProcessed()
	out.promotions = rm.Promotions.Value()
	out.deposes = rm.Deposes.Value()
	out.resyncs = rm.Resyncs.Value()
	out.confirms = rm.Detector().Confirms.Value()
	out.replRecords = rm.ReplRecords.Value()
	for _, e := range sys.Trace.Events() {
		out.trace = append(out.trace, e.String())
	}
	if rf >= 2 && inject {
		if err := maybeExportTrace("ext-failover", sys); err != nil {
			return out, err
		}
	}
	return out, nil
}

func runExtFailover(scale Scale) (*Result, error) {
	cfg := failoverConfig(scale)
	res := newResult("ext-failover",
		"extension: replicated memory proclets fail over a crash without data loss")
	res.addf("setup: %d machines, %d stores on m1..m%d, %d writers on m0; crash m1 @%v, restart @%v",
		len(cfg.machines), cfg.stores, len(cfg.machines)-1, cfg.clients, cfg.crashAt, cfg.restart)
	res.addf("durability plane: heartbeat detector + leases on every run; no rebuilder anywhere")

	// Four independent simulations: {RF=2, RF=1} x {crash, no-fault}.
	type variant struct {
		rf     int
		inject bool
	}
	variants := []variant{{2, true}, {2, false}, {1, true}, {1, false}}
	outs, err := runpar.MapErr(len(variants), parallelism, func(i int) (failoverOutcome, error) {
		return runFailoverOnce(cfg, variants[i].rf, variants[i].inject)
	})
	if err != nil {
		return nil, err
	}
	rf2, rf2Base, rf1, rf1Base := outs[0], outs[1], outs[2], outs[3]
	res.EventsProcessed = rf2.events + rf2Base.events + rf1.events + rf1Base.events
	res.Trace = rf2.trace

	foMean, foMax := 0.0, 0.0
	for _, ms := range rf2.failoverMS {
		foMean += ms
		if ms > foMax {
			foMax = ms
		}
	}
	if n := len(rf2.failoverMS); n > 0 {
		foMean /= float64(n)
	}
	overhead := 0.0
	if rf1Base.ops > 0 {
		overhead = 1 - float64(rf2Base.ops)/float64(rf1Base.ops)
	}

	for b := range rf2.goodput {
		res.SeriesTime = append(res.SeriesTime, float64(int64(b)*int64(cfg.bucket))/float64(time.Millisecond))
	}
	res.Series["goodput_rf2"] = rf2.goodput
	res.Series["goodput_rf1"] = rf1.goodput

	res.addf("%-24s %10s %10s %10s %10s", "", "rf2", "rf2-base", "rf1", "rf1-base")
	res.addf("%-24s %10d %10d %10d %10d", "ops acked", rf2.ops, rf2Base.ops, rf1.ops, rf1Base.ops)
	res.addf("%-24s %10d %10d %10d %10d", "ops failed", rf2.failed, rf2Base.failed, rf1.failed, rf1Base.failed)
	res.addf("%-24s %10d %10d %10d %10d", "acked objects lost", rf2.lost, rf2Base.lost, rf1.lost, rf1Base.lost)
	res.addf("detector: %d confirms; rf2 control plane: %d promotions, %d deposes, %d resyncs",
		rf2.confirms, rf2.promotions, rf2.deposes, rf2.resyncs)
	res.addf("failover (crash -> first post-crash ack, %d affected stores): mean %.2f ms, max %.2f ms",
		len(rf2.failoverMS), foMean, foMax)
	res.addf("replication: %d log records shipped; steady-state overhead %.1f%% of RF=1 goodput",
		rf2.replRecords+rf2Base.replRecords, 100*overhead)
	res.addf("paper shape: at RF=2 every acked write survives the crash (lost=0) with failover bounded")
	res.addf("by the detector's confirm window; RF=1 pays no overhead but loses the crashed stores.")

	res.set("ops_rf2", float64(rf2.ops))
	res.set("ops_rf1", float64(rf1.ops))
	res.set("ops_nofault_rf2", float64(rf2Base.ops))
	res.set("ops_nofault_rf1", float64(rf1Base.ops))
	res.set("failed_rf2", float64(rf2.failed))
	res.set("failed_rf1", float64(rf1.failed))
	res.set("lost_rf2", float64(rf2.lost))
	res.set("lost_rf1", float64(rf1.lost))
	res.set("promotions", float64(rf2.promotions))
	res.set("deposes", float64(rf2.deposes))
	res.set("resyncs", float64(rf2.resyncs))
	res.set("confirms", float64(rf2.confirms))
	res.set("failover_ms_mean", foMean)
	res.set("failover_ms_max", foMax)
	res.set("overhead_frac", overhead)
	res.set("repl_records", float64(rf2.replRecords))
	return res, nil
}
