package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dtp"
	"repro/internal/metrics"
	"repro/internal/sharded"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fig3Cfg parameterizes the GPU-adaptation experiment: the number of
// available training GPUs toggles between gpusHi and gpusLo every
// halfPeriod; Quicksand must split/merge preprocessing compute
// proclets to keep the GPUs saturated without wasting CPU.
type fig3Cfg struct {
	gpusHi, gpusLo int
	halfPeriod     time.Duration
	horizon        sim.Time
	preprocCPU     time.Duration // CPU per batch produced
	gpuBatch       time.Duration // GPU time per batch consumed
	outBytes       int64
	lowWater       uint64
	highWater      uint64
	maxProducers   int
}

func fig3Config(scale Scale) fig3Cfg {
	cfg := fig3Cfg{
		gpusHi:       8,
		gpusLo:       4,
		halfPeriod:   200 * time.Millisecond,
		horizon:      sim.Time(1200 * time.Millisecond),
		preprocCPU:   10 * time.Millisecond,
		gpuBatch:     5 * time.Millisecond,
		outBytes:     16 << 10,
		lowWater:     4,
		highWater:    32,
		maxProducers: 24,
	}
	if scale == TestScale {
		cfg.horizon = sim.Time(600 * time.Millisecond)
	}
	return cfg
}

// fig3Out carries the measured series.
type fig3Out struct {
	size     *metrics.TimeSeries // producer pool size over time
	active   *metrics.TimeSeries // active GPUs over time
	consumed *metrics.BucketSeries
	splits   int64
	merges   int64
}

func fig3Run(cfg fig3Cfg) (fig3Out, error) {
	var out fig3Out
	sysCfg := core.DefaultConfig() // AdaptPeriod 2 ms: one decision per tick
	machines := []cluster.MachineConfig{
		{Cores: 24, MemBytes: 16 << 30},
		{Cores: 24, MemBytes: 16 << 30},
	}
	sys := core.NewSystem(sysCfg, machines)
	defer sys.Close()

	queue, err := sharded.NewQueue[workload.Batch](sys, "batches", sharded.Options{})
	if err != nil {
		return out, err
	}
	gpus := workload.NewGPUPool(queue, 0, cfg.gpuBatch, cfg.gpusHi)
	gpus.Start(sys.K)

	// Producers start matched to the high-GPU state.
	ratio := int(float64(cfg.preprocCPU) / float64(cfg.gpuBatch))
	initial := cfg.gpusHi * ratio
	tp, err := dtp.New(sys, "preproc", 1, initial, 1, cfg.maxProducers)
	if err != nil {
		return out, err
	}
	// The paper's controller: on learning of a GPU change, split or
	// merge producers to match the new consumption capacity.
	ts := dtp.NewTargetScaler(tp, func() int { return gpus.Active() * ratio })
	ts.MaxSteps = 1 // one split/merge per adaptation decision, as in the paper
	sys.Sched.RegisterAdaptive(ts)
	sys.Start()

	// Continuous production: a fixed population of self-replacing
	// tasks, dispatched through the pool so new members get fed.
	seq := 0
	var produce core.TaskFn
	produce = func(tc *core.TaskCtx) {
		tc.Compute(cfg.preprocCPU)
		seq++
		queue.Push(tc.Proc(), tc.Machine(), workload.Batch{Seq: seq, Bytes: cfg.outBytes}, cfg.outBytes)
		tc.ComputeProclet().Run(produce)
	}
	for i := 0; i < 2*cfg.maxProducers; i++ {
		tp.Run(produce)
	}

	// The availability trace: hi <-> lo every half period.
	workload.Toggle(sys.K, cfg.halfPeriod, cfg.gpusHi, cfg.gpusLo, cfg.horizon, func(n int) {
		gpus.SetActive(sys.K, n)
	})

	// Samplers.
	out.size = metrics.NewTimeSeries("producers")
	out.consumed = metrics.NewBucketSeries("consumed", 10*time.Millisecond)
	lastConsumed := int64(0)
	sys.K.Every(0, time.Millisecond, func() bool {
		out.size.Add(sys.K.Now(), float64(tp.Size()))
		c := gpus.Consumed.Value()
		out.consumed.Add(sys.K.Now(), float64(c-lastConsumed))
		lastConsumed = c
		return sys.K.Now() < cfg.horizon
	})

	sys.K.RunUntil(cfg.horizon)
	gpus.Stop()
	out.active = gpus.ActiveSeries
	out.splits = tp.Pool().Splits
	out.merges = tp.Pool().Merges
	return out, nil
}

// fig3Reactions computes, for every GPU-availability flip after t=0,
// the time until the producer pool size settles into the interval's
// steady band (within ±1 of the value it holds at the end of the
// interval, sustained for settleHold).
func fig3Reactions(cfg fig3Cfg, out fig3Out) (perFlip []float64, gpuUtil []float64) {
	const settleHoldMs = 20
	flips := out.active.Points()
	for i := 1; i < len(flips); i++ {
		start := flips[i].At
		end := cfg.horizon
		if i+1 < len(flips) {
			end = flips[i+1].At
		}
		if end-start < sim.Time(50*time.Millisecond) {
			continue
		}
		steady, ok := out.size.At(end - sim.Time(10*time.Millisecond))
		if !ok {
			continue
		}
		inBand := func(t sim.Time) bool {
			v, ok := out.size.At(t)
			return ok && math.Abs(v-steady) <= 1
		}
		react := -1.0
		for t := start; t < end; t += sim.Time(time.Millisecond) {
			if !inBand(t) {
				continue
			}
			held := true
			for h := sim.Time(0); h <= sim.Time(settleHoldMs*time.Millisecond); h += sim.Time(time.Millisecond) {
				if t+h >= end {
					break
				}
				if !inBand(t + h) {
					held = false
					break
				}
			}
			if held {
				react = float64(t-start) / float64(time.Millisecond)
				break
			}
		}
		if react < 0 {
			react = float64(end-start) / float64(time.Millisecond)
		}
		perFlip = append(perFlip, react)

		// GPU utilization over the settled part of the interval.
		settledFrom := start + sim.Time(time.Duration(react)*time.Millisecond)
		gpusActive := flips[i].Value
		capacity := gpusActive / cfg.gpuBatch.Seconds() * (end - settledFrom).Seconds()
		var used float64
		fromB := int(int64(settledFrom) / int64(10*time.Millisecond))
		toB := int(int64(end) / int64(10*time.Millisecond))
		for b := fromB; b < toB; b++ {
			used += out.consumed.Bucket(b)
		}
		if capacity > 0 {
			gpuUtil = append(gpuUtil, 100*used/capacity)
		}
	}
	return perFlip, gpuUtil
}

func runFig3(scale Scale) (*Result, error) {
	cfg := fig3Config(scale)
	out, err := fig3Run(cfg)
	if err != nil {
		return nil, err
	}
	res := newResult("fig3", "Figure 3: compute proclets track varying GPU availability")
	res.addf("setup: GPUs toggle %d<->%d every %v; preprocessing %v/batch, GPU %v/batch",
		cfg.gpusHi, cfg.gpusLo, cfg.halfPeriod, cfg.preprocCPU, cfg.gpuBatch)
	reacts, utils := fig3Reactions(cfg, out)
	if len(reacts) == 0 {
		return nil, fmt.Errorf("fig3: no flips measured")
	}
	var sum, max float64
	for _, r := range reacts {
		sum += r
		if r > max {
			max = r
		}
	}
	mean := sum / float64(len(reacts))
	var usum float64
	for _, u := range utils {
		usum += u
	}
	umean := 0.0
	if len(utils) > 0 {
		umean = usum / float64(len(utils))
	}
	res.addf("flips measured: %d; splits=%d merges=%d", len(reacts), out.splits, out.merges)
	for i, r := range reacts {
		res.addf("  flip %d: settle %.0f ms", i+1, r)
	}
	res.addf("settle time: mean %.1f ms, max %.0f ms (paper: 10-15 ms)", mean, max)
	res.addf("GPU utilization after settling: %.1f%% mean", umean)
	res.set("react_mean_ms", mean)
	res.set("react_max_ms", max)
	res.set("splits", float64(out.splits))
	res.set("merges", float64(out.merges))
	res.set("gpu_util_pct", umean)
	// Plot-ready series at 1 ms resolution: producer pool size, active
	// GPUs, and consumed batches per 10 ms bucket.
	nMs := int(int64(cfg.horizon) / int64(time.Millisecond))
	producers := make([]float64, nMs)
	gpusActive := make([]float64, nMs)
	consumed := make([]float64, nMs)
	for ms := 0; ms < nMs; ms++ {
		at := sim.Time(ms) * sim.Millisecond
		res.SeriesTime = append(res.SeriesTime, float64(ms))
		producers[ms], _ = out.size.At(at)
		gpusActive[ms], _ = out.active.At(at)
		consumed[ms] = out.consumed.Bucket(ms / 10)
	}
	res.Series["producers"] = producers
	res.Series["gpus_active"] = gpusActive
	res.Series["consumed_per_10ms"] = consumed

	// Producer-count excerpt around the first flip (the paper's plot).
	res.addf("producer count timeline (1 ms samples around first flip):")
	flipAt := sim.Time(cfg.halfPeriod)
	line := "  "
	for t := flipAt - sim.Time(5*time.Millisecond); t < flipAt+sim.Time(30*time.Millisecond); t += sim.Time(5 * time.Millisecond) {
		v, _ := out.size.At(t)
		line += fmt.Sprintf("%v:%2.0f  ", t, v)
	}
	res.Lines = append(res.Lines, line)
	return res, nil
}
