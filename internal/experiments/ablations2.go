package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// runAblGranularity sweeps proclet granularity at constant total filler
// capacity and state: the same 8 worker threads and 64 MiB of state
// carved into 1, 2, 4, or 8 proclets. Coarser proclets migrate slower
// and move in bigger indivisible chunks, losing more of each 10 ms
// window — the paper's core argument for granular proclets (§2:
// "fast migration is possible only for fine-grained proclets").
func runAblGranularity(scale Scale) (*Result, error) {
	base := fig1Config(scale)
	const totalWorkers = 8
	const totalState = int64(64 << 20)
	res := newResult("abl-granularity", "filler goodput vs proclet granularity (constant total state)")
	res.addf("total: %d workers, %s of state; figure-1 workload", totalWorkers, byteSize(totalState))
	res.addf("%-20s %14s %12s %14s", "granularity", "goodput[%ideal]", "migrations", "mig mean[ms]")
	for _, members := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.members = members
		cfg.workersPer = totalWorkers / members
		heap := totalState / int64(members)
		st, err := fig1RunWith(cfg, func(c *core.Config) {
			c.ComputeProcletHeap = heap
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d x %dw x %s", members, cfg.workersPer, byteSize(heap))
		res.addf("%-20s %14.1f %12d %14.3f", label, st.goodputPct, st.migrations, st.migMeanMs)
		res.set(fmt.Sprintf("goodput_pct.%d", members), st.goodputPct)
		res.set(fmt.Sprintf("mig_mean_ms.%d", members), st.migMeanMs)
	}
	res.addf("shape: finer proclets migrate faster and pack better, recovering more of every window;")
	res.addf("one monolithic proclet loses several ms of each 10 ms window to its own transfer.")
	return res, nil
}

// runAblReactor sweeps the fast path's sampling period on the Figure 1
// workload — the reaction-time side of §5's 'balance between reaction
// time and quality'.
func runAblReactor(scale Scale) (*Result, error) {
	base := fig1Config(scale)
	res := newResult("abl-reactor", "filler goodput vs local reactor period")
	res.addf("%-12s %14s %12s", "period", "goodput[%ideal]", "migrations")
	periods := []time.Duration{
		100 * time.Microsecond,
		200 * time.Microsecond,
		time.Millisecond,
		5 * time.Millisecond,
		20 * time.Millisecond,
	}
	if scale == TestScale {
		periods = []time.Duration{200 * time.Microsecond, 2 * time.Millisecond, 20 * time.Millisecond}
	}
	for _, period := range periods {
		st, err := fig1RunWith(base, func(c *core.Config) {
			c.LocalPeriod = period
		})
		if err != nil {
			return nil, err
		}
		res.addf("%-12v %14.1f %12d", period, st.goodputPct, st.migrations)
		res.set(fmt.Sprintf("goodput_pct.%d", period.Microseconds()), st.goodputPct)
	}
	res.addf("shape: goodput degrades as the detection period approaches the idle-window length;")
	res.addf("at 20 ms (the antagonist period) the reactor is effectively blind.")
	return res, nil
}
