package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/proclet"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// extGPUCfg parameterizes the GPU-proclet extension experiment: spot
// GPUs are reclaimed on a rotating schedule; GPU proclets migrate
// their device state to spares, while the baseline restarts training
// workers from a checkpoint.
type extGPUCfg struct {
	machines    int
	gpusPer     int
	trainers    int
	modelBytes  int64
	stepKernel  time.Duration
	batchBytes  int64
	reclaimGap  time.Duration // time between reclaim events
	reclaimHold time.Duration // how long a reclaimed GPU stays gone
	coldStart   time.Duration // framework restart cost (baseline)
	horizon     sim.Time
}

func extGPUConfig(scale Scale) extGPUCfg {
	cfg := extGPUCfg{
		machines:    2,
		gpusPer:     4,
		trainers:    6,
		modelBytes:  512 << 20,
		stepKernel:  5 * time.Millisecond,
		batchBytes:  8 << 20,
		reclaimGap:  400 * time.Millisecond,
		reclaimHold: 200 * time.Millisecond,
		coldStart:   time.Second,
		horizon:     sim.Time(4 * time.Second),
	}
	if scale == TestScale {
		cfg.horizon = sim.Time(1600 * time.Millisecond)
	}
	return cfg
}

// extGPUOut is one mode's outcome.
type extGPUOut struct {
	steps      int64
	idealSteps float64
	evacs      int64
	evacMeanMs float64
	restarts   int64
}

func extGPURun(cfg extGPUCfg, fungible bool) (extGPUOut, error) {
	var out extGPUOut
	machines := make([]cluster.MachineConfig, cfg.machines)
	for i := range machines {
		machines[i] = cluster.MachineConfig{Cores: 16, MemBytes: 32 << 30}
	}
	sys := core.NewSystem(core.DefaultConfig(), machines)
	defer sys.Close()
	for _, m := range sys.Cluster.Machines() {
		m.AddGPUs(cluster.GPUConfig{Count: cfg.gpusPer, MemBytes: 16 << 30, LinkBandwidth: 16_000_000_000})
	}

	fleet := gpu.NewFleet(sys, "trainers", time.Millisecond)
	trainers := make([]*gpu.Proclet, cfg.trainers)
	for i := range trainers {
		gp, err := fleet.Add(fmt.Sprintf("trainer-%d", i), cfg.modelBytes, cfg.stepKernel)
		if err != nil {
			return out, err
		}
		trainers[i] = gp
	}
	if fungible {
		fleet.Start()
	}

	// Rotating spot reclamations: every reclaimGap, the device hosting
	// the next trainer is reclaimed for reclaimHold.
	victim := 0
	var reclaim func()
	reclaim = func() {
		if sys.K.Now() >= cfg.horizon {
			return
		}
		g := trainers[victim%len(trainers)].Device()
		victim++
		g.SetAvailable(false)
		sys.K.After(cfg.reclaimHold, func() { g.SetAvailable(true) })
		sys.K.After(cfg.reclaimGap, reclaim)
	}
	sys.K.After(cfg.reclaimGap, reclaim)

	// Training drivers.
	for i, gp := range trainers {
		i, gp := i, gp
		sys.K.Spawn(fmt.Sprintf("driver-%d", i), func(p *sim.Proc) {
			cur := gp
			for p.Now() < cfg.horizon {
				from := cur.Device().Machine.ID
				err := cur.Step(p, from, cfg.batchBytes)
				if err == nil {
					out.steps++
					continue
				}
				if !errors.Is(err, gpu.ErrReclaimed) &&
					!errors.Is(err, proclet.ErrDead) && !errors.Is(err, proclet.ErrNotFound) {
					return
				}
				if fungible {
					// The fleet is already migrating the proclet; back
					// off one watcher period and retry.
					p.Sleep(time.Millisecond)
					continue
				}
				// Restart-based baseline: tear down, cold-start a new
				// worker on an available GPU, reload the checkpoint
				// over the network.
				out.restarts++
				cur.Destroy()
				p.Sleep(cfg.coldStart)
				for {
					g, err := fleet.PickGPU(cfg.modelBytes, nil)
					if err != nil {
						p.Sleep(10 * time.Millisecond)
						continue
					}
					if terr := sys.Cluster.Fabric.Transfer(p,
						simnet.NodeID(0), simnet.NodeID(g.Machine.ID), cfg.modelBytes); terr != nil {
						p.Sleep(10 * time.Millisecond)
						continue
					}
					ngp, nerr := gpu.New(sys, fmt.Sprintf("trainer-%d", i), g, cfg.modelBytes, cfg.stepKernel)
					if nerr != nil {
						p.Sleep(10 * time.Millisecond)
						continue
					}
					cur = ngp
					break
				}
			}
		})
	}

	sys.K.RunUntil(cfg.horizon)
	fleet.Stop()

	stepTime := cfg.stepKernel +
		time.Duration(float64(cfg.batchBytes)/16e9*1e9) // kernel + upload
	out.idealSteps = float64(cfg.trainers) * float64(cfg.horizon) / float64(stepTime)
	out.evacs = fleet.Evacuations.Value()
	out.evacMeanMs = fleet.MigrationLatency.Mean() * 1000
	return out, nil
}

func runExtGPU(scale Scale) (*Result, error) {
	cfg := extGPUConfig(scale)
	res := newResult("ext-gpu", "extension: GPU proclets ride out spot reclamations")
	res.addf("setup: %d machines x %d GPUs, %d trainers (model %d MiB, %v kernel); one hosting GPU",
		cfg.machines, cfg.gpusPer, cfg.trainers, cfg.modelBytes>>20, cfg.stepKernel)
	res.addf("reclaimed every %v for %v; baseline restart costs %v + checkpoint reload",
		cfg.reclaimGap, cfg.reclaimHold, cfg.coldStart)
	res.addf("%-14s %12s %12s %10s %14s %10s", "mode", "steps", "ideal%", "evacs", "evac mean[ms]", "restarts")
	for _, mode := range []struct {
		name     string
		fungible bool
	}{{"gpu-proclets", true}, {"restart", false}} {
		out, err := extGPURun(cfg, mode.fungible)
		if err != nil {
			return nil, err
		}
		pct := 100 * float64(out.steps) / out.idealSteps
		res.addf("%-14s %12d %11.1f%% %10d %14.1f %10d",
			mode.name, out.steps, pct, out.evacs, out.evacMeanMs, out.restarts)
		res.set(mode.name+".steps", float64(out.steps))
		res.set(mode.name+".ideal_pct", pct)
		res.set(mode.name+".evacs", float64(out.evacs))
		res.set(mode.name+".restarts", float64(out.restarts))
		if mode.fungible {
			res.set("evac_mean_ms", out.evacMeanMs)
		}
	}
	res.addf("shape: device-state migration (~tens of ms for the model over host links + network) keeps")
	res.addf("training near the ideal across reclamations; restart-based recovery pays a second per event.")
	return res, nil
}
