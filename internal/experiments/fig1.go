package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runpar"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fig1Cfg parameterizes the motivating experiment: two machines whose
// high-priority apps alternate between consuming all cores and none
// every 10 ms, anti-phased, with a best-effort filler trying to
// harvest the idle windows.
type fig1Cfg struct {
	cores      float64
	unit       time.Duration // one filler work unit of CPU
	period     time.Duration // antagonist full period (busy = period/2)
	horizon    sim.Time
	measure    sim.Time // stats window start (skip ramp-up)
	members    int      // filler compute proclets (Quicksand mode)
	workersPer int      // worker threads per filler proclet
	coarseGB   int64    // coarse-baseline state size
}

func fig1Config(scale Scale) fig1Cfg {
	cfg := fig1Cfg{
		cores:      8,
		unit:       50 * time.Microsecond,
		period:     20 * time.Millisecond,
		horizon:    sim.Time(1000 * time.Millisecond),
		measure:    sim.Time(100 * time.Millisecond),
		members:    8,
		workersPer: 1,
		coarseGB:   2 << 30,
	}
	if scale == TestScale {
		cfg.horizon = sim.Time(200 * time.Millisecond)
		cfg.measure = sim.Time(40 * time.Millisecond)
	}
	return cfg
}

// fig1Stats is one mode's outcome.
type fig1Stats struct {
	goodputPct float64 // achieved / ideal over the stats window
	migrations int64
	migMeanMs  float64
	migMaxMs   float64
	reactMeanM float64 // mean ms from antagonist flip to >50% goodput
	perMachine [2]*metrics.BucketSeries
	events     uint64   // kernel events executed in this mode's run
	trace      []string // rendered control-plane trace for this mode
}

func fig1Run(cfg fig1Cfg, mode string) (fig1Stats, error) {
	return fig1RunFull(cfg, mode, nil)
}

// fig1RunWith runs the Quicksand mode with a mutated system config
// (scheduler ablations).
func fig1RunWith(cfg fig1Cfg, mutate func(*core.Config)) (fig1Stats, error) {
	return fig1RunFull(cfg, "quicksand", mutate)
}

func fig1RunFull(cfg fig1Cfg, mode string, mutate func(*core.Config)) (fig1Stats, error) {
	sysCfg := core.DefaultConfig()
	if mutate != nil {
		mutate(&sysCfg)
	}
	machines := []cluster.MachineConfig{
		{Cores: cfg.cores, MemBytes: 32 << 30},
		{Cores: cfg.cores, MemBytes: 32 << 30},
	}
	sys := core.NewSystem(sysCfg, machines)
	defer sys.Close()
	if mode == "quicksand" {
		maybeTrace(sys)
	}
	k := sys.K

	// Anti-phased antagonists: m0 busy in the first half-period, m1 in
	// the second.
	busy := cfg.period / 2
	a0 := &workload.Antagonist{Machine: sys.Cluster.Machine(0), Period: cfg.period, Busy: busy, Cores: cfg.cores}
	a1 := &workload.Antagonist{Machine: sys.Cluster.Machine(1), Period: cfg.period, Busy: busy,
		Offset: busy, Cores: cfg.cores}
	a0.Start(k)
	a1.Start(k)

	var st fig1Stats
	for i := range st.perMachine {
		st.perMachine[i] = metrics.NewBucketSeries(fmt.Sprintf("goodput-m%d", i), time.Millisecond)
	}

	// One closure value feeds every task: each completion re-enqueues
	// the same TaskFn on its current proclet, so the steady-state filler
	// loop allocates no closures at all.
	var taskFn core.TaskFn
	taskFn = func(tc *core.TaskCtx) {
		tc.Compute(cfg.unit)
		st.perMachine[tc.Machine()].Add(k.Now(), 1)
		tc.ComputeProclet().Run(taskFn)
	}
	feed := func(cp *core.ComputeProclet) {
		cp.Run(taskFn)
	}

	switch mode {
	case "quicksand":
		sys.Start()
		pool, err := sys.NewPool("filler", cfg.workersPer, cfg.members, 1, cfg.members)
		if err != nil {
			return st, err
		}
		for _, m := range pool.Members() {
			for w := 0; w < 2*cfg.workersPer; w++ {
				feed(m)
			}
		}
	case "pinned":
		// Classic cloud: the filler rents one machine and stays there.
		for i := 0; i < cfg.members; i++ {
			cp, err := core.NewComputeProcletOn(sys, fmt.Sprintf("pinned-%d", i), 0, cfg.workersPer)
			if err != nil {
				return st, err
			}
			sys.Sched.Pin(cp.ID())
			for w := 0; w < 2*cfg.workersPer; w++ {
				feed(cp)
			}
		}
	case "coarse":
		// VM-grained filler: monolithic state, slow monitor.
		ca, err := baseline.NewCoarseApp(sys, "vm-filler", 0, cfg.members, cfg.coarseGB, 250*time.Millisecond)
		if err != nil {
			return st, err
		}
		ca.StartMonitor()
		for i := 0; i < 2*cfg.members; i++ {
			feed(ca.Compute())
		}
	default:
		return st, fmt.Errorf("fig1: unknown mode %q", mode)
	}

	k.RunUntil(cfg.horizon)
	a0.Stop()
	a1.Stop()

	// Ideal: exactly one machine's worth of cores is free at any time.
	unitsPerMsIdeal := cfg.cores * float64(time.Millisecond) / float64(cfg.unit)
	fromB := int(int64(cfg.measure) / int64(time.Millisecond))
	toB := int(int64(cfg.horizon) / int64(time.Millisecond))
	var achieved float64
	for b := fromB; b < toB; b++ {
		achieved += st.perMachine[0].Bucket(b) + st.perMachine[1].Bucket(b)
	}
	st.goodputPct = 100 * achieved / (unitsPerMsIdeal * float64(toB-fromB))
	st.migrations = sys.Runtime.Migrations.Value()
	st.migMeanMs = sys.Runtime.MigrationLatency.Mean() * 1000
	st.migMaxMs = sys.Runtime.MigrationLatency.Max() * 1000

	// Reaction time: after each antagonist flip, how long until the
	// newly idle machine's goodput exceeds half its full rate.
	halfRate := unitsPerMsIdeal / 2
	periodMs := int(cfg.period / time.Millisecond)
	halfMs := periodMs / 2
	var reacts []float64
	for t := fromB - fromB%halfMs; t+halfMs <= toB; t += halfMs {
		if t <= fromB {
			continue
		}
		k := t / halfMs // flip index: odd -> m0 became idle
		idle := 1
		if k%2 == 1 {
			idle = 0
		}
		found := -1
		for b := t; b < t+halfMs; b++ {
			if st.perMachine[idle].Bucket(b) >= halfRate {
				found = b - t
				break
			}
		}
		if found >= 0 {
			reacts = append(reacts, float64(found))
		} else {
			reacts = append(reacts, float64(halfMs)) // never recovered
		}
	}
	if len(reacts) > 0 {
		var sum float64
		for _, r := range reacts {
			sum += r
		}
		st.reactMeanM = sum / float64(len(reacts))
	}
	st.events = k.EventsProcessed()
	for _, e := range sys.Trace.Events() {
		st.trace = append(st.trace, e.String())
	}
	if mode == "quicksand" {
		if err := maybeExportTrace("fig1", sys); err != nil {
			return st, err
		}
	}
	return st, nil
}

func runFig1(scale Scale) (*Result, error) {
	cfg := fig1Config(scale)
	res := newResult("fig1", "Figure 1: millisecond-scale filler migration harvests anti-phased idle CPU")
	res.addf("setup: 2 machines x %.0f cores; high-priority app busy %v of every %v, anti-phased;",
		cfg.cores, cfg.period/2, cfg.period)
	res.addf("filler: %d compute proclets x 1 worker, %v work units; horizon %v",
		cfg.members, cfg.unit, cfg.horizon)
	res.addf("%-10s %14s %12s %14s %14s %12s", "mode", "goodput[%ideal]", "migrations", "mig mean[ms]", "mig max[ms]", "react[ms]")
	// The three modes are independent simulations on independent
	// kernels; run them across host cores and merge in mode order.
	modes := []string{"quicksand", "pinned", "coarse"}
	stats, err := runpar.MapErr(len(modes), parallelism, func(i int) (fig1Stats, error) {
		return fig1Run(cfg, modes[i])
	})
	if err != nil {
		return nil, err
	}
	for i, mode := range modes {
		st := stats[i]
		res.addf("%-10s %14.1f %12d %14.3f %14.3f %12.2f",
			mode, st.goodputPct, st.migrations, st.migMeanMs, st.migMaxMs, st.reactMeanM)
		res.set(mode+".goodput_pct", st.goodputPct)
		res.set(mode+".migrations", float64(st.migrations))
		res.set(mode+".mig_mean_ms", st.migMeanMs)
		res.set(mode+".react_ms", st.reactMeanM)
		res.EventsProcessed += st.events
		res.Trace = append(res.Trace, st.trace...)
		// Plot-ready series: per-machine goodput in units/ms, 1 ms
		// buckets — the data behind the paper's Figure 1 plot.
		nB := int(int64(cfg.horizon) / int64(time.Millisecond))
		if len(res.SeriesTime) == 0 {
			for b := 0; b < nB; b++ {
				res.SeriesTime = append(res.SeriesTime, float64(b))
			}
		}
		for m := 0; m < 2; m++ {
			col := make([]float64, nB)
			for b := 0; b < nB; b++ {
				col[b] = st.perMachine[m].Bucket(b)
			}
			res.Series[fmt.Sprintf("%s_m%d_goodput", mode, m)] = col
		}
	}
	res.addf("paper shape: Quicksand migrates in <1 ms and fills both machines' gaps (~2x pinned goodput);")
	res.addf("coarse-grained (VM-style) migration cannot chase 10 ms windows.")
	return res, nil
}
