// Package experiments regenerates every table and figure in the
// Quicksand paper's evaluation, plus ablations of the design choices.
// Each experiment is a named runner that builds its own simulated
// cluster, drives the workload, and reports the paper's rows/series
// alongside machine-readable key values.
//
// The experiment index (DESIGN.md §4):
//
//	fig1           Figure 1  — filler migration across 10 ms idle gaps
//	fig2           Figure 2  — preprocessing parity across imbalanced splits
//	fig3           Figure 3  — adapting producers to 4<->8 GPU swings
//	abl-migration  ablation  — migration latency vs proclet state size
//	abl-split      ablation  — split latency vs shard size
//	abl-prefetch   ablation  — iterator prefetch on/off
//	abl-sched      ablation  — two-level vs local-only vs global-only
//	abl-locality   ablation  — affinity colocation on/off
//	ext-gpu        extension — GPU proclets (§4/§5 future work) vs restart
//	abl-granularity ablation — goodput vs proclet granularity
//	abl-reactor    ablation  — goodput vs fast-path sampling period
//	ext-harvest    extension — fleet-wide staggered-idle harvesting
//	ext-memharvest extension — memory harvesting without data loss
//	abl-postcopy   ablation  — blackout of pre- vs post-copy migration
//	ext-tiering    extension — cold shards spill to a flash tier
//	ext-chaos      extension — goodput under injected crashes/partitions
//	ext-failover   extension — replicated proclets, leases, failover
//	ext-scale      extension — 1,000-machine partitioned fleet (ParKernel)
//	ext-serve      extension — million-client open-loop serving (tail latency)
//	ext-gpufleet   extension — GPU gray failures: checkpoints, stragglers, makespan
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	// Lines are the human-readable rows (the paper's table/series).
	Lines []string
	// Values are machine-readable key results for tests and
	// EXPERIMENTS.md.
	Values map[string]float64
	// Series holds plot-ready time series (one sample per row), keyed
	// by name; all series of one result share the SeriesTime axis (in
	// milliseconds). Only figure experiments populate these.
	Series     map[string][]float64
	SeriesTime []float64
	// EventsProcessed is the total number of kernel events executed
	// across the experiment's simulation runs, and Trace the rendered
	// control-plane event log — both exist so the determinism
	// regression test can assert that one seed produces exactly one
	// behaviour. Currently populated by the figure experiments.
	EventsProcessed uint64
	Trace           []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Values: make(map[string]float64), Series: make(map[string][]float64)}
}

// WriteCSV writes the result's series as CSV (time_ms plus one column
// per series, sorted by name). It writes nothing when the experiment
// produced no series.
func (r *Result) WriteCSV(w io.Writer) {
	if len(r.SeriesTime) == 0 {
		return
	}
	names := make([]string, 0, len(r.Series))
	for name := range r.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprint(w, "time_ms")
	for _, name := range names {
		fmt.Fprintf(w, ",%s", name)
	}
	fmt.Fprintln(w)
	for i, ts := range r.SeriesTime {
		fmt.Fprintf(w, "%g", ts)
		for _, name := range names {
			v := 0.0
			if s := r.Series[name]; i < len(s) {
				v = s[i]
			}
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintln(w)
	}
}

func (r *Result) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) set(key string, v float64) { r.Values[key] = v }

// Print writes the result to w.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintln(w, l)
	}
}

// parallelism bounds the host goroutines used to fan independent
// simulation configurations (fig1/fig2 modes, ablation sweep points)
// out across cores; 0 means GOMAXPROCS. Every configuration runs on
// its own sim.Kernel and results are merged by configuration index, so
// the outcome is identical at any setting.
var parallelism = 0

// SetParallelism bounds intra-experiment fan-out to n host workers
// (n <= 0 restores the GOMAXPROCS default). Not safe to call
// concurrently with Run.
func SetParallelism(n int) {
	if n <= 0 {
		n = 0
	}
	parallelism = n
}

// Parallelism returns the current intra-experiment worker bound
// (0 = GOMAXPROCS).
func Parallelism() int { return parallelism }

// baseSeed offsets the RNG seeds of the seed-swept experiments (fig2,
// ext-chaos, ext-failover) so CI can verify determinism at several seeds: two runs at
// the same base seed must be byte-identical, while different base seeds
// explore different schedules. The default of zero leaves every
// experiment at its committed seed, so the BENCH_*.json baselines are
// unaffected.
var baseSeed int64

// SetBaseSeed sets the seed offset (see baseSeed). Not safe to call
// concurrently with Run.
func SetBaseSeed(s int64) { baseSeed = s }

// BaseSeed returns the current seed offset.
func BaseSeed() int64 { return baseSeed }

// seeded mixes an experiment's built-in seed with the base seed; with
// the default base of 0 it returns s unchanged.
func seeded(s int64) int64 { return s + baseSeed*1_000_003 }

// Runner executes one experiment at the given scale.
type Runner func(scale Scale) (*Result, error)

// Scale selects the experiment size. FullScale matches the paper's
// setup; TestScale shrinks corpora and horizons so the whole suite
// runs in CI seconds while preserving every qualitative behaviour.
type Scale int

// Experiment scales.
const (
	FullScale Scale = iota
	TestScale
)

var registry = map[string]struct {
	title string
	run   Runner
}{
	"fig1":            {"filler app harvests 10ms idle CPU windows via migration", runFig1},
	"fig2":            {"DNN preprocessing across imbalanced machines (table)", runFig2},
	"fig3":            {"compute proclets adapt to varying GPUs", runFig3},
	"abl-migration":   {"migration latency vs proclet state size", runAblMigration},
	"abl-split":       {"split latency vs shard size", runAblSplit},
	"abl-prefetch":    {"iterator prefetch on/off", runAblPrefetch},
	"abl-sched":       {"two-level scheduling ablation", runAblSched},
	"abl-locality":    {"affinity colocation ablation", runAblLocality},
	"ext-gpu":         {"extension: GPU proclets ride out spot reclamations", runExtGPU},
	"abl-granularity": {"proclet granularity ablation (constant total state)", runAblGranularity},
	"abl-reactor":     {"fast-path reactor period ablation", runAblReactor},
	"ext-harvest":     {"extension: harvesting a 6-machine fleet's staggered idle phases", runExtHarvest},
	"ext-memharvest":  {"extension: sharded store surfs an oscillating memory tenant", runExtMemHarvest},
	"abl-postcopy":    {"pre-copy vs post-copy (CXL-style) migration", runAblPostcopy},
	"ext-tiering":     {"extension: flash as slow cheap memory for sharded data", runExtTiering},
	"ext-chaos":       {"extension: goodput dip and recovery under injected crashes and partitions", runExtChaos},
	"ext-failover":    {"extension: replicated memory proclets fail over a crash without data loss", runExtFailover},
	"ext-scale":       {"extension: 1,000-machine partitioned fleet, deterministic at any worker count", runExtScale},
	"ext-serve":       {"extension: million-client open-loop serving with tail-latency telemetry", runExtServe},
	"ext-gpufleet":    {"extension: heterogeneous GPU fleet under gray failures (checkpoints, stragglers)", runExtGPUFleet},
}

// List returns registered experiment IDs, sorted.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's one-line description.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given ID.
func Run(id string, scale Scale) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, List())
	}
	return e.run(scale)
}
