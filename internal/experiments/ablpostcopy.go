package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/proclet"
	"repro/internal/sim"
)

// runAblPostcopy compares pre-copy migration (today's Nu) with
// post-copy migration over coherent remote memory (the paper's §5 CXL
// direction: "we can speed up resource proclet migration by postponing
// the copying of data"). For each state size it measures the blackout
// (how long a client's invocations stall around the move) and, for
// post-copy, the time until the heap is fully resident.
func runAblPostcopy(scale Scale) (*Result, error) {
	sizes := []int64{1 << 20, 10 << 20, 64 << 20, 256 << 20}
	if scale == TestScale {
		sizes = []int64{1 << 20, 64 << 20}
	}
	res := newResult("abl-postcopy", "pre-copy vs post-copy (CXL-style) migration")
	res.addf("client pings every 100 us across the move; blackout = longest ping stall")
	res.addf("%-10s %16s %16s %16s %16s",
		"state", "pre blackout[ms]", "post blackout[ms]", "resident[ms]", "post stalls")

	for _, size := range sizes {
		type out struct {
			blackoutMs float64
			residentMs float64
			penalties  int64
		}
		run := func(lazy bool) (out, error) {
			var o out
			sys := core.NewSystem(core.DefaultConfig(), []cluster.MachineConfig{
				{Cores: 8, MemBytes: 8 << 30},
				{Cores: 8, MemBytes: 8 << 30},
			})
			defer sys.Close()
			pr, err := sys.Runtime.Spawn("svc", 0, size)
			if err != nil {
				return o, err
			}
			pr.Handle("ping", func(ctx *proclet.Ctx, arg proclet.Msg) (proclet.Msg, error) {
				return proclet.Msg{}, nil
			})
			// A client pinging continuously; the longest gap between
			// successful pings brackets the observable blackout.
			var maxGap time.Duration
			horizon := sim.Time(500 * time.Millisecond)
			sys.K.Spawn("client", func(p *sim.Proc) {
				last := p.Now()
				for p.Now() < horizon {
					if _, err := sys.Runtime.Invoke(p, 1, 0, pr.ID(), "ping", proclet.Msg{}); err == nil {
						if gap := p.Now().Sub(last); gap > maxGap {
							maxGap = gap
						}
						last = p.Now()
					}
					p.Sleep(100 * time.Microsecond)
				}
			})
			sys.K.Spawn("ctl", func(p *sim.Proc) {
				p.Sleep(10 * time.Millisecond)
				if lazy {
					err = sys.Runtime.MigrateLazy(p, pr.ID(), 1)
				} else {
					err = sys.Runtime.Migrate(p, pr.ID(), 1)
				}
			})
			sys.K.RunUntil(horizon)
			if err != nil {
				return o, err
			}
			o.blackoutMs = float64(maxGap) / 1e6
			if lazy {
				o.residentMs = sys.Runtime.LazyResidence.Mean() * 1000
				o.penalties = sys.Runtime.LazyPenalties.Value()
			}
			return o, nil
		}
		pre, err := run(false)
		if err != nil {
			return nil, err
		}
		post, err := run(true)
		if err != nil {
			return nil, err
		}
		res.addf("%-10s %16.3f %17.3f %16.3f %16d",
			byteSize(size), pre.blackoutMs, post.blackoutMs, post.residentMs, post.penalties)
		res.set(fmt.Sprintf("pre_blackout_ms.%d", size), pre.blackoutMs)
		res.set(fmt.Sprintf("post_blackout_ms.%d", size), post.blackoutMs)
		res.set(fmt.Sprintf("resident_ms.%d", size), post.residentMs)
	}
	res.addf("shape: post-copy's blackout is flat (~fixed overhead + one ping interval) while pre-copy's")
	res.addf("grows with state; the price is a per-invocation remote penalty until the copy lands.")
	return res, nil
}
