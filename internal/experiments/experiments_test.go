package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestListAndTitles(t *testing.T) {
	ids := List()
	if len(ids) != 20 {
		t.Fatalf("List() = %v, want 20 experiments", ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	if _, err := Run("nope", TestScale); err == nil {
		t.Error("Run(unknown) succeeded")
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := Run("fig1", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Values["quicksand.goodput_pct"]
	pinned := res.Values["pinned.goodput_pct"]
	coarse := res.Values["coarse.goodput_pct"]
	// Paper shape: Quicksand ~full utilization, pinned ~half, coarse no
	// better than pinned.
	if qs < 80 {
		t.Errorf("quicksand goodput = %.1f%%, want >= 80%%", qs)
	}
	if pinned > 60 || pinned < 35 {
		t.Errorf("pinned goodput = %.1f%%, want ~50%%", pinned)
	}
	if qs < 1.5*pinned {
		t.Errorf("quicksand (%.1f%%) should be ~2x pinned (%.1f%%)", qs, pinned)
	}
	if coarse > qs-15 {
		t.Errorf("coarse goodput = %.1f%% too close to quicksand %.1f%%", coarse, qs)
	}
	// Migration latency must be sub-millisecond for the small filler
	// proclets.
	if mig := res.Values["quicksand.mig_mean_ms"]; mig <= 0 || mig >= 1 {
		t.Errorf("quicksand mean migration = %.3f ms, want (0, 1)", mig)
	}
	if res.Values["quicksand.migrations"] == 0 {
		t.Error("quicksand performed no migrations")
	}
	// Reaction within a couple of milliseconds of each flip.
	if react := res.Values["quicksand.react_ms"]; react > 3 {
		t.Errorf("quicksand reaction = %.2f ms, want <= 3 ms", react)
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Run("fig2", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	base := res.Values["baseline.seconds"]
	if base <= 0 {
		t.Fatal("baseline did not run")
	}
	for _, cfg := range []string{"cpu-unbalanced", "mem-unbalanced", "both-unbalanced"} {
		ratio := res.Values[cfg+".ratio"]
		// Paper: within ~2% of baseline; allow 15% in the small-scale
		// simulation (fixed overheads weigh more on a 1-second run).
		if ratio > 1.15 {
			t.Errorf("%s ratio = %.3f, want <= 1.15 (near-parity)", cfg, ratio)
		}
		if ratio < 0.85 {
			t.Errorf("%s ratio = %.3f, suspiciously fast", cfg, ratio)
		}
	}
	// The static even split must OOM on the hardest (both-unbalanced)
	// configuration.
	if res.Values["static_even.oom"] != 1 {
		t.Error("static even-split did not OOM on both-unbalanced")
	}
	// The feasible static variant must strand CPU: clearly slower than
	// Quicksand's baseline-parity result.
	if s := res.Values["static_bymem.ratio"]; s != 0 && s < 1.5 {
		t.Errorf("static by-memory ratio = %.2f, want >= 1.5 (stranded CPU)", s)
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := Run("fig3", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["splits"] == 0 || res.Values["merges"] == 0 {
		t.Errorf("splits=%v merges=%v, want both > 0",
			res.Values["splits"], res.Values["merges"])
	}
	// Paper: new equilibrium in 10-15 ms. Allow up to 60 ms here: the
	// settle detector is conservative (requires a 20 ms hold).
	if mean := res.Values["react_mean_ms"]; mean <= 0 || mean > 60 {
		t.Errorf("react_mean_ms = %.1f, want (0, 60]", mean)
	}
	if util := res.Values["gpu_util_pct"]; util < 80 {
		t.Errorf("gpu utilization = %.1f%%, want >= 80%%", util)
	}
}

func TestAblMigrationShape(t *testing.T) {
	res, err := Run("abl-migration", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	small := res.Values["latency_ms.65536"]
	mid := res.Values["latency_ms.1048576"]
	big := res.Values["latency_ms.10485760"]
	if small <= 0 || small >= 1 {
		t.Errorf("64KiB migration = %.3f ms, want sub-millisecond", small)
	}
	if big < 1 || big > 5 {
		t.Errorf("10MiB migration = %.3f ms, want 'a few ms' (1-5)", big)
	}
	if !(small < mid && mid < big) {
		t.Errorf("latencies not increasing: %v %v %v", small, mid, big)
	}
}

func TestAblSplitShape(t *testing.T) {
	res, err := Run("abl-split", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	s1 := res.Values["split_ms.1048576"]
	s8 := res.Values["split_ms.8388608"]
	if s1 <= 0 || s8 <= 0 {
		t.Fatalf("splits not measured: %v %v", s1, s8)
	}
	if s8 < 2*s1 {
		t.Errorf("split cost should scale with cap: 1MiB=%.3f 8MiB=%.3f", s1, s8)
	}
}

func TestAblPrefetchShape(t *testing.T) {
	res, err := Run("abl-prefetch", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if sp := res.Values["speedup"]; sp < 1.3 {
		t.Errorf("prefetch speedup = %.2fx, want >= 1.3x", sp)
	}
	// With prefetch the scan should approach the max(wire, compute)
	// bound, i.e., well under 2x ideal.
	if res.Values["prefetch_ms"] > 2*res.Values["ideal_ms"] {
		t.Errorf("prefetch %vms vs ideal %vms: overlap not effective",
			res.Values["prefetch_ms"], res.Values["ideal_ms"])
	}
}

func TestAblSchedShape(t *testing.T) {
	res, err := Run("abl-sched", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	two := res.Values["two-level.goodput_pct"]
	local := res.Values["local-only.goodput_pct"]
	global := res.Values["global-only.goodput_pct"]
	if two < 80 || local < 80 {
		t.Errorf("two-level=%.1f local-only=%.1f, both should harvest windows", two, local)
	}
	if global > two-15 {
		t.Errorf("global-only=%.1f too close to two-level=%.1f; 50ms period must miss 10ms windows", global, two)
	}
}

func TestAblLocalityShape(t *testing.T) {
	res, err := Run("abl-locality", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["affinity_moves"] == 0 {
		t.Error("no affinity moves happened")
	}
	if sp := res.Values["speedup"]; sp < 1.5 {
		t.Errorf("colocation speedup = %.2fx, want >= 1.5x", sp)
	}
}

func TestResultPrint(t *testing.T) {
	res, err := Run("abl-migration", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "abl-migration") || !strings.Contains(out, "latency") {
		t.Errorf("Print output missing content:\n%s", out)
	}
}

func TestExtGPUShape(t *testing.T) {
	res, err := Run("ext-gpu", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Values["gpu-proclets.ideal_pct"]
	restart := res.Values["restart.ideal_pct"]
	if qs < 90 {
		t.Errorf("gpu-proclets = %.1f%% of ideal, want >= 90%%", qs)
	}
	if restart > qs-15 {
		t.Errorf("restart = %.1f%% too close to gpu-proclets %.1f%%", restart, qs)
	}
	if res.Values["gpu-proclets.evacs"] == 0 {
		t.Error("no evacuations recorded")
	}
	if res.Values["restart.restarts"] == 0 {
		t.Error("baseline performed no restarts")
	}
	// Evacuation = device download + wire + upload: tens of ms for a
	// 512 MiB model, far below the 1 s restart cost.
	if ms := res.Values["evac_mean_ms"]; ms <= 0 || ms > 200 {
		t.Errorf("evac_mean_ms = %.1f, want (0, 200]", ms)
	}
}

func TestAblGranularityShape(t *testing.T) {
	res, err := Run("abl-granularity", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	g1 := res.Values["goodput_pct.1"]
	g8 := res.Values["goodput_pct.8"]
	if g8 < g1+15 {
		t.Errorf("granular goodput %.1f%% should beat monolithic %.1f%% clearly", g8, g1)
	}
	if m1, m8 := res.Values["mig_mean_ms.1"], res.Values["mig_mean_ms.8"]; m1 < 2*m8 {
		t.Errorf("monolithic migration %.2fms should dwarf granular %.2fms", m1, m8)
	}
}

func TestAblReactorShape(t *testing.T) {
	res, err := Run("abl-reactor", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	fast := res.Values["goodput_pct.200"]
	slow := res.Values["goodput_pct.20000"]
	if fast < 80 {
		t.Errorf("200us reactor goodput = %.1f%%, want >= 80%%", fast)
	}
	if slow > fast-20 {
		t.Errorf("20ms reactor %.1f%% should be far below 200us %.1f%%", slow, fast)
	}
}

func TestExtHarvestShape(t *testing.T) {
	res, err := Run("ext-harvest", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Values["quicksand.goodput_pct"]
	static := res.Values["static.goodput_pct"]
	if qs < 80 {
		t.Errorf("quicksand fleet goodput = %.1f%%, want >= 80%%", qs)
	}
	if static > 45 {
		t.Errorf("static goodput = %.1f%%, want ~33%%", static)
	}
	if qs < 2*static {
		t.Errorf("quicksand (%.1f%%) should be >= 2x static (%.1f%%)", qs, static)
	}
}

func TestExtMemHarvestShape(t *testing.T) {
	res, err := Run("ext-memharvest", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["read_errs"] != 0 {
		t.Errorf("read_errs = %v, want 0 (no data loss under harvesting)", res.Values["read_errs"])
	}
	if res.Values["evictions"] == 0 {
		t.Error("no shard evacuations: the tenant never created pressure")
	}
	if res.Values["reads"] < 100 {
		t.Errorf("reads = %v, too few to be meaningful", res.Values["reads"])
	}
}

// TestExperimentDeterminism: the flagship property of the simulation —
// running the same experiment twice yields bit-identical results.
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"fig1", "fig3", "abl-migration"} {
		r1, err := Run(id, TestScale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		r2, err := Run(id, TestScale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r1.Values) != len(r2.Values) {
			t.Fatalf("%s: value sets differ", id)
		}
		for k, v := range r1.Values {
			if r2.Values[k] != v {
				t.Errorf("%s: %s = %v vs %v across runs", id, k, v, r2.Values[k])
			}
		}
		for i := range r1.Lines {
			if r1.Lines[i] != r2.Lines[i] {
				t.Errorf("%s: line %d differs:\n%s\n%s", id, i, r1.Lines[i], r2.Lines[i])
			}
		}
	}
}

func TestAblPostcopyShape(t *testing.T) {
	res, err := Run("abl-postcopy", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	postSmall := res.Values["post_blackout_ms.1048576"]
	postBig := res.Values["post_blackout_ms.67108864"]
	preBig := res.Values["pre_blackout_ms.67108864"]
	if postSmall != postBig {
		t.Errorf("post-copy blackout varies with size: %.3f vs %.3f ms", postSmall, postBig)
	}
	if preBig < 10*postBig {
		t.Errorf("pre-copy 64MiB blackout %.3f ms should dwarf post-copy %.3f ms", preBig, postBig)
	}
	if r := res.Values["resident_ms.67108864"]; r <= postBig {
		t.Errorf("residence %.3f ms should exceed the blackout %.3f ms", r, postBig)
	}
}

func TestExtTieringShape(t *testing.T) {
	res, err := Run("ext-tiering", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	inRAM := res.Values["inram_ms_per_elem"]
	tiered := res.Values["tiered_ms_per_elem"]
	hot := res.Values["hot_ms_per_elem"]
	if tiered < 5*inRAM {
		t.Errorf("cold tiered scan %.3f ms/elem should be flash-bound vs RAM %.3f", tiered, inRAM)
	}
	if hot > 3*inRAM {
		t.Errorf("hot working set %.3f ms/elem should be near RAM speed %.3f", hot, inRAM)
	}
	if res.Values["tiered_faults"] == 0 {
		t.Error("cold scan faulted nothing")
	}
}

func TestFig1SeriesCSV(t *testing.T) {
	res, err := Run("fig1", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeriesTime) == 0 || len(res.Series) != 6 {
		t.Fatalf("series: %d axes, %d columns, want 6 columns", len(res.SeriesTime), len(res.Series))
	}
	var sb strings.Builder
	res.WriteCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(res.SeriesTime)+1 {
		t.Errorf("CSV rows = %d, want %d", len(lines), len(res.SeriesTime)+1)
	}
	if !strings.HasPrefix(lines[0], "time_ms,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[0], "quicksand_m0_goodput") {
		t.Errorf("CSV header missing series: %q", lines[0])
	}
	// An ablation result produces no CSV.
	abl, _ := Run("abl-migration", TestScale)
	var empty strings.Builder
	abl.WriteCSV(&empty)
	if empty.Len() != 0 {
		t.Error("ablation produced CSV output")
	}
}

func TestExtChaosShape(t *testing.T) {
	res, err := Run("ext-chaos", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["crashes"] != 2 {
		t.Errorf("crashes = %v, want 2 (scripted schedule)", res.Values["crashes"])
	}
	if res.Values["recoveries"] < 4 {
		t.Errorf("recoveries = %v, want >= 4 (stores + compute re-placed)", res.Values["recoveries"])
	}
	// The headline guarantees: no acked object is lost (the rebuilder
	// replays the durable source), and goodput recovers to at least 90%
	// of the no-fault run after the final fault heals.
	if res.Values["lost"] != 0 {
		t.Errorf("lost = %v acked objects, want 0", res.Values["lost"])
	}
	if rf := res.Values["recovered_frac"]; rf < 0.9 {
		t.Errorf("recovered_frac = %.2f, want >= 0.9", rf)
	}
	if rms := res.Values["recovery_ms"]; rms < 0 {
		t.Error("goodput never re-reached the recovery threshold after the final heal")
	}
	// Faults must actually bite: the worst fault-window bucket is well
	// below the no-fault mean.
	if dip := res.Values["dip_frac"]; dip > 0.7 {
		t.Errorf("dip_frac = %.2f, want <= 0.7 (faults should dent goodput)", dip)
	}
	if res.Values["ops"] <= 0 || res.Values["ops"] >= res.Values["ops_nofault"] {
		t.Errorf("ops = %v vs no-fault %v: chaos run should complete fewer ops",
			res.Values["ops"], res.Values["ops_nofault"])
	}
	if len(res.Series["goodput_chaos"]) == 0 || len(res.Series["goodput_nofault"]) == 0 {
		t.Error("missing goodput series")
	}
	// The RF=2 variant has no rebuilder: acked writes must survive the
	// same fault schedule on replicas alone, including the false
	// suspicion induced by the 0-2 partition.
	if res.Values["lost_repl"] != 0 {
		t.Errorf("lost_repl = %v acked objects, want 0 (no rebuilder, RF=2)", res.Values["lost_repl"])
	}
	if res.Values["promotions"] < 2 {
		t.Errorf("promotions = %v, want >= 2", res.Values["promotions"])
	}
	if res.Values["ops_repl"] <= 0 {
		t.Error("rf2 chaos run completed no ops")
	}
	if len(res.Series["goodput_repl"]) == 0 {
		t.Error("missing goodput_repl series")
	}
}

func TestExtFailoverShape(t *testing.T) {
	res, err := Run("ext-failover", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	// The headline guarantee: at RF=2 no acked write is lost, with no
	// rebuilder anywhere — durability comes from replication alone.
	if res.Values["lost_rf2"] != 0 {
		t.Errorf("lost_rf2 = %v acked objects, want 0", res.Values["lost_rf2"])
	}
	// RF=1 with no rebuilder must visibly lose the crashed stores,
	// otherwise the comparison proves nothing.
	if res.Values["lost_rf1"] <= 0 {
		t.Errorf("lost_rf1 = %v, want > 0 (no rebuilder at RF=1)", res.Values["lost_rf1"])
	}
	if res.Values["promotions"] < 2 {
		t.Errorf("promotions = %v, want >= 2 (two affected primaries)", res.Values["promotions"])
	}
	if res.Values["confirms"] < 1 {
		t.Errorf("confirms = %v, want >= 1", res.Values["confirms"])
	}
	// Failover latency must be measured and bounded by the detector's
	// confirm window plus restore, far below the horizon.
	if fo := res.Values["failover_ms_max"]; fo <= 0 || fo > 40 {
		t.Errorf("failover_ms_max = %.2f ms, want (0, 40]", fo)
	}
	if res.Values["ops_rf2"] <= 0 || res.Values["ops_rf1"] <= 0 {
		t.Error("both fault runs should complete ops")
	}
	// Replication costs something but not everything.
	if ov := res.Values["overhead_frac"]; ov < 0 || ov > 0.9 {
		t.Errorf("overhead_frac = %.2f, want [0, 0.9]", ov)
	}
	if res.Values["repl_records"] <= 0 {
		t.Error("rf2 run shipped no replication records")
	}
	if len(res.Series["goodput_rf2"]) == 0 || len(res.Series["goodput_rf1"]) == 0 {
		t.Error("missing goodput series")
	}
}

func TestExtScaleShape(t *testing.T) {
	res, err := Run("ext-scale", TestScale)
	if err != nil {
		t.Fatal(err) // includes the in-run P={1,4,8} determinism assertion
	}
	if res.Values["machines"] != 24 || res.Values["shards"] != 8 {
		t.Errorf("fleet = %v machines / %v shards, want 24/8 at test scale",
			res.Values["machines"], res.Values["shards"])
	}
	if res.Values["ops"] <= 0 || res.Values["cross_ops"] <= 0 {
		t.Errorf("ops = %v, cross_ops = %v: workload did not run",
			res.Values["ops"], res.Values["cross_ops"])
	}
	if res.Values["lost"] != 0 {
		t.Errorf("lost = %v acked objects, want 0 (rebuild across the crash)", res.Values["lost"])
	}
	if res.Values["crashes"] != 1 || res.Values["recoveries"] < 1 {
		t.Errorf("crashes = %v, recoveries = %v, want 1 crash and >= 1 re-placement",
			res.Values["crashes"], res.Values["recoveries"])
	}
	if res.Values["windows"] <= 0 {
		t.Error("no synchronization windows: the run never went parallel-capable")
	}
	if res.Values["cross_msgs"] <= 0 {
		t.Error("no cross-shard RPCs completed")
	}
	if res.Values["wall_ms_p1"] <= 0 || res.Values["wall_ms_p8"] <= 0 {
		t.Error("missing wall_ms_* values")
	}
	if len(res.Trace) == 0 || res.EventsProcessed == 0 {
		t.Error("missing merged trace or event count")
	}
}

func TestExtServeShape(t *testing.T) {
	res, err := Run("ext-serve", TestScale)
	if err != nil {
		t.Fatal(err) // includes the in-run P={1,4,8} determinism assertion
	}
	if res.Values["machines"] != 24 || res.Values["shards"] != 8 {
		t.Errorf("fleet = %v machines / %v shards, want 24/8 at test scale",
			res.Values["machines"], res.Values["shards"])
	}
	if res.Values["clients"] != 25_000 {
		t.Errorf("clients = %v, want 25000 at test scale", res.Values["clients"])
	}
	if res.Values["requests"] <= 0 || res.Values["served"] != res.Values["requests"] {
		t.Errorf("requests = %v served = %v: open-loop stream did not fully drain",
			res.Values["requests"], res.Values["served"])
	}
	if res.Values["errors"] != 0 {
		t.Errorf("errors = %v, want 0 (all keys preloaded)", res.Values["errors"])
	}
	if res.Values["goodput_rps"] <= 0 {
		t.Errorf("goodput_rps = %v, want > 0", res.Values["goodput_rps"])
	}
	// Quantile sanity: p50 <= p99 <= p999, all positive.
	p50, p99, p999 := res.Values["p50_ms"], res.Values["p99_ms"], res.Values["p999_ms"]
	if p50 <= 0 || p99 < p50 || p999 < p99 {
		t.Errorf("quantiles not ordered: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
	// Every phase produced traffic and a tail measurement.
	for _, ph := range servePhases {
		if res.Values["p999_ms_"+ph] <= 0 {
			t.Errorf("phase %s has no p999 (no traffic?)", ph)
		}
	}
	// Migration under load actually moved stores, and the migrate-phase
	// tail reflects it (at least as slow as the calm diurnal phase).
	if res.Values["migrations"] != float64(8*serveConfig(TestScale).migratePer) {
		t.Errorf("migrations = %v, want %d", res.Values["migrations"], 8*serveConfig(TestScale).migratePer)
	}
	if res.Values["p999_ms_migrate"] < res.Values["p999_ms_diurnal"] {
		t.Errorf("migrate-phase p999 %v below diurnal %v: migration blackout invisible",
			res.Values["p999_ms_migrate"], res.Values["p999_ms_diurnal"])
	}
	if res.Values["windows"] <= 0 || res.Values["cross_msgs"] <= 0 {
		t.Errorf("windows = %v cross_msgs = %v: fleet never coupled",
			res.Values["windows"], res.Values["cross_msgs"])
	}
	if res.Values["wall_ms_p1"] <= 0 || res.Values["wall_ms_p8"] <= 0 {
		t.Error("missing wall_ms_* values")
	}
	if res.EventsProcessed == 0 {
		t.Error("missing event count")
	}
}

// TestExtServeTraceSampling drives the traced path: per-shard tracers
// with disjoint ID bases, tail-based sampling against the run's
// incidents, and both exports written. The in-run assertions already
// cover P={1,4,8} byte-identity and the 10x reduction bound; here we
// sweep five seeds, and at seed 0 re-run to pin byte-identical exports
// across repeat runs.
func TestExtServeTraceSampling(t *testing.T) {
	dir := t.TempDir()
	SetTraceDir(dir)
	defer SetTraceDir("")
	defer SetBaseSeed(0)
	fullPath := filepath.Join(dir, "ext-serve.full.trace.json")
	sampledPath := filepath.Join(dir, "ext-serve.trace.json")
	for _, seed := range []int64{0, 1, 2, 3, 4} {
		SetBaseSeed(seed)
		res, err := Run("ext-serve", TestScale)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full, sampled := res.Values["trace_spans_full"], res.Values["trace_spans_sampled"]
		if full <= 0 || sampled <= 0 {
			t.Fatalf("seed %d: span counts full=%v sampled=%v", seed, full, sampled)
		}
		if sampled*10 > full {
			t.Errorf("seed %d: sampled %v of %v spans — misses the 10x bound", seed, sampled, full)
		}
		if res.Values["slo_windows"] <= 0 {
			t.Errorf("seed %d: slo plane closed no windows", seed)
		}
		if seed != 0 {
			continue
		}
		fb1, err := os.ReadFile(fullPath)
		if err != nil {
			t.Fatal(err)
		}
		sb1, err := os.ReadFile(sampledPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run("ext-serve", TestScale); err != nil {
			t.Fatalf("seed %d repeat: %v", seed, err)
		}
		fb2, _ := os.ReadFile(fullPath)
		sb2, _ := os.ReadFile(sampledPath)
		if !bytes.Equal(fb1, fb2) || !bytes.Equal(sb1, sb2) {
			t.Errorf("seed %d: exports differ across identical runs (full %d vs %d bytes, sampled %d vs %d)",
				seed, len(fb1), len(fb2), len(sb1), len(sb2))
		}
	}
}

func TestExtServeDeterminism(t *testing.T) {
	defer SetBaseSeed(0)
	for _, seed := range []int64{0, 5} {
		SetBaseSeed(seed)
		r1, err := Run("ext-serve", TestScale)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := Run("ext-serve", TestScale)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r1.EventsProcessed != r2.EventsProcessed {
			t.Errorf("seed %d: events %d vs %d across runs", seed, r1.EventsProcessed, r2.EventsProcessed)
		}
		for k, v := range r1.Values {
			if strings.HasPrefix(k, "wall_") {
				continue
			}
			if r2.Values[k] != v {
				t.Errorf("seed %d: %s = %v vs %v across runs", seed, k, v, r2.Values[k])
			}
		}
		for i := range r1.Lines {
			if r1.Lines[i] != r2.Lines[i] {
				t.Errorf("seed %d: line %d differs:\n%s\n%s", seed, i, r1.Lines[i], r2.Lines[i])
			}
		}
		if !reflect.DeepEqual(r1.Trace, r2.Trace) {
			t.Errorf("seed %d: merged traces differ across runs", seed)
		}
	}
}

// Two runs at the same seed must agree on every deterministic value and
// every line, at several base seeds — the host-time wall_* keys are the
// only permitted difference.
func TestExtScaleDeterminism(t *testing.T) {
	defer SetBaseSeed(0)
	for _, seed := range []int64{0, 3} {
		SetBaseSeed(seed)
		r1, err := Run("ext-scale", TestScale)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := Run("ext-scale", TestScale)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r1.EventsProcessed != r2.EventsProcessed {
			t.Errorf("seed %d: events %d vs %d across runs", seed, r1.EventsProcessed, r2.EventsProcessed)
		}
		for k, v := range r1.Values {
			if strings.HasPrefix(k, "wall_") {
				continue
			}
			if r2.Values[k] != v {
				t.Errorf("seed %d: %s = %v vs %v across runs", seed, k, v, r2.Values[k])
			}
		}
		for i := range r1.Lines {
			if r1.Lines[i] != r2.Lines[i] {
				t.Errorf("seed %d: line %d differs:\n%s\n%s", seed, i, r1.Lines[i], r2.Lines[i])
			}
		}
		if len(r1.Trace) == 0 || !reflect.DeepEqual(r1.Trace, r2.Trace) {
			t.Errorf("seed %d: merged traces differ across runs", seed)
		}
	}
}

func TestExtGPUFleetShape(t *testing.T) {
	res, err := Run("ext-gpufleet", TestScale)
	if err != nil {
		t.Fatal(err)
	}
	// The headline guarantee: with per-step checkpoint mirrors, the
	// scripted XID + throttle + stutter + reclaim schedule loses zero
	// acknowledged training steps.
	if res.Values["lost_steps"] != 0 {
		t.Errorf("lost_steps = %v, want 0 (checkpointed fleet)", res.Values["lost_steps"])
	}
	// The contrast must visibly bite, or the comparison proves nothing.
	if res.Values["nockpt_lost_steps"] <= 0 {
		t.Errorf("nockpt_lost_steps = %v, want > 0 (XID without a mirror redoes work)",
			res.Values["nockpt_lost_steps"])
	}
	// Every scripted fault produces exactly its reaction: one restore
	// for the XID, one grace-window evacuation for the reclaim, and one
	// mitigation each for the throttled and the stuttering straggler.
	if res.Values["restores"] != 1 {
		t.Errorf("restores = %v, want 1", res.Values["restores"])
	}
	if res.Values["evacuations"] != 1 {
		t.Errorf("evacuations = %v, want 1", res.Values["evacuations"])
	}
	if res.Values["mitigations"] != 2 {
		t.Errorf("mitigations = %v, want 2 (throttle + stutter victims)", res.Values["mitigations"])
	}
	if res.Values["stranded"] != 0 {
		t.Errorf("stranded = %v, want 0 (the spare pool always has room)", res.Values["stranded"])
	}
	// Makespan ordering: the oracle is fastest, robustness costs
	// something bounded, and disabling mitigation costs far more.
	oracle, robust := res.Values["makespan_ms_oracle"], res.Values["makespan_ms_robust"]
	nomit := res.Values["makespan_ms_nomit"]
	if oracle <= 0 || robust <= oracle {
		t.Errorf("makespans oracle=%v robust=%v, want 0 < oracle < robust", oracle, robust)
	}
	if ratio := res.Values["makespan_ratio"]; ratio < 1 || ratio > 2 {
		t.Errorf("makespan_ratio = %v, want within (1, 2]: robustness tax out of band", ratio)
	}
	if nomit <= robust {
		t.Errorf("makespan nomit=%v <= robust=%v: mitigation should pay for itself", nomit, robust)
	}
	if res.Values["steps"] <= 0 {
		t.Error("no training steps recorded")
	}
	if res.EventsProcessed == 0 || len(res.Trace) == 0 {
		t.Error("missing determinism evidence (events/trace)")
	}
}

// Two runs at the same seed must agree on every deterministic value,
// line, and trace event, at several base seeds.
func TestExtGPUFleetDeterminism(t *testing.T) {
	defer SetBaseSeed(0)
	for _, seed := range []int64{0, 4} {
		SetBaseSeed(seed)
		r1, err := Run("ext-gpufleet", TestScale)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := Run("ext-gpufleet", TestScale)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r1.EventsProcessed != r2.EventsProcessed {
			t.Errorf("seed %d: events %d vs %d across runs", seed, r1.EventsProcessed, r2.EventsProcessed)
		}
		for k, v := range r1.Values {
			if strings.HasPrefix(k, "wall_") {
				continue
			}
			if r2.Values[k] != v {
				t.Errorf("seed %d: %s = %v vs %v across runs", seed, k, v, r2.Values[k])
			}
		}
		for i := range r1.Lines {
			if r1.Lines[i] != r2.Lines[i] {
				t.Errorf("seed %d: line %d differs:\n%s\n%s", seed, i, r1.Lines[i], r2.Lines[i])
			}
		}
		if len(r1.Trace) == 0 || !reflect.DeepEqual(r1.Trace, r2.Trace) {
			t.Errorf("seed %d: merged traces differ across runs", seed)
		}
	}
}
